// entmatcher_cli — a command-line front end for the whole pipeline, working
// on OpenEA-style dataset directories and binary embedding files.
//
//   entmatcher_cli generate <pair> <dir> [scale]
//       Generate a benchmark dataset (e.g. D-Z, S-F, DW-W, D-Z+, FB-MUL)
//       and save it under <dir>.
//   entmatcher_cli stats <dir>
//       Print the dataset statistics (the Table 3 row).
//   entmatcher_cli embed <dir> <G|R|N|NR> <out_prefix>
//       Compute unified embeddings and write <out_prefix>.src.emat /
//       <out_prefix>.tgt.emat.
//   entmatcher_cli match <dir> <src.emat> <tgt.emat> <algo>
//                  [--workspace-budget-bytes=N] [out_links.tsv]
//       Run one matching algorithm (DInf, CSLS, RInf, RInf-wr, RInf-pb,
//       Sink., Hun., SMat, RL) and report P/R/F1; optionally save the
//       predicted links. With a workspace budget, algorithms whose score
//       and scratch buffers would exceed N bytes are rejected up front
//       with a resource-exhausted error (the paper's "Mem: No" verdict).
//   entmatcher_cli eval <dir> <links.tsv>
//       Score previously saved predicted links against the test split.

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/string_util.h"
#include "datagen/benchmarks.h"
#include "embedding/provider.h"
#include "eval/metrics.h"
#include "kg/dataset_io.h"
#include "kg/io.h"
#include "la/matrix_io.h"
#include "matching/pipeline.h"

namespace {

using namespace entmatcher;

int Fail(const Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return EXIT_FAILURE;
}

int Usage() {
  std::cerr << "usage: entmatcher_cli "
               "generate|stats|embed|match|eval ... (see source header)\n";
  return EXIT_FAILURE;
}

Result<EmbeddingSetting> ParseSetting(const std::string& text) {
  if (text == "G") return EmbeddingSetting::kGcnStruct;
  if (text == "R") return EmbeddingSetting::kRreaStruct;
  if (text == "N") return EmbeddingSetting::kNameOnly;
  if (text == "NR") return EmbeddingSetting::kNameRrea;
  return Status::InvalidArgument("unknown embedding setting: " + text);
}

Result<AlgorithmPreset> ParseAlgorithm(const std::string& text) {
  for (AlgorithmPreset preset :
       {AlgorithmPreset::kDInf, AlgorithmPreset::kCsls, AlgorithmPreset::kRinf,
        AlgorithmPreset::kRinfWr, AlgorithmPreset::kRinfPb,
        AlgorithmPreset::kSinkhorn, AlgorithmPreset::kHungarian,
        AlgorithmPreset::kStableMatch, AlgorithmPreset::kRl}) {
    if (text == PresetName(preset)) return preset;
  }
  return Status::InvalidArgument("unknown algorithm: " + text);
}

int CmdGenerate(int argc, char** argv) {
  if (argc < 4) return Usage();
  const double scale = argc > 4 ? std::atof(argv[4]) : 1.0;
  Result<KgPairDataset> dataset = GenerateDataset(argv[2], scale);
  if (!dataset.ok()) return Fail(dataset.status());
  Status saved = SaveDatasetDir(*dataset, argv[3]);
  if (!saved.ok()) return Fail(saved);
  std::cout << "wrote " << dataset->name << " (" << dataset->TotalEntities()
            << " entities, " << dataset->TotalTriples() << " triples, "
            << dataset->gold.size() << " links) to " << argv[3] << "\n";
  return EXIT_SUCCESS;
}

int CmdStats(int argc, char** argv) {
  if (argc < 3) return Usage();
  Result<KgPairDataset> dataset = LoadDatasetDir(argv[2]);
  if (!dataset.ok()) return Fail(dataset.status());
  std::cout << "name:        " << dataset->name << "\n"
            << "entities:    " << dataset->TotalEntities() << "\n"
            << "relations:   " << dataset->TotalRelations() << "\n"
            << "triples:     " << dataset->TotalTriples() << "\n"
            << "gold links:  " << dataset->gold.size() << " ("
            << dataset->gold.size() - dataset->gold.CountOneToOneLinks()
            << " non-1-to-1)\n"
            << "splits:      " << dataset->split.train.size() << " train / "
            << dataset->split.valid.size() << " valid / "
            << dataset->split.test.size() << " test\n"
            << "avg degree:  " << FormatDouble(dataset->AverageDegree(), 2)
            << "\n"
            << "test cands:  " << dataset->test_source_entities.size() << " x "
            << dataset->test_target_entities.size() << "\n";
  return EXIT_SUCCESS;
}

int CmdEmbed(int argc, char** argv) {
  if (argc < 5) return Usage();
  Result<KgPairDataset> dataset = LoadDatasetDir(argv[2]);
  if (!dataset.ok()) return Fail(dataset.status());
  Result<EmbeddingSetting> setting = ParseSetting(argv[3]);
  if (!setting.ok()) return Fail(setting.status());
  Result<EmbeddingPair> embeddings = ComputeEmbeddings(*dataset, *setting);
  if (!embeddings.ok()) return Fail(embeddings.status());
  const std::string prefix = argv[4];
  Status s = WriteMatrixBinary(embeddings->source, prefix + ".src.emat");
  if (!s.ok()) return Fail(s);
  s = WriteMatrixBinary(embeddings->target, prefix + ".tgt.emat");
  if (!s.ok()) return Fail(s);
  std::cout << "wrote " << prefix << ".{src,tgt}.emat ("
            << embeddings->source.rows() << "+" << embeddings->target.rows()
            << " x " << embeddings->dim() << ")\n";
  return EXIT_SUCCESS;
}

int CmdMatch(int argc, char** argv) {
  if (argc < 6) return Usage();
  Result<KgPairDataset> dataset = LoadDatasetDir(argv[2]);
  if (!dataset.ok()) return Fail(dataset.status());
  Result<Matrix> src = ReadMatrixBinary(argv[3]);
  if (!src.ok()) return Fail(src.status());
  Result<Matrix> tgt = ReadMatrixBinary(argv[4]);
  if (!tgt.ok()) return Fail(tgt.status());
  Result<AlgorithmPreset> algorithm = ParseAlgorithm(argv[5]);
  if (!algorithm.ok()) return Fail(algorithm.status());

  MatchOptions options = MakePreset(*algorithm);
  std::string out_path;
  for (int i = 6; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string budget_flag = "--workspace-budget-bytes=";
    if (arg.rfind(budget_flag, 0) == 0) {
      const std::string value = arg.substr(budget_flag.size());
      char* end = nullptr;
      const unsigned long long bytes = std::strtoull(value.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || value.empty()) {
        std::cerr << "error: bad " << budget_flag << " value: " << value
                  << "\n";
        return EXIT_FAILURE;
      }
      options.workspace_budget_bytes = static_cast<size_t>(bytes);
    } else if (out_path.empty()) {
      out_path = arg;
    } else {
      return Usage();
    }
  }

  EmbeddingPair embeddings;
  embeddings.source = std::move(src).value();
  embeddings.target = std::move(tgt).value();
  Result<MatchRun> run = RunMatching(*dataset, embeddings, options);
  if (!run.ok()) {
    if (run.status().code() == StatusCode::kResourceExhausted) {
      std::cerr << PresetName(*algorithm)
                << ": does not fit the workspace budget of "
                << FormatBytes(options.workspace_budget_bytes) << " ("
                << run.status().message() << ")\n";
      return EXIT_FAILURE;
    }
    return Fail(run.status());
  }

  const EvalMetrics m = EvaluatePredictions(run->predicted, dataset->split.test);
  std::cout << PresetName(*algorithm) << ": P=" << FormatDouble(m.precision, 3)
            << " R=" << FormatDouble(m.recall, 3)
            << " F1=" << FormatDouble(m.f1, 3) << " ("
            << FormatDouble(run->seconds, 2) << "s, "
            << FormatBytes(run->peak_workspace_bytes) << " workspace)\n";
  if (!out_path.empty()) {
    Status s = WriteLinksTsv(run->predicted, out_path);
    if (!s.ok()) return Fail(s);
    std::cout << "wrote " << run->predicted.size() << " links to " << out_path
              << "\n";
  }
  return EXIT_SUCCESS;
}

int CmdEval(int argc, char** argv) {
  if (argc < 4) return Usage();
  Result<KgPairDataset> dataset = LoadDatasetDir(argv[2]);
  if (!dataset.ok()) return Fail(dataset.status());
  Result<AlignmentSet> predicted = ReadLinksTsv(argv[3]);
  if (!predicted.ok()) return Fail(predicted.status());
  const EvalMetrics m = EvaluatePredictions(*predicted, dataset->split.test);
  std::cout << "P=" << FormatDouble(m.precision, 3)
            << " R=" << FormatDouble(m.recall, 3)
            << " F1=" << FormatDouble(m.f1, 3) << " (" << m.correct << "/"
            << m.found << " correct, " << m.gold << " gold)\n";
  return EXIT_SUCCESS;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "generate") return CmdGenerate(argc, argv);
  if (command == "stats") return CmdStats(argc, argv);
  if (command == "embed") return CmdEmbed(argc, argv);
  if (command == "match") return CmdMatch(argc, argv);
  if (command == "eval") return CmdEval(argc, argv);
  return Usage();
}
