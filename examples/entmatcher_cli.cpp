// entmatcher_cli — a command-line front end for the whole pipeline, working
// on OpenEA-style dataset directories and binary embedding files.
//
//   entmatcher_cli generate <pair> <dir> [scale]
//       Generate a benchmark dataset (e.g. D-Z, S-F, DW-W, D-Z+, FB-MUL)
//       and save it under <dir>.
//   entmatcher_cli stats <dir>
//       Print the dataset statistics (the Table 3 row).
//   entmatcher_cli embed <dir> <G|R|N|NR> <out_prefix>
//       Compute unified embeddings and write <out_prefix>.src.emat /
//       <out_prefix>.tgt.emat.
//   entmatcher_cli index build <tgt.emat> <out.eidx>
//                  [--backend=ivf|hnsw|exact] [--dataset=DIR] [--mmap]
//                  [--lists=N] [--kmeans-iters=N] [--seed=N]
//                  [--M=N] [--ef-construction=N]
//       Build a candidate index over the target embeddings and serialize
//       it (EIDX2 binary; EIDX1 files still load as IVF). --backend picks
//       the candidate-generation strategy: ivf (default; --lists=0
//       auto-sizes to ~sqrt(num_targets), --kmeans-iters), hnsw (graph
//       index; --M link budget, --ef-construction build beam), or exact.
//       --mmap reads <tgt.emat> as an EMBF store via mmap instead of a
//       heap matrix, which is how a 1M-row index is built in-budget.
//       --dataset=DIR slices the matrix to the dataset's test-split
//       target rows first — required when the index will be used with
//       `match` over a dataset, which scores over exactly those rows.
//   entmatcher_cli index stats <index.eidx>
//       Print the list/level occupancy of a saved index.
//   entmatcher_cli mmap pack <in.emat> <out.embf>
//       Convert a binary matrix into an EMBF store (the mmap-able
//       row-major format `match --mmap` and `serve --mmap` read).
//   entmatcher_cli mmap synth-pair <out_prefix> --rows=N --dim=N
//                  [--clusters=N] [--seed=N] [--noise=F] [--spread=F]
//       Stream a synthetic identity-aligned embedding pair to
//       <out_prefix>.src.embf / <out_prefix>.tgt.embf with O(dim) live
//       memory — the 1M-entity fixture generator.
//   entmatcher_cli mmap info <store.embf>
//       Print an EMBF store's shape and byte accounting.
//   entmatcher_cli match <dir> <src.emat> <tgt.emat> <algo>
//                  [--workspace-budget-bytes=N] [--threads=N]
//                  [--kernel-tier=scalar|avx2|avx512|neon|auto]
//                  [--precision=float32|bf16|int8] [--mmap]
//                  [--index=PATH --candidates=N [--nprobe=N] [--ef=N]]
//                  [out_links.tsv]
//       Run one matching algorithm (DInf, CSLS, RInf, RInf-wr, RInf-pb,
//       Sink., Hun., SMat, RL) and report P/R/F1 plus the peak tracked
//       workspace of the run; optionally save the predicted links. With a
//       workspace budget, algorithms whose score and scratch buffers would
//       exceed N bytes are rejected up front with a resource-exhausted
//       error (the paper's "Mem: No" verdict). With --index/--candidates,
//       scoring is restricted to the top-N index candidates per source and
//       the sparse pipeline runs in O(n*candidates) workspace.
//       --kernel-tier forces a vector ISA tier (same grammar as the
//       EM_KERNEL_TIER environment variable; the flag wins) and fails when
//       the CPU or build lacks it. --precision=bf16|int8 quantizes the
//       embeddings for candidate generation with exact float rerank of the
//       top --candidates=N survivors (works with or without --index).
//       --nprobe tunes the IVF probe width and --ef the HNSW layer-0 beam;
//       each backend reads only its own knob. With <dir> = "-" the dataset
//       is skipped entirely: the engine matches the raw pair and reports
//       identity-alignment accuracy (row i of the source gold-matches row
//       i of the target — the synthetic EMBF pairs' convention) instead of
//       test-split P/R/F1. --mmap reads <src>/<tgt> as EMBF stores via
//       mmap, so a 1M x 128d pair matches without materializing either
//       matrix on the heap.
//   entmatcher_cli eval <dir> <links.tsv>
//       Score previously saved predicted links against the test split.
//   entmatcher_cli serve <src.emat> <tgt.emat> [--mmap] [--socket=PATH]
//                  [--threads=N]
//                  [--kernel-tier=TIER] [--serve-workers=N] [--cache-bytes=N]
//                  [--max-batch=N] [--flush-micros=N] [--queue-capacity=N]
//                  [--workspace-budget-bytes=N] [--shed-watermark=N]
//                  [--index=PATH [--degrade-watermark=N]
//                   [--degrade-candidates=N] [--degrade-nprobe=N]
//                   [--degrade-ef=N]]
//       Hold the embedding pair as an immutable snapshot and serve match /
//       top-k queries over a unix-domain socket (length-prefixed protocol,
//       src/serve/protocol.h), micro-batching compatible queries into
//       shared similarity passes that run on a pool of --serve-workers=N
//       execution threads (0/default: EM_SERVE_WORKERS, then hardware
//       concurrency). --cache-bytes=N arms the cross-request result cache
//       with an N-byte LRU budget (0/default: off). Runs until a client
//       sends `shutdown`. --mmap reads <src>/<tgt> as EMBF stores via
//       mmap and serves over the page cache instead of heap matrices.
//       --shed-watermark sheds new requests
//       (kUnavailable + retry-after hint) once the queue is that deep;
//       with --index attached, --degrade-watermark instead rewrites
//       eligible dense matches onto the sparse candidate path under load.
//       A fault plan in EM_FAULT_PLAN (seeded by EM_FAULT_SEED) is armed
//       at startup — chaos builds only (-DENTMATCHER_FAULTS=ON); see
//       src/common/fault.h for the grammar.
//   entmatcher_cli swap <src.emat> <tgt.emat> [--pair=NAME] [--socket=PATH]
//                  [--index=PATH]
//       Hot-swap the embeddings of a pair on a running `serve` instance:
//       sends the `swap` admin request; the server loads the files
//       (server-side paths!), builds and warms a new snapshot, and
//       atomically publishes it. In-flight batches finish on the old
//       version; the old snapshot is reclaimed once they drain.
//   entmatcher_cli query [--socket=PATH] [--retries=N]
//                                        match <ALGO> [timeout_us=N]
//                                      | topk <ALGO> <k> [timeout_us=N]
//                                      | stats | health | shutdown
//                                      | swap <pair> <src> <tgt> [index=PATH]
//       One query against a running `serve` instance. --retries=N retries
//       transient failures (kUnavailable sheds, transport drops, expired
//       deadlines) up to N attempts with capped exponential backoff (swap
//       is never retried: it is not idempotent-safe over a flaky link).
//   entmatcher_cli fleet plan <name> <src.emat> <tgt.emat> --shards=N
//                  --out=PLAN [--replicas=R] [--socket-dir=DIR] [--index=PATH]
//       Write a v1 shard-plan JSON: the pair's source rows split evenly
//       into N ranges, each owned by its primary shard plus R replicas
//       (round-robin). Every shard loads the full pair (CSLS/RInf
//       normalize globally); the plan partitions the ANSWER space.
//   entmatcher_cli fleet serve --plan=PLAN [--shard=K] [--socket=PATH]
//                  [--no-spawn] [--hedge-micros=N] [--retries=N]
//                  [--restart-policy=SPEC] [--breaker-failures=N]
//                  [--breaker-cooldown-us=N] [--partial=unavailable|degrade]
//                  [shard flags: --serve-workers=N --cache-bytes=N
//                   --threads=N --max-batch=N --flush-micros=N
//                   --queue-capacity=N --shed-watermark=N]
//       With --shard=K: run ONE shard — a normal MatchServer loading every
//       pair the plan assigns to shard K, listening on the plan's socket
//       for that shard. Without --shard: run the ROUTER — spawn one child
//       process per plan shard (self-exec; --no-spawn skips this and
//       expects the shards to already be up), wait for them to get
//       healthy, then serve the same wire protocol on --socket,
//       scatter-gathering match/topk across shards with per-range
//       failover (and hedging when --hedge-micros > 0). Shard flags are
//       forwarded to spawned shards verbatim. `query shutdown` on the
//       router stops the whole fleet.
//       Self-healing (spawn mode): a FleetSupervisor restarts crashed
//       shards under --restart-policy ("off", "on", or a comma list:
//       max_strikes=N,backoff_us=N,max_backoff_us=N,multiplier=F,
//       window_us=N,boot_budget_us=N,seed=N) and re-admits each one only
//       after converging it to the surviving fleet's snapshot version.
//       --breaker-failures=N consecutive transport failures open a
//       per-shard circuit breaker (fail-fast) that half-opens after
//       --breaker-cooldown-us (0 failures disables breakers).
//       --partial=degrade answers with the covered ranges (coverage=
//       annotation, -1 elsewhere) when a range has no live owner instead
//       of refusing with kUnavailable.
//   entmatcher_cli fleet query [--socket=PATH] [--retries=N] <request...>
//       One query against the fleet front end (same grammar as `query`,
//       plus `shards` for the plan + channel states).
//   entmatcher_cli fleet swap <pair> <src.emat> <tgt.emat> [index=PATH]
//                  [--socket=PATH]
//       All-or-nothing swap fan-out: the router forwards the swap to every
//       shard owning <pair>; success requires every owner to confirm the
//       same new version. On partial failure reads spanning diverged
//       shards refuse to merge until a repair swap converges the fleet.
//   entmatcher_cli fleet status [--socket=PATH]
//       The router's fleet health aggregate (per-shard channel state +
//       live health payloads).
//
// --threads=N overrides the worker count for this process (equivalent to
// the EM_NUM_THREADS environment variable; the flag wins).

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "common/fault.h"
#include "fleet/plan.h"
#include "fleet/router.h"
#include "fleet/shard_manager.h"
#include "fleet/supervisor.h"
#include "common/memory_tracker.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "datagen/benchmarks.h"
#include "datagen/embf_synth.h"
#include "embedding/embedding.h"
#include "embedding/provider.h"
#include "eval/metrics.h"
#include "index/candidate_index.h"
#include "kg/dataset_io.h"
#include "kg/io.h"
#include "la/kernels/dispatch.h"
#include "la/kernels/quantized.h"
#include "la/matrix_io.h"
#include "la/mmap_store.h"
#include "matching/engine.h"
#include "matching/pipeline.h"
#include "serve/client.h"
#include "serve/socket_server.h"

namespace {

using namespace entmatcher;

constexpr const char* kDefaultSocketPath = "entmatcher.sock";

int Fail(const Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return EXIT_FAILURE;
}

int Usage() {
  std::cerr << "usage: entmatcher_cli "
               "generate|stats|embed|index|mmap|match|eval|serve|swap|query|"
               "fleet ... (see source header)\n";
  return EXIT_FAILURE;
}

/// Parses "--<name>=<uint>": returns 0 when `arg` is a different flag,
/// 1 on success (value stored), -1 on a malformed value (already reported).
int MatchUintFlag(const std::string& arg, const std::string& name,
                  unsigned long long* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return 0;
  const std::string text = arg.substr(prefix.size());
  char* end = nullptr;
  *value = std::strtoull(text.c_str(), &end, 10);
  if (text.empty() || end == nullptr || *end != '\0') {
    std::cerr << "error: bad " << prefix << " value: " << text << "\n";
    return -1;
  }
  return 1;
}

/// Applies "--kernel-tier=<tier|auto>": resolves, forces, and reports the
/// tier. Returns 0 when `arg` is a different flag, 1 on success, -1 on an
/// unknown or unavailable tier (already reported).
int MatchKernelTierFlag(const std::string& arg) {
  const std::string prefix = "--kernel-tier=";
  if (arg.rfind(prefix, 0) != 0) return 0;
  const std::string text = arg.substr(prefix.size());
  KernelTier tier;
  if (text == "auto") {
    tier = BestAvailableKernelTier();
  } else {
    Result<KernelTier> parsed = ParseKernelTier(text);
    if (!parsed.ok()) {
      std::cerr << "error: " << parsed.status().ToString() << "\n";
      return -1;
    }
    tier = *parsed;
  }
  Status forced = SetKernelTier(tier);
  if (!forced.ok()) {
    std::cerr << "error: " << forced.ToString() << "\n";
    return -1;
  }
  std::cout << "kernel tier: " << KernelTierName(ActiveKernelTier())
            << " (cpu: " << DetectedCpuFeatures() << ")\n";
  return 1;
}

Result<EmbeddingSetting> ParseSetting(const std::string& text) {
  if (text == "G") return EmbeddingSetting::kGcnStruct;
  if (text == "R") return EmbeddingSetting::kRreaStruct;
  if (text == "N") return EmbeddingSetting::kNameOnly;
  if (text == "NR") return EmbeddingSetting::kNameRrea;
  return Status::InvalidArgument("unknown embedding setting: " + text);
}

Result<AlgorithmPreset> ParseAlgorithm(const std::string& text) {
  for (AlgorithmPreset preset :
       {AlgorithmPreset::kDInf, AlgorithmPreset::kCsls, AlgorithmPreset::kRinf,
        AlgorithmPreset::kRinfWr, AlgorithmPreset::kRinfPb,
        AlgorithmPreset::kSinkhorn, AlgorithmPreset::kHungarian,
        AlgorithmPreset::kStableMatch, AlgorithmPreset::kRl}) {
    if (text == PresetName(preset)) return preset;
  }
  return Status::InvalidArgument("unknown algorithm: " + text);
}

int CmdGenerate(int argc, char** argv) {
  if (argc < 4) return Usage();
  const double scale = argc > 4 ? std::atof(argv[4]) : 1.0;
  Result<KgPairDataset> dataset = GenerateDataset(argv[2], scale);
  if (!dataset.ok()) return Fail(dataset.status());
  Status saved = SaveDatasetDir(*dataset, argv[3]);
  if (!saved.ok()) return Fail(saved);
  std::cout << "wrote " << dataset->name << " (" << dataset->TotalEntities()
            << " entities, " << dataset->TotalTriples() << " triples, "
            << dataset->gold.size() << " links) to " << argv[3] << "\n";
  return EXIT_SUCCESS;
}

int CmdStats(int argc, char** argv) {
  if (argc < 3) return Usage();
  Result<KgPairDataset> dataset = LoadDatasetDir(argv[2]);
  if (!dataset.ok()) return Fail(dataset.status());
  std::cout << "name:        " << dataset->name << "\n"
            << "entities:    " << dataset->TotalEntities() << "\n"
            << "relations:   " << dataset->TotalRelations() << "\n"
            << "triples:     " << dataset->TotalTriples() << "\n"
            << "gold links:  " << dataset->gold.size() << " ("
            << dataset->gold.size() - dataset->gold.CountOneToOneLinks()
            << " non-1-to-1)\n"
            << "splits:      " << dataset->split.train.size() << " train / "
            << dataset->split.valid.size() << " valid / "
            << dataset->split.test.size() << " test\n"
            << "avg degree:  " << FormatDouble(dataset->AverageDegree(), 2)
            << "\n"
            << "test cands:  " << dataset->test_source_entities.size() << " x "
            << dataset->test_target_entities.size() << "\n";
  return EXIT_SUCCESS;
}

int CmdEmbed(int argc, char** argv) {
  if (argc < 5) return Usage();
  Result<KgPairDataset> dataset = LoadDatasetDir(argv[2]);
  if (!dataset.ok()) return Fail(dataset.status());
  Result<EmbeddingSetting> setting = ParseSetting(argv[3]);
  if (!setting.ok()) return Fail(setting.status());
  Result<EmbeddingPair> embeddings = ComputeEmbeddings(*dataset, *setting);
  if (!embeddings.ok()) return Fail(embeddings.status());
  const std::string prefix = argv[4];
  Status s = WriteMatrixBinary(embeddings->source, prefix + ".src.emat");
  if (!s.ok()) return Fail(s);
  s = WriteMatrixBinary(embeddings->target, prefix + ".tgt.emat");
  if (!s.ok()) return Fail(s);
  std::cout << "wrote " << prefix << ".{src,tgt}.emat ("
            << embeddings->source.rows() << "+" << embeddings->target.rows()
            << " x " << embeddings->dim() << ")\n";
  return EXIT_SUCCESS;
}

void PrintIndexStats(const CandidateIndex& index) {
  const CandidateListStats stats = index.Stats();
  std::cout << "backend:     " << CandidateBackendName(stats.backend) << "\n"
            << "targets:     " << stats.num_targets << "\n"
            << "dim:         " << index.dim() << "\n"
            << (stats.backend == CandidateBackendKind::kHnsw ? "levels:      "
                                                             : "lists:       ")
            << stats.num_lists << "\n"
            << "list sizes:  min " << stats.min_list_size << " / mean "
            << FormatDouble(stats.mean_list_size, 1) << " / max "
            << stats.max_list_size << "\n";
  for (size_t b = 0; b < stats.size_histogram.size(); ++b) {
    const size_t count = stats.size_histogram[b];
    if (count == 0) continue;
    std::cout << "  [2^" << b << ", 2^" << (b + 1) << ") targets: " << count
              << (count == 1 ? " list\n" : " lists\n");
  }
}

int CmdIndex(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string sub = argv[2];
  if (sub == "build") {
    if (argc < 5) return Usage();
    CandidateIndexOptions options;
    std::string dataset_dir;
    bool use_mmap = false;
    for (int i = 5; i < argc; ++i) {
      const std::string arg = argv[i];
      const std::string dataset_flag = "--dataset=";
      if (arg.rfind(dataset_flag, 0) == 0) {
        dataset_dir = arg.substr(dataset_flag.size());
        continue;
      }
      const std::string backend_flag = "--backend=";
      if (arg.rfind(backend_flag, 0) == 0) {
        Result<CandidateBackendKind> parsed =
            ParseCandidateBackend(arg.substr(backend_flag.size()));
        if (!parsed.ok()) return Fail(parsed.status());
        options.backend = *parsed;
        continue;
      }
      if (arg == "--mmap") {
        use_mmap = true;
        continue;
      }
      unsigned long long value = 0;
      int matched = MatchUintFlag(arg, "lists", &value);
      if (matched < 0) return EXIT_FAILURE;
      if (matched > 0) {
        options.num_lists = static_cast<size_t>(value);
        continue;
      }
      matched = MatchUintFlag(arg, "kmeans-iters", &value);
      if (matched < 0) return EXIT_FAILURE;
      if (matched > 0) {
        options.kmeans_iterations = static_cast<size_t>(value);
        continue;
      }
      matched = MatchUintFlag(arg, "seed", &value);
      if (matched < 0) return EXIT_FAILURE;
      if (matched > 0) {
        options.seed = value;
        continue;
      }
      matched = MatchUintFlag(arg, "M", &value);
      if (matched < 0) return EXIT_FAILURE;
      if (matched > 0) {
        options.hnsw_max_links = static_cast<size_t>(value);
        continue;
      }
      matched = MatchUintFlag(arg, "ef-construction", &value);
      if (matched < 0) return EXIT_FAILURE;
      if (matched > 0) {
        options.hnsw_ef_construction = static_cast<size_t>(value);
        continue;
      }
      return Usage();
    }
    // The store (when mmapped) must outlive Build: backends read target rows
    // through the borrowed view while constructing.
    std::optional<MmapStore> store;
    Matrix target;
    if (use_mmap) {
      MmapStoreOptions store_options;
      store_options.hint = MmapAccessHint::kSequential;
      Result<MmapStore> opened = MmapStore::Open(argv[3], store_options);
      if (!opened.ok()) return Fail(opened.status());
      store = std::move(opened).value();
      target = store->AsMatrix();
    } else {
      Result<Matrix> read = ReadMatrixBinary(argv[3]);
      if (!read.ok()) return Fail(read.status());
      target = std::move(read).value();
    }
    if (!dataset_dir.empty()) {
      // `match` scores over the dataset's test-target rows, not the full
      // matrix; slice the same rows so the index describes the same target
      // set the engine will see.
      Result<KgPairDataset> dataset = LoadDatasetDir(dataset_dir);
      if (!dataset.ok()) return Fail(dataset.status());
      if (dataset->test_target_entities.empty()) {
        std::cerr << "error: dataset has no test split to slice targets by\n";
        return EXIT_FAILURE;
      }
      target = ExtractRows(target, dataset->test_target_entities);
      std::cout << "sliced to " << target.rows()
                << " test-split target rows from " << dataset_dir << "\n";
    }
    Result<CandidateIndex> index = CandidateIndex::Build(target, options);
    if (!index.ok()) return Fail(index.status());
    Status saved = index->Save(argv[4]);
    if (!saved.ok()) return Fail(saved);
    std::cout << "wrote " << argv[4] << " ("
              << CandidateBackendName(index->backend()) << " over "
              << index->num_targets() << " targets)\n";
    PrintIndexStats(*index);
    return EXIT_SUCCESS;
  }
  if (sub == "stats") {
    if (argc < 4) return Usage();
    Result<CandidateIndex> index = CandidateIndex::Load(argv[3]);
    if (!index.ok()) return Fail(index.status());
    PrintIndexStats(*index);
    return EXIT_SUCCESS;
  }
  return Usage();
}

/// Parses "--<name>=<double>" like MatchUintFlag.
int MatchDoubleFlag(const std::string& arg, const std::string& name,
                    double* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return 0;
  const std::string text = arg.substr(prefix.size());
  char* end = nullptr;
  *value = std::strtod(text.c_str(), &end);
  if (text.empty() || end == nullptr || *end != '\0') {
    std::cerr << "error: bad " << prefix << " value: " << text << "\n";
    return -1;
  }
  return 1;
}

int CmdMmap(int argc, char** argv) {
  if (argc < 4) return Usage();
  const std::string sub = argv[2];
  if (sub == "pack") {
    if (argc < 5) return Usage();
    Result<Matrix> matrix = ReadMatrixBinary(argv[3]);
    if (!matrix.ok()) return Fail(matrix.status());
    Status written = MmapStore::Write(*matrix, argv[4]);
    if (!written.ok()) return Fail(written);
    std::cout << "wrote " << argv[4] << " (" << matrix->rows() << " x "
              << matrix->cols() << ", "
              << FormatBytes(kEmbfHeaderBytes + matrix->ByteSize()) << ")\n";
    return EXIT_SUCCESS;
  }
  if (sub == "synth-pair") {
    EmbfSynthOptions options;
    const std::string prefix = argv[3];
    for (int i = 4; i < argc; ++i) {
      const std::string arg = argv[i];
      unsigned long long value = 0;
      int matched = MatchUintFlag(arg, "rows", &value);
      if (matched < 0) return EXIT_FAILURE;
      if (matched > 0) {
        options.rows = static_cast<size_t>(value);
        continue;
      }
      matched = MatchUintFlag(arg, "dim", &value);
      if (matched < 0) return EXIT_FAILURE;
      if (matched > 0) {
        options.dim = static_cast<size_t>(value);
        continue;
      }
      matched = MatchUintFlag(arg, "clusters", &value);
      if (matched < 0) return EXIT_FAILURE;
      if (matched > 0) {
        options.clusters = static_cast<size_t>(value);
        continue;
      }
      matched = MatchUintFlag(arg, "seed", &value);
      if (matched < 0) return EXIT_FAILURE;
      if (matched > 0) {
        options.seed = value;
        continue;
      }
      double noise = 0.0;
      matched = MatchDoubleFlag(arg, "noise", &noise);
      if (matched < 0) return EXIT_FAILURE;
      if (matched > 0) {
        options.noise = noise;
        continue;
      }
      double spread = 0.0;
      matched = MatchDoubleFlag(arg, "spread", &spread);
      if (matched < 0) return EXIT_FAILURE;
      if (matched > 0) {
        options.spread = spread;
        continue;
      }
      return Usage();
    }
    const std::string source_path = prefix + ".src.embf";
    const std::string target_path = prefix + ".tgt.embf";
    Status written = SynthEmbfPair(options, source_path, target_path);
    if (!written.ok()) return Fail(written);
    std::cout << "wrote " << source_path << " and " << target_path << " ("
              << options.rows << " x " << options.dim << " each, "
              << options.clusters << " clusters, seed " << options.seed
              << ")\n";
    return EXIT_SUCCESS;
  }
  if (sub == "info") {
    MmapStoreOptions options;
    options.resident_budget_bytes = 0;  // inspection touches no payload rows
    Result<MmapStore> store = MmapStore::Open(argv[3], options);
    if (!store.ok()) return Fail(store.status());
    std::cout << "rows:          " << store->rows() << "\n"
              << "cols:          " << store->cols() << "\n"
              << "logical bytes: " << store->logical_bytes() << " ("
              << FormatBytes(store->logical_bytes()) << ")\n"
              << "tracked bytes: " << store->tracked_bytes() << "\n";
    return EXIT_SUCCESS;
  }
  return Usage();
}

int CmdMatch(int argc, char** argv) {
  if (argc < 6) return Usage();
  const std::string dataset_dir = argv[2];
  const bool raw_pair = dataset_dir == "-";
  Result<AlgorithmPreset> algorithm = ParseAlgorithm(argv[5]);
  if (!algorithm.ok()) return Fail(algorithm.status());

  MatchOptions options = MakePreset(*algorithm);
  std::string out_path;
  std::string index_path;
  bool use_mmap = false;
  std::optional<CandidateIndex> index;  // must outlive the run
  for (int i = 6; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string index_flag = "--index=";
    if (arg.rfind(index_flag, 0) == 0) {
      index_path = arg.substr(index_flag.size());
      continue;
    }
    if (arg == "--mmap") {
      use_mmap = true;
      continue;
    }
    const int tier_matched = MatchKernelTierFlag(arg);
    if (tier_matched < 0) return EXIT_FAILURE;
    if (tier_matched > 0) continue;
    const std::string precision_flag = "--precision=";
    if (arg.rfind(precision_flag, 0) == 0) {
      Result<ScorePrecision> parsed =
          ParseScorePrecision(arg.substr(precision_flag.size()));
      if (!parsed.ok()) return Fail(parsed.status());
      options.score_precision = *parsed;
      continue;
    }
    unsigned long long value = 0;
    int matched = MatchUintFlag(arg, "workspace-budget-bytes", &value);
    if (matched < 0) return EXIT_FAILURE;
    if (matched > 0) {
      options.workspace_budget_bytes = static_cast<size_t>(value);
      continue;
    }
    matched = MatchUintFlag(arg, "threads", &value);
    if (matched < 0) return EXIT_FAILURE;
    if (matched > 0) {
      SetNumThreads(static_cast<size_t>(value));
      continue;
    }
    matched = MatchUintFlag(arg, "candidates", &value);
    if (matched < 0) return EXIT_FAILURE;
    if (matched > 0) {
      options.num_candidates = static_cast<size_t>(value);
      continue;
    }
    matched = MatchUintFlag(arg, "nprobe", &value);
    if (matched < 0) return EXIT_FAILURE;
    if (matched > 0) {
      options.index_nprobe = static_cast<size_t>(value);
      continue;
    }
    matched = MatchUintFlag(arg, "ef", &value);
    if (matched < 0) return EXIT_FAILURE;
    if (matched > 0) {
      options.index_ef = static_cast<size_t>(value);
      continue;
    }
    if (out_path.empty()) {
      out_path = arg;
    } else {
      return Usage();
    }
  }
  if (!index_path.empty()) {
    if (options.num_candidates == 0) {
      std::cerr << "error: --index requires --candidates=N (N >= 1)\n";
      return EXIT_FAILURE;
    }
    Result<CandidateIndex> loaded = CandidateIndex::Load(index_path);
    if (!loaded.ok()) return Fail(loaded.status());
    index = std::move(loaded).value();
    options.candidate_index = &*index;
  } else if (options.num_candidates > 0 &&
             options.score_precision == ScorePrecision::kFloat32) {
    std::cerr << "error: --candidates requires --index=PATH or "
                 "--precision=bf16|int8\n";
    return EXIT_FAILURE;
  }
  if (options.score_precision != ScorePrecision::kFloat32 &&
      options.num_candidates == 0) {
    std::cerr << "error: --precision=" << ScorePrecisionName(
                     options.score_precision)
              << " requires --candidates=N (N >= 1)\n";
    return EXIT_FAILURE;
  }

  // With --mmap the stores back every row read of the run, so they must
  // outlive the engine (and any snapshot built over the borrowed views).
  std::optional<MmapStore> src_store;
  std::optional<MmapStore> tgt_store;
  Matrix src;
  Matrix tgt;
  if (use_mmap) {
    Result<MmapStore> s = MmapStore::Open(argv[3]);
    if (!s.ok()) return Fail(s.status());
    src_store = std::move(s).value();
    src = src_store->AsMatrix();
    Result<MmapStore> t = MmapStore::Open(argv[4]);
    if (!t.ok()) return Fail(t.status());
    tgt_store = std::move(t).value();
    tgt = tgt_store->AsMatrix();
  } else {
    Result<Matrix> s = ReadMatrixBinary(argv[3]);
    if (!s.ok()) return Fail(s.status());
    src = std::move(s).value();
    Result<Matrix> t = ReadMatrixBinary(argv[4]);
    if (!t.ok()) return Fail(t.status());
    tgt = std::move(t).value();
  }

  if (raw_pair) {
    // Dataset-less mode: drive the engine over the raw pair. Row i of the
    // source is gold-matched to row i of the target (the synthetic EMBF
    // convention), so identity hits stand in for test-split metrics.
    const size_t n = src.rows();
    MemoryTracker::Global().ResetPeak();
    const auto start = std::chrono::steady_clock::now();
    Result<MatchEngine> engine =
        MatchEngine::Create(std::move(src), std::move(tgt), options);
    if (!engine.ok()) return Fail(engine.status());
    Result<Assignment> assignment = engine->Match();
    if (!assignment.ok()) {
      if (assignment.status().code() == StatusCode::kResourceExhausted) {
        std::cerr << PresetName(*algorithm)
                  << ": does not fit the workspace budget of "
                  << FormatBytes(options.workspace_budget_bytes) << " ("
                  << assignment.status().message() << ")\n";
        return EXIT_FAILURE;
      }
      return Fail(assignment.status());
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    size_t identity_hits = 0;
    for (size_t i = 0; i < assignment->size(); ++i) {
      identity_hits +=
          assignment->target_of_source[i] == static_cast<int32_t>(i);
    }
    const MemoryTracker::Stats tracked = MemoryTracker::Global().stats();
    std::cout << PresetName(*algorithm) << ": matched "
              << assignment->NumMatched() << "/" << n << ", identity acc="
              << FormatDouble(n > 0 ? static_cast<double>(identity_hits) /
                                          static_cast<double>(n)
                                    : 0.0,
                              3)
              << " (" << FormatDouble(seconds, 2) << "s)\n";
    std::cout << "peak tracked workspace: " << tracked.peak_bytes
              << " bytes (" << FormatBytes(tracked.peak_bytes) << ")\n";
    if (!out_path.empty()) {
      std::ofstream out(out_path);
      if (!out) return Fail(Status::IoError("cannot write: " + out_path));
      for (size_t i = 0; i < assignment->size(); ++i) {
        if (assignment->target_of_source[i] == Assignment::kUnmatched) continue;
        out << i << "\t" << assignment->target_of_source[i] << "\n";
      }
      std::cout << "wrote " << assignment->NumMatched() << " links to "
                << out_path << "\n";
    }
    return EXIT_SUCCESS;
  }

  Result<KgPairDataset> dataset = LoadDatasetDir(dataset_dir);
  if (!dataset.ok()) return Fail(dataset.status());
  EmbeddingPair embeddings;
  embeddings.source = std::move(src);
  embeddings.target = std::move(tgt);
  Result<MatchRun> run = RunMatching(*dataset, embeddings, options);
  if (!run.ok()) {
    if (run.status().code() == StatusCode::kResourceExhausted) {
      std::cerr << PresetName(*algorithm)
                << ": does not fit the workspace budget of "
                << FormatBytes(options.workspace_budget_bytes) << " ("
                << run.status().message() << ")\n";
      return EXIT_FAILURE;
    }
    return Fail(run.status());
  }

  const EvalMetrics m = EvaluatePredictions(run->predicted, dataset->split.test);
  std::cout << PresetName(*algorithm) << ": P=" << FormatDouble(m.precision, 3)
            << " R=" << FormatDouble(m.recall, 3)
            << " F1=" << FormatDouble(m.f1, 3) << " ("
            << FormatDouble(run->seconds, 2) << "s)\n";
  std::cout << "peak tracked workspace: " << run->peak_workspace_bytes
            << " bytes (" << FormatBytes(run->peak_workspace_bytes)
            << "; arena high-water "
            << FormatBytes(run->arena_high_water_bytes) << ")\n";
  if (!out_path.empty()) {
    Status s = WriteLinksTsv(run->predicted, out_path);
    if (!s.ok()) return Fail(s);
    std::cout << "wrote " << run->predicted.size() << " links to " << out_path
              << "\n";
  }
  return EXIT_SUCCESS;
}

int CmdServe(int argc, char** argv) {
  if (argc < 4) return Usage();
  // A client vanishing mid-write must surface as EPIPE on the frame layer
  // (mapped to kUnavailable), never kill the server process.
  std::signal(SIGPIPE, SIG_IGN);

  std::string socket_path = kDefaultSocketPath;
  std::string index_path;
  bool use_mmap = false;
  MatchServerConfig config;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string socket_flag = "--socket=";
    if (arg.rfind(socket_flag, 0) == 0) {
      socket_path = arg.substr(socket_flag.size());
      continue;
    }
    const std::string index_flag = "--index=";
    if (arg.rfind(index_flag, 0) == 0) {
      index_path = arg.substr(index_flag.size());
      continue;
    }
    if (arg == "--mmap") {
      use_mmap = true;
      continue;
    }
    const int tier_matched = MatchKernelTierFlag(arg);
    if (tier_matched < 0) return EXIT_FAILURE;
    if (tier_matched > 0) continue;
    unsigned long long value = 0;
    int matched = MatchUintFlag(arg, "threads", &value);
    if (matched < 0) return EXIT_FAILURE;
    if (matched > 0) {
      SetNumThreads(static_cast<size_t>(value));
      continue;
    }
    matched = MatchUintFlag(arg, "max-batch", &value);
    if (matched < 0) return EXIT_FAILURE;
    if (matched > 0) {
      config.max_batch = static_cast<size_t>(value);
      continue;
    }
    matched = MatchUintFlag(arg, "flush-micros", &value);
    if (matched < 0) return EXIT_FAILURE;
    if (matched > 0) {
      config.flush_micros = value;
      continue;
    }
    matched = MatchUintFlag(arg, "queue-capacity", &value);
    if (matched < 0) return EXIT_FAILURE;
    if (matched > 0) {
      config.queue_capacity = static_cast<size_t>(value);
      continue;
    }
    matched = MatchUintFlag(arg, "workspace-budget-bytes", &value);
    if (matched < 0) return EXIT_FAILURE;
    if (matched > 0) {
      config.workspace_budget_bytes = static_cast<size_t>(value);
      continue;
    }
    matched = MatchUintFlag(arg, "shed-watermark", &value);
    if (matched < 0) return EXIT_FAILURE;
    if (matched > 0) {
      config.shed_watermark = static_cast<size_t>(value);
      continue;
    }
    matched = MatchUintFlag(arg, "degrade-watermark", &value);
    if (matched < 0) return EXIT_FAILURE;
    if (matched > 0) {
      config.degrade_watermark = static_cast<size_t>(value);
      continue;
    }
    matched = MatchUintFlag(arg, "degrade-candidates", &value);
    if (matched < 0) return EXIT_FAILURE;
    if (matched > 0) {
      config.degrade_num_candidates = static_cast<size_t>(value);
      continue;
    }
    matched = MatchUintFlag(arg, "degrade-nprobe", &value);
    if (matched < 0) return EXIT_FAILURE;
    if (matched > 0) {
      config.degrade_nprobe = static_cast<size_t>(value);
      continue;
    }
    matched = MatchUintFlag(arg, "degrade-ef", &value);
    if (matched < 0) return EXIT_FAILURE;
    if (matched > 0) {
      config.degrade_ef = static_cast<size_t>(value);
      continue;
    }
    matched = MatchUintFlag(arg, "serve-workers", &value);
    if (matched < 0) return EXIT_FAILURE;
    if (matched > 0) {
      config.serve_workers = static_cast<size_t>(value);
      continue;
    }
    matched = MatchUintFlag(arg, "cache-bytes", &value);
    if (matched < 0) return EXIT_FAILURE;
    if (matched > 0) {
      config.result_cache_bytes = static_cast<size_t>(value);
      continue;
    }
    return Usage();
  }

  // Chaos runs configure themselves through the environment so the exact
  // same command line works with and without an armed plan.
  Status faults = ArmFaultInjectionFromEnv();
  if (!faults.ok()) return Fail(faults);

  // With --mmap the stores back every similarity pass the server runs, so
  // they live for the whole serving session (until after Shutdown below).
  std::optional<MmapStore> src_store;
  std::optional<MmapStore> tgt_store;
  Matrix src;
  Matrix tgt;
  if (use_mmap) {
    Result<MmapStore> s = MmapStore::Open(argv[2]);
    if (!s.ok()) return Fail(s.status());
    src_store = std::move(s).value();
    src = src_store->AsMatrix();
    Result<MmapStore> t = MmapStore::Open(argv[3]);
    if (!t.ok()) return Fail(t.status());
    tgt_store = std::move(t).value();
    tgt = tgt_store->AsMatrix();
  } else {
    Result<Matrix> s = ReadMatrixBinary(argv[2]);
    if (!s.ok()) return Fail(s.status());
    src = std::move(s).value();
    Result<Matrix> t = ReadMatrixBinary(argv[3]);
    if (!t.ok()) return Fail(t.status());
    tgt = std::move(t).value();
  }

  Result<std::unique_ptr<MatchServer>> server = MatchServer::Create(config);
  if (!server.ok()) return Fail(server.status());
  Status loaded = (*server)->LoadPair("default", std::move(src), std::move(tgt));
  if (!loaded.ok()) return Fail(loaded);
  if (!index_path.empty()) {
    Result<CandidateIndex> index = CandidateIndex::Load(index_path);
    if (!index.ok()) return Fail(index.status());
    Status attached = (*server)->AttachIndex(
        "default",
        std::make_unique<CandidateIndex>(std::move(index).value()));
    if (!attached.ok()) return Fail(attached);
  }
  Status started = (*server)->Start();
  if (!started.ok()) return Fail(started);
  Result<std::unique_ptr<SocketServer>> front =
      SocketServer::Start(server->get(), socket_path);
  if (!front.ok()) return Fail(front.status());

  std::cout << "serving on " << socket_path << " (threads=" << GetNumThreads()
            << ", serve_workers=" << (*server)->serve_workers()
            << ", cache=" << (config.result_cache_bytes == 0
                                  ? std::string("off")
                                  : FormatBytes(config.result_cache_bytes))
            << ", max_batch=" << config.max_batch
            << ", flush=" << config.flush_micros
            << " us, queue=" << config.queue_capacity << ", budget="
            << (config.workspace_budget_bytes == 0
                    ? std::string("unlimited")
                    : FormatBytes(config.workspace_budget_bytes))
            << ", fault_plan=" << FaultInjector::Global().Fingerprint()
            << "); send `entmatcher_cli query shutdown` to stop\n";
  (*front)->WaitForShutdown();
  (*front)->Stop();
  (*server)->Shutdown();
  std::cout << "final stats: " << (*server)->Stats().ToJson() << "\n";
  return EXIT_SUCCESS;
}

int CmdSwap(int argc, char** argv) {
  if (argc < 4) return Usage();
  WireRequest request;
  request.verb = WireRequest::Verb::kSwap;
  request.pair = "default";
  request.source_path = argv[2];
  request.target_path = argv[3];
  std::string socket_path = kDefaultSocketPath;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string socket_flag = "--socket=";
    if (arg.rfind(socket_flag, 0) == 0) {
      socket_path = arg.substr(socket_flag.size());
      continue;
    }
    const std::string pair_flag = "--pair=";
    if (arg.rfind(pair_flag, 0) == 0) {
      request.pair = arg.substr(pair_flag.size());
      continue;
    }
    const std::string index_flag = "--index=";
    if (arg.rfind(index_flag, 0) == 0) {
      request.index_path = arg.substr(index_flag.size());
      continue;
    }
    return Usage();
  }
  Result<ServeClient> client = ServeClient::Connect(socket_path);
  if (!client.ok()) return Fail(client.status());
  // Plain Call, never CallWithRetry: a retry after an ambiguous transport
  // failure could publish the swap twice.
  Result<WireResponse> response = client->Call(request);
  if (!response.ok()) return Fail(response.status());
  if (!response->status.ok()) return Fail(response->status);
  std::cout << response->text << "\n";
  return EXIT_SUCCESS;
}

int CmdQuery(int argc, char** argv, int first = 2) {
  std::string socket_path = kDefaultSocketPath;
  RetryPolicy policy;
  policy.max_attempts = 1;  // retries are opt-in on the CLI
  std::vector<std::string> words;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string socket_flag = "--socket=";
    if (arg.rfind(socket_flag, 0) == 0) {
      socket_path = arg.substr(socket_flag.size());
      continue;
    }
    unsigned long long value = 0;
    const int matched = MatchUintFlag(arg, "retries", &value);
    if (matched < 0) return EXIT_FAILURE;
    if (matched > 0) {
      policy.max_attempts = static_cast<uint32_t>(value) + 1;
      continue;
    }
    words.push_back(arg);
  }
  if (words.empty()) return Usage();

  // The request line IS the CLI tail — one grammar (serve/protocol.h) for
  // both surfaces.
  Result<WireRequest> request = ParseRequest(JoinStrings(words, " "));
  if (!request.ok()) return Fail(request.status());
  Result<ServeClient> client = ServeClient::Connect(socket_path);
  if (!client.ok()) return Fail(client.status());
  // Swap is excluded from retry (see CmdSwap).
  Result<WireResponse> response =
      request->verb == WireRequest::Verb::kSwap
          ? client->Call(*request)
          : client->CallWithRetry(*request, policy);
  if (!response.ok()) return Fail(response.status());
  if (!response->status.ok()) return Fail(response->status);

  if (request->verb == WireRequest::Verb::kStats ||
      request->verb == WireRequest::Verb::kHealth ||
      request->verb == WireRequest::Verb::kShutdown ||
      request->verb == WireRequest::Verb::kSwap ||
      request->verb == WireRequest::Verb::kShards ||
      request->verb == WireRequest::Verb::kHello) {
    std::cout << response->text << "\n";
    return EXIT_SUCCESS;
  }
  if (request->verb == WireRequest::Verb::kMatch) {
    size_t matched = 0;
    for (int32_t target : response->values) matched += (target >= 0);
    std::cout << "assignment: " << matched << "/" << response->values.size()
              << " sources matched\n";
  } else {
    const size_t rows =
        request->k > 0 ? response->values.size() / request->k : 0;
    std::cout << "topk: " << request->k << " candidates for " << rows
              << " sources\n";
  }
  const size_t preview = std::min<size_t>(response->values.size(), 8);
  for (size_t i = 0; i < preview; ++i) {
    std::cout << (i > 0 ? " " : "") << response->values[i];
  }
  if (preview > 0) {
    std::cout << (response->values.size() > preview ? " ...\n" : "\n");
  }
  return EXIT_SUCCESS;
}

int CmdFleetPlan(int argc, char** argv) {
  if (argc < 6) return Usage();
  const std::string name = argv[3];
  const std::string source_path = argv[4];
  const std::string target_path = argv[5];
  std::string out_path;
  std::string socket_dir = ".";
  std::string index_path;
  unsigned long long num_shards = 0;
  unsigned long long replicas = 0;
  for (int i = 6; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string out_flag = "--out=";
    if (arg.rfind(out_flag, 0) == 0) {
      out_path = arg.substr(out_flag.size());
      continue;
    }
    const std::string dir_flag = "--socket-dir=";
    if (arg.rfind(dir_flag, 0) == 0) {
      socket_dir = arg.substr(dir_flag.size());
      continue;
    }
    const std::string index_flag = "--index=";
    if (arg.rfind(index_flag, 0) == 0) {
      index_path = arg.substr(index_flag.size());
      continue;
    }
    unsigned long long value = 0;
    int matched = MatchUintFlag(arg, "shards", &value);
    if (matched < 0) return EXIT_FAILURE;
    if (matched > 0) {
      num_shards = value;
      continue;
    }
    matched = MatchUintFlag(arg, "replicas", &value);
    if (matched < 0) return EXIT_FAILURE;
    if (matched > 0) {
      replicas = value;
      continue;
    }
    return Usage();
  }
  if (out_path.empty() || num_shards == 0) return Usage();
  // The decision space is the pair's source rows — read the header-bearing
  // matrix to size the ranges.
  Result<Matrix> src = ReadMatrixBinary(source_path);
  if (!src.ok()) return Fail(src.status());
  Result<ShardPlan> plan = ShardPlan::EvenSplit(
      name, source_path, target_path, index_path, src->rows(),
      static_cast<int>(num_shards), socket_dir, static_cast<int>(replicas));
  if (!plan.ok()) return Fail(plan.status());
  Status saved = plan->Save(out_path);
  if (!saved.ok()) return Fail(saved);
  std::cout << "plan: " << out_path << " (" << num_shards << " shards, "
            << src->rows() << " rows, replicas=" << replicas << ")\n";
  return EXIT_SUCCESS;
}

/// One shard of the fleet: a plain MatchServer that loads every pair the
/// plan assigns to it (FULL pair — the plan partitions answers, not data)
/// and listens on the plan's socket for this shard.
int RunFleetShard(const ShardPlan& plan, int shard_id,
                  const MatchServerConfig& config) {
  const ShardSpec* shard = plan.FindShard(shard_id);
  if (shard == nullptr) {
    return Fail(Status::NotFound("plan defines no shard " +
                                 std::to_string(shard_id)));
  }
  Result<std::unique_ptr<MatchServer>> server = MatchServer::Create(config);
  if (!server.ok()) return Fail(server.status());
  const std::vector<std::string> owned = plan.PairsOwnedBy(shard_id);
  if (owned.empty()) {
    return Fail(Status::FailedPrecondition(
        "shard " + std::to_string(shard_id) + " owns no ranges in the plan"));
  }
  for (const std::string& name : owned) {
    const PairSpec* pair = plan.FindPair(name);
    Result<Matrix> src = ReadMatrixBinary(pair->source_path);
    if (!src.ok()) return Fail(src.status());
    Result<Matrix> tgt = ReadMatrixBinary(pair->target_path);
    if (!tgt.ok()) return Fail(tgt.status());
    if (src->rows() != pair->rows) {
      return Fail(Status::FailedPrecondition(
          "plan says pair '" + name + "' has " + std::to_string(pair->rows) +
          " rows but " + pair->source_path + " has " +
          std::to_string(src->rows())));
    }
    Status loaded = (*server)->LoadPair(name, std::move(src).value(),
                                        std::move(tgt).value());
    if (!loaded.ok()) return Fail(loaded);
    if (!pair->index_path.empty()) {
      Result<CandidateIndex> index = CandidateIndex::Load(pair->index_path);
      if (!index.ok()) return Fail(index.status());
      Status attached = (*server)->AttachIndex(
          name, std::make_unique<CandidateIndex>(std::move(index).value()));
      if (!attached.ok()) return Fail(attached);
    }
  }
  Status started = (*server)->Start();
  if (!started.ok()) return Fail(started);
  Result<std::unique_ptr<SocketServer>> front =
      SocketServer::Start(server->get(), shard->socket_path);
  if (!front.ok()) return Fail(front.status());
  std::cout << "shard " << shard_id << " serving " << owned.size()
            << " pair(s) on " << shard->socket_path << "\n";
  (*front)->WaitForShutdown();
  (*front)->Stop();
  (*server)->Shutdown();
  return EXIT_SUCCESS;
}

int CmdFleetServe(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);
  std::string plan_path;
  std::string socket_path = kDefaultSocketPath;
  bool have_shard = false;
  bool spawn = true;
  unsigned long long shard_id = 0;
  unsigned long long hedge_micros = 0;
  std::optional<unsigned long long> retries;
  RestartPolicy restart_policy;
  RouterConfig router_config;
  MatchServerConfig config;
  std::vector<std::string> shard_flags;  // forwarded to spawned shards
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string plan_flag = "--plan=";
    if (arg.rfind(plan_flag, 0) == 0) {
      plan_path = arg.substr(plan_flag.size());
      continue;
    }
    const std::string socket_flag = "--socket=";
    if (arg.rfind(socket_flag, 0) == 0) {
      socket_path = arg.substr(socket_flag.size());
      continue;
    }
    if (arg == "--no-spawn") {
      spawn = false;
      continue;
    }
    const std::string restart_flag = "--restart-policy=";
    if (arg.rfind(restart_flag, 0) == 0) {
      Result<RestartPolicy> parsed =
          RestartPolicy::Parse(arg.substr(restart_flag.size()));
      if (!parsed.ok()) return Fail(parsed.status());
      restart_policy = *parsed;
      continue;
    }
    const std::string partial_flag = "--partial=";
    if (arg.rfind(partial_flag, 0) == 0) {
      const std::string mode = arg.substr(partial_flag.size());
      if (mode == "unavailable") {
        router_config.partial_policy = PartialPolicy::kUnavailable;
      } else if (mode == "degrade") {
        router_config.partial_policy = PartialPolicy::kDegrade;
      } else {
        return Fail(Status::InvalidArgument(
            "--partial must be 'unavailable' or 'degrade', got '" + mode +
            "'"));
      }
      continue;
    }
    unsigned long long value = 0;
    int matched = MatchUintFlag(arg, "shard", &value);
    if (matched < 0) return EXIT_FAILURE;
    if (matched > 0) {
      have_shard = true;
      shard_id = value;
      continue;
    }
    matched = MatchUintFlag(arg, "hedge-micros", &value);
    if (matched < 0) return EXIT_FAILURE;
    if (matched > 0) {
      hedge_micros = value;
      continue;
    }
    matched = MatchUintFlag(arg, "retries", &value);
    if (matched < 0) return EXIT_FAILURE;
    if (matched > 0) {
      retries = value;
      continue;
    }
    matched = MatchUintFlag(arg, "breaker-failures", &value);
    if (matched < 0) return EXIT_FAILURE;
    if (matched > 0) {
      router_config.breaker_failures = static_cast<uint32_t>(value);
      continue;
    }
    matched = MatchUintFlag(arg, "breaker-cooldown-us", &value);
    if (matched < 0) return EXIT_FAILURE;
    if (matched > 0) {
      router_config.breaker_cooldown_micros = value;
      continue;
    }
    // Shard-side tuning: applied directly in --shard mode, forwarded
    // verbatim to spawned children in router mode.
    matched = MatchUintFlag(arg, "threads", &value);
    if (matched < 0) return EXIT_FAILURE;
    if (matched > 0) {
      SetNumThreads(static_cast<size_t>(value));
      shard_flags.push_back(arg);
      continue;
    }
    matched = MatchUintFlag(arg, "serve-workers", &value);
    if (matched < 0) return EXIT_FAILURE;
    if (matched > 0) {
      config.serve_workers = static_cast<size_t>(value);
      shard_flags.push_back(arg);
      continue;
    }
    matched = MatchUintFlag(arg, "cache-bytes", &value);
    if (matched < 0) return EXIT_FAILURE;
    if (matched > 0) {
      config.result_cache_bytes = static_cast<size_t>(value);
      shard_flags.push_back(arg);
      continue;
    }
    matched = MatchUintFlag(arg, "max-batch", &value);
    if (matched < 0) return EXIT_FAILURE;
    if (matched > 0) {
      config.max_batch = static_cast<size_t>(value);
      shard_flags.push_back(arg);
      continue;
    }
    matched = MatchUintFlag(arg, "flush-micros", &value);
    if (matched < 0) return EXIT_FAILURE;
    if (matched > 0) {
      config.flush_micros = value;
      shard_flags.push_back(arg);
      continue;
    }
    matched = MatchUintFlag(arg, "queue-capacity", &value);
    if (matched < 0) return EXIT_FAILURE;
    if (matched > 0) {
      config.queue_capacity = static_cast<size_t>(value);
      shard_flags.push_back(arg);
      continue;
    }
    matched = MatchUintFlag(arg, "shed-watermark", &value);
    if (matched < 0) return EXIT_FAILURE;
    if (matched > 0) {
      config.shed_watermark = static_cast<size_t>(value);
      shard_flags.push_back(arg);
      continue;
    }
    return Usage();
  }
  if (plan_path.empty()) return Usage();
  Result<ShardPlan> plan = ShardPlan::Load(plan_path);
  if (!plan.ok()) return Fail(plan.status());

  // Chaos plans arm per process: a shard inherits EM_FAULT_PLAN through the
  // environment, so injected faults hit shards, not the router.
  Status faults = ArmFaultInjectionFromEnv();
  if (!faults.ok()) return Fail(faults);

  if (have_shard) {
    return RunFleetShard(*plan, static_cast<int>(shard_id), config);
  }

  ShardManager manager;
  if (spawn) {
    ShardCommand command = ShardCommand::SelfServe(plan_path);
    for (const std::string& flag : shard_flags) command.argv.push_back(flag);
    Status started = manager.Start(*plan, command);
    if (!started.ok()) return Fail(started);
    Status healthy = manager.WaitHealthy(15'000'000);
    if (!healthy.ok()) {
      manager.StopAll();
      return Fail(healthy);
    }
  }
  if (retries.has_value()) {
    router_config.retry.max_attempts = static_cast<uint32_t>(*retries) + 1;
  }
  router_config.hedge_micros = hedge_micros;
  // Declared before the router so the on_swap_converged lambda's capture
  // outlives every router callback.
  std::unique_ptr<FleetSupervisor> supervisor;
  router_config.on_swap_converged =
      [&supervisor](const std::string& pair, const std::string& source_path,
                    const std::string& target_path,
                    const std::string& index_path, uint64_t /*version*/) {
        if (supervisor) {
          supervisor->RecordSwap(pair, source_path, target_path, index_path);
        }
      };
  Result<std::unique_ptr<Router>> router =
      Router::Create(*plan, router_config);
  if (!router.ok()) {
    manager.StopAll();
    return Fail(router.status());
  }
  // Self-healing only makes sense when this process owns the shard
  // lifecycle: in --no-spawn mode an external operator does.
  if (spawn && restart_policy.enabled) {
    supervisor = std::make_unique<FleetSupervisor>(
        &manager, router->get(), *plan, restart_policy);
    Status watching = supervisor->Start();
    if (!watching.ok()) {
      manager.StopAll();
      return Fail(watching);
    }
    (*router)->SetSupervisorStatus(
        [&supervisor] { return supervisor->StatusJson(); });
  }
  RouterHandler handler(router->get());
  Result<std::unique_ptr<SocketServer>> front =
      SocketServer::Start(&handler, socket_path);
  if (!front.ok()) {
    if (supervisor) supervisor->Stop();
    manager.StopAll();
    return Fail(front.status());
  }
  std::cout << "fleet: routing " << plan->shards.size() << " shard(s), "
            << plan->pairs.size() << " pair(s) on " << socket_path
            << (spawn ? "" : " (no-spawn)") << ", hedge="
            << hedge_micros << " us"
            << (supervisor ? ", restart-policy=" + restart_policy.ToString()
                           : "")
            << "; send `entmatcher_cli fleet query shutdown` to stop\n";
  (*front)->WaitForShutdown();
  (*front)->Stop();
  // Teardown order matters: the supervisor stops FIRST so the manager's
  // kills below stay final instead of racing a restart.
  if (supervisor) {
    supervisor->Stop();
    std::cout << "supervisor: " << supervisor->StatusJson() << "\n";
  }
  std::cout << "router stats: " << (*router)->Stats().ToJson() << "\n";
  router->reset();  // drain stragglers before tearing down shards
  manager.StopAll();
  return EXIT_SUCCESS;
}

int CmdFleetSwap(int argc, char** argv) {
  if (argc < 6) return Usage();
  WireRequest request;
  request.verb = WireRequest::Verb::kSwap;
  request.pair = argv[3];
  request.source_path = argv[4];
  request.target_path = argv[5];
  std::string socket_path = kDefaultSocketPath;
  for (int i = 6; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string socket_flag = "--socket=";
    if (arg.rfind(socket_flag, 0) == 0) {
      socket_path = arg.substr(socket_flag.size());
      continue;
    }
    const std::string index_flag = "index=";
    if (arg.rfind(index_flag, 0) == 0) {
      request.index_path = arg.substr(index_flag.size());
      continue;
    }
    return Usage();
  }
  Result<ServeClient> client = ServeClient::Connect(socket_path);
  if (!client.ok()) return Fail(client.status());
  // Never retried — the router fans out sequentially and reports exactly
  // which shards confirmed (see Router::Swap).
  Result<WireResponse> response = client->Call(request);
  if (!response.ok()) return Fail(response.status());
  if (!response->status.ok()) return Fail(response->status);
  std::cout << response->text << "\n";
  return EXIT_SUCCESS;
}

int CmdFleetStatus(int argc, char** argv) {
  std::string socket_path = kDefaultSocketPath;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string socket_flag = "--socket=";
    if (arg.rfind(socket_flag, 0) == 0) {
      socket_path = arg.substr(socket_flag.size());
      continue;
    }
    return Usage();
  }
  Result<ServeClient> client = ServeClient::Connect(socket_path);
  if (!client.ok()) return Fail(client.status());
  WireRequest request;
  request.verb = WireRequest::Verb::kHealth;
  Result<WireResponse> response = client->Call(request);
  if (!response.ok()) return Fail(response.status());
  if (!response->status.ok()) return Fail(response->status);
  std::cout << response->text << "\n";
  return EXIT_SUCCESS;
}

int CmdFleet(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string sub = argv[2];
  if (sub == "plan") return CmdFleetPlan(argc, argv);
  if (sub == "serve") return CmdFleetServe(argc, argv);
  if (sub == "query") return CmdQuery(argc, argv, /*first=*/3);
  if (sub == "swap") return CmdFleetSwap(argc, argv);
  if (sub == "status") return CmdFleetStatus(argc, argv);
  return Usage();
}

int CmdEval(int argc, char** argv) {
  if (argc < 4) return Usage();
  Result<KgPairDataset> dataset = LoadDatasetDir(argv[2]);
  if (!dataset.ok()) return Fail(dataset.status());
  Result<AlignmentSet> predicted = ReadLinksTsv(argv[3]);
  if (!predicted.ok()) return Fail(predicted.status());
  const EvalMetrics m = EvaluatePredictions(*predicted, dataset->split.test);
  std::cout << "P=" << FormatDouble(m.precision, 3)
            << " R=" << FormatDouble(m.recall, 3)
            << " F1=" << FormatDouble(m.f1, 3) << " (" << m.correct << "/"
            << m.found << " correct, " << m.gold << " gold)\n";
  return EXIT_SUCCESS;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "generate") return CmdGenerate(argc, argv);
  if (command == "stats") return CmdStats(argc, argv);
  if (command == "embed") return CmdEmbed(argc, argv);
  if (command == "index") return CmdIndex(argc, argv);
  if (command == "mmap") return CmdMmap(argc, argv);
  if (command == "match") return CmdMatch(argc, argv);
  if (command == "eval") return CmdEval(argc, argv);
  if (command == "serve") return CmdServe(argc, argv);
  if (command == "swap") return CmdSwap(argc, argv);
  if (command == "query") return CmdQuery(argc, argv);
  if (command == "fleet") return CmdFleet(argc, argv);
  return Usage();
}
