// Example: using EntMatcher-C++ as a toolkit on YOUR OWN embeddings.
//
// The library's loosely-coupled design (paper Fig. 3) lets you combine any
// similarity metric, any score transform, and any matching decision. This
// example builds a small embedding space by hand, then:
//   1. mixes-and-matches pipeline stages through the matrix-level API,
//   2. round-trips a KG through the TSV interchange format,
//   3. shows how a new combination (e.g. CSLS scores + Hungarian decision —
//      not one of the paper's named presets) is one options struct away.
//
// Build & run: ./build/examples/custom_pipeline

#include <cstdlib>
#include <iostream>

#include "common/rng.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "kg/io.h"
#include "la/matrix.h"
#include "matching/engine.h"
#include "matching/pipeline.h"

namespace {

using namespace entmatcher;

// A toy embedding space: targets are noisy copies of sources under a random
// permutation, plus one "hub" vector that attracts everything.
struct ToySpace {
  Matrix source;
  Matrix target;
  std::vector<uint32_t> gold_permutation;
};

ToySpace MakeToySpace(size_t n, size_t dim, double noise, uint64_t seed) {
  Rng rng(seed);
  ToySpace toy;
  toy.source = Matrix(n, dim);
  toy.target = Matrix(n, dim);
  toy.gold_permutation.resize(n);
  for (size_t i = 0; i < n; ++i) {
    toy.gold_permutation[i] = static_cast<uint32_t>(i);
  }
  rng.Shuffle(&toy.gold_permutation);

  std::vector<float> hub(dim);
  for (float& v : hub) v = static_cast<float>(rng.NextGaussian());
  for (size_t i = 0; i < n; ++i) {
    auto src = toy.source.Row(i);
    auto tgt = toy.target.Row(toy.gold_permutation[i]);
    for (size_t k = 0; k < dim; ++k) {
      const float v = static_cast<float>(rng.NextGaussian());
      // Mix in the hub direction to create hubness, the failure mode CSLS
      // and RInf were designed to fix.
      src[k] = v + 0.8f * hub[k];
      tgt[k] = v + 0.8f * hub[k] +
               static_cast<float>(noise * rng.NextGaussian());
    }
  }
  return toy;
}

double Accuracy(const Assignment& a, const std::vector<uint32_t>& gold) {
  size_t correct = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.target_of_source[i] == static_cast<int32_t>(gold[i])) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(a.size());
}

}  // namespace

int main() {
  const ToySpace toy = MakeToySpace(/*n=*/400, /*dim=*/32, /*noise=*/0.9,
                                    /*seed=*/7);

  // Every (metric, transform, matcher) combination is a MatchOptions value.
  struct Combo {
    std::string name;
    MatchOptions options;
  };
  std::vector<Combo> combos;
  {
    MatchOptions o;  // cosine + none + greedy == DInf
    combos.push_back({"cosine|none|greedy (DInf)", o});
    o.metric = SimilarityMetric::kNegEuclidean;
    combos.push_back({"euclidean|none|greedy", o});
    o = MatchOptions();
    o.transform = ScoreTransformKind::kCsls;
    o.csls_k = 3;
    combos.push_back({"cosine|CSLS(k=3)|greedy", o});
    o.matcher = MatcherKind::kHungarian;
    combos.push_back({"cosine|CSLS(k=3)|hungarian (novel combo)", o});
    o = MatchOptions();
    o.transform = ScoreTransformKind::kSinkhorn;
    o.matcher = MatcherKind::kGaleShapley;
    combos.push_back({"cosine|sinkhorn|gale-shapley (novel combo)", o});
  }

  // One MatchEngine session runs every combination: the engine keeps the
  // embeddings plus per-metric similarity caches, and its workspace arena
  // recycles the score/scratch buffers between queries — same results as
  // five fresh MatchEmbeddings calls, one set of allocations.
  Result<MatchEngine> engine =
      MatchEngine::Create(toy.source, toy.target, combos.front().options);
  if (!engine.ok()) {
    std::cerr << "engine: " << engine.status().ToString() << "\n";
    return EXIT_FAILURE;
  }
  entmatcher::TablePrinter table({"Pipeline", "Accuracy"});
  for (const Combo& combo : combos) {
    Result<Assignment> a = engine->Match(combo.options);
    if (!a.ok()) {
      std::cerr << combo.name << ": " << a.status().ToString() << "\n";
      return EXIT_FAILURE;
    }
    table.AddRow({combo.name,
                  entmatcher::FormatDouble(
                      Accuracy(*a, toy.gold_permutation), 3)});
  }
  table.Print(std::cout);
  std::cout << "\nWorkspace: " << engine->workspace().capacity_bytes()
            << " bytes of arena slabs served all " << combos.size()
            << " pipelines (high water "
            << engine->workspace().high_water_bytes() << " bytes).\n";

  // TSV interchange: persist a toy KG and read it back.
  auto graph = KnowledgeGraph::Create(3, 1, {{0, 0, 1}, {1, 0, 2}});
  if (!graph.ok()) return EXIT_FAILURE;
  const std::string path = "/tmp/entmatcher_custom_pipeline.tsv";
  if (!WriteTriplesTsv(*graph, path).ok()) return EXIT_FAILURE;
  auto loaded = ReadTriplesTsv(path);
  if (!loaded.ok()) return EXIT_FAILURE;
  std::cout << "\nTSV round-trip: wrote and re-read "
            << loaded->triples().size() << " triples via " << path << "\n";
  return EXIT_SUCCESS;
}
