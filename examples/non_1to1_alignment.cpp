// Example: non-1-to-1 alignment (paper Sec. 5.2).
//
// An FB_DBP_MUL-style pair is generated in which most gold links belong to
// 1-to-many / many-to-1 / many-to-many clusters (granularity differences and
// duplicates between KGs). Every current algorithm emits at most one link
// per source entity, so recall is structurally capped, and the hard 1-to-1
// matchers (Hungarian, Gale–Shapley) are actively penalized.
//
// Build & run: ./build/examples/non_1to1_alignment

#include <cstdlib>
#include <iostream>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "datagen/benchmarks.h"
#include "embedding/provider.h"
#include "eval/experiment.h"

int main() {
  using namespace entmatcher;

  Result<KgPairDataset> dataset = GenerateDataset("FB-MUL", /*scale=*/0.5);
  if (!dataset.ok()) {
    std::cerr << dataset.status().ToString() << "\n";
    return EXIT_FAILURE;
  }
  const size_t non11 = dataset->gold.size() - dataset->gold.CountOneToOneLinks();
  std::cout << "gold links: " << dataset->gold.size() << " (" << non11
            << " non-1-to-1)\n"
            << "test links: " << dataset->split.test.size() << " over "
            << dataset->test_source_entities.size()
            << " source entities -> recall is capped at "
            << FormatDouble(
                   static_cast<double>(dataset->test_source_entities.size()) /
                       static_cast<double>(dataset->split.test.size()),
                   2)
            << " even for a perfect one-link-per-source matcher\n\n";

  Result<EmbeddingPair> embeddings =
      ComputeEmbeddings(*dataset, EmbeddingSetting::kRreaStruct);
  if (!embeddings.ok()) {
    std::cerr << embeddings.status().ToString() << "\n";
    return EXIT_FAILURE;
  }

  TablePrinter table({"Algorithm", "P", "R", "F1"});
  for (AlgorithmPreset preset : MainPresets()) {
    Result<ExperimentResult> r = RunExperiment(*dataset, *embeddings, preset);
    if (!r.ok()) {
      std::cerr << r.status().ToString() << "\n";
      return EXIT_FAILURE;
    }
    table.AddRow({r->algorithm, FormatDouble(r->metrics.precision, 3),
                  FormatDouble(r->metrics.recall, 3),
                  FormatDouble(r->metrics.f1, 3)});
  }
  table.Print(std::cout);
  std::cout << "\nPer the paper's insight 3: RInf/CSLS are preferred here — "
               "they model the\nreciprocal influence without hard-enforcing "
               "the (violated) 1-to-1 constraint.\n";
  return EXIT_SUCCESS;
}
