// Example: aligning KGs that contain unmatchable entities (paper Sec. 5.1).
//
// A DBP15K+-style pair is generated in which 30% of the test source
// candidates have no counterpart in the target KG. The example contrasts:
//   - greedy matching (DInf): aligns *every* source, so each unmatchable
//     entity produces a wrong pair and precision collapses;
//   - Hungarian with dummy-node padding: unmatchable sources are pushed to
//     dummy columns and come back as "no match", preserving precision.
//
// Build & run: ./build/examples/unmatchable_alignment

#include <cstdlib>
#include <iostream>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "datagen/benchmarks.h"
#include "embedding/provider.h"
#include "eval/experiment.h"

int main() {
  using namespace entmatcher;

  Result<KgPairDataset> dataset = GenerateDataset("D-Z+", /*scale=*/0.5);
  if (!dataset.ok()) {
    std::cerr << dataset.status().ToString() << "\n";
    return EXIT_FAILURE;
  }
  const size_t linked = dataset->split.test.SourceEntities().size();
  const size_t total = dataset->test_source_entities.size();
  std::cout << "test source candidates: " << total << " (" << total - linked
            << " unmatchable)\n";

  Result<EmbeddingPair> embeddings =
      ComputeEmbeddings(*dataset, EmbeddingSetting::kRreaStruct);
  if (!embeddings.ok()) {
    std::cerr << embeddings.status().ToString() << "\n";
    return EXIT_FAILURE;
  }

  TablePrinter table({"Algorithm", "P", "R", "F1", "Unmatched sources"});
  for (AlgorithmPreset preset :
       {AlgorithmPreset::kDInf, AlgorithmPreset::kCsls,
        AlgorithmPreset::kHungarian, AlgorithmPreset::kStableMatch}) {
    Result<MatchRun> run =
        RunMatching(*dataset, *embeddings, MakePreset(preset));
    if (!run.ok()) {
      std::cerr << run.status().ToString() << "\n";
      return EXIT_FAILURE;
    }
    EvalMetrics m = EvaluatePredictions(run->predicted, dataset->split.test);
    table.AddRow({PresetName(preset), FormatDouble(m.precision, 3),
                  FormatDouble(m.recall, 3), FormatDouble(m.f1, 3),
                  std::to_string(run->assignment.size() -
                                 run->assignment.NumMatched())});
  }
  table.Print(std::cout);
  std::cout << "\nGreedy methods align every source (0 unmatched) and pay in "
               "precision;\nHun./SMat reject via dummy nodes — the paper's "
               "recipe for this setting.\n";
  return EXIT_SUCCESS;
}
