// Example: sweep every embedding setting x matching algorithm over chosen
// KG pairs — a compact command-line research harness on top of the library.
//
// Usage:
//   ./build/examples/setting_sweep [scale] [pair ...]
//   ./build/examples/setting_sweep 0.5 D-Z S-F FB-MUL
//
// Defaults to scale 1.0 and pairs {D-Z, S-F, S-W}. Prints, for each pair and
// each embedding setting (G/R/N/NR), the F1 and time of the paper's seven
// matching algorithms.

#include <cstdlib>
#include <iostream>

#include "common/string_util.h"
#include "common/timer.h"
#include "datagen/benchmarks.h"
#include "embedding/provider.h"
#include "eval/experiment.h"

int main(int argc, char** argv) {
  using namespace entmatcher;

  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  std::vector<std::string> pairs = {"D-Z", "S-F", "S-W"};
  if (argc > 2) {
    pairs.clear();
    for (int i = 2; i < argc; ++i) pairs.push_back(argv[i]);
  }

  for (const std::string& pair : pairs) {
    Result<KgPairDataset> dataset = GenerateDataset(pair, scale);
    if (!dataset.ok()) {
      std::cerr << dataset.status().ToString() << "\n";
      return EXIT_FAILURE;
    }
    std::cout << "== " << pair << " (scale " << scale << "): "
              << dataset->TotalEntities() << " entities, "
              << dataset->TotalTriples() << " triples, "
              << dataset->gold.size() << " gold links, "
              << dataset->split.test.size() << " test links\n";

    for (EmbeddingSetting setting :
         {EmbeddingSetting::kGcnStruct, EmbeddingSetting::kRreaStruct,
          EmbeddingSetting::kNameOnly, EmbeddingSetting::kNameRrea}) {
      Timer timer;
      Result<EmbeddingPair> embeddings = ComputeEmbeddings(*dataset, setting);
      if (!embeddings.ok()) {
        std::cerr << embeddings.status().ToString() << "\n";
        return EXIT_FAILURE;
      }
      std::cout << EmbeddingSettingPrefix(setting) << " (embed "
                << FormatDouble(timer.ElapsedSeconds(), 1) << "s): ";
      for (AlgorithmPreset preset : MainPresets()) {
        Result<ExperimentResult> r =
            RunExperiment(*dataset, *embeddings, preset);
        if (!r.ok()) {
          std::cerr << r.status().ToString() << "\n";
          return EXIT_FAILURE;
        }
        std::cout << r->algorithm << "=" << FormatDouble(r->metrics.f1, 3)
                  << "(" << FormatDouble(r->seconds, 1) << "s) ";
        std::cout.flush();
      }
      std::cout << "\n";
    }
  }
  return EXIT_SUCCESS;
}
