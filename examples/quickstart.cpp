// Quickstart: generate a synthetic KG pair, learn unified embeddings, and
// compare a few embedding-matching algorithms.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdlib>
#include <iostream>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "datagen/benchmarks.h"
#include "embedding/provider.h"
#include "eval/experiment.h"

int main() {
  using namespace entmatcher;

  // 1. A DBP15K-style KG pair at 1/3 scale (fast for a demo).
  Result<KgPairDataset> dataset = GenerateDataset("D-Z", /*scale=*/0.33);
  if (!dataset.ok()) {
    std::cerr << dataset.status().ToString() << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "dataset " << dataset->name << ": " << dataset->TotalEntities()
            << " entities, " << dataset->TotalTriples() << " triples, "
            << dataset->gold.size() << " gold links ("
            << dataset->split.test.size() << " test)\n";

  // 2. Unified entity embeddings from the RREA-style structural model.
  Result<EmbeddingPair> embeddings =
      ComputeEmbeddings(*dataset, EmbeddingSetting::kRreaStruct);
  if (!embeddings.ok()) {
    std::cerr << embeddings.status().ToString() << "\n";
    return EXIT_FAILURE;
  }

  // 3. Match the KGs in the embedding space with each algorithm.
  TablePrinter table({"Algorithm", "F1", "Time (s)", "Workspace"});
  for (AlgorithmPreset preset : MainPresets()) {
    Result<ExperimentResult> result =
        RunExperiment(*dataset, *embeddings, preset);
    if (!result.ok()) {
      std::cerr << PresetName(preset) << ": " << result.status().ToString()
                << "\n";
      return EXIT_FAILURE;
    }
    table.AddRow({result->algorithm, FormatDouble(result->metrics.f1, 3),
                  FormatDouble(result->seconds, 2),
                  FormatBytes(result->peak_workspace_bytes)});
  }
  table.Print(std::cout);
  return EXIT_SUCCESS;
}
