// Example: the Appendix-D-style case study — explainable matching decisions.
//
// Picks test source entities where DInf's raw nearest neighbor is WRONG but
// an advanced transform (RInf here) recovers the gold target, and prints the
// full decision trace: raw scores/ranks vs transformed scores/ranks per
// candidate. This realizes the paper's claim (Sec. 1) that the embedding
// matching stage "empowers EA with explainability", because the trace shows
// exactly why the decision moved.
//
// Build & run: ./build/examples/case_study

#include <cstdlib>
#include <iostream>

#include "datagen/benchmarks.h"
#include "embedding/provider.h"
#include "eval/explain.h"
#include "eval/experiment.h"

int main() {
  using namespace entmatcher;

  Result<KgPairDataset> dataset = GenerateDataset("D-Z", /*scale=*/0.5);
  if (!dataset.ok()) {
    std::cerr << dataset.status().ToString() << "\n";
    return EXIT_FAILURE;
  }
  Result<EmbeddingPair> embeddings =
      ComputeEmbeddings(*dataset, EmbeddingSetting::kRreaStruct);
  if (!embeddings.ok()) {
    std::cerr << embeddings.status().ToString() << "\n";
    return EXIT_FAILURE;
  }

  // Find entities where DInf errs but RInf is correct.
  Result<MatchRun> dinf =
      RunMatching(*dataset, *embeddings, MakePreset(AlgorithmPreset::kDInf));
  Result<MatchRun> rinf =
      RunMatching(*dataset, *embeddings, MakePreset(AlgorithmPreset::kRinf));
  if (!dinf.ok() || !rinf.ok()) {
    std::cerr << "matching failed\n";
    return EXIT_FAILURE;
  }
  std::vector<EntityId> interesting;
  for (size_t i = 0;
       i < dataset->test_source_entities.size() && interesting.size() < 4;
       ++i) {
    const EntityId s = dataset->test_source_entities[i];
    const auto& tgt_ids = dataset->test_target_entities;
    const int32_t dj = dinf->assignment.target_of_source[i];
    const int32_t rj = rinf->assignment.target_of_source[i];
    if (dj < 0 || rj < 0) continue;
    const bool dinf_ok = dataset->split.test.Contains(s, tgt_ids[dj]);
    const bool rinf_ok = dataset->split.test.Contains(s, tgt_ids[rj]);
    if (!dinf_ok && rinf_ok) interesting.push_back(s);
  }
  if (interesting.empty()) {
    std::cout << "no DInf-wrong/RInf-right cases at this scale\n";
    return EXIT_SUCCESS;
  }
  std::cout << "cases where the raw nearest neighbor (DInf) is wrong but the\n"
               "reciprocal ranking (RInf) recovers the gold target:\n\n";

  Result<std::vector<MatchExplanation>> traces = ExplainMatches(
      *dataset, *embeddings, MakePreset(AlgorithmPreset::kRinf), interesting);
  if (!traces.ok()) {
    std::cerr << traces.status().ToString() << "\n";
    return EXIT_FAILURE;
  }
  for (const MatchExplanation& trace : *traces) {
    std::cout << FormatExplanation(trace) << "\n";
  }
  return EXIT_SUCCESS;
}
