// Candidate-index benchmark: measures what the IVF blocking + sparse score
// pipeline buys and what it costs.
//
//   1. Recall@c sweep: average fraction of the exact dense top-c targets
//      that survive into the candidate list, across c x nprobe. The headline
//      configuration must reach >= 0.95 recall — an index that drops the
//      true matches is not an optimization, it is a different (worse)
//      algorithm. The synthetic pair is clustered (mixture of Gaussians)
//      with sources as noisy copies of targets, the regime entity
//      embeddings actually live in; on structureless iid-Gaussian data IVF
//      blocking has nothing to exploit and recall degrades to nprobe/L.
//   2. Sparse vs dense CSLS+greedy on the large synthetic pair: warm
//      wall-clock ratio and peak-workspace ratio (arena high-water). The
//      sparse path must actually use less workspace; a regression here is a
//      fatal failure.
//
// Writes BENCH_index.json.
//
// Usage:
//   ./bench_index                     # sizes scaled by EM_BENCH_SCALE
//   EM_BENCH_SCALE=0.1 ./bench_index  # CI smoke run

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/rng.h"
#include "common/timer.h"
#include "index/candidate_index.h"
#include "matching/engine.h"

namespace entmatcher {
namespace {

constexpr size_t kDim = 64;
constexpr size_t kClusters = 32;
constexpr double kRecallGate = 0.95;

/// Targets drawn from a mixture of Gaussians (cluster scale 1, within-cluster
/// scale 0.25), sources as noisy copies of their aligned targets — the shape
/// of real entity-embedding spaces after transform alignment.
void MakeClusteredPair(size_t rows, uint64_t seed, Matrix* src, Matrix* tgt) {
  Rng rng(seed);
  Matrix centers(kClusters, kDim);
  for (size_t c = 0; c < kClusters; ++c) {
    for (float& v : centers.Row(c)) v = static_cast<float>(rng.NextGaussian());
  }
  *tgt = Matrix(rows, kDim);
  *src = Matrix(rows, kDim);
  for (size_t r = 0; r < rows; ++r) {
    const auto center = centers.Row(r % kClusters);
    auto t = tgt->Row(r);
    auto s = src->Row(r);
    for (size_t d = 0; d < kDim; ++d) {
      t[d] = center[d] + 0.25f * static_cast<float>(rng.NextGaussian());
      s[d] = t[d] + 0.1f * static_cast<float>(rng.NextGaussian());
    }
  }
}

/// Exact top-c target columns per source row from the dense raw-similarity
/// matrix, ordered by (score desc, column asc) — the same total order the
/// rerank uses, so recall compares like against like.
std::vector<std::vector<uint32_t>> ExactTopC(const Matrix& dense, size_t c) {
  std::vector<std::vector<uint32_t>> top(dense.rows());
  std::vector<uint32_t> order(dense.cols());
  for (size_t r = 0; r < dense.rows(); ++r) {
    const auto row = dense.Row(r);
    for (size_t j = 0; j < order.size(); ++j) order[j] = static_cast<uint32_t>(j);
    const size_t keep = std::min(c, order.size());
    std::partial_sort(order.begin(), order.begin() + keep, order.end(),
                      [&row](uint32_t a, uint32_t b) {
                        if (row[a] != row[b]) return row[a] > row[b];
                        return a < b;
                      });
    top[r].assign(order.begin(), order.begin() + keep);
  }
  return top;
}

struct RecallPoint {
  size_t candidates = 0;
  size_t nprobe = 0;
  double recall = 0.0;
};

}  // namespace
}  // namespace entmatcher

int main() {
  using namespace entmatcher;

  const double scale = bench::GlobalScale();
  const size_t n = std::max<size_t>(64, static_cast<size_t>(3000.0 * scale));

  bench::PrintBanner(
      "Candidate index — recall@c and the sparse pipeline's cost profile",
      "IVF blocking over the large synthetic pair: recall@c across c x\n"
      "nprobe, then sparse vs dense CSLS+greedy wall-clock and peak\n"
      "workspace. Headline recall must reach 0.95.");

  Matrix src;
  Matrix tgt;
  MakeClusteredPair(n, /*seed=*/31, &src, &tgt);

  Result<CandidateIndex> index =
      CandidateIndex::Build(tgt, CandidateIndexOptions());
  if (!index.ok()) {
    std::cerr << "index build: " << index.status().ToString() << "\n";
    return 1;
  }
  const CandidateListStats list_stats = index->Stats();
  std::cout << "index: " << list_stats.num_lists << " lists over " << n
            << " targets (list sizes " << list_stats.min_list_size << " / "
            << FormatDouble(list_stats.mean_list_size, 1) << " / "
            << list_stats.max_list_size << ")\n\n";

  // Ground truth for recall: the exact dense top-c targets per source row.
  Result<MatchEngine> engine =
      MatchEngine::Create(src, tgt, MakePreset(AlgorithmPreset::kDInf));
  if (!engine.ok()) {
    std::cerr << "engine: " << engine.status().ToString() << "\n";
    return 1;
  }
  Result<Matrix> dense_raw =
      engine->TransformedScores(MakePreset(AlgorithmPreset::kDInf));
  if (!dense_raw.ok()) {
    std::cerr << "dense scores: " << dense_raw.status().ToString() << "\n";
    return 1;
  }

  std::vector<size_t> candidate_widths = {8, 32, 128};
  std::vector<size_t> probe_counts = {1, 2, 4, 8};
  for (size_t& c : candidate_widths) c = std::min(c, n);
  for (size_t& p : probe_counts) p = std::min(p, index->num_lists());

  std::vector<RecallPoint> sweep;
  for (size_t c : candidate_widths) {
    const std::vector<std::vector<uint32_t>> truth = ExactTopC(*dense_raw, c);
    for (size_t nprobe : probe_counts) {
      MatchOptions options = MakePreset(AlgorithmPreset::kDInf);
      options.candidate_index = &*index;
      options.num_candidates = c;
      options.index_nprobe = nprobe;
      Result<MatchEngine::ScoredBatch> batch = engine->BeginBatch(options);
      if (!batch.ok()) {
        std::cerr << "sparse batch c=" << c << " nprobe=" << nprobe << ": "
                  << batch.status().ToString() << "\n";
        return 1;
      }
      const SparseScores& sparse = batch->sparse_scores();
      size_t hits = 0;
      size_t wanted = 0;
      for (size_t i = 0; i < n; ++i) {
        const auto cols = sparse.RowCols(i);
        wanted += truth[i].size();
        for (uint32_t want : truth[i]) {
          // Candidate columns are ascending per row (CSR invariant).
          hits += std::binary_search(cols.begin(), cols.end(), want);
        }
      }
      RecallPoint point;
      point.candidates = c;
      point.nprobe = nprobe;
      point.recall = static_cast<double>(hits) / static_cast<double>(wanted);
      sweep.push_back(point);
      std::cout << "recall@" << c << " (nprobe=" << nprobe
                << "): " << FormatDouble(point.recall, 3) << "\n";
    }
  }
  // Headline: the matcher-realistic configuration — the middle candidate
  // width at the most probes. c=128 exists in the sweep to show where deep
  // top-c coverage decays; greedy/1-to-1 matching only needs the head of
  // each row's ranking to survive.
  const size_t headline_c = candidate_widths[candidate_widths.size() / 2];
  RecallPoint headline;
  for (const RecallPoint& point : sweep) {
    if (point.candidates == headline_c && point.nprobe == probe_counts.back()) {
      headline = point;
    }
  }

  // Sparse vs dense CSLS+greedy, warm (second query) timings so both sides
  // run on recycled arena buffers.
  const MatchOptions dense_options = MakePreset(AlgorithmPreset::kCsls);
  MatchOptions sparse_options = dense_options;
  sparse_options.candidate_index = &*index;
  sparse_options.num_candidates = headline.candidates;
  sparse_options.index_nprobe = headline.nprobe;

  Result<MatchEngine> dense_engine =
      MatchEngine::Create(src, tgt, dense_options);
  Result<MatchEngine> sparse_engine =
      MatchEngine::Create(src, tgt, sparse_options);
  if (!dense_engine.ok() || !sparse_engine.ok()) {
    std::cerr << "CSLS engines failed to create\n";
    return 1;
  }
  if (!dense_engine->Match().ok() || !sparse_engine->Match().ok()) {
    std::cerr << "CSLS warmup failed\n";
    return 1;
  }
  Timer dense_timer;
  Result<Assignment> dense_run = dense_engine->Match();
  const double dense_seconds = dense_timer.ElapsedSeconds();
  Timer sparse_timer;
  Result<Assignment> sparse_run = sparse_engine->Match();
  const double sparse_seconds = sparse_timer.ElapsedSeconds();
  if (!dense_run.ok() || !sparse_run.ok()) {
    std::cerr << "CSLS measured runs failed\n";
    return 1;
  }
  const size_t dense_peak = dense_engine->workspace().high_water_bytes();
  const size_t sparse_peak = sparse_engine->workspace().high_water_bytes();
  const double time_ratio =
      dense_seconds > 0.0 ? sparse_seconds / dense_seconds : 0.0;
  const double peak_ratio =
      dense_peak > 0 ? static_cast<double>(sparse_peak) /
                           static_cast<double>(dense_peak)
                     : 0.0;
  size_t agree = 0;
  for (size_t i = 0; i < n; ++i) {
    agree += (dense_run->target_of_source[i] == sparse_run->target_of_source[i]);
  }

  std::cout << "\nCSLS+greedy at n=" << n << ", c=" << headline.candidates
            << ", nprobe=" << headline.nprobe << ":\n"
            << "  dense:  " << FormatDouble(dense_seconds * 1e3, 1) << " ms, "
            << FormatBytes(dense_peak) << " peak workspace\n"
            << "  sparse: " << FormatDouble(sparse_seconds * 1e3, 1)
            << " ms, " << FormatBytes(sparse_peak) << " peak workspace\n"
            << "  ratios: time " << FormatDouble(time_ratio, 3) << "x, peak "
            << FormatDouble(peak_ratio, 3) << "x, assignments agree on "
            << agree << "/" << n << " rows\n";

  bool ok = true;
  if (headline.recall < kRecallGate) {
    std::cerr << "FATAL: headline recall@" << headline.candidates << " = "
              << headline.recall << " < " << kRecallGate << "\n";
    ok = false;
  }
  if (sparse_peak >= dense_peak) {
    std::cerr << "FATAL: sparse peak workspace (" << sparse_peak
              << " B) did not undercut dense (" << dense_peak << " B)\n";
    ok = false;
  }

  std::ofstream json("BENCH_index.json");
  json << "{\n  \"dim\": " << kDim << ",\n  \"rows\": " << n
       << ",\n  \"num_lists\": " << list_stats.num_lists
       << ",\n  \"recall_gate\": " << kRecallGate
       << ",\n  \"recall_sweep\": [\n";
  for (size_t i = 0; i < sweep.size(); ++i) {
    json << "    {\"candidates\": " << sweep[i].candidates
         << ", \"nprobe\": " << sweep[i].nprobe
         << ", \"recall\": " << sweep[i].recall << "}"
         << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"headline\": {\"candidates\": " << headline.candidates
       << ", \"nprobe\": " << headline.nprobe
       << ", \"recall\": " << headline.recall << "},\n"
       << "  \"csls_greedy\": {\"dense_seconds\": " << dense_seconds
       << ", \"sparse_seconds\": " << sparse_seconds
       << ", \"time_ratio\": " << time_ratio
       << ", \"dense_peak_workspace_bytes\": " << dense_peak
       << ", \"sparse_peak_workspace_bytes\": " << sparse_peak
       << ", \"peak_workspace_ratio\": " << peak_ratio
       << ", \"assignment_agreement\": "
       << static_cast<double>(agree) / static_cast<double>(n) << "},\n"
       << "  \"ok\": " << (ok ? "true" : "false") << "\n}\n";
  std::cout << "wrote BENCH_index.json (" << sweep.size()
            << " sweep points)\n";
  return ok ? 0 : 1;
}
