// Serving-layer benchmark: N concurrent clients fire match queries at a
// MatchServer twice — once with micro-batching disabled (max_batch=1) and
// once enabled — and the harness reports throughput, latency percentiles,
// and the batched-vs-sequential speedup. Because a batch of B compatible
// queries shares one similarity+transform pass, batching reduces *total*
// kernel work, so the win shows up even on a single core; the JSON also
// records the scores-pass (batch) counts so the reduction is visible
// directly. Every served assignment must be bit-identical to a one-shot
// MatchEngine::Match with the same options — any divergence is a fatal
// failure. Writes BENCH_serve.json.
//
// Usage:
//   ./bench_serve                     # sizes scaled by EM_BENCH_SCALE
//   EM_BENCH_SCALE=0.1 ./bench_serve  # CI smoke run
//
// Env: EM_NUM_THREADS caps the kernel worker count as everywhere else.

#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <atomic>

#include "bench/harness.h"
#include "common/fault.h"
#include "common/rng.h"
#include "common/timer.h"
#include "matching/engine.h"
#include "serve/server.h"

namespace entmatcher {
namespace {

constexpr size_t kDim = 64;
constexpr size_t kClients = 4;
constexpr size_t kQueriesPerClient = 8;
constexpr size_t kBatchedMaxBatch = 8;

Matrix RandomEmbeddings(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, kDim);
  for (size_t r = 0; r < rows; ++r) {
    for (float& v : m.Row(r)) v = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

struct ModeResult {
  std::string name;
  size_t max_batch = 0;
  double seconds = 0.0;
  double qps = 0.0;
  uint64_t scores_passes = 0;   // ServerStats batches == kernel invocations
  uint64_t batched_queries = 0;
  double p50_micros = 0.0;
  double p99_micros = 0.0;
  bool identical = true;
  /// Requests answered with a non-OK Status — expected (and counted, not
  /// fatal) when a fault plan is armed; fatal otherwise.
  uint64_t failures = 0;
};

/// Runs kClients threads, each issuing kQueriesPerClient CSLS match queries
/// against `server`, and checks every assignment against `reference`.
ModeResult DriveClients(MatchServer* server, const std::string& name,
                        const Assignment& reference) {
  ModeResult mode;
  mode.name = name;
  mode.max_batch = server->config().max_batch;

  std::vector<std::thread> clients;
  std::vector<char> ok(kClients, 1);
  std::atomic<uint64_t> failures{0};
  Timer timer;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([server, &reference, &ok, &failures, c] {
      // Submit the whole burst first so the queue actually holds
      // coalescable work, then wait; a submit-wait-submit loop on one core
      // would serialize the queue into singleton cycles.
      std::vector<std::future<ServeResponse>> inflight;
      for (size_t q = 0; q < kQueriesPerClient; ++q) {
        ServeRequest request;
        request.options = MakePreset(AlgorithmPreset::kCsls);
        inflight.push_back(server->Submit(std::move(request)));
      }
      for (std::future<ServeResponse>& f : inflight) {
        ServeResponse response = f.get();
        if (!response.status.ok()) {
          // Injected faults surface here under a chaos run; the invariant
          // is that every *successful* response is still bit-identical.
          failures.fetch_add(1, std::memory_order_relaxed);
        } else if (response.assignment.target_of_source !=
                   reference.target_of_source) {
          ok[c] = 0;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  mode.seconds = timer.ElapsedSeconds();
  mode.failures = failures.load();

  const ServerStatsSnapshot stats = server->Stats();
  mode.qps = mode.seconds > 0.0
                 ? static_cast<double>(kClients * kQueriesPerClient) /
                       mode.seconds
                 : 0.0;
  mode.scores_passes = stats.batches;
  mode.batched_queries = stats.batched_queries;
  mode.p50_micros = stats.latency_p50_micros;
  mode.p99_micros = stats.latency_p99_micros;
  for (char c : ok) mode.identical = mode.identical && (c != 0);
  return mode;
}

Result<ModeResult> RunMode(const std::string& name, size_t max_batch,
                           uint64_t flush_micros, const Matrix& src,
                           const Matrix& tgt, const Assignment& reference) {
  MatchServerConfig config;
  config.max_batch = max_batch;
  config.flush_micros = flush_micros;
  config.queue_capacity = 2 * kClients * kQueriesPerClient;
  EM_ASSIGN_OR_RETURN(std::unique_ptr<MatchServer> server,
                      MatchServer::Create(config));
  EM_RETURN_NOT_OK(server->LoadPair("default", Matrix(src), Matrix(tgt)));
  EM_RETURN_NOT_OK(server->Start());
  ModeResult mode = DriveClients(server.get(), name, reference);
  server->Shutdown();
  return mode;
}

}  // namespace
}  // namespace entmatcher

int main() {
  using namespace entmatcher;

  const Status faults = ArmFaultInjectionFromEnv();
  if (!faults.ok()) {
    std::cerr << faults.ToString() << "\n";
    return 1;
  }
  const bool faults_armed = FaultInjector::Global().armed();

  const double scale = bench::GlobalScale();
  const size_t n =
      std::max<size_t>(16, static_cast<size_t>(1500.0 * scale));
  const size_t total_queries = kClients * kQueriesPerClient;

  bench::PrintBanner(
      "MatchServer — micro-batched vs sequential serving throughput",
      "4 concurrent clients x 8 CSLS match queries per mode. Batched mode\n"
      "coalesces compatible queries into shared scores passes; results must\n"
      "stay bit-identical to a one-shot MatchEngine::Match.");

  const Matrix src = RandomEmbeddings(n, /*seed=*/31);
  const Matrix tgt = RandomEmbeddings(n, /*seed=*/47);

  // The one-shot reference every served assignment must equal.
  Result<MatchEngine> engine =
      MatchEngine::Create(src, tgt, MakePreset(AlgorithmPreset::kCsls));
  if (!engine.ok()) {
    std::cerr << engine.status().ToString() << "\n";
    return 1;
  }
  Result<Assignment> reference = engine->Match();
  if (!reference.ok()) {
    std::cerr << reference.status().ToString() << "\n";
    return 1;
  }

  std::vector<ModeResult> modes;
  for (const auto& [name, max_batch, flush] :
       {std::tuple<std::string, size_t, uint64_t>{"sequential", 1, 0},
        std::tuple<std::string, size_t, uint64_t>{"batched", kBatchedMaxBatch,
                                                  2000}}) {
    Result<ModeResult> mode =
        RunMode(name, max_batch, flush, src, tgt, *reference);
    if (!mode.ok()) {
      std::cerr << name << ": " << mode.status().ToString() << "\n";
      return 1;
    }
    std::cout << mode->name << ": " << total_queries << " queries in "
              << FormatDouble(mode->seconds * 1e3, 1) << " ms  ("
              << FormatDouble(mode->qps, 1) << " q/s)  scores_passes="
              << mode->scores_passes << "  p50="
              << FormatDouble(mode->p50_micros, 0) << " us  p99="
              << FormatDouble(mode->p99_micros, 0) << " us  failures="
              << mode->failures << "  identical="
              << (mode->identical ? "yes" : "NO") << "\n";
    modes.push_back(*std::move(mode));
  }

  const ModeResult& sequential = modes[0];
  const ModeResult& batched = modes[1];
  const double speedup =
      batched.seconds > 0.0 ? sequential.seconds / batched.seconds : 0.0;
  const double pass_reduction =
      batched.scores_passes > 0
          ? static_cast<double>(sequential.scores_passes) /
                static_cast<double>(batched.scores_passes)
          : 0.0;
  std::cout << "batched vs sequential: " << FormatDouble(speedup, 2)
            << "x wall-clock, " << sequential.scores_passes << " -> "
            << batched.scores_passes << " scores passes ("
            << FormatDouble(pass_reduction, 2) << "x fewer)\n";

  bool ok = true;
  for (const ModeResult& mode : modes) {
    if (!mode.identical) {
      std::cerr << "FATAL: " << mode.name
                << " served assignments diverged from the one-shot engine\n";
      ok = false;
    }
    if (mode.failures > 0 && !faults_armed) {
      std::cerr << "FATAL: " << mode.name << " had " << mode.failures
                << " failed responses with no fault plan armed\n";
      ok = false;
    }
  }
  if (batched.scores_passes >= sequential.scores_passes) {
    std::cerr << "FATAL: batching did not reduce scores passes ("
              << sequential.scores_passes << " -> " << batched.scores_passes
              << ")\n";
    ok = false;
  }

  std::ofstream json("BENCH_serve.json");
  json << "{\n  \"rows\": " << n << ",\n  \"dim\": " << kDim
       << ",\n  \"clients\": " << kClients << ",\n  \"queries_per_client\": "
       << kQueriesPerClient << ",\n  \"modes\": [\n";
  for (size_t i = 0; i < modes.size(); ++i) {
    const ModeResult& m = modes[i];
    json << "    {\"name\": \"" << m.name << "\", \"max_batch\": "
         << m.max_batch << ", \"seconds\": " << m.seconds << ", \"qps\": "
         << m.qps << ", \"scores_passes\": " << m.scores_passes
         << ", \"batched_queries\": " << m.batched_queries
         << ", \"latency_p50_micros\": " << m.p50_micros
         << ", \"latency_p99_micros\": " << m.p99_micros
         << ", \"failures\": " << m.failures
         << ", \"identical\": " << (m.identical ? "true" : "false") << "}"
         << (i + 1 < modes.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"speedup_batched_vs_sequential\": " << speedup
       << ",\n  \"scores_pass_reduction\": " << pass_reduction
       << ",\n  \"fault_plan\": \""
       << FaultInjector::Global().Fingerprint() << "\""
       << ",\n  \"fault_fires\": " << FaultInjector::Global().total_fires()
       << "\n}\n";
  std::cout << "wrote BENCH_serve.json\n";
  return ok ? 0 : 1;
}
