// Reproduces Table 4: F1 of the seven matching algorithms using structural
// information only — RREA ("R-") and GCN ("G-") embeddings on the DBP15K-sim
// and SRPRS-sim families, with the paper's "Imp." column (mean relative
// improvement over DInf).
//
// Expected shapes (paper Sec. 4.3):
//   - Hun. and Sink. lead; DInf is worst; RInf/CSLS/SMat/RL in between.
//   - R- beats G- throughout.
//   - On the sparse SRPRS family the advanced-method gaps compress
//     (Pattern 2).

#include "bench/harness.h"

namespace entmatcher::bench {
namespace {

void RunBlock(const std::string& block_name,
              const std::vector<std::string>& pairs,
              EmbeddingSetting setting, double scale) {
  std::vector<KgPairDataset> datasets;
  std::vector<EmbeddingPair> embeddings;
  for (const std::string& pair : pairs) {
    datasets.push_back(MustGenerate(pair, scale));
    embeddings.push_back(MustEmbed(datasets.back(), setting));
  }

  std::vector<std::string> headers = {"Model"};
  headers.insert(headers.end(), pairs.begin(), pairs.end());
  headers.push_back("Imp.");
  TablePrinter table(headers);

  std::vector<double> dinf_f1s;
  for (AlgorithmPreset preset : MainPresets()) {
    std::vector<std::string> row = {PresetName(preset)};
    std::vector<double> f1s;
    for (size_t i = 0; i < datasets.size(); ++i) {
      ExperimentResult r = MustRun(datasets[i], embeddings[i], preset);
      f1s.push_back(r.metrics.f1);
      row.push_back(F3(r.metrics.f1));
    }
    if (preset == AlgorithmPreset::kDInf) {
      dinf_f1s = f1s;
      row.push_back("");
    } else {
      row.push_back(Improvement(f1s, dinf_f1s));
    }
    table.AddRow(row);
  }
  std::cout << "\n-- " << block_name << " --\n";
  table.Print(std::cout);
}

void Run() {
  const double scale = GlobalScale();
  PrintBanner("Table 4 — F1 scores using structural information only",
              "R- = RREA-style embeddings, G- = GCN-style embeddings;\n"
              "DBP = DBP15K-sim (dense), SRP = SRPRS-sim (sparse).");
  RunBlock("R-DBP", Dbp15kPairNames(), EmbeddingSetting::kRreaStruct, scale);
  RunBlock("R-SRP", SrprsPairNames(), EmbeddingSetting::kRreaStruct, scale);
  RunBlock("G-DBP", Dbp15kPairNames(), EmbeddingSetting::kGcnStruct, scale);
  RunBlock("G-SRP", SrprsPairNames(), EmbeddingSetting::kGcnStruct, scale);
}

}  // namespace
}  // namespace entmatcher::bench

int main() {
  entmatcher::bench::Run();
  return 0;
}
