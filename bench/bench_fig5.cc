// Reproduces Figure 5: time (a) and memory (b) cost of every matching
// algorithm on the medium-sized settings. Costs within a dataset family are
// similar, so — like the paper — we report the family average.
//
// Expected shapes (paper Sec. 4.3, efficiency analysis):
//   - DInf cheapest; CSLS close behind.
//   - RInf and Hun. in the same band; Sink. slower (depends on l).
//   - RL slowest; SMat the most memory-hungry.

#include "bench/harness.h"

namespace entmatcher::bench {
namespace {

void Run() {
  const double scale = GlobalScale();
  PrintBanner("Figure 5 — Efficiency comparison (medium-sized datasets)",
              "(a) mean matching time in seconds; (b) mean peak workspace.\n"
              "Averaged over the pairs of each family, per embedding model.");

  struct Setting {
    std::string name;
    std::vector<std::string> pairs;
    EmbeddingSetting setting;
  };
  const std::vector<Setting> settings = {
      {"R-DBP", Dbp15kPairNames(), EmbeddingSetting::kRreaStruct},
      {"R-SRP", SrprsPairNames(), EmbeddingSetting::kRreaStruct},
      {"G-DBP", Dbp15kPairNames(), EmbeddingSetting::kGcnStruct},
      {"G-SRP", SrprsPairNames(), EmbeddingSetting::kGcnStruct},
  };

  std::vector<std::string> headers = {"Model"};
  for (const Setting& s : settings) headers.push_back(s.name + " T(s)");
  for (const Setting& s : settings) headers.push_back(s.name + " Mem");
  TablePrinter table(headers);

  // (algorithm, setting) -> accumulated cost.
  const auto presets = MainPresets();
  std::vector<std::vector<double>> seconds(presets.size(),
                                           std::vector<double>(settings.size()));
  std::vector<std::vector<size_t>> bytes(presets.size(),
                                         std::vector<size_t>(settings.size()));
  for (size_t si = 0; si < settings.size(); ++si) {
    for (const std::string& pair : settings[si].pairs) {
      KgPairDataset d = MustGenerate(pair, scale);
      EmbeddingPair e = MustEmbed(d, settings[si].setting);
      for (size_t pi = 0; pi < presets.size(); ++pi) {
        ExperimentResult r = MustRun(d, e, presets[pi]);
        seconds[pi][si] += r.seconds / settings[si].pairs.size();
        bytes[pi][si] =
            std::max(bytes[pi][si], r.peak_workspace_bytes);
      }
    }
  }

  for (size_t pi = 0; pi < presets.size(); ++pi) {
    std::vector<std::string> row = {PresetName(presets[pi])};
    for (size_t si = 0; si < settings.size(); ++si) {
      row.push_back(FormatDouble(seconds[pi][si], 2));
    }
    for (size_t si = 0; si < settings.size(); ++si) {
      row.push_back(FormatBytes(bytes[pi][si]));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace entmatcher::bench

int main() {
  entmatcher::bench::Run();
  return 0;
}
