// Supplementary study: sensitivity of the matching algorithms to the seed
// (training) ratio — the dimension the industrial survey the paper cites
// ([67] Zhang et al.) investigates. The matching stage consumes whatever
// embeddings the seeds produce, so algorithms differ in how gracefully they
// degrade when supervision is scarce.
//
// Expected shape: all methods improve with more seeds; the collective
// algorithms retain an edge at every ratio, and the relative gap is widest
// when embeddings are weakest (few seeds) — consistent with the paper's
// observation that score-improving transforms matter most when pairwise
// scores are ambiguous.

#include "bench/harness.h"
#include "datagen/kg_pair_generator.h"
#include "embedding/propagation.h"

namespace entmatcher::bench {
namespace {

void Run() {
  const double scale = GlobalScale();
  PrintBanner("Seed-ratio sensitivity (D-Z-sim, RREA embeddings)",
              "F1 as the train fraction varies; valid fixed at 10%, the "
              "rest is test.");

  TablePrinter table({"Seed ratio", "DInf", "CSLS", "RInf", "Sink.", "Hun.",
                      "SMat"});
  for (double train_frac : {0.05, 0.10, 0.20, 0.30}) {
    auto config = MakeDatasetConfig("D-Z", scale);
    if (!config.ok()) std::abort();
    config->train_frac = train_frac;
    auto d = GenerateKgPair(*config);
    if (!d.ok()) {
      std::cerr << d.status().ToString() << "\n";
      std::abort();
    }
    EmbeddingPair e = MustEmbed(*d, EmbeddingSetting::kRreaStruct);
    std::vector<std::string> row = {FormatDouble(100.0 * train_frac, 0) + "%"};
    for (AlgorithmPreset preset :
         {AlgorithmPreset::kDInf, AlgorithmPreset::kCsls,
          AlgorithmPreset::kRinf, AlgorithmPreset::kSinkhorn,
          AlgorithmPreset::kHungarian, AlgorithmPreset::kStableMatch}) {
      ExperimentResult r = MustRun(*d, e, preset);
      row.push_back(F3(r.metrics.f1));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace entmatcher::bench

int main() {
  entmatcher::bench::Run();
  return 0;
}
