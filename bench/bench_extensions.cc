// Ablation benches for the future-direction extensions this repository
// implements beyond the paper's evaluated algorithms (Sec. 6):
//
//  (4) Scalability — StreamingMatch: blocked DInf/CSLS decisions at
//      O(block x m) workspace. Must produce the same F1 as the dense
//      pipeline at a fraction of the memory.
//  (5) Probabilistic matching — softmax posterior with an explicit,
//      validation-calibrated no-match outcome; may abstain (unmatchable
//      setting) or emit several links per source (non-1-to-1 setting).
//  (6) Joint entity+relation evidence — relation-correspondence rescoring
//      of the top candidates, learned from the seed links.

#include "bench/harness.h"
#include "common/memory_tracker.h"
#include "common/timer.h"
#include "la/similarity.h"
#include "la/topk.h"
#include "matching/partitioned.h"
#include "matching/probabilistic.h"
#include "matching/relation_context.h"
#include "matching/streaming.h"
#include "matching/transforms.h"

namespace entmatcher::bench {
namespace {

void RunStreaming(double scale) {
  std::cout << "\n--- Extension (4): streaming (blocked) matching ---\n";
  TablePrinter table({"Pair", "Algo", "Dense F1", "Stream F1", "Dense mem",
                      "Stream mem"});
  for (const std::string& pair : {std::string("D-Z"), std::string("DW-W")}) {
    KgPairDataset d = MustGenerate(pair, scale);
    EmbeddingPair e = MustEmbed(d, EmbeddingSetting::kGcnStruct);
    const Matrix src = ExtractRows(e.source, d.test_source_entities);
    const Matrix tgt = ExtractRows(e.target, d.test_target_entities);

    for (bool csls : {false, true}) {
      // Dense baseline.
      MemoryTracker::Global().ResetPeak();
      const size_t base = MemoryTracker::Global().current_bytes();
      MatchOptions dense_options =
          MakePreset(csls ? AlgorithmPreset::kCsls : AlgorithmPreset::kDInf);
      auto dense = RunMatching(d, e, dense_options);
      if (!dense.ok()) std::abort();

      // Streaming.
      MemoryTracker::Global().ResetPeak();
      StreamingOptions streaming_options;
      streaming_options.use_csls = csls;
      streaming_options.block_rows = 256;
      auto streamed = StreamingMatch(src, tgt, streaming_options);
      if (!streamed.ok()) std::abort();
      const size_t stream_peak =
          MemoryTracker::Global().peak_bytes() - base;

      // Evaluate the streamed assignment.
      std::vector<EntityPair> pairs;
      for (size_t i = 0; i < streamed->size(); ++i) {
        const int32_t j = streamed->target_of_source[i];
        if (j == Assignment::kUnmatched) continue;
        pairs.push_back(EntityPair{d.test_source_entities[i],
                                   d.test_target_entities[j]});
      }
      const EvalMetrics metrics =
          EvaluatePredictions(AlignmentSet(std::move(pairs)), d.split.test);

      EvalMetrics dense_metrics =
          EvaluatePredictions(dense->predicted, d.split.test);
      table.AddRow({pair, csls ? "CSLS" : "DInf", F3(dense_metrics.f1),
                    F3(metrics.f1), FormatBytes(dense->peak_workspace_bytes),
                    FormatBytes(stream_peak)});
    }
  }
  table.Print(std::cout);
  std::cout << "Identical F1 at a fraction of the workspace: the full score\n"
               "matrix is never materialized.\n";
}

void RunProbabilistic(double scale) {
  std::cout << "\n--- Extension (5): probabilistic matching with abstention "
               "---\n";
  TablePrinter table({"Pair", "Setting", "Algo", "P", "R", "F1", "Links"});
  struct Case {
    std::string pair;
    std::string setting;
  };
  for (const Case& c : {Case{"D-Z+", "unmatchable"},
                        Case{"FB-MUL", "non 1-to-1"}}) {
    KgPairDataset d = MustGenerate(c.pair, scale);
    EmbeddingPair e = MustEmbed(d, EmbeddingSetting::kRreaStruct);

    // Baselines: the best paper algorithm per setting.
    for (AlgorithmPreset preset :
         {AlgorithmPreset::kDInf,
          c.setting == "unmatchable" ? AlgorithmPreset::kHungarian
                                     : AlgorithmPreset::kCsls}) {
      ExperimentResult r = MustRun(d, e, preset);
      table.AddRow({c.pair, c.setting, PresetName(preset),
                    F3(r.metrics.precision), F3(r.metrics.recall),
                    F3(r.metrics.f1), std::to_string(r.metrics.found)});
    }

    ProbabilisticOptions options;
    auto predicted = RunProbabilisticMatching(d, e, options);
    if (!predicted.ok()) {
      std::cerr << predicted.status().ToString() << "\n";
      std::abort();
    }
    const EvalMetrics m = EvaluatePredictions(*predicted, d.split.test);
    table.AddRow({c.pair, c.setting, "Prob. (ours)", F3(m.precision),
                  F3(m.recall), F3(m.f1), std::to_string(m.found)});
  }
  table.Print(std::cout);
  std::cout << "The probabilistic matcher calibrates its no-match score on\n"
               "the validation split and may emit zero or several links per\n"
               "source — the flexibility the paper's direction (5) asks "
               "for.\n";
}

void RunPartitioned(double scale) {
  std::cout << "\n--- Extension (4b): ClusterEA-style partitioned matching "
               "---\n";
  TablePrinter table({"Pair", "Algo", "Dense F1", "Part. F1", "Dense mem",
                      "Part. mem", "Dense T(s)", "Part. T(s)"});
  KgPairDataset d = MustGenerate("DW-W", scale);
  EmbeddingPair e = MustEmbed(d, EmbeddingSetting::kGcnStruct);
  const Matrix src = ExtractRows(e.source, d.test_source_entities);
  const Matrix tgt = ExtractRows(e.target, d.test_target_entities);

  auto evaluate = [&](const Assignment& a) {
    std::vector<EntityPair> pairs;
    for (size_t i = 0; i < a.size(); ++i) {
      const int32_t j = a.target_of_source[i];
      if (j == Assignment::kUnmatched) continue;
      pairs.push_back(EntityPair{d.test_source_entities[i],
                                 d.test_target_entities[j]});
    }
    return EvaluatePredictions(AlignmentSet(std::move(pairs)), d.split.test).f1;
  };

  for (AlgorithmPreset preset :
       {AlgorithmPreset::kSinkhorn, AlgorithmPreset::kHungarian}) {
    MemoryTracker::Global().ResetPeak();
    const size_t base = MemoryTracker::Global().current_bytes();
    Timer dense_timer;
    auto dense = MatchEmbeddings(src, tgt, MakePreset(preset));
    const double dense_seconds = dense_timer.ElapsedSeconds();
    if (!dense.ok()) std::abort();
    const size_t dense_peak = MemoryTracker::Global().peak_bytes() - base;

    MemoryTracker::Global().ResetPeak();
    PartitionedOptions options;
    options.num_partitions = 16;
    options.block_options = MakePreset(preset);
    Timer part_timer;
    auto partitioned = PartitionedMatch(src, tgt, options);
    const double part_seconds = part_timer.ElapsedSeconds();
    if (!partitioned.ok()) std::abort();
    const size_t part_peak = MemoryTracker::Global().peak_bytes() - base;

    table.AddRow({d.name, PresetName(preset), F3(evaluate(*dense)),
                  F3(evaluate(*partitioned)), FormatBytes(dense_peak),
                  FormatBytes(part_peak), FormatDouble(dense_seconds, 1),
                  FormatDouble(part_seconds, 1)});
  }
  table.Print(std::cout);
  std::cout << "Per-block Sinkhorn/Hungarian after embedding co-clustering "
               "([15]'s recipe):\nquadratic algorithms at a fraction of the "
               "dense workspace and time, paying a\nbounded recall loss for "
               "cross-partition pairs.\n";
}

void RunRelationContext(double scale) {
  std::cout << "\n--- Extension (6): joint entity + relation evidence ---\n";
  TablePrinter table({"Pair", "Emb.", "DInf F1", "DInf+rel F1", "CSLS F1",
                      "CSLS+rel F1"});
  for (const std::string& pair :
       {std::string("D-Z"), std::string("S-F"), std::string("S-W")}) {
    KgPairDataset d = MustGenerate(pair, scale);
    for (EmbeddingSetting setting :
         {EmbeddingSetting::kGcnStruct, EmbeddingSetting::kRreaStruct}) {
      EmbeddingPair e = MustEmbed(d, setting);
      const Matrix src = ExtractRows(e.source, d.test_source_entities);
      const Matrix tgt = ExtractRows(e.target, d.test_target_entities);
      auto raw = ComputeSimilarity(src, tgt, SimilarityMetric::kCosine);
      if (!raw.ok()) std::abort();

      auto evaluate = [&](const Matrix& scores) {
        const std::vector<uint32_t> argmax = RowArgmax(scores);
        std::vector<EntityPair> pairs;
        for (size_t i = 0; i < argmax.size(); ++i) {
          pairs.push_back(EntityPair{d.test_source_entities[i],
                                     d.test_target_entities[argmax[i]]});
        }
        return EvaluatePredictions(AlignmentSet(std::move(pairs)),
                                   d.split.test)
            .f1;
      };

      RelationContextOptions rel_options;
      auto rescored = RelationContextRescore(d, *raw, rel_options);
      if (!rescored.ok()) std::abort();

      // CSLS on top of both raw and rescored scores.
      auto csls_raw = CslsTransform(*raw, 1);
      auto csls_rescored = CslsTransform(*rescored, 1);
      if (!csls_raw.ok() || !csls_rescored.ok()) std::abort();

      table.AddRow({pair, EmbeddingSettingPrefix(setting), F3(evaluate(*raw)),
                    F3(evaluate(*rescored)), F3(evaluate(*csls_raw)),
                    F3(evaluate(*csls_rescored))});
    }
  }
  table.Print(std::cout);
  std::cout << "Relation-correspondence evidence (learned from the seed "
               "links) rescoring the\ntop candidates — the joint "
               "entity+relation space the paper's direction (6)\nsuggests "
               "exploring.\n";
}

void Run() {
  const double scale = GlobalScale();
  PrintBanner("Extensions — the paper's future directions (4), (5) and (6)",
              "Streaming low-memory matching, probabilistic matching with\n"
              "abstention, and relation-context rescoring.");
  RunStreaming(scale);
  RunPartitioned(scale);
  RunProbabilistic(scale);
  RunRelationContext(scale);
}

}  // namespace
}  // namespace entmatcher::bench

int main() {
  entmatcher::bench::Run();
  return 0;
}
