#ifndef ENTMATCHER_BENCH_HARNESS_H_
#define ENTMATCHER_BENCH_HARNESS_H_

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "datagen/benchmarks.h"
#include "embedding/provider.h"
#include "eval/experiment.h"

namespace entmatcher::bench {

/// Prints the standard banner for a table/figure reproduction harness.
inline void PrintBanner(const std::string& title, const std::string& detail) {
  std::cout << "==================================================================\n"
            << title << "\n"
            << detail << "\n"
            << "==================================================================\n";
}

/// Formats an F1/score cell.
inline std::string F3(double v) { return FormatDouble(v, 3); }

/// Formats the paper's "Imp." column: mean relative improvement over DInf.
inline std::string Improvement(const std::vector<double>& f1s,
                               const std::vector<double>& dinf_f1s) {
  if (f1s.size() != dinf_f1s.size() || f1s.empty()) return "";
  double total = 0.0;
  for (size_t i = 0; i < f1s.size(); ++i) {
    if (dinf_f1s[i] <= 0.0) return "";
    total += (f1s[i] - dinf_f1s[i]) / dinf_f1s[i];
  }
  return FormatDouble(100.0 * total / f1s.size(), 1) + "%";
}

/// Generates a dataset (with the given global scale multiplier) or dies.
inline KgPairDataset MustGenerate(const std::string& pair, double scale) {
  auto d = GenerateDataset(pair, scale);
  if (!d.ok()) {
    std::cerr << "dataset " << pair << ": " << d.status().ToString() << "\n";
    std::abort();
  }
  return std::move(d).value();
}

/// Computes embeddings or dies.
inline EmbeddingPair MustEmbed(const KgPairDataset& dataset,
                               EmbeddingSetting setting) {
  auto e = ComputeEmbeddings(dataset, setting);
  if (!e.ok()) {
    std::cerr << "embeddings for " << dataset.name << ": "
              << e.status().ToString() << "\n";
    std::abort();
  }
  return std::move(e).value();
}

/// Runs one preset or dies.
inline ExperimentResult MustRun(const KgPairDataset& dataset,
                                const EmbeddingPair& embeddings,
                                AlgorithmPreset preset) {
  auto r = RunExperiment(dataset, embeddings, preset);
  if (!r.ok()) {
    std::cerr << PresetName(preset) << " on " << dataset.name << ": "
              << r.status().ToString() << "\n";
    std::abort();
  }
  return std::move(r).value();
}

/// Reads the EM_BENCH_SCALE env var (default 1.0) so the whole suite can be
/// shrunk for smoke runs (e.g. EM_BENCH_SCALE=0.2 ./bench_table4).
inline double GlobalScale() {
  const char* env = std::getenv("EM_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

}  // namespace entmatcher::bench

#endif  // ENTMATCHER_BENCH_HARNESS_H_
