// SIMD kernel-tier benchmark: measures what the vectorized tiers and the
// mixed-precision scoring arm buy over the scalar reference tier.
//
//   1. Kernel throughput sweep: GB/s and x-over-scalar for the hot kernels
//      (dot, MatMulTransposedRange, manhattan, squared_norm, sum,
//      cosine_scale_row, RowTopKIndices) at every tier the build + CPU
//      supports, via SetKernelTier between passes.
//   2. Mixed-precision arm: recall@c of the quantized candidate pass against
//      the exact dense top-c, plus warm end-to-end CSLS+greedy wall-clock of
//      the quantized sparse path vs the dense float pipeline, per precision.
//
// Gate (fatal): MatMulTransposedRange must reach >= 2x over scalar on at
// least one vector tier, OR some quantized precision must reach >= 2x
// end-to-end at recall@c >= 0.98. A "SIMD tier" that beats scalar on
// nothing is dead code, not an optimization.
//
// Writes BENCH_simd.json.
//
// Usage:
//   ./bench_simd                     # sizes scaled by EM_BENCH_SCALE
//   EM_BENCH_SCALE=0.2 ./bench_simd  # CI smoke run
//
// On machines with only the scalar tier (no AVX2/AVX-512/NEON compiled in or
// detected), the kernel sweep degenerates to the scalar row and the gate
// rides entirely on the quantized arm.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "la/kernels/dispatch.h"
#include "la/kernels/quantized.h"
#include "la/matrix.h"
#include "la/topk.h"
#include "matching/engine.h"

namespace entmatcher {
namespace {

constexpr size_t kDim = 128;          // micro-kernel vector length
constexpr size_t kClusters = 32;      // quantized-arm data model
constexpr size_t kCandidates = 16;    // quantized-arm top-c width
constexpr double kMatmulGate = 2.0;   // x over scalar
constexpr double kQuantSpeedupGate = 2.0;
constexpr double kQuantRecallGate = 0.98;

// Defeats dead-code elimination across timed loops.
volatile double g_sink = 0.0;

struct KernelTiming {
  std::string kernel;
  std::string tier;
  double seconds = 0.0;
  double gbps = 0.0;
  double speedup_vs_scalar = 0.0;  // filled after the scalar row is known
};

struct QuantResult {
  std::string precision;
  double recall = 0.0;
  double float_seconds = 0.0;
  double quant_seconds = 0.0;
  double speedup = 0.0;
  double agreement = 0.0;
};

/// Median-of-3 timed runs of `body`, which must fold its result into g_sink.
template <typename Fn>
double TimeSeconds(Fn&& body) {
  double best[3];
  for (double& sample : best) {
    Timer timer;
    body();
    sample = timer.ElapsedSeconds();
  }
  std::sort(best, best + 3);
  return best[1];
}

/// Same clustered source/target model as bench_index: the regime where the
/// quantized pre-rank has real structure to preserve.
void MakeClusteredPair(size_t rows, size_t dim, uint64_t seed, Matrix* src,
                       Matrix* tgt) {
  Rng rng(seed);
  Matrix centers(kClusters, dim);
  for (size_t c = 0; c < kClusters; ++c) {
    for (float& v : centers.Row(c)) v = static_cast<float>(rng.NextGaussian());
  }
  *tgt = Matrix(rows, dim);
  *src = Matrix(rows, dim);
  for (size_t r = 0; r < rows; ++r) {
    const auto center = centers.Row(r % kClusters);
    auto t = tgt->Row(r);
    auto s = src->Row(r);
    for (size_t d = 0; d < dim; ++d) {
      t[d] = center[d] + 0.25f * static_cast<float>(rng.NextGaussian());
      s[d] = t[d] + 0.1f * static_cast<float>(rng.NextGaussian());
    }
  }
}

std::vector<float> RandomVec(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.NextGaussian());
  return v;
}

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (float& x : m.Row(r)) x = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

}  // namespace
}  // namespace entmatcher

int main() {
  using namespace entmatcher;

  const double scale = bench::GlobalScale();
  const size_t reps = std::max<size_t>(2000, static_cast<size_t>(50000.0 * scale));
  const size_t mm_rows = std::max<size_t>(96, static_cast<size_t>(768.0 * scale));
  const size_t match_n = std::max<size_t>(96, static_cast<size_t>(2500.0 * scale));

  bench::PrintBanner(
      "SIMD kernel tiers — throughput over scalar and the quantized arm",
      "Hot-kernel GB/s per tier via runtime dispatch, then the\n"
      "mixed-precision candidate pass: recall@c against the exact dense\n"
      "top-c and warm end-to-end wall-clock vs the float pipeline.");

  std::vector<KernelTier> tiers = {KernelTier::kScalar};
  for (KernelTier tier :
       {KernelTier::kAvx2, KernelTier::kAvx512, KernelTier::kNeon}) {
    if (KernelTierAvailable(tier)) tiers.push_back(tier);
  }
  std::cout << "cpu: " << DetectedCpuFeatures() << "\n"
            << "tiers: ";
  for (KernelTier tier : tiers) std::cout << KernelTierName(tier) << " ";
  std::cout << "\n\n";

  const std::vector<float> va = RandomVec(kDim, 11);
  const std::vector<float> vb = RandomVec(kDim, 12);
  const Matrix ma = RandomMatrix(mm_rows, kDim, 13);
  const Matrix mb = RandomMatrix(mm_rows, kDim, 14);
  const Matrix topk_scores = RandomMatrix(mm_rows, mm_rows, 15);
  std::vector<float> scratch(kDim);
  std::vector<float> inv_tgt = RandomVec(kDim, 16);
  for (float& x : inv_tgt) x = std::abs(x) + 0.5f;

  std::vector<KernelTiming> timings;
  for (KernelTier tier : tiers) {
    Status set = SetKernelTier(tier);
    if (!set.ok()) {
      std::cerr << "SetKernelTier: " << set.ToString() << "\n";
      return 1;
    }
    const KernelOps& ops = ActiveKernels();
    const std::string name = KernelTierName(tier);
    const auto push = [&](const std::string& kernel, double seconds,
                          double bytes_per_rep, size_t rep_count) {
      KernelTiming t;
      t.kernel = kernel;
      t.tier = name;
      t.seconds = seconds;
      t.gbps = seconds > 0.0
                   ? bytes_per_rep * static_cast<double>(rep_count) /
                         seconds / 1e9
                   : 0.0;
      timings.push_back(t);
    };

    push("dot", TimeSeconds([&] {
           double acc = 0.0;
           for (size_t r = 0; r < reps; ++r) {
             acc += ops.dot(va.data(), vb.data(), kDim);
           }
           g_sink = g_sink + acc;
         }),
         2.0 * kDim * sizeof(float), reps);
    push("manhattan", TimeSeconds([&] {
           double acc = 0.0;
           for (size_t r = 0; r < reps; ++r) {
             acc += ops.manhattan(va.data(), vb.data(), kDim);
           }
           g_sink = g_sink + acc;
         }),
         2.0 * kDim * sizeof(float), reps);
    push("squared_norm", TimeSeconds([&] {
           double acc = 0.0;
           for (size_t r = 0; r < reps; ++r) {
             acc += ops.squared_norm(va.data(), kDim);
           }
           g_sink = g_sink + acc;
         }),
         1.0 * kDim * sizeof(float), reps);
    push("sum", TimeSeconds([&] {
           double acc = 0.0;
           for (size_t r = 0; r < reps; ++r) {
             acc += ops.sum(va.data(), kDim);
           }
           g_sink = g_sink + acc;
         }),
         1.0 * kDim * sizeof(float), reps);
    push("cosine_scale_row", TimeSeconds([&] {
           for (size_t r = 0; r < reps; ++r) {
             std::copy(va.begin(), va.end(), scratch.begin());
             ops.cosine_scale_row(scratch.data(), inv_tgt.data(), kDim, 1.25f);
           }
           g_sink = g_sink + scratch[0];
         }),
         3.0 * kDim * sizeof(float), reps);
    {
      Matrix out(mm_rows, mm_rows);
      const double mm_seconds = TimeSeconds([&] {
        Status status = MatMulTransposedRange(ma, mb, 0, mm_rows, &out);
        if (!status.ok()) std::cerr << status.ToString() << "\n";
        g_sink = g_sink + out.At(0, 0);
      });
      // Bytes: both operand matrices plus the output, once per pass.
      push("matmul_range", mm_seconds,
           (2.0 * mm_rows * kDim + 1.0 * mm_rows * mm_rows) * sizeof(float),
           1);
    }
    push("row_topk_indices", TimeSeconds([&] {
           const std::vector<uint32_t> top = RowTopKIndices(topk_scores, 10);
           g_sink = g_sink + (top.empty() ? 0.0 : static_cast<double>(top[0]));
         }),
         1.0 * mm_rows * mm_rows * sizeof(float), 1);
  }

  // Speedups are scalar_seconds / tier_seconds per kernel.
  double best_matmul_speedup = 0.0;
  std::string best_matmul_tier = "none";
  for (KernelTiming& t : timings) {
    for (const KernelTiming& s : timings) {
      if (s.tier == "scalar" && s.kernel == t.kernel && t.seconds > 0.0) {
        t.speedup_vs_scalar = s.seconds / t.seconds;
      }
    }
    if (t.kernel == "matmul_range" && t.tier != "scalar" &&
        t.speedup_vs_scalar > best_matmul_speedup) {
      best_matmul_speedup = t.speedup_vs_scalar;
      best_matmul_tier = t.tier;
    }
  }
  for (const KernelTiming& t : timings) {
    std::cout << t.kernel << " [" << t.tier
              << "]: " << FormatDouble(t.gbps, 2) << " GB/s, "
              << FormatDouble(t.speedup_vs_scalar, 2) << "x over scalar\n";
  }

  // ---- Mixed-precision arm: recall@c + end-to-end CSLS+greedy. ----
  Status set = SetKernelTier(BestAvailableKernelTier());
  if (!set.ok()) {
    std::cerr << "SetKernelTier: " << set.ToString() << "\n";
    return 1;
  }
  Matrix src;
  Matrix tgt;
  MakeClusteredPair(match_n, /*dim=*/64, /*seed=*/31, &src, &tgt);
  const size_t c = std::min(kCandidates, match_n);

  const MatchOptions dense_options = MakePreset(AlgorithmPreset::kCsls);
  Result<MatchEngine> dense_engine =
      MatchEngine::Create(src, tgt, dense_options);
  if (!dense_engine.ok()) {
    std::cerr << "dense engine: " << dense_engine.status().ToString() << "\n";
    return 1;
  }
  // Exact dense top-c of the raw metric scores — what the quantized
  // candidate pass must preserve.
  Result<Matrix> dense_raw =
      dense_engine->TransformedScores(MakePreset(AlgorithmPreset::kDInf));
  if (!dense_raw.ok()) {
    std::cerr << "dense scores: " << dense_raw.status().ToString() << "\n";
    return 1;
  }
  const std::vector<uint32_t> exact_topc = RowTopKIndices(*dense_raw, c);
  if (!dense_engine->Match().ok()) {
    std::cerr << "dense warmup failed\n";
    return 1;
  }
  Timer dense_timer;
  Result<Assignment> dense_run = dense_engine->Match();
  const double dense_seconds = dense_timer.ElapsedSeconds();
  if (!dense_run.ok()) {
    std::cerr << "dense run failed\n";
    return 1;
  }

  bool quant_gate_passed = false;
  std::vector<QuantResult> quant_results;
  for (ScorePrecision precision :
       {ScorePrecision::kBf16, ScorePrecision::kInt8}) {
    MatchOptions options = dense_options;
    options.score_precision = precision;
    options.num_candidates = c;
    Result<MatchEngine> engine = MatchEngine::Create(src, tgt, options);
    if (!engine.ok()) {
      std::cerr << "quantized engine: " << engine.status().ToString() << "\n";
      return 1;
    }
    Result<MatchEngine::ScoredBatch> batch = engine->BeginBatch(options);
    if (!batch.ok()) {
      std::cerr << "quantized batch: " << batch.status().ToString() << "\n";
      return 1;
    }
    size_t hits = 0;
    const SparseScores& sparse = batch->sparse_scores();
    for (size_t i = 0; i < match_n; ++i) {
      const auto cols = sparse.RowCols(i);
      for (size_t e = 0; e < c; ++e) {
        hits += std::binary_search(cols.begin(), cols.end(),
                                   exact_topc[i * c + e]);
      }
    }
    if (!engine->Match().ok()) {
      std::cerr << "quantized warmup failed\n";
      return 1;
    }
    Timer quant_timer;
    Result<Assignment> quant_run = engine->Match();
    const double quant_seconds = quant_timer.ElapsedSeconds();
    if (!quant_run.ok()) {
      std::cerr << "quantized run failed\n";
      return 1;
    }
    size_t agree = 0;
    for (size_t i = 0; i < match_n; ++i) {
      agree += (dense_run->target_of_source[i] ==
                quant_run->target_of_source[i]);
    }
    QuantResult result;
    result.precision = ScorePrecisionName(precision);
    result.recall =
        static_cast<double>(hits) / static_cast<double>(match_n * c);
    result.float_seconds = dense_seconds;
    result.quant_seconds = quant_seconds;
    result.speedup =
        quant_seconds > 0.0 ? dense_seconds / quant_seconds : 0.0;
    result.agreement =
        static_cast<double>(agree) / static_cast<double>(match_n);
    quant_results.push_back(result);
    if (result.speedup >= kQuantSpeedupGate &&
        result.recall >= kQuantRecallGate) {
      quant_gate_passed = true;
    }
    std::cout << "\nquantized " << result.precision << " @c=" << c
              << ": recall " << FormatDouble(result.recall, 3) << ", e2e "
              << FormatDouble(quant_seconds * 1e3, 1) << " ms vs float "
              << FormatDouble(dense_seconds * 1e3, 1) << " ms ("
              << FormatDouble(result.speedup, 2) << "x), assignments agree "
              << FormatDouble(result.agreement, 3) << "\n";
  }

  const bool matmul_gate_passed = best_matmul_speedup >= kMatmulGate;
  const bool ok = matmul_gate_passed || quant_gate_passed;
  if (!ok) {
    std::cerr << "\nFATAL: no vector tier reached " << kMatmulGate
              << "x on matmul_range (best " << best_matmul_speedup << "x on "
              << best_matmul_tier << ") and no quantized precision reached "
              << kQuantSpeedupGate << "x e2e at recall >= " << kQuantRecallGate
              << "\n";
  }

  std::ofstream json("BENCH_simd.json");
  json << "{\n  \"scale\": " << scale << ",\n  \"dim\": " << kDim
       << ",\n  \"matmul_rows\": " << mm_rows
       << ",\n  \"match_rows\": " << match_n << ",\n  \"cpu\": \""
       << DetectedCpuFeatures() << "\",\n  \"tiers\": [";
  for (size_t i = 0; i < tiers.size(); ++i) {
    json << (i > 0 ? ", " : "") << "\"" << KernelTierName(tiers[i]) << "\"";
  }
  json << "],\n  \"kernels\": [\n";
  for (size_t i = 0; i < timings.size(); ++i) {
    json << "    {\"kernel\": \"" << timings[i].kernel << "\", \"tier\": \""
         << timings[i].tier << "\", \"seconds\": " << timings[i].seconds
         << ", \"gbps\": " << timings[i].gbps
         << ", \"speedup_vs_scalar\": " << timings[i].speedup_vs_scalar
         << "}" << (i + 1 < timings.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"matmul_gate\": {\"required\": " << kMatmulGate
       << ", \"best_tier\": \"" << best_matmul_tier
       << "\", \"best_speedup\": " << best_matmul_speedup
       << ", \"passed\": " << (matmul_gate_passed ? "true" : "false")
       << "},\n  \"quantized\": [\n";
  for (size_t i = 0; i < quant_results.size(); ++i) {
    const QuantResult& q = quant_results[i];
    json << "    {\"precision\": \"" << q.precision
         << "\", \"candidates\": " << c << ", \"recall_at_c\": " << q.recall
         << ", \"float_seconds\": " << q.float_seconds
         << ", \"quant_seconds\": " << q.quant_seconds
         << ", \"speedup\": " << q.speedup
         << ", \"assignment_agreement\": " << q.agreement << "}"
         << (i + 1 < quant_results.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"quantized_gate\": {\"required_speedup\": "
       << kQuantSpeedupGate << ", \"required_recall\": " << kQuantRecallGate
       << ", \"passed\": " << (quant_gate_passed ? "true" : "false")
       << "},\n  \"ok\": " << (ok ? "true" : "false") << "\n}\n";
  std::cout << "\nwrote BENCH_simd.json (" << timings.size()
            << " kernel timings)\n";
  return ok ? 0 : 1;
}
