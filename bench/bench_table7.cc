// Reproduces Table 7: F1 and time on DBP15K+-sim, the unmatchable-entity
// setting, with GCN and RREA embeddings.
//
// Expected shapes (paper Sec. 5.1):
//   - All F1 drop versus the matchable-only Table 4 results.
//   - Hun. (with dummy-node padding) is best, then SMat; greedy methods
//     align every unmatchable source and lose precision; DInf is worst.
//   - Precision < recall for the greedy family.

#include "bench/harness.h"

namespace entmatcher::bench {
namespace {

void RunBlock(const std::string& block_name, EmbeddingSetting setting,
              double scale) {
  const std::vector<std::string> pairs = Dbp15kPlusPairNames();
  std::vector<KgPairDataset> datasets;
  std::vector<EmbeddingPair> embeddings;
  for (const std::string& pair : pairs) {
    datasets.push_back(MustGenerate(pair, scale));
    embeddings.push_back(MustEmbed(datasets.back(), setting));
  }
  std::vector<std::string> headers = {"Model"};
  headers.insert(headers.end(), pairs.begin(), pairs.end());
  headers.push_back("T (s)");
  TablePrinter table(headers);
  for (AlgorithmPreset preset : MainPresets()) {
    std::vector<std::string> row = {PresetName(preset)};
    double total_seconds = 0.0;
    for (size_t i = 0; i < datasets.size(); ++i) {
      ExperimentResult r = MustRun(datasets[i], embeddings[i], preset);
      row.push_back(F3(r.metrics.f1));
      total_seconds += r.seconds;
    }
    row.push_back(FormatDouble(total_seconds / datasets.size(), 1));
    table.AddRow(row);
  }
  std::cout << "\n-- " << block_name << " --\n";
  table.Print(std::cout);
}

void Run() {
  const double scale = GlobalScale();
  PrintBanner(
      "Table 7 — F1 on DBP15K+-sim (unmatchable entities)",
      "30% of test source candidates have no counterpart. Hun. and SMat pad\n"
      "with dummy nodes (rejection capability); greedy methods align every\n"
      "source and lose precision.");
  RunBlock("GCN", EmbeddingSetting::kGcnStruct, scale);
  RunBlock("RREA", EmbeddingSetting::kRreaStruct, scale);
}

}  // namespace
}  // namespace entmatcher::bench

int main() {
  entmatcher::bench::Run();
  return 0;
}
