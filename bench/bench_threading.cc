// Threading-substrate benchmark: sweeps the ParallelFor worker count over the
// similarity + CSLS transform pipeline (the matching-stage wall-clock
// dominators at DWY100K scale, paper Table 6) at several matrix sizes, checks
// the parallel results stay bit-identical to the 1-thread path, and writes
// BENCH_threading.json so later PRs can track the scaling trajectory.
//
// Usage:
//   ./bench_threading                     # sizes scaled by EM_BENCH_SCALE
//   EM_BENCH_SCALE=0.2 ./bench_threading  # smoke run

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "la/similarity.h"
#include "matching/transforms.h"

namespace entmatcher {
namespace {

constexpr size_t kDim = 64;
constexpr size_t kCslsK = 10;

Matrix RandomEmbeddings(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, kDim);
  for (size_t r = 0; r < rows; ++r) {
    for (float& v : m.Row(r)) v = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

// One cosine-similarity + CSLS pass — the per-request hot path of a
// matching service.
Matrix RunPipeline(const Matrix& src, const Matrix& tgt) {
  auto scores = ComputeSimilarity(src, tgt, SimilarityMetric::kCosine);
  if (!scores.ok()) {
    std::cerr << "similarity: " << scores.status().ToString() << "\n";
    std::abort();
  }
  auto transformed = CslsTransform(std::move(scores).value(), kCslsK);
  if (!transformed.ok()) {
    std::cerr << "csls: " << transformed.status().ToString() << "\n";
    std::abort();
  }
  return std::move(transformed).value();
}

struct Measurement {
  size_t rows = 0;
  size_t threads = 0;
  double seconds = 0.0;
  double speedup_vs_serial = 0.0;
  bool bit_identical = false;
};

}  // namespace
}  // namespace entmatcher

int main() {
  using namespace entmatcher;

  const double scale = bench::GlobalScale();
  std::vector<size_t> sizes;
  for (size_t base : {1000, 2500, 10000}) {
    const size_t n = static_cast<size_t>(static_cast<double>(base) * scale);
    if (n >= 8) sizes.push_back(n);
  }
  std::vector<size_t> thread_counts = {1, 2, 4, GetNumThreads()};
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(
      std::unique(thread_counts.begin(), thread_counts.end()),
      thread_counts.end());

  bench::PrintBanner(
      "Threading sweep — cosine similarity + CSLS pipeline",
      "ParallelFor static-chunk substrate; parallel results must be "
      "bit-identical to serial");
  std::cout << "hardware_concurrency=" << std::thread::hardware_concurrency()
            << "  default_threads=" << GetNumThreads() << "\n\n";

  const size_t original_threads = GetNumThreads();
  std::vector<Measurement> results;
  for (size_t n : sizes) {
    const Matrix src = RandomEmbeddings(n, /*seed=*/11);
    const Matrix tgt = RandomEmbeddings(n, /*seed=*/23);

    SetNumThreads(1);
    RunPipeline(src, tgt);  // warm-up: page in the inputs, touch the pool path
    Timer serial_timer;
    const Matrix serial = RunPipeline(src, tgt);
    const double serial_seconds = serial_timer.ElapsedSeconds();

    for (size_t threads : thread_counts) {
      SetNumThreads(threads);
      Timer timer;
      const Matrix out = RunPipeline(src, tgt);
      Measurement m;
      m.rows = n;
      m.threads = threads;
      m.seconds = threads == 1 ? serial_seconds : timer.ElapsedSeconds();
      m.speedup_vs_serial = m.seconds > 0.0 ? serial_seconds / m.seconds : 0.0;
      m.bit_identical =
          out.rows() == serial.rows() && out.cols() == serial.cols() &&
          std::memcmp(out.data(), serial.data(), out.ByteSize()) == 0;
      results.push_back(m);
      std::cout << "n=" << n << "  threads=" << m.threads << "  "
                << FormatDouble(m.seconds * 1e3, 1) << " ms  speedup="
                << FormatDouble(m.speedup_vs_serial, 2) << "x  bit_identical="
                << (m.bit_identical ? "yes" : "NO") << "\n";
      if (!m.bit_identical) {
        std::cerr << "FATAL: parallel result diverged from serial\n";
        return 1;
      }
    }
    std::cout << "\n";
  }
  SetNumThreads(original_threads);

  std::ofstream json("BENCH_threading.json");
  json << "{\n  \"pipeline\": \"cosine+csls\",\n  \"dim\": " << kDim
       << ",\n  \"csls_k\": " << kCslsK << ",\n  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n  \"measurements\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const Measurement& m = results[i];
    json << "    {\"rows\": " << m.rows << ", \"threads\": " << m.threads
         << ", \"seconds\": " << m.seconds << ", \"speedup_vs_serial\": "
         << m.speedup_vs_serial << ", \"bit_identical\": "
         << (m.bit_identical ? "true" : "false") << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "wrote BENCH_threading.json (" << results.size()
            << " measurements)\n";
  return 0;
}
