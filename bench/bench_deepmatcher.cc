// Reproduces the Sec. 4.3 comparison with DL-based entity-matching systems:
// a deepmatcher-style neural pair classifier trained on the seed links with
// 1:10 negative sampling, evaluated by scoring each source entity against a
// top-K candidate block (as EM blocking pipelines do) and taking the argmax.
//
// Expected shape: the classifier fails on EA — "only several entities are
// correctly aligned" — because of scarce labels, extreme class imbalance,
// and the absence of attributive text. DInf on the very same embeddings is
// far stronger.

#include "bench/harness.h"
#include "la/similarity.h"
#include "la/topk.h"
#include "nn/pair_classifier.h"

namespace entmatcher::bench {
namespace {

double ClassifierF1(const KgPairDataset& dataset, const EmbeddingPair& emb,
                    size_t block_width) {
  PairClassifierConfig config;
  config.epochs = 20;
  auto classifier = PairClassifier::Train(
      emb.source, emb.target, dataset.split.train.pairs(),
      dataset.test_target_entities, config);
  if (!classifier.ok()) {
    std::cerr << classifier.status().ToString() << "\n";
    std::abort();
  }

  // Blocking: score only each source's top-K cosine candidates.
  const Matrix src = ExtractRows(emb.source, dataset.test_source_entities);
  const Matrix tgt = ExtractRows(emb.target, dataset.test_target_entities);
  auto sim = ComputeSimilarity(src, tgt, SimilarityMetric::kCosine);
  if (!sim.ok()) std::abort();
  const size_t k = std::min(block_width, dataset.test_target_entities.size());
  const std::vector<uint32_t> candidates = RowTopKIndices(*sim, k);

  size_t correct = 0;
  for (size_t i = 0; i < dataset.test_source_entities.size(); ++i) {
    float best_score = -1.0f;
    uint32_t best_j = candidates[i * k];
    for (size_t c = 0; c < k; ++c) {
      const uint32_t j = candidates[i * k + c];
      const float score = classifier->Score(
          emb.source, emb.target, dataset.test_source_entities[i],
          dataset.test_target_entities[j]);
      if (score > best_score) {
        best_score = score;
        best_j = j;
      }
    }
    if (dataset.split.test.Contains(dataset.test_source_entities[i],
                                    dataset.test_target_entities[best_j])) {
      ++correct;
    }
  }
  return static_cast<double>(correct) /
         static_cast<double>(dataset.test_source_entities.size());
}

void Run() {
  const double scale = GlobalScale();
  PrintBanner(
      "Sec. 4.3 — deepmatcher-style DL-based EM adapted to EA",
      "Pair classifier (MLP over concatenated pair embeddings, 1:10 negative\n"
      "sampling) vs the DInf baseline on the same embeddings. Expected: the\n"
      "classifier collapses; DInf is far stronger.");

  TablePrinter table(
      {"Pair", "Features", "Classifier F1", "DInf F1 (same emb.)"});
  for (const std::string& pair : {std::string("D-Z"), std::string("S-F")}) {
    KgPairDataset d = MustGenerate(pair, scale);
    for (EmbeddingSetting setting :
         {EmbeddingSetting::kRreaStruct, EmbeddingSetting::kNameOnly}) {
      EmbeddingPair emb = MustEmbed(d, setting);
      const double clf = ClassifierF1(d, emb, /*block_width=*/20);
      ExperimentResult dinf = MustRun(d, emb, AlgorithmPreset::kDInf);
      table.AddRow({pair,
                    setting == EmbeddingSetting::kRreaStruct ? "structural"
                                                             : "name",
                    F3(clf), F3(dinf.metrics.f1)});
    }
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace entmatcher::bench

int main() {
  entmatcher::bench::Run();
  return 0;
}
