// Fleet benchmark: the same mixed match/topk storm is routed through a
// 1-shard and a 4-shard fleet of REAL shard processes (ShardManager forks
// the entmatcher_cli binary; the router scatter-gathers over unix sockets),
// and the harness reports aggregate QPS plus client-observed p50/p99 per
// shard count. Writes BENCH_fleet.json.
//
// Hard gates (correctness, not speed — a 1-core CI container cannot
// demonstrate multi-process speedup, so there is deliberately no QPS-ratio
// gate):
//   1. every merged answer is bit-identical to a solo MatchEngine run,
//   2. the router ledger is exact: queries == ok + failed, failed == 0,
//   3. zero mixed-version merges (no swap runs during the storm),
//   4. definite termination: every storm query returns, StopAll reaps all.
//
// A recovery section then SIGKILLs shards in rotation under a
// FleetSupervisor and reports reap→re-admission restart-latency p50/p99;
// its gate is that every kill completes a recovery cycle with no permanent
// failures. EM_FAULT_PLAN is honored (faults builds only) so CI can inject
// fleet.spawn failures into the restart path.
//
// Usage:
//   ./bench_fleet                     # sizes scaled by EM_BENCH_SCALE
//   EM_BENCH_SCALE=0.2 ./bench_fleet  # CI smoke run
// The shard binary is located via EM_CLI_PATH, falling back to
// <bench dir>/../examples/entmatcher_cli in the build tree.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/fault.h"
#include "common/rng.h"
#include "common/timer.h"
#include "fleet/plan.h"
#include "fleet/router.h"
#include "fleet/shard_manager.h"
#include "fleet/supervisor.h"
#include "la/matrix_io.h"
#include "la/topk.h"
#include "matching/engine.h"

namespace entmatcher {
namespace {

constexpr size_t kDim = 32;
constexpr size_t kClients = 4;
constexpr size_t kTopK = 5;

Matrix RandomEmbeddings(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, kDim);
  for (size_t r = 0; r < rows; ++r) {
    for (float& v : m.Row(r)) v = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

/// The shard binary: EM_CLI_PATH, else ../examples/entmatcher_cli next to
/// this bench in the build tree.
std::string LocateCli() {
  const char* env = std::getenv("EM_CLI_PATH");
  if (env != nullptr) return env;
  char buf[4096];
  const ssize_t len = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (len <= 0) return "";
  buf[len] = '\0';
  std::string self(buf);
  const size_t slash = self.rfind('/');
  if (slash == std::string::npos) return "";
  return self.substr(0, slash) + "/../examples/entmatcher_cli";
}

struct FleetResult {
  int shards = 0;
  size_t queries = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double p50_micros = 0.0;
  double p99_micros = 0.0;
  uint64_t failed = 0;
  uint64_t failovers = 0;
  uint64_t version_mismatches = 0;
  bool ledger_exact = false;
  bool identical = true;
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t index = std::min(
      values.size() - 1,
      static_cast<size_t>(p * static_cast<double>(values.size() - 1) + 0.5));
  return values[index];
}

}  // namespace
}  // namespace entmatcher

int main() {
  using namespace entmatcher;

  const Status faults = ArmFaultInjectionFromEnv();
  if (!faults.ok()) {
    std::cerr << faults.ToString() << "\n";
    return 1;
  }
  const bool faults_armed = FaultInjector::Global().armed();

  const double scale = bench::GlobalScale();
  const size_t rows = std::max<size_t>(32, static_cast<size_t>(600.0 * scale));
  const size_t per_client =
      std::max<size_t>(4, static_cast<size_t>(20.0 * scale));
  const std::string cli = LocateCli();

  bench::PrintBanner(
      "Fleet — sharded multi-process serving: 1-shard vs 4-shard QPS + p99",
      "ShardManager forks real shard processes; the Router scatter-gathers\n"
      "the same mixed match/topk storm over unix sockets at 1 and 4 shards.\n"
      "Gates are correctness only: bit-identity to a solo engine run, an\n"
      "exact router ledger, zero mixed-version merges.");

  if (cli.empty() || ::access(cli.c_str(), X_OK) != 0) {
    std::cerr << "FATAL: shard binary not found (EM_CLI_PATH unset and no "
              << "../examples/entmatcher_cli next to bench_fleet): " << cli
              << "\n";
    return 1;
  }

  const std::string dir = "/tmp/em_bench_fleet_" + std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);
  const Matrix source = RandomEmbeddings(rows, /*seed=*/21);
  const Matrix target = RandomEmbeddings(rows + rows / 4, /*seed=*/22);
  if (!WriteMatrixBinary(source, dir + "/src.emat").ok() ||
      !WriteMatrixBinary(target, dir + "/tgt.emat").ok()) {
    std::cerr << "FATAL: cannot write embeddings under " << dir << "\n";
    return 1;
  }

  // Solo references: the merged fleet answers must reproduce these exactly.
  Result<MatchEngine> engine =
      MatchEngine::Create(Matrix(source), Matrix(target),
                          MakePreset(AlgorithmPreset::kCsls));
  if (!engine.ok()) {
    std::cerr << engine.status().ToString() << "\n";
    return 1;
  }
  Result<Assignment> solo_match = engine->Match();
  Result<Matrix> solo_scores =
      engine->TransformedScores(MakePreset(AlgorithmPreset::kCsls));
  if (!solo_match.ok() || !solo_scores.ok()) {
    std::cerr << "FATAL: solo reference failed\n";
    return 1;
  }
  const std::vector<int32_t>& match_reference = solo_match->target_of_source;
  const std::vector<uint32_t> topk_reference =
      RowTopKIndices(*solo_scores, kTopK);

  std::vector<FleetResult> results;
  bool ok = true;
  for (int shards : {1, 4}) {
    Result<ShardPlan> made = ShardPlan::EvenSplit(
        "p", dir + "/src.emat", dir + "/tgt.emat", "", rows, shards, dir,
        /*replicas=*/0);
    if (!made.ok()) {
      std::cerr << made.status().ToString() << "\n";
      return 1;
    }
    const std::string plan_path =
        dir + "/plan_" + std::to_string(shards) + ".json";
    if (!made->Save(plan_path).ok()) {
      std::cerr << "FATAL: cannot save " << plan_path << "\n";
      return 1;
    }

    ShardManager manager;
    Status started =
        manager.Start(*made, ShardCommand::SelfServe(plan_path, cli));
    if (!started.ok()) {
      std::cerr << started.ToString() << "\n";
      return 1;
    }
    Status healthy = manager.WaitHealthy(30'000'000);
    if (!healthy.ok()) {
      std::cerr << healthy.ToString() << "\n";
      manager.StopAll();
      return 1;
    }
    Result<std::unique_ptr<Router>> router = Router::Create(*made, {});
    if (!router.ok()) {
      std::cerr << router.status().ToString() << "\n";
      manager.StopAll();
      return 1;
    }

    FleetResult result;
    result.shards = shards;
    result.queries = kClients * per_client;
    std::atomic<bool> identical{true};
    std::atomic<uint64_t> answered{0};
    std::mutex latency_mu;
    std::vector<double> latencies_micros;
    std::vector<std::thread> storm;
    Timer wall;
    for (size_t c = 0; c < kClients; ++c) {
      storm.emplace_back([&, c] {
        for (size_t q = 0; q < per_client; ++q) {
          WireRequest request;
          request.pair = "p";
          request.algorithm = AlgorithmPreset::kCsls;
          const bool topk = (c + q) % 2 == 1;  // alternate match / topk
          if (topk) {
            request.verb = WireRequest::Verb::kTopK;
            request.k = kTopK;
          } else {
            request.verb = WireRequest::Verb::kMatch;
          }
          Timer per_query;
          Result<WireResponse> answer = (*router)->Query(request);
          const double micros = per_query.ElapsedSeconds() * 1e6;
          answered.fetch_add(1);
          {
            std::lock_guard<std::mutex> lock(latency_mu);
            latencies_micros.push_back(micros);
          }
          if (!answer.ok()) {
            identical.store(false, std::memory_order_relaxed);
            continue;
          }
          bool same;
          if (topk) {
            same = answer->values.size() == topk_reference.size();
            for (size_t i = 0; same && i < topk_reference.size(); ++i) {
              same = answer->values[i] ==
                     static_cast<int32_t>(topk_reference[i]);
            }
          } else {
            same = answer->values.size() == match_reference.size();
            for (size_t i = 0; same && i < match_reference.size(); ++i) {
              same = answer->values[i] == match_reference[i];
            }
          }
          if (!same) identical.store(false, std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& thread : storm) thread.join();
    result.seconds = wall.ElapsedSeconds();
    result.qps = result.seconds > 0.0
                     ? static_cast<double>(result.queries) / result.seconds
                     : 0.0;
    result.p50_micros = Percentile(latencies_micros, 0.50);
    result.p99_micros = Percentile(latencies_micros, 0.99);
    result.identical = identical.load();

    const RouterStatsSnapshot stats = (*router)->Stats();
    result.failed = stats.failed;
    result.failovers = stats.failovers;
    result.version_mismatches = stats.version_mismatches;
    result.ledger_exact = stats.queries == answered.load() &&
                          stats.queries == stats.ok + stats.failed;

    router->reset();
    manager.StopAll();
    for (const ShardProcessStatus& status : manager.Status_()) {
      if (status.running) {
        std::cerr << "FATAL: shard " << status.shard_id
                  << " survived StopAll\n";
        ok = false;
      }
    }

    std::cout << "shards=" << result.shards << ": " << result.queries
              << " queries in " << FormatDouble(result.seconds * 1e3, 1)
              << " ms  (" << FormatDouble(result.qps, 1) << " q/s)  p50="
              << FormatDouble(result.p50_micros, 0) << " us  p99="
              << FormatDouble(result.p99_micros, 0) << " us  failed="
              << result.failed << "  mixed_version_merges="
              << result.version_mismatches << "  identical="
              << (result.identical ? "yes" : "NO") << "  ledger="
              << (result.ledger_exact ? "exact" : "INEXACT") << "\n";
    results.push_back(result);
  }

  // --- Gates. ---
  for (const FleetResult& result : results) {
    if (!result.identical) {
      std::cerr << "FATAL: shards=" << result.shards
                << " merged answers diverged from the solo engine run\n";
      ok = false;
    }
    if (!result.ledger_exact || result.failed != 0) {
      std::cerr << "FATAL: shards=" << result.shards
                << " router ledger inexact or queries failed\n";
      ok = false;
    }
    if (result.version_mismatches != 0) {
      std::cerr << "FATAL: shards=" << result.shards
                << " saw mixed-version merges with no swap in flight\n";
      ok = false;
    }
  }
  const double qps1 = results[0].qps;
  const double qps4 = results[1].qps;
  std::cout << "shards=4 vs shards=1: "
            << FormatDouble(qps1 > 0.0 ? qps4 / qps1 : 0.0, 2)
            << "x QPS (informational — no speed gate on shared-core CI)\n";

  // --- Recovery section: rotating SIGKILLs under a FleetSupervisor, ---
  // --- restart latency measured reap → re-admission.                ---
  constexpr int kRecoveryShards = 3;
  const uint64_t recovery_rounds =
      std::max<uint64_t>(2, static_cast<uint64_t>(4.0 * scale));
  uint64_t recovery_kills = 0;
  uint64_t recovery_completed = 0;
  uint64_t recovery_spawn_failures = 0;
  uint64_t recovery_rejoin_failures = 0;
  double restart_p50 = 0.0;
  double restart_p99 = 0.0;
  {
    Result<ShardPlan> made = ShardPlan::EvenSplit(
        "p", dir + "/src.emat", dir + "/tgt.emat", "", rows, kRecoveryShards,
        dir, /*replicas=*/1);
    if (!made.ok()) {
      std::cerr << made.status().ToString() << "\n";
      return 1;
    }
    const std::string plan_path = dir + "/plan_recovery.json";
    if (!made->Save(plan_path).ok()) {
      std::cerr << "FATAL: cannot save " << plan_path << "\n";
      return 1;
    }
    ShardManager manager;
    Status started =
        manager.Start(*made, ShardCommand::SelfServe(plan_path, cli));
    if (!started.ok()) {
      std::cerr << started.ToString() << "\n";
      return 1;
    }
    Status healthy = manager.WaitHealthy(30'000'000);
    if (!healthy.ok()) {
      std::cerr << healthy.ToString() << "\n";
      manager.StopAll();
      return 1;
    }
    Result<std::unique_ptr<Router>> router = Router::Create(*made, {});
    if (!router.ok()) {
      std::cerr << router.status().ToString() << "\n";
      manager.StopAll();
      return 1;
    }
    RestartPolicy policy;
    policy.initial_backoff_micros = 10'000;
    policy.max_backoff_micros = 200'000;
    policy.boot_budget_micros = 30'000'000;  // jitter seed: EM_FAULT_SEED
    FleetSupervisor supervisor(&manager, router->get(), *made, policy);
    Status sup = supervisor.Start();
    if (!sup.ok()) {
      std::cerr << sup.ToString() << "\n";
      manager.StopAll();
      return 1;
    }
    for (uint64_t round = 1; round <= recovery_rounds; ++round) {
      for (int shard = 0; shard < kRecoveryShards; ++shard) {
        if (!manager.Kill(shard, SIGKILL).ok()) continue;
        ++recovery_kills;
        Status recovered = supervisor.WaitRestarts(shard, round, 90'000'000);
        if (recovered.ok()) {
          ++recovery_completed;
        } else {
          std::cerr << "FATAL: shard " << shard << " round " << round
                    << " never recovered: " << recovered.ToString() << "\n";
          ok = false;
        }
      }
    }
    std::vector<double> restart_micros;
    for (uint64_t latency : supervisor.RestartLatencies()) {
      restart_micros.push_back(static_cast<double>(latency));
    }
    restart_p50 = Percentile(restart_micros, 0.50);
    restart_p99 = Percentile(restart_micros, 0.99);
    for (const ShardRecoveryStatus& shard : supervisor.Ledger()) {
      recovery_spawn_failures += shard.spawn_failures;
      recovery_rejoin_failures += shard.rejoin_failures;
      if (shard.permanently_failed) {
        std::cerr << "FATAL: shard " << shard.shard_id
                  << " permanently failed during the recovery bench\n";
        ok = false;
      }
    }
    // The healed fleet still answers bit-identically.
    WireRequest request;
    request.verb = WireRequest::Verb::kMatch;
    request.algorithm = AlgorithmPreset::kCsls;
    request.pair = "p";
    Result<WireResponse> answer = (*router)->Query(request);
    if (!answer.ok() || answer->values.size() != match_reference.size()) {
      std::cerr << "FATAL: healed fleet cannot answer\n";
      ok = false;
    } else {
      for (size_t i = 0; i < match_reference.size(); ++i) {
        if (answer->values[i] != match_reference[i]) {
          std::cerr << "FATAL: healed fleet diverged from the solo run\n";
          ok = false;
          break;
        }
      }
    }
    if ((*router)->Stats().version_mismatches != 0) {
      std::cerr << "FATAL: mixed-version merges during recovery cycles\n";
      ok = false;
    }
    supervisor.Stop();
    router->reset();
    manager.StopAll();
    for (const ShardProcessStatus& status : manager.Status_()) {
      if (status.running) {
        std::cerr << "FATAL: shard " << status.shard_id
                  << " survived StopAll\n";
        ok = false;
      }
    }
    std::cout << "recovery: " << recovery_completed << "/" << recovery_kills
              << " kills recovered  restart p50="
              << FormatDouble(restart_p50 / 1e3, 1) << " ms  p99="
              << FormatDouble(restart_p99 / 1e3, 1) << " ms  spawn_failures="
              << recovery_spawn_failures << "  rejoin_failures="
              << recovery_rejoin_failures
              << (faults_armed ? "  (faults armed)" : "") << "\n";
  }

  std::ofstream json("BENCH_fleet.json");
  json << "{\n  \"rows\": " << rows << ",\n  \"dim\": " << kDim
       << ",\n  \"clients\": " << kClients
       << ",\n  \"queries_per_client\": " << per_client
       << ",\n  \"fleets\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const FleetResult& r = results[i];
    json << "    {\"shards\": " << r.shards << ", \"queries\": " << r.queries
         << ", \"seconds\": " << r.seconds << ", \"qps\": " << r.qps
         << ", \"latency_p50_micros\": " << r.p50_micros
         << ", \"latency_p99_micros\": " << r.p99_micros
         << ", \"failed\": " << r.failed
         << ", \"failovers\": " << r.failovers
         << ", \"version_mismatches\": " << r.version_mismatches
         << ", \"ledger_exact\": " << (r.ledger_exact ? "true" : "false")
         << ", \"identical\": " << (r.identical ? "true" : "false") << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"qps_shards4_vs_1\": "
       << (qps1 > 0.0 ? qps4 / qps1 : 0.0) << ",\n  \"recovery\": {"
       << "\"shards\": " << kRecoveryShards
       << ", \"kills\": " << recovery_kills
       << ", \"recovered\": " << recovery_completed
       << ", \"restart_p50_micros\": " << restart_p50
       << ", \"restart_p99_micros\": " << restart_p99
       << ", \"spawn_failures\": " << recovery_spawn_failures
       << ", \"rejoin_failures\": " << recovery_rejoin_failures
       << ", \"faults_armed\": " << (faults_armed ? "true" : "false")
       << "}\n}\n";
  std::cout << "wrote BENCH_fleet.json\n";
  return ok ? 0 : 1;
}
