// Reproduces Figure 1's three conceptual cases experimentally:
//
//  (a) identical KGs + ideal representation learning: equivalent entities
//      get (nearly) identical embeddings and even plain DInf is perfect;
//  (b) heterogeneous KGs + good model: equivalent entities drift apart and
//      DInf produces false pairs that collective matching repairs;
//  (c) heterogeneous KGs + weak model: the embedding space is irregular and
//      only collective constraints recover part of the matching.
//
// The structural-heterogeneity knob (triple_keep_prob) moves the world from
// (a) toward (b)/(c); the embedding model (RREA vs GCN) separates (b) from
// (c). A keep-prob sweep quantifies Pattern 2's mechanism: heterogeneity
// degrades the pairwise scores, which throttles every algorithm and
// compresses the advanced methods' lead.

#include "bench/harness.h"
#include "datagen/kg_pair_generator.h"
#include "embedding/propagation.h"

namespace entmatcher::bench {
namespace {

KgPairDataset MakeWorld(double keep_prob, double scale) {
  KgPairGeneratorConfig c;
  c.name = "keep=" + FormatDouble(keep_prob, 2);
  c.seed = 77;
  c.num_core_concepts =
      std::max<size_t>(200, static_cast<size_t>(2000 * scale));
  c.exclusive_fraction = 0.0;
  c.avg_degree = 4.3;
  c.num_world_relations = 600;
  c.num_relations_source = 500;
  c.num_relations_target = 450;
  c.triple_keep_prob = keep_prob;
  auto d = GenerateKgPair(c);
  if (!d.ok()) {
    std::cerr << d.status().ToString() << "\n";
    std::abort();
  }
  return std::move(d).value();
}

void Run() {
  const double scale = GlobalScale();
  PrintBanner("Figure 1 (experimental) — identical vs heterogeneous KGs",
              "triple_keep_prob = 1.0 makes both KGs keep every world "
              "triple\n(case a); lower values yield cases (b)/(c).");

  TablePrinter table({"keep_prob", "Model", "DInf", "CSLS", "RInf", "Sink.",
                      "Hun.", "best-vs-DInf"});
  for (double keep : {1.0, 0.9, 0.8, 0.7}) {
    KgPairDataset d = MakeWorld(keep, scale);
    for (EmbeddingSetting setting :
         {EmbeddingSetting::kRreaStruct, EmbeddingSetting::kGcnStruct}) {
      EmbeddingPair e = MustEmbed(d, setting);
      std::vector<std::string> row = {FormatDouble(keep, 2),
                                      EmbeddingSettingPrefix(setting)};
      double dinf_f1 = 0.0;
      double best = 0.0;
      for (AlgorithmPreset preset :
           {AlgorithmPreset::kDInf, AlgorithmPreset::kCsls,
            AlgorithmPreset::kRinf, AlgorithmPreset::kSinkhorn,
            AlgorithmPreset::kHungarian}) {
        ExperimentResult r = MustRun(d, e, preset);
        row.push_back(F3(r.metrics.f1));
        if (preset == AlgorithmPreset::kDInf) dinf_f1 = r.metrics.f1;
        best = std::max(best, r.metrics.f1);
      }
      row.push_back(dinf_f1 > 0.0
                        ? "+" + FormatDouble(100.0 * (best - dinf_f1) / dinf_f1,
                                             1) +
                              "%"
                        : "");
      table.AddRow(row);
    }
    table.AddSeparator();
  }
  table.Print(std::cout);
  std::cout << "\nAt keep_prob = 1.0 with the strong model, DInf is already "
               "near-perfect (case a);\nheterogeneity opens the gap the "
               "collective algorithms close (cases b/c).\n";
}

}  // namespace
}  // namespace entmatcher::bench

int main() {
  entmatcher::bench::Run();
  return 0;
}
