// Reproduces Figure 4: the mean standard deviation of each source entity's
// top-5 pairwise similarity scores, per experimental setting.
//
// This is the statistic behind the paper's Pattern 1: settings with LOW
// top-score STD (hard-to-separate candidates: the structure-only settings)
// favor the score-improving methods (RInf/CSLS), while HIGH-STD settings
// (name-driven) favor the global-constraint methods (SMat/RL).

#include "bench/harness.h"

namespace entmatcher::bench {
namespace {

void Run() {
  const double scale = GlobalScale();
  PrintBanner("Figure 4 — STD of the top-5 pairwise similarity scores",
              "Mean over test source entities, per embedding setting and KG "
              "pair.");

  struct Block {
    std::string name;
    std::vector<std::string> pairs;
    EmbeddingSetting setting;
  };
  const std::vector<Block> blocks = {
      {"R-DBP", Dbp15kPairNames(), EmbeddingSetting::kRreaStruct},
      {"R-SRP", SrprsPairNames(), EmbeddingSetting::kRreaStruct},
      {"G-DBP", Dbp15kPairNames(), EmbeddingSetting::kGcnStruct},
      {"G-SRP", SrprsPairNames(), EmbeddingSetting::kGcnStruct},
      {"N-DBP", Dbp15kPairNames(), EmbeddingSetting::kNameOnly},
      {"NR-DBP", Dbp15kPairNames(), EmbeddingSetting::kNameRrea},
  };

  TablePrinter table({"Setting", "Pair", "Top-5 STD"});
  for (const Block& block : blocks) {
    double sum = 0.0;
    for (const std::string& pair : block.pairs) {
      KgPairDataset d = MustGenerate(pair, scale);
      EmbeddingPair e = MustEmbed(d, block.setting);
      auto std5 = TopKScoreStd(d, e, 5);
      if (!std5.ok()) {
        std::cerr << std5.status().ToString() << "\n";
        std::abort();
      }
      table.AddRow({block.name, pair, FormatDouble(*std5, 4)});
      sum += *std5;
    }
    table.AddRow({block.name, "(mean)",
                  FormatDouble(sum / block.pairs.size(), 4)});
    table.AddSeparator();
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace entmatcher::bench

int main() {
  entmatcher::bench::Run();
  return 0;
}
