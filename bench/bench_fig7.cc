// Reproduces Figure 7: F1 of the Sinkhorn algorithm as its iteration count l
// varies, plus the corresponding time cost.
//
// Expected shape (paper Sec. 4.5): larger l pushes the coupling closer to a
// doubly-stochastic (1-to-1-like) matrix, so F1 increases with l and
// saturates, while the time cost grows linearly — motivating the paper's
// l = 100 default.

#include "bench/harness.h"

namespace entmatcher::bench {
namespace {

void Run() {
  const double scale = GlobalScale();
  PrintBanner("Figure 7 — F1 of Sink. with varying l",
              "RREA embeddings; l is the Sinkhorn iteration count (Eq. 3).");

  const std::vector<size_t> ls = {1, 2, 5, 10, 50, 100};
  const std::vector<std::string> pairs = {"D-Z", "D-J", "D-F", "S-F", "S-D"};
  std::vector<std::string> headers = {"Pair"};
  for (size_t l : ls) headers.push_back("l=" + std::to_string(l));
  headers.push_back("T(s) @ l=100");
  TablePrinter table(headers);

  for (const std::string& pair : pairs) {
    KgPairDataset d = MustGenerate(pair, scale);
    EmbeddingPair e = MustEmbed(d, EmbeddingSetting::kRreaStruct);
    std::vector<std::string> row = {pair};
    double last_seconds = 0.0;
    for (size_t l : ls) {
      MatchOptions options = MakePreset(AlgorithmPreset::kSinkhorn);
      options.sinkhorn_iterations = l;
      auto r = RunExperimentWithOptions(d, e, options,
                                        "Sink-l" + std::to_string(l));
      if (!r.ok()) {
        std::cerr << r.status().ToString() << "\n";
        std::abort();
      }
      row.push_back(F3(r->metrics.f1));
      last_seconds = r->seconds;
    }
    row.push_back(FormatDouble(last_seconds, 2));
    table.AddRow(row);
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace entmatcher::bench

int main() {
  entmatcher::bench::Run();
  return 0;
}
