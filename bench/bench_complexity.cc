// Empirically validates Table 2's complexity column: times each algorithm on
// random score matrices of doubling size and reports the effective scaling
// exponent log2(T(2n)/T(n)).
//
// Expected: DInf/CSLS/RInf-wr ~ n^2; RInf/SMat ~ n^2 log n (exponent
// slightly above 2); Sink. ~ l*n^2; Hun. between n^2 and n^3 (its
// augmenting paths are short on random instances; the n^3 bound is worst
// case). RL has no closed-form bound (paper: "/") and needs KG context, so
// it is excluded here — its empirical times appear in Tables 6-8.

#include <cmath>

#include "bench/harness.h"
#include "common/rng.h"
#include "common/timer.h"
#include "matching/pipeline.h"

namespace entmatcher::bench {
namespace {

Matrix RandomEmbeddings(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, dim);
  for (size_t i = 0; i < n; ++i) {
    for (float& v : m.Row(i)) v = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

void Run() {
  PrintBanner("Table 2 (empirical) — time scaling of the matching algorithms",
              "T(n) on random embeddings; exponent = log2(T(2n)/T(n)).\n"
              "Theory: DInf/CSLS O(n^2); RInf/SMat O(n^2 lg n); Sink O(l n^2);\n"
              "Hun. O(n^3) worst case. Space is O(n^2) for all.");

  const std::vector<size_t> sizes = {500, 1000, 2000};
  const std::vector<AlgorithmPreset> presets = {
      AlgorithmPreset::kDInf,     AlgorithmPreset::kCsls,
      AlgorithmPreset::kRinf,     AlgorithmPreset::kRinfWr,
      AlgorithmPreset::kSinkhorn, AlgorithmPreset::kHungarian,
      AlgorithmPreset::kStableMatch};

  std::vector<std::string> headers = {"Model"};
  for (size_t n : sizes) headers.push_back("T(n=" + std::to_string(n) + ") s");
  headers.push_back("exponent");
  headers.push_back("theory");
  TablePrinter table(headers);

  const std::map<AlgorithmPreset, std::string> theory = {
      {AlgorithmPreset::kDInf, "O(n^2)"},
      {AlgorithmPreset::kCsls, "O(n^2)"},
      {AlgorithmPreset::kRinf, "O(n^2 lg n)"},
      {AlgorithmPreset::kRinfWr, "O(n^2)"},
      {AlgorithmPreset::kSinkhorn, "O(l n^2)"},
      {AlgorithmPreset::kHungarian, "O(n^3)"},
      {AlgorithmPreset::kStableMatch, "O(n^2 lg n)"},
  };

  for (AlgorithmPreset preset : presets) {
    std::vector<std::string> row = {PresetName(preset)};
    std::vector<double> times;
    for (size_t n : sizes) {
      const Matrix src = RandomEmbeddings(n, 64, 1);
      const Matrix tgt = RandomEmbeddings(n, 64, 2);
      Timer timer;
      auto a = MatchEmbeddings(src, tgt, MakePreset(preset));
      const double seconds = timer.ElapsedSeconds();
      if (!a.ok()) {
        std::cerr << a.status().ToString() << "\n";
        std::abort();
      }
      times.push_back(seconds);
      row.push_back(FormatDouble(seconds, 3));
    }
    // Mean exponent over the successive doublings.
    double exponent = 0.0;
    size_t steps = 0;
    for (size_t i = 1; i < times.size(); ++i) {
      if (times[i - 1] > 1e-6) {
        exponent += std::log2(times[i] / times[i - 1]);
        ++steps;
      }
    }
    row.push_back(steps > 0 ? FormatDouble(exponent / steps, 2) : "-");
    row.push_back(theory.at(preset));
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "\nRL: no closed-form complexity (neural policy, paper Table 2 "
               "reports '/'); see Tables 6-8 for its empirical costs.\n";
}

}  // namespace
}  // namespace entmatcher::bench

int main() {
  entmatcher::bench::Run();
  return 0;
}
