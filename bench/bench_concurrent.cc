// Concurrent-serving benchmark: the same mixed-preset storm is fired at a
// MatchServer with a worker pool of 1, 2, 4, and 8 execution threads, and
// the harness reports QPS + latency percentiles per worker count, then
// sweeps the cross-request result cache (repeat factors 2/4/8) and reports
// the hit rate each achieves. Every served assignment must stay
// bit-identical to a one-shot MatchEngine::Match — worker count and cache
// hits must never change bytes, only speed. Writes BENCH_concurrent.json.
//
// Gate: on hosts with >= 4 hardware threads, workers=4 must reach >= 2x the
// QPS of workers=1 (the storm carries 4 distinct score signatures, so there
// is always enough independent group work to spread). On smaller hosts the
// gate is skipped with a note — a 1-core runner cannot demonstrate
// parallel speedup, only correctness.
//
// Usage:
//   ./bench_concurrent                     # sizes scaled by EM_BENCH_SCALE
//   EM_BENCH_SCALE=0.1 ./bench_concurrent  # CI smoke run
//
// Kernel-level threading is pinned to 1 thread for the worker sweep so the
// worker pool is the only source of parallelism being measured.

#include <algorithm>
#include <atomic>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "matching/engine.h"
#include "serve/server.h"

namespace entmatcher {
namespace {

constexpr size_t kDim = 64;
constexpr size_t kClients = 4;
constexpr size_t kQueriesPerClient = 12;

Matrix RandomEmbeddings(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, kDim);
  for (size_t r = 0; r < rows; ++r) {
    for (float& v : m.Row(r)) v = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

/// Four distinct score signatures — the independent group work the pool can
/// actually parallelize.
const std::vector<AlgorithmPreset>& StormPresets() {
  static const std::vector<AlgorithmPreset> presets = {
      AlgorithmPreset::kCsls, AlgorithmPreset::kDInf,
      AlgorithmPreset::kSinkhorn, AlgorithmPreset::kStableMatch};
  return presets;
}

struct WorkerResult {
  size_t workers = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double p50_micros = 0.0;
  double p99_micros = 0.0;
  uint64_t scores_passes = 0;
  bool identical = true;
};

struct CacheResult {
  size_t repeat = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  double hit_rate = 0.0;
  double qps = 0.0;
  bool identical = true;
};

Result<std::unique_ptr<MatchServer>> MakeServer(size_t workers,
                                                size_t cache_bytes,
                                                const Matrix& src,
                                                const Matrix& tgt) {
  MatchServerConfig config;
  config.queue_capacity = 4 * kClients * kQueriesPerClient;
  config.serve_workers = workers;
  config.result_cache_bytes = cache_bytes;
  EM_ASSIGN_OR_RETURN(std::unique_ptr<MatchServer> server,
                      MatchServer::Create(config));
  EM_RETURN_NOT_OK(server->LoadPair("default", Matrix(src), Matrix(tgt)));
  EM_RETURN_NOT_OK(server->Start());
  return server;
}

/// Fires `repeat` rounds of the mixed-preset storm from kClients threads;
/// checks every answer against the per-preset references.
template <typename Check>
double DriveStorm(MatchServer* server, size_t repeat, const Check& check) {
  std::vector<std::thread> clients;
  Timer timer;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([server, repeat, &check, c] {
      const std::vector<AlgorithmPreset>& presets = StormPresets();
      for (size_t round = 0; round < repeat; ++round) {
        std::vector<std::future<ServeResponse>> inflight;
        std::vector<AlgorithmPreset> order;
        for (size_t q = 0; q < kQueriesPerClient; ++q) {
          const AlgorithmPreset preset = presets[(c + q) % presets.size()];
          ServeRequest request;
          request.options = MakePreset(preset);
          order.push_back(preset);
          inflight.push_back(server->Submit(std::move(request)));
        }
        for (size_t q = 0; q < inflight.size(); ++q) {
          check(order[q], inflight[q].get());
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  return timer.ElapsedSeconds();
}

}  // namespace
}  // namespace entmatcher

int main() {
  using namespace entmatcher;

  const double scale = bench::GlobalScale();
  const size_t n = std::max<size_t>(16, static_cast<size_t>(1200.0 * scale));
  const size_t storm_queries = kClients * kQueriesPerClient;
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());

  bench::PrintBanner(
      "MatchServer — worker-pool scaling + result-cache hit-rate sweep",
      "The same 4-signature storm at serve_workers 1/2/4/8 (kernel threads\n"
      "pinned to 1 so the pool is the only parallelism), then cached\n"
      "re-serves at repeat factors 2/4/8. Served bytes must never depend on\n"
      "worker count or cache hits.");
  SetNumThreads(1);

  const Matrix src = RandomEmbeddings(n, /*seed=*/31);
  const Matrix tgt = RandomEmbeddings(n, /*seed=*/47);

  // Per-preset one-shot references.
  std::map<AlgorithmPreset, Assignment> references;
  for (AlgorithmPreset preset : StormPresets()) {
    Result<MatchEngine> engine =
        MatchEngine::Create(Matrix(src), Matrix(tgt), MakePreset(preset));
    if (!engine.ok()) {
      std::cerr << engine.status().ToString() << "\n";
      return 1;
    }
    Result<Assignment> reference = engine->Match();
    if (!reference.ok()) {
      std::cerr << reference.status().ToString() << "\n";
      return 1;
    }
    references[preset] = *std::move(reference);
  }

  // --- Worker sweep. ---
  std::vector<WorkerResult> worker_results;
  for (size_t workers : {1, 2, 4, 8}) {
    Result<std::unique_ptr<MatchServer>> server =
        MakeServer(workers, /*cache_bytes=*/0, src, tgt);
    if (!server.ok()) {
      std::cerr << server.status().ToString() << "\n";
      return 1;
    }
    WorkerResult result;
    result.workers = workers;
    std::atomic<bool> identical{true};
    result.seconds = DriveStorm(
        server->get(), /*repeat=*/1,
        [&](AlgorithmPreset preset, const ServeResponse& response) {
          if (!response.status.ok() ||
              response.assignment.target_of_source !=
                  references.at(preset).target_of_source) {
            identical.store(false, std::memory_order_relaxed);
          }
        });
    (*server)->Shutdown();
    const ServerStatsSnapshot stats = (*server)->Stats();
    result.qps = result.seconds > 0.0
                     ? static_cast<double>(storm_queries) / result.seconds
                     : 0.0;
    result.p50_micros = stats.latency_p50_micros;
    result.p99_micros = stats.latency_p99_micros;
    result.scores_passes = stats.batches;
    result.identical = identical.load();
    std::cout << "workers=" << result.workers << ": " << storm_queries
              << " queries in " << FormatDouble(result.seconds * 1e3, 1)
              << " ms  (" << FormatDouble(result.qps, 1) << " q/s)  p50="
              << FormatDouble(result.p50_micros, 0) << " us  p99="
              << FormatDouble(result.p99_micros, 0) << " us  passes="
              << result.scores_passes << "  identical="
              << (result.identical ? "yes" : "NO") << "\n";
    worker_results.push_back(result);
  }

  // --- Cache hit-rate sweep at workers=4: each repeat factor r re-serves
  // the same storm r times, so the steady-state hit rate approaches
  // (r-1)/r. ---
  std::vector<CacheResult> cache_results;
  for (size_t repeat : {2, 4, 8}) {
    Result<std::unique_ptr<MatchServer>> server =
        MakeServer(/*workers=*/4, /*cache_bytes=*/64 << 20, src, tgt);
    if (!server.ok()) {
      std::cerr << server.status().ToString() << "\n";
      return 1;
    }
    CacheResult result;
    result.repeat = repeat;
    std::atomic<bool> identical{true};
    const double seconds = DriveStorm(
        server->get(), repeat,
        [&](AlgorithmPreset preset, const ServeResponse& response) {
          if (!response.status.ok() ||
              response.assignment.target_of_source !=
                  references.at(preset).target_of_source) {
            identical.store(false, std::memory_order_relaxed);
          }
        });
    (*server)->Shutdown();
    const ServerStatsSnapshot stats = (*server)->Stats();
    result.hits = stats.cache_hits;
    result.misses = stats.cache_misses;
    result.hit_rate =
        stats.cache_hits + stats.cache_misses > 0
            ? static_cast<double>(stats.cache_hits) /
                  static_cast<double>(stats.cache_hits + stats.cache_misses)
            : 0.0;
    result.qps = seconds > 0.0
                     ? static_cast<double>(storm_queries * repeat) / seconds
                     : 0.0;
    result.identical = identical.load();
    std::cout << "cache repeat=" << repeat << ": hits=" << result.hits
              << " misses=" << result.misses << " hit_rate="
              << FormatDouble(result.hit_rate, 3) << "  ("
              << FormatDouble(result.qps, 1) << " q/s)  identical="
              << (result.identical ? "yes" : "NO") << "\n";
    cache_results.push_back(result);
  }

  // --- Gates. ---
  bool ok = true;
  for (const WorkerResult& result : worker_results) {
    if (!result.identical) {
      std::cerr << "FATAL: workers=" << result.workers
                << " served bytes diverged from the one-shot engine\n";
      ok = false;
    }
  }
  for (const CacheResult& result : cache_results) {
    if (!result.identical) {
      std::cerr << "FATAL: cached re-serve at repeat=" << result.repeat
                << " diverged from the one-shot engine\n";
      ok = false;
    }
    if (result.hits == 0) {
      std::cerr << "FATAL: repeat=" << result.repeat
                << " storm produced zero cache hits\n";
      ok = false;
    }
  }
  const double qps1 = worker_results[0].qps;
  const double qps4 = worker_results[2].qps;
  const double scaling4 = qps1 > 0.0 ? qps4 / qps1 : 0.0;
  std::string gate;
  if (hardware >= 4) {
    if (scaling4 >= 2.0) {
      gate = "pass";
    } else {
      gate = "FAIL";
      std::cerr << "FATAL: workers=4 reached only "
                << FormatDouble(scaling4, 2) << "x over workers=1 on a "
                << hardware << "-thread host (gate: >= 2x)\n";
      ok = false;
    }
  } else {
    gate = "skipped";
    std::cout << "note: scaling gate skipped — host has " << hardware
              << " hardware thread(s); a parallel speedup cannot "
                 "materialize, correctness gates still apply\n";
  }
  std::cout << "workers=4 vs workers=1: " << FormatDouble(scaling4, 2)
            << "x QPS (gate " << gate << ")\n";

  std::ofstream json("BENCH_concurrent.json");
  json << "{\n  \"rows\": " << n << ",\n  \"dim\": " << kDim
       << ",\n  \"storm_queries\": " << storm_queries
       << ",\n  \"hardware_threads\": " << hardware
       << ",\n  \"workers\": [\n";
  for (size_t i = 0; i < worker_results.size(); ++i) {
    const WorkerResult& r = worker_results[i];
    json << "    {\"workers\": " << r.workers << ", \"seconds\": "
         << r.seconds << ", \"qps\": " << r.qps
         << ", \"latency_p50_micros\": " << r.p50_micros
         << ", \"latency_p99_micros\": " << r.p99_micros
         << ", \"scores_passes\": " << r.scores_passes
         << ", \"identical\": " << (r.identical ? "true" : "false") << "}"
         << (i + 1 < worker_results.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"cache_sweep\": [\n";
  for (size_t i = 0; i < cache_results.size(); ++i) {
    const CacheResult& r = cache_results[i];
    json << "    {\"repeat\": " << r.repeat << ", \"hits\": " << r.hits
         << ", \"misses\": " << r.misses << ", \"hit_rate\": " << r.hit_rate
         << ", \"qps\": " << r.qps
         << ", \"identical\": " << (r.identical ? "true" : "false") << "}"
         << (i + 1 < cache_results.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"scaling_workers4_vs_1\": " << scaling4
       << ",\n  \"scaling_gate\": \"" << gate << "\"\n}\n";
  std::cout << "wrote BENCH_concurrent.json\n";
  return ok ? 0 : 1;
}
