// Reproduces Table 5: F1 using auxiliary (name) information — name-only
// ("N-") and name fused with RREA structure ("NR-") on DBP15K-sim and the
// cross-lingual SRPRS-sim pairs (S-F, S-D), with "Imp." over DInf.
//
// Expected shapes (paper Sec. 4.3): name information alone is already very
// accurate; fusion lifts further; with discriminating scores the
// global-constraint methods (Hun./SMat/RL) close ranks on CSLS/RInf
// (Pattern 1); most NR- scores are high.

#include "bench/harness.h"

namespace entmatcher::bench {
namespace {

void RunBlock(const std::string& block_name,
              const std::vector<std::string>& pairs, EmbeddingSetting setting,
              double scale) {
  std::vector<KgPairDataset> datasets;
  std::vector<EmbeddingPair> embeddings;
  for (const std::string& pair : pairs) {
    datasets.push_back(MustGenerate(pair, scale));
    embeddings.push_back(MustEmbed(datasets.back(), setting));
  }
  std::vector<std::string> headers = {"Model"};
  headers.insert(headers.end(), pairs.begin(), pairs.end());
  headers.push_back("Imp.");
  TablePrinter table(headers);
  std::vector<double> dinf_f1s;
  for (AlgorithmPreset preset : MainPresets()) {
    std::vector<std::string> row = {PresetName(preset)};
    std::vector<double> f1s;
    for (size_t i = 0; i < datasets.size(); ++i) {
      ExperimentResult r = MustRun(datasets[i], embeddings[i], preset);
      f1s.push_back(r.metrics.f1);
      row.push_back(F3(r.metrics.f1));
    }
    if (preset == AlgorithmPreset::kDInf) {
      dinf_f1s = f1s;
      row.push_back("");
    } else {
      row.push_back(Improvement(f1s, dinf_f1s));
    }
    table.AddRow(row);
  }
  std::cout << "\n-- " << block_name << " --\n";
  table.Print(std::cout);
}

void Run() {
  const double scale = GlobalScale();
  PrintBanner("Table 5 — F1 scores using auxiliary (name) information",
              "N- = name embeddings only, NR- = name + RREA structural "
              "fusion.");
  const std::vector<std::string> srp_pairs = {"S-F", "S-D"};
  RunBlock("N-DBP", Dbp15kPairNames(), EmbeddingSetting::kNameOnly, scale);
  RunBlock("N-SRP", srp_pairs, EmbeddingSetting::kNameOnly, scale);
  RunBlock("NR-DBP", Dbp15kPairNames(), EmbeddingSetting::kNameRrea, scale);
  RunBlock("NR-SRP", srp_pairs, EmbeddingSetting::kNameRrea, scale);
}

}  // namespace
}  // namespace entmatcher::bench

int main() {
  entmatcher::bench::Run();
  return 0;
}
