// Exhaustive module-combination sweep — the EntMatcher design claim the
// paper makes in Sec. 4.1 ("users are free to combine the techniques in
// each module to develop new approaches") exercised literally: every
// (score transform x matching decision) combination is run on one dataset
// and ranked. The paper's seven named algorithms are a small subset of this
// grid; the sweep shows whether any unnamed combination beats them.

#include <algorithm>

#include "bench/harness.h"

namespace entmatcher::bench {
namespace {

const char* TransformName(ScoreTransformKind kind) {
  switch (kind) {
    case ScoreTransformKind::kNone:
      return "none";
    case ScoreTransformKind::kCsls:
      return "CSLS";
    case ScoreTransformKind::kRinf:
      return "RInf";
    case ScoreTransformKind::kRinfWr:
      return "RInf-wr";
    case ScoreTransformKind::kRinfPb:
      return "RInf-pb";
    case ScoreTransformKind::kSinkhorn:
      return "Sinkhorn";
  }
  return "?";
}

const char* MatcherName(MatcherKind kind) {
  switch (kind) {
    case MatcherKind::kGreedy:
      return "greedy";
    case MatcherKind::kHungarian:
      return "hungarian";
    case MatcherKind::kGaleShapley:
      return "gale-shapley";
    case MatcherKind::kGreedyOneToOne:
      return "greedy-1to1";
    case MatcherKind::kMutualBest:
      return "mutual-best";
    case MatcherKind::kRl:
      return "rl";
  }
  return "?";
}

void Run() {
  const double scale = GlobalScale();
  PrintBanner("Module-combination sweep (D-Z-sim, RREA embeddings)",
              "Every score transform x matching decision; the paper's named\n"
              "algorithms are marked. Sorted by F1.");

  KgPairDataset d = MustGenerate("D-Z", scale);
  EmbeddingPair e = MustEmbed(d, EmbeddingSetting::kRreaStruct);

  struct Row {
    std::string transform;
    std::string matcher;
    std::string named;
    double f1;
    double seconds;
  };
  std::vector<Row> rows;

  const std::vector<ScoreTransformKind> transforms = {
      ScoreTransformKind::kNone,   ScoreTransformKind::kCsls,
      ScoreTransformKind::kRinf,   ScoreTransformKind::kRinfWr,
      ScoreTransformKind::kRinfPb, ScoreTransformKind::kSinkhorn};
  const std::vector<MatcherKind> matchers = {
      MatcherKind::kGreedy, MatcherKind::kHungarian, MatcherKind::kGaleShapley,
      MatcherKind::kGreedyOneToOne, MatcherKind::kMutualBest};

  auto named_algorithm = [](ScoreTransformKind t, MatcherKind m) -> std::string {
    if (m == MatcherKind::kGreedy) {
      switch (t) {
        case ScoreTransformKind::kNone:
          return "DInf";
        case ScoreTransformKind::kCsls:
          return "CSLS";
        case ScoreTransformKind::kRinf:
          return "RInf";
        case ScoreTransformKind::kRinfWr:
          return "RInf-wr";
        case ScoreTransformKind::kRinfPb:
          return "RInf-pb";
        case ScoreTransformKind::kSinkhorn:
          return "Sink.";
      }
    }
    if (t == ScoreTransformKind::kNone && m == MatcherKind::kHungarian) {
      return "Hun.";
    }
    if (t == ScoreTransformKind::kNone && m == MatcherKind::kGaleShapley) {
      return "SMat";
    }
    return "";
  };

  for (ScoreTransformKind t : transforms) {
    for (MatcherKind m : matchers) {
      MatchOptions options;
      options.transform = t;
      options.matcher = m;
      auto r = RunExperimentWithOptions(
          d, e, options,
          std::string(TransformName(t)) + "|" + MatcherName(m));
      if (!r.ok()) {
        std::cerr << r.status().ToString() << "\n";
        std::abort();
      }
      rows.push_back(Row{TransformName(t), MatcherName(m),
                         named_algorithm(t, m), r->metrics.f1, r->seconds});
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.f1 > b.f1; });

  TablePrinter table({"Transform", "Decision", "Paper name", "F1", "T (s)"});
  for (const Row& row : rows) {
    table.AddRow({row.transform, row.matcher, row.named, F3(row.f1),
                  FormatDouble(row.seconds, 2)});
  }
  table.Print(std::cout);
  std::cout << "\nNote: mutual-best rows abstain on non-reciprocal pairs, so "
               "their F1 trades\nrecall for precision; compare within "
               "matched-count regimes.\n";
}

}  // namespace
}  // namespace entmatcher::bench

int main() {
  entmatcher::bench::Run();
  return 0;
}
