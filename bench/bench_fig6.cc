// Reproduces Figure 6: F1 of CSLS as its neighborhood size k varies.
//
// Expected shape (paper Sec. 4.5): under the 1-to-1 setting, larger k makes
// the local-scaling terms less distinctive, so F1 decreases monotonically
// with k — validating RInf's max-only preference design.
// We additionally report the non-1-to-1 dataset, where (per the paper's
// Appendix C discussion) k = 1 is no longer clearly optimal.

#include "bench/harness.h"

namespace entmatcher::bench {
namespace {

void Run() {
  const double scale = GlobalScale();
  PrintBanner("Figure 6 — F1 of CSLS with varying k",
              "RREA embeddings; k is the CSLS top-k neighborhood size "
              "(Eq. 1).");

  const std::vector<size_t> ks = {1, 2, 5, 10};
  const std::vector<std::string> pairs = {"D-Z", "D-J", "D-F", "S-F", "S-D",
                                          "FB-MUL"};
  std::vector<std::string> headers = {"Pair"};
  for (size_t k : ks) headers.push_back("k=" + std::to_string(k));
  TablePrinter table(headers);

  for (const std::string& pair : pairs) {
    KgPairDataset d = MustGenerate(pair, scale);
    EmbeddingPair e = MustEmbed(d, EmbeddingSetting::kRreaStruct);
    std::vector<std::string> row = {pair};
    for (size_t k : ks) {
      MatchOptions options = MakePreset(AlgorithmPreset::kCsls);
      options.csls_k = k;
      auto r = RunExperimentWithOptions(d, e, options,
                                        "CSLS-k" + std::to_string(k));
      if (!r.ok()) {
        std::cerr << r.status().ToString() << "\n";
        std::abort();
      }
      row.push_back(F3(r->metrics.f1));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace entmatcher::bench

int main() {
  entmatcher::bench::Run();
  return 0;
}
