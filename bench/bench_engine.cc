// Engine-session benchmark: measures what the MatchEngine refactor buys —
// cold (Create + first Match) vs warm (arena-recycled Match) per-query
// latency per preset, and proves the steady-state claim: after the first
// query the workspace arena stops growing and warm queries stay
// allocation-free at matrix scale. Warm assignments must be identical to the
// cold one (the engine-reuse bit-identity contract); any divergence or
// steady-state arena growth is a fatal failure. Writes BENCH_engine.json.
//
// Usage:
//   ./bench_engine                     # sizes scaled by EM_BENCH_SCALE
//   EM_BENCH_SCALE=0.1 ./bench_engine  # CI smoke run

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/rng.h"
#include "common/timer.h"
#include "matching/engine.h"

namespace entmatcher {
namespace {

constexpr size_t kDim = 64;
constexpr int kWarmQueries = 3;

Matrix RandomEmbeddings(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, kDim);
  for (size_t r = 0; r < rows; ++r) {
    for (float& v : m.Row(r)) v = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

struct Measurement {
  std::string preset;
  size_t rows = 0;
  double cold_seconds = 0.0;   // Create + first Match
  double warm_seconds = 0.0;   // mean of kWarmQueries recycled Matches
  double speedup_cold_vs_warm = 0.0;
  size_t arena_capacity_bytes = 0;  // after the last warm query
  size_t arena_growth_bytes = 0;    // across the warm queries (must be 0)
  bool identical = false;           // warm assignments == cold assignment
};

}  // namespace
}  // namespace entmatcher

int main() {
  using namespace entmatcher;

  const double scale = bench::GlobalScale();
  const size_t n = std::max<size_t>(
      16, static_cast<size_t>(2000.0 * scale));

  bench::PrintBanner(
      "Engine sessions — cold vs warm query latency per preset",
      "One MatchEngine per preset; warm queries reuse the workspace arena.\n"
      "Steady state must show zero arena growth and identical assignments.");

  const Matrix src = RandomEmbeddings(n, /*seed=*/11);
  const Matrix tgt = RandomEmbeddings(n, /*seed=*/23);

  std::vector<Measurement> results;
  bool ok = true;
  for (AlgorithmPreset preset : ScalabilityPresets()) {
    const MatchOptions options = MakePreset(preset);
    if (options.matcher == MatcherKind::kRl) continue;  // needs KG context

    Timer cold_timer;
    Result<MatchEngine> engine = MatchEngine::Create(src, tgt, options);
    if (!engine.ok()) {
      std::cerr << PresetName(preset) << ": " << engine.status().ToString()
                << "\n";
      return 1;
    }
    Result<Assignment> cold = engine->Match();
    if (!cold.ok()) {
      std::cerr << PresetName(preset) << ": " << cold.status().ToString()
                << "\n";
      return 1;
    }
    Measurement m;
    m.preset = PresetName(preset);
    m.rows = n;
    m.cold_seconds = cold_timer.ElapsedSeconds();

    const size_t capacity_after_cold = engine->workspace().capacity_bytes();
    m.identical = true;
    Timer warm_timer;
    for (int q = 0; q < kWarmQueries; ++q) {
      Result<Assignment> warm = engine->Match();
      if (!warm.ok()) {
        std::cerr << PresetName(preset) << " warm query " << q << ": "
                  << warm.status().ToString() << "\n";
        return 1;
      }
      if (warm->target_of_source != cold->target_of_source) {
        m.identical = false;
      }
    }
    m.warm_seconds = warm_timer.ElapsedSeconds() / kWarmQueries;
    m.speedup_cold_vs_warm =
        m.warm_seconds > 0.0 ? m.cold_seconds / m.warm_seconds : 0.0;
    m.arena_capacity_bytes = engine->workspace().capacity_bytes();
    m.arena_growth_bytes = m.arena_capacity_bytes - capacity_after_cold;

    std::cout << m.preset << ": n=" << n << "  cold="
              << FormatDouble(m.cold_seconds * 1e3, 1) << " ms  warm="
              << FormatDouble(m.warm_seconds * 1e3, 1) << " ms  ("
              << FormatDouble(m.speedup_cold_vs_warm, 2)
              << "x)  arena=" << FormatBytes(m.arena_capacity_bytes)
              << "  growth=" << m.arena_growth_bytes << " B  identical="
              << (m.identical ? "yes" : "NO") << "\n";
    if (m.arena_growth_bytes != 0) {
      std::cerr << "FATAL: arena grew across warm queries for " << m.preset
                << "\n";
      ok = false;
    }
    if (!m.identical) {
      std::cerr << "FATAL: warm assignment diverged from cold for "
                << m.preset << "\n";
      ok = false;
    }
    results.push_back(m);
  }

  std::ofstream json("BENCH_engine.json");
  json << "{\n  \"dim\": " << kDim << ",\n  \"rows\": " << n
       << ",\n  \"warm_queries\": " << kWarmQueries
       << ",\n  \"measurements\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const Measurement& m = results[i];
    json << "    {\"preset\": \"" << m.preset << "\", \"cold_seconds\": "
         << m.cold_seconds << ", \"warm_seconds\": " << m.warm_seconds
         << ", \"speedup_cold_vs_warm\": " << m.speedup_cold_vs_warm
         << ", \"arena_capacity_bytes\": " << m.arena_capacity_bytes
         << ", \"arena_growth_bytes\": " << m.arena_growth_bytes
         << ", \"identical\": " << (m.identical ? "true" : "false") << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "wrote BENCH_engine.json (" << results.size()
            << " presets)\n";
  return ok ? 0 : 1;
}
