// Reproduces Table 8: precision / recall / F1 and time on FB_DBP_MUL-sim,
// the non-1-to-1 alignment setting, with GCN and RREA embeddings.
//
// Expected shapes (paper Sec. 5.2):
//   - All results drop sharply versus the 1-to-1 setting.
//   - RInf and CSLS lead; Sink. next; the hard-1-to-1 methods (Hun., SMat)
//     fall behind, with SMat and RL at or below DInf.
//   - Recall is capped: every method emits at most one link per source
//     while the gold set has several.

#include "bench/harness.h"

namespace entmatcher::bench {
namespace {

void RunBlock(const std::string& block_name, EmbeddingSetting setting,
              const KgPairDataset& dataset) {
  EmbeddingPair embeddings = MustEmbed(dataset, setting);
  TablePrinter table({"Model", "P", "R", "F1", "T (s)"});
  for (AlgorithmPreset preset : MainPresets()) {
    ExperimentResult r = MustRun(dataset, embeddings, preset);
    table.AddRow({PresetName(preset), F3(r.metrics.precision),
                  F3(r.metrics.recall), F3(r.metrics.f1),
                  FormatDouble(r.seconds, 1)});
  }
  std::cout << "\n-- " << block_name << " --\n";
  table.Print(std::cout);
}

void Run() {
  const double scale = GlobalScale();
  PrintBanner(
      "Table 8 — Non 1-to-1 alignment on FB_DBP_MUL-sim",
      "Gold clusters are 1-to-many / many-to-1 / many-to-many; the split\n"
      "preserves link integrity. P, R, F1 reported separately (they no\n"
      "longer coincide).");
  KgPairDataset dataset = MustGenerate("FB-MUL", scale);
  std::cout << "gold links: " << dataset.gold.size() << " ("
            << dataset.gold.size() - dataset.gold.CountOneToOneLinks()
            << " non-1-to-1, " << dataset.gold.CountOneToOneLinks()
            << " 1-to-1)\n";
  RunBlock("GCN", EmbeddingSetting::kGcnStruct, dataset);
  RunBlock("RREA", EmbeddingSetting::kRreaStruct, dataset);
}

}  // namespace
}  // namespace entmatcher::bench

int main() {
  entmatcher::bench::Run();
  return 0;
}
