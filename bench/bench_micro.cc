// Google-benchmark microbenchmarks of the library's computational kernels:
// similarity matrix construction, CSLS scaling, ranking, Sinkhorn rounds,
// the LAP solver, and Gale–Shapley. These are the building blocks whose
// costs aggregate into the paper's efficiency figures.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "la/ranking.h"
#include "la/similarity.h"
#include "la/topk.h"
#include "matching/gale_shapley.h"
#include "matching/hungarian_matcher.h"
#include "matching/transforms.h"

namespace entmatcher {
namespace {

Matrix RandomMatrix(size_t n, size_t m, uint64_t seed) {
  Rng rng(seed);
  Matrix out(n, m);
  for (size_t i = 0; i < n; ++i) {
    for (float& v : out.Row(i)) v = static_cast<float>(rng.NextGaussian());
  }
  return out;
}

void BM_CosineSimilarity(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix src = RandomMatrix(n, 64, 1);
  const Matrix tgt = RandomMatrix(n, 64, 2);
  for (auto _ : state) {
    auto s = ComputeSimilarity(src, tgt, SimilarityMetric::kCosine);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_CosineSimilarity)->Arg(256)->Arg(512)->Arg(1024);

void BM_RowArgmax(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix s = RandomMatrix(n, n, 3);
  for (auto _ : state) {
    auto idx = RowArgmax(s);
    benchmark::DoNotOptimize(idx);
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_RowArgmax)->Arg(512)->Arg(1024);

void BM_RowTopKMean(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix s = RandomMatrix(n, n, 4);
  for (auto _ : state) {
    auto phi = RowTopKMean(s, 10);
    benchmark::DoNotOptimize(phi);
  }
}
BENCHMARK(BM_RowTopKMean)->Arg(512)->Arg(1024);

void BM_RowRankMatrix(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix s = RandomMatrix(n, n, 5);
  for (auto _ : state) {
    Matrix r = RowRankMatrix(s);
    benchmark::DoNotOptimize(r.data());
  }
}
BENCHMARK(BM_RowRankMatrix)->Arg(512)->Arg(1024);

void BM_CslsTransform(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix s = RandomMatrix(n, n, 6);
  for (auto _ : state) {
    auto out = CslsTransform(s, 10);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_CslsTransform)->Arg(512)->Arg(1024);

void BM_SinkhornTransform(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix s = RandomMatrix(n, n, 7);
  for (auto _ : state) {
    auto out = SinkhornTransform(s, 20, 0.05);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_SinkhornTransform)->Arg(512)->Arg(1024);

void BM_HungarianMatch(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix s = RandomMatrix(n, n, 8);
  for (auto _ : state) {
    auto a = HungarianMatch(s);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_HungarianMatch)->Arg(256)->Arg(512);

void BM_GaleShapleyMatch(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix s = RandomMatrix(n, n, 9);
  for (auto _ : state) {
    auto a = GaleShapleyMatch(s);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_GaleShapleyMatch)->Arg(256)->Arg(512);

}  // namespace
}  // namespace entmatcher

BENCHMARK_MAIN();
