// Reproduces Table 3: statistics of every generated benchmark KG pair.
//
// Paper columns: #Entities, #Relations, #Triples, #Gold links, Avg. degree.
// We additionally print the test-candidate sizes (which drive matching cost)
// and, for FB-MUL, the non-1-to-1 link share the paper reports in Sec. 5.2.

#include <unordered_set>

#include "bench/harness.h"

namespace entmatcher::bench {
namespace {

size_t DistinctRelationsUsed(const KnowledgeGraph& g) {
  std::unordered_set<RelationId> used;
  for (const Triple& t : g.triples()) used.insert(t.predicate);
  return used.size();
}

void Run() {
  const double scale = GlobalScale();
  PrintBanner("Table 3 — Dataset statistics (synthetic reproductions)",
              "Families: DBP15K-sim (dense/cross-lingual), SRPRS-sim (sparse),\n"
              "DWY100K-sim (large), DBP15K+-sim (unmatchable), FB_DBP_MUL-sim\n"
              "(non 1-to-1). Scaled for a single-core environment; see "
              "DESIGN.md.");

  std::vector<std::string> pairs;
  for (const auto& family :
       {Dbp15kPairNames(), SrprsPairNames(), Dwy100kPairNames(),
        Dbp15kPlusPairNames(), std::vector<std::string>{"FB-MUL"}}) {
    pairs.insert(pairs.end(), family.begin(), family.end());
  }

  TablePrinter table({"Pair", "#Entities", "#Relations", "#Triples",
                      "#Gold links", "Avg. degree", "Test cand. (src x tgt)",
                      "non-1-to-1 links"});
  for (const std::string& pair : pairs) {
    KgPairDataset d = MustGenerate(pair, scale);
    const size_t relations =
        DistinctRelationsUsed(d.source) + DistinctRelationsUsed(d.target);
    const size_t non11 = d.gold.size() - d.gold.CountOneToOneLinks();
    table.AddRow({d.name, std::to_string(d.TotalEntities()),
                  std::to_string(relations), std::to_string(d.TotalTriples()),
                  std::to_string(d.gold.size()),
                  FormatDouble(d.AverageDegree(), 1),
                  std::to_string(d.test_source_entities.size()) + " x " +
                      std::to_string(d.test_target_entities.size()),
                  std::to_string(non11)});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace entmatcher::bench

int main() {
  entmatcher::bench::Run();
  return 0;
}
