// Representation-model ablation: the paper's fair-comparison methodology
// rests on the claim that the matching algorithms can be compared
// independently of the upstream representation learner. This bench runs the
// seven algorithms over THREE structural learners of very different quality
// (TransE < GCN < RREA) and reports, per model, the F1 and the rank of each
// algorithm — the ordering should be broadly stable while absolute numbers
// move with embedding quality.
//
// The extension matchers (Greedy-1to1, MutualBest) are included for
// reference: Greedy-1to1 sits between Greedy and Hungarian; MutualBest
// trades recall for precision.

#include <algorithm>

#include "bench/harness.h"

namespace entmatcher::bench {
namespace {

void Run() {
  const double scale = GlobalScale();
  PrintBanner("Representation-model ablation (D-Z-sim)",
              "TransE vs GCN vs RREA structural embeddings under every "
              "matching algorithm.");

  KgPairDataset d = MustGenerate("D-Z", scale);

  struct Entry {
    std::string name;
    MatchOptions options;
  };
  std::vector<Entry> entries;
  for (AlgorithmPreset preset : MainPresets()) {
    entries.push_back({PresetName(preset), MakePreset(preset)});
  }
  {
    MatchOptions g11;
    g11.matcher = MatcherKind::kGreedyOneToOne;
    entries.push_back({"Greedy-1to1", g11});
    MatchOptions mb;
    mb.matcher = MatcherKind::kMutualBest;
    entries.push_back({"MutualBest", mb});
  }

  std::vector<std::string> headers = {"Model"};
  for (EmbeddingSetting setting :
       {EmbeddingSetting::kTranseStruct, EmbeddingSetting::kGcnStruct,
        EmbeddingSetting::kRreaStruct}) {
    headers.push_back(std::string(EmbeddingSettingPrefix(setting)) + " F1");
    headers.push_back(std::string(EmbeddingSettingPrefix(setting)) + " rank");
  }
  TablePrinter table(headers);

  std::vector<std::vector<double>> f1(entries.size(), std::vector<double>(3));
  size_t column = 0;
  for (EmbeddingSetting setting :
       {EmbeddingSetting::kTranseStruct, EmbeddingSetting::kGcnStruct,
        EmbeddingSetting::kRreaStruct}) {
    EmbeddingPair e = MustEmbed(d, setting);
    for (size_t i = 0; i < entries.size(); ++i) {
      auto r = RunExperimentWithOptions(d, e, entries[i].options,
                                        entries[i].name);
      if (!r.ok()) {
        std::cerr << r.status().ToString() << "\n";
        std::abort();
      }
      f1[i][column] = r->metrics.f1;
    }
    ++column;
  }

  for (size_t i = 0; i < entries.size(); ++i) {
    std::vector<std::string> row = {entries[i].name};
    for (size_t c = 0; c < 3; ++c) {
      size_t rank = 1;
      for (size_t other = 0; other < entries.size(); ++other) {
        if (f1[other][c] > f1[i][c]) ++rank;
      }
      row.push_back(F3(f1[i][c]));
      row.push_back(std::to_string(rank));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "\nEmbedding quality: TransE < GCN < RREA, while the "
               "algorithm ranking stays\nbroadly stable — the premise behind "
               "comparing matching algorithms in isolation.\n";
}

}  // namespace
}  // namespace entmatcher::bench

int main() {
  entmatcher::bench::Run();
  return 0;
}
