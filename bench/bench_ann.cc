// ANN backend benchmark: what the HNSW graph buys over IVF blocking, and
// what the out-of-core store makes reachable.
//
//   1. Recall/cost sweep, IVF (nprobe) vs HNSW (ef), at two synthetic sizes
//      (15k and 100k rows, scaled by EM_BENCH_SCALE). Recall@c is measured
//      against the pair's identity alignment (source row i gold-matches
//      target row i — the synthetic generator's convention); cost is the
//      number of exact-rerank comparisons the probe proposes, the currency
//      every backend spends (CollectCandidates' contract).
//   2. Sparse-vs-dense crossover: warm CSLS+greedy wall-clock, dense vs the
//      HNSW-backed sparse path, across rising n — where the O(n*c) pipeline
//      overtakes the O(n^2) one.
//   3. (EM_BENCH_ANN_MMAP=1 only) The 1M-row out-of-core smoke: stream a
//      synthetic EMBF pair to disk, mmap both sides, build the HNSW index
//      over the borrowed matrix, and match end-to-end under a fixed
//      workspace budget. Reports wall-clock per stage, identity accuracy,
//      MemoryTracker peak, and peak RSS (getrusage). EM_BENCH_ANN_ROWS /
//      EM_BENCH_ANN_DIM / EM_BENCH_ANN_DIR / EM_BENCH_ANN_RSS_BUDGET_MB
//      tune the fixture, and EM_BENCH_ANN_M / _EFC / _EF / _CANDIDATES the
//      graph operating point (a 1M-node graph needs wider links than the
//      50k default). The CI job drives a 1M x 32d pair against a 512 MB
//      RSS budget.
//
// Writes BENCH_ann.json.
//
// Headline gates:
//   - HNSW reaches recall >= 0.98 at some swept ef, and does so spending
//     >= 2x fewer exact-rerank comparisons than the cheapest IVF config of
//     equal (>= 0.98) recall. Enforced at full scale on multi-core hosts;
//     smoke runs (EM_BENCH_SCALE < 1) and 1-core CI enforce only the
//     correctness gate (recall itself).
//   - The mmap section, when enabled, must match with identity accuracy
//     >= 0.95 and stay under the RSS budget when one is set.
//
// Usage:
//   ./bench_ann                        # full sweep
//   EM_BENCH_SCALE=0.2 ./bench_ann     # CI smoke
//   EM_BENCH_ANN_MMAP=1 ./bench_ann    # adds the out-of-core section

#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/memory_tracker.h"
#include "common/rng.h"
#include "common/timer.h"
#include "datagen/embf_synth.h"
#include "index/candidate_index.h"
#include "la/mmap_store.h"
#include "matching/engine.h"

namespace entmatcher {
namespace {

constexpr size_t kDim = 64;
constexpr size_t kClusters = 32;
constexpr size_t kCandidates = 10;
constexpr double kRecallGate = 0.98;
constexpr double kComparisonAdvantageGate = 2.0;

/// Same construction as bench_index: targets from a mixture of Gaussians,
/// sources as noisy copies of their aligned targets.
void MakeClusteredPair(size_t rows, uint64_t seed, Matrix* src, Matrix* tgt) {
  Rng rng(seed);
  Matrix centers(kClusters, kDim);
  for (size_t c = 0; c < kClusters; ++c) {
    for (float& v : centers.Row(c)) v = static_cast<float>(rng.NextGaussian());
  }
  *tgt = Matrix(rows, kDim);
  *src = Matrix(rows, kDim);
  for (size_t r = 0; r < rows; ++r) {
    const auto center = centers.Row(r % kClusters);
    auto t = tgt->Row(r);
    auto s = src->Row(r);
    for (size_t d = 0; d < kDim; ++d) {
      t[d] = center[d] + 0.25f * static_cast<float>(rng.NextGaussian());
      s[d] = t[d] + 0.1f * static_cast<float>(rng.NextGaussian());
    }
  }
}

double PeakRssMb() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KB
}

size_t EnvSize(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  const long long v = std::atoll(env);
  return v > 0 ? static_cast<size_t>(v) : fallback;
}

struct SweepPoint {
  std::string backend;
  size_t n = 0;
  size_t knob = 0;         // nprobe (IVF) or ef (HNSW)
  double recall = 0.0;     // identity-alignment recall@c
  double comparisons = 0;  // exact-rerank comparisons per source row
  double millis = 0.0;     // one full sparse scoring pass
};

/// One (backend, knob) measurement: identity recall of the emitted entries,
/// probe cost in comparisons/row, and the wall-clock of the scoring pass.
SweepPoint MeasurePoint(const CandidateIndex& index, const Matrix& src,
                        const Matrix& tgt, const ProbeParams& params,
                        size_t knob) {
  const size_t n = src.rows();
  SweepPoint point;
  point.backend = CandidateBackendName(index.backend());
  point.n = n;
  point.knob = knob;

  const SimilarityCache cache =
      BuildSimilarityCache(src, tgt, SimilarityMetric::kCosine);
  const size_t stride = std::min(kCandidates, index.num_targets());
  SparseScores sparse =
      SparseScores::CreateOwned(n, index.num_targets(), n * stride);
  Timer timer;
  const Status filled = index.FillSparseScores(
      src, tgt, SimilarityMetric::kCosine, cache, kCandidates, params,
      &sparse);
  point.millis = timer.ElapsedMillis();
  if (!filled.ok()) {
    std::cerr << "FillSparseScores: " << filled.ToString() << "\n";
    std::abort();
  }

  size_t hits = 0;
  for (size_t i = 0; i < n; ++i) {
    const auto cols = sparse.RowCols(i);
    hits += std::binary_search(cols.begin(), cols.end(),
                               static_cast<uint32_t>(i));
  }
  point.recall = static_cast<double>(hits) / static_cast<double>(n);

  // The probe stage alone: |CollectCandidates| per row is exactly the
  // number of exact dot products the rerank pays for that row.
  CandidateScratch scratch;
  std::vector<uint32_t> candidates;
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    candidates.clear();
    index.CollectCandidates(tgt, src.Row(i).data(), params, &scratch,
                            &candidates);
    total += candidates.size();
  }
  point.comparisons = static_cast<double>(total) / static_cast<double>(n);
  return point;
}

struct CrossoverPoint {
  size_t n = 0;
  double dense_ms = 0.0;
  double sparse_ms = 0.0;
};

}  // namespace
}  // namespace entmatcher

int main() {
  using namespace entmatcher;

  const double scale = bench::GlobalScale();
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  // Smoke runs and 1-core CI hosts check correctness (recall) only; the
  // cost-advantage and timing gates need the full-size sweep to be fair.
  const bool full_gates = scale >= 1.0 && cores > 1;

  bench::PrintBanner(
      "ANN backends — IVF vs HNSW recall/cost, and the out-of-core path",
      "Identity recall@" + std::to_string(kCandidates) +
          " vs exact-rerank comparisons across nprobe/ef, the sparse-vs-\n"
          "dense crossover, and (EM_BENCH_ANN_MMAP=1) the mmap 1M smoke.\n"
          "Gate: HNSW recall >= 0.98 at >= 2x fewer comparisons than IVF.");

  // ---------------------------------------------------------------- sweep
  const std::vector<size_t> sweep_sizes = {
      std::max<size_t>(256, static_cast<size_t>(15000.0 * scale)),
      std::max<size_t>(512, static_cast<size_t>(100000.0 * scale))};
  const std::vector<size_t> probe_counts = {1, 2, 4, 8, 16};
  const std::vector<size_t> beam_widths = {16, 32, 64, 128};

  std::vector<SweepPoint> sweep;
  // Best (fewest comparisons) config per backend that clears the recall
  // gate, at the LARGEST size — the headline the JSON gates on.
  double ivf_cost_at_gate = 0.0;
  double hnsw_cost_at_gate = 0.0;
  double hnsw_best_recall = 0.0;

  for (size_t n : sweep_sizes) {
    Matrix src;
    Matrix tgt;
    MakeClusteredPair(n, /*seed=*/31, &src, &tgt);

    Result<CandidateIndex> ivf =
        CandidateIndex::Build(tgt, CandidateIndexOptions());
    CandidateIndexOptions hnsw_options;
    hnsw_options.backend = CandidateBackendKind::kHnsw;
    hnsw_options.hnsw_max_links = 16;
    hnsw_options.hnsw_ef_construction = 96;
    Timer hnsw_build_timer;
    Result<CandidateIndex> hnsw = CandidateIndex::Build(tgt, hnsw_options);
    const double hnsw_build_ms = hnsw_build_timer.ElapsedMillis();
    if (!ivf.ok() || !hnsw.ok()) {
      std::cerr << "index build failed at n=" << n << "\n";
      return 1;
    }
    std::cout << "n=" << n << ": IVF " << ivf->Stats().num_lists
              << " lists; HNSW " << hnsw->Stats().num_lists
              << " levels, built in " << FormatDouble(hnsw_build_ms, 0)
              << " ms\n";

    const bool largest = n == sweep_sizes.back();
    for (size_t nprobe : probe_counts) {
      ProbeParams params;
      params.nprobe = nprobe;
      SweepPoint point = MeasurePoint(*ivf, src, tgt, params, nprobe);
      std::cout << "  ivf  nprobe=" << nprobe << ": recall "
                << FormatDouble(point.recall, 3) << ", "
                << FormatDouble(point.comparisons, 1) << " cmp/row, "
                << FormatDouble(point.millis, 1) << " ms\n";
      if (largest && point.recall >= kRecallGate &&
          (ivf_cost_at_gate == 0.0 || point.comparisons < ivf_cost_at_gate)) {
        ivf_cost_at_gate = point.comparisons;
      }
      sweep.push_back(std::move(point));
    }
    for (size_t ef : beam_widths) {
      ProbeParams params;
      params.ef_search = ef;
      SweepPoint point = MeasurePoint(*hnsw, src, tgt, params, ef);
      std::cout << "  hnsw ef=" << ef << ": recall "
                << FormatDouble(point.recall, 3) << ", "
                << FormatDouble(point.comparisons, 1) << " cmp/row, "
                << FormatDouble(point.millis, 1) << " ms\n";
      if (largest) {
        hnsw_best_recall = std::max(hnsw_best_recall, point.recall);
        if (point.recall >= kRecallGate &&
            (hnsw_cost_at_gate == 0.0 ||
             point.comparisons < hnsw_cost_at_gate)) {
          hnsw_cost_at_gate = point.comparisons;
        }
      }
      sweep.push_back(std::move(point));
    }
  }
  const double advantage =
      (hnsw_cost_at_gate > 0.0 && ivf_cost_at_gate > 0.0)
          ? ivf_cost_at_gate / hnsw_cost_at_gate
          : 0.0;
  std::cout << "\nheadline at n=" << sweep_sizes.back() << ": HNSW "
            << (hnsw_cost_at_gate > 0.0
                    ? FormatDouble(hnsw_cost_at_gate, 1)
                    : std::string("-"))
            << " cmp/row vs IVF "
            << (ivf_cost_at_gate > 0.0 ? FormatDouble(ivf_cost_at_gate, 1)
                                       : std::string("-"))
            << " cmp/row at recall >= " << kRecallGate << " ("
            << FormatDouble(advantage, 2) << "x advantage)\n";

  // ------------------------------------------------------------ crossover
  std::cout << "\nsparse-vs-dense crossover (CSLS+greedy, warm):\n";
  const std::vector<size_t> crossover_sizes = {
      std::max<size_t>(128, static_cast<size_t>(1000.0 * scale)),
      std::max<size_t>(192, static_cast<size_t>(2000.0 * scale)),
      std::max<size_t>(256, static_cast<size_t>(4000.0 * scale)),
      std::max<size_t>(384, static_cast<size_t>(8000.0 * scale))};
  std::vector<CrossoverPoint> crossover;
  size_t crossover_n = 0;
  for (size_t n : crossover_sizes) {
    Matrix src;
    Matrix tgt;
    MakeClusteredPair(n, /*seed=*/47, &src, &tgt);
    CandidateIndexOptions hnsw_options;
    hnsw_options.backend = CandidateBackendKind::kHnsw;
    hnsw_options.hnsw_max_links = 16;
    hnsw_options.hnsw_ef_construction = 96;
    Result<CandidateIndex> index = CandidateIndex::Build(tgt, hnsw_options);
    if (!index.ok()) {
      std::cerr << "crossover index build failed at n=" << n << "\n";
      return 1;
    }
    const MatchOptions dense_options = MakePreset(AlgorithmPreset::kCsls);
    MatchOptions sparse_options = dense_options;
    sparse_options.candidate_index = &*index;
    sparse_options.num_candidates = kCandidates;
    sparse_options.index_ef = 64;

    Result<MatchEngine> dense_engine =
        MatchEngine::Create(src, tgt, dense_options);
    Result<MatchEngine> sparse_engine =
        MatchEngine::Create(src, tgt, sparse_options);
    if (!dense_engine.ok() || !sparse_engine.ok() ||
        !dense_engine->Match().ok() || !sparse_engine->Match().ok()) {
      std::cerr << "crossover warmup failed at n=" << n << "\n";
      return 1;
    }
    CrossoverPoint point;
    point.n = n;
    Timer dense_timer;
    if (!dense_engine->Match().ok()) return 1;
    point.dense_ms = dense_timer.ElapsedMillis();
    Timer sparse_timer;
    if (!sparse_engine->Match().ok()) return 1;
    point.sparse_ms = sparse_timer.ElapsedMillis();
    std::cout << "  n=" << n << ": dense "
              << FormatDouble(point.dense_ms, 1) << " ms, sparse "
              << FormatDouble(point.sparse_ms, 1) << " ms\n";
    if (crossover_n == 0 && point.sparse_ms < point.dense_ms) {
      crossover_n = n;
    }
    crossover.push_back(point);
  }
  if (crossover_n != 0) {
    std::cout << "  sparse overtakes dense at n=" << crossover_n << "\n";
  }

  // ----------------------------------------------------------- mmap smoke
  const char* mmap_env = std::getenv("EM_BENCH_ANN_MMAP");
  const bool run_mmap = mmap_env != nullptr && std::string(mmap_env) == "1";
  double mmap_synth_s = 0.0, mmap_build_s = 0.0, mmap_match_s = 0.0;
  double mmap_identity = 0.0;
  size_t mmap_rows = 0, mmap_dim = 0, mmap_tracker_peak = 0;
  size_t mmap_m = 0, mmap_efc = 0, mmap_ef = 0, mmap_c = 0;
  bool mmap_ok = true;
  const double rss_budget_mb =
      static_cast<double>(EnvSize("EM_BENCH_ANN_RSS_BUDGET_MB", 0));
  if (run_mmap) {
    mmap_rows = EnvSize("EM_BENCH_ANN_ROWS", 1000000);
    mmap_dim = EnvSize("EM_BENCH_ANN_DIM", 64);
    const char* dir_env = std::getenv("EM_BENCH_ANN_DIR");
    const std::string prefix =
        std::string(dir_env != nullptr ? dir_env : "/tmp") + "/bench_ann";
    const std::string src_path = prefix + ".src.embf";
    const std::string tgt_path = prefix + ".tgt.embf";

    std::cout << "\nout-of-core smoke: " << mmap_rows << " x " << mmap_dim
              << "d pair under mmap\n";
    EmbfSynthOptions synth;
    synth.rows = mmap_rows;
    synth.dim = mmap_dim;
    // Constant per-cluster population (~64 rows): identity accuracy is set
    // by cluster density, so a fixed cluster count would make the 1M run an
    // unfairly harder problem than the 50k one.
    synth.clusters = std::max<size_t>(256, mmap_rows / 64);
    synth.noise = 0.05;
    Timer synth_timer;
    const Status synthed = SynthEmbfPair(synth, src_path, tgt_path);
    mmap_synth_s = synth_timer.ElapsedSeconds();
    if (!synthed.ok()) {
      std::cerr << "synth: " << synthed.ToString() << "\n";
      return 1;
    }

    MemoryTracker::Global().ResetPeak();
    {
      Result<MmapStore> src_store = MmapStore::Open(src_path);
      Result<MmapStore> tgt_store = MmapStore::Open(tgt_path);
      if (!src_store.ok() || !tgt_store.ok()) {
        std::cerr << "mmap open failed\n";
        return 1;
      }
      // Graph knobs scale with the node count: a 1M-node graph needs wider
      // links and a deeper construction beam than the 50k smoke to hold
      // recall. Overridable so CI jobs can pin their own operating point.
      mmap_m = EnvSize("EM_BENCH_ANN_M", 8);
      mmap_efc = EnvSize("EM_BENCH_ANN_EFC", 32);
      mmap_ef = EnvSize("EM_BENCH_ANN_EF", 64);
      mmap_c = EnvSize("EM_BENCH_ANN_CANDIDATES", 8);
      CandidateIndexOptions hnsw_options;
      hnsw_options.backend = CandidateBackendKind::kHnsw;
      hnsw_options.hnsw_max_links = mmap_m;
      hnsw_options.hnsw_ef_construction = mmap_efc;
      Timer build_timer;
      Result<CandidateIndex> index =
          CandidateIndex::Build(tgt_store->AsMatrix(), hnsw_options);
      mmap_build_s = build_timer.ElapsedSeconds();
      if (!index.ok()) {
        std::cerr << "1M HNSW build: " << index.status().ToString() << "\n";
        return 1;
      }

      MatchOptions options = MakePreset(AlgorithmPreset::kCsls);
      options.candidate_index = &*index;
      options.num_candidates = mmap_c;
      options.index_ef = mmap_ef;
      // The fixed workspace budget the acceptance criterion names: scratch
      // for the whole 1M-row match must fit in 256 MB of tracked arena.
      options.workspace_budget_bytes = 256ull << 20;
      Timer match_timer;
      Result<MatchEngine> engine = MatchEngine::Create(
          src_store->AsMatrix(), tgt_store->AsMatrix(), options);
      if (!engine.ok()) {
        std::cerr << "1M engine: " << engine.status().ToString() << "\n";
        return 1;
      }
      Result<Assignment> assignment = engine->Match();
      mmap_match_s = match_timer.ElapsedSeconds();
      if (!assignment.ok()) {
        std::cerr << "1M match: " << assignment.status().ToString() << "\n";
        return 1;
      }
      size_t hits = 0;
      for (size_t i = 0; i < mmap_rows; ++i) {
        hits += assignment->target_of_source[i] == static_cast<int32_t>(i);
      }
      mmap_identity =
          static_cast<double>(hits) / static_cast<double>(mmap_rows);
      mmap_tracker_peak = MemoryTracker::Global().stats().peak_bytes;
    }
    std::remove(src_path.c_str());
    std::remove(tgt_path.c_str());

    std::cout << "  synth " << FormatDouble(mmap_synth_s, 1) << " s, build "
              << FormatDouble(mmap_build_s, 1) << " s, match "
              << FormatDouble(mmap_match_s, 1) << " s\n"
              << "  identity acc " << FormatDouble(mmap_identity, 4)
              << ", tracked peak " << FormatBytes(mmap_tracker_peak)
              << ", peak RSS " << FormatDouble(PeakRssMb(), 0) << " MB\n";
    if (mmap_identity < 0.95) {
      std::cerr << "FATAL: out-of-core identity accuracy " << mmap_identity
                << " < 0.95\n";
      mmap_ok = false;
    }
    if (rss_budget_mb > 0.0 && PeakRssMb() > rss_budget_mb) {
      std::cerr << "FATAL: peak RSS " << FormatDouble(PeakRssMb(), 0)
                << " MB exceeds the " << rss_budget_mb << " MB budget\n";
      mmap_ok = false;
    }
  }

  // ----------------------------------------------------------------- gates
  bool ok = mmap_ok;
  if (hnsw_best_recall < kRecallGate) {
    std::cerr << "FATAL: best HNSW recall " << hnsw_best_recall << " < "
              << kRecallGate << " at n=" << sweep_sizes.back() << "\n";
    ok = false;
  }
  if (full_gates) {
    if (ivf_cost_at_gate == 0.0) {
      std::cerr << "FATAL: no IVF config reached recall " << kRecallGate
                << "\n";
      ok = false;
    } else if (advantage < kComparisonAdvantageGate) {
      std::cerr << "FATAL: HNSW comparison advantage "
                << FormatDouble(advantage, 2) << "x < "
                << kComparisonAdvantageGate << "x\n";
      ok = false;
    }
  } else {
    std::cout << "(cost-advantage gate skipped: scale=" << scale << ", "
              << cores << " core(s) — correctness-only mode)\n";
  }

  std::ofstream json("BENCH_ann.json");
  json << "{\n  \"dim\": " << kDim << ",\n  \"candidates\": " << kCandidates
       << ",\n  \"scale\": " << scale
       << ",\n  \"full_gates\": " << (full_gates ? "true" : "false")
       << ",\n  \"recall_gate\": " << kRecallGate
       << ",\n  \"advantage_gate\": " << kComparisonAdvantageGate
       << ",\n  \"sweep\": [\n";
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    json << "    {\"backend\": \"" << p.backend << "\", \"n\": " << p.n
         << ", \"knob\": " << p.knob << ", \"recall\": " << p.recall
         << ", \"comparisons_per_row\": " << p.comparisons
         << ", \"millis\": " << p.millis << "}"
         << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"headline\": {\"ivf_comparisons\": " << ivf_cost_at_gate
       << ", \"hnsw_comparisons\": " << hnsw_cost_at_gate
       << ", \"advantage\": " << advantage
       << ", \"hnsw_best_recall\": " << hnsw_best_recall
       << "},\n  \"crossover\": [\n";
  for (size_t i = 0; i < crossover.size(); ++i) {
    json << "    {\"n\": " << crossover[i].n
         << ", \"dense_ms\": " << crossover[i].dense_ms
         << ", \"sparse_ms\": " << crossover[i].sparse_ms << "}"
         << (i + 1 < crossover.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"crossover_n\": " << crossover_n
       << ",\n  \"mmap\": {\"enabled\": " << (run_mmap ? "true" : "false")
       << ", \"rows\": " << mmap_rows << ", \"dim\": " << mmap_dim
       << ", \"synth_seconds\": " << mmap_synth_s
       << ", \"build_seconds\": " << mmap_build_s
       << ", \"match_seconds\": " << mmap_match_s
       << ", \"max_links\": " << mmap_m << ", \"ef_construction\": " << mmap_efc
       << ", \"ef_search\": " << mmap_ef << ", \"candidates\": " << mmap_c
       << ", \"identity_accuracy\": " << mmap_identity
       << ", \"tracked_peak_bytes\": " << mmap_tracker_peak
       << ", \"rss_budget_mb\": " << rss_budget_mb
       << "},\n  \"peak_rss_mb\": " << PeakRssMb()
       << ",\n  \"pass\": " << (ok ? "true" : "false") << "\n}\n";

  std::cout << (ok ? "\nPASS" : "\nFAIL") << " — wrote BENCH_ann.json (peak RSS "
            << FormatDouble(PeakRssMb(), 0) << " MB)\n";
  return ok ? 0 : 1;
}
