// Reproduces Table 6: F1, time, and memory feasibility on the large-scale
// DWY100K-sim pairs using GCN embeddings, including the scalable RInf
// variants (RInf-wr, RInf-pb).
//
// Expected shapes (paper Sec. 4.4):
//   - Ordering as on G-DBP: Sink./Hun. best, then RInf, CSLS/RL, DInf worst.
//   - RInf-wr reproduces CSLS's F1 exactly at a fraction of RInf's cost;
//     RInf-pb sits between RInf-wr and RInf.
//   - DInf is by far the cheapest; Sink. and Hun. are the slowest.
//   - SMat is the least space-efficient algorithm; at the paper's true scale
//     (70k test entities/side) its rank tables alone need ~39 GB and do not
//     fit ("Mem: No") — we report the measured workspace at our scale plus
//     the projected paper-scale footprint.

#include "bench/harness.h"
#include "embedding/embedding.h"
#include "matching/partitioned.h"

namespace entmatcher::bench {
namespace {

// Test-candidate count of the real DWY100K (70% of 100k links).
constexpr double kPaperScaleTestEntities = 70000.0;

// Paper-scale workspace projection: workspace grows as n^2 for every
// algorithm here, so scale the measured bytes by (70k / n)^2.
std::string PaperScaleProjection(size_t measured_bytes, size_t n) {
  const double factor = kPaperScaleTestEntities / static_cast<double>(n);
  const double projected = static_cast<double>(measured_bytes) * factor * factor;
  return FormatBytes(static_cast<size_t>(projected));
}

// The paper's experimental environment fits roughly this much workspace
// before swapping/OOM (Sec. 4.4 footnotes 8/9).
constexpr double kPaperMemoryBudgetBytes = 30.0 * 1024 * 1024 * 1024;

void Run() {
  const double scale = GlobalScale();
  PrintBanner(
      "Table 6 — Large-scale results on DWY100K-sim (GCN embeddings)",
      "F1 per pair, mean matching time, measured peak workspace, and the\n"
      "projected workspace at the paper's true scale (70k test entities),\n"
      "with the corresponding feasibility verdict (budget ~30 GB).");

  const std::vector<std::string> pairs = Dwy100kPairNames();
  std::vector<KgPairDataset> datasets;
  std::vector<EmbeddingPair> embeddings;
  for (const std::string& pair : pairs) {
    datasets.push_back(MustGenerate(pair, scale));
    embeddings.push_back(
        MustEmbed(datasets.back(), EmbeddingSetting::kGcnStruct));
  }

  // Dataset-outer sweep: each dataset gets one ExperimentSession whose
  // engine (similarity cache + workspace arena) is shared by every preset in
  // the column, so the whole table reuses buffers instead of reallocating
  // the n x m score matrix per cell. Results are identical to the fresh
  // per-cell path.
  const std::vector<AlgorithmPreset> presets = ScalabilityPresets();
  std::vector<std::vector<ExperimentResult>> cells(
      presets.size(), std::vector<ExperimentResult>(datasets.size()));
  size_t n = 1;
  for (size_t i = 0; i < datasets.size(); ++i) {
    auto session = ExperimentSession::Create(datasets[i], embeddings[i]);
    if (!session.ok()) {
      std::cerr << "session on " << datasets[i].name << ": "
                << session.status().ToString() << "\n";
      std::abort();
    }
    for (size_t a = 0; a < presets.size(); ++a) {
      auto r = session->Run(presets[a]);
      if (!r.ok()) {
        std::cerr << PresetName(presets[a]) << " on " << datasets[i].name
                  << ": " << r.status().ToString() << "\n";
        std::abort();
      }
      cells[a][i] = std::move(r).value();
    }
    n = datasets[i].test_source_entities.size();
  }

  std::vector<std::string> headers = {"Model"};
  headers.insert(headers.end(), pairs.begin(), pairs.end());
  headers.insert(headers.end(), {"Imp.", "T (s)", "Workspace",
                                 "Paper-scale est.", "Mem"});
  TablePrinter table(headers);

  std::vector<double> dinf_f1s;
  for (size_t a = 0; a < presets.size(); ++a) {
    std::vector<std::string> row = {PresetName(presets[a])};
    std::vector<double> f1s;
    double total_seconds = 0.0;
    size_t max_workspace = 0;
    for (const ExperimentResult& r : cells[a]) {
      f1s.push_back(r.metrics.f1);
      row.push_back(F3(r.metrics.f1));
      total_seconds += r.seconds;
      max_workspace = std::max(max_workspace, r.peak_workspace_bytes);
    }
    if (presets[a] == AlgorithmPreset::kDInf) {
      dinf_f1s = f1s;
      row.push_back("");
    } else {
      row.push_back(Improvement(f1s, dinf_f1s));
    }
    row.push_back(FormatDouble(total_seconds / datasets.size(), 1));
    row.push_back(FormatBytes(max_workspace));
    row.push_back(PaperScaleProjection(max_workspace, n));
    const double projected =
        static_cast<double>(max_workspace) *
        (kPaperScaleTestEntities / n) * (kPaperScaleTestEntities / n);
    row.push_back(projected <= kPaperMemoryBudgetBytes ? "Yes" : "No");
    table.AddRow(row);
  }
  table.Print(std::cout);

  // Partition skew of the ClusterEA-style blocked path on the first pair.
  // largest_block_product alone hides how uneven the co-clustering is; the
  // log2 histogram (bucket b = partitions with a block cell product in
  // [2^b, 2^(b+1))) shows whether the quadratic work is spread or piled into
  // one giant block — the skew the candidate index sidesteps entirely.
  {
    const Matrix src =
        ExtractRows(embeddings[0].source, datasets[0].test_source_entities);
    const Matrix tgt =
        ExtractRows(embeddings[0].target, datasets[0].test_target_entities);
    PartitionedOptions options;
    options.num_partitions = 16;
    options.block_options = MakePreset(AlgorithmPreset::kCsls);
    auto result = PartitionedMatchWithStats(src, tgt, options);
    if (!result.ok()) {
      std::cerr << "partitioned run: " << result.status().ToString() << "\n";
      std::abort();
    }
    const PartitionedMatchResult& stats = *result;
    std::cout << "\nPartition skew (" << pairs[0] << ", "
              << stats.num_partitions << " partitions, largest block = "
              << stats.largest_block_product << " cells):\n";
    for (size_t b = 0; b < stats.block_cells_histogram.size(); ++b) {
      const size_t count = stats.block_cells_histogram[b];
      if (count == 0) continue;
      std::cout << "  [2^" << b << ", 2^" << (b + 1) << ") cells: " << count
                << (count == 1 ? " block\n" : " blocks\n");
    }
  }

  std::cout << "\nNote: the paper's Python SMat could not run at DWY100K "
               "scale at all; our C++ SMat\nruns at the reduced scale but "
               "its projected paper-scale footprint exceeds the budget,\n"
               "reproducing the feasibility verdict.\n";
}

}  // namespace
}  // namespace entmatcher::bench

int main() {
  entmatcher::bench::Run();
  return 0;
}
