// Reproduces the Appendix C study: the neighborhood size k of CSLS and RInf
// under the 1-to-1 setting vs the non-1-to-1 setting.
//
// Expected shape: under the 1-to-1 setting k = 1 is (near-)optimal for both
// algorithms — the paper's argument for RInf's max-based preference (Eq. 2).
// Under the non-1-to-1 setting (FB-MUL), where each entity may legitimately
// have several strong counterparts, k = 1 loses its edge.

#include "bench/harness.h"

namespace entmatcher::bench {
namespace {

void RunBlock(const std::string& pair, double scale) {
  KgPairDataset d = MustGenerate(pair, scale);
  EmbeddingPair e = MustEmbed(d, EmbeddingSetting::kRreaStruct);

  const std::vector<size_t> ks = {1, 2, 5, 10};
  std::vector<std::string> headers = {"Model"};
  for (size_t k : ks) headers.push_back("k=" + std::to_string(k));
  TablePrinter table(headers);

  {
    std::vector<std::string> row = {"CSLS"};
    for (size_t k : ks) {
      MatchOptions options = MakePreset(AlgorithmPreset::kCsls);
      options.csls_k = k;
      auto r = RunExperimentWithOptions(d, e, options, "CSLS");
      if (!r.ok()) std::abort();
      row.push_back(F3(r->metrics.f1));
    }
    table.AddRow(row);
  }
  {
    std::vector<std::string> row = {"RInf"};
    for (size_t k : ks) {
      MatchOptions options = MakePreset(AlgorithmPreset::kRinf);
      options.rinf_k = k;
      auto r = RunExperimentWithOptions(d, e, options, "RInf");
      if (!r.ok()) std::abort();
      row.push_back(F3(r->metrics.f1));
    }
    table.AddRow(row);
  }
  std::cout << "\n-- " << pair << " --\n";
  table.Print(std::cout);
}

void Run() {
  const double scale = GlobalScale();
  PrintBanner("Appendix C — k in CSLS and RInf, 1-to-1 vs non 1-to-1",
              "RREA embeddings; F1 as the reverse-preference neighborhood k "
              "varies.");
  RunBlock("D-Z", scale);     // 1-to-1 setting
  RunBlock("FB-MUL", scale);  // non 1-to-1 setting
}

}  // namespace
}  // namespace entmatcher::bench

int main() {
  entmatcher::bench::Run();
  return 0;
}
