// Supplementary analysis: Hits@k and MRR of the raw pairwise scores per
// embedding setting. Hits@1 equals greedy (DInf) recall — the paper notes
// the equivalence in Sec. 4.2 — while Hits@10 bounds what any candidate-
// pruned matcher (RInf-pb, the RL matcher's top-C actions) can recover.

#include "bench/harness.h"
#include "eval/ranking_metrics.h"

namespace entmatcher::bench {
namespace {

void Run() {
  const double scale = GlobalScale();
  PrintBanner("Ranking quality of the raw pairwise scores (Hits@k / MRR)",
              "Hits@1 = DInf recall; Hits@10 bounds candidate-pruned "
              "matchers.");

  struct Block {
    std::string name;
    std::vector<std::string> pairs;
    EmbeddingSetting setting;
  };
  const std::vector<Block> blocks = {
      {"G", Dbp15kPairNames(), EmbeddingSetting::kGcnStruct},
      {"R", Dbp15kPairNames(), EmbeddingSetting::kRreaStruct},
      {"N", Dbp15kPairNames(), EmbeddingSetting::kNameOnly},
      {"NR", Dbp15kPairNames(), EmbeddingSetting::kNameRrea},
  };

  TablePrinter table(
      {"Setting", "Pair", "Hits@1", "Hits@5", "Hits@10", "MRR"});
  for (const Block& block : blocks) {
    for (const std::string& pair : block.pairs) {
      KgPairDataset d = MustGenerate(pair, scale);
      EmbeddingPair e = MustEmbed(d, block.setting);
      auto m = EvaluateEmbeddingRanking(d, e);
      if (!m.ok()) {
        std::cerr << m.status().ToString() << "\n";
        std::abort();
      }
      table.AddRow({block.name, pair, F3(m->hits_at_1), F3(m->hits_at_5),
                    F3(m->hits_at_10), F3(m->mrr)});
    }
    table.AddSeparator();
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace entmatcher::bench

int main() {
  entmatcher::bench::Run();
  return 0;
}
