file(REMOVE_RECURSE
  "libem_la.a"
)
