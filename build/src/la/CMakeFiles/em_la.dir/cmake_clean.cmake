file(REMOVE_RECURSE
  "CMakeFiles/em_la.dir/matrix.cc.o"
  "CMakeFiles/em_la.dir/matrix.cc.o.d"
  "CMakeFiles/em_la.dir/matrix_io.cc.o"
  "CMakeFiles/em_la.dir/matrix_io.cc.o.d"
  "CMakeFiles/em_la.dir/ranking.cc.o"
  "CMakeFiles/em_la.dir/ranking.cc.o.d"
  "CMakeFiles/em_la.dir/similarity.cc.o"
  "CMakeFiles/em_la.dir/similarity.cc.o.d"
  "CMakeFiles/em_la.dir/topk.cc.o"
  "CMakeFiles/em_la.dir/topk.cc.o.d"
  "libem_la.a"
  "libem_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/em_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
