# Empty compiler generated dependencies file for em_la.
# This may be replaced when dependencies are built.
