
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/la/matrix.cc" "src/la/CMakeFiles/em_la.dir/matrix.cc.o" "gcc" "src/la/CMakeFiles/em_la.dir/matrix.cc.o.d"
  "/root/repo/src/la/matrix_io.cc" "src/la/CMakeFiles/em_la.dir/matrix_io.cc.o" "gcc" "src/la/CMakeFiles/em_la.dir/matrix_io.cc.o.d"
  "/root/repo/src/la/ranking.cc" "src/la/CMakeFiles/em_la.dir/ranking.cc.o" "gcc" "src/la/CMakeFiles/em_la.dir/ranking.cc.o.d"
  "/root/repo/src/la/similarity.cc" "src/la/CMakeFiles/em_la.dir/similarity.cc.o" "gcc" "src/la/CMakeFiles/em_la.dir/similarity.cc.o.d"
  "/root/repo/src/la/topk.cc" "src/la/CMakeFiles/em_la.dir/topk.cc.o" "gcc" "src/la/CMakeFiles/em_la.dir/topk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/em_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
