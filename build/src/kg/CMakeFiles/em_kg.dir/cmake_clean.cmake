file(REMOVE_RECURSE
  "CMakeFiles/em_kg.dir/alignment.cc.o"
  "CMakeFiles/em_kg.dir/alignment.cc.o.d"
  "CMakeFiles/em_kg.dir/dataset.cc.o"
  "CMakeFiles/em_kg.dir/dataset.cc.o.d"
  "CMakeFiles/em_kg.dir/dataset_io.cc.o"
  "CMakeFiles/em_kg.dir/dataset_io.cc.o.d"
  "CMakeFiles/em_kg.dir/graph.cc.o"
  "CMakeFiles/em_kg.dir/graph.cc.o.d"
  "CMakeFiles/em_kg.dir/io.cc.o"
  "CMakeFiles/em_kg.dir/io.cc.o.d"
  "libem_kg.a"
  "libem_kg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/em_kg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
