file(REMOVE_RECURSE
  "libem_kg.a"
)
