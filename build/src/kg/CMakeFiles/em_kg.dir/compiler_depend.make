# Empty compiler generated dependencies file for em_kg.
# This may be replaced when dependencies are built.
