file(REMOVE_RECURSE
  "libem_embedding.a"
)
