file(REMOVE_RECURSE
  "CMakeFiles/em_embedding.dir/embedding.cc.o"
  "CMakeFiles/em_embedding.dir/embedding.cc.o.d"
  "CMakeFiles/em_embedding.dir/fusion.cc.o"
  "CMakeFiles/em_embedding.dir/fusion.cc.o.d"
  "CMakeFiles/em_embedding.dir/name_encoder.cc.o"
  "CMakeFiles/em_embedding.dir/name_encoder.cc.o.d"
  "CMakeFiles/em_embedding.dir/propagation.cc.o"
  "CMakeFiles/em_embedding.dir/propagation.cc.o.d"
  "CMakeFiles/em_embedding.dir/provider.cc.o"
  "CMakeFiles/em_embedding.dir/provider.cc.o.d"
  "CMakeFiles/em_embedding.dir/transe.cc.o"
  "CMakeFiles/em_embedding.dir/transe.cc.o.d"
  "libem_embedding.a"
  "libem_embedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/em_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
