# Empty compiler generated dependencies file for em_embedding.
# This may be replaced when dependencies are built.
