
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/embedding/embedding.cc" "src/embedding/CMakeFiles/em_embedding.dir/embedding.cc.o" "gcc" "src/embedding/CMakeFiles/em_embedding.dir/embedding.cc.o.d"
  "/root/repo/src/embedding/fusion.cc" "src/embedding/CMakeFiles/em_embedding.dir/fusion.cc.o" "gcc" "src/embedding/CMakeFiles/em_embedding.dir/fusion.cc.o.d"
  "/root/repo/src/embedding/name_encoder.cc" "src/embedding/CMakeFiles/em_embedding.dir/name_encoder.cc.o" "gcc" "src/embedding/CMakeFiles/em_embedding.dir/name_encoder.cc.o.d"
  "/root/repo/src/embedding/propagation.cc" "src/embedding/CMakeFiles/em_embedding.dir/propagation.cc.o" "gcc" "src/embedding/CMakeFiles/em_embedding.dir/propagation.cc.o.d"
  "/root/repo/src/embedding/provider.cc" "src/embedding/CMakeFiles/em_embedding.dir/provider.cc.o" "gcc" "src/embedding/CMakeFiles/em_embedding.dir/provider.cc.o.d"
  "/root/repo/src/embedding/transe.cc" "src/embedding/CMakeFiles/em_embedding.dir/transe.cc.o" "gcc" "src/embedding/CMakeFiles/em_embedding.dir/transe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/em_common.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/em_la.dir/DependInfo.cmake"
  "/root/repo/build/src/kg/CMakeFiles/em_kg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
