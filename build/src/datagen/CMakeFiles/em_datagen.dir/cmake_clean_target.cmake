file(REMOVE_RECURSE
  "libem_datagen.a"
)
