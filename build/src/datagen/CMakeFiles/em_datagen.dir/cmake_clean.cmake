file(REMOVE_RECURSE
  "CMakeFiles/em_datagen.dir/benchmarks.cc.o"
  "CMakeFiles/em_datagen.dir/benchmarks.cc.o.d"
  "CMakeFiles/em_datagen.dir/kg_pair_generator.cc.o"
  "CMakeFiles/em_datagen.dir/kg_pair_generator.cc.o.d"
  "CMakeFiles/em_datagen.dir/names.cc.o"
  "CMakeFiles/em_datagen.dir/names.cc.o.d"
  "libem_datagen.a"
  "libem_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/em_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
