
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/benchmarks.cc" "src/datagen/CMakeFiles/em_datagen.dir/benchmarks.cc.o" "gcc" "src/datagen/CMakeFiles/em_datagen.dir/benchmarks.cc.o.d"
  "/root/repo/src/datagen/kg_pair_generator.cc" "src/datagen/CMakeFiles/em_datagen.dir/kg_pair_generator.cc.o" "gcc" "src/datagen/CMakeFiles/em_datagen.dir/kg_pair_generator.cc.o.d"
  "/root/repo/src/datagen/names.cc" "src/datagen/CMakeFiles/em_datagen.dir/names.cc.o" "gcc" "src/datagen/CMakeFiles/em_datagen.dir/names.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/em_common.dir/DependInfo.cmake"
  "/root/repo/build/src/kg/CMakeFiles/em_kg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
