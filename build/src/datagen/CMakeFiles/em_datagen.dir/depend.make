# Empty dependencies file for em_datagen.
# This may be replaced when dependencies are built.
