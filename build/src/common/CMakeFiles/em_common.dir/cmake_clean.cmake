file(REMOVE_RECURSE
  "CMakeFiles/em_common.dir/logging.cc.o"
  "CMakeFiles/em_common.dir/logging.cc.o.d"
  "CMakeFiles/em_common.dir/memory_tracker.cc.o"
  "CMakeFiles/em_common.dir/memory_tracker.cc.o.d"
  "CMakeFiles/em_common.dir/rng.cc.o"
  "CMakeFiles/em_common.dir/rng.cc.o.d"
  "CMakeFiles/em_common.dir/status.cc.o"
  "CMakeFiles/em_common.dir/status.cc.o.d"
  "CMakeFiles/em_common.dir/string_util.cc.o"
  "CMakeFiles/em_common.dir/string_util.cc.o.d"
  "CMakeFiles/em_common.dir/table_printer.cc.o"
  "CMakeFiles/em_common.dir/table_printer.cc.o.d"
  "libem_common.a"
  "libem_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/em_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
