# Empty compiler generated dependencies file for em_common.
# This may be replaced when dependencies are built.
