file(REMOVE_RECURSE
  "libem_common.a"
)
