file(REMOVE_RECURSE
  "libem_nn.a"
)
