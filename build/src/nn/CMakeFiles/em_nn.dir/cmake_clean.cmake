file(REMOVE_RECURSE
  "CMakeFiles/em_nn.dir/mlp.cc.o"
  "CMakeFiles/em_nn.dir/mlp.cc.o.d"
  "CMakeFiles/em_nn.dir/pair_classifier.cc.o"
  "CMakeFiles/em_nn.dir/pair_classifier.cc.o.d"
  "libem_nn.a"
  "libem_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/em_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
