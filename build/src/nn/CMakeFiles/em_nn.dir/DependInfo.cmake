
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/mlp.cc" "src/nn/CMakeFiles/em_nn.dir/mlp.cc.o" "gcc" "src/nn/CMakeFiles/em_nn.dir/mlp.cc.o.d"
  "/root/repo/src/nn/pair_classifier.cc" "src/nn/CMakeFiles/em_nn.dir/pair_classifier.cc.o" "gcc" "src/nn/CMakeFiles/em_nn.dir/pair_classifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/em_common.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/em_la.dir/DependInfo.cmake"
  "/root/repo/build/src/kg/CMakeFiles/em_kg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
