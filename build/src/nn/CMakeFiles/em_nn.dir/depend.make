# Empty dependencies file for em_nn.
# This may be replaced when dependencies are built.
