file(REMOVE_RECURSE
  "CMakeFiles/em_eval.dir/experiment.cc.o"
  "CMakeFiles/em_eval.dir/experiment.cc.o.d"
  "CMakeFiles/em_eval.dir/explain.cc.o"
  "CMakeFiles/em_eval.dir/explain.cc.o.d"
  "CMakeFiles/em_eval.dir/metrics.cc.o"
  "CMakeFiles/em_eval.dir/metrics.cc.o.d"
  "CMakeFiles/em_eval.dir/ranking_metrics.cc.o"
  "CMakeFiles/em_eval.dir/ranking_metrics.cc.o.d"
  "libem_eval.a"
  "libem_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/em_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
