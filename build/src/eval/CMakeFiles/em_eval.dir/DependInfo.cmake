
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/experiment.cc" "src/eval/CMakeFiles/em_eval.dir/experiment.cc.o" "gcc" "src/eval/CMakeFiles/em_eval.dir/experiment.cc.o.d"
  "/root/repo/src/eval/explain.cc" "src/eval/CMakeFiles/em_eval.dir/explain.cc.o" "gcc" "src/eval/CMakeFiles/em_eval.dir/explain.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/eval/CMakeFiles/em_eval.dir/metrics.cc.o" "gcc" "src/eval/CMakeFiles/em_eval.dir/metrics.cc.o.d"
  "/root/repo/src/eval/ranking_metrics.cc" "src/eval/CMakeFiles/em_eval.dir/ranking_metrics.cc.o" "gcc" "src/eval/CMakeFiles/em_eval.dir/ranking_metrics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/em_common.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/em_la.dir/DependInfo.cmake"
  "/root/repo/build/src/kg/CMakeFiles/em_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/embedding/CMakeFiles/em_embedding.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/em_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/em_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
