file(REMOVE_RECURSE
  "libem_eval.a"
)
