# Empty dependencies file for em_eval.
# This may be replaced when dependencies are built.
