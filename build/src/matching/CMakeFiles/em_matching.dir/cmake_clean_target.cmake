file(REMOVE_RECURSE
  "libem_matching.a"
)
