
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matching/auction.cc" "src/matching/CMakeFiles/em_matching.dir/auction.cc.o" "gcc" "src/matching/CMakeFiles/em_matching.dir/auction.cc.o.d"
  "/root/repo/src/matching/gale_shapley.cc" "src/matching/CMakeFiles/em_matching.dir/gale_shapley.cc.o" "gcc" "src/matching/CMakeFiles/em_matching.dir/gale_shapley.cc.o.d"
  "/root/repo/src/matching/greedy.cc" "src/matching/CMakeFiles/em_matching.dir/greedy.cc.o" "gcc" "src/matching/CMakeFiles/em_matching.dir/greedy.cc.o.d"
  "/root/repo/src/matching/greedy_one_to_one.cc" "src/matching/CMakeFiles/em_matching.dir/greedy_one_to_one.cc.o" "gcc" "src/matching/CMakeFiles/em_matching.dir/greedy_one_to_one.cc.o.d"
  "/root/repo/src/matching/hungarian_matcher.cc" "src/matching/CMakeFiles/em_matching.dir/hungarian_matcher.cc.o" "gcc" "src/matching/CMakeFiles/em_matching.dir/hungarian_matcher.cc.o.d"
  "/root/repo/src/matching/lap.cc" "src/matching/CMakeFiles/em_matching.dir/lap.cc.o" "gcc" "src/matching/CMakeFiles/em_matching.dir/lap.cc.o.d"
  "/root/repo/src/matching/partitioned.cc" "src/matching/CMakeFiles/em_matching.dir/partitioned.cc.o" "gcc" "src/matching/CMakeFiles/em_matching.dir/partitioned.cc.o.d"
  "/root/repo/src/matching/pipeline.cc" "src/matching/CMakeFiles/em_matching.dir/pipeline.cc.o" "gcc" "src/matching/CMakeFiles/em_matching.dir/pipeline.cc.o.d"
  "/root/repo/src/matching/probabilistic.cc" "src/matching/CMakeFiles/em_matching.dir/probabilistic.cc.o" "gcc" "src/matching/CMakeFiles/em_matching.dir/probabilistic.cc.o.d"
  "/root/repo/src/matching/relation_context.cc" "src/matching/CMakeFiles/em_matching.dir/relation_context.cc.o" "gcc" "src/matching/CMakeFiles/em_matching.dir/relation_context.cc.o.d"
  "/root/repo/src/matching/rl_matcher.cc" "src/matching/CMakeFiles/em_matching.dir/rl_matcher.cc.o" "gcc" "src/matching/CMakeFiles/em_matching.dir/rl_matcher.cc.o.d"
  "/root/repo/src/matching/streaming.cc" "src/matching/CMakeFiles/em_matching.dir/streaming.cc.o" "gcc" "src/matching/CMakeFiles/em_matching.dir/streaming.cc.o.d"
  "/root/repo/src/matching/transforms.cc" "src/matching/CMakeFiles/em_matching.dir/transforms.cc.o" "gcc" "src/matching/CMakeFiles/em_matching.dir/transforms.cc.o.d"
  "/root/repo/src/matching/types.cc" "src/matching/CMakeFiles/em_matching.dir/types.cc.o" "gcc" "src/matching/CMakeFiles/em_matching.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/em_common.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/em_la.dir/DependInfo.cmake"
  "/root/repo/build/src/kg/CMakeFiles/em_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/embedding/CMakeFiles/em_embedding.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/em_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
