# Empty dependencies file for em_matching.
# This may be replaced when dependencies are built.
