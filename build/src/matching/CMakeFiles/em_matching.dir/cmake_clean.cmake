file(REMOVE_RECURSE
  "CMakeFiles/em_matching.dir/auction.cc.o"
  "CMakeFiles/em_matching.dir/auction.cc.o.d"
  "CMakeFiles/em_matching.dir/gale_shapley.cc.o"
  "CMakeFiles/em_matching.dir/gale_shapley.cc.o.d"
  "CMakeFiles/em_matching.dir/greedy.cc.o"
  "CMakeFiles/em_matching.dir/greedy.cc.o.d"
  "CMakeFiles/em_matching.dir/greedy_one_to_one.cc.o"
  "CMakeFiles/em_matching.dir/greedy_one_to_one.cc.o.d"
  "CMakeFiles/em_matching.dir/hungarian_matcher.cc.o"
  "CMakeFiles/em_matching.dir/hungarian_matcher.cc.o.d"
  "CMakeFiles/em_matching.dir/lap.cc.o"
  "CMakeFiles/em_matching.dir/lap.cc.o.d"
  "CMakeFiles/em_matching.dir/partitioned.cc.o"
  "CMakeFiles/em_matching.dir/partitioned.cc.o.d"
  "CMakeFiles/em_matching.dir/pipeline.cc.o"
  "CMakeFiles/em_matching.dir/pipeline.cc.o.d"
  "CMakeFiles/em_matching.dir/probabilistic.cc.o"
  "CMakeFiles/em_matching.dir/probabilistic.cc.o.d"
  "CMakeFiles/em_matching.dir/relation_context.cc.o"
  "CMakeFiles/em_matching.dir/relation_context.cc.o.d"
  "CMakeFiles/em_matching.dir/rl_matcher.cc.o"
  "CMakeFiles/em_matching.dir/rl_matcher.cc.o.d"
  "CMakeFiles/em_matching.dir/streaming.cc.o"
  "CMakeFiles/em_matching.dir/streaming.cc.o.d"
  "CMakeFiles/em_matching.dir/transforms.cc.o"
  "CMakeFiles/em_matching.dir/transforms.cc.o.d"
  "CMakeFiles/em_matching.dir/types.cc.o"
  "CMakeFiles/em_matching.dir/types.cc.o.d"
  "libem_matching.a"
  "libem_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/em_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
