file(REMOVE_RECURSE
  "CMakeFiles/matching_test.dir/matching/auction_test.cc.o"
  "CMakeFiles/matching_test.dir/matching/auction_test.cc.o.d"
  "CMakeFiles/matching_test.dir/matching/extensions_test.cc.o"
  "CMakeFiles/matching_test.dir/matching/extensions_test.cc.o.d"
  "CMakeFiles/matching_test.dir/matching/greedy_one_to_one_test.cc.o"
  "CMakeFiles/matching_test.dir/matching/greedy_one_to_one_test.cc.o.d"
  "CMakeFiles/matching_test.dir/matching/matchers_test.cc.o"
  "CMakeFiles/matching_test.dir/matching/matchers_test.cc.o.d"
  "CMakeFiles/matching_test.dir/matching/partitioned_test.cc.o"
  "CMakeFiles/matching_test.dir/matching/partitioned_test.cc.o.d"
  "CMakeFiles/matching_test.dir/matching/pipeline_test.cc.o"
  "CMakeFiles/matching_test.dir/matching/pipeline_test.cc.o.d"
  "CMakeFiles/matching_test.dir/matching/properties_test.cc.o"
  "CMakeFiles/matching_test.dir/matching/properties_test.cc.o.d"
  "CMakeFiles/matching_test.dir/matching/relation_context_test.cc.o"
  "CMakeFiles/matching_test.dir/matching/relation_context_test.cc.o.d"
  "CMakeFiles/matching_test.dir/matching/transforms_test.cc.o"
  "CMakeFiles/matching_test.dir/matching/transforms_test.cc.o.d"
  "matching_test"
  "matching_test.pdb"
  "matching_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
