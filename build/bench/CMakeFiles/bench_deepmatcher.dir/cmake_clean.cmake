file(REMOVE_RECURSE
  "CMakeFiles/bench_deepmatcher.dir/bench_deepmatcher.cc.o"
  "CMakeFiles/bench_deepmatcher.dir/bench_deepmatcher.cc.o.d"
  "bench_deepmatcher"
  "bench_deepmatcher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deepmatcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
