# Empty compiler generated dependencies file for bench_deepmatcher.
# This may be replaced when dependencies are built.
