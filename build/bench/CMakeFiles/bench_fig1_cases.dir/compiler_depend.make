# Empty compiler generated dependencies file for bench_fig1_cases.
# This may be replaced when dependencies are built.
