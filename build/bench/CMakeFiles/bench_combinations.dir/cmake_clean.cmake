file(REMOVE_RECURSE
  "CMakeFiles/bench_combinations.dir/bench_combinations.cc.o"
  "CMakeFiles/bench_combinations.dir/bench_combinations.cc.o.d"
  "bench_combinations"
  "bench_combinations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_combinations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
