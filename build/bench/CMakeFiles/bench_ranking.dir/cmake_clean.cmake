file(REMOVE_RECURSE
  "CMakeFiles/bench_ranking.dir/bench_ranking.cc.o"
  "CMakeFiles/bench_ranking.dir/bench_ranking.cc.o.d"
  "bench_ranking"
  "bench_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
