file(REMOVE_RECURSE
  "CMakeFiles/setting_sweep.dir/setting_sweep.cpp.o"
  "CMakeFiles/setting_sweep.dir/setting_sweep.cpp.o.d"
  "setting_sweep"
  "setting_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/setting_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
