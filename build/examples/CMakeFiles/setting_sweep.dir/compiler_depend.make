# Empty compiler generated dependencies file for setting_sweep.
# This may be replaced when dependencies are built.
