
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/unmatchable_alignment.cpp" "examples/CMakeFiles/unmatchable_alignment.dir/unmatchable_alignment.cpp.o" "gcc" "examples/CMakeFiles/unmatchable_alignment.dir/unmatchable_alignment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datagen/CMakeFiles/em_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/em_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/em_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/em_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/embedding/CMakeFiles/em_embedding.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/em_la.dir/DependInfo.cmake"
  "/root/repo/build/src/kg/CMakeFiles/em_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/em_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
