# Empty dependencies file for unmatchable_alignment.
# This may be replaced when dependencies are built.
