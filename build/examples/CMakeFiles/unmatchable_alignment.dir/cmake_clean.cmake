file(REMOVE_RECURSE
  "CMakeFiles/unmatchable_alignment.dir/unmatchable_alignment.cpp.o"
  "CMakeFiles/unmatchable_alignment.dir/unmatchable_alignment.cpp.o.d"
  "unmatchable_alignment"
  "unmatchable_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unmatchable_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
