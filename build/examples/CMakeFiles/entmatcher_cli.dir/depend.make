# Empty dependencies file for entmatcher_cli.
# This may be replaced when dependencies are built.
