file(REMOVE_RECURSE
  "CMakeFiles/entmatcher_cli.dir/entmatcher_cli.cpp.o"
  "CMakeFiles/entmatcher_cli.dir/entmatcher_cli.cpp.o.d"
  "entmatcher_cli"
  "entmatcher_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/entmatcher_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
