# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for non_1to1_alignment.
