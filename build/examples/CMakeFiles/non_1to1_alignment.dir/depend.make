# Empty dependencies file for non_1to1_alignment.
# This may be replaced when dependencies are built.
