file(REMOVE_RECURSE
  "CMakeFiles/non_1to1_alignment.dir/non_1to1_alignment.cpp.o"
  "CMakeFiles/non_1to1_alignment.dir/non_1to1_alignment.cpp.o.d"
  "non_1to1_alignment"
  "non_1to1_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/non_1to1_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
