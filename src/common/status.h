#ifndef ENTMATCHER_COMMON_STATUS_H_
#define ENTMATCHER_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace entmatcher {

/// Error categories used across the library. The library does not throw
/// exceptions; every fallible operation returns a Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kDeadlineExceeded,
  kUnavailable,
  kInternal,
  kIoError,
  kUnimplemented,
};

/// Returns a stable human-readable name for a StatusCode.
std::string_view StatusCodeToString(StatusCode code);

/// Parses a name produced by StatusCodeToString. Unknown names map to
/// kInternal so wire round-trips never manufacture a spurious kOk.
StatusCode StatusCodeFromString(std::string_view name);

/// A lightweight success-or-error value, modeled after arrow::Status.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Constructs a status with the given code and message. `code` must not be
  /// kOk; use Status::OK() for success.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code_ != StatusCode::kOk);
  }

  /// The canonical OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  /// Transient condition — overload shedding, transport failure. Callers may
  /// retry after backing off; contrast with kInvalidArgument (never retry).
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  static Status Unimplemented(std::string message) {
    return Status(StatusCode::kUnimplemented, std::move(message));
  }

  /// True iff the status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error container, modeled after arrow::Result.
///
/// Usage:
///   Result<Matrix> r = LoadMatrix(path);
///   if (!r.ok()) return r.status();
///   Matrix m = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Constructs from a value (success).
  Result(T value) : state_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status. `status.ok()` must be false.
  Result(Status status)  // NOLINT(runtime/explicit)
      : state_(std::move(status)) {
    assert(!std::get<Status>(state_).ok());
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  /// True iff a value is held.
  bool ok() const { return std::holds_alternative<T>(state_); }

  /// The status: OK() when a value is held, the error otherwise.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(state_);
  }

  /// Accesses the held value. Requires ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(state_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(state_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(state_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the held value, or `fallback` if this holds an error.
  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Status> state_;
};

/// Propagates errors from an expression producing a Status.
#define EM_RETURN_NOT_OK(expr)                        \
  do {                                                \
    ::entmatcher::Status _em_status = (expr);         \
    if (!_em_status.ok()) return _em_status;          \
  } while (0)

#define EM_STATUS_CONCAT_INNER_(a, b) a##b
#define EM_STATUS_CONCAT_(a, b) EM_STATUS_CONCAT_INNER_(a, b)

/// Evaluates an expression producing Result<T>; on error returns the status,
/// otherwise assigns the value to `lhs`. `lhs` may include a declaration:
///   EM_ASSIGN_OR_RETURN(Matrix m, LoadMatrix(path));
#define EM_ASSIGN_OR_RETURN(lhs, expr)                               \
  EM_ASSIGN_OR_RETURN_IMPL_(EM_STATUS_CONCAT_(_em_result_, __LINE__), \
                            lhs, expr)

#define EM_ASSIGN_OR_RETURN_IMPL_(result_name, lhs, expr) \
  auto result_name = (expr);                               \
  if (!result_name.ok()) return result_name.status();      \
  lhs = std::move(result_name).value()

}  // namespace entmatcher

#endif  // ENTMATCHER_COMMON_STATUS_H_
