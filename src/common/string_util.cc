#include "common/string_util.h"

#include <cstdio>

namespace entmatcher {

std::vector<std::string_view> SplitString(std::string_view text, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += delim;
    out += parts[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  const char* kWs = " \t\r\n";
  size_t begin = text.find_first_not_of(kWs);
  if (begin == std::string_view::npos) return std::string_view();
  size_t end = text.find_last_not_of(kWs);
  return text.substr(begin, end - begin + 1);
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return std::string(buf);
}

std::string FormatBytes(size_t bytes) {
  const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f %s", value, kUnits[unit]);
  return std::string(buf);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace entmatcher
