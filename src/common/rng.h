#ifndef ENTMATCHER_COMMON_RNG_H_
#define ENTMATCHER_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace entmatcher {

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// splitmix64). Every stochastic component in the library takes an explicit
/// seed so that datasets, embeddings, and experiments are fully reproducible.
///
/// Not thread-safe; use one instance per thread.
class Rng {
 public:
  /// Seeds the generator. Equal seeds produce identical streams.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses unbiased
  /// rejection sampling.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform float in [0, 1).
  float NextFloat();

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal variate (Box–Muller; caches the second value).
  double NextGaussian();

  /// Normal variate with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// True with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Zipf-like integer in [0, n): probability of i proportional to
  /// 1 / (i + 1)^exponent. Used for power-law degree distributions.
  /// `n` must be > 0.
  uint64_t NextZipf(uint64_t n, double exponent);

  /// Fisher–Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Derives an independent child generator; children with distinct labels
  /// produce independent streams even from the same parent seed.
  Rng Fork(uint64_t label) const;

 private:
  uint64_t state_[4];
  uint64_t seed_;
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace entmatcher

#endif  // ENTMATCHER_COMMON_RNG_H_
