#include "common/fault.h"

#include <chrono>
#include <cstdlib>
#include <thread>

namespace entmatcher {

namespace {

bool ParseUint64(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

bool ParseDouble(std::string_view text, double* out) {
  if (text.empty()) return false;
  std::string buf(text);
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *out = value;
  return true;
}

}  // namespace

Result<FaultPlan> FaultPlan::Parse(std::string_view spec) {
  FaultPlan plan;
  plan.spec_ = std::string(spec);
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t semi = spec.find(';', pos);
    std::string_view rule_text =
        spec.substr(pos, semi == std::string_view::npos ? std::string_view::npos
                                                        : semi - pos);
    pos = semi == std::string_view::npos ? spec.size() + 1 : semi + 1;
    if (rule_text.empty()) continue;

    size_t colon = rule_text.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Status::InvalidArgument("fault rule missing 'point:' prefix: '" +
                                     std::string(rule_text) + "'");
    }
    FaultRule rule;
    rule.point = std::string(rule_text.substr(0, colon));
    bool has_trigger = false;
    bool has_code = false;
    bool has_latency = false;
    bool has_arg = false;

    std::string_view kvs = rule_text.substr(colon + 1);
    size_t kv_pos = 0;
    while (kv_pos <= kvs.size()) {
      size_t comma = kvs.find(',', kv_pos);
      std::string_view kv = kvs.substr(
          kv_pos,
          comma == std::string_view::npos ? std::string_view::npos
                                          : comma - kv_pos);
      kv_pos = comma == std::string_view::npos ? kvs.size() + 1 : comma + 1;
      if (kv.empty()) continue;

      size_t eq = kv.find('=');
      if (eq == std::string_view::npos) {
        return Status::InvalidArgument("fault rule option missing '=': '" +
                                       std::string(kv) + "'");
      }
      std::string_view key = kv.substr(0, eq);
      std::string_view value = kv.substr(eq + 1);
      if (key == "p") {
        double p = 0.0;
        if (!ParseDouble(value, &p) || p < 0.0 || p > 1.0) {
          return Status::InvalidArgument("fault rule p= must be in [0,1]: '" +
                                         std::string(value) + "'");
        }
        rule.probability = p;
        has_trigger = true;
      } else if (key == "nth") {
        uint64_t n = 0;
        if (!ParseUint64(value, &n) || n == 0) {
          return Status::InvalidArgument(
              "fault rule nth= must be a positive integer: '" +
              std::string(value) + "'");
        }
        rule.nth = n;
        has_trigger = true;
      } else if (key == "max") {
        if (!ParseUint64(value, &rule.max_fires)) {
          return Status::InvalidArgument("fault rule max= must be an integer: '" +
                                         std::string(value) + "'");
        }
      } else if (key == "code") {
        StatusCode code = StatusCodeFromString(value);
        if (StatusCodeToString(code) != value || code == StatusCode::kOk) {
          return Status::InvalidArgument("fault rule code= unknown or kOk: '" +
                                         std::string(value) + "'");
        }
        rule.code = code;
        has_code = true;
      } else if (key == "latency_us") {
        if (!ParseUint64(value, &rule.latency_micros)) {
          return Status::InvalidArgument(
              "fault rule latency_us= must be an integer: '" +
              std::string(value) + "'");
        }
        has_latency = true;
      } else if (key == "arg") {
        if (!ParseUint64(value, &rule.arg)) {
          return Status::InvalidArgument("fault rule arg= must be an integer: '" +
                                         std::string(value) + "'");
        }
        has_arg = true;
      } else {
        return Status::InvalidArgument("fault rule unknown option '" +
                                       std::string(key) + "'");
      }
    }

    if (!has_trigger) {
      return Status::InvalidArgument("fault rule for '" + rule.point +
                                     "' needs a trigger (p= or nth=)");
    }
    if (has_arg && has_code) {
      return Status::InvalidArgument("fault rule for '" + rule.point +
                                     "' cannot combine arg= with code=");
    }
    if (has_code) {
      rule.kind = FaultKind::kStatus;
    } else if (has_arg) {
      rule.kind = FaultKind::kParam;
    } else if (has_latency) {
      rule.kind = FaultKind::kDelay;
    } else {
      rule.kind = FaultKind::kStatus;  // code defaults to the call site's
    }
    plan.rules_.push_back(std::move(rule));
  }
  return plan;
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(FaultPlan plan, uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.clear();
  seed_ = seed;
  spec_ = plan.spec();
  Rng root(seed);
  uint64_t index = 0;
  for (const FaultRule& rule : plan.rules()) {
    ArmedRule armed;
    armed.rule = rule;
    armed.rng = root.Fork(index++);
    rules_.push_back(std::move(armed));
  }
  armed_.store(!rules_.empty(), std::memory_order_release);
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_release);
  rules_.clear();
  spec_.clear();
  seed_ = 0;
}

FaultInjector::Actions FaultInjector::Evaluate(std::string_view point,
                                               bool params_only) {
  Actions actions;
  std::lock_guard<std::mutex> lock(mu_);
  for (ArmedRule& armed : rules_) {
    if (armed.rule.point != point) continue;
    bool is_param = armed.rule.kind == FaultKind::kParam;
    if (is_param != params_only) continue;
    ++armed.calls;
    if (armed.rule.max_fires > 0 && armed.fires >= armed.rule.max_fires) {
      continue;
    }
    bool fire = armed.rule.nth > 0 ? (armed.calls % armed.rule.nth == 0)
                                   : armed.rng.NextBernoulli(
                                         armed.rule.probability);
    if (!fire) continue;
    ++armed.fires;
    actions.any = true;
    actions.latency_micros += armed.rule.latency_micros;
    if (armed.rule.kind == FaultKind::kStatus && !actions.code.has_value()) {
      // Mark that a status rule fired; the concrete code (or the call site's
      // default) is resolved by the caller.
      actions.code = armed.rule.code.value_or(StatusCode::kOk);
    }
    if (is_param) actions.arg = armed.rule.arg;
  }
  return actions;
}

Status FaultInjector::InjectedStatus(std::string_view point,
                                     StatusCode default_code) {
  if (!armed()) return Status::OK();
  Actions actions = Evaluate(point, /*params_only=*/false);
  if (actions.latency_micros > 0) {
    // Sleep outside the registry lock so injected latency never serializes
    // unrelated points.
    std::this_thread::sleep_for(
        std::chrono::microseconds(actions.latency_micros));
  }
  if (!actions.code.has_value()) return Status::OK();
  StatusCode code =
      *actions.code == StatusCode::kOk ? default_code : *actions.code;
  return Status(code, "injected fault at '" + std::string(point) + "'");
}

uint64_t FaultInjector::Param(std::string_view point) {
  if (!armed()) return 0;
  Actions actions = Evaluate(point, /*params_only=*/true);
  return actions.any ? actions.arg : 0;
}

bool FaultInjector::Fired(std::string_view point) {
  if (!armed()) return false;
  return Evaluate(point, /*params_only=*/false).any;
}

uint64_t FaultInjector::total_fires() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const ArmedRule& armed : rules_) total += armed.fires;
  return total;
}

std::string FaultInjector::Fingerprint() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (rules_.empty()) return "off";
  // FNV-1a over "spec@seed" — stable across runs and platforms.
  uint64_t hash = 14695981039346656037ull;
  auto mix = [&hash](std::string_view text) {
    for (char c : text) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 1099511628211ull;
    }
  };
  mix(spec_);
  mix("@");
  mix(std::to_string(seed_));
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kHex[hash & 0xF];
    hash >>= 4;
  }
  out += ':';
  out += spec_;
  return out;
}

Status ArmFaultInjectionFromEnv() {
  const char* spec = std::getenv("EM_FAULT_PLAN");
  if (spec == nullptr || spec[0] == '\0') return Status::OK();
  if (!kFaultInjectionCompiled) {
    return Status::FailedPrecondition(
        "EM_FAULT_PLAN is set but this build compiled fault injection out; "
        "rebuild with -DENTMATCHER_FAULTS=ON");
  }
  EM_ASSIGN_OR_RETURN(FaultPlan plan, FaultPlan::Parse(spec));
  uint64_t seed = 42;
  if (const char* seed_env = std::getenv("EM_FAULT_SEED")) {
    if (!ParseUint64(seed_env, &seed)) {
      return Status::InvalidArgument(
          std::string("EM_FAULT_SEED must be an unsigned integer: '") +
          seed_env + "'");
    }
  }
  FaultInjector::Global().Arm(std::move(plan), seed);
  return Status::OK();
}

}  // namespace entmatcher
