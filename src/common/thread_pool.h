#ifndef ENTMATCHER_COMMON_THREAD_POOL_H_
#define ENTMATCHER_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace entmatcher {

/// Process-wide worker count used by ParallelFor. Resolution order:
///   1. the last SetNumThreads(n > 0) call,
///   2. the EM_NUM_THREADS environment variable (read once, at first use),
///   3. std::thread::hardware_concurrency().
/// A value of 1 means fully serial execution: ParallelFor runs inline on the
/// calling thread and the worker pool is never spun up.
size_t GetNumThreads();

/// Overrides the worker count for subsequent parallel regions. `n == 0`
/// resets to the environment/hardware default. Not safe to call concurrently
/// with a running ParallelFor.
void SetNumThreads(size_t n);

/// Chunk body for ParallelFor: processes the half-open index range
/// [chunk_begin, chunk_end).
using ParallelChunkFn = std::function<void(size_t, size_t)>;

/// Runs `fn` over [begin, end) split into contiguous chunks executed by the
/// shared worker pool (the calling thread participates).
///
/// Partitioning is static: the range is split into
/// min(GetNumThreads(), ceil(range / grain)) near-equal contiguous chunks.
/// Which thread executes which chunk is unspecified, but because every chunk
/// covers a fixed index range and chunk bodies in this codebase only depend
/// on their own indices, results are bit-identical to the serial path for
/// every thread count. Reductions that must stay bit-identical across thread
/// counts should accumulate per fixed-size block (keyed by index, not by
/// chunk) and combine serially.
///
/// Nested calls (from inside a chunk body) degrade to inline serial
/// execution, so parallel kernels may freely call other parallel kernels.
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const ParallelChunkFn& fn);

namespace internal {

/// Persistent worker pool behind ParallelFor. Exposed for tests; library
/// code should use ParallelFor.
class ThreadPool {
 public:
  /// The process-wide pool. Workers are spawned lazily on the first parallel
  /// region that wants more than one thread.
  static ThreadPool& Global();

  ~ThreadPool();

  /// True when called from inside a chunk body (worker or the participating
  /// caller); ParallelFor uses this to serialize nested regions.
  static bool InParallelRegion();

  /// Runs `chunk_fn(c)` for every c in [0, num_chunks) across the workers
  /// and the calling thread; blocks until all chunks completed. Must not be
  /// called from inside a running region (ParallelFor guards this).
  void Run(size_t num_chunks, size_t num_threads,
           const std::function<void(size_t)>& chunk_fn);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  // One parallel region. Heap-allocated and shared with workers so a
  // late-waking worker from a previous region can never touch the counters
  // of the next one.
  struct Job {
    const std::function<void(size_t)>* fn = nullptr;
    size_t num_chunks = 0;
    std::atomic<size_t> next_chunk{0};
    std::atomic<size_t> completed{0};
  };

  ThreadPool() = default;

  void EnsureWorkers(size_t count);
  void StopWorkers();
  void WorkerLoop();
  void RunChunks(Job* job);

  std::mutex run_mu_;  // serializes whole Run() regions
  std::mutex mu_;
  std::condition_variable wake_cv_;   // workers wait for a new job
  std::condition_variable done_cv_;   // caller waits for completion
  std::shared_ptr<Job> job_;          // guarded by mu_
  uint64_t generation_ = 0;           // guarded by mu_
  bool shutdown_ = false;             // guarded by mu_
  std::vector<std::thread> workers_;
};

}  // namespace internal

}  // namespace entmatcher

#endif  // ENTMATCHER_COMMON_THREAD_POOL_H_
