#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace entmatcher {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  // xoshiro256**
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Unbiased rejection sampling (Lemire-style threshold).
  const uint64_t threshold = (-bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

float Rng::NextFloat() {
  return static_cast<float>(NextUint64() >> 40) * 0x1.0p-24f;
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box–Muller transform. Guard against log(0).
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint64_t Rng::NextZipf(uint64_t n, double exponent) {
  assert(n > 0);
  if (n == 1) return 0;
  // Inverse-CDF sampling via the approximate closed form of the generalized
  // harmonic partial sums. Accurate enough for workload generation.
  if (exponent == 1.0) exponent = 1.0 + 1e-9;
  const double one_minus_e = 1.0 - exponent;
  const double h_n = (std::pow(static_cast<double>(n) + 1.0, one_minus_e) - 1.0) /
                     one_minus_e;
  const double u = NextDouble() * h_n;
  const double x = std::pow(u * one_minus_e + 1.0, 1.0 / one_minus_e) - 1.0;
  uint64_t result = static_cast<uint64_t>(x);
  if (result >= n) result = n - 1;
  return result;
}

Rng Rng::Fork(uint64_t label) const {
  // Mix the original seed with the label through splitmix to decorrelate.
  uint64_t mixed = seed_ ^ (0x632be59bd9b4e019ULL * (label + 1));
  SplitMix64(&mixed);
  return Rng(mixed);
}

}  // namespace entmatcher
