#ifndef ENTMATCHER_COMMON_EPOCH_H_
#define ENTMATCHER_COMMON_EPOCH_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <utility>

namespace entmatcher {

/// Epoch-based reclamation for read-mostly shared state.
///
/// The serving core publishes immutable, ref-counted snapshots (embeddings +
/// index + caches) that K worker threads read concurrently while an admin
/// swap publishes version v+1. Refcounts alone are not enough: a pass may
/// hold *raw* pointers into a snapshot (the degrade path's rewritten
/// candidate_index, borrowed similarity-cache rows) without owning a
/// reference of its own. An EpochDomain closes that window: workers wrap
/// each scores pass in a Guard, a swap Retire()s the displaced snapshot's
/// final reference instead of dropping it inline, and the deferred reclaim
/// runs only once every guard that was active at retirement time has exited
/// — i.e. once no thread can still observe the old version. The result is
/// the RCU-shaped contract the snapshot engine needs: publish v+1
/// immediately, drain in-flight passes on v, reclaim v afterwards, never
/// mid-pass.
///
/// Mechanics (classic three-epoch scheme, guard-granular rather than
/// thread-registered): a global epoch counter advances whenever every active
/// guard has observed the current value; a retired object tagged with epoch
/// e is reclaimed once the minimum epoch over active guards exceeds e.
/// Guards are cheap (two atomic stores) and lock-free; Retire and reclaim
/// take a mutex, which is fine because retirement happens per snapshot swap,
/// not per query.
///
/// Reclaimers run on whichever thread calls TryReclaim (guard exits and
/// retires call it opportunistically), never while the internal mutex is
/// held, so a reclaimer may itself touch the domain. The destructor runs
/// every outstanding reclaimer; the caller must have joined all guard-taking
/// threads first.
class EpochDomain {
 public:
  /// Concurrent guard capacity. Guards are per *pass*, not per thread, so
  /// this bounds simultaneously executing passes across all workers — 128 is
  /// far above any worker-pool size the scheduler will run.
  static constexpr size_t kMaxGuards = 128;

  EpochDomain() = default;
  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;
  ~EpochDomain();

  /// RAII pin: while alive, nothing retired at or after the guard's entry
  /// epoch is reclaimed. Move-only; a moved-from guard is inert. Acquiring
  /// spins only if kMaxGuards passes are already live (practically never).
  class Guard {
   public:
    Guard() = default;
    Guard(Guard&& other) noexcept
        : domain_(other.domain_), slot_(other.slot_) {
      other.domain_ = nullptr;
    }
    Guard& operator=(Guard&& other) noexcept {
      if (this == &other) return *this;
      Exit();
      domain_ = other.domain_;
      slot_ = other.slot_;
      other.domain_ = nullptr;
      return *this;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() { Exit(); }

    bool active() const { return domain_ != nullptr; }

   private:
    friend class EpochDomain;
    Guard(EpochDomain* domain, size_t slot) : domain_(domain), slot_(slot) {}
    void Exit();

    EpochDomain* domain_ = nullptr;
    size_t slot_ = 0;
  };

  /// Pins the current epoch until the returned guard is destroyed.
  Guard Enter();

  /// Defers `reclaim` until every guard active right now has exited. Called
  /// with the displaced state's final owning reference captured in the
  /// closure; runs exactly once.
  void Retire(std::function<void()> reclaim);

  /// Advances the epoch if possible and runs every reclaimer whose retire
  /// epoch has been fully drained. Returns how many reclaimers ran. Safe
  /// from any thread; guard exits call it automatically.
  size_t TryReclaim();

  /// Retired reclaimers not yet run.
  size_t retired_pending() const {
    return retired_count_.load(std::memory_order_acquire);
  }

  /// Current global epoch (starts at 1; test observability).
  uint64_t epoch() const {
    return global_epoch_.load(std::memory_order_acquire);
  }

 private:
  struct Slot {
    /// 0 = inactive; otherwise the epoch pinned by the occupying guard.
    std::atomic<uint64_t> epoch{0};
    std::atomic<bool> taken{false};
  };

  std::atomic<uint64_t> global_epoch_{1};
  std::array<Slot, kMaxGuards> slots_;

  mutable std::mutex retired_mu_;
  /// (retire epoch, reclaimer), in retirement order.
  std::deque<std::pair<uint64_t, std::function<void()>>> retired_;
  std::atomic<size_t> retired_count_{0};
};

}  // namespace entmatcher

#endif  // ENTMATCHER_COMMON_EPOCH_H_
