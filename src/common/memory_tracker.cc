#include "common/memory_tracker.h"

namespace entmatcher {

MemoryTracker& MemoryTracker::Global() {
  // Function-local static reference; trivial-destructor rule honored by
  // never deleting the instance.
  static MemoryTracker& instance = *new MemoryTracker();
  return instance;
}

void MemoryTracker::Add(size_t bytes) {
  size_t now = current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  size_t prev_peak = peak_.load(std::memory_order_relaxed);
  while (now > prev_peak &&
         !peak_.compare_exchange_weak(prev_peak, now, std::memory_order_relaxed)) {
  }
}

void MemoryTracker::Sub(size_t bytes) {
  current_.fetch_sub(bytes, std::memory_order_relaxed);
}

void MemoryTracker::ResetPeak() {
  peak_.store(current_.load(std::memory_order_relaxed), std::memory_order_relaxed);
}

}  // namespace entmatcher
