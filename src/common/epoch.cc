#include "common/epoch.h"

#include <limits>
#include <thread>
#include <vector>

namespace entmatcher {

EpochDomain::Guard EpochDomain::Enter() {
  // Claim a free slot; guards are pass-granular and short-lived, so a full
  // table means kMaxGuards passes are mid-flight — yield and rescan.
  size_t slot = 0;
  for (;;) {
    bool claimed = false;
    for (size_t i = 0; i < kMaxGuards; ++i) {
      bool expected = false;
      if (slots_[i].taken.compare_exchange_strong(
              expected, true, std::memory_order_acquire)) {
        slot = i;
        claimed = true;
        break;
      }
    }
    if (claimed) break;
    std::this_thread::yield();
  }
  // Publish the pinned epoch, then re-read the global: if an advance raced
  // past between load and store, re-pin so the slot never holds an epoch the
  // advancer already treated as drained.
  for (;;) {
    const uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
    slots_[slot].epoch.store(e, std::memory_order_seq_cst);
    if (global_epoch_.load(std::memory_order_seq_cst) == e) break;
  }
  return Guard(this, slot);
}

void EpochDomain::Guard::Exit() {
  if (domain_ == nullptr) return;
  EpochDomain* domain = domain_;
  const size_t slot = slot_;
  domain_ = nullptr;
  domain->slots_[slot].epoch.store(0, std::memory_order_seq_cst);
  domain->slots_[slot].taken.store(false, std::memory_order_release);
  // Opportunistic reclaim: the guard that drains an epoch is the natural
  // place to run its deferred frees (cheap no-op when nothing is retired).
  if (domain->retired_count_.load(std::memory_order_acquire) > 0) {
    domain->TryReclaim();
  }
}

void EpochDomain::Retire(std::function<void()> reclaim) {
  {
    std::lock_guard<std::mutex> lock(retired_mu_);
    retired_.emplace_back(global_epoch_.load(std::memory_order_seq_cst),
                          std::move(reclaim));
    retired_count_.fetch_add(1, std::memory_order_release);
  }
  TryReclaim();
}

size_t EpochDomain::TryReclaim() {
  std::vector<std::function<void()>> ready;
  {
    std::lock_guard<std::mutex> lock(retired_mu_);
    // Minimum epoch pinned by any active guard (inactive slots read 0).
    uint64_t min_active = std::numeric_limits<uint64_t>::max();
    bool any_active = false;
    for (const Slot& s : slots_) {
      const uint64_t e = s.epoch.load(std::memory_order_seq_cst);
      if (e != 0) {
        any_active = true;
        if (e < min_active) min_active = e;
      }
    }
    const uint64_t global = global_epoch_.load(std::memory_order_seq_cst);
    // Advance once every active guard has observed the current epoch; new
    // guards then enter at global+1 and the old epoch can drain.
    if (!any_active || min_active >= global) {
      global_epoch_.store(global + 1, std::memory_order_seq_cst);
    }
    // An entry retired at epoch e is safe once every guard that could have
    // been active at retirement (epoch <= e) has exited: min_active > e.
    // Guards entering *after* the retire cannot reach the displaced state
    // (its publisher already swapped it out), so only the strict comparison
    // matters.
    while (!retired_.empty() &&
           (!any_active || retired_.front().first < min_active)) {
      ready.push_back(std::move(retired_.front().second));
      retired_.pop_front();
      retired_count_.fetch_sub(1, std::memory_order_release);
    }
  }
  for (std::function<void()>& reclaim : ready) reclaim();
  return ready.size();
}

EpochDomain::~EpochDomain() {
  // All guard-taking threads must be joined by now; run whatever is left.
  std::deque<std::pair<uint64_t, std::function<void()>>> leftover;
  {
    std::lock_guard<std::mutex> lock(retired_mu_);
    leftover.swap(retired_);
    retired_count_.store(0, std::memory_order_release);
  }
  for (auto& [epoch, reclaim] : leftover) reclaim();
}

}  // namespace entmatcher
