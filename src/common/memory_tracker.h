#ifndef ENTMATCHER_COMMON_MEMORY_TRACKER_H_
#define ENTMATCHER_COMMON_MEMORY_TRACKER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace entmatcher {

/// Process-wide tracker for large numeric workspace allocations (matrices,
/// rank tables). The paper reports per-algorithm memory cost (Figure 5b,
/// Table 6); RSS is noisy on a shared machine, so benches instead reset this
/// tracker before a run and read the peak afterwards. All Matrix buffers and
/// matcher-side rank tables register here, making the metric deterministic.
///
/// All operations are thread-safe.
class MemoryTracker {
 public:
  /// The process-wide instance.
  static MemoryTracker& Global();

  /// Records an allocation of `bytes`.
  void Add(size_t bytes);

  /// Records a deallocation of `bytes`.
  void Sub(size_t bytes);

  /// Currently live tracked bytes.
  size_t current_bytes() const { return current_.load(std::memory_order_relaxed); }

  /// Highest value of current_bytes() since the last ResetPeak().
  size_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }

  /// One-call snapshot of both counters. Workspace arenas report their
  /// leases here as logical bytes (charged on acquire, credited on release,
  /// never on slab reuse), so a peak read from this snapshot is identical
  /// whether buffers were freshly allocated or recycled.
  struct Stats {
    size_t current_bytes = 0;
    size_t peak_bytes = 0;
  };
  Stats stats() const { return Stats{current_bytes(), peak_bytes()}; }

  /// Resets the peak to the current live size (start of a measured region).
  void ResetPeak();

  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

 private:
  MemoryTracker() = default;

  std::atomic<size_t> current_{0};
  std::atomic<size_t> peak_{0};
};

/// RAII helper registering a fixed-size workspace (e.g., preference lists)
/// with the global tracker for the duration of a scope.
class ScopedTrackedBytes {
 public:
  explicit ScopedTrackedBytes(size_t bytes) : bytes_(bytes) {
    MemoryTracker::Global().Add(bytes_);
  }
  ~ScopedTrackedBytes() { MemoryTracker::Global().Sub(bytes_); }

  ScopedTrackedBytes(const ScopedTrackedBytes&) = delete;
  ScopedTrackedBytes& operator=(const ScopedTrackedBytes&) = delete;

 private:
  size_t bytes_;
};

}  // namespace entmatcher

#endif  // ENTMATCHER_COMMON_MEMORY_TRACKER_H_
