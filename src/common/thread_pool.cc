#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace entmatcher {

namespace {

size_t DefaultNumThreads() {
  if (const char* env = std::getenv("EM_NUM_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) return static_cast<size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

// 0 = not yet resolved; resolved lazily so SetNumThreads can run before or
// after the first parallel region.
std::atomic<size_t> g_num_threads{0};

thread_local bool t_in_parallel_region = false;

}  // namespace

size_t GetNumThreads() {
  size_t n = g_num_threads.load(std::memory_order_acquire);
  if (n == 0) {
    n = DefaultNumThreads();
    g_num_threads.store(n, std::memory_order_release);
  }
  return n;
}

void SetNumThreads(size_t n) {
  g_num_threads.store(n == 0 ? DefaultNumThreads() : n,
                      std::memory_order_release);
}

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const ParallelChunkFn& fn) {
  if (end <= begin) return;
  const size_t range = end - begin;
  if (grain == 0) grain = 1;
  const size_t threads = GetNumThreads();
  const size_t max_chunks = (range + grain - 1) / grain;
  const size_t num_chunks = std::min(threads, max_chunks);
  if (num_chunks <= 1 || internal::ThreadPool::InParallelRegion()) {
    fn(begin, end);
    return;
  }
  // Static partition into near-equal contiguous chunks; the first
  // `range % num_chunks` chunks get one extra index.
  const size_t base = range / num_chunks;
  const size_t extra = range % num_chunks;
  const std::function<void(size_t)> chunk_fn = [&](size_t c) {
    const size_t lo = begin + c * base + std::min(c, extra);
    const size_t hi = lo + base + (c < extra ? 1 : 0);
    fn(lo, hi);
  };
  internal::ThreadPool::Global().Run(num_chunks, threads, chunk_fn);
}

namespace internal {

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::~ThreadPool() { StopWorkers(); }

bool ThreadPool::InParallelRegion() { return t_in_parallel_region; }

void ThreadPool::EnsureWorkers(size_t count) {
  if (workers_.size() == count) return;
  StopWorkers();
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::StopWorkers() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = false;
}

void ThreadPool::RunChunks(Job* job) {
  t_in_parallel_region = true;
  for (;;) {
    const size_t c = job->next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= job->num_chunks) break;
    (*job->fn)(c);
    if (job->completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job->num_chunks) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
  t_in_parallel_region = false;
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
    }
    if (job != nullptr) RunChunks(job.get());
  }
}

void ThreadPool::Run(size_t num_chunks, size_t num_threads,
                     const std::function<void(size_t)>& chunk_fn) {
  // Serialize whole regions: two user threads issuing ParallelFor at once
  // take turns instead of corrupting the shared job slot.
  std::lock_guard<std::mutex> run_lock(run_mu_);
  EnsureWorkers(num_threads - 1);
  auto job = std::make_shared<Job>();
  job->fn = &chunk_fn;
  job->num_chunks = num_chunks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    ++generation_;
  }
  wake_cv_.notify_all();
  RunChunks(job.get());
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return job->completed.load(std::memory_order_acquire) == num_chunks;
    });
    job_.reset();
  }
}

}  // namespace internal

}  // namespace entmatcher
