#include "common/status.h"

namespace entmatcher {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
  }
  return "Unknown";
}

StatusCode StatusCodeFromString(std::string_view name) {
  static constexpr StatusCode kAll[] = {
      StatusCode::kOk,
      StatusCode::kInvalidArgument,
      StatusCode::kOutOfRange,
      StatusCode::kNotFound,
      StatusCode::kAlreadyExists,
      StatusCode::kFailedPrecondition,
      StatusCode::kResourceExhausted,
      StatusCode::kDeadlineExceeded,
      StatusCode::kUnavailable,
      StatusCode::kInternal,
      StatusCode::kIoError,
      StatusCode::kUnimplemented,
  };
  for (StatusCode code : kAll) {
    if (StatusCodeToString(code) == name) return code;
  }
  return StatusCode::kInternal;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace entmatcher
