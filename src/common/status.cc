#include "common/status.h"

namespace entmatcher {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace entmatcher
