#ifndef ENTMATCHER_COMMON_STRING_UTIL_H_
#define ENTMATCHER_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace entmatcher {

/// Splits `text` on `delim`, keeping empty fields. "a\tb" -> {"a", "b"}.
std::vector<std::string_view> SplitString(std::string_view text, char delim);

/// Joins `parts` with `delim`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// Formats a double with `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision);

/// Formats a byte count as a human-readable string ("12.3 MB").
std::string FormatBytes(size_t bytes);

/// True iff `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace entmatcher

#endif  // ENTMATCHER_COMMON_STRING_UTIL_H_
