#include "common/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace entmatcher {
namespace {

/// Recursive-descent parser over a string_view. Depth is capped so a
/// pathological plan file cannot blow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    auto value = ParseValue(0);
    if (!value.ok()) return value;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status(StatusCode::kInvalidArgument,
                    "json: trailing characters at offset " +
                        std::to_string(pos_));
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& message) const {
    return Status(StatusCode::kInvalidArgument,
                  "json: " + message + " at offset " + std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        auto s = ParseString();
        if (!s.ok()) return s.status();
        return JsonValue(std::move(s).value());
      }
      case 't':
        if (ConsumeLiteral("true")) return JsonValue(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return JsonValue(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) return JsonValue();
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    Consume('{');
    JsonValue::Object members;
    SkipWhitespace();
    if (Consume('}')) return JsonValue(std::move(members));
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      auto key = ParseString();
      if (!key.ok()) return key.status();
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      auto value = ParseValue(depth + 1);
      if (!value.ok()) return value;
      members[std::move(key).value()] = std::move(value).value();
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return JsonValue(std::move(members));
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    Consume('[');
    JsonValue::Array elements;
    SkipWhitespace();
    if (Consume(']')) return JsonValue(std::move(elements));
    while (true) {
      auto value = ParseValue(depth + 1);
      if (!value.ok()) return value;
      elements.push_back(std::move(value).value());
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return JsonValue(std::move(elements));
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    Consume('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          auto cp = ParseHex4();
          if (!cp.ok()) return cp.status();
          uint32_t code = cp.value();
          // Surrogate pair: a high surrogate must be followed by \uDC00..DFFF.
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (!ConsumeLiteral("\\u")) return Error("unpaired surrogate");
            auto low = ParseHex4();
            if (!low.ok()) return low.status();
            if (low.value() < 0xDC00 || low.value() > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low.value() - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("unpaired surrogate");
          }
          AppendUtf8(code, &out);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<uint32_t>(c - 'A' + 10);
      else return Error("invalid hex digit in \\u escape");
    }
    return code;
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {}
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Error("invalid number");
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("invalid number");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("invalid number");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return JsonValue(static_cast<int64_t>(v));
      }
      // Out of int64 range: fall through to double.
    }
    errno = 0;
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("invalid number");
    return JsonValue(d);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

void DumpTo(const JsonValue& value, std::string* out) {
  switch (value.kind()) {
    case JsonValue::Kind::kNull:
      out->append("null");
      break;
    case JsonValue::Kind::kBool:
      out->append(value.AsBool() ? "true" : "false");
      break;
    case JsonValue::Kind::kInt:
      out->append(std::to_string(value.AsInt()));
      break;
    case JsonValue::Kind::kDouble: {
      double d = value.AsDouble();
      if (!std::isfinite(d)) {
        out->append("null");
        break;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      out->append(buf);
      break;
    }
    case JsonValue::Kind::kString:
      out->append(JsonEscape(value.AsString()));
      break;
    case JsonValue::Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& element : value.AsArray()) {
        if (!first) out->push_back(',');
        first = false;
        DumpTo(element, out);
      }
      out->push_back(']');
      break;
    }
    case JsonValue::Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, member] : value.AsObject()) {
        if (!first) out->push_back(',');
        first = false;
        out->append(JsonEscape(key));
        out->push_back(':');
        DumpTo(member, out);
      }
      out->push_back('}');
      break;
    }
  }
}

}  // namespace

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

Result<int64_t> JsonValue::GetInt(const std::string& key) const {
  const JsonValue* member = Find(key);
  if (member == nullptr || !member->is_number()) {
    return Status(StatusCode::kInvalidArgument,
                  "json: missing or non-numeric field \"" + key + "\"");
  }
  return member->AsInt();
}

Result<std::string> JsonValue::GetString(const std::string& key) const {
  const JsonValue* member = Find(key);
  if (member == nullptr || !member->is_string()) {
    return Status(StatusCode::kInvalidArgument,
                  "json: missing or non-string field \"" + key + "\"");
  }
  return member->AsString();
}

Result<std::string> JsonValue::GetStringOr(const std::string& key,
                                           const std::string& fallback) const {
  const JsonValue* member = Find(key);
  if (member == nullptr) return fallback;
  if (!member->is_string()) {
    return Status(StatusCode::kInvalidArgument,
                  "json: non-string field \"" + key + "\"");
  }
  return member->AsString();
}

Result<const JsonValue::Array*> JsonValue::GetArray(
    const std::string& key) const {
  const JsonValue* member = Find(key);
  if (member == nullptr || !member->is_array()) {
    return Status(StatusCode::kInvalidArgument,
                  "json: missing or non-array field \"" + key + "\"");
  }
  return &member->AsArray();
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(*this, &out);
  return out;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"': out.append("\\\""); break;
      case '\\': out.append("\\\\"); break;
      case '\b': out.append("\\b"); break;
      case '\f': out.append("\\f"); break;
      case '\n': out.append("\\n"); break;
      case '\r': out.append("\\r"); break;
      case '\t': out.append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out.append(buf);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace entmatcher
