#ifndef ENTMATCHER_COMMON_LOGGING_H_
#define ENTMATCHER_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace entmatcher {

/// Severity levels for the minimal logging facility.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level emitted to stderr (default kInfo).
void SetLogLevel(LogLevel level);

/// The current minimum level.
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log line writer; emits to stderr on destruction if the
/// message level passes the active threshold.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

/// Usage: EM_LOG(Info) << "generated " << n << " triples";
#define EM_LOG(level)                                            \
  ::entmatcher::internal_logging::LogMessage(                    \
      ::entmatcher::LogLevel::k##level, __FILE__, __LINE__)      \
      .stream()

/// Fatal check: prints the failed condition and aborts. Used for programmer
/// errors (contract violations), not for recoverable conditions — those use
/// Status.
#define EM_CHECK(cond)                                                       \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::cerr << "CHECK failed at " << __FILE__ << ":" << __LINE__ << ": " \
                << #cond << std::endl;                                       \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

}  // namespace entmatcher

#endif  // ENTMATCHER_COMMON_LOGGING_H_
