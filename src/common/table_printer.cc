#include "common/table_printer.h"

#include <cassert>
#include <sstream>

namespace entmatcher {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  assert(cells.size() <= headers_.size());
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }

  auto print_line = [&]() {
    os << '+';
    for (size_t w : widths) {
      for (size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << ' ' << cell;
      for (size_t i = cell.size(); i < widths[c] + 1; ++i) os << ' ';
      os << '|';
    }
    os << '\n';
  };

  print_line();
  print_row(headers_);
  print_line();
  for (const auto& row : rows_) {
    if (row.empty()) {
      print_line();
    } else {
      print_row(row);
    }
  }
  print_line();
}

std::string TablePrinter::ToString() const {
  std::ostringstream oss;
  Print(oss);
  return oss.str();
}

}  // namespace entmatcher
