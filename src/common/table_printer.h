#ifndef ENTMATCHER_COMMON_TABLE_PRINTER_H_
#define ENTMATCHER_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace entmatcher {

/// Column-aligned plain-text table writer used by the benchmark harnesses to
/// print the paper's tables (Table 3–8 and the figure series).
///
///   TablePrinter t({"Model", "D-Z", "D-J"});
///   t.AddRow({"DInf", "0.605", "0.603"});
///   t.Print(std::cout);
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; short rows are padded with empty cells, long rows are an
  /// error caught by assert in debug builds.
  void AddRow(std::vector<std::string> cells);

  /// Appends a horizontal separator line.
  void AddSeparator();

  /// Writes the formatted table.
  void Print(std::ostream& os) const;

  /// Returns the formatted table as a string.
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  // A row; empty vector encodes a separator.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace entmatcher

#endif  // ENTMATCHER_COMMON_TABLE_PRINTER_H_
