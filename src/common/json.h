#ifndef ENTMATCHER_COMMON_JSON_H_
#define ENTMATCHER_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace entmatcher {

/// A minimal JSON document model: just enough for the shard-plan file, the
/// router's aggregation of per-shard health/stats payloads, and tests that
/// assert on JSON fields. Deliberately dependency-free, mirroring the
/// hand-rolled writers already used by ServerStats::ToJson.
///
/// Supported: null, booleans, numbers (stored as int64 when the literal is
/// integral, double otherwise), strings with the standard escapes (\uXXXX
/// is decoded to UTF-8), arrays, and objects. Object member order is not
/// preserved (std::map keeps keys sorted) — fine for config and telemetry,
/// not a general-purpose round-tripper.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool value) : kind_(Kind::kBool), bool_(value) {}
  JsonValue(int64_t value) : kind_(Kind::kInt), int_(value) {}
  JsonValue(int value) : kind_(Kind::kInt), int_(value) {}
  JsonValue(uint64_t value)
      : kind_(Kind::kInt), int_(static_cast<int64_t>(value)) {}
  JsonValue(double value) : kind_(Kind::kDouble), double_(value) {}
  JsonValue(std::string value)
      : kind_(Kind::kString), string_(std::move(value)) {}
  JsonValue(const char* value) : kind_(Kind::kString), string_(value) {}
  JsonValue(Array value) : kind_(Kind::kArray), array_(std::move(value)) {}
  JsonValue(Object value) : kind_(Kind::kObject), object_(std::move(value)) {}

  /// Parses a complete JSON document (trailing garbage is an error).
  static Result<JsonValue> Parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  /// Integral view of a number (truncates a double).
  int64_t AsInt() const {
    return kind_ == Kind::kDouble ? static_cast<int64_t>(double_) : int_;
  }
  double AsDouble() const {
    return kind_ == Kind::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& AsString() const { return string_; }
  const Array& AsArray() const { return array_; }
  const Object& AsObject() const { return object_; }
  Array& MutableArray() { return array_; }
  Object& MutableObject() { return object_; }

  /// Object member lookup; nullptr when absent or this is not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Typed object accessors for config parsing: kInvalidArgument naming the
  /// missing/mistyped key, so plan errors point at the offending field.
  Result<int64_t> GetInt(const std::string& key) const;
  Result<std::string> GetString(const std::string& key) const;
  /// Missing key yields `fallback` (mistyped still errors).
  Result<std::string> GetStringOr(const std::string& key,
                                  const std::string& fallback) const;
  Result<const Array*> GetArray(const std::string& key) const;

  /// Serializes the value as compact JSON (doubles via %.17g so numeric
  /// round-trips are exact; non-finite doubles render as null).
  std::string Dump() const;

 private:
  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Escapes `text` as a JSON string literal (with quotes) — shared by Dump
/// and the hand-rolled telemetry writers.
std::string JsonEscape(std::string_view text);

}  // namespace entmatcher

#endif  // ENTMATCHER_COMMON_JSON_H_
