#ifndef ENTMATCHER_COMMON_TIMER_H_
#define ENTMATCHER_COMMON_TIMER_H_

#include <chrono>

namespace entmatcher {

/// Monotonic wall-clock stopwatch used for the paper's time-cost columns.
class Timer {
 public:
  /// Starts (or restarts) the stopwatch.
  Timer() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace entmatcher

#endif  // ENTMATCHER_COMMON_TIMER_H_
