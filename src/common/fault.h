#ifndef ENTMATCHER_COMMON_FAULT_H_
#define ENTMATCHER_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace entmatcher {

/// Deterministic fault-injection substrate.
///
/// Production code declares *named injection points* at the places that can
/// actually fail under pressure — engine scores passes, workspace leases,
/// index loads, the socket frame loops — via the EM_INJECT_FAULT /
/// EM_FAULT_PARAM / EM_FAULT_FIRED macros below. A FaultPlan (parsed from a
/// compact spec string, usually the EM_FAULT_PLAN environment variable) arms
/// a set of rules against those points: each rule fires on a seeded-RNG
/// probability or on every nth call, optionally capped, and either injects a
/// Status, injects latency, or hands the call site a numeric parameter
/// (e.g. a forced write-chunk size).
///
/// The whole substrate is compiled to zero-cost no-ops unless the build sets
/// -DENTMATCHER_FAULTS=ON (which defines ENTMATCHER_FAULTS_ENABLED): in
/// default builds the macros expand to nothing, so hot paths carry no fault
/// branches, no registry lookups, and no fault symbols. The FaultInjector
/// class itself always compiles so plans can be parsed, fingerprinted, and
/// unit-tested in every configuration.
///
/// Determinism: rules draw from per-rule RNG streams forked from the armed
/// seed, and per-rule call counters are advanced under one mutex, so a
/// single-threaded replay of the same call sequence fires identically.
/// Under concurrency the *interleaving* decides which caller absorbs a
/// fault; the chaos invariants (tests/chaos/) are written against that
/// reality — every request terminates with a definite Status and successful
/// responses stay bit-identical to a fault-free run.

#ifdef ENTMATCHER_FAULTS_ENABLED
inline constexpr bool kFaultInjectionCompiled = true;
#else
inline constexpr bool kFaultInjectionCompiled = false;
#endif

/// What one armed rule does when it fires.
enum class FaultKind {
  /// Return an injected Status from the call site (after any latency).
  kStatus,
  /// Only sleep for latency_micros; the call proceeds normally.
  kDelay,
  /// Expose `arg` to EM_FAULT_PARAM call sites; no status, no sleep.
  kParam,
};

/// One parsed rule of a FaultPlan.
struct FaultRule {
  std::string point;
  FaultKind kind = FaultKind::kStatus;
  /// Trigger: fire every `nth` call when nth > 0, else Bernoulli(probability)
  /// per call from this rule's seeded stream.
  double probability = 0.0;
  uint64_t nth = 0;
  /// Stop firing after this many hits (0 = unlimited).
  uint64_t max_fires = 0;
  /// Status to inject (kStatus rules); unset means the call site's default.
  std::optional<StatusCode> code;
  /// Sleep applied on fire (kStatus or kDelay rules).
  uint64_t latency_micros = 0;
  /// Numeric parameter for kParam rules (e.g. forced chunk size).
  uint64_t arg = 0;
};

/// A parsed set of fault rules.
///
/// Spec grammar (also accepted via EM_FAULT_PLAN):
///   plan  := rule (';' rule)*
///   rule  := point ':' kv (',' kv)*
///   kv    := 'p=' float | 'nth=' uint | 'max=' uint | 'code=' StatusCode
///          | 'latency_us=' uint | 'arg=' uint
/// Every rule needs a trigger (p= or nth=). A rule with code= (or with
/// neither latency_us= nor arg=) injects a Status; latency_us= alone delays;
/// arg= alone parameterizes. Example:
///   "engine.scores:p=0.3,code=Internal;socket.write:nth=7,max=3"
class FaultPlan {
 public:
  FaultPlan() = default;

  static Result<FaultPlan> Parse(std::string_view spec);

  const std::vector<FaultRule>& rules() const { return rules_; }
  const std::string& spec() const { return spec_; }
  bool empty() const { return rules_.empty(); }

 private:
  std::vector<FaultRule> rules_;
  std::string spec_;
};

/// Process-wide fault registry. Thread-safe; disarmed by default (and in
/// fault-free builds the hot-path macros never reach it at all).
class FaultInjector {
 public:
  static FaultInjector& Global();

  /// Arms `plan`; rule RNG streams are forked from `seed`. Replaces any
  /// previously armed plan and resets all counters.
  void Arm(FaultPlan plan, uint64_t seed);

  /// Disarms everything; all points fall through.
  void Disarm();

  bool armed() const { return armed_.load(std::memory_order_acquire); }

  /// Evaluates `point`'s status/delay rules for this call: sleeps any
  /// injected latency, then returns the Status to inject — OK when nothing
  /// fired (or only a delay did). `default_code` fills in for rules without
  /// an explicit code=.
  Status InjectedStatus(std::string_view point, StatusCode default_code);

  /// Evaluates `point`'s kParam rules: the firing rule's arg, or 0.
  uint64_t Param(std::string_view point);

  /// True when any rule on `point` fires for this call (used by sites that
  /// corrupt data in place rather than return a Status).
  bool Fired(std::string_view point);

  /// Total fires across all rules since Arm.
  uint64_t total_fires() const;

  /// Stable identity of the armed plan for health/bench reporting:
  /// "off" when disarmed, else "<16-hex FNV of spec@seed>:<spec>".
  std::string Fingerprint() const;

 private:
  FaultInjector() = default;

  struct ArmedRule {
    FaultRule rule;
    Rng rng{0};
    uint64_t calls = 0;
    uint64_t fires = 0;
  };

  /// Advances matching rules' counters; returns the fired subset's actions.
  struct Actions {
    uint64_t latency_micros = 0;
    std::optional<StatusCode> code;
    uint64_t arg = 0;
    bool any = false;
  };
  Actions Evaluate(std::string_view point, bool params_only);

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  std::vector<ArmedRule> rules_;
  uint64_t seed_ = 0;
  std::string spec_;
};

/// Arms the global injector from EM_FAULT_PLAN / EM_FAULT_SEED. No plan in
/// the environment is OK (stays disarmed); a plan set against a build
/// without ENTMATCHER_FAULTS=ON is kFailedPrecondition — a silently ignored
/// chaos run must not look like a clean one.
Status ArmFaultInjectionFromEnv();

// Hot-path macros. With faults compiled out they expand to nothing, so the
// injection points cost zero and leave no symbols behind.
#ifdef ENTMATCHER_FAULTS_ENABLED
#define EM_INJECT_FAULT(point, default_code)                       \
  do {                                                             \
    ::entmatcher::Status _em_fault_status =                        \
        ::entmatcher::FaultInjector::Global().InjectedStatus(      \
            (point), (default_code));                              \
    if (!_em_fault_status.ok()) return _em_fault_status;           \
  } while (0)
#define EM_FAULT_PARAM(point) \
  (::entmatcher::FaultInjector::Global().Param((point)))
#define EM_FAULT_FIRED(point) \
  (::entmatcher::FaultInjector::Global().Fired((point)))
#else
#define EM_INJECT_FAULT(point, default_code) \
  do {                                       \
  } while (0)
#define EM_FAULT_PARAM(point) (uint64_t{0})
#define EM_FAULT_FIRED(point) (false)
#endif

}  // namespace entmatcher

#endif  // ENTMATCHER_COMMON_FAULT_H_
