#include "index/ivf_backend.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "common/fault.h"
#include "common/rng.h"
#include "la/kmeans.h"

namespace entmatcher {

namespace {

constexpr char kEidxMagic[4] = {'E', 'I', 'D', 'X'};

}  // namespace

Result<std::unique_ptr<IvfBackend>> IvfBackend::Build(const Matrix& target,
                                                      size_t num_lists,
                                                      size_t kmeans_iterations,
                                                      uint64_t seed) {
  if (target.rows() == 0 || target.cols() == 0) {
    return Status::InvalidArgument("CandidateIndex: empty target embeddings");
  }
  if (kmeans_iterations == 0) {
    return Status::InvalidArgument(
        "CandidateIndex: kmeans_iterations must be >= 1");
  }
  const size_t m = target.rows();
  if (num_lists == 0) {
    // IVF rule of thumb: ~sqrt(m) cells balances probe cost against list
    // scan cost.
    num_lists = static_cast<size_t>(std::lround(std::sqrt(
        static_cast<double>(m))));
  }
  num_lists = std::max<size_t>(1, std::min(num_lists, m));

  Rng rng(seed);
  KMeansResult kmeans =
      CosineKMeans(target, num_lists, kmeans_iterations, &rng);

  auto index = std::unique_ptr<IvfBackend>(new IvfBackend());
  index->num_targets_ = m;
  index->dim_ = target.cols();
  index->centroids_ = std::move(kmeans.centroids);

  // Counting sort into inverted lists; scanning target ids in ascending
  // order keeps every list ascending, which the CSR packing relies on.
  index->list_offsets_.assign(num_lists + 1, 0);
  for (uint32_t c : kmeans.assignment) ++index->list_offsets_[c + 1];
  for (size_t l = 0; l < num_lists; ++l) {
    index->list_offsets_[l + 1] += index->list_offsets_[l];
  }
  index->list_ids_.resize(m);
  std::vector<uint64_t> cursor(index->list_offsets_.begin(),
                               index->list_offsets_.end() - 1);
  for (size_t j = 0; j < m; ++j) {
    index->list_ids_[cursor[kmeans.assignment[j]]++] =
        static_cast<uint32_t>(j);
  }
  return index;
}

CandidateListStats IvfBackend::Stats() const {
  CandidateListStats stats;
  stats.backend = CandidateBackendKind::kIvf;
  stats.num_lists = num_lists();
  stats.num_targets = num_targets_;
  stats.min_list_size = num_targets_;
  for (size_t l = 0; l < stats.num_lists; ++l) {
    const size_t size =
        static_cast<size_t>(list_offsets_[l + 1] - list_offsets_[l]);
    stats.min_list_size = std::min(stats.min_list_size, size);
    stats.max_list_size = std::max(stats.max_list_size, size);
    size_t bucket = 0;
    for (size_t v = size; v > 1; v >>= 1) ++bucket;
    if (bucket >= stats.size_histogram.size()) {
      stats.size_histogram.resize(bucket + 1, 0);
    }
    ++stats.size_histogram[bucket];
  }
  stats.mean_list_size = stats.num_lists > 0
                             ? static_cast<double>(num_targets_) /
                                   static_cast<double>(stats.num_lists)
                             : 0.0;
  return stats;
}

void IvfBackend::ProbeLists(
    const float* x, size_t nprobe,
    std::vector<std::pair<float, uint32_t>>* scratch,
    std::vector<uint32_t>* probed) const {
  const size_t lists = num_lists();
  const size_t probes = std::min(nprobe, lists);
  scratch->resize(lists);
  // Rank cells by centroid dot product. Centroids are unit-norm, so the
  // query's own norm cannot change the ordering.
  for (size_t l = 0; l < lists; ++l) {
    const float* mu = centroids_.Row(l).data();
    float dot = 0.0f;
    for (size_t d = 0; d < dim_; ++d) dot += x[d] * mu[d];
    (*scratch)[l] = {dot, static_cast<uint32_t>(l)};
  }
  std::partial_sort(scratch->begin(), scratch->begin() + probes,
                    scratch->end(), CandidateBetter);
  for (size_t p = 0; p < probes; ++p) probed->push_back((*scratch)[p].second);
}

void IvfBackend::Collect(const Matrix& target, const float* x,
                         const ProbeParams& params, CandidateScratch* scratch,
                         std::vector<uint32_t>* out) const {
  (void)target;  // IVF navigates by stored centroids alone.
  scratch->probed.clear();
  ProbeLists(x, params.nprobe, &scratch->ranked_lists, &scratch->probed);
  for (uint32_t l : scratch->probed) {
    for (uint32_t j : List(l)) out->push_back(j);
  }
}

Status IvfBackend::Insert(const Matrix& target, size_t first_new_row) {
  if (target.cols() != dim_) {
    return Status::InvalidArgument(
        "CandidateIndex: inserted rows differ in dimension");
  }
  if (first_new_row != num_targets_ || target.rows() < num_targets_) {
    return Status::InvalidArgument(
        "CandidateIndex: Insert expects the previously indexed rows "
        "followed by the appended ones");
  }
  const size_t m_new = target.rows();
  const size_t lists = num_lists();
  // Assign each appended row to its nearest cell (centroid dot, ties: lower
  // list id — the same order ProbeLists uses).
  std::vector<std::vector<uint32_t>> appended(lists);
  for (size_t j = first_new_row; j < m_new; ++j) {
    const float* x = target.Row(j).data();
    float best = 0.0f;
    uint32_t best_l = 0;
    for (size_t l = 0; l < lists; ++l) {
      const float* mu = centroids_.Row(l).data();
      float dot = 0.0f;
      for (size_t d = 0; d < dim_; ++d) dot += x[d] * mu[d];
      if (l == 0 || dot > best) {
        best = dot;
        best_l = static_cast<uint32_t>(l);
      }
    }
    appended[best_l].push_back(static_cast<uint32_t>(j));
  }
  // Rebuild the CSR lists with the new ids spliced onto their list tails;
  // appended ids exceed every existing id, so each list stays ascending.
  std::vector<uint32_t> ids;
  ids.reserve(m_new);
  std::vector<uint64_t> offsets(lists + 1, 0);
  for (size_t l = 0; l < lists; ++l) {
    for (uint32_t j : List(l)) ids.push_back(j);
    for (uint32_t j : appended[l]) ids.push_back(j);
    offsets[l + 1] = ids.size();
  }
  list_ids_ = std::move(ids);
  list_offsets_ = std::move(offsets);
  num_targets_ = m_new;
  return Status::OK();
}

Status IvfBackend::SavePayload(std::ostream& out) const {
  const uint64_t header[3] = {num_targets_, dim_, num_lists()};
  out.write(reinterpret_cast<const char*>(header), sizeof(header));
  out.write(reinterpret_cast<const char*>(centroids_.data()),
            static_cast<std::streamsize>(centroids_.ByteSize()));
  out.write(reinterpret_cast<const char*>(list_offsets_.data()),
            static_cast<std::streamsize>(list_offsets_.size() *
                                         sizeof(uint64_t)));
  out.write(reinterpret_cast<const char*>(list_ids_.data()),
            static_cast<std::streamsize>(list_ids_.size() *
                                         sizeof(uint32_t)));
  if (!out) return Status::IoError("index payload write failed");
  return Status::OK();
}

Status IvfBackend::SaveLegacyEidx1(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out.write(kEidxMagic, sizeof(kEidxMagic));
  const uint64_t version = 1;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  EM_RETURN_NOT_OK(SavePayload(out));
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<std::unique_ptr<IvfBackend>> IvfBackend::LoadPayload(
    std::istream& in, const std::string& path) {
  uint64_t header[3] = {0, 0, 0};
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  if (!in) return Status::IoError("truncated index header: " + path);
  const uint64_t num_targets = header[0];
  const uint64_t dim = header[1];
  const uint64_t num_lists = header[2];
  // Same sanity bound as the EMAT reader: refuse absurd shapes, not
  // bad_alloc.
  if (num_targets > (1ull << 32) || dim > (1ull << 24) ||
      num_lists == 0 || num_lists > num_targets || dim == 0) {
    return Status::IoError("implausible index shape in: " + path);
  }
  auto index = std::unique_ptr<IvfBackend>(new IvfBackend());
  index->num_targets_ = static_cast<size_t>(num_targets);
  index->dim_ = static_cast<size_t>(dim);
  index->centroids_ = Matrix(static_cast<size_t>(num_lists),
                             static_cast<size_t>(dim));
  in.read(reinterpret_cast<char*>(index->centroids_.data()),
          static_cast<std::streamsize>(index->centroids_.ByteSize()));
  index->list_offsets_.resize(static_cast<size_t>(num_lists) + 1);
  in.read(reinterpret_cast<char*>(index->list_offsets_.data()),
          static_cast<std::streamsize>(index->list_offsets_.size() *
                                       sizeof(uint64_t)));
  index->list_ids_.resize(static_cast<size_t>(num_targets));
  in.read(reinterpret_cast<char*>(index->list_ids_.data()),
          static_cast<std::streamsize>(index->list_ids_.size() *
                                       sizeof(uint32_t)));
  if (!in) return Status::IoError("truncated index data: " + path);
  if (!index->list_ids_.empty() && EM_FAULT_FIRED("index.load.corrupt")) {
    // Chaos point: flip a high bit in the first inverted-list id so the
    // validation below must catch in-memory corruption, not just truncation.
    index->list_ids_[0] ^= 0x80000000u;
  }
  if (index->list_offsets_.front() != 0 ||
      index->list_offsets_.back() != num_targets) {
    return Status::IoError("corrupt inverted-list offsets in: " + path);
  }
  for (size_t l = 0; l + 1 < index->list_offsets_.size(); ++l) {
    if (index->list_offsets_[l] > index->list_offsets_[l + 1]) {
      return Status::IoError("corrupt inverted-list offsets in: " + path);
    }
  }
  for (uint32_t id : index->list_ids_) {
    if (id >= num_targets) {
      return Status::IoError("corrupt inverted-list ids in: " + path);
    }
  }
  return index;
}

}  // namespace entmatcher
