#include "index/hnsw_backend.h"

#include <algorithm>
#include <cmath>

#include "common/fault.h"
#include "common/rng.h"

namespace entmatcher {

namespace {

// Heap comparators over the shared (score desc, id asc) total order.
// push_heap/pop_heap build a max-heap w.r.t. the comparator, so:
//   frontier (top = best still to expand):  "less" == worse
//   best     (top = worst currently kept):  "less" == better
bool FrontierLess(const std::pair<float, uint32_t>& a,
                  const std::pair<float, uint32_t>& b) {
  return CandidateBetter(b, a);
}

}  // namespace

int HnswBackend::LevelFor(uint32_t id) const {
  // One throwaway generator per id: the level must be a pure function of
  // (seed, id), never of insertion history, so incremental Insert replays
  // the full build exactly.
  Rng rng(seed_ ^ (0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(id) + 1)));
  const double u = rng.NextDouble();  // [0, 1) => 1 - u in (0, 1]
  const double level = -std::log(1.0 - u) * inv_log_m_;
  if (level >= static_cast<double>(kMaxLevel)) return kMaxLevel;
  return static_cast<int>(level);
}

float HnswBackend::ScoreAgainst(const Matrix& target, const float* x,
                                uint32_t j) const {
  const float* row = target.Row(j).data();
  float dot = 0.0f;
  for (size_t d = 0; d < dim_; ++d) dot += x[d] * row[d];
  return dot * inv_norms_[j];
}

float HnswBackend::CosineBetween(const Matrix& target, uint32_t a,
                                 uint32_t b) const {
  return ScoreAgainst(target, target.Row(a).data(), b) * inv_norms_[a];
}

void HnswBackend::NeighborsAt(uint32_t node, int level, const uint32_t** ids,
                              size_t* count) const {
  if (level == 0) {
    *ids = neighbors0_.data() + static_cast<size_t>(node) * max_links0_;
    *count = counts0_[node];
    return;
  }
  const auto it = upper_.find(node);
  if (it == upper_.end() ||
      static_cast<size_t>(level) > it->second.size()) {
    *ids = nullptr;
    *count = 0;
    return;
  }
  const std::vector<uint32_t>& list = it->second[level - 1];
  *ids = list.data();
  *count = list.size();
}

uint32_t HnswBackend::GreedyDescend(const Matrix& target, const float* x,
                                    uint32_t entry, int level) const {
  uint32_t cur = entry;
  float cur_score = ScoreAgainst(target, x, cur);
  bool improved = true;
  while (improved) {
    improved = false;
    const uint32_t* nbrs = nullptr;
    size_t count = 0;
    NeighborsAt(cur, level, &nbrs, &count);
    for (size_t k = 0; k < count; ++k) {
      const uint32_t e = nbrs[k];
      const float s = ScoreAgainst(target, x, e);
      if (CandidateBetter({s, e}, {cur_score, cur})) {
        cur = e;
        cur_score = s;
        improved = true;
      }
    }
  }
  return cur;
}

void HnswBackend::SearchLayer(const Matrix& target, const float* x,
                              uint32_t entry, size_t ef, int level,
                              CandidateScratch* scratch) const {
  std::vector<uint32_t>& visited = scratch->visited;
  if (visited.size() < num_targets_) visited.resize(num_targets_, 0);
  if (++scratch->epoch == 0) {
    // Stamp wraparound: one O(m) clear every 2^32 queries.
    std::fill(visited.begin(), visited.end(), 0);
    scratch->epoch = 1;
  }
  const uint32_t epoch = scratch->epoch;
  auto& frontier = scratch->frontier;
  auto& best = scratch->best;
  frontier.clear();
  best.clear();

  const float entry_score = ScoreAgainst(target, x, entry);
  frontier.push_back({entry_score, entry});
  best.push_back({entry_score, entry});
  visited[entry] = epoch;

  while (!frontier.empty()) {
    std::pop_heap(frontier.begin(), frontier.end(), FrontierLess);
    const std::pair<float, uint32_t> cur = frontier.back();
    frontier.pop_back();
    // best.front() is the worst kept; once even the best frontier node is
    // worse than that, no reachable node can enter the result set.
    if (best.size() >= ef && CandidateBetter(best.front(), cur)) break;
    const uint32_t* nbrs = nullptr;
    size_t count = 0;
    NeighborsAt(cur.second, level, &nbrs, &count);
    for (size_t k = 0; k < count; ++k) {
      const uint32_t e = nbrs[k];
      if (visited[e] == epoch) continue;
      visited[e] = epoch;
      const float s = ScoreAgainst(target, x, e);
      if (best.size() < ef || CandidateBetter({s, e}, best.front())) {
        frontier.push_back({s, e});
        std::push_heap(frontier.begin(), frontier.end(), FrontierLess);
        best.push_back({s, e});
        std::push_heap(best.begin(), best.end(), CandidateBetter);
        if (best.size() > ef) {
          std::pop_heap(best.begin(), best.end(), CandidateBetter);
          best.pop_back();
        }
      }
    }
  }
}

void HnswBackend::SelectNeighbors(
    const Matrix& target, std::vector<std::pair<float, uint32_t>>* candidates,
    size_t cap) const {
  if (candidates->size() <= cap) return;
  std::vector<std::pair<float, uint32_t>> selected;
  std::vector<std::pair<float, uint32_t>> pruned;
  selected.reserve(cap);
  for (const auto& [score, e] : *candidates) {
    if (selected.size() >= cap) break;
    bool diverse = true;
    for (const auto& [kept_score, kept] : selected) {
      // e sits closer to an already-selected neighbor than to the query:
      // the selected one already covers that direction.
      if (CosineBetween(target, e, kept) > score) {
        diverse = false;
        break;
      }
    }
    (diverse ? selected : pruned).push_back({score, e});
  }
  // Backfill with the best pruned candidates so sparse neighborhoods still
  // fill their link budget (hnswlib's keepPrunedConnections).
  for (const auto& p : pruned) {
    if (selected.size() >= cap) break;
    selected.push_back(p);
  }
  *candidates = std::move(selected);
}

void HnswBackend::SetNeighbors(
    uint32_t node, int level,
    const std::vector<std::pair<float, uint32_t>>& selected) {
  if (level == 0) {
    uint32_t* slot = neighbors0_.data() + static_cast<size_t>(node) * max_links0_;
    for (size_t k = 0; k < selected.size(); ++k) slot[k] = selected[k].second;
    counts0_[node] = static_cast<uint32_t>(selected.size());
    return;
  }
  std::vector<std::vector<uint32_t>>& levels = upper_[node];
  if (levels.size() < static_cast<size_t>(level)) levels.resize(level);
  std::vector<uint32_t>& list = levels[level - 1];
  list.clear();
  for (const auto& [score, e] : selected) list.push_back(e);
}

void HnswBackend::ConnectBack(const Matrix& target, uint32_t node, uint32_t j,
                              int level) {
  const size_t cap = level == 0 ? max_links0_ : max_links_;
  const uint32_t* nbrs = nullptr;
  size_t count = 0;
  NeighborsAt(node, level, &nbrs, &count);
  if (count < cap) {
    if (level == 0) {
      neighbors0_[static_cast<size_t>(node) * max_links0_ + count] = j;
      ++counts0_[node];
    } else {
      std::vector<std::vector<uint32_t>>& levels = upper_[node];
      if (levels.size() < static_cast<size_t>(level)) levels.resize(level);
      levels[level - 1].push_back(j);
    }
    return;
  }
  // Overflow: re-select among existing links + j on node's own cosine scale.
  std::vector<std::pair<float, uint32_t>> candidates;
  candidates.reserve(count + 1);
  for (size_t k = 0; k < count; ++k) {
    candidates.push_back({CosineBetween(target, node, nbrs[k]), nbrs[k]});
  }
  candidates.push_back({CosineBetween(target, node, j), j});
  std::sort(candidates.begin(), candidates.end(), CandidateBetter);
  SelectNeighbors(target, &candidates, cap);
  SetNeighbors(node, level, candidates);
}

void HnswBackend::InsertNode(const Matrix& target, uint32_t j,
                             CandidateScratch* scratch) {
  const int node_level = LevelFor(j);
  if (max_level_ < 0) {
    entry_point_ = j;
    max_level_ = node_level;
    if (node_level > 0) upper_[j].resize(node_level);
    return;
  }
  const float* x = target.Row(j).data();
  uint32_t entry = entry_point_;
  for (int level = max_level_; level > node_level; --level) {
    entry = GreedyDescend(target, x, entry, level);
  }
  std::vector<std::pair<float, uint32_t>> candidates;
  for (int level = std::min(node_level, max_level_); level >= 0; --level) {
    SearchLayer(target, x, entry, ef_construction_, level, scratch);
    candidates.assign(scratch->best.begin(), scratch->best.end());
    // SearchLayer scored on the query-relative scale (inv_norm_j dropped
    // out); rescale to full cosine so the selection heuristic compares
    // candidate-to-query against candidate-to-candidate coherently. The
    // factor is a nonnegative constant per insert, so ordering is unchanged.
    for (auto& [score, e] : candidates) score *= inv_norms_[j];
    std::sort(candidates.begin(), candidates.end(), CandidateBetter);
    entry = candidates.front().second;
    const size_t cap = level == 0 ? max_links0_ : max_links_;
    SelectNeighbors(target, &candidates, cap);
    SetNeighbors(j, level, candidates);
    for (const auto& [score, e] : candidates) {
      ConnectBack(target, e, j, level);
    }
  }
  if (node_level > max_level_) {
    max_level_ = node_level;
    entry_point_ = j;
  }
}

Result<std::unique_ptr<HnswBackend>> HnswBackend::Build(
    const Matrix& target, size_t max_links, size_t ef_construction,
    uint64_t seed) {
  if (target.rows() == 0 || target.cols() == 0) {
    return Status::InvalidArgument("CandidateIndex: empty target embeddings");
  }
  if (max_links < 2 || max_links > 256) {
    return Status::InvalidArgument(
        "CandidateIndex: hnsw_max_links must be in [2, 256]");
  }
  if (ef_construction == 0) {
    return Status::InvalidArgument(
        "CandidateIndex: hnsw_ef_construction must be >= 1");
  }
  auto index = std::unique_ptr<HnswBackend>(new HnswBackend());
  index->dim_ = target.cols();
  index->max_links_ = max_links;
  index->max_links0_ = 2 * max_links;
  index->ef_construction_ = std::max(ef_construction, index->max_links0_);
  index->seed_ = seed;
  index->inv_log_m_ = 1.0 / std::log(static_cast<double>(max_links));
  EM_RETURN_NOT_OK(index->Insert(target, 0));
  return index;
}

Status HnswBackend::Insert(const Matrix& target, size_t first_new_row) {
  if (target.cols() != dim_) {
    return Status::InvalidArgument(
        "CandidateIndex: inserted rows differ in dimension");
  }
  if (first_new_row != num_targets_ || target.rows() < num_targets_) {
    return Status::InvalidArgument(
        "CandidateIndex: Insert expects the previously indexed rows "
        "followed by the appended ones");
  }
  const size_t m_new = target.rows();
  if (m_new > (1ull << 32)) {
    return Status::InvalidArgument(
        "CandidateIndex: more rows than 32-bit target ids can address");
  }
  inv_norms_.resize(m_new, 0.0f);
  counts0_.resize(m_new, 0);
  neighbors0_.resize(m_new * max_links0_, 0);
  for (size_t j = first_new_row; j < m_new; ++j) {
    const float* row = target.Row(j).data();
    double sq = 0.0;
    for (size_t d = 0; d < dim_; ++d) {
      sq += static_cast<double>(row[d]) * static_cast<double>(row[d]);
    }
    const double norm = std::sqrt(sq);
    inv_norms_[j] = norm > 0.0 ? static_cast<float>(1.0 / norm) : 0.0f;
  }
  // Serial ascending insertion: HNSW construction is order-dependent, so a
  // fixed order is what makes builds reproducible and lets incremental
  // Insert equal the from-scratch build.
  CandidateScratch scratch;
  for (size_t j = first_new_row; j < m_new; ++j) {
    num_targets_ = j + 1;
    InsertNode(target, static_cast<uint32_t>(j), &scratch);
  }
  num_targets_ = m_new;
  return Status::OK();
}

void HnswBackend::Collect(const Matrix& target, const float* x,
                          const ProbeParams& params, CandidateScratch* scratch,
                          std::vector<uint32_t>* out) const {
  if (num_targets_ == 0) return;
  const size_t ef = std::max<size_t>(1, params.ef_search);
  uint32_t entry = entry_point_;
  for (int level = max_level_; level > 0; --level) {
    entry = GreedyDescend(target, x, entry, level);
  }
  SearchLayer(target, x, entry, ef, 0, scratch);
  // Heap order is deterministic and the facade reranks with a total order,
  // so no sort is needed here.
  for (const auto& [score, j] : scratch->best) out->push_back(j);
}

CandidateListStats HnswBackend::Stats() const {
  CandidateListStats stats;
  stats.backend = CandidateBackendKind::kHnsw;
  stats.num_lists = static_cast<size_t>(max_level_ + 1);
  stats.num_targets = num_targets_;
  stats.min_list_size = num_targets_;
  double total = 0.0;
  for (size_t j = 0; j < num_targets_; ++j) {
    const size_t degree = counts0_[j];
    stats.min_list_size = std::min(stats.min_list_size, degree);
    stats.max_list_size = std::max(stats.max_list_size, degree);
    total += static_cast<double>(degree);
    size_t bucket = 0;
    for (size_t v = degree; v > 1; v >>= 1) ++bucket;
    if (bucket >= stats.size_histogram.size()) {
      stats.size_histogram.resize(bucket + 1, 0);
    }
    ++stats.size_histogram[bucket];
  }
  stats.mean_list_size =
      num_targets_ > 0 ? total / static_cast<double>(num_targets_) : 0.0;
  return stats;
}

Status HnswBackend::SavePayload(std::ostream& out) const {
  const uint64_t header[8] = {num_targets_,
                              dim_,
                              max_links_,
                              max_links0_,
                              ef_construction_,
                              seed_,
                              entry_point_,
                              static_cast<uint64_t>(max_level_ + 1)};
  out.write(reinterpret_cast<const char*>(header), sizeof(header));
  out.write(reinterpret_cast<const char*>(inv_norms_.data()),
            static_cast<std::streamsize>(inv_norms_.size() * sizeof(float)));
  out.write(reinterpret_cast<const char*>(counts0_.data()),
            static_cast<std::streamsize>(counts0_.size() * sizeof(uint32_t)));
  out.write(reinterpret_cast<const char*>(neighbors0_.data()),
            static_cast<std::streamsize>(neighbors0_.size() *
                                         sizeof(uint32_t)));
  const uint64_t num_upper = upper_.size();
  out.write(reinterpret_cast<const char*>(&num_upper), sizeof(num_upper));
  for (const auto& [node, levels] : upper_) {
    const uint64_t head[2] = {node, levels.size()};
    out.write(reinterpret_cast<const char*>(head), sizeof(head));
    for (const std::vector<uint32_t>& list : levels) {
      const uint64_t count = list.size();
      out.write(reinterpret_cast<const char*>(&count), sizeof(count));
      out.write(reinterpret_cast<const char*>(list.data()),
                static_cast<std::streamsize>(count * sizeof(uint32_t)));
    }
  }
  if (!out) return Status::IoError("index payload write failed");
  return Status::OK();
}

Result<std::unique_ptr<HnswBackend>> HnswBackend::LoadPayload(
    std::istream& in, const std::string& path) {
  uint64_t header[8] = {0};
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  if (!in) return Status::IoError("truncated index header: " + path);
  const uint64_t num_targets = header[0];
  const uint64_t dim = header[1];
  const uint64_t max_links = header[2];
  const uint64_t max_links0 = header[3];
  if (num_targets == 0 || num_targets > (1ull << 32) || dim == 0 ||
      dim > (1ull << 24) || max_links < 2 || max_links > 256 ||
      max_links0 != 2 * max_links || header[4] == 0 ||
      header[7] > static_cast<uint64_t>(kMaxLevel) + 1 || header[7] == 0) {
    return Status::IoError("implausible index shape in: " + path);
  }
  auto index = std::unique_ptr<HnswBackend>(new HnswBackend());
  index->num_targets_ = static_cast<size_t>(num_targets);
  index->dim_ = static_cast<size_t>(dim);
  index->max_links_ = static_cast<size_t>(max_links);
  index->max_links0_ = static_cast<size_t>(max_links0);
  index->ef_construction_ = static_cast<size_t>(header[4]);
  index->seed_ = header[5];
  index->entry_point_ = static_cast<uint32_t>(header[6]);
  index->max_level_ = static_cast<int>(header[7]) - 1;
  index->inv_log_m_ = 1.0 / std::log(static_cast<double>(max_links));
  index->inv_norms_.resize(index->num_targets_);
  in.read(reinterpret_cast<char*>(index->inv_norms_.data()),
          static_cast<std::streamsize>(index->inv_norms_.size() *
                                       sizeof(float)));
  index->counts0_.resize(index->num_targets_);
  in.read(reinterpret_cast<char*>(index->counts0_.data()),
          static_cast<std::streamsize>(index->counts0_.size() *
                                       sizeof(uint32_t)));
  index->neighbors0_.resize(index->num_targets_ * index->max_links0_);
  in.read(reinterpret_cast<char*>(index->neighbors0_.data()),
          static_cast<std::streamsize>(index->neighbors0_.size() *
                                       sizeof(uint32_t)));
  uint64_t num_upper = 0;
  in.read(reinterpret_cast<char*>(&num_upper), sizeof(num_upper));
  if (!in) return Status::IoError("truncated index data: " + path);
  if (num_upper > num_targets) {
    return Status::IoError("corrupt graph layers in: " + path);
  }
  uint64_t prev_node = 0;
  for (uint64_t u = 0; u < num_upper; ++u) {
    uint64_t head[2] = {0, 0};
    in.read(reinterpret_cast<char*>(head), sizeof(head));
    if (!in) return Status::IoError("truncated index data: " + path);
    const uint64_t node = head[0];
    const uint64_t levels = head[1];
    if (node >= num_targets || (u > 0 && node <= prev_node) || levels == 0 ||
        levels > static_cast<uint64_t>(kMaxLevel)) {
      return Status::IoError("corrupt graph layers in: " + path);
    }
    prev_node = node;
    std::vector<std::vector<uint32_t>> lists(levels);
    for (uint64_t l = 0; l < levels; ++l) {
      uint64_t count = 0;
      in.read(reinterpret_cast<char*>(&count), sizeof(count));
      if (!in || count > max_links) {
        return Status::IoError("corrupt graph layers in: " + path);
      }
      lists[l].resize(count);
      in.read(reinterpret_cast<char*>(lists[l].data()),
              static_cast<std::streamsize>(count * sizeof(uint32_t)));
      if (!in) return Status::IoError("truncated index data: " + path);
    }
    index->upper_[static_cast<uint32_t>(node)] = std::move(lists);
  }
  if (EM_FAULT_FIRED("index.load.corrupt")) {
    // Chaos point: flip a high bit in the entry point so the validation
    // below must catch in-memory corruption, not just truncation.
    index->entry_point_ ^= 0x80000000u;
  }
  if (index->entry_point_ >= index->num_targets_) {
    return Status::IoError("corrupt graph entry point in: " + path);
  }
  for (size_t j = 0; j < index->num_targets_; ++j) {
    if (index->counts0_[j] > index->max_links0_) {
      return Status::IoError("corrupt graph degrees in: " + path);
    }
    const uint32_t* slot =
        index->neighbors0_.data() + j * index->max_links0_;
    for (uint32_t k = 0; k < index->counts0_[j]; ++k) {
      if (slot[k] >= index->num_targets_) {
        return Status::IoError("corrupt graph links in: " + path);
      }
    }
  }
  for (const auto& [node, levels] : index->upper_) {
    for (const std::vector<uint32_t>& list : levels) {
      for (uint32_t id : list) {
        if (id >= index->num_targets_) {
          return Status::IoError("corrupt graph links in: " + path);
        }
      }
    }
  }
  return index;
}

}  // namespace entmatcher
