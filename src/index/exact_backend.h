#ifndef ENTMATCHER_INDEX_EXACT_BACKEND_H_
#define ENTMATCHER_INDEX_EXACT_BACKEND_H_

#include <cstdint>
#include <istream>
#include <memory>
#include <string>

#include "common/status.h"
#include "index/backend.h"

namespace entmatcher {

/// Exhaustive candidate backend: every target is a candidate, so coverage is
/// exact and recall@c is 1.0 by construction. It turns the sparse pipeline
/// into a brute-force top-c scan — O(n·m) score evaluations but still
/// O(n·c) workspace — which makes it the ground-truth baseline the
/// approximate backends (and their parity tests) are measured against, and a
/// sensible choice for pairs small enough that probe overhead exceeds the
/// scan.
class ExactBackend final : public CandidateBackend {
 public:
  static Result<std::unique_ptr<ExactBackend>> Build(const Matrix& target);
  static Result<std::unique_ptr<ExactBackend>> LoadPayload(
      std::istream& in, const std::string& path);

  CandidateBackendKind kind() const override {
    return CandidateBackendKind::kExact;
  }
  size_t num_targets() const override { return num_targets_; }
  size_t dim() const override { return dim_; }

  void Collect(const Matrix& target, const float* x, const ProbeParams& params,
               CandidateScratch* scratch,
               std::vector<uint32_t>* out) const override;

  Status Insert(const Matrix& target, size_t first_new_row) override;

  CandidateListStats Stats() const override;
  Status SavePayload(std::ostream& out) const override;

 private:
  ExactBackend() = default;

  size_t num_targets_ = 0;
  size_t dim_ = 0;
};

}  // namespace entmatcher

#endif  // ENTMATCHER_INDEX_EXACT_BACKEND_H_
