#ifndef ENTMATCHER_INDEX_IVF_BACKEND_H_
#define ENTMATCHER_INDEX_IVF_BACKEND_H_

#include <cstdint>
#include <istream>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "index/backend.h"
#include "la/matrix.h"

namespace entmatcher {

/// IVF candidate backend: a cosine k-means coarse quantizer (the
/// partitioner's k-means, shared via la/kmeans) whose cells become inverted
/// lists of target ids. A query probes the `nprobe` nearest cells by centroid
/// dot product; the facade exact-reranks every member. Stores O(L·d + m)
/// bytes: centroids and id lists only.
class IvfBackend final : public CandidateBackend {
 public:
  /// Builds the quantizer and inverted lists over `target` (m×d).
  /// `num_lists` 0 = auto: ~sqrt(m).
  static Result<std::unique_ptr<IvfBackend>> Build(const Matrix& target,
                                                   size_t num_lists,
                                                   size_t kmeans_iterations,
                                                   uint64_t seed);

  /// Deserializes the EIDX2 body (also the whole-body reader for legacy
  /// EIDX1 files, whose payload layout is identical).
  static Result<std::unique_ptr<IvfBackend>> LoadPayload(
      std::istream& in, const std::string& path);

  CandidateBackendKind kind() const override {
    return CandidateBackendKind::kIvf;
  }
  size_t num_targets() const override { return num_targets_; }
  size_t dim() const override { return dim_; }

  size_t num_lists() const { return list_offsets_.size() - 1; }

  /// Target ids of one inverted list, ascending.
  std::span<const uint32_t> List(size_t l) const {
    return std::span<const uint32_t>(
        list_ids_.data() + list_offsets_[l],
        list_offsets_[l + 1] - list_offsets_[l]);
  }

  /// Ranks every inverted list by centroid dot product with `x` and appends
  /// the ids of the `nprobe` best to `probed`, best-first (ties: lower list
  /// id). The dot runs on the scalar loop at every kernel tier: probe
  /// selection — and with it candidate coverage — must never depend on
  /// EM_KERNEL_TIER.
  void ProbeLists(const float* x, size_t nprobe,
                  std::vector<std::pair<float, uint32_t>>* scratch,
                  std::vector<uint32_t>* probed) const;

  void Collect(const Matrix& target, const float* x, const ProbeParams& params,
               CandidateScratch* scratch,
               std::vector<uint32_t>* out) const override;

  /// Assigns each appended row to its nearest centroid (the quantizer is not
  /// re-trained — cells only grow, exactly like an IVF "add" in production).
  /// New ids exceed every existing id, so appending them at list tails keeps
  /// every list ascending.
  Status Insert(const Matrix& target, size_t first_new_row) override;

  CandidateListStats Stats() const override;
  Status SavePayload(std::ostream& out) const override;

  /// Writes the whole index in the legacy EIDX1 container (magic + v1 header
  /// + body) so the EIDX1 compatibility path stays testable from current
  /// builds.
  Status SaveLegacyEidx1(const std::string& path) const;

 private:
  IvfBackend() = default;

  Matrix centroids_;                    // L × d, rows L2-normalized
  std::vector<uint64_t> list_offsets_;  // L + 1
  std::vector<uint32_t> list_ids_;      // m target ids, ascending per list
  size_t num_targets_ = 0;
  size_t dim_ = 0;
};

}  // namespace entmatcher

#endif  // ENTMATCHER_INDEX_IVF_BACKEND_H_
