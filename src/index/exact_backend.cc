#include "index/exact_backend.h"

namespace entmatcher {

Result<std::unique_ptr<ExactBackend>> ExactBackend::Build(
    const Matrix& target) {
  if (target.rows() == 0 || target.cols() == 0) {
    return Status::InvalidArgument("CandidateIndex: empty target embeddings");
  }
  auto index = std::unique_ptr<ExactBackend>(new ExactBackend());
  index->num_targets_ = target.rows();
  index->dim_ = target.cols();
  return index;
}

void ExactBackend::Collect(const Matrix& target, const float* x,
                           const ProbeParams& params,
                           CandidateScratch* scratch,
                           std::vector<uint32_t>* out) const {
  (void)target;
  (void)x;
  (void)params;
  (void)scratch;
  out->reserve(out->size() + num_targets_);
  for (size_t j = 0; j < num_targets_; ++j) {
    out->push_back(static_cast<uint32_t>(j));
  }
}

Status ExactBackend::Insert(const Matrix& target, size_t first_new_row) {
  if (target.cols() != dim_) {
    return Status::InvalidArgument(
        "CandidateIndex: inserted rows differ in dimension");
  }
  if (first_new_row != num_targets_ || target.rows() < num_targets_) {
    return Status::InvalidArgument(
        "CandidateIndex: Insert expects the previously indexed rows "
        "followed by the appended ones");
  }
  num_targets_ = target.rows();
  return Status::OK();
}

CandidateListStats ExactBackend::Stats() const {
  CandidateListStats stats;
  stats.backend = CandidateBackendKind::kExact;
  stats.num_lists = 1;
  stats.num_targets = num_targets_;
  stats.min_list_size = num_targets_;
  stats.max_list_size = num_targets_;
  stats.mean_list_size = static_cast<double>(num_targets_);
  size_t bucket = 0;
  for (size_t v = num_targets_; v > 1; v >>= 1) ++bucket;
  stats.size_histogram.assign(bucket + 1, 0);
  stats.size_histogram[bucket] = 1;
  return stats;
}

Status ExactBackend::SavePayload(std::ostream& out) const {
  const uint64_t header[2] = {num_targets_, dim_};
  out.write(reinterpret_cast<const char*>(header), sizeof(header));
  if (!out) return Status::IoError("index payload write failed");
  return Status::OK();
}

Result<std::unique_ptr<ExactBackend>> ExactBackend::LoadPayload(
    std::istream& in, const std::string& path) {
  uint64_t header[2] = {0, 0};
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  if (!in) return Status::IoError("truncated index header: " + path);
  if (header[0] == 0 || header[0] > (1ull << 32) || header[1] == 0 ||
      header[1] > (1ull << 24)) {
    return Status::IoError("implausible index shape in: " + path);
  }
  auto index = std::unique_ptr<ExactBackend>(new ExactBackend());
  index->num_targets_ = static_cast<size_t>(header[0]);
  index->dim_ = static_cast<size_t>(header[1]);
  return index;
}

}  // namespace entmatcher
