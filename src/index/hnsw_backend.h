#ifndef ENTMATCHER_INDEX_HNSW_BACKEND_H_
#define ENTMATCHER_INDEX_HNSW_BACKEND_H_

#include <cstdint>
#include <istream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "index/backend.h"
#include "la/matrix.h"

namespace entmatcher {

/// HNSW candidate backend: a hierarchical navigable-small-world graph over
/// the target rows (Malkov & Yashunin), built from scratch with no external
/// dependency. A query greedily descends the sparse upper layers to a good
/// entry point, then runs an `ef_search`-wide beam search over the dense
/// layer 0; the facade exact-reranks everything the beam kept, so — exactly
/// like IVF — only candidate *coverage* is approximate and every emitted
/// sparse entry is bit-identical to its dense score cell.
///
/// Graph navigation orders nodes by cosine (scalar dot × stored inverse
/// norm; the query's own norm cannot change the ordering), matching the IVF
/// probe geometry. For the euclidean/manhattan metrics the graph is a
/// cosine-proxy candidate generator, again mirroring IVF's centroid probes;
/// the rerank always uses the exact metric.
///
/// Determinism: the level of node id is a pure hash of (seed, id), nodes are
/// inserted in ascending id order, and every score tie resolves by lower id.
/// Two consequences the tests pin down: (a) builds are bit-reproducible
/// given the seed, and (b) Build(n rows) followed by Insert of k appended
/// rows replays the exact insertion sequence of Build(n + k) and therefore
/// produces the *identical* graph, not merely one of equal recall.
///
/// Storage is O(m · 2M) link slots plus one float norm per row; the target
/// matrix itself is never retained, so the backend works unchanged over an
/// mmap-backed embedding store.
class HnswBackend final : public CandidateBackend {
 public:
  static constexpr int kMaxLevel = 24;

  /// Builds the graph over `target` (m×d). `max_links` is the paper's M
  /// (layer-0 lists hold up to 2M); `ef_construction` is the build-time beam
  /// width, clamped up to 2M internally so new nodes always see enough
  /// neighbors to fill their lists.
  static Result<std::unique_ptr<HnswBackend>> Build(const Matrix& target,
                                                    size_t max_links,
                                                    size_t ef_construction,
                                                    uint64_t seed);

  static Result<std::unique_ptr<HnswBackend>> LoadPayload(
      std::istream& in, const std::string& path);

  CandidateBackendKind kind() const override {
    return CandidateBackendKind::kHnsw;
  }
  size_t num_targets() const override { return num_targets_; }
  size_t dim() const override { return dim_; }
  size_t max_links() const { return max_links_; }
  size_t ef_construction() const { return ef_construction_; }
  int max_level() const { return max_level_; }

  void Collect(const Matrix& target, const float* x, const ProbeParams& params,
               CandidateScratch* scratch,
               std::vector<uint32_t>* out) const override;

  Status Insert(const Matrix& target, size_t first_new_row) override;

  /// Stats over the layer-0 adjacency: num_lists = layer count, list sizes =
  /// out-degrees.
  CandidateListStats Stats() const override;
  Status SavePayload(std::ostream& out) const override;

 private:
  HnswBackend() = default;

  /// Seeded level assignment: a pure function of (seed, id) with the usual
  /// geometric distribution (p = 1/M per extra level). Making it
  /// id-addressed rather than sequence-addressed is what makes incremental
  /// Insert replay the full build exactly.
  int LevelFor(uint32_t id) const;

  /// Cosine ordering score of stored node `j` against query vector `x`:
  /// dot(x, row_j) · inv_norm_j on the plain scalar loop — candidate
  /// coverage must never depend on EM_KERNEL_TIER.
  float ScoreAgainst(const Matrix& target, const float* x, uint32_t j) const;

  /// Full cosine between stored nodes (both inverse norms applied) — the
  /// scale the selection heuristic compares cross-pair.
  float CosineBetween(const Matrix& target, uint32_t a, uint32_t b) const;

  void NeighborsAt(uint32_t node, int level, const uint32_t** ids,
                   size_t* count) const;

  /// Greedy hill-climb at `level`: repeatedly hop to the best-scoring
  /// neighbor until no neighbor improves on the current node.
  uint32_t GreedyDescend(const Matrix& target, const float* x, uint32_t entry,
                         int level) const;

  /// Beam search at `level`: leaves the kept (score, id) pairs in
  /// scratch->best (heap order; callers sort or drain as needed).
  void SearchLayer(const Matrix& target, const float* x, uint32_t entry,
                   size_t ef, int level, CandidateScratch* scratch) const;

  /// Heuristic neighbor selection (HNSW paper Alg. 4 with pruned-candidate
  /// backfill): keeps candidates closer to the query than to anything
  /// already selected, which preserves graph connectivity across clusters.
  /// `candidates` must be sorted best-first on the full-cosine scale;
  /// shrunk in place to at most `cap` entries.
  void SelectNeighbors(const Matrix& target,
                       std::vector<std::pair<float, uint32_t>>* candidates,
                       size_t cap) const;

  /// Adds the back-edge node→j, re-selecting node's list when it overflows.
  void ConnectBack(const Matrix& target, uint32_t node, uint32_t j, int level);

  void SetNeighbors(uint32_t node, int level,
                    const std::vector<std::pair<float, uint32_t>>& selected);

  void InsertNode(const Matrix& target, uint32_t j, CandidateScratch* scratch);

  size_t num_targets_ = 0;
  size_t dim_ = 0;
  size_t max_links_ = 16;       // M: per-list cap on layers >= 1
  size_t max_links0_ = 32;      // 2M: layer-0 cap
  size_t ef_construction_ = 64;
  uint64_t seed_ = 13;
  double inv_log_m_ = 0.0;      // 1 / ln(M), the level-assignment scale
  uint32_t entry_point_ = 0;
  int max_level_ = -1;          // -1 = empty graph
  std::vector<float> inv_norms_;     // m; 0 for zero rows
  std::vector<uint32_t> counts0_;    // m layer-0 out-degrees
  std::vector<uint32_t> neighbors0_; // m × max_links0_ layer-0 link slots
  /// Upper-layer adjacency, only for the ~m/M nodes with level >= 1:
  /// node id → per-level neighbor lists (index l-1 = level l). An ordered
  /// map so serialization and iteration are deterministic.
  std::map<uint32_t, std::vector<std::vector<uint32_t>>> upper_;
};

}  // namespace entmatcher

#endif  // ENTMATCHER_INDEX_HNSW_BACKEND_H_
