#include "index/quantized_candidates.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "index/candidate_index.h"

namespace entmatcher {

Status FillQuantizedSparseScores(const Matrix& source, const Matrix& target,
                                 const QuantizedMatrix& qsource,
                                 const QuantizedMatrix& qtarget,
                                 SimilarityMetric metric,
                                 const SimilarityCache& cache,
                                 size_t num_candidates,
                                 const CandidateIndex* index,
                                 const ProbeParams& params,
                                 SparseScores* out) {
  if (metric == SimilarityMetric::kNegManhattan) {
    return Status::InvalidArgument(
        "quantized candidates: manhattan has no quantized surrogate");
  }
  if (num_candidates == 0) {
    return Status::InvalidArgument(
        "quantized candidates: num_candidates must be >= 1");
  }
  if (qsource.precision() != qtarget.precision()) {
    return Status::InvalidArgument(
        "quantized candidates: source/target precisions differ");
  }
  const size_t n = source.rows();
  const size_t m = target.rows();
  if (qsource.rows() != n || qsource.cols() != source.cols() ||
      qtarget.rows() != m || qtarget.cols() != target.cols()) {
    return Status::InvalidArgument(
        "quantized candidates: quantized shape does not match embeddings");
  }
  if (index != nullptr) {
    if (index->num_targets() != m || index->dim() != source.cols()) {
      return Status::InvalidArgument(
          "quantized candidates: index does not match the embeddings");
    }
    if (index->backend() == CandidateBackendKind::kIvf &&
        params.nprobe == 0) {
      return Status::InvalidArgument(
          "quantized candidates: nprobe must be >= 1");
    }
    if (index->backend() == CandidateBackendKind::kHnsw &&
        params.ef_search == 0) {
      return Status::InvalidArgument(
          "quantized candidates: ef_search must be >= 1");
    }
  }
  const size_t stride = std::min(num_candidates, m);
  if (out->rows() != n || out->cols() != m) {
    return Status::InvalidArgument(
        "quantized candidates: output shape mismatch");
  }
  if (out->capacity() < n * stride) {
    return Status::InvalidArgument(
        "quantized candidates: output capacity below rows * candidates");
  }

  // The surrogate only has to *order* targets, so per-row constants drop
  // out: cosine ranks by qdot * inv_target_norm (the source inverse norm is
  // a positive per-row factor), euclidean by 2*qdot - ||t||^2 (monotone in
  // the negated squared distance).
  const bool cosine = metric == SimilarityMetric::kCosine;

  // Same beam widening as the facade: the HNSW backend never proposes more
  // than ef candidates, so the requested top-c must fit inside the beam.
  ProbeParams effective = params;
  effective.ef_search = std::max(effective.ef_search, stride);

  // Phase 1 (parallel, deterministic): each row pre-ranks, reranks exactly,
  // and writes its candidates into a private stride-aligned slot — the same
  // two-phase layout as CandidateIndex::FillSparseScores.
  std::vector<size_t> count(n, 0);
  float* values = out->values();
  uint32_t* cols = out->col_indices();
  ParallelFor(0, n, 16, [&](size_t begin, size_t end) {
    CandidateScratch scratch;
    std::vector<uint32_t> collected;
    std::vector<std::pair<float, uint32_t>> candidates;
    for (size_t i = begin; i < end; ++i) {
      const auto surrogate = [&](uint32_t j) {
        const float q = QuantizedDot(qsource, i, qtarget, j);
        return cosine ? q * cache.inv_target_norms[j]
                      : 2.0f * q - static_cast<float>(cache.target_sq_norms[j]);
      };
      candidates.clear();
      if (index != nullptr) {
        collected.clear();
        index->CollectCandidates(target, source.Row(i).data(), effective,
                                 &scratch, &collected);
        for (uint32_t j : collected) {
          candidates.emplace_back(surrogate(j), j);
        }
      } else {
        for (size_t j = 0; j < m; ++j) {
          candidates.emplace_back(surrogate(static_cast<uint32_t>(j)),
                                  static_cast<uint32_t>(j));
        }
      }
      const size_t keep = std::min(stride, candidates.size());
      std::partial_sort(candidates.begin(), candidates.begin() + keep,
                        candidates.end(), CandidateBetter);
      candidates.resize(keep);
      // Exact rerank: replace every surrogate with the float score, so the
      // emitted entries are bit-identical to their dense cells.
      for (auto& [score, j] : candidates) {
        score = PairSimilarity(source, target, i, j, metric, cache);
      }
      // Column-ascending storage: CSR entry order == dense cell order.
      std::sort(candidates.begin(), candidates.end(),
                [](const std::pair<float, uint32_t>& a,
                   const std::pair<float, uint32_t>& b) {
                  return a.second < b.second;
                });
      for (size_t e = 0; e < keep; ++e) {
        values[i * stride + e] = candidates[e].first;
        cols[i * stride + e] = candidates[e].second;
      }
      count[i] = keep;
    }
  });

  // Phase 2 (serial): offsets, then left-pack the strided slots into
  // contiguous CSR order. Destinations never pass sources, so the in-place
  // forward copy is safe.
  std::vector<size_t>& offsets = out->mutable_row_offsets();
  offsets.assign(n + 1, 0);
  for (size_t i = 0; i < n; ++i) offsets[i + 1] = offsets[i] + count[i];
  for (size_t i = 0; i < n; ++i) {
    const size_t src = i * stride;
    const size_t dst = offsets[i];
    if (src == dst) continue;
    for (size_t e = 0; e < count[i]; ++e) {
      values[dst + e] = values[src + e];
      cols[dst + e] = cols[src + e];
    }
  }
  return Status::OK();
}

}  // namespace entmatcher
