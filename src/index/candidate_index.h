#ifndef ENTMATCHER_INDEX_CANDIDATE_INDEX_H_
#define ENTMATCHER_INDEX_CANDIDATE_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "index/backend.h"
#include "la/matrix.h"
#include "la/similarity.h"
#include "la/sparse.h"

namespace entmatcher {

/// Options for building a CandidateIndex.
struct CandidateIndexOptions {
  /// Which candidate-generation strategy to build (exact | IVF | HNSW).
  CandidateBackendKind backend = CandidateBackendKind::kIvf;
  /// IVF: number of inverted lists (k-means cells). 0 = auto: ~sqrt(m).
  size_t num_lists = 0;
  /// IVF: k-means iterations for the coarse quantizer.
  size_t kmeans_iterations = 10;
  /// Seed for centroid initialization (IVF) / level assignment (HNSW).
  uint64_t seed = 13;
  /// HNSW: per-node link budget M (layer 0 holds up to 2M).
  size_t hnsw_max_links = 16;
  /// HNSW: build-time beam width (clamped up to 2M internally).
  size_t hnsw_ef_construction = 64;
};

/// Approximate candidate-generation index over target embeddings — the
/// facade in front of the pluggable CandidateBackend strategies (exact
/// scan | IVF inverted lists | HNSW graph; see index/backend.h).
///
/// Whatever the backend, the pipeline shape is identical: the backend
/// proposes candidate target ids for each source row, this facade scores
/// every proposal with the *exact* pairwise metric kernel and keeps the
/// top-`c` per row — so the sparse entries it emits are bit-identical to the
/// corresponding dense score cells, and only coverage (which targets get
/// proposed) is approximate. That is what lets the sparse pipeline promise
/// "bit-identical to dense when candidate lists are complete".
///
/// Backends store only their navigation structure (O(L·d + m) for IVF,
/// O(m·2M) links for HNSW); none retains the target matrix, which callers
/// pass back in at query time — including a Matrix borrowed from an
/// mmap-backed MmapStore, which is how million-row pairs run out-of-core.
class CandidateIndex {
 public:
  /// Builds the selected backend over `target` (m×d).
  static Result<CandidateIndex> Build(const Matrix& target,
                                      const CandidateIndexOptions& options);

  CandidateBackendKind backend() const { return backend_->kind(); }
  size_t num_targets() const { return backend_->num_targets(); }
  size_t dim() const { return backend_->dim(); }

  /// IVF only: number of inverted lists (0 for other backends).
  size_t num_lists() const;

  /// IVF only: target ids of one inverted list, ascending.
  std::span<const uint32_t> List(size_t l) const;

  /// IVF only: ranks every inverted list by centroid dot product with `x`
  /// (dim() floats) and appends the ids of the `nprobe` best to `probed`,
  /// best-first (ties: lower list id). `scratch` is caller-owned so row
  /// loops can reuse one allocation. The dot runs on the scalar loop at
  /// every kernel tier: probe selection — and with it candidate coverage —
  /// must never depend on EM_KERNEL_TIER.
  void ProbeLists(const float* x, size_t nprobe,
                  std::vector<std::pair<float, uint32_t>>* scratch,
                  std::vector<uint32_t>* probed) const;

  CandidateListStats Stats() const { return backend_->Stats(); }

  /// The probe stage alone: appends the backend's candidate ids for query
  /// vector `x` to `out` (no rerank). `out->size()` afterward is exactly the
  /// number of exact-rerank comparisons FillSparseScores would spend on this
  /// row — the currency bench_ann trades recall against.
  void CollectCandidates(const Matrix& target, const float* x,
                         const ProbeParams& params, CandidateScratch* scratch,
                         std::vector<uint32_t>* out) const {
    backend_->Collect(target, x, params, scratch, out);
  }

  /// Incrementally indexes rows appended to a grown target matrix (rows
  /// [num_targets(), target.rows())). Backends reproduce the from-scratch
  /// build exactly: Build(n rows) + Insert of k appended rows equals
  /// Build(n + k) under the same seed.
  Status Insert(const Matrix& target) {
    return backend_->Insert(target, backend_->num_targets());
  }

  /// Fills `out` with the top-`num_candidates` exact scores per source row,
  /// restricted to the candidates the backend proposes under `params` (the
  /// HNSW beam is widened to at least num_candidates so the kept set is
  /// never starved). `out` must be shaped (source.rows() × num_targets())
  /// with capacity for at least source.rows() * min(num_candidates,
  /// num_targets()) entries; `target` and `cache` must be the
  /// embeddings/cache the scores are defined over. Entries come out
  /// column-ascending per row (CSR invariant). Rows are processed
  /// independently with deterministic static chunking, so the result is
  /// bit-identical at every thread count.
  Status FillSparseScores(const Matrix& source, const Matrix& target,
                          SimilarityMetric metric,
                          const SimilarityCache& cache, size_t num_candidates,
                          const ProbeParams& params, SparseScores* out) const;

  /// Back-compat shim: probes `nprobe` lists with the default HNSW beam.
  Status FillSparseScores(const Matrix& source, const Matrix& target,
                          SimilarityMetric metric,
                          const SimilarityCache& cache, size_t num_candidates,
                          size_t nprobe, SparseScores* out) const {
    ProbeParams params;
    params.nprobe = nprobe;
    return FillSparseScores(source, target, metric, cache, num_candidates,
                            params, out);
  }

  /// Convenience wrapper: builds the cache and an owned SparseScores.
  Result<SparseScores> SparseSimilarity(const Matrix& source,
                                        const Matrix& target,
                                        SimilarityMetric metric,
                                        size_t num_candidates,
                                        size_t nprobe) const;

  /// On-disk round trip. Save writes EIDX2 ("EIDX" magic, version 2, one
  /// backend tag byte, backend payload); Load also accepts legacy EIDX1
  /// files, which predate the tag byte and are always IVF.
  Status Save(const std::string& path) const;
  static Result<CandidateIndex> Load(const std::string& path);

  /// Writes the legacy EIDX1 container (IVF only) so the EIDX1
  /// compatibility path stays testable from current builds.
  Status SaveAsEidx1(const std::string& path) const;

 private:
  explicit CandidateIndex(std::unique_ptr<CandidateBackend> backend)
      : backend_(std::move(backend)) {}

  std::unique_ptr<CandidateBackend> backend_;
};

}  // namespace entmatcher

#endif  // ENTMATCHER_INDEX_CANDIDATE_INDEX_H_
