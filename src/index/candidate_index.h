#ifndef ENTMATCHER_INDEX_CANDIDATE_INDEX_H_
#define ENTMATCHER_INDEX_CANDIDATE_INDEX_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "la/matrix.h"
#include "la/similarity.h"
#include "la/sparse.h"

namespace entmatcher {

/// Options for building a CandidateIndex.
struct CandidateIndexOptions {
  /// Number of inverted lists (k-means cells). 0 = auto: ~sqrt(num_targets).
  size_t num_lists = 0;
  /// k-means iterations for the coarse quantizer.
  size_t kmeans_iterations = 10;
  /// Seed for centroid initialization.
  uint64_t seed = 13;
};

/// Inverted-list occupancy of a built index — skewed lists mean skewed probe
/// cost, the same pathology the partition histogram exposes.
struct CandidateListStats {
  size_t num_lists = 0;
  size_t num_targets = 0;
  size_t min_list_size = 0;
  size_t max_list_size = 0;
  double mean_list_size = 0.0;
  /// Log2-bucketed list sizes: bucket b counts lists of size in
  /// [2^b, 2^(b+1)); empty lists land in bucket 0.
  std::vector<size_t> size_histogram;
};

/// IVF-style approximate candidate-generation index over target embeddings:
/// a cosine k-means coarse quantizer (the partitioner's k-means, shared via
/// la/kmeans) whose cells become inverted lists of target ids. A query probes
/// the `nprobe` nearest cells by centroid dot product, scores every member
/// with the *exact* pairwise metric kernel, and keeps the top-`c` candidates
/// per source row — so the sparse entries it emits are bit-identical to the
/// corresponding dense score cells, and only coverage (which cells exist) is
/// approximate. That is what lets the sparse pipeline promise "bit-identical
/// to dense when candidate lists are complete".
///
/// The index stores only centroids and id lists (O(L·d + m)); it does not
/// retain the target matrix, which callers pass back in at query time.
class CandidateIndex {
 public:
  /// Builds the quantizer and inverted lists over `target` (m×d).
  static Result<CandidateIndex> Build(const Matrix& target,
                                      const CandidateIndexOptions& options);

  size_t num_targets() const { return num_targets_; }
  size_t dim() const { return dim_; }
  size_t num_lists() const { return list_offsets_.size() - 1; }

  /// Target ids of one inverted list, ascending.
  std::span<const uint32_t> List(size_t l) const {
    return std::span<const uint32_t>(
        list_ids_.data() + list_offsets_[l],
        list_offsets_[l + 1] - list_offsets_[l]);
  }

  CandidateListStats Stats() const;

  /// Ranks every inverted list by centroid dot product with `x` (dim()
  /// floats) and appends the ids of the `nprobe` best to `probed`,
  /// best-first (ties: lower list id). `scratch` is caller-owned so row
  /// loops can reuse one allocation. The dot runs on the scalar loop at
  /// every kernel tier: probe selection — and with it candidate coverage —
  /// must never depend on EM_KERNEL_TIER.
  void ProbeLists(const float* x, size_t nprobe,
                  std::vector<std::pair<float, uint32_t>>* scratch,
                  std::vector<uint32_t>* probed) const;

  /// Fills `out` with the top-`num_candidates` exact scores per source row,
  /// restricted to targets found in the `nprobe` nearest lists. `out` must
  /// be shaped (source.rows() × num_targets()) with capacity for at least
  /// source.rows() * min(num_candidates, num_targets()) entries; `target`
  /// and `cache` must be the embeddings/cache the scores are defined over.
  /// Entries come out column-ascending per row (CSR invariant). Rows are
  /// processed independently with deterministic static chunking, so the
  /// result is bit-identical at every thread count.
  Status FillSparseScores(const Matrix& source, const Matrix& target,
                          SimilarityMetric metric,
                          const SimilarityCache& cache, size_t num_candidates,
                          size_t nprobe, SparseScores* out) const;

  /// Convenience wrapper: builds the cache and an owned SparseScores.
  Result<SparseScores> SparseSimilarity(const Matrix& source,
                                        const Matrix& target,
                                        SimilarityMetric metric,
                                        size_t num_candidates,
                                        size_t nprobe) const;

  /// On-disk round trip ("EIDX" binary: header, centroids, lists).
  Status Save(const std::string& path) const;
  static Result<CandidateIndex> Load(const std::string& path);

 private:
  CandidateIndex() = default;

  Matrix centroids_;                   // L × d, rows L2-normalized
  std::vector<uint64_t> list_offsets_; // L + 1
  std::vector<uint32_t> list_ids_;     // m target ids, ascending per list
  size_t num_targets_ = 0;
  size_t dim_ = 0;
};

}  // namespace entmatcher

#endif  // ENTMATCHER_INDEX_CANDIDATE_INDEX_H_
