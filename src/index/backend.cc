#include "index/backend.h"

namespace entmatcher {

const char* CandidateBackendName(CandidateBackendKind kind) {
  switch (kind) {
    case CandidateBackendKind::kExact:
      return "exact";
    case CandidateBackendKind::kIvf:
      return "ivf";
    case CandidateBackendKind::kHnsw:
      return "hnsw";
  }
  return "?";
}

Result<CandidateBackendKind> ParseCandidateBackend(const std::string& name) {
  if (name == "exact") return CandidateBackendKind::kExact;
  if (name == "ivf") return CandidateBackendKind::kIvf;
  if (name == "hnsw") return CandidateBackendKind::kHnsw;
  return Status::InvalidArgument("unknown candidate backend: " + name +
                                 " (expected exact | ivf | hnsw)");
}

}  // namespace entmatcher
