#include "index/candidate_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/fault.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "la/kmeans.h"

namespace entmatcher {

namespace {

constexpr char kMagic[4] = {'E', 'I', 'D', 'X'};
constexpr uint64_t kFormatVersion = 1;

// (score desc, id asc): a total order, so partial_sort is deterministic and
// the kept candidate set matches the dense argmax convention (lowest index
// wins ties).
bool BetterCandidate(const std::pair<float, uint32_t>& a,
                     const std::pair<float, uint32_t>& b) {
  if (a.first != b.first) return a.first > b.first;
  return a.second < b.second;
}

}  // namespace

Result<CandidateIndex> CandidateIndex::Build(
    const Matrix& target, const CandidateIndexOptions& options) {
  if (target.rows() == 0 || target.cols() == 0) {
    return Status::InvalidArgument("CandidateIndex: empty target embeddings");
  }
  if (options.kmeans_iterations == 0) {
    return Status::InvalidArgument(
        "CandidateIndex: kmeans_iterations must be >= 1");
  }
  const size_t m = target.rows();
  size_t num_lists = options.num_lists;
  if (num_lists == 0) {
    // IVF rule of thumb: ~sqrt(m) cells balances probe cost against list
    // scan cost.
    num_lists = static_cast<size_t>(std::lround(std::sqrt(
        static_cast<double>(m))));
  }
  num_lists = std::max<size_t>(1, std::min(num_lists, m));

  Rng rng(options.seed);
  KMeansResult kmeans =
      CosineKMeans(target, num_lists, options.kmeans_iterations, &rng);

  CandidateIndex index;
  index.num_targets_ = m;
  index.dim_ = target.cols();
  index.centroids_ = std::move(kmeans.centroids);

  // Counting sort into inverted lists; scanning target ids in ascending
  // order keeps every list ascending, which FillSparseScores relies on.
  index.list_offsets_.assign(num_lists + 1, 0);
  for (uint32_t c : kmeans.assignment) ++index.list_offsets_[c + 1];
  for (size_t l = 0; l < num_lists; ++l) {
    index.list_offsets_[l + 1] += index.list_offsets_[l];
  }
  index.list_ids_.resize(m);
  std::vector<uint64_t> cursor(index.list_offsets_.begin(),
                               index.list_offsets_.end() - 1);
  for (size_t j = 0; j < m; ++j) {
    index.list_ids_[cursor[kmeans.assignment[j]]++] =
        static_cast<uint32_t>(j);
  }
  return index;
}

CandidateListStats CandidateIndex::Stats() const {
  CandidateListStats stats;
  stats.num_lists = num_lists();
  stats.num_targets = num_targets_;
  stats.min_list_size = num_targets_;
  for (size_t l = 0; l < stats.num_lists; ++l) {
    const size_t size =
        static_cast<size_t>(list_offsets_[l + 1] - list_offsets_[l]);
    stats.min_list_size = std::min(stats.min_list_size, size);
    stats.max_list_size = std::max(stats.max_list_size, size);
    size_t bucket = 0;
    for (size_t v = size; v > 1; v >>= 1) ++bucket;
    if (bucket >= stats.size_histogram.size()) {
      stats.size_histogram.resize(bucket + 1, 0);
    }
    ++stats.size_histogram[bucket];
  }
  stats.mean_list_size = stats.num_lists > 0
                             ? static_cast<double>(num_targets_) /
                                   static_cast<double>(stats.num_lists)
                             : 0.0;
  return stats;
}

void CandidateIndex::ProbeLists(
    const float* x, size_t nprobe,
    std::vector<std::pair<float, uint32_t>>* scratch,
    std::vector<uint32_t>* probed) const {
  const size_t lists = num_lists();
  const size_t probes = std::min(nprobe, lists);
  scratch->resize(lists);
  // Rank cells by centroid dot product. Centroids are unit-norm, so the
  // query's own norm cannot change the ordering.
  for (size_t l = 0; l < lists; ++l) {
    const float* mu = centroids_.Row(l).data();
    float dot = 0.0f;
    for (size_t d = 0; d < dim_; ++d) dot += x[d] * mu[d];
    (*scratch)[l] = {dot, static_cast<uint32_t>(l)};
  }
  std::partial_sort(scratch->begin(), scratch->begin() + probes,
                    scratch->end(), BetterCandidate);
  for (size_t p = 0; p < probes; ++p) probed->push_back((*scratch)[p].second);
}

Status CandidateIndex::FillSparseScores(const Matrix& source,
                                        const Matrix& target,
                                        SimilarityMetric metric,
                                        const SimilarityCache& cache,
                                        size_t num_candidates, size_t nprobe,
                                        SparseScores* out) const {
  if (source.cols() != dim_) {
    return Status::InvalidArgument(
        "CandidateIndex: source dim differs from the indexed embeddings");
  }
  if (target.rows() != num_targets_ || target.cols() != dim_) {
    return Status::InvalidArgument(
        "CandidateIndex: target matrix does not match the indexed shape");
  }
  if (num_candidates == 0) {
    return Status::InvalidArgument(
        "CandidateIndex: num_candidates must be >= 1");
  }
  if (nprobe == 0) {
    return Status::InvalidArgument("CandidateIndex: nprobe must be >= 1");
  }
  const size_t n = source.rows();
  const size_t stride = std::min(num_candidates, num_targets_);
  if (out->rows() != n || out->cols() != num_targets_) {
    return Status::InvalidArgument("CandidateIndex: output shape mismatch");
  }
  if (out->capacity() < n * stride) {
    return Status::InvalidArgument(
        "CandidateIndex: output capacity below rows * candidates");
  }
  // Phase 1 (parallel, deterministic): each row probes, reranks, and writes
  // its candidates into a private stride-aligned slot. Rows never share
  // state, so static chunking makes this bit-identical at any thread count.
  std::vector<size_t> count(n, 0);
  float* values = out->values();
  uint32_t* cols = out->col_indices();
  ParallelFor(0, n, 16, [&](size_t begin, size_t end) {
    std::vector<std::pair<float, uint32_t>> ranked_lists;
    std::vector<uint32_t> probed;
    std::vector<std::pair<float, uint32_t>> candidates;
    for (size_t i = begin; i < end; ++i) {
      probed.clear();
      ProbeLists(source.Row(i).data(), nprobe, &ranked_lists, &probed);
      // Exact rerank of every member of the probed cells.
      candidates.clear();
      for (uint32_t l : probed) {
        for (uint32_t j : List(l)) {
          candidates.emplace_back(
              PairSimilarity(source, target, i, j, metric, cache), j);
        }
      }
      const size_t keep = std::min(stride, candidates.size());
      std::partial_sort(candidates.begin(), candidates.begin() + keep,
                        candidates.end(), BetterCandidate);
      candidates.resize(keep);
      // Column-ascending storage: CSR entry order == dense cell order.
      std::sort(candidates.begin(), candidates.end(),
                [](const std::pair<float, uint32_t>& a,
                   const std::pair<float, uint32_t>& b) {
                  return a.second < b.second;
                });
      for (size_t e = 0; e < keep; ++e) {
        values[i * stride + e] = candidates[e].first;
        cols[i * stride + e] = candidates[e].second;
      }
      count[i] = keep;
    }
  });

  // Phase 2 (serial): build the offsets and left-pack the strided slots into
  // contiguous CSR order. Destinations never pass sources, so the in-place
  // forward copy is safe.
  std::vector<size_t>& offsets = out->mutable_row_offsets();
  offsets.assign(n + 1, 0);
  for (size_t i = 0; i < n; ++i) offsets[i + 1] = offsets[i] + count[i];
  for (size_t i = 0; i < n; ++i) {
    const size_t src = i * stride;
    const size_t dst = offsets[i];
    if (src == dst) continue;
    for (size_t e = 0; e < count[i]; ++e) {
      values[dst + e] = values[src + e];
      cols[dst + e] = cols[src + e];
    }
  }
  return Status::OK();
}

Result<SparseScores> CandidateIndex::SparseSimilarity(
    const Matrix& source, const Matrix& target, SimilarityMetric metric,
    size_t num_candidates, size_t nprobe) const {
  if (num_candidates == 0) {
    return Status::InvalidArgument(
        "CandidateIndex: num_candidates must be >= 1");
  }
  const size_t stride = std::min(num_candidates, num_targets_);
  SparseScores out = SparseScores::CreateOwned(
      source.rows(), num_targets_, source.rows() * stride);
  const SimilarityCache cache = BuildSimilarityCache(source, target, metric);
  EM_RETURN_NOT_OK(FillSparseScores(source, target, metric, cache,
                                    num_candidates, nprobe, &out));
  return out;
}

Status CandidateIndex::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out.write(kMagic, sizeof(kMagic));
  const uint64_t header[4] = {kFormatVersion, num_targets_, dim_,
                              num_lists()};
  out.write(reinterpret_cast<const char*>(header), sizeof(header));
  out.write(reinterpret_cast<const char*>(centroids_.data()),
            static_cast<std::streamsize>(centroids_.ByteSize()));
  out.write(reinterpret_cast<const char*>(list_offsets_.data()),
            static_cast<std::streamsize>(list_offsets_.size() *
                                         sizeof(uint64_t)));
  out.write(reinterpret_cast<const char*>(list_ids_.data()),
            static_cast<std::streamsize>(list_ids_.size() *
                                         sizeof(uint32_t)));
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<CandidateIndex> CandidateIndex::Load(const std::string& path) {
  // Chaos point: a short read surfacing as kIoError mid-load.
  EM_INJECT_FAULT("index.load.read", StatusCode::kIoError);
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError("not an EIDX index file: " + path);
  }
  uint64_t header[4] = {0, 0, 0, 0};
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  if (!in) return Status::IoError("truncated index header: " + path);
  if (header[0] != kFormatVersion) {
    return Status::IoError("unsupported EIDX version in: " + path);
  }
  const uint64_t num_targets = header[1];
  const uint64_t dim = header[2];
  const uint64_t num_lists = header[3];
  // Same sanity bound as the EMAT reader: refuse absurd shapes, not
  // bad_alloc.
  if (num_targets > (1ull << 32) || dim > (1ull << 24) ||
      num_lists == 0 || num_lists > num_targets || dim == 0) {
    return Status::IoError("implausible index shape in: " + path);
  }
  CandidateIndex index;
  index.num_targets_ = static_cast<size_t>(num_targets);
  index.dim_ = static_cast<size_t>(dim);
  index.centroids_ = Matrix(static_cast<size_t>(num_lists),
                            static_cast<size_t>(dim));
  in.read(reinterpret_cast<char*>(index.centroids_.data()),
          static_cast<std::streamsize>(index.centroids_.ByteSize()));
  index.list_offsets_.resize(static_cast<size_t>(num_lists) + 1);
  in.read(reinterpret_cast<char*>(index.list_offsets_.data()),
          static_cast<std::streamsize>(index.list_offsets_.size() *
                                       sizeof(uint64_t)));
  index.list_ids_.resize(static_cast<size_t>(num_targets));
  in.read(reinterpret_cast<char*>(index.list_ids_.data()),
          static_cast<std::streamsize>(index.list_ids_.size() *
                                       sizeof(uint32_t)));
  if (!in) return Status::IoError("truncated index data: " + path);
  if (!index.list_ids_.empty() && EM_FAULT_FIRED("index.load.corrupt")) {
    // Chaos point: flip a high bit in the first inverted-list id so the
    // validation below must catch in-memory corruption, not just truncation.
    index.list_ids_[0] ^= 0x80000000u;
  }
  if (index.list_offsets_.front() != 0 ||
      index.list_offsets_.back() != num_targets) {
    return Status::IoError("corrupt inverted-list offsets in: " + path);
  }
  for (size_t l = 0; l + 1 < index.list_offsets_.size(); ++l) {
    if (index.list_offsets_[l] > index.list_offsets_[l + 1]) {
      return Status::IoError("corrupt inverted-list offsets in: " + path);
    }
  }
  for (uint32_t id : index.list_ids_) {
    if (id >= num_targets) {
      return Status::IoError("corrupt inverted-list ids in: " + path);
    }
  }
  return index;
}

}  // namespace entmatcher
