#include "index/candidate_index.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/fault.h"
#include "common/thread_pool.h"
#include "index/exact_backend.h"
#include "index/hnsw_backend.h"
#include "index/ivf_backend.h"

namespace entmatcher {

namespace {

constexpr char kMagic[4] = {'E', 'I', 'D', 'X'};
constexpr uint64_t kFormatVersion = 2;

}  // namespace

Result<CandidateIndex> CandidateIndex::Build(
    const Matrix& target, const CandidateIndexOptions& options) {
  switch (options.backend) {
    case CandidateBackendKind::kExact: {
      EM_ASSIGN_OR_RETURN(auto backend, ExactBackend::Build(target));
      return CandidateIndex(std::move(backend));
    }
    case CandidateBackendKind::kIvf: {
      EM_ASSIGN_OR_RETURN(
          auto backend,
          IvfBackend::Build(target, options.num_lists,
                            options.kmeans_iterations, options.seed));
      return CandidateIndex(std::move(backend));
    }
    case CandidateBackendKind::kHnsw: {
      EM_ASSIGN_OR_RETURN(
          auto backend,
          HnswBackend::Build(target, options.hnsw_max_links,
                             options.hnsw_ef_construction, options.seed));
      return CandidateIndex(std::move(backend));
    }
  }
  return Status::InvalidArgument("CandidateIndex: unknown backend");
}

size_t CandidateIndex::num_lists() const {
  if (backend_->kind() != CandidateBackendKind::kIvf) return 0;
  return static_cast<const IvfBackend*>(backend_.get())->num_lists();
}

std::span<const uint32_t> CandidateIndex::List(size_t l) const {
  assert(backend_->kind() == CandidateBackendKind::kIvf);
  return static_cast<const IvfBackend*>(backend_.get())->List(l);
}

void CandidateIndex::ProbeLists(
    const float* x, size_t nprobe,
    std::vector<std::pair<float, uint32_t>>* scratch,
    std::vector<uint32_t>* probed) const {
  assert(backend_->kind() == CandidateBackendKind::kIvf);
  static_cast<const IvfBackend*>(backend_.get())
      ->ProbeLists(x, nprobe, scratch, probed);
}

Status CandidateIndex::FillSparseScores(const Matrix& source,
                                        const Matrix& target,
                                        SimilarityMetric metric,
                                        const SimilarityCache& cache,
                                        size_t num_candidates,
                                        const ProbeParams& params,
                                        SparseScores* out) const {
  if (source.cols() != dim()) {
    return Status::InvalidArgument(
        "CandidateIndex: source dim differs from the indexed embeddings");
  }
  if (target.rows() != num_targets() || target.cols() != dim()) {
    return Status::InvalidArgument(
        "CandidateIndex: target matrix does not match the indexed shape");
  }
  if (num_candidates == 0) {
    return Status::InvalidArgument(
        "CandidateIndex: num_candidates must be >= 1");
  }
  if (backend() == CandidateBackendKind::kIvf && params.nprobe == 0) {
    return Status::InvalidArgument("CandidateIndex: nprobe must be >= 1");
  }
  if (backend() == CandidateBackendKind::kHnsw && params.ef_search == 0) {
    return Status::InvalidArgument("CandidateIndex: ef_search must be >= 1");
  }
  const size_t n = source.rows();
  const size_t stride = std::min(num_candidates, num_targets());
  if (out->rows() != n || out->cols() != num_targets()) {
    return Status::InvalidArgument("CandidateIndex: output shape mismatch");
  }
  if (out->capacity() < n * stride) {
    return Status::InvalidArgument(
        "CandidateIndex: output capacity below rows * candidates");
  }
  // The HNSW beam never returns more than ef candidates; widen it to the
  // requested top-c so the kept set is never starved by a narrow beam.
  ProbeParams effective = params;
  effective.ef_search = std::max(effective.ef_search, stride);

  // Phase 1 (parallel, deterministic): each row collects its backend
  // candidates, exact-reranks them, and writes the winners into a private
  // stride-aligned slot. Rows never share state, so static chunking makes
  // this bit-identical at any thread count.
  std::vector<size_t> count(n, 0);
  float* values = out->values();
  uint32_t* cols = out->col_indices();
  const CandidateBackend* backend = backend_.get();
  ParallelFor(0, n, 16, [&](size_t begin, size_t end) {
    CandidateScratch scratch;
    std::vector<uint32_t> collected;
    std::vector<std::pair<float, uint32_t>> candidates;
    for (size_t i = begin; i < end; ++i) {
      collected.clear();
      backend->Collect(target, source.Row(i).data(), effective, &scratch,
                       &collected);
      // Exact rerank of every collected candidate.
      candidates.clear();
      candidates.reserve(collected.size());
      for (uint32_t j : collected) {
        candidates.emplace_back(
            PairSimilarity(source, target, i, j, metric, cache), j);
      }
      const size_t keep = std::min(stride, candidates.size());
      std::partial_sort(candidates.begin(), candidates.begin() + keep,
                        candidates.end(), CandidateBetter);
      candidates.resize(keep);
      // Column-ascending storage: CSR entry order == dense cell order.
      std::sort(candidates.begin(), candidates.end(),
                [](const std::pair<float, uint32_t>& a,
                   const std::pair<float, uint32_t>& b) {
                  return a.second < b.second;
                });
      for (size_t e = 0; e < keep; ++e) {
        values[i * stride + e] = candidates[e].first;
        cols[i * stride + e] = candidates[e].second;
      }
      count[i] = keep;
    }
  });

  // Phase 2 (serial): build the offsets and left-pack the strided slots into
  // contiguous CSR order. Destinations never pass sources, so the in-place
  // forward copy is safe.
  std::vector<size_t>& offsets = out->mutable_row_offsets();
  offsets.assign(n + 1, 0);
  for (size_t i = 0; i < n; ++i) offsets[i + 1] = offsets[i] + count[i];
  for (size_t i = 0; i < n; ++i) {
    const size_t src = i * stride;
    const size_t dst = offsets[i];
    if (src == dst) continue;
    for (size_t e = 0; e < count[i]; ++e) {
      values[dst + e] = values[src + e];
      cols[dst + e] = cols[src + e];
    }
  }
  return Status::OK();
}

Result<SparseScores> CandidateIndex::SparseSimilarity(
    const Matrix& source, const Matrix& target, SimilarityMetric metric,
    size_t num_candidates, size_t nprobe) const {
  if (num_candidates == 0) {
    return Status::InvalidArgument(
        "CandidateIndex: num_candidates must be >= 1");
  }
  const size_t stride = std::min(num_candidates, num_targets());
  SparseScores out = SparseScores::CreateOwned(
      source.rows(), num_targets(), source.rows() * stride);
  const SimilarityCache cache = BuildSimilarityCache(source, target, metric);
  EM_RETURN_NOT_OK(FillSparseScores(source, target, metric, cache,
                                    num_candidates, nprobe, &out));
  return out;
}

Status CandidateIndex::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out.write(kMagic, sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&kFormatVersion),
            sizeof(kFormatVersion));
  const uint8_t tag = static_cast<uint8_t>(backend_->kind());
  out.write(reinterpret_cast<const char*>(&tag), sizeof(tag));
  EM_RETURN_NOT_OK(backend_->SavePayload(out));
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status CandidateIndex::SaveAsEidx1(const std::string& path) const {
  if (backend_->kind() != CandidateBackendKind::kIvf) {
    return Status::InvalidArgument(
        "EIDX1 predates the backend tag and can only hold an IVF index");
  }
  return static_cast<const IvfBackend*>(backend_.get())
      ->SaveLegacyEidx1(path);
}

Result<CandidateIndex> CandidateIndex::Load(const std::string& path) {
  // Chaos point: a short read surfacing as kIoError mid-load. Lives at the
  // facade so every backend's load path shares the same failure mode.
  EM_INJECT_FAULT("index.load.read", StatusCode::kIoError);
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError("not an EIDX index file: " + path);
  }
  uint64_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in) return Status::IoError("truncated index header: " + path);
  if (version == 1) {
    // Legacy EIDX1: no tag byte, the body is always an IVF index.
    EM_ASSIGN_OR_RETURN(auto backend, IvfBackend::LoadPayload(in, path));
    return CandidateIndex(std::move(backend));
  }
  if (version != kFormatVersion) {
    return Status::IoError("unsupported EIDX version in: " + path);
  }
  uint8_t tag = 0;
  in.read(reinterpret_cast<char*>(&tag), sizeof(tag));
  if (!in) return Status::IoError("truncated index header: " + path);
  switch (static_cast<CandidateBackendKind>(tag)) {
    case CandidateBackendKind::kExact: {
      EM_ASSIGN_OR_RETURN(auto backend, ExactBackend::LoadPayload(in, path));
      return CandidateIndex(std::move(backend));
    }
    case CandidateBackendKind::kIvf: {
      EM_ASSIGN_OR_RETURN(auto backend, IvfBackend::LoadPayload(in, path));
      return CandidateIndex(std::move(backend));
    }
    case CandidateBackendKind::kHnsw: {
      EM_ASSIGN_OR_RETURN(auto backend, HnswBackend::LoadPayload(in, path));
      return CandidateIndex(std::move(backend));
    }
  }
  return Status::IoError("unknown backend tag in: " + path);
}

}  // namespace entmatcher
