#ifndef ENTMATCHER_INDEX_BACKEND_H_
#define ENTMATCHER_INDEX_BACKEND_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "la/matrix.h"

namespace entmatcher {

/// The candidate-generation strategies behind CandidateIndex. The enum values
/// are the EIDX2 on-disk backend tags — do not renumber.
enum class CandidateBackendKind : uint8_t {
  /// Every target is a candidate (exhaustive scan, exact coverage). The
  /// baseline the approximate backends are measured against, and the right
  /// choice for tiny pairs where probe overhead exceeds the scan.
  kExact = 0,
  /// IVF: cosine k-means coarse quantizer, nprobe inverted lists per query.
  kIvf = 1,
  /// HNSW: hierarchical navigable-small-world graph, ef-wide beam search.
  kHnsw = 2,
};

/// Display / CLI name ("exact" | "ivf" | "hnsw").
const char* CandidateBackendName(CandidateBackendKind kind);

/// Parses a CLI backend name; kInvalidArgument on anything unknown.
Result<CandidateBackendKind> ParseCandidateBackend(const std::string& name);

/// Per-query probe knobs. Each backend reads only its own field — nprobe for
/// IVF, ef_search for HNSW, neither for exact — which is what lets
/// ScoreSignature zero the inactive knob so it cannot split a batch.
struct ProbeParams {
  /// IVF: inverted lists probed per query row.
  size_t nprobe = 4;
  /// HNSW: beam width of the layer-0 search. The backend never returns more
  /// than ef_search candidates, so callers clamp it up to num_candidates.
  size_t ef_search = 64;
};

/// (score desc, id asc): the total order shared by every backend, probe
/// ranking, and rerank — it matches the dense argmax convention (lowest index
/// wins ties), so the kept candidate set is deterministic and independent of
/// the order candidates were collected in.
inline bool CandidateBetter(const std::pair<float, uint32_t>& a,
                            const std::pair<float, uint32_t>& b) {
  if (a.first != b.first) return a.first > b.first;
  return a.second < b.second;
}

/// Caller-owned per-thread scratch so row loops reuse allocations across
/// queries. Backends use only the members they need; the visited stamps are
/// epoch-tagged so HNSW never pays an O(m) clear per query.
struct CandidateScratch {
  // IVF: centroid ranking and the probed cell ids.
  std::vector<std::pair<float, uint32_t>> ranked_lists;
  std::vector<uint32_t> probed;
  // HNSW: visited stamps plus the two search heaps.
  std::vector<uint32_t> visited;
  uint32_t epoch = 0;
  std::vector<std::pair<float, uint32_t>> frontier;
  std::vector<std::pair<float, uint32_t>> best;
};

/// Occupancy/shape summary of a built backend. For IVF the "lists" are the
/// inverted lists; for HNSW they are the layer-0 adjacency lists (so min/max/
/// mean describe graph degree); for exact there is one list holding every
/// target.
struct CandidateListStats {
  CandidateBackendKind backend = CandidateBackendKind::kIvf;
  size_t num_lists = 0;
  size_t num_targets = 0;
  size_t min_list_size = 0;
  size_t max_list_size = 0;
  double mean_list_size = 0.0;
  /// Log2-bucketed list sizes: bucket b counts lists of size in
  /// [2^b, 2^(b+1)); empty lists land in bucket 0.
  std::vector<size_t> size_histogram;
};

/// A candidate-generation strategy: given a query row, produce the target ids
/// worth exact-reranking. Backends store only their navigation structure
/// (centroids, graph links, norms) — never the embedding matrix itself, which
/// callers pass back in at query time. That is what lets the same backend
/// serve an in-memory Matrix or an mmap-backed store without copies.
///
/// Determinism contract (shared with the facade): Collect runs scalar float
/// arithmetic only — candidate *coverage* must never depend on
/// EM_KERNEL_TIER — and resolves every score tie by lower id, so the emitted
/// set is a pure function of (index state, query row, params).
class CandidateBackend {
 public:
  virtual ~CandidateBackend() = default;

  virtual CandidateBackendKind kind() const = 0;
  virtual size_t num_targets() const = 0;
  virtual size_t dim() const = 0;

  /// Appends the candidate target ids for query vector `x` (dim() floats) to
  /// `out`, without duplicates, in a deterministic backend-specific order.
  /// `target` must be the matrix the backend was built over.
  virtual void Collect(const Matrix& target, const float* x,
                       const ProbeParams& params, CandidateScratch* scratch,
                       std::vector<uint32_t>* out) const = 0;

  /// Incrementally indexes the appended rows [first_new_row, target.rows())
  /// of a grown target matrix. Backends promise that incremental insertion
  /// reproduces the from-scratch build exactly: build(n) + Insert of k rows
  /// yields the same structure as build(n + k) under the same seed.
  virtual Status Insert(const Matrix& target, size_t first_new_row) = 0;

  virtual CandidateListStats Stats() const = 0;

  /// Serializes the backend body (everything after the EIDX2 tag byte).
  virtual Status SavePayload(std::ostream& out) const = 0;
};

}  // namespace entmatcher

#endif  // ENTMATCHER_INDEX_BACKEND_H_
