#ifndef ENTMATCHER_INDEX_QUANTIZED_CANDIDATES_H_
#define ENTMATCHER_INDEX_QUANTIZED_CANDIDATES_H_

#include <cstddef>

#include "common/status.h"
#include "index/backend.h"
#include "la/kernels/quantized.h"
#include "la/matrix.h"
#include "la/similarity.h"
#include "la/sparse.h"

namespace entmatcher {

class CandidateIndex;

/// Mixed-precision candidate generation with exact rerank: ranks targets per
/// source row by a *quantized* dot-product surrogate of `metric` (bf16 or
/// int8, per QuantizedMatrix), keeps the top `num_candidates` by
/// (surrogate desc, id asc), then re-scores the survivors with the exact
/// float PairSimilarity kernel — so every emitted entry is bit-identical to
/// its dense score cell and only candidate *coverage* is approximate.
///
/// With `index` (nullable) the surrogate pass runs over the candidates the
/// index's backend proposes under `params` (IVF probed lists, HNSW beam, or
/// the exact scan) instead of all targets, composing the two approximations.
/// `qsource`/`qtarget` must be quantizations of
/// `source`/`target` at the same precision; `metric` must be cosine or
/// euclidean (manhattan has no dot-product form and is refused).
///
/// `out` must be shaped (source.rows() x target.rows()) with capacity for
/// source.rows() * min(num_candidates, target.rows()) entries. Entries come
/// out column-ascending per row (CSR invariant); rows are processed with
/// deterministic static chunking, so the result is bit-identical at every
/// thread count.
Status FillQuantizedSparseScores(const Matrix& source, const Matrix& target,
                                 const QuantizedMatrix& qsource,
                                 const QuantizedMatrix& qtarget,
                                 SimilarityMetric metric,
                                 const SimilarityCache& cache,
                                 size_t num_candidates,
                                 const CandidateIndex* index,
                                 const ProbeParams& params, SparseScores* out);

}  // namespace entmatcher

#endif  // ENTMATCHER_INDEX_QUANTIZED_CANDIDATES_H_
