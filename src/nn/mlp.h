#ifndef ENTMATCHER_NN_MLP_H_
#define ENTMATCHER_NN_MLP_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace entmatcher {

/// Configuration of a small fully-connected network.
struct MlpConfig {
  /// Layer widths, input first, output last; at least {in, out}.
  std::vector<size_t> layer_sizes;
  /// Weight-init seed.
  uint64_t seed = 1;
  /// SGD learning rate.
  double learning_rate = 0.01;
};

/// A minimal multilayer perceptron (ReLU hidden layers, linear output) with
/// single-sample forward/backward and SGD updates.
///
/// This is the neural substrate for (a) the RL-based matcher's policy network
/// and (b) the deepmatcher-style pair classifier of Sec. 4.3. The workloads
/// are tiny (tens of inputs, one output), so a simple per-sample
/// implementation is sufficient and keeps the code auditable.
class Mlp {
 public:
  /// Builds a network; fails if fewer than two layer sizes or a zero width.
  static Result<Mlp> Create(const MlpConfig& config);

  size_t input_dim() const { return layer_sizes_.front(); }
  size_t output_dim() const { return layer_sizes_.back(); }

  /// Computes the network output; caches activations for Backward().
  /// `input.size()` must equal input_dim().
  std::vector<float> Forward(std::span<const float> input);

  /// Accumulates gradients for the most recent Forward() call, given
  /// dLoss/dOutput. Must be preceded by Forward().
  void Backward(std::span<const float> grad_output);

  /// SGD step: params -= learning_rate * scale * grad; then clears grads.
  void ApplyGradients(double scale = 1.0);

  /// Clears accumulated gradients.
  void ZeroGradients();

  /// Total number of trainable parameters.
  size_t NumParameters() const;

 private:
  Mlp() = default;

  std::vector<size_t> layer_sizes_;
  double learning_rate_ = 0.01;
  // weights_[l] is (out × in) row-major; biases_[l] is (out).
  std::vector<std::vector<float>> weights_;
  std::vector<std::vector<float>> biases_;
  std::vector<std::vector<float>> grad_weights_;
  std::vector<std::vector<float>> grad_biases_;
  // activations_[0] = input; activations_[l+1] = output of layer l (after
  // ReLU for hidden layers).
  std::vector<std::vector<float>> activations_;
  // Pre-activation values per layer (for the ReLU derivative).
  std::vector<std::vector<float>> pre_activations_;
};

}  // namespace entmatcher

#endif  // ENTMATCHER_NN_MLP_H_
