#ifndef ENTMATCHER_NN_PAIR_CLASSIFIER_H_
#define ENTMATCHER_NN_PAIR_CLASSIFIER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "kg/alignment.h"
#include "la/matrix.h"
#include "nn/mlp.h"

namespace entmatcher {

/// Configuration for the deepmatcher-style pair classifier.
struct PairClassifierConfig {
  /// Hidden layer width.
  size_t hidden = 32;
  /// Training epochs over the labeled pairs.
  size_t epochs = 20;
  /// Random negative targets sampled per positive pair (the paper uses 10).
  size_t negatives_per_positive = 10;
  double learning_rate = 0.05;
  uint64_t seed = 3;
};

/// A binary match/non-match classifier over entity-pair embedding features,
/// reproducing the paper's deepmatcher adaptation (Sec. 4.3): train an
/// end-to-end neural classifier on the seed pairs with 1:10 negative
/// sampling, then pick the highest-scoring target per source entity.
///
/// The paper reports that this approach fails on EA (scarce labels, extreme
/// class imbalance, no attributive text); our benches reproduce that
/// qualitative outcome.
class PairClassifier {
 public:
  /// Trains on `positives` (links into the provided embedding matrices).
  /// Negative pairs are sampled uniformly from `target_pool`.
  static Result<PairClassifier> Train(const Matrix& source_embeddings,
                                      const Matrix& target_embeddings,
                                      const std::vector<EntityPair>& positives,
                                      const std::vector<EntityId>& target_pool,
                                      const PairClassifierConfig& config);

  /// Match probability for (source row u, target row v).
  float Score(const Matrix& source_embeddings, const Matrix& target_embeddings,
              EntityId u, EntityId v);

 private:
  explicit PairClassifier(Mlp mlp) : mlp_(std::move(mlp)) {}

  std::vector<float> BuildFeatures(std::span<const float> a,
                                   std::span<const float> b) const;

  Mlp mlp_;
};

}  // namespace entmatcher

#endif  // ENTMATCHER_NN_PAIR_CLASSIFIER_H_
