#include "nn/mlp.h"

#include <cassert>
#include <cmath>

#include "common/rng.h"

namespace entmatcher {

Result<Mlp> Mlp::Create(const MlpConfig& config) {
  if (config.layer_sizes.size() < 2) {
    return Status::InvalidArgument("Mlp requires at least input and output sizes");
  }
  for (size_t s : config.layer_sizes) {
    if (s == 0) return Status::InvalidArgument("Mlp layer width must be > 0");
  }
  if (config.learning_rate <= 0.0) {
    return Status::InvalidArgument("Mlp learning rate must be > 0");
  }

  Mlp mlp;
  mlp.layer_sizes_ = config.layer_sizes;
  mlp.learning_rate_ = config.learning_rate;

  Rng rng(config.seed);
  const size_t num_layers = config.layer_sizes.size() - 1;
  mlp.weights_.resize(num_layers);
  mlp.biases_.resize(num_layers);
  mlp.grad_weights_.resize(num_layers);
  mlp.grad_biases_.resize(num_layers);
  mlp.activations_.resize(num_layers + 1);
  mlp.pre_activations_.resize(num_layers);
  for (size_t l = 0; l < num_layers; ++l) {
    const size_t in = config.layer_sizes[l];
    const size_t out = config.layer_sizes[l + 1];
    // He initialization for ReLU layers.
    const double stddev = std::sqrt(2.0 / static_cast<double>(in));
    mlp.weights_[l].resize(in * out);
    for (float& w : mlp.weights_[l]) {
      w = static_cast<float>(rng.NextGaussian(0.0, stddev));
    }
    mlp.biases_[l].assign(out, 0.0f);
    mlp.grad_weights_[l].assign(in * out, 0.0f);
    mlp.grad_biases_[l].assign(out, 0.0f);
    mlp.pre_activations_[l].assign(out, 0.0f);
    mlp.activations_[l + 1].assign(out, 0.0f);
  }
  return mlp;
}

std::vector<float> Mlp::Forward(std::span<const float> input) {
  assert(input.size() == input_dim());
  activations_[0].assign(input.begin(), input.end());
  const size_t num_layers = weights_.size();
  for (size_t l = 0; l < num_layers; ++l) {
    const size_t in = layer_sizes_[l];
    const size_t out = layer_sizes_[l + 1];
    const std::vector<float>& x = activations_[l];
    const bool is_output = (l + 1 == num_layers);
    for (size_t o = 0; o < out; ++o) {
      const float* wrow = weights_[l].data() + o * in;
      float acc = biases_[l][o];
      for (size_t i = 0; i < in; ++i) acc += wrow[i] * x[i];
      pre_activations_[l][o] = acc;
      activations_[l + 1][o] = is_output ? acc : (acc > 0.0f ? acc : 0.0f);
    }
  }
  return activations_.back();
}

void Mlp::Backward(std::span<const float> grad_output) {
  assert(grad_output.size() == output_dim());
  const size_t num_layers = weights_.size();
  std::vector<float> grad(grad_output.begin(), grad_output.end());
  for (size_t li = num_layers; li-- > 0;) {
    const size_t in = layer_sizes_[li];
    const size_t out = layer_sizes_[li + 1];
    const bool is_output = (li + 1 == num_layers);
    // ReLU derivative for hidden layers.
    if (!is_output) {
      for (size_t o = 0; o < out; ++o) {
        if (pre_activations_[li][o] <= 0.0f) grad[o] = 0.0f;
      }
    }
    const std::vector<float>& x = activations_[li];
    std::vector<float> grad_in(in, 0.0f);
    for (size_t o = 0; o < out; ++o) {
      const float g = grad[o];
      if (g == 0.0f) continue;
      float* gw = grad_weights_[li].data() + o * in;
      const float* w = weights_[li].data() + o * in;
      for (size_t i = 0; i < in; ++i) {
        gw[i] += g * x[i];
        grad_in[i] += g * w[i];
      }
      grad_biases_[li][o] += g;
    }
    grad = std::move(grad_in);
  }
}

void Mlp::ApplyGradients(double scale) {
  const float step = static_cast<float>(learning_rate_ * scale);
  for (size_t l = 0; l < weights_.size(); ++l) {
    for (size_t i = 0; i < weights_[l].size(); ++i) {
      weights_[l][i] -= step * grad_weights_[l][i];
    }
    for (size_t i = 0; i < biases_[l].size(); ++i) {
      biases_[l][i] -= step * grad_biases_[l][i];
    }
  }
  ZeroGradients();
}

void Mlp::ZeroGradients() {
  for (auto& g : grad_weights_) std::fill(g.begin(), g.end(), 0.0f);
  for (auto& g : grad_biases_) std::fill(g.begin(), g.end(), 0.0f);
}

size_t Mlp::NumParameters() const {
  size_t total = 0;
  for (size_t l = 0; l < weights_.size(); ++l) {
    total += weights_[l].size() + biases_[l].size();
  }
  return total;
}

}  // namespace entmatcher
