#include "nn/pair_classifier.h"

#include <cmath>

#include "common/rng.h"

namespace entmatcher {

namespace {

float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

std::vector<float> PairClassifier::BuildFeatures(
    std::span<const float> a, std::span<const float> b) const {
  std::vector<float> features;
  features.reserve(a.size() + b.size());
  features.insert(features.end(), a.begin(), a.end());
  features.insert(features.end(), b.begin(), b.end());
  return features;
}

Result<PairClassifier> PairClassifier::Train(
    const Matrix& source_embeddings, const Matrix& target_embeddings,
    const std::vector<EntityPair>& positives,
    const std::vector<EntityId>& target_pool,
    const PairClassifierConfig& config) {
  if (positives.empty()) {
    return Status::InvalidArgument("PairClassifier: no positive pairs");
  }
  if (target_pool.empty()) {
    return Status::InvalidArgument("PairClassifier: empty negative pool");
  }
  if (source_embeddings.cols() != target_embeddings.cols()) {
    return Status::InvalidArgument("PairClassifier: embedding dims differ");
  }

  MlpConfig mlp_config;
  mlp_config.layer_sizes = {2 * source_embeddings.cols(), config.hidden, 1};
  mlp_config.seed = config.seed;
  mlp_config.learning_rate = config.learning_rate;
  EM_ASSIGN_OR_RETURN(Mlp mlp, Mlp::Create(mlp_config));

  PairClassifier classifier(std::move(mlp));
  Rng rng(config.seed ^ 0x5ca1ab1eULL);

  // Labeled sample list: (source, target, label).
  struct Sample {
    EntityId u;
    EntityId v;
    float label;
  };
  std::vector<Sample> samples;
  samples.reserve(positives.size() * (1 + config.negatives_per_positive));
  for (const EntityPair& p : positives) {
    samples.push_back(Sample{p.source, p.target, 1.0f});
    for (size_t k = 0; k < config.negatives_per_positive; ++k) {
      EntityId neg = target_pool[rng.NextBounded(target_pool.size())];
      if (neg == p.target) continue;  // skip accidental positives
      samples.push_back(Sample{p.source, neg, 0.0f});
    }
  }

  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(&samples);
    for (const Sample& s : samples) {
      std::vector<float> features = classifier.BuildFeatures(
          source_embeddings.Row(s.u), target_embeddings.Row(s.v));
      const float logit = classifier.mlp_.Forward(features)[0];
      const float prob = Sigmoid(logit);
      // BCE gradient wrt logit.
      const float grad = prob - s.label;
      classifier.mlp_.Backward(std::span<const float>(&grad, 1));
      classifier.mlp_.ApplyGradients();
    }
  }
  return classifier;
}

float PairClassifier::Score(const Matrix& source_embeddings,
                            const Matrix& target_embeddings, EntityId u,
                            EntityId v) {
  std::vector<float> features =
      BuildFeatures(source_embeddings.Row(u), target_embeddings.Row(v));
  return Sigmoid(mlp_.Forward(features)[0]);
}

}  // namespace entmatcher
