#ifndef ENTMATCHER_DATAGEN_EMBF_SYNTH_H_
#define ENTMATCHER_DATAGEN_EMBF_SYNTH_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace entmatcher {

/// Knobs for a synthetic aligned embedding pair streamed to EMBF stores.
struct EmbfSynthOptions {
  size_t rows = 0;          ///< Entities per side.
  size_t dim = 64;          ///< Embedding width.
  size_t clusters = 64;     ///< Gaussian cluster centers shared by both sides.
  uint64_t seed = 17;       ///< Everything below derives from this.
  /// Per-dimension jitter of a target row around its cluster center. This is
  /// the spacing BETWEEN aligned pairs: it must stay well above `noise` or
  /// dense cluster populations collapse onto each other and even exact
  /// matching cannot recover the identity alignment.
  double spread = 0.25;
  /// Per-dimension jitter of a source row around its aligned target row.
  /// Keeping noise << spread keeps row r of the source nearest to row r of
  /// the target, so recall@c against the identity alignment is a meaningful
  /// ANN quality metric.
  double noise = 0.05;
};

/// Streams a synthetic (source, target) embedding pair to two EMBF1 files.
///
/// The construction is the scaled-up cousin of the in-memory test fixtures:
/// target row r = center[r % clusters] + spread * g1(r), source row r =
/// target row r + noise * g2(r), both L2-normalized, where g1/g2 are
/// Gaussian vectors from per-row forks of `seed`. Row r is a pure function
/// of (options, r) — independent of generation order — and live memory is
/// O(clusters * dim + dim), which is what lets a 1M x 128d pair (1 GB on
/// disk) be generated under a few MB of heap.
Status SynthEmbfPair(const EmbfSynthOptions& options,
                     const std::string& source_path,
                     const std::string& target_path);

}  // namespace entmatcher

#endif  // ENTMATCHER_DATAGEN_EMBF_SYNTH_H_
