#include "datagen/kg_pair_generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"
#include "common/rng.h"

namespace entmatcher {

namespace {

enum class Ownership { kCore, kSourceOnly, kTargetOnly };

// One world concept_id and its entity copies in each KG.
struct ConceptInfo {
  Ownership owner = Ownership::kCore;
  std::vector<EntityId> source_ids;  // empty if absent from the source KG
  std::vector<EntityId> target_ids;  // empty if absent from the target KG
};

// A (concept_id, copy-index) slot awaiting an entity id.
struct Slot {
  uint32_t concept_id;
  uint32_t copy;
};

Status ValidateConfig(const KgPairGeneratorConfig& c) {
  if (c.num_core_concepts < 10) {
    return Status::InvalidArgument("num_core_concepts must be >= 10");
  }
  if (c.exclusive_fraction < 0.0 || c.avg_degree <= 0.0) {
    return Status::InvalidArgument("exclusive_fraction/avg_degree out of range");
  }
  if (c.triple_keep_prob <= 0.0 || c.triple_keep_prob > 1.0) {
    return Status::InvalidArgument("triple_keep_prob must be in (0, 1]");
  }
  if (c.num_relations_source == 0 || c.num_relations_target == 0 ||
      c.num_world_relations == 0) {
    return Status::InvalidArgument("relation vocabulary sizes must be > 0");
  }
  if (c.train_frac < 0.0 || c.valid_frac < 0.0 ||
      c.train_frac + c.valid_frac > 1.0) {
    return Status::InvalidArgument("split fractions invalid");
  }
  if (c.multi_cluster_fraction < 0.0 || c.multi_cluster_fraction > 1.0) {
    return Status::InvalidArgument("multi_cluster_fraction must be in [0, 1]");
  }
  if (c.multi_cluster_fraction > 0.0 && c.max_cluster_size < 2) {
    return Status::InvalidArgument("max_cluster_size must be >= 2 when clustering");
  }
  if (c.unmatchable_source_fraction < 0.0 || c.unmatchable_target_fraction < 0.0) {
    return Status::InvalidArgument("unmatchable fractions must be >= 0");
  }
  return Status::OK();
}

// Packs a triple into a dedup key. Id ranges are validated by the caller.
uint64_t TripleKey(EntityId s, RelationId r, EntityId o) {
  return (static_cast<uint64_t>(s) << 40) | (static_cast<uint64_t>(r) << 24) |
         static_cast<uint64_t>(o);
}

// Assigns shuffled dense entity ids to the given slots; fills the per-concept_id
// copy -> id tables. Returns the number of entities created.
size_t AssignEntityIds(std::vector<Slot> slots, bool source_side,
                       std::vector<ConceptInfo>* concepts, Rng* rng) {
  rng->Shuffle(&slots);
  for (size_t id = 0; id < slots.size(); ++id) {
    const Slot& slot = slots[id];
    auto& ids = source_side ? (*concepts)[slot.concept_id].source_ids
                            : (*concepts)[slot.concept_id].target_ids;
    ids[slot.copy] = static_cast<EntityId>(id);
  }
  return slots.size();
}

}  // namespace

Result<KgPairDataset> GenerateKgPair(const KgPairGeneratorConfig& config) {
  EM_RETURN_NOT_OK(ValidateConfig(config));

  Rng master(config.seed);
  Rng cluster_rng = master.Fork(1);
  Rng id_rng = master.Fork(2);
  Rng structure_rng = master.Fork(3);
  Rng name_rng = master.Fork(4);
  Rng split_rng = master.Fork(5);
  Rng candidate_rng = master.Fork(6);

  const size_t n_core = config.num_core_concepts;
  const size_t n_excl =
      static_cast<size_t>(std::llround(config.exclusive_fraction * n_core));
  const size_t n_world = n_core + 2 * n_excl;
  if (n_world >= (1u << 24) || config.num_world_relations >= (1u << 16)) {
    return Status::InvalidArgument("generator scale exceeds id packing limits");
  }

  // ---- 1. Concepts, ownership, non-1-to-1 cluster sizes. -------------------
  std::vector<ConceptInfo> concepts(n_world);
  for (size_t i = 0; i < n_world; ++i) {
    if (i < n_core) {
      concepts[i].owner = Ownership::kCore;
    } else if (i < n_core + n_excl) {
      concepts[i].owner = Ownership::kSourceOnly;
    } else {
      concepts[i].owner = Ownership::kTargetOnly;
    }
  }
  for (size_t i = 0; i < n_world; ++i) {
    size_t src_copies = concepts[i].owner == Ownership::kTargetOnly ? 0 : 1;
    size_t tgt_copies = concepts[i].owner == Ownership::kSourceOnly ? 0 : 1;
    if (concepts[i].owner == Ownership::kCore &&
        cluster_rng.NextBernoulli(config.multi_cluster_fraction)) {
      const size_t extra_range = config.max_cluster_size - 1;  // copies 2..max
      const uint64_t kind = cluster_rng.NextBounded(10);
      const size_t copies = 2 + cluster_rng.NextBounded(extra_range);
      if (kind < 6) {
        tgt_copies = copies;  // 1-to-many
      } else if (kind < 9) {
        src_copies = copies;  // many-to-1
      } else {
        src_copies = 2 + cluster_rng.NextBounded(extra_range);  // many-to-many
        tgt_copies = copies;
      }
    }
    concepts[i].source_ids.assign(src_copies, 0);
    concepts[i].target_ids.assign(tgt_copies, 0);
  }

  // ---- 2. Entity id spaces. -------------------------------------------------
  std::vector<Slot> src_slots;
  std::vector<Slot> tgt_slots;
  for (size_t i = 0; i < n_world; ++i) {
    for (size_t c = 0; c < concepts[i].source_ids.size(); ++c) {
      src_slots.push_back(Slot{static_cast<uint32_t>(i), static_cast<uint32_t>(c)});
    }
    for (size_t c = 0; c < concepts[i].target_ids.size(); ++c) {
      tgt_slots.push_back(Slot{static_cast<uint32_t>(i), static_cast<uint32_t>(c)});
    }
  }
  const size_t n_src_entities =
      AssignEntityIds(std::move(src_slots), /*source_side=*/true, &concepts, &id_rng);
  const size_t n_tgt_entities =
      AssignEntityIds(std::move(tgt_slots), /*source_side=*/false, &concepts, &id_rng);

  // ---- 3. World triples and per-KG keeps. -----------------------------------
  std::vector<uint32_t> popularity(n_world);
  for (size_t i = 0; i < n_world; ++i) popularity[i] = static_cast<uint32_t>(i);
  structure_rng.Shuffle(&popularity);

  const size_t target_src_triples =
      static_cast<size_t>(config.avg_degree * n_src_entities);
  const size_t target_tgt_triples =
      static_cast<size_t>(config.avg_degree * n_tgt_entities);

  std::vector<Triple> src_triples;
  std::vector<Triple> tgt_triples;
  src_triples.reserve(target_src_triples);
  tgt_triples.reserve(target_tgt_triples);
  std::unordered_set<uint64_t> src_seen;
  std::unordered_set<uint64_t> tgt_seen;

  auto pick_copy = [](const std::vector<EntityId>& ids, Rng* rng) {
    return ids.size() == 1 ? ids[0] : ids[rng->NextBounded(ids.size())];
  };

  const size_t max_attempts = 40 * (target_src_triples + target_tgt_triples) + 10000;
  size_t attempts = 0;
  while ((src_triples.size() < target_src_triples ||
          tgt_triples.size() < target_tgt_triples) &&
         attempts < max_attempts) {
    ++attempts;
    const uint32_t s_concept =
        popularity[structure_rng.NextZipf(n_world, config.degree_zipf_exponent)];
    const uint32_t o_concept =
        popularity[structure_rng.NextZipf(n_world, config.degree_zipf_exponent)];
    if (s_concept == o_concept) continue;
    const RelationId world_rel = static_cast<RelationId>(structure_rng.NextZipf(
        config.num_world_relations, config.relation_zipf_exponent));

    const ConceptInfo& sc = concepts[s_concept];
    const ConceptInfo& oc = concepts[o_concept];

    // Source KG keep decision.
    if (src_triples.size() < target_src_triples && !sc.source_ids.empty() &&
        !oc.source_ids.empty() &&
        structure_rng.NextBernoulli(config.triple_keep_prob)) {
      const EntityId s = pick_copy(sc.source_ids, &structure_rng);
      const EntityId o = pick_copy(oc.source_ids, &structure_rng);
      const RelationId r =
          static_cast<RelationId>(world_rel % config.num_relations_source);
      if (src_seen.insert(TripleKey(s, r, o)).second) {
        src_triples.push_back(Triple{s, r, o});
      }
    }
    // Target KG keep decision (independent).
    if (tgt_triples.size() < target_tgt_triples && !sc.target_ids.empty() &&
        !oc.target_ids.empty() &&
        structure_rng.NextBernoulli(config.triple_keep_prob)) {
      const EntityId s = pick_copy(sc.target_ids, &structure_rng);
      const EntityId o = pick_copy(oc.target_ids, &structure_rng);
      const RelationId r =
          static_cast<RelationId>(world_rel % config.num_relations_target);
      if (tgt_seen.insert(TripleKey(s, r, o)).second) {
        tgt_triples.push_back(Triple{s, r, o});
      }
    }
  }

  // ---- 4. Connectivity fix: every entity participates in >= 1 triple. -------
  auto fix_isolated = [&](bool source_side, size_t n_entities,
                          std::vector<Triple>* triples,
                          std::unordered_set<uint64_t>* seen,
                          size_t num_relations) {
    std::vector<uint8_t> covered(n_entities, 0);
    for (const Triple& t : *triples) {
      covered[t.subject] = 1;
      covered[t.object] = 1;
    }
    for (size_t e = 0; e < n_entities; ++e) {
      if (covered[e]) continue;
      // Connect to the copy of a popular concept_id present in this KG.
      for (int tries = 0; tries < 64; ++tries) {
        const uint32_t concept_id = popularity[structure_rng.NextZipf(
            n_world, config.degree_zipf_exponent)];
        const auto& ids = source_side ? concepts[concept_id].source_ids
                                      : concepts[concept_id].target_ids;
        if (ids.empty()) continue;
        const EntityId other = pick_copy(ids, &structure_rng);
        if (other == e) continue;
        const RelationId r = static_cast<RelationId>(
            structure_rng.NextBounded(num_relations));
        if (seen->insert(TripleKey(static_cast<EntityId>(e), r, other)).second) {
          triples->push_back(Triple{static_cast<EntityId>(e), r, other});
          covered[e] = 1;
          break;
        }
      }
    }
  };
  fix_isolated(true, n_src_entities, &src_triples, &src_seen,
               config.num_relations_source);
  fix_isolated(false, n_tgt_entities, &tgt_triples, &tgt_seen,
               config.num_relations_target);

  // ---- 5. Surface names. -----------------------------------------------------
  std::vector<std::string> src_names(n_src_entities);
  std::vector<std::string> tgt_names(n_tgt_entities);
  for (size_t i = 0; i < n_world; ++i) {
    const std::string base = GenerateBaseName(&name_rng);
    for (size_t c = 0; c < concepts[i].source_ids.size(); ++c) {
      std::string rendered = RenderName(base, config.source_style,
                                        config.source_name_noise, &name_rng);
      if (c > 0) rendered += " (" + GenerateBaseName(&name_rng) + ")";
      src_names[concepts[i].source_ids[c]] = std::move(rendered);
    }
    for (size_t c = 0; c < concepts[i].target_ids.size(); ++c) {
      std::string rendered = RenderName(base, config.target_style,
                                        config.target_name_noise, &name_rng);
      if (c > 0) rendered += " (" + GenerateBaseName(&name_rng) + ")";
      tgt_names[concepts[i].target_ids[c]] = std::move(rendered);
    }
  }

  // ---- 6. Graphs. --------------------------------------------------------------
  EM_ASSIGN_OR_RETURN(
      KnowledgeGraph source,
      KnowledgeGraph::Create(n_src_entities, config.num_relations_source,
                             std::move(src_triples)));
  EM_ASSIGN_OR_RETURN(
      KnowledgeGraph target,
      KnowledgeGraph::Create(n_tgt_entities, config.num_relations_target,
                             std::move(tgt_triples)));
  EM_RETURN_NOT_OK(source.SetEntityNames(std::move(src_names)));
  EM_RETURN_NOT_OK(target.SetEntityNames(std::move(tgt_names)));

  // ---- 7. Gold links (complete bipartite within each concept_id cluster). ------
  std::vector<EntityPair> gold_pairs;
  for (size_t i = 0; i < n_core; ++i) {
    for (EntityId s : concepts[i].source_ids) {
      for (EntityId t : concepts[i].target_ids) {
        gold_pairs.push_back(EntityPair{s, t});
      }
    }
  }
  AlignmentSet gold(std::move(gold_pairs));

  // ---- 8. Split. -----------------------------------------------------------------
  AlignmentSplit split;
  if (config.multi_cluster_fraction > 0.0) {
    EM_ASSIGN_OR_RETURN(split, SplitAlignmentPreservingClusters(
                                   gold, config.train_frac, config.valid_frac,
                                   &split_rng));
  } else {
    EM_ASSIGN_OR_RETURN(
        split, SplitAlignment(gold, config.train_frac, config.valid_frac,
                              &split_rng));
  }

  // ---- 9. Candidate sets (+ unmatchable extras). --------------------------------
  KgPairDataset dataset;
  dataset.name = config.name;
  dataset.source = std::move(source);
  dataset.target = std::move(target);
  dataset.gold = std::move(gold);
  dataset.split = std::move(split);

  std::vector<EntityId> extra_sources;
  std::vector<EntityId> extra_targets;
  if (config.unmatchable_source_fraction > 0.0 ||
      config.unmatchable_target_fraction > 0.0) {
    std::vector<EntityId> excl_src;
    std::vector<EntityId> excl_tgt;
    for (size_t i = n_core; i < n_core + n_excl; ++i) {
      excl_src.push_back(concepts[i].source_ids[0]);
    }
    for (size_t i = n_core + n_excl; i < n_world; ++i) {
      excl_tgt.push_back(concepts[i].target_ids[0]);
    }
    candidate_rng.Shuffle(&excl_src);
    candidate_rng.Shuffle(&excl_tgt);
    const size_t test_links = dataset.split.test.size();
    const size_t want_src = std::min(
        excl_src.size(), static_cast<size_t>(
                             config.unmatchable_source_fraction * test_links));
    const size_t want_tgt = std::min(
        excl_tgt.size(), static_cast<size_t>(
                             config.unmatchable_target_fraction * test_links));
    extra_sources.assign(excl_src.begin(), excl_src.begin() + want_src);
    extra_targets.assign(excl_tgt.begin(), excl_tgt.begin() + want_tgt);
  }
  PopulateTestCandidates(&dataset, extra_sources, extra_targets);

  EM_LOG(Debug) << "generated '" << dataset.name << "': "
                << dataset.TotalEntities() << " entities, "
                << dataset.TotalTriples() << " triples, " << dataset.gold.size()
                << " gold links";
  return dataset;
}

}  // namespace entmatcher
