#include "datagen/embf_synth.h"

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "la/mmap_store.h"

namespace entmatcher {

namespace {

void NormalizeRow(std::vector<float>* row) {
  double sq = 0.0;
  for (float v : *row) sq += static_cast<double>(v) * v;
  if (sq == 0.0) return;
  const float inv = static_cast<float>(1.0 / std::sqrt(sq));
  for (float& v : *row) v *= inv;
}

}  // namespace

Status SynthEmbfPair(const EmbfSynthOptions& options,
                     const std::string& source_path,
                     const std::string& target_path) {
  if (options.rows == 0 || options.dim == 0 || options.clusters == 0) {
    return Status::InvalidArgument(
        "SynthEmbfPair needs rows, dim, and clusters >= 1");
  }
  const Rng root(options.seed);

  // Cluster centers: fork 0 of the root, one Gaussian vector per center.
  std::vector<std::vector<float>> centers(options.clusters);
  {
    Rng center_rng = root.Fork(0);
    for (std::vector<float>& center : centers) {
      center.resize(options.dim);
      for (float& v : center) {
        v = static_cast<float>(center_rng.NextGaussian());
      }
    }
  }

  EM_ASSIGN_OR_RETURN(
      EmbfWriter source,
      EmbfWriter::Create(source_path, options.rows, options.dim));
  EM_ASSIGN_OR_RETURN(
      EmbfWriter target,
      EmbfWriter::Create(target_path, options.rows, options.dim));

  std::vector<float> target_row(options.dim);
  std::vector<float> source_row(options.dim);
  for (size_t r = 0; r < options.rows; ++r) {
    // Forks 2r+1 / 2r+2 make each row a pure function of (seed, r): the same
    // row comes back whether the file is generated whole or resumed, and the
    // source/target streams never alias (fork 0 is the centers').
    Rng g1 = root.Fork(2 * static_cast<uint64_t>(r) + 1);
    Rng g2 = root.Fork(2 * static_cast<uint64_t>(r) + 2);
    const std::vector<float>& center = centers[r % options.clusters];
    for (size_t d = 0; d < options.dim; ++d) {
      target_row[d] = center[d] +
                      static_cast<float>(options.spread * g1.NextGaussian());
      source_row[d] = target_row[d] +
                      static_cast<float>(options.noise * g2.NextGaussian());
    }
    NormalizeRow(&target_row);
    NormalizeRow(&source_row);
    EM_RETURN_NOT_OK(target.Append(target_row));
    EM_RETURN_NOT_OK(source.Append(source_row));
  }
  EM_RETURN_NOT_OK(source.Finish());
  return target.Finish();
}

}  // namespace entmatcher
