#ifndef ENTMATCHER_DATAGEN_KG_PAIR_GENERATOR_H_
#define ENTMATCHER_DATAGEN_KG_PAIR_GENERATOR_H_

#include "common/status.h"
#include "datagen/generator_config.h"
#include "kg/dataset.h"

namespace entmatcher {

/// Generates a complete synthetic EA benchmark instance from `config`.
///
/// Construction sketch (all randomness from config.seed):
///  1. A "world" of concepts: the matchable core plus per-KG exclusive
///     concepts. Non-1-to-1 clusters expand selected core concepts into
///     several entity copies on one or both sides.
///  2. World triples sampled with Zipf-skewed endpoints and relations
///     (power-law degree distribution => hub entities).
///  3. Each KG independently keeps each eligible world triple with
///     probability triple_keep_prob and maps concept endpoints to its own
///     (shuffled) entity ids; cluster copies receive disjoint random shares
///     of their concept's triples (the granularity effect).
///  4. Every entity is guaranteed at least one incident triple.
///  5. Surface names: one base name per concept, rendered per-KG with the
///     configured style and noise; cluster copies get qualifier suffixes.
///  6. Gold links, a 20/10/70 split (cluster-preserving when non-1-to-1
///     clusters exist), and the test candidate sets (plus unmatchable
///     extras when configured).
Result<KgPairDataset> GenerateKgPair(const KgPairGeneratorConfig& config);

}  // namespace entmatcher

#endif  // ENTMATCHER_DATAGEN_KG_PAIR_GENERATOR_H_
