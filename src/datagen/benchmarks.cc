#include "datagen/benchmarks.h"

#include <cmath>

namespace entmatcher {

namespace {

// Base scales chosen so the full benchmark suite runs on a single core while
// preserving the paper's relative dataset sizes (DESIGN.md, substitution 4).
constexpr size_t kDbpCoreConcepts = 3000;
constexpr size_t kSrprsCoreConcepts = 2500;
constexpr size_t kDwyCoreConcepts = 6000;
constexpr size_t kFbMulCoreConcepts = 2400;

KgPairGeneratorConfig DbpBase(uint64_t seed) {
  KgPairGeneratorConfig c;
  c.seed = seed;
  c.num_core_concepts = kDbpCoreConcepts;
  c.exclusive_fraction = 0.25;
  c.avg_degree = 4.3;
  c.num_world_relations = 1500;
  c.num_relations_source = 1200;
  c.num_relations_target = 1000;
  c.triple_keep_prob = 0.85;
  c.source_style = NameStyle::kPlain;
  c.source_name_noise = 0.02;
  return c;
}

KgPairGeneratorConfig SrprsBase(uint64_t seed) {
  KgPairGeneratorConfig c;
  c.seed = seed;
  c.num_core_concepts = kSrprsCoreConcepts;
  c.exclusive_fraction = 0.0;  // SRPRS KGs are 1-to-1 matchable end to end
  c.avg_degree = 2.4;          // the sparse family
  c.num_world_relations = 500;
  c.num_relations_source = 400;
  c.num_relations_target = 350;
  c.triple_keep_prob = 0.85;
  c.source_style = NameStyle::kPlain;
  c.source_name_noise = 0.02;
  return c;
}

}  // namespace

Result<KgPairGeneratorConfig> MakeDatasetConfig(std::string_view pair_name,
                                                double scale) {
  if (scale <= 0.0) {
    return Status::InvalidArgument("dataset scale must be > 0");
  }
  KgPairGeneratorConfig c;
  // --- DBP15K family: dense, cross-lingual. -------------------------------
  if (pair_name == "D-Z") {
    c = DbpBase(/*seed=*/101);
    c.target_style = NameStyle::kTransliterated;
    c.target_name_noise = 0.15;
  } else if (pair_name == "D-J") {
    c = DbpBase(/*seed=*/102);
    c.target_style = NameStyle::kTransliterated;
    c.target_name_noise = 0.13;
  } else if (pair_name == "D-F") {
    c = DbpBase(/*seed=*/103);
    c.avg_degree = 5.5;  // D-F is the densest DBP15K pair (Table 3)
    c.target_style = NameStyle::kRomance;
    c.target_name_noise = 0.10;
    // --- SRPRS family: sparse. ---------------------------------------------
  } else if (pair_name == "S-F") {
    c = SrprsBase(/*seed=*/201);
    c.target_style = NameStyle::kRomance;
    c.target_name_noise = 0.10;
  } else if (pair_name == "S-D") {
    c = SrprsBase(/*seed=*/202);
    c.avg_degree = 2.5;
    c.target_style = NameStyle::kGermanic;
    c.target_name_noise = 0.09;
  } else if (pair_name == "S-W") {
    c = SrprsBase(/*seed=*/203);
    c.avg_degree = 2.6;
    c.target_style = NameStyle::kIdentifier;
    c.target_name_noise = 0.06;
  } else if (pair_name == "S-Y") {
    c = SrprsBase(/*seed=*/204);
    c.avg_degree = 2.3;
    c.target_style = NameStyle::kIdentifier;
    c.target_name_noise = 0.06;
    // --- DWY100K family: the scalability workload. ---------------------------
  } else if (pair_name == "DW-W") {
    c = DbpBase(/*seed=*/301);
    c.num_core_concepts = kDwyCoreConcepts;
    c.avg_degree = 4.6;
    c.num_world_relations = 600;
    c.num_relations_source = 550;
    c.num_relations_target = 500;
    c.target_style = NameStyle::kIdentifier;
    c.target_name_noise = 0.05;
  } else if (pair_name == "DW-Y") {
    c = DbpBase(/*seed=*/302);
    c.num_core_concepts = kDwyCoreConcepts;
    c.avg_degree = 4.7;
    c.num_world_relations = 400;
    c.num_relations_source = 350;
    c.num_relations_target = 300;
    c.target_style = NameStyle::kIdentifier;
    c.target_name_noise = 0.05;
    // --- DBP15K+ family: unmatchable entities. --------------------------------
  } else if (pair_name == "D-Z+" || pair_name == "D-J+" || pair_name == "D-F+") {
    std::string base_name(pair_name.substr(0, 3));
    EM_ASSIGN_OR_RETURN(c, MakeDatasetConfig(base_name, 1.0));
    c.seed += 400;
    c.exclusive_fraction = 0.35;
    // Unmatchables live on the source side (as in [63]'s construction), so
    // the target side is smaller and Hun./SMat gain dummy-node slots.
    c.unmatchable_source_fraction = 0.30;
    c.unmatchable_target_fraction = 0.0;
    // --- FB_DBP_MUL: non 1-to-1 gold clusters. -----------------------------------
  } else if (pair_name == "FB-MUL") {
    c = DbpBase(/*seed=*/501);
    c.num_core_concepts = kFbMulCoreConcepts;
    c.avg_degree = 5.0;
    c.triple_keep_prob = 0.9;
    c.num_world_relations = 900;
    c.num_relations_source = 800;
    c.num_relations_target = 700;
    c.multi_cluster_fraction = 0.75;
    c.max_cluster_size = 3;
    c.target_style = NameStyle::kIdentifier;
    c.target_name_noise = 0.08;
  } else {
    return Status::NotFound("unknown dataset pair name: " +
                            std::string(pair_name));
  }
  c.name = std::string(pair_name);
  if (scale != 1.0) {
    c.num_core_concepts = std::max<size_t>(
        10, static_cast<size_t>(std::llround(c.num_core_concepts * scale)));
  }
  return c;
}

Result<KgPairDataset> GenerateDataset(std::string_view pair_name, double scale) {
  EM_ASSIGN_OR_RETURN(KgPairGeneratorConfig config,
                      MakeDatasetConfig(pair_name, scale));
  return GenerateKgPair(config);
}

std::vector<std::string> Dbp15kPairNames() { return {"D-Z", "D-J", "D-F"}; }
std::vector<std::string> SrprsPairNames() {
  return {"S-F", "S-D", "S-W", "S-Y"};
}
std::vector<std::string> Dwy100kPairNames() { return {"DW-W", "DW-Y"}; }
std::vector<std::string> Dbp15kPlusPairNames() {
  return {"D-Z+", "D-J+", "D-F+"};
}

}  // namespace entmatcher
