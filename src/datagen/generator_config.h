#ifndef ENTMATCHER_DATAGEN_GENERATOR_CONFIG_H_
#define ENTMATCHER_DATAGEN_GENERATOR_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "datagen/names.h"

namespace entmatcher {

/// Controls for the synthetic KG-pair generator.
///
/// The generator replaces the paper's DBpedia/Wikidata/YAGO/Freebase
/// extractions (see DESIGN.md, substitution 1). Its knobs map one-to-one to
/// the dataset properties the paper identifies as result-driving:
///   - avg_degree          → dense (DBP15K/DWY100K) vs sparse (SRPRS)
///   - triple_keep_prob    → structural heterogeneity between the two KGs
///   - *_name_noise        → cross-lingual vs mono-lingual name similarity
///   - unmatchable_*       → DBP15K+-style unmatchable entities
///   - multi_cluster_*     → FB_DBP_MUL-style non-1-to-1 gold clusters
struct KgPairGeneratorConfig {
  /// Display name for tables ("D-Z", "S-F", ...).
  std::string name = "synthetic";

  /// Master seed; everything downstream is derived deterministically.
  uint64_t seed = 42;

  // --- Scale ------------------------------------------------------------
  /// Matchable real-world concepts; each yields >= 1 gold link.
  size_t num_core_concepts = 3000;
  /// Per-KG concepts with no counterpart, as a fraction of the core.
  double exclusive_fraction = 0.25;
  /// Target triples/entities per KG (Table 3 "Avg. degree" convention).
  double avg_degree = 4.3;
  /// Endpoint popularity skew; larger => stronger hubs.
  double degree_zipf_exponent = 0.85;

  // --- Relations ---------------------------------------------------------
  size_t num_world_relations = 1500;
  size_t num_relations_source = 1200;
  size_t num_relations_target = 1100;
  double relation_zipf_exponent = 0.9;

  // --- Structural heterogeneity ------------------------------------------
  /// Probability that each KG independently keeps a world triple. 1.0 makes
  /// the KGs isomorphic on the shared core (paper Fig. 1a); lower values
  /// yield cases (b)/(c).
  double triple_keep_prob = 0.85;

  // --- Names ---------------------------------------------------------------
  NameStyle source_style = NameStyle::kPlain;
  NameStyle target_style = NameStyle::kRomance;
  double source_name_noise = 0.02;
  double target_name_noise = 0.12;

  // --- Split ----------------------------------------------------------------
  double train_frac = 0.2;
  double valid_frac = 0.1;

  // --- Unmatchable setting (DBP15K+) -----------------------------------------
  /// Exclusive source entities appended to the test source candidates, as a
  /// fraction of the test link count.
  double unmatchable_source_fraction = 0.0;
  /// Same for the target side.
  double unmatchable_target_fraction = 0.0;

  // --- Non-1-to-1 setting (FB_DBP_MUL) ----------------------------------------
  /// Fraction of core concepts expanded into multi-entity gold clusters.
  double multi_cluster_fraction = 0.0;
  /// Maximum entity copies per side within a cluster (>= 2 when used).
  size_t max_cluster_size = 3;
};

}  // namespace entmatcher

#endif  // ENTMATCHER_DATAGEN_GENERATOR_CONFIG_H_
