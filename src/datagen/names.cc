#include "datagen/names.h"

#include <array>
#include <cctype>

namespace entmatcher {

namespace {

constexpr std::array<const char*, 20> kOnsets = {
    "b", "c", "d", "f", "g", "h", "j", "k",  "l",  "m",
    "n", "p", "r", "s", "t", "v", "w", "br", "st", "tr"};
constexpr std::array<const char*, 10> kVowels = {"a", "e",  "i",  "o",  "u",
                                                 "ai", "ea", "io", "ou", "y"};
constexpr std::array<const char*, 8> kCodas = {"", "", "n", "r", "s",
                                               "l", "t", "nd"};

std::string GenerateSyllable(Rng* rng) {
  std::string s;
  s += kOnsets[rng->NextBounded(kOnsets.size())];
  s += kVowels[rng->NextBounded(kVowels.size())];
  s += kCodas[rng->NextBounded(kCodas.size())];
  return s;
}

std::string GenerateWord(Rng* rng) {
  const size_t syllables = 2 + rng->NextBounded(3);
  std::string word;
  for (size_t i = 0; i < syllables; ++i) word += GenerateSyllable(rng);
  word[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(word[0])));
  return word;
}

// Deterministic per-style character mapping (applied before noise).
char MapChar(char c, NameStyle style) {
  switch (style) {
    case NameStyle::kPlain:
    case NameStyle::kIdentifier:
      return c;
    case NameStyle::kRomance:
      switch (c) {
        case 'k': return 'c';
        case 'w': return 'v';
        case 'y': return 'i';
        default: return c;
      }
    case NameStyle::kGermanic:
      switch (c) {
        case 'c': return 'k';
        case 'v': return 'w';
        case 'j': return 'y';
        default: return c;
      }
    case NameStyle::kTransliterated:
      switch (c) {
        case 'l': return 'r';
        case 'v': return 'b';
        case 'c': return 'x';
        case 'd': return 't';
        default: return c;
      }
  }
  return c;
}

const char* StyleSuffix(NameStyle style) {
  switch (style) {
    case NameStyle::kPlain:
      return "";
    case NameStyle::kRomance:
      return "e";
    case NameStyle::kGermanic:
      return "en";
    case NameStyle::kTransliterated:
      return "u";
    case NameStyle::kIdentifier:
      return "";
  }
  return "";
}

}  // namespace

std::string GenerateBaseName(Rng* rng) {
  std::string name = GenerateWord(rng);
  if (rng->NextBernoulli(0.35)) {
    name += ' ';
    name += GenerateWord(rng);
  }
  return name;
}

std::string RenderName(const std::string& base, NameStyle style, double noise,
                       Rng* rng) {
  std::string out;
  out.reserve(base.size() + 4);
  for (char c : base) {
    char mapped = (c == ' ' && style == NameStyle::kIdentifier) ? '_'
                                                                : MapChar(c, style);
    if (noise > 0.0 && rng->NextBernoulli(noise)) {
      const uint64_t action = rng->NextBounded(3);
      if (action == 0) {
        // Substitute with a random lowercase letter.
        out += static_cast<char>('a' + rng->NextBounded(26));
      } else if (action == 1) {
        // Delete the character.
      } else {
        // Duplicate the character.
        out += mapped;
        out += mapped;
      }
    } else {
      out += mapped;
    }
  }
  out += StyleSuffix(style);
  if (out.empty()) out = "x";
  return out;
}

}  // namespace entmatcher
