#ifndef ENTMATCHER_DATAGEN_BENCHMARKS_H_
#define ENTMATCHER_DATAGEN_BENCHMARKS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "datagen/generator_config.h"
#include "datagen/kg_pair_generator.h"

namespace entmatcher {

/// Returns the generator configuration for one of the paper's KG pairs,
/// scaled-down per DESIGN.md. Recognized names:
///   DBP15K family (dense, cross-lingual):  "D-Z", "D-J", "D-F"
///   SRPRS family (sparse):                 "S-F", "S-D", "S-W", "S-Y"
///   DWY100K family (large, mono-lingual):  "DW-W", "DW-Y"
///   DBP15K+ (unmatchable entities):        "D-Z+", "D-J+", "D-F+"
///   FB_DBP_MUL (non 1-to-1):               "FB-MUL"
///
/// `scale` multiplies the concept count (1.0 = the repository default size);
/// use small values in unit tests and larger ones to stress scalability.
Result<KgPairGeneratorConfig> MakeDatasetConfig(std::string_view pair_name,
                                                double scale = 1.0);

/// Convenience: configure and generate in one call.
Result<KgPairDataset> GenerateDataset(std::string_view pair_name,
                                      double scale = 1.0);

/// Pair-name lists per family, in the paper's table order.
std::vector<std::string> Dbp15kPairNames();
std::vector<std::string> SrprsPairNames();
std::vector<std::string> Dwy100kPairNames();
std::vector<std::string> Dbp15kPlusPairNames();

}  // namespace entmatcher

#endif  // ENTMATCHER_DATAGEN_BENCHMARKS_H_
