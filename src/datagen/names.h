#ifndef ENTMATCHER_DATAGEN_NAMES_H_
#define ENTMATCHER_DATAGEN_NAMES_H_

#include <string>

#include "common/rng.h"

namespace entmatcher {

/// Rendering styles for entity surface names. Each style applies a
/// deterministic character mapping plus style-specific affixes, emulating
/// how the same real-world entity is labeled in different KGs / languages
/// (e.g., DBpedia-EN vs DBpedia-FR vs Wikidata).
enum class NameStyle {
  /// Identity rendering (baseline, "English").
  kPlain,
  /// Romance-flavored vowel/suffix shifts ("French"-like).
  kRomance,
  /// Germanic consonant clusters ("German"-like).
  kGermanic,
  /// Heavier syllable re-romanization ("Chinese/Japanese transliteration").
  kTransliterated,
  /// Identifier-flavored rendering with underscores ("Wikidata/YAGO"-like).
  kIdentifier,
};

/// Generates a random base (canonical) entity name of 2–4 syllables,
/// optionally two words. Deterministic given the Rng state.
std::string GenerateBaseName(Rng* rng);

/// Renders `base` in `style` and perturbs each character with probability
/// `noise` (substitution / deletion / duplication). noise == 0 with kPlain
/// reproduces `base` exactly. Higher noise lowers cross-KG name similarity,
/// which is the knob behind the N-/NR- experiment family (paper Table 5).
std::string RenderName(const std::string& base, NameStyle style, double noise,
                       Rng* rng);

}  // namespace entmatcher

#endif  // ENTMATCHER_DATAGEN_NAMES_H_
