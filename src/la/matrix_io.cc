#include "la/matrix_io.h"

#include <charconv>
#include <cmath>
#include <cstring>
#include <fstream>

#include "common/string_util.h"

namespace entmatcher {

namespace {

constexpr char kMagic[4] = {'E', 'M', 'A', 'T'};

}  // namespace

Status WriteMatrixTsv(const Matrix& matrix, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out.precision(9);
  for (size_t r = 0; r < matrix.rows(); ++r) {
    auto row = matrix.Row(r);
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << '\t';
      out << row[c];
    }
    out << '\n';
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<Matrix> ReadMatrixTsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::vector<std::vector<float>> rows;
  std::string line;
  size_t width = 0;
  while (std::getline(in, line)) {
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;
    std::vector<float> row;
    for (std::string_view field : SplitString(stripped, '\t')) {
      float value = 0.0f;
      auto [ptr, ec] =
          std::from_chars(field.data(), field.data() + field.size(), value);
      if (ec != std::errc() || ptr != field.data() + field.size()) {
        return Status::IoError("bad float field '" + std::string(field) +
                               "' in " + path);
      }
      row.push_back(value);
    }
    if (width == 0) {
      width = row.size();
    } else if (row.size() != width) {
      return Status::IoError("ragged matrix rows in " + path);
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) return Matrix();
  Matrix matrix = Matrix::FromRows(rows);
  EM_RETURN_NOT_OK(ValidateMatrixFinite(matrix, path));
  return matrix;
}

Status WriteMatrixBinary(const Matrix& matrix, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out.write(kMagic, sizeof(kMagic));
  const uint64_t rows = matrix.rows();
  const uint64_t cols = matrix.cols();
  out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  out.write(reinterpret_cast<const char*>(matrix.data()),
            static_cast<std::streamsize>(matrix.ByteSize()));
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<Matrix> ReadMatrixBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError("not an EMAT matrix file: " + path);
  }
  uint64_t rows = 0;
  uint64_t cols = 0;
  in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
  in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
  if (!in) return Status::IoError("truncated matrix header: " + path);
  // Sanity bound: refuse absurd shapes rather than bad_alloc.
  if (rows > (1ull << 32) || cols > (1ull << 24)) {
    return Status::IoError("implausible matrix shape in: " + path);
  }
  Matrix matrix(static_cast<size_t>(rows), static_cast<size_t>(cols));
  in.read(reinterpret_cast<char*>(matrix.data()),
          static_cast<std::streamsize>(matrix.ByteSize()));
  if (!in) return Status::IoError("truncated matrix data: " + path);
  EM_RETURN_NOT_OK(ValidateMatrixFinite(matrix, path));
  return matrix;
}

Status ValidateMatrixFinite(const Matrix& matrix, const std::string& context) {
  for (size_t r = 0; r < matrix.rows(); ++r) {
    auto row = matrix.Row(r);
    for (size_t c = 0; c < row.size(); ++c) {
      if (!std::isfinite(row[c])) {
        return Status::InvalidArgument(
            "non-finite value at row " + std::to_string(r) + ", column " +
            std::to_string(c) + " in " + context);
      }
    }
  }
  return Status::OK();
}

}  // namespace entmatcher
