#ifndef ENTMATCHER_LA_SPARSE_H_
#define ENTMATCHER_LA_SPARSE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/memory_tracker.h"
#include "common/status.h"
#include "la/matrix.h"

namespace entmatcher {

/// CSR score matrix over an n×m logical score table: per source row a short
/// candidate list of (target column, score) entries, stored column-ascending.
/// This is the sub-quadratic sibling of the dense score Matrix — nnz is
/// O(n·c) for c candidates per row instead of O(n·m).
///
/// Storage follows the Matrix idiom: an owned SparseScores registers its
/// value/column buffers with MemoryTracker (CreateOwned); a borrowed one
/// wraps arena leases and leaves accounting to the arena (Borrowed). The
/// (rows+1) row-offset table is always owned — it is O(n), not O(nnz).
///
/// The column-ascending invariant is load-bearing: it makes CSR entry order
/// equal dense cell order (row-major), so sparse kernels that break score
/// ties by "first entry wins" or "lowest entry index wins" agree bit-for-bit
/// with their dense counterparts when candidate lists are complete.
class SparseScores {
 public:
  /// An empty 0×0 structure.
  SparseScores() = default;

  /// Owned storage for up to `nnz_capacity` entries; registers
  /// BytesFor(nnz_capacity) with the global MemoryTracker.
  static SparseScores CreateOwned(size_t rows, size_t cols,
                                  size_t nnz_capacity);

  /// Borrowed storage over external buffers of `nnz_capacity` floats /
  /// uint32s (workspace-arena leases). The buffers must outlive this object;
  /// the arena accounts for the bytes.
  static SparseScores Borrowed(size_t rows, size_t cols, float* values,
                               uint32_t* col_indices, size_t nnz_capacity);

  SparseScores(SparseScores&& other) noexcept;
  SparseScores& operator=(SparseScores&& other) noexcept;
  SparseScores(const SparseScores&) = delete;
  SparseScores& operator=(const SparseScores&) = delete;
  ~SparseScores();

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t capacity() const { return capacity_; }
  /// Filled entries: row_offsets()[rows]. Zero until the offsets are built.
  size_t nnz() const {
    return row_offsets_.empty() ? 0 : row_offsets_.back();
  }

  /// Bytes of entry storage (values + column indices) for `nnz` entries —
  /// the quantity an engine precheck declares and an arena leases.
  static size_t BytesFor(size_t nnz) {
    return nnz * (sizeof(float) + sizeof(uint32_t));
  }

  /// Raw entry storage (capacity() long). Fill protocol: write entries, then
  /// set the offsets, then Validate().
  float* values() { return values_; }
  const float* values() const { return values_; }
  uint32_t* col_indices() { return cols_ptr_; }
  const uint32_t* col_indices() const { return cols_ptr_; }

  /// The (rows+1) CSR offset table; row i owns entries
  /// [row_offsets()[i], row_offsets()[i+1]).
  std::vector<size_t>& mutable_row_offsets() { return row_offsets_; }
  const std::vector<size_t>& row_offsets() const { return row_offsets_; }

  /// Entry views for one row.
  std::span<float> RowValues(size_t i) {
    return std::span<float>(values_ + row_offsets_[i],
                            row_offsets_[i + 1] - row_offsets_[i]);
  }
  std::span<const float> RowValues(size_t i) const {
    return std::span<const float>(values_ + row_offsets_[i],
                                  row_offsets_[i + 1] - row_offsets_[i]);
  }
  std::span<const uint32_t> RowCols(size_t i) const {
    return std::span<const uint32_t>(cols_ptr_ + row_offsets_[i],
                                     row_offsets_[i + 1] - row_offsets_[i]);
  }

  /// Checks the CSR invariants: offsets monotone with back() <= capacity,
  /// every column < cols(), columns strictly ascending within each row.
  Status Validate() const;

  /// Dense expansion with `fill` in the non-candidate cells (tests and
  /// debugging only — this reintroduces the O(n·m) cost sparse avoids).
  Matrix ToDense(float fill) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  size_t capacity_ = 0;
  float* values_ = nullptr;
  uint32_t* cols_ptr_ = nullptr;
  bool owned_ = false;
  std::vector<float> values_store_;
  std::vector<uint32_t> cols_store_;
  std::vector<size_t> row_offsets_;
};

}  // namespace entmatcher

#endif  // ENTMATCHER_LA_SPARSE_H_
