#include "la/sparse.h"

#include <utility>

namespace entmatcher {

SparseScores SparseScores::CreateOwned(size_t rows, size_t cols,
                                       size_t nnz_capacity) {
  SparseScores s;
  s.rows_ = rows;
  s.cols_ = cols;
  s.capacity_ = nnz_capacity;
  s.owned_ = true;
  s.values_store_.assign(nnz_capacity, 0.0f);
  s.cols_store_.assign(nnz_capacity, 0);
  s.values_ = s.values_store_.data();
  s.cols_ptr_ = s.cols_store_.data();
  s.row_offsets_.assign(rows + 1, 0);
  MemoryTracker::Global().Add(BytesFor(nnz_capacity));
  return s;
}

SparseScores SparseScores::Borrowed(size_t rows, size_t cols, float* values,
                                    uint32_t* col_indices,
                                    size_t nnz_capacity) {
  SparseScores s;
  s.rows_ = rows;
  s.cols_ = cols;
  s.capacity_ = nnz_capacity;
  s.values_ = values;
  s.cols_ptr_ = col_indices;
  s.row_offsets_.assign(rows + 1, 0);
  return s;
}

SparseScores::SparseScores(SparseScores&& other) noexcept
    : rows_(other.rows_), cols_(other.cols_), capacity_(other.capacity_),
      owned_(other.owned_), values_store_(std::move(other.values_store_)),
      cols_store_(std::move(other.cols_store_)),
      row_offsets_(std::move(other.row_offsets_)) {
  values_ = owned_ ? values_store_.data() : other.values_;
  cols_ptr_ = owned_ ? cols_store_.data() : other.cols_ptr_;
  other.rows_ = 0;
  other.cols_ = 0;
  other.capacity_ = 0;
  other.values_ = nullptr;
  other.cols_ptr_ = nullptr;
  other.owned_ = false;
  other.row_offsets_.clear();
}

SparseScores& SparseScores::operator=(SparseScores&& other) noexcept {
  if (this == &other) return *this;
  if (owned_) MemoryTracker::Global().Sub(BytesFor(capacity_));
  rows_ = other.rows_;
  cols_ = other.cols_;
  capacity_ = other.capacity_;
  owned_ = other.owned_;
  values_store_ = std::move(other.values_store_);
  cols_store_ = std::move(other.cols_store_);
  row_offsets_ = std::move(other.row_offsets_);
  values_ = owned_ ? values_store_.data() : other.values_;
  cols_ptr_ = owned_ ? cols_store_.data() : other.cols_ptr_;
  other.rows_ = 0;
  other.cols_ = 0;
  other.capacity_ = 0;
  other.values_ = nullptr;
  other.cols_ptr_ = nullptr;
  other.owned_ = false;
  other.row_offsets_.clear();
  return *this;
}

SparseScores::~SparseScores() {
  if (owned_) MemoryTracker::Global().Sub(BytesFor(capacity_));
}

Status SparseScores::Validate() const {
  if (row_offsets_.size() != rows_ + 1) {
    return Status::InvalidArgument("SparseScores: row_offsets size mismatch");
  }
  if (row_offsets_.front() != 0) {
    return Status::InvalidArgument("SparseScores: row_offsets[0] must be 0");
  }
  for (size_t i = 0; i < rows_; ++i) {
    if (row_offsets_[i] > row_offsets_[i + 1]) {
      return Status::InvalidArgument(
          "SparseScores: row_offsets must be non-decreasing");
    }
  }
  if (row_offsets_.back() > capacity_) {
    return Status::InvalidArgument("SparseScores: nnz exceeds capacity");
  }
  for (size_t i = 0; i < rows_; ++i) {
    uint32_t prev = 0;
    bool first = true;
    for (size_t e = row_offsets_[i]; e < row_offsets_[i + 1]; ++e) {
      const uint32_t c = cols_ptr_[e];
      if (c >= cols_) {
        return Status::InvalidArgument(
            "SparseScores: column index out of range");
      }
      if (!first && c <= prev) {
        return Status::InvalidArgument(
            "SparseScores: columns must be strictly ascending within a row");
      }
      prev = c;
      first = false;
    }
  }
  return Status::OK();
}

Matrix SparseScores::ToDense(float fill) const {
  Matrix dense(rows_, cols_);
  dense.Fill(fill);
  for (size_t i = 0; i < rows_; ++i) {
    float* row = dense.Row(i).data();
    for (size_t e = row_offsets_[i]; e < row_offsets_[i + 1]; ++e) {
      row[cols_ptr_[e]] = values_[e];
    }
  }
  return dense;
}

}  // namespace entmatcher
