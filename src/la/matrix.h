#ifndef ENTMATCHER_LA_MATRIX_H_
#define ENTMATCHER_LA_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

#include "common/memory_tracker.h"
#include "common/status.h"

namespace entmatcher {

/// Dense row-major float matrix. The workhorse of the library: entity
/// embeddings are (num_entities × dim) matrices and pairwise score tables are
/// (n × m) matrices.
///
/// Buffers register with MemoryTracker so benchmark harnesses can report the
/// deterministic peak workspace of each matching algorithm (paper Fig. 5b,
/// Table 6).
///
/// Movable and copyable; copies are deep.
class Matrix {
 public:
  /// An empty 0×0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// A zero-initialized rows×cols matrix.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {
    MemoryTracker::Global().Add(ByteSize());
  }

  Matrix(const Matrix& other)
      : rows_(other.rows_), cols_(other.cols_), data_(other.data_) {
    MemoryTracker::Global().Add(ByteSize());
  }

  Matrix& operator=(const Matrix& other) {
    if (this == &other) return *this;
    MemoryTracker::Global().Sub(ByteSize());
    rows_ = other.rows_;
    cols_ = other.cols_;
    data_ = other.data_;
    MemoryTracker::Global().Add(ByteSize());
    return *this;
  }

  Matrix(Matrix&& other) noexcept
      : rows_(other.rows_), cols_(other.cols_), data_(std::move(other.data_)) {
    other.rows_ = 0;
    other.cols_ = 0;
    other.data_.clear();
  }

  Matrix& operator=(Matrix&& other) noexcept {
    if (this == &other) return *this;
    MemoryTracker::Global().Sub(ByteSize());
    rows_ = other.rows_;
    cols_ = other.cols_;
    data_ = std::move(other.data_);
    other.rows_ = 0;
    other.cols_ = 0;
    other.data_.clear();
    return *this;
  }

  ~Matrix() { MemoryTracker::Global().Sub(ByteSize()); }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  size_t ByteSize() const { return data_.size() * sizeof(float); }
  bool empty() const { return data_.empty(); }

  float& At(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float At(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Mutable view of one row.
  std::span<float> Row(size_t r) {
    assert(r < rows_);
    return std::span<float>(data_.data() + r * cols_, cols_);
  }
  /// Read-only view of one row.
  std::span<const float> Row(size_t r) const {
    assert(r < rows_);
    return std::span<const float>(data_.data() + r * cols_, cols_);
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Sets every element to `value`.
  void Fill(float value);

  /// Elementwise in-place scale: this *= factor.
  void Scale(float factor);

  /// Elementwise in-place add: this += other. Shapes must match.
  void Add(const Matrix& other);

  /// Returns the transposed matrix.
  Matrix Transposed() const;

  /// Builds a matrix from nested initializer data (for tests).
  static Matrix FromRows(const std::vector<std::vector<float>>& rows);

  /// True iff shapes and all elements are equal within `tol`.
  bool ApproxEquals(const Matrix& other, float tol) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<float> data_;
};

/// C = A * B^T where A is (n×d) and B is (m×d); returns (n×m).
/// This is the similarity-matrix building block (dot products of embedding
/// rows). Error if inner dimensions mismatch.
Result<Matrix> MatMulTransposed(const Matrix& a, const Matrix& b);

/// In-place L2 normalization of every row; zero rows are left unchanged.
void L2NormalizeRows(Matrix* m);

}  // namespace entmatcher

#endif  // ENTMATCHER_LA_MATRIX_H_
