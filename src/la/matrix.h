#ifndef ENTMATCHER_LA_MATRIX_H_
#define ENTMATCHER_LA_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

#include "common/memory_tracker.h"
#include "common/status.h"

namespace entmatcher {

/// Dense row-major float matrix. The workhorse of the library: entity
/// embeddings are (num_entities × dim) matrices and pairwise score tables are
/// (n × m) matrices.
///
/// A matrix either owns its buffer or borrows one (Matrix::Borrowed) — the
/// borrowed mode is how kernels write directly into Workspace arena memory.
/// Owned buffers register with MemoryTracker so benchmark harnesses can
/// report the deterministic peak workspace of each matching algorithm (paper
/// Fig. 5b, Table 6); borrowed buffers are accounted by their arena instead,
/// never double-counted here.
///
/// Movable and copyable; copies are deep and always owned, so copying a
/// borrowed matrix detaches it from the arena buffer.
class Matrix {
 public:
  /// An empty 0×0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// A zero-initialized rows×cols matrix (owned).
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f),
        ptr_(data_.data()) {
    MemoryTracker::Global().Add(ByteSize());
  }

  /// A non-owning matrix over an external buffer of rows*cols floats (arena
  /// memory). The buffer must outlive the matrix; the matrix does not touch
  /// MemoryTracker (the arena accounts for the bytes).
  static Matrix Borrowed(float* buffer, size_t rows, size_t cols) {
    Matrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.ptr_ = buffer;
    m.borrowed_ = true;
    return m;
  }

  Matrix(const Matrix& other)
      : rows_(other.rows_), cols_(other.cols_),
        data_(other.ptr_, other.ptr_ + other.size()), ptr_(data_.data()) {
    MemoryTracker::Global().Add(ByteSize());
  }

  Matrix& operator=(const Matrix& other) {
    if (this == &other) return *this;
    if (!borrowed_) MemoryTracker::Global().Sub(ByteSize());
    rows_ = other.rows_;
    cols_ = other.cols_;
    data_.assign(other.ptr_, other.ptr_ + other.size());
    ptr_ = data_.data();
    borrowed_ = false;
    MemoryTracker::Global().Add(ByteSize());
    return *this;
  }

  Matrix(Matrix&& other) noexcept
      : rows_(other.rows_), cols_(other.cols_), data_(std::move(other.data_)),
        borrowed_(other.borrowed_) {
    ptr_ = borrowed_ ? other.ptr_ : data_.data();
    other.rows_ = 0;
    other.cols_ = 0;
    other.data_.clear();
    other.ptr_ = nullptr;
    other.borrowed_ = false;
  }

  Matrix& operator=(Matrix&& other) noexcept {
    if (this == &other) return *this;
    if (!borrowed_) MemoryTracker::Global().Sub(ByteSize());
    rows_ = other.rows_;
    cols_ = other.cols_;
    data_ = std::move(other.data_);
    borrowed_ = other.borrowed_;
    ptr_ = borrowed_ ? other.ptr_ : data_.data();
    other.rows_ = 0;
    other.cols_ = 0;
    other.data_.clear();
    other.ptr_ = nullptr;
    other.borrowed_ = false;
    return *this;
  }

  ~Matrix() {
    if (!borrowed_) MemoryTracker::Global().Sub(ByteSize());
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return rows_ * cols_; }
  size_t ByteSize() const { return size() * sizeof(float); }
  bool empty() const { return size() == 0; }

  /// True when the buffer is externally owned (arena memory).
  bool borrowed() const { return borrowed_; }

  float& At(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return ptr_[r * cols_ + c];
  }
  float At(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return ptr_[r * cols_ + c];
  }

  /// Mutable view of one row.
  std::span<float> Row(size_t r) {
    assert(r < rows_);
    return std::span<float>(ptr_ + r * cols_, cols_);
  }
  /// Read-only view of one row.
  std::span<const float> Row(size_t r) const {
    assert(r < rows_);
    return std::span<const float>(ptr_ + r * cols_, cols_);
  }

  float* data() { return ptr_; }
  const float* data() const { return ptr_; }

  /// Sets every element to `value`.
  void Fill(float value);

  /// Elementwise in-place scale: this *= factor.
  void Scale(float factor);

  /// Elementwise in-place add: this += other. Shapes must match.
  void Add(const Matrix& other);

  /// Returns the transposed matrix.
  Matrix Transposed() const;

  /// Builds a matrix from nested initializer data (for tests).
  static Matrix FromRows(const std::vector<std::vector<float>>& rows);

  /// True iff shapes and all elements are equal within `tol`.
  bool ApproxEquals(const Matrix& other, float tol) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<float> data_;      // backing storage when owned
  float* ptr_ = nullptr;         // element storage (owned or borrowed)
  bool borrowed_ = false;
};

/// C = A * B^T where A is (n×d) and B is (m×d); returns (n×m).
/// This is the similarity-matrix building block (dot products of embedding
/// rows). Error if inner dimensions mismatch.
Result<Matrix> MatMulTransposed(const Matrix& a, const Matrix& b);

/// Tiled variant: computes rows [row_begin, row_end) of A * B^T into `out`,
/// which must be (row_end - row_begin) × b.rows(). Output row i of `out`
/// corresponds to A row (row_begin + i). Bit-identical to the same rows of
/// MatMulTransposed at every thread count — this is what lets the streaming
/// and dense paths share one execution layer.
Status MatMulTransposedRange(const Matrix& a, const Matrix& b,
                             size_t row_begin, size_t row_end, Matrix* out);

/// In-place L2 normalization of every row; zero rows are left unchanged.
void L2NormalizeRows(Matrix* m);

}  // namespace entmatcher

#endif  // ENTMATCHER_LA_MATRIX_H_
