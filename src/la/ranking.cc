#include "la/ranking.h"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/thread_pool.h"

namespace entmatcher {

Matrix RowRankMatrix(const Matrix& scores) {
  const size_t n = scores.rows();
  const size_t m = scores.cols();
  Matrix ranks(n, m);
  ParallelFor(0, n, 4, [&](size_t row_begin, size_t row_end) {
    std::vector<uint32_t> order(m);
    for (size_t r = row_begin; r < row_end; ++r) {
      auto row = scores.Row(r);
      std::iota(order.begin(), order.end(), 0u);
      std::sort(order.begin(), order.end(), [&row](uint32_t a, uint32_t b) {
        if (row[a] != row[b]) return row[a] > row[b];
        return a < b;
      });
      float* out = ranks.Row(r).data();
      for (size_t pos = 0; pos < m; ++pos) {
        out[order[pos]] = static_cast<float>(pos + 1);
      }
    }
  });
  return ranks;
}

void RowRankMatrixInPlace(Matrix* scores) {
  const size_t n = scores->rows();
  const size_t m = scores->cols();
  ParallelFor(0, n, 4, [&](size_t row_begin, size_t row_end) {
    std::vector<uint32_t> order(m);
    for (size_t r = row_begin; r < row_end; ++r) {
      auto row = scores->Row(r);
      std::iota(order.begin(), order.end(), 0u);
      std::sort(order.begin(), order.end(), [&row](uint32_t a, uint32_t b) {
        if (row[a] != row[b]) return row[a] > row[b];
        return a < b;
      });
      // The sort has consumed the row's values; overwriting is now safe.
      for (size_t pos = 0; pos < m; ++pos) {
        row[order[pos]] = static_cast<float>(pos + 1);
      }
    }
  });
}

}  // namespace entmatcher
