#include "la/kernels/quantized.h"

#include <bit>
#include <cmath>

#include "common/thread_pool.h"

namespace entmatcher {

const char* ScorePrecisionName(ScorePrecision precision) {
  switch (precision) {
    case ScorePrecision::kFloat32:
      return "float32";
    case ScorePrecision::kBf16:
      return "bf16";
    case ScorePrecision::kInt8:
      return "int8";
  }
  return "?";
}

Result<ScorePrecision> ParseScorePrecision(std::string_view name) {
  if (name == "float32") return ScorePrecision::kFloat32;
  if (name == "bf16") return ScorePrecision::kBf16;
  if (name == "int8") return ScorePrecision::kInt8;
  return Status::InvalidArgument("unknown score precision: '" +
                                 std::string(name) +
                                 "' (want float32|bf16|int8)");
}

Result<QuantizedMatrix> QuantizedMatrix::Create(const Matrix& source,
                                                ScorePrecision precision) {
  if (precision == ScorePrecision::kFloat32) {
    return Status::InvalidArgument(
        "QuantizedMatrix: float32 is the unquantized pipeline");
  }
  if (source.empty()) {
    return Status::InvalidArgument("QuantizedMatrix: empty source matrix");
  }
  QuantizedMatrix q;
  q.precision_ = precision;
  q.rows_ = source.rows();
  q.cols_ = source.cols();
  const size_t d = q.cols_;
  switch (precision) {
    case ScorePrecision::kFloat32:
      break;  // unreachable, rejected above
    case ScorePrecision::kBf16: {
      q.bf16_.resize(q.rows_ * d);
      ParallelFor(0, q.rows_, 64, [&](size_t begin, size_t end) {
        for (size_t r = begin; r < end; ++r) {
          const float* row = source.Row(r).data();
          uint16_t* out = q.bf16_.data() + r * d;
          for (size_t k = 0; k < d; ++k) {
            out[k] = static_cast<uint16_t>(std::bit_cast<uint32_t>(row[k]) >>
                                           16);
          }
        }
      });
      break;
    }
    case ScorePrecision::kInt8: {
      q.i8_.resize(q.rows_ * d);
      q.row_scales_.resize(q.rows_);
      ParallelFor(0, q.rows_, 64, [&](size_t begin, size_t end) {
        for (size_t r = begin; r < end; ++r) {
          const float* row = source.Row(r).data();
          float max_abs = 0.0f;
          for (size_t k = 0; k < d; ++k) {
            const float a = std::fabs(row[k]);
            if (a > max_abs) max_abs = a;
          }
          const float scale = max_abs / 127.0f;
          q.row_scales_[r] = scale;
          int8_t* out = q.i8_.data() + r * d;
          if (scale == 0.0f) {
            for (size_t k = 0; k < d; ++k) out[k] = 0;
            continue;
          }
          const float inv = 1.0f / scale;
          for (size_t k = 0; k < d; ++k) {
            const float scaled = row[k] * inv;
            const float clamped =
                scaled > 127.0f ? 127.0f : (scaled < -127.0f ? -127.0f : scaled);
            out[k] = static_cast<int8_t>(std::lrintf(clamped));
          }
        }
      });
      break;
    }
  }
  MemoryTracker::Global().Add(q.ByteSize());
  return q;
}

float QuantizedDot(const QuantizedMatrix& a, size_t i, const QuantizedMatrix& b,
                   size_t j) {
  assert(a.precision() == b.precision() && a.cols() == b.cols());
  const KernelOps& ops = ActiveKernels();
  const size_t d = a.cols();
  switch (a.precision()) {
    case ScorePrecision::kFloat32:
      return 0.0f;  // no storage in this format; callers never reach here
    case ScorePrecision::kBf16:
      return ops.dot_bf16(a.Bf16Row(i), b.Bf16Row(j), d);
    case ScorePrecision::kInt8:
      return static_cast<float>(ops.dot_i8(a.I8Row(i), b.I8Row(j), d)) *
             a.RowScale(i) * b.RowScale(j);
  }
  return 0.0f;
}

}  // namespace entmatcher
