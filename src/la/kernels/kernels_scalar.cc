// Scalar reference tier. Every loop here is the pre-SIMD implementation kept
// verbatim — the EM_KERNEL_TIER=scalar output must stay bit-identical to the
// code it replaced, and the vector tiers are tested against these ops.

#include <algorithm>
#include <bit>
#include <cmath>

#include "la/kernels/dispatch.h"

namespace entmatcher {
namespace {

float DotScalar(const float* a, const float* b, size_t d) {
  float acc = 0.0f;
  for (size_t k = 0; k < d; ++k) acc += a[k] * b[k];
  return acc;
}

// The original MatMulTransposedRange body: row/column blocks of 32 around the
// scalar dot. Blocking only changes cell visit order, never a cell's value,
// but it is kept anyway so the scalar tier is the old code, not merely
// equivalent to it.
void MatMulTileScalar(const float* a, size_t a_stride, size_t rows,
                      const float* b, size_t b_stride, size_t cols, size_t d,
                      float* c, size_t c_stride) {
  constexpr size_t kBlock = 32;
  for (size_t ib = 0; ib < rows; ib += kBlock) {
    const size_t i_end = std::min(rows, ib + kBlock);
    for (size_t jb = 0; jb < cols; jb += kBlock) {
      const size_t j_end = std::min(cols, jb + kBlock);
      for (size_t i = ib; i < i_end; ++i) {
        const float* arow = a + i * a_stride;
        float* crow = c + i * c_stride;
        for (size_t j = jb; j < j_end; ++j) {
          crow[j] = DotScalar(arow, b + j * b_stride, d);
        }
      }
    }
  }
}

double SquaredNormScalar(const float* v, size_t d) {
  double sq = 0.0;
  for (size_t k = 0; k < d; ++k) sq += static_cast<double>(v[k]) * v[k];
  return sq;
}

float ManhattanScalar(const float* a, const float* b, size_t d) {
  float dist = 0.0f;
  for (size_t k = 0; k < d; ++k) dist += std::fabs(a[k] - b[k]);
  return dist;
}

void ScaleScalar(float* v, size_t d, float factor) {
  for (size_t k = 0; k < d; ++k) v[k] *= factor;
}

void ScaleCopyScalar(const float* src, float* dst, size_t d, float factor) {
  for (size_t k = 0; k < d; ++k) dst[k] = src[k] * factor;
}

void CosineScaleRowScalar(float* row, const float* inv_tgt, size_t m,
                          float si) {
  for (size_t j = 0; j < m; ++j) row[j] *= si * inv_tgt[j];
}

double SumScalar(const float* v, size_t d) {
  double sum = 0.0;
  for (size_t k = 0; k < d; ++k) sum += v[k];
  return sum;
}

float MaxScalar(const float* v, size_t d) {
  float best = v[0];
  for (size_t k = 1; k < d; ++k) {
    if (v[k] > best) best = v[k];
  }
  return best;
}

size_t ArgmaxScalar(const float* v, size_t d) {
  size_t best = 0;
  for (size_t k = 1; k < d; ++k) {
    if (v[k] > v[best]) best = k;
  }
  return best;
}

void AccumulateMaxScalar(float* acc, const float* row, size_t d) {
  for (size_t k = 0; k < d; ++k) {
    if (row[k] > acc[k]) acc[k] = row[k];
  }
}

void AccumulateColsScalar(double* acc, const float* row, size_t d) {
  for (size_t k = 0; k < d; ++k) acc[k] += row[k];
}

void MulColsScalar(float* dst, const float* src, const double* col_inv,
                   size_t d) {
  for (size_t k = 0; k < d; ++k) {
    dst[k] = static_cast<float>(src[k] * col_inv[k]);
  }
}

uint64_t MaskGtScalarTier(const float* a, const float* b, size_t n) {
  uint64_t mask = 0;
  for (size_t k = 0; k < n; ++k) {
    if (a[k] > b[k]) mask |= uint64_t{1} << k;
  }
  return mask;
}

uint64_t MaskGtScalarScalarTier(const float* a, float threshold, size_t n) {
  uint64_t mask = 0;
  for (size_t k = 0; k < n; ++k) {
    if (a[k] > threshold) mask |= uint64_t{1} << k;
  }
  return mask;
}

float DecodeBf16(uint16_t u) {
  return std::bit_cast<float>(static_cast<uint32_t>(u) << 16);
}

float DotBf16Scalar(const uint16_t* a, const uint16_t* b, size_t d) {
  float acc = 0.0f;
  for (size_t k = 0; k < d; ++k) acc += DecodeBf16(a[k]) * DecodeBf16(b[k]);
  return acc;
}

int32_t DotI8Scalar(const int8_t* a, const int8_t* b, size_t d) {
  int32_t acc = 0;
  for (size_t k = 0; k < d; ++k) {
    acc += static_cast<int32_t>(a[k]) * static_cast<int32_t>(b[k]);
  }
  return acc;
}

const KernelOps kScalarOps = {
    /*tier=*/KernelTier::kScalar,
    /*name=*/"scalar",
    /*dot=*/DotScalar,
    /*matmul_tile=*/MatMulTileScalar,
    /*squared_norm=*/SquaredNormScalar,
    /*manhattan=*/ManhattanScalar,
    /*scale=*/ScaleScalar,
    /*scale_copy=*/ScaleCopyScalar,
    /*cosine_scale_row=*/CosineScaleRowScalar,
    /*sum=*/SumScalar,
    /*max=*/MaxScalar,
    /*argmax=*/ArgmaxScalar,
    /*accumulate_max=*/AccumulateMaxScalar,
    /*accumulate_cols=*/AccumulateColsScalar,
    /*mul_cols=*/MulColsScalar,
    /*mask_gt=*/MaskGtScalarTier,
    /*mask_gt_scalar=*/MaskGtScalarScalarTier,
    /*dot_bf16=*/DotBf16Scalar,
    /*dot_i8=*/DotI8Scalar,
};

}  // namespace

const KernelOps* GetScalarKernels() { return &kScalarOps; }

}  // namespace entmatcher
