// AVX-512 tier (requires F+BW+DQ+VL). Compiled with its own -m flags; only
// dispatch.cc calls GetAvx512Kernels(), after the CPU probe. Lane masks make
// the tails branch-free: masked-off lanes load as +0.0f, and 0*0+acc == acc
// exactly, so folding a masked FMA into an accumulator is a no-op for dead
// lanes. The same bit-exactness split as the AVX2 tier applies: elementwise
// ops are identical to scalar per element, reductions reassociate.

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <bit>
#include <cmath>
#include <limits>

#include "la/kernels/dispatch.h"

namespace entmatcher {
namespace {

inline __mmask16 TailMask16(size_t remaining) {
  return static_cast<__mmask16>((1u << remaining) - 1u);
}

inline __mmask8 TailMask8(size_t remaining) {
  return static_cast<__mmask8>((1u << remaining) - 1u);
}

// Shared by DotAvx512 and every cell of MatMulTileAvx512 (sparse rerank ==
// dense cell bit-identity at this tier, same as the other tiers).
inline float Dot(const float* a, const float* b, size_t d) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  __m512 acc2 = _mm512_setzero_ps();
  __m512 acc3 = _mm512_setzero_ps();
  size_t k = 0;
  for (; k + 64 <= d; k += 64) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + k), _mm512_loadu_ps(b + k),
                           acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + k + 16),
                           _mm512_loadu_ps(b + k + 16), acc1);
    acc2 = _mm512_fmadd_ps(_mm512_loadu_ps(a + k + 32),
                           _mm512_loadu_ps(b + k + 32), acc2);
    acc3 = _mm512_fmadd_ps(_mm512_loadu_ps(a + k + 48),
                           _mm512_loadu_ps(b + k + 48), acc3);
  }
  for (; k + 16 <= d; k += 16) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + k), _mm512_loadu_ps(b + k),
                           acc0);
  }
  if (k < d) {
    const __mmask16 m = TailMask16(d - k);
    acc1 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(m, a + k),
                           _mm512_maskz_loadu_ps(m, b + k), acc1);
  }
  return _mm512_reduce_add_ps(
      _mm512_add_ps(_mm512_add_ps(acc0, acc1), _mm512_add_ps(acc2, acc3)));
}

float DotAvx512(const float* a, const float* b, size_t d) {
  return Dot(a, b, d);
}

void MatMulTileAvx512(const float* a, size_t a_stride, size_t rows,
                      const float* b, size_t b_stride, size_t cols, size_t d,
                      float* c, size_t c_stride) {
  constexpr size_t kBlock = 32;
  for (size_t ib = 0; ib < rows; ib += kBlock) {
    const size_t i_end = ib + kBlock < rows ? ib + kBlock : rows;
    for (size_t jb = 0; jb < cols; jb += kBlock) {
      const size_t j_end = jb + kBlock < cols ? jb + kBlock : cols;
      for (size_t i = ib; i < i_end; ++i) {
        const float* arow = a + i * a_stride;
        float* crow = c + i * c_stride;
        for (size_t j = jb; j < j_end; ++j) {
          crow[j] = Dot(arow, b + j * b_stride, d);
        }
      }
    }
  }
}

double SquaredNormAvx512(const float* v, size_t d) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  size_t k = 0;
  for (; k + 16 <= d; k += 16) {
    const __m512d x0 = _mm512_cvtps_pd(_mm256_loadu_ps(v + k));
    const __m512d x1 = _mm512_cvtps_pd(_mm256_loadu_ps(v + k + 8));
    acc0 = _mm512_fmadd_pd(x0, x0, acc0);
    acc1 = _mm512_fmadd_pd(x1, x1, acc1);
  }
  double r = _mm512_reduce_add_pd(_mm512_add_pd(acc0, acc1));
  for (; k < d; ++k) r += static_cast<double>(v[k]) * v[k];
  return r;
}

float ManhattanAvx512(const float* a, const float* b, size_t d) {
  __m512 acc = _mm512_setzero_ps();
  size_t k = 0;
  for (; k + 16 <= d; k += 16) {
    const __m512 diff = _mm512_sub_ps(_mm512_loadu_ps(a + k),
                                      _mm512_loadu_ps(b + k));
    acc = _mm512_add_ps(acc, _mm512_abs_ps(diff));
  }
  if (k < d) {
    const __mmask16 m = TailMask16(d - k);
    const __m512 diff = _mm512_sub_ps(_mm512_maskz_loadu_ps(m, a + k),
                                      _mm512_maskz_loadu_ps(m, b + k));
    acc = _mm512_add_ps(acc, _mm512_abs_ps(diff));
  }
  return _mm512_reduce_add_ps(acc);
}

void ScaleAvx512(float* v, size_t d, float factor) {
  const __m512 f = _mm512_set1_ps(factor);
  size_t k = 0;
  for (; k + 16 <= d; k += 16) {
    _mm512_storeu_ps(v + k, _mm512_mul_ps(_mm512_loadu_ps(v + k), f));
  }
  if (k < d) {
    const __mmask16 m = TailMask16(d - k);
    _mm512_mask_storeu_ps(
        v + k, m, _mm512_mul_ps(_mm512_maskz_loadu_ps(m, v + k), f));
  }
}

void ScaleCopyAvx512(const float* src, float* dst, size_t d, float factor) {
  const __m512 f = _mm512_set1_ps(factor);
  size_t k = 0;
  for (; k + 16 <= d; k += 16) {
    _mm512_storeu_ps(dst + k, _mm512_mul_ps(_mm512_loadu_ps(src + k), f));
  }
  if (k < d) {
    const __mmask16 m = TailMask16(d - k);
    _mm512_mask_storeu_ps(
        dst + k, m, _mm512_mul_ps(_mm512_maskz_loadu_ps(m, src + k), f));
  }
}

void CosineScaleRowAvx512(float* row, const float* inv_tgt, size_t m,
                          float si) {
  // Two separate multiplies (no FMA): identical rounding to the scalar tier.
  const __m512 s = _mm512_set1_ps(si);
  size_t j = 0;
  for (; j + 16 <= m; j += 16) {
    const __m512 t = _mm512_mul_ps(s, _mm512_loadu_ps(inv_tgt + j));
    _mm512_storeu_ps(row + j, _mm512_mul_ps(_mm512_loadu_ps(row + j), t));
  }
  if (j < m) {
    const __mmask16 mask = TailMask16(m - j);
    const __m512 t = _mm512_mul_ps(s, _mm512_maskz_loadu_ps(mask, inv_tgt + j));
    _mm512_mask_storeu_ps(
        row + j, mask,
        _mm512_mul_ps(_mm512_maskz_loadu_ps(mask, row + j), t));
  }
}

double SumAvx512(const float* v, size_t d) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  size_t k = 0;
  for (; k + 16 <= d; k += 16) {
    acc0 = _mm512_add_pd(acc0, _mm512_cvtps_pd(_mm256_loadu_ps(v + k)));
    acc1 = _mm512_add_pd(acc1, _mm512_cvtps_pd(_mm256_loadu_ps(v + k + 8)));
  }
  double r = _mm512_reduce_add_pd(_mm512_add_pd(acc0, acc1));
  for (; k < d; ++k) r += v[k];
  return r;
}

float MaxAvx512(const float* v, size_t d) {
  if (d < 16 || std::isnan(v[0])) {
    float best = v[0];
    for (size_t k = 1; k < d; ++k) {
      if (v[k] > best) best = v[k];
    }
    return best;
  }
  // Masked compare+move rejects NaN elements like the scalar strict `>`.
  __m512 acc = _mm512_set1_ps(-std::numeric_limits<float>::infinity());
  size_t k = 0;
  for (; k + 16 <= d; k += 16) {
    const __m512 chunk = _mm512_loadu_ps(v + k);
    const __mmask16 gt = _mm512_cmp_ps_mask(chunk, acc, _CMP_GT_OQ);
    acc = _mm512_mask_mov_ps(acc, gt, chunk);
  }
  float best = _mm512_reduce_max_ps(acc);  // acc is NaN-free by construction
  for (; k < d; ++k) {
    if (v[k] > best) best = v[k];
  }
  return best;
}

size_t ArgmaxAvx512(const float* v, size_t d) {
  if (d < 32 || std::isnan(v[0])) {
    size_t best = 0;
    for (size_t k = 1; k < d; ++k) {
      if (v[k] > v[best]) best = k;
    }
    return best;
  }
  __m512 bvals = _mm512_set1_ps(-std::numeric_limits<float>::infinity());
  __m512i bidx = _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                                   13, 14, 15);
  __m512i cur = bidx;
  const __m512i step = _mm512_set1_epi32(16);
  size_t k = 0;
  for (; k + 16 <= d; k += 16) {
    const __m512 chunk = _mm512_loadu_ps(v + k);
    const __mmask16 gt = _mm512_cmp_ps_mask(chunk, bvals, _CMP_GT_OQ);
    bvals = _mm512_mask_mov_ps(bvals, gt, chunk);
    bidx = _mm512_mask_mov_epi32(bidx, gt, cur);
    cur = _mm512_add_epi32(cur, step);
  }
  alignas(64) float lanes[16];
  alignas(64) uint32_t idxs[16];
  _mm512_store_ps(lanes, bvals);
  _mm512_store_si512(idxs, bidx);
  float best = lanes[0];
  size_t besti = idxs[0];
  for (int l = 1; l < 16; ++l) {
    if (lanes[l] > best || (lanes[l] == best && idxs[l] < besti)) {
      best = lanes[l];
      besti = idxs[l];
    }
  }
  for (; k < d; ++k) {
    if (v[k] > best) {
      best = v[k];
      besti = k;
    }
  }
  return besti;
}

void AccumulateMaxAvx512(float* acc, const float* row, size_t d) {
  for (size_t k = 0; k < d; k += 16) {
    const __mmask16 lane = d - k >= 16 ? static_cast<__mmask16>(0xFFFF)
                                       : TailMask16(d - k);
    const __m512 r = _mm512_maskz_loadu_ps(lane, row + k);
    const __m512 a = _mm512_maskz_loadu_ps(lane, acc + k);
    const __mmask16 gt = _mm512_mask_cmp_ps_mask(lane, r, a, _CMP_GT_OQ);
    _mm512_mask_storeu_ps(acc + k, gt, r);
  }
}

void AccumulateColsAvx512(double* acc, const float* row, size_t d) {
  size_t k = 0;
  for (; k + 8 <= d; k += 8) {
    const __m512d a = _mm512_loadu_pd(acc + k);
    const __m512d r = _mm512_cvtps_pd(_mm256_loadu_ps(row + k));
    _mm512_storeu_pd(acc + k, _mm512_add_pd(a, r));
  }
  if (k < d) {
    const __mmask8 m = TailMask8(d - k);
    const __m512d a = _mm512_maskz_loadu_pd(m, acc + k);
    const __m512d r =
        _mm512_cvtps_pd(_mm256_maskz_loadu_ps(m, row + k));
    _mm512_mask_storeu_pd(acc + k, m, _mm512_add_pd(a, r));
  }
}

void MulColsAvx512(float* dst, const float* src, const double* col_inv,
                   size_t d) {
  size_t k = 0;
  for (; k + 8 <= d; k += 8) {
    const __m512d s = _mm512_cvtps_pd(_mm256_loadu_ps(src + k));
    const __m512d p = _mm512_mul_pd(s, _mm512_loadu_pd(col_inv + k));
    _mm256_storeu_ps(dst + k, _mm512_cvtpd_ps(p));
  }
  if (k < d) {
    const __mmask8 m = TailMask8(d - k);
    const __m512d s = _mm512_cvtps_pd(_mm256_maskz_loadu_ps(m, src + k));
    const __m512d p = _mm512_mul_pd(s, _mm512_maskz_loadu_pd(m, col_inv + k));
    _mm256_mask_storeu_ps(dst + k, m, _mm512_cvtpd_ps(p));
  }
}

uint64_t MaskGtAvx512(const float* a, const float* b, size_t n) {
  uint64_t mask = 0;
  for (size_t k = 0; k < n; k += 16) {
    const __mmask16 lane = n - k >= 16 ? static_cast<__mmask16>(0xFFFF)
                                       : TailMask16(n - k);
    const __mmask16 gt = _mm512_mask_cmp_ps_mask(
        lane, _mm512_maskz_loadu_ps(lane, a + k),
        _mm512_maskz_loadu_ps(lane, b + k), _CMP_GT_OQ);
    mask |= static_cast<uint64_t>(static_cast<uint16_t>(gt)) << k;
  }
  return mask;
}

uint64_t MaskGtScalarAvx512(const float* a, float threshold, size_t n) {
  const __m512 t = _mm512_set1_ps(threshold);
  uint64_t mask = 0;
  for (size_t k = 0; k < n; k += 16) {
    const __mmask16 lane = n - k >= 16 ? static_cast<__mmask16>(0xFFFF)
                                       : TailMask16(n - k);
    const __mmask16 gt = _mm512_mask_cmp_ps_mask(
        lane, _mm512_maskz_loadu_ps(lane, a + k), t, _CMP_GT_OQ);
    mask |= static_cast<uint64_t>(static_cast<uint16_t>(gt)) << k;
  }
  return mask;
}

inline __m512 LoadBf16(const uint16_t* p, __mmask16 m) {
  const __m256i half = _mm256_maskz_loadu_epi16(m, p);
  const __m512i wide = _mm512_cvtepu16_epi32(half);
  return _mm512_castsi512_ps(_mm512_slli_epi32(wide, 16));
}

float DotBf16Avx512(const uint16_t* a, const uint16_t* b, size_t d) {
  constexpr __mmask16 kFull = 0xFFFF;
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  size_t k = 0;
  for (; k + 32 <= d; k += 32) {
    acc0 = _mm512_fmadd_ps(LoadBf16(a + k, kFull), LoadBf16(b + k, kFull),
                           acc0);
    acc1 = _mm512_fmadd_ps(LoadBf16(a + k + 16, kFull),
                           LoadBf16(b + k + 16, kFull), acc1);
  }
  for (; k + 16 <= d; k += 16) {
    acc0 = _mm512_fmadd_ps(LoadBf16(a + k, kFull), LoadBf16(b + k, kFull),
                           acc0);
  }
  if (k < d) {
    const __mmask16 m = TailMask16(d - k);
    acc1 = _mm512_fmadd_ps(LoadBf16(a + k, m), LoadBf16(b + k, m), acc1);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
}

int32_t DotI8Avx512(const int8_t* a, const int8_t* b, size_t d) {
  __m512i acc = _mm512_setzero_si512();
  size_t k = 0;
  for (; k + 32 <= d; k += 32) {
    const __m512i av = _mm512_cvtepi8_epi16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + k)));
    const __m512i bv = _mm512_cvtepi8_epi16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + k)));
    acc = _mm512_add_epi32(acc, _mm512_madd_epi16(av, bv));
  }
  int32_t r = _mm512_reduce_add_epi32(acc);
  for (; k < d; ++k) {
    r += static_cast<int32_t>(a[k]) * static_cast<int32_t>(b[k]);
  }
  return r;
}

const KernelOps kAvx512Ops = {
    /*tier=*/KernelTier::kAvx512,
    /*name=*/"avx512",
    /*dot=*/DotAvx512,
    /*matmul_tile=*/MatMulTileAvx512,
    /*squared_norm=*/SquaredNormAvx512,
    /*manhattan=*/ManhattanAvx512,
    /*scale=*/ScaleAvx512,
    /*scale_copy=*/ScaleCopyAvx512,
    /*cosine_scale_row=*/CosineScaleRowAvx512,
    /*sum=*/SumAvx512,
    /*max=*/MaxAvx512,
    /*argmax=*/ArgmaxAvx512,
    /*accumulate_max=*/AccumulateMaxAvx512,
    /*accumulate_cols=*/AccumulateColsAvx512,
    /*mul_cols=*/MulColsAvx512,
    /*mask_gt=*/MaskGtAvx512,
    /*mask_gt_scalar=*/MaskGtScalarAvx512,
    /*dot_bf16=*/DotBf16Avx512,
    /*dot_i8=*/DotI8Avx512,
};

}  // namespace

const KernelOps* GetAvx512Kernels() { return &kAvx512Ops; }

}  // namespace entmatcher

#endif  // x86_64
