#ifndef ENTMATCHER_LA_KERNELS_DISPATCH_H_
#define ENTMATCHER_LA_KERNELS_DISPATCH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace entmatcher {

/// Vector-ISA tiers of the numeric kernel layer. The scalar tier is the
/// original (pre-SIMD) C++ loops kept verbatim — it is the bit-exactness
/// oracle every other tier is tested against. Vector tiers may reorder float
/// accumulation (per-cell |Δ| ≤ 1e-5 against scalar, pinned by the `kernels`
/// test label) but are individually deterministic: a given tier produces the
/// same bits at every thread count, every run.
enum class KernelTier {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
  kNeon = 3,
};

/// Number of KernelTier values (array sizing).
inline constexpr size_t kNumKernelTiers = 4;

/// The flat function table one tier exports. All pointers are non-null in a
/// registered tier; callers pick ops off ActiveKernels() inside their own
/// ParallelFor partitioning, so every op is thread-free and operates on raw
/// row pointers.
///
/// Bit-exactness contracts (load-bearing — tests assert them):
///  - `dot` and each cell of `matmul_tile` share one accumulation order per
///    tier, so the candidate-index rerank (PairSimilarity → dot) emits entries
///    bit-identical to the dense matmul cells at EVERY tier, not just scalar.
///  - Elementwise ops (scale, scale_copy, cosine_scale_row, accumulate_max,
///    accumulate_cols, mul_cols, max, argmax, mask_*) are bit-identical to
///    scalar at every tier: same arithmetic per element, no reassociation.
///  - Reductions (squared_norm, sum, manhattan) and the quantized bf16 dot may
///    reassociate; int8 dot is integer arithmetic and therefore bit-identical
///    across tiers.
struct KernelOps {
  KernelTier tier = KernelTier::kScalar;
  const char* name = "scalar";

  /// Inner product of two d-length rows, accumulated in float.
  float (*dot)(const float* a, const float* b, size_t d);

  /// C[r * c_stride + j] = dot(a + r * a_stride, b + j * b_stride) for
  /// r < rows, j < cols. Register-blocked per tier; each output cell replays
  /// `dot`'s accumulation order exactly.
  void (*matmul_tile)(const float* a, size_t a_stride, size_t rows,
                      const float* b, size_t b_stride, size_t cols, size_t d,
                      float* c, size_t c_stride);

  /// Sum of squares accumulated in double (norm caches, L2 normalization).
  double (*squared_norm)(const float* v, size_t d);

  /// Sum of |a[k] - b[k]| accumulated in float (Manhattan distance).
  float (*manhattan)(const float* a, const float* b, size_t d);

  /// v[k] *= factor.
  void (*scale)(float* v, size_t d, float factor);

  /// dst[k] = src[k] * factor (Sinkhorn row normalization into the buffer).
  void (*scale_copy)(const float* src, float* dst, size_t d, float factor);

  /// row[j] *= si * inv_tgt[j] — the fused cosine inverse-norm scaling, with
  /// the source-side inverse norm hoisted into a broadcast operand.
  void (*cosine_scale_row)(float* row, const float* inv_tgt, size_t m,
                           float si);

  /// Sum accumulated in double (Sinkhorn row sums).
  double (*sum)(const float* v, size_t d);

  /// Maximum element (first maximum; order-independent value).
  float (*max)(const float* v, size_t d);

  /// Index of the maximum element, ties to the lowest index.
  size_t (*argmax)(const float* v, size_t d);

  /// acc[j] = max(acc[j], row[j]) (streaming column max).
  void (*accumulate_max)(float* acc, const float* row, size_t d);

  /// acc[j] += row[j], double accumulators (Sinkhorn column sums).
  void (*accumulate_cols)(double* acc, const float* row, size_t d);

  /// dst[j] = float(double(src[j]) * col_inv[j]) (Sinkhorn column scaling).
  void (*mul_cols)(float* dst, const float* src, const double* col_inv,
                   size_t d);

  /// Bit i set iff a[i] > b[i], for i < n <= 64. The compare-and-select
  /// filter behind the partial top-k kernels: most score entries fail the
  /// running threshold, so whole vector lanes are skipped per compare.
  uint64_t (*mask_gt)(const float* a, const float* b, size_t n);

  /// Bit i set iff a[i] > threshold, for i < n <= 64.
  uint64_t (*mask_gt_scalar)(const float* a, float threshold, size_t n);

  /// bf16 inner product: operands are float bit patterns truncated to their
  /// high 16 bits; accumulated in float.
  float (*dot_bf16)(const uint16_t* a, const uint16_t* b, size_t d);

  /// int8 inner product accumulated in int32 — integer math, bit-identical
  /// across tiers.
  int32_t (*dot_i8)(const int8_t* a, const int8_t* b, size_t d);
};

/// Display name ("scalar", "avx2", "avx512", "neon").
const char* KernelTierName(KernelTier tier);

/// Parses "scalar" | "avx2" | "avx512" | "neon". "auto" is not a tier —
/// resolve it with BestAvailableKernelTier().
Result<KernelTier> ParseKernelTier(std::string_view name);

/// True when `tier` was compiled in AND the running CPU supports it.
bool KernelTierAvailable(KernelTier tier);

/// The widest available tier on this CPU (what EM_KERNEL_TIER=auto picks).
KernelTier BestAvailableKernelTier();

/// The active tier's function table. On first use the tier is resolved from
/// EM_KERNEL_TIER (scalar|avx2|avx512|neon|auto; unset or invalid values fall
/// back to auto with a warning), making the choice a pure startup decision —
/// steady-state reads are a single atomic load.
const KernelOps& ActiveKernels();

/// The active tier.
KernelTier ActiveKernelTier();

/// Forces a tier (tests, CLI --kernel-tier). Fails with kInvalidArgument when
/// the tier is not available on this CPU/build. Not synchronized against
/// kernels already running on other threads — switch tiers only between
/// queries (the CLI does it before any engine exists).
Status SetKernelTier(KernelTier tier);

/// Space-separated vector features detected on this CPU at startup (e.g.
/// "avx2 fma avx512f avx512bw avx512dq avx512vl"), independent of which tiers
/// were compiled in. Empty string when none.
std::string DetectedCpuFeatures();

/// One JSON object for health/stats surfaces:
/// {"tier": "avx512", "available": "scalar avx2 avx512", "cpu": "..."}.
std::string KernelStatusJson();

// Per-tier registration hooks (defined in the per-ISA translation units,
// compiled with that ISA's -m flags; null when the build does not include
// the tier). Only dispatch.cc calls these.
const KernelOps* GetScalarKernels();
const KernelOps* GetAvx2Kernels();   // null unless ENTMATCHER_HAVE_AVX2
const KernelOps* GetAvx512Kernels(); // null unless ENTMATCHER_HAVE_AVX512
const KernelOps* GetNeonKernels();   // null unless ENTMATCHER_HAVE_NEON

}  // namespace entmatcher

#endif  // ENTMATCHER_LA_KERNELS_DISPATCH_H_
