#ifndef ENTMATCHER_LA_KERNELS_QUANTIZED_H_
#define ENTMATCHER_LA_KERNELS_QUANTIZED_H_

#include <cstdint>
#include <vector>

#include "common/memory_tracker.h"
#include "common/status.h"
#include "la/kernels/dispatch.h"
#include "la/matrix.h"

namespace entmatcher {

/// Numeric format of the candidate-generation scoring pass. Mixed precision
/// is candidate-generation only: the engine always reranks the surviving
/// candidates with the exact float kernel, so the final scores that reach
/// transforms and matchers are full-precision either way.
enum class ScorePrecision : uint8_t {
  kFloat32 = 0,  // dense float pipeline, no quantization
  kBf16 = 1,     // bfloat16: float with the low 16 mantissa bits dropped
  kInt8 = 2,     // int8 with one scale per row (symmetric, max-abs)
};

/// Display name ("float32", "bf16", "int8").
const char* ScorePrecisionName(ScorePrecision precision);

/// Parses "float32" | "bf16" | "int8".
Result<ScorePrecision> ParseScorePrecision(std::string_view name);

/// A row-major quantized copy of an embedding matrix, built once at load and
/// reused across every query against the pair (the engine caches one per
/// precision). Owned storage registers with MemoryTracker like Matrix does,
/// so workspace reports include the quantized shadow copies.
class QuantizedMatrix {
 public:
  QuantizedMatrix() = default;

  QuantizedMatrix(const QuantizedMatrix&) = delete;
  QuantizedMatrix& operator=(const QuantizedMatrix&) = delete;
  QuantizedMatrix(QuantizedMatrix&& other) noexcept { *this = std::move(other); }
  QuantizedMatrix& operator=(QuantizedMatrix&& other) noexcept {
    if (this == &other) return *this;
    MemoryTracker::Global().Sub(ByteSize());
    precision_ = other.precision_;
    rows_ = other.rows_;
    cols_ = other.cols_;
    bf16_ = std::move(other.bf16_);
    i8_ = std::move(other.i8_);
    row_scales_ = std::move(other.row_scales_);
    other.precision_ = ScorePrecision::kFloat32;
    other.rows_ = 0;
    other.cols_ = 0;
    other.bf16_.clear();
    other.i8_.clear();
    other.row_scales_.clear();
    return *this;
  }

  ~QuantizedMatrix() { MemoryTracker::Global().Sub(ByteSize()); }

  /// Quantizes `source` to `precision`. kFloat32 is not a quantized format —
  /// it returns kInvalidArgument, as does an empty input.
  ///
  /// bf16 truncates each float's low 16 bits (round-toward-zero: keeps the
  /// encode branch-free and the decode a pure shift). int8 maps each row
  /// through scale_r = max_abs(row) / 127 with round-to-nearest; an all-zero
  /// row gets scale 0 and zero codes.
  static Result<QuantizedMatrix> Create(const Matrix& source,
                                        ScorePrecision precision);

  ScorePrecision precision() const { return precision_; }
  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0; }

  size_t ByteSize() const {
    return bf16_.size() * sizeof(uint16_t) + i8_.size() +
           row_scales_.size() * sizeof(float);
  }

  const uint16_t* Bf16Row(size_t r) const { return bf16_.data() + r * cols_; }
  const int8_t* I8Row(size_t r) const { return i8_.data() + r * cols_; }
  float RowScale(size_t r) const { return row_scales_[r]; }

 private:
  ScorePrecision precision_ = ScorePrecision::kFloat32;
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<uint16_t> bf16_;      // kBf16: rows*cols codes
  std::vector<int8_t> i8_;          // kInt8: rows*cols codes
  std::vector<float> row_scales_;   // kInt8: one scale per row
};

/// Approximate inner product of row i of `a` and row j of `b` under the
/// matrices' shared precision, via the active kernel tier's quantized dot.
/// For int8 the result is dot_i8 * scale_a[i] * scale_b[j].
float QuantizedDot(const QuantizedMatrix& a, size_t i, const QuantizedMatrix& b,
                   size_t j);

}  // namespace entmatcher

#endif  // ENTMATCHER_LA_KERNELS_QUANTIZED_H_
