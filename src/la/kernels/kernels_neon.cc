// NEON tier (aarch64). Compiled only when CMAKE_SYSTEM_PROCESSOR is aarch64 /
// arm64 — NEON is baseline there, so no runtime probe beyond the build gate.
// Same bit-exactness split as the x86 tiers: elementwise ops use compare+
// bit-select (never vmaxq) so NaN behaves like the scalar strict `>`;
// reductions use multiple lanes and reassociate.

#if defined(__aarch64__) || defined(_M_ARM64)

#include <arm_neon.h>

#include <bit>
#include <cmath>
#include <limits>

#include "la/kernels/dispatch.h"

namespace entmatcher {
namespace {

// Shared by DotNeon and every cell of MatMulTileNeon.
inline float Dot(const float* a, const float* b, size_t d) {
  float32x4_t acc0 = vdupq_n_f32(0.0f);
  float32x4_t acc1 = vdupq_n_f32(0.0f);
  float32x4_t acc2 = vdupq_n_f32(0.0f);
  float32x4_t acc3 = vdupq_n_f32(0.0f);
  size_t k = 0;
  for (; k + 16 <= d; k += 16) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + k), vld1q_f32(b + k));
    acc1 = vfmaq_f32(acc1, vld1q_f32(a + k + 4), vld1q_f32(b + k + 4));
    acc2 = vfmaq_f32(acc2, vld1q_f32(a + k + 8), vld1q_f32(b + k + 8));
    acc3 = vfmaq_f32(acc3, vld1q_f32(a + k + 12), vld1q_f32(b + k + 12));
  }
  for (; k + 4 <= d; k += 4) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + k), vld1q_f32(b + k));
  }
  float r = vaddvq_f32(vaddq_f32(vaddq_f32(acc0, acc1),
                                 vaddq_f32(acc2, acc3)));
  for (; k < d; ++k) r += a[k] * b[k];
  return r;
}

float DotNeon(const float* a, const float* b, size_t d) { return Dot(a, b, d); }

void MatMulTileNeon(const float* a, size_t a_stride, size_t rows,
                    const float* b, size_t b_stride, size_t cols, size_t d,
                    float* c, size_t c_stride) {
  constexpr size_t kBlock = 32;
  for (size_t ib = 0; ib < rows; ib += kBlock) {
    const size_t i_end = ib + kBlock < rows ? ib + kBlock : rows;
    for (size_t jb = 0; jb < cols; jb += kBlock) {
      const size_t j_end = jb + kBlock < cols ? jb + kBlock : cols;
      for (size_t i = ib; i < i_end; ++i) {
        const float* arow = a + i * a_stride;
        float* crow = c + i * c_stride;
        for (size_t j = jb; j < j_end; ++j) {
          crow[j] = Dot(arow, b + j * b_stride, d);
        }
      }
    }
  }
}

double SquaredNormNeon(const float* v, size_t d) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  size_t k = 0;
  for (; k + 4 <= d; k += 4) {
    const float32x4_t x = vld1q_f32(v + k);
    const float64x2_t lo = vcvt_f64_f32(vget_low_f32(x));
    const float64x2_t hi = vcvt_f64_f32(vget_high_f32(x));
    acc0 = vfmaq_f64(acc0, lo, lo);
    acc1 = vfmaq_f64(acc1, hi, hi);
  }
  double r = vaddvq_f64(vaddq_f64(acc0, acc1));
  for (; k < d; ++k) r += static_cast<double>(v[k]) * v[k];
  return r;
}

float ManhattanNeon(const float* a, const float* b, size_t d) {
  float32x4_t acc = vdupq_n_f32(0.0f);
  size_t k = 0;
  for (; k + 4 <= d; k += 4) {
    acc = vaddq_f32(acc, vabdq_f32(vld1q_f32(a + k), vld1q_f32(b + k)));
  }
  float r = vaddvq_f32(acc);
  for (; k < d; ++k) r += std::fabs(a[k] - b[k]);
  return r;
}

void ScaleNeon(float* v, size_t d, float factor) {
  const float32x4_t f = vdupq_n_f32(factor);
  size_t k = 0;
  for (; k + 4 <= d; k += 4) {
    vst1q_f32(v + k, vmulq_f32(vld1q_f32(v + k), f));
  }
  for (; k < d; ++k) v[k] *= factor;
}

void ScaleCopyNeon(const float* src, float* dst, size_t d, float factor) {
  const float32x4_t f = vdupq_n_f32(factor);
  size_t k = 0;
  for (; k + 4 <= d; k += 4) {
    vst1q_f32(dst + k, vmulq_f32(vld1q_f32(src + k), f));
  }
  for (; k < d; ++k) dst[k] = src[k] * factor;
}

void CosineScaleRowNeon(float* row, const float* inv_tgt, size_t m, float si) {
  const float32x4_t s = vdupq_n_f32(si);
  size_t j = 0;
  for (; j + 4 <= m; j += 4) {
    const float32x4_t t = vmulq_f32(s, vld1q_f32(inv_tgt + j));
    vst1q_f32(row + j, vmulq_f32(vld1q_f32(row + j), t));
  }
  for (; j < m; ++j) row[j] *= si * inv_tgt[j];
}

double SumNeon(const float* v, size_t d) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  size_t k = 0;
  for (; k + 4 <= d; k += 4) {
    const float32x4_t x = vld1q_f32(v + k);
    acc0 = vaddq_f64(acc0, vcvt_f64_f32(vget_low_f32(x)));
    acc1 = vaddq_f64(acc1, vcvt_f64_f32(vget_high_f32(x)));
  }
  double r = vaddvq_f64(vaddq_f64(acc0, acc1));
  for (; k < d; ++k) r += v[k];
  return r;
}

float MaxNeon(const float* v, size_t d) {
  if (d < 4 || std::isnan(v[0])) {
    float best = v[0];
    for (size_t k = 1; k < d; ++k) {
      if (v[k] > best) best = v[k];
    }
    return best;
  }
  float32x4_t acc = vdupq_n_f32(-std::numeric_limits<float>::infinity());
  size_t k = 0;
  for (; k + 4 <= d; k += 4) {
    const float32x4_t chunk = vld1q_f32(v + k);
    const uint32x4_t gt = vcgtq_f32(chunk, acc);
    acc = vbslq_f32(gt, chunk, acc);
  }
  float lanes[4];
  vst1q_f32(lanes, acc);
  float best = lanes[0];
  for (int l = 1; l < 4; ++l) {
    if (lanes[l] > best) best = lanes[l];
  }
  for (; k < d; ++k) {
    if (v[k] > best) best = v[k];
  }
  return best;
}

size_t ArgmaxNeon(const float* v, size_t d) {
  if (d < 8 || std::isnan(v[0])) {
    size_t best = 0;
    for (size_t k = 1; k < d; ++k) {
      if (v[k] > v[best]) best = k;
    }
    return best;
  }
  float32x4_t bvals = vdupq_n_f32(-std::numeric_limits<float>::infinity());
  const uint32_t init_idx[4] = {0, 1, 2, 3};
  uint32x4_t bidx = vld1q_u32(init_idx);
  uint32x4_t cur = bidx;
  const uint32x4_t step = vdupq_n_u32(4);
  size_t k = 0;
  for (; k + 4 <= d; k += 4) {
    const float32x4_t chunk = vld1q_f32(v + k);
    const uint32x4_t gt = vcgtq_f32(chunk, bvals);
    bvals = vbslq_f32(gt, chunk, bvals);
    bidx = vbslq_u32(gt, cur, bidx);
    cur = vaddq_u32(cur, step);
  }
  float lanes[4];
  uint32_t idxs[4];
  vst1q_f32(lanes, bvals);
  vst1q_u32(idxs, bidx);
  float best = lanes[0];
  size_t besti = idxs[0];
  for (int l = 1; l < 4; ++l) {
    if (lanes[l] > best || (lanes[l] == best && idxs[l] < besti)) {
      best = lanes[l];
      besti = idxs[l];
    }
  }
  for (; k < d; ++k) {
    if (v[k] > best) {
      best = v[k];
      besti = k;
    }
  }
  return besti;
}

void AccumulateMaxNeon(float* acc, const float* row, size_t d) {
  size_t k = 0;
  for (; k + 4 <= d; k += 4) {
    const float32x4_t a = vld1q_f32(acc + k);
    const float32x4_t r = vld1q_f32(row + k);
    const uint32x4_t gt = vcgtq_f32(r, a);
    vst1q_f32(acc + k, vbslq_f32(gt, r, a));
  }
  for (; k < d; ++k) {
    if (row[k] > acc[k]) acc[k] = row[k];
  }
}

void AccumulateColsNeon(double* acc, const float* row, size_t d) {
  size_t k = 0;
  for (; k + 4 <= d; k += 4) {
    const float32x4_t r = vld1q_f32(row + k);
    vst1q_f64(acc + k,
              vaddq_f64(vld1q_f64(acc + k), vcvt_f64_f32(vget_low_f32(r))));
    vst1q_f64(acc + k + 2, vaddq_f64(vld1q_f64(acc + k + 2),
                                     vcvt_f64_f32(vget_high_f32(r))));
  }
  for (; k < d; ++k) acc[k] += row[k];
}

void MulColsNeon(float* dst, const float* src, const double* col_inv,
                 size_t d) {
  size_t k = 0;
  for (; k + 4 <= d; k += 4) {
    const float32x4_t s = vld1q_f32(src + k);
    const float64x2_t lo =
        vmulq_f64(vcvt_f64_f32(vget_low_f32(s)), vld1q_f64(col_inv + k));
    const float64x2_t hi =
        vmulq_f64(vcvt_f64_f32(vget_high_f32(s)), vld1q_f64(col_inv + k + 2));
    vst1q_f32(dst + k, vcombine_f32(vcvt_f32_f64(lo), vcvt_f32_f64(hi)));
  }
  for (; k < d; ++k) dst[k] = static_cast<float>(src[k] * col_inv[k]);
}

inline uint32_t LaneBits(uint32x4_t gt) {
  const uint32_t bits[4] = {1, 2, 4, 8};
  return vaddvq_u32(vandq_u32(gt, vld1q_u32(bits)));
}

uint64_t MaskGtNeon(const float* a, const float* b, size_t n) {
  uint64_t mask = 0;
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const uint32x4_t gt = vcgtq_f32(vld1q_f32(a + k), vld1q_f32(b + k));
    mask |= static_cast<uint64_t>(LaneBits(gt)) << k;
  }
  for (; k < n; ++k) {
    if (a[k] > b[k]) mask |= uint64_t{1} << k;
  }
  return mask;
}

uint64_t MaskGtScalarNeon(const float* a, float threshold, size_t n) {
  const float32x4_t t = vdupq_n_f32(threshold);
  uint64_t mask = 0;
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const uint32x4_t gt = vcgtq_f32(vld1q_f32(a + k), t);
    mask |= static_cast<uint64_t>(LaneBits(gt)) << k;
  }
  for (; k < n; ++k) {
    if (a[k] > threshold) mask |= uint64_t{1} << k;
  }
  return mask;
}

inline float32x4_t LoadBf16(const uint16_t* p) {
  return vreinterpretq_f32_u32(vshll_n_u16(vld1_u16(p), 16));
}

float DotBf16Neon(const uint16_t* a, const uint16_t* b, size_t d) {
  float32x4_t acc0 = vdupq_n_f32(0.0f);
  float32x4_t acc1 = vdupq_n_f32(0.0f);
  size_t k = 0;
  for (; k + 8 <= d; k += 8) {
    acc0 = vfmaq_f32(acc0, LoadBf16(a + k), LoadBf16(b + k));
    acc1 = vfmaq_f32(acc1, LoadBf16(a + k + 4), LoadBf16(b + k + 4));
  }
  for (; k + 4 <= d; k += 4) {
    acc0 = vfmaq_f32(acc0, LoadBf16(a + k), LoadBf16(b + k));
  }
  float r = vaddvq_f32(vaddq_f32(acc0, acc1));
  for (; k < d; ++k) {
    r += std::bit_cast<float>(static_cast<uint32_t>(a[k]) << 16) *
         std::bit_cast<float>(static_cast<uint32_t>(b[k]) << 16);
  }
  return r;
}

int32_t DotI8Neon(const int8_t* a, const int8_t* b, size_t d) {
  int32x4_t acc = vdupq_n_s32(0);
  size_t k = 0;
  for (; k + 8 <= d; k += 8) {
    const int16x8_t prod = vmull_s8(vld1_s8(a + k), vld1_s8(b + k));
    acc = vpadalq_s16(acc, prod);
  }
  int32_t r = vaddvq_s32(acc);
  for (; k < d; ++k) {
    r += static_cast<int32_t>(a[k]) * static_cast<int32_t>(b[k]);
  }
  return r;
}

const KernelOps kNeonOps = {
    /*tier=*/KernelTier::kNeon,
    /*name=*/"neon",
    /*dot=*/DotNeon,
    /*matmul_tile=*/MatMulTileNeon,
    /*squared_norm=*/SquaredNormNeon,
    /*manhattan=*/ManhattanNeon,
    /*scale=*/ScaleNeon,
    /*scale_copy=*/ScaleCopyNeon,
    /*cosine_scale_row=*/CosineScaleRowNeon,
    /*sum=*/SumNeon,
    /*max=*/MaxNeon,
    /*argmax=*/ArgmaxNeon,
    /*accumulate_max=*/AccumulateMaxNeon,
    /*accumulate_cols=*/AccumulateColsNeon,
    /*mul_cols=*/MulColsNeon,
    /*mask_gt=*/MaskGtNeon,
    /*mask_gt_scalar=*/MaskGtScalarNeon,
    /*dot_bf16=*/DotBf16Neon,
    /*dot_i8=*/DotI8Neon,
};

}  // namespace

const KernelOps* GetNeonKernels() { return &kNeonOps; }

}  // namespace entmatcher

#endif  // aarch64
