#include "la/kernels/dispatch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace entmatcher {

namespace {

#if defined(__x86_64__) || defined(_M_X64)
bool CpuHasAvx2() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}
bool CpuHasAvx512() {
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512bw") &&
         __builtin_cpu_supports("avx512dq") &&
         __builtin_cpu_supports("avx512vl");
}
#else
bool CpuHasAvx2() { return false; }
bool CpuHasAvx512() { return false; }
#endif

// The table for a tier, or null when the tier is not compiled in or the CPU
// lacks it. The per-ISA TUs are arch-gated in CMake; CMake defines
// ENTMATCHER_HAVE_* on this file for exactly the TUs it compiles, and the
// stubs below stand in for the rest so the link never needs an absent TU.
const KernelOps* TierOps(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar:
      return GetScalarKernels();
    case KernelTier::kAvx2:
      return CpuHasAvx2() ? GetAvx2Kernels() : nullptr;
    case KernelTier::kAvx512:
      return CpuHasAvx512() ? GetAvx512Kernels() : nullptr;
    case KernelTier::kNeon:
      return GetNeonKernels();
  }
  return nullptr;
}

std::atomic<const KernelOps*> g_active{nullptr};
std::once_flag g_env_once;

void InitFromEnv() {
  KernelTier tier = BestAvailableKernelTier();
  const char* env = std::getenv("EM_KERNEL_TIER");
  if (env != nullptr && *env != '\0' && std::string_view(env) != "auto") {
    Result<KernelTier> parsed = ParseKernelTier(env);
    if (parsed.ok() && KernelTierAvailable(*parsed)) {
      tier = *parsed;
    } else {
      std::fprintf(stderr,
                   "entmatcher: EM_KERNEL_TIER=%s is %s; using %s\n", env,
                   parsed.ok() ? "not available on this CPU/build"
                               : "not a known tier",
                   KernelTierName(tier));
    }
  }
  g_active.store(TierOps(tier), std::memory_order_release);
}

}  // namespace

#if !defined(ENTMATCHER_HAVE_AVX2)
const KernelOps* GetAvx2Kernels() { return nullptr; }
#endif
#if !defined(ENTMATCHER_HAVE_AVX512)
const KernelOps* GetAvx512Kernels() { return nullptr; }
#endif
#if !defined(ENTMATCHER_HAVE_NEON)
const KernelOps* GetNeonKernels() { return nullptr; }
#endif

const char* KernelTierName(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar:
      return "scalar";
    case KernelTier::kAvx2:
      return "avx2";
    case KernelTier::kAvx512:
      return "avx512";
    case KernelTier::kNeon:
      return "neon";
  }
  return "?";
}

Result<KernelTier> ParseKernelTier(std::string_view name) {
  if (name == "scalar") return KernelTier::kScalar;
  if (name == "avx2") return KernelTier::kAvx2;
  if (name == "avx512") return KernelTier::kAvx512;
  if (name == "neon") return KernelTier::kNeon;
  return Status::InvalidArgument("unknown kernel tier: '" + std::string(name) +
                                 "' (want scalar|avx2|avx512|neon|auto)");
}

bool KernelTierAvailable(KernelTier tier) { return TierOps(tier) != nullptr; }

KernelTier BestAvailableKernelTier() {
  if (KernelTierAvailable(KernelTier::kAvx512)) return KernelTier::kAvx512;
  if (KernelTierAvailable(KernelTier::kAvx2)) return KernelTier::kAvx2;
  if (KernelTierAvailable(KernelTier::kNeon)) return KernelTier::kNeon;
  return KernelTier::kScalar;
}

const KernelOps& ActiveKernels() {
  const KernelOps* ops = g_active.load(std::memory_order_acquire);
  if (ops != nullptr) return *ops;
  std::call_once(g_env_once, InitFromEnv);
  return *g_active.load(std::memory_order_acquire);
}

KernelTier ActiveKernelTier() { return ActiveKernels().tier; }

Status SetKernelTier(KernelTier tier) {
  const KernelOps* ops = TierOps(tier);
  if (ops == nullptr) {
    return Status::InvalidArgument(
        std::string("kernel tier '") + KernelTierName(tier) +
        "' is not available on this CPU/build");
  }
  // Make sure the env-var path never overwrites an explicit choice later.
  std::call_once(g_env_once, [] {});
  g_active.store(ops, std::memory_order_release);
  return Status::OK();
}

std::string DetectedCpuFeatures() {
  std::string features;
  const auto add = [&features](const char* name) {
    if (!features.empty()) features += ' ';
    features += name;
  };
#if defined(__x86_64__) || defined(_M_X64)
  if (__builtin_cpu_supports("sse4.2")) add("sse4.2");
  if (__builtin_cpu_supports("avx")) add("avx");
  if (__builtin_cpu_supports("avx2")) add("avx2");
  if (__builtin_cpu_supports("fma")) add("fma");
  if (__builtin_cpu_supports("avx512f")) add("avx512f");
  if (__builtin_cpu_supports("avx512bw")) add("avx512bw");
  if (__builtin_cpu_supports("avx512dq")) add("avx512dq");
  if (__builtin_cpu_supports("avx512vl")) add("avx512vl");
#elif defined(__aarch64__) || defined(_M_ARM64)
  add("neon");
#endif
  return features;
}

std::string KernelStatusJson() {
  std::string available;
  for (KernelTier tier : {KernelTier::kScalar, KernelTier::kAvx2,
                          KernelTier::kAvx512, KernelTier::kNeon}) {
    if (!KernelTierAvailable(tier)) continue;
    if (!available.empty()) available += ' ';
    available += KernelTierName(tier);
  }
  std::string json = "{\"tier\":\"";
  json += KernelTierName(ActiveKernelTier());
  json += "\",\"available\":\"";
  json += available;
  json += "\",\"cpu\":\"";
  json += DetectedCpuFeatures();
  json += "\"}";
  return json;
}

}  // namespace entmatcher
