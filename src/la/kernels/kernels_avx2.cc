// AVX2+FMA tier. Compiled with -mavx2 -mfma in its own translation unit; only
// dispatch.cc calls GetAvx2Kernels(), and only after the CPU probe confirms
// the ISA, so no AVX2 instruction can execute on an unsupported machine.
//
// Elementwise ops perform exactly the scalar tier's arithmetic per element
// (no FMA contraction where the scalar code had separate mul/add, compares
// are ordered non-signaling so NaN behaves like the scalar `>`), which keeps
// them bit-identical to scalar. Reductions (dot, squared_norm, sum,
// manhattan, dot_bf16) use multiple lanes and so reassociate; they are
// deterministic per shape but only tolerance-equal to scalar.

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <bit>
#include <cmath>
#include <limits>

#include "la/kernels/dispatch.h"

namespace entmatcher {
namespace {

float HorizontalSum(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_movehdup_ps(s));
  return _mm_cvtss_f32(s);
}

double HorizontalSumPd(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  __m128d hi = _mm256_extractf128_pd(v, 1);
  __m128d s = _mm_add_pd(lo, hi);
  s = _mm_add_sd(s, _mm_unpackhi_pd(s, s));
  return _mm_cvtsd_f64(s);
}

// Shared by DotAvx2 and every cell of MatMulTileAvx2: the accumulation
// sequence is a pure function of d, which is what makes the sparse rerank
// (PairSimilarity) bit-identical to the dense matmul cells at this tier.
inline float Dot(const float* a, const float* b, size_t d) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps();
  __m256 acc3 = _mm256_setzero_ps();
  size_t k = 0;
  for (; k + 32 <= d; k += 32) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + k), _mm256_loadu_ps(b + k),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + k + 8),
                           _mm256_loadu_ps(b + k + 8), acc1);
    acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(a + k + 16),
                           _mm256_loadu_ps(b + k + 16), acc2);
    acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(a + k + 24),
                           _mm256_loadu_ps(b + k + 24), acc3);
  }
  for (; k + 8 <= d; k += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + k), _mm256_loadu_ps(b + k),
                           acc0);
  }
  const __m256 acc = _mm256_add_ps(_mm256_add_ps(acc0, acc1),
                                   _mm256_add_ps(acc2, acc3));
  float r = HorizontalSum(acc);
  for (; k < d; ++k) r += a[k] * b[k];
  return r;
}

float DotAvx2(const float* a, const float* b, size_t d) { return Dot(a, b, d); }

void MatMulTileAvx2(const float* a, size_t a_stride, size_t rows,
                    const float* b, size_t b_stride, size_t cols, size_t d,
                    float* c, size_t c_stride) {
  // Same 32-wide blocking as the scalar tier so B rows stay hot in L1 while
  // a block of A rows streams over them; each cell is one Dot call.
  constexpr size_t kBlock = 32;
  for (size_t ib = 0; ib < rows; ib += kBlock) {
    const size_t i_end = ib + kBlock < rows ? ib + kBlock : rows;
    for (size_t jb = 0; jb < cols; jb += kBlock) {
      const size_t j_end = jb + kBlock < cols ? jb + kBlock : cols;
      for (size_t i = ib; i < i_end; ++i) {
        const float* arow = a + i * a_stride;
        float* crow = c + i * c_stride;
        for (size_t j = jb; j < j_end; ++j) {
          crow[j] = Dot(arow, b + j * b_stride, d);
        }
      }
    }
  }
}

double SquaredNormAvx2(const float* v, size_t d) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t k = 0;
  for (; k + 8 <= d; k += 8) {
    const __m256d x0 = _mm256_cvtps_pd(_mm_loadu_ps(v + k));
    const __m256d x1 = _mm256_cvtps_pd(_mm_loadu_ps(v + k + 4));
    acc0 = _mm256_fmadd_pd(x0, x0, acc0);
    acc1 = _mm256_fmadd_pd(x1, x1, acc1);
  }
  double r = HorizontalSumPd(_mm256_add_pd(acc0, acc1));
  for (; k < d; ++k) r += static_cast<double>(v[k]) * v[k];
  return r;
}

float ManhattanAvx2(const float* a, const float* b, size_t d) {
  const __m256 abs_mask =
      _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFFFFFF));
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t k = 0;
  for (; k + 16 <= d; k += 16) {
    const __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(a + k),
                                    _mm256_loadu_ps(b + k));
    const __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(a + k + 8),
                                    _mm256_loadu_ps(b + k + 8));
    acc0 = _mm256_add_ps(acc0, _mm256_and_ps(d0, abs_mask));
    acc1 = _mm256_add_ps(acc1, _mm256_and_ps(d1, abs_mask));
  }
  for (; k + 8 <= d; k += 8) {
    const __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(a + k),
                                    _mm256_loadu_ps(b + k));
    acc0 = _mm256_add_ps(acc0, _mm256_and_ps(d0, abs_mask));
  }
  float r = HorizontalSum(_mm256_add_ps(acc0, acc1));
  for (; k < d; ++k) r += std::fabs(a[k] - b[k]);
  return r;
}

void ScaleAvx2(float* v, size_t d, float factor) {
  const __m256 f = _mm256_set1_ps(factor);
  size_t k = 0;
  for (; k + 8 <= d; k += 8) {
    _mm256_storeu_ps(v + k, _mm256_mul_ps(_mm256_loadu_ps(v + k), f));
  }
  for (; k < d; ++k) v[k] *= factor;
}

void ScaleCopyAvx2(const float* src, float* dst, size_t d, float factor) {
  const __m256 f = _mm256_set1_ps(factor);
  size_t k = 0;
  for (; k + 8 <= d; k += 8) {
    _mm256_storeu_ps(dst + k, _mm256_mul_ps(_mm256_loadu_ps(src + k), f));
  }
  for (; k < d; ++k) dst[k] = src[k] * factor;
}

void CosineScaleRowAvx2(float* row, const float* inv_tgt, size_t m, float si) {
  // row[j] * (si * inv_tgt[j]) with two separate multiplies, matching the
  // scalar tier's rounding exactly (no FMA contraction).
  const __m256 s = _mm256_set1_ps(si);
  size_t j = 0;
  for (; j + 8 <= m; j += 8) {
    const __m256 t = _mm256_mul_ps(s, _mm256_loadu_ps(inv_tgt + j));
    _mm256_storeu_ps(row + j, _mm256_mul_ps(_mm256_loadu_ps(row + j), t));
  }
  for (; j < m; ++j) row[j] *= si * inv_tgt[j];
}

double SumAvx2(const float* v, size_t d) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t k = 0;
  for (; k + 8 <= d; k += 8) {
    acc0 = _mm256_add_pd(acc0, _mm256_cvtps_pd(_mm_loadu_ps(v + k)));
    acc1 = _mm256_add_pd(acc1, _mm256_cvtps_pd(_mm_loadu_ps(v + k + 4)));
  }
  double r = HorizontalSumPd(_mm256_add_pd(acc0, acc1));
  for (; k < d; ++k) r += v[k];
  return r;
}

float MaxAvx2(const float* v, size_t d) {
  if (d < 8 || std::isnan(v[0])) {
    float best = v[0];
    for (size_t k = 1; k < d; ++k) {
      if (v[k] > best) best = v[k];
    }
    return best;
  }
  // cmp+blend (not max_ps) so NaN elements are rejected exactly like the
  // scalar strict `>`.
  __m256 acc = _mm256_set1_ps(-std::numeric_limits<float>::infinity());
  size_t k = 0;
  for (; k + 8 <= d; k += 8) {
    const __m256 chunk = _mm256_loadu_ps(v + k);
    const __m256 gt = _mm256_cmp_ps(chunk, acc, _CMP_GT_OQ);
    acc = _mm256_blendv_ps(acc, chunk, gt);
  }
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, acc);
  float best = lanes[0];
  for (int l = 1; l < 8; ++l) {
    if (lanes[l] > best) best = lanes[l];
  }
  for (; k < d; ++k) {
    if (v[k] > best) best = v[k];
  }
  return best;
}

size_t ArgmaxAvx2(const float* v, size_t d) {
  if (d < 16 || std::isnan(v[0])) {
    size_t best = 0;
    for (size_t k = 1; k < d; ++k) {
      if (v[k] > v[best]) best = k;
    }
    return best;
  }
  // Lane l tracks the best value among indices ≡ l (mod 8) and, because the
  // compare is strict, the FIRST index attaining it; the horizontal pass
  // breaks cross-lane ties toward the lower index, matching scalar exactly.
  __m256 bvals = _mm256_set1_ps(-std::numeric_limits<float>::infinity());
  __m256i bidx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  __m256i cur = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i step = _mm256_set1_epi32(8);
  size_t k = 0;
  for (; k + 8 <= d; k += 8) {
    const __m256 chunk = _mm256_loadu_ps(v + k);
    const __m256 gt = _mm256_cmp_ps(chunk, bvals, _CMP_GT_OQ);
    bvals = _mm256_blendv_ps(bvals, chunk, gt);
    bidx = _mm256_blendv_epi8(bidx, cur, _mm256_castps_si256(gt));
    cur = _mm256_add_epi32(cur, step);
  }
  alignas(32) float lanes[8];
  alignas(32) uint32_t idxs[8];
  _mm256_store_ps(lanes, bvals);
  _mm256_store_si256(reinterpret_cast<__m256i*>(idxs), bidx);
  float best = lanes[0];
  size_t besti = idxs[0];
  for (int l = 1; l < 8; ++l) {
    if (lanes[l] > best || (lanes[l] == best && idxs[l] < besti)) {
      best = lanes[l];
      besti = idxs[l];
    }
  }
  for (; k < d; ++k) {
    if (v[k] > best) {
      best = v[k];
      besti = k;
    }
  }
  return besti;
}

void AccumulateMaxAvx2(float* acc, const float* row, size_t d) {
  size_t k = 0;
  for (; k + 8 <= d; k += 8) {
    const __m256 a = _mm256_loadu_ps(acc + k);
    const __m256 r = _mm256_loadu_ps(row + k);
    const __m256 gt = _mm256_cmp_ps(r, a, _CMP_GT_OQ);
    _mm256_storeu_ps(acc + k, _mm256_blendv_ps(a, r, gt));
  }
  for (; k < d; ++k) {
    if (row[k] > acc[k]) acc[k] = row[k];
  }
}

void AccumulateColsAvx2(double* acc, const float* row, size_t d) {
  size_t k = 0;
  for (; k + 4 <= d; k += 4) {
    const __m256d a = _mm256_loadu_pd(acc + k);
    const __m256d r = _mm256_cvtps_pd(_mm_loadu_ps(row + k));
    _mm256_storeu_pd(acc + k, _mm256_add_pd(a, r));
  }
  for (; k < d; ++k) acc[k] += row[k];
}

void MulColsAvx2(float* dst, const float* src, const double* col_inv,
                 size_t d) {
  size_t k = 0;
  for (; k + 4 <= d; k += 4) {
    const __m256d s = _mm256_cvtps_pd(_mm_loadu_ps(src + k));
    const __m256d p = _mm256_mul_pd(s, _mm256_loadu_pd(col_inv + k));
    _mm_storeu_ps(dst + k, _mm256_cvtpd_ps(p));
  }
  for (; k < d; ++k) dst[k] = static_cast<float>(src[k] * col_inv[k]);
}

uint64_t MaskGtAvx2(const float* a, const float* b, size_t n) {
  uint64_t mask = 0;
  size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m256 gt = _mm256_cmp_ps(_mm256_loadu_ps(a + k),
                                    _mm256_loadu_ps(b + k), _CMP_GT_OQ);
    mask |= static_cast<uint64_t>(
                static_cast<uint32_t>(_mm256_movemask_ps(gt)))
            << k;
  }
  for (; k < n; ++k) {
    if (a[k] > b[k]) mask |= uint64_t{1} << k;
  }
  return mask;
}

uint64_t MaskGtScalarAvx2(const float* a, float threshold, size_t n) {
  const __m256 t = _mm256_set1_ps(threshold);
  uint64_t mask = 0;
  size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m256 gt = _mm256_cmp_ps(_mm256_loadu_ps(a + k), t, _CMP_GT_OQ);
    mask |= static_cast<uint64_t>(
                static_cast<uint32_t>(_mm256_movemask_ps(gt)))
            << k;
  }
  for (; k < n; ++k) {
    if (a[k] > threshold) mask |= uint64_t{1} << k;
  }
  return mask;
}

inline __m256 LoadBf16(const uint16_t* p) {
  const __m128i half = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  const __m256i wide = _mm256_cvtepu16_epi32(half);
  return _mm256_castsi256_ps(_mm256_slli_epi32(wide, 16));
}

float DotBf16Avx2(const uint16_t* a, const uint16_t* b, size_t d) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t k = 0;
  for (; k + 16 <= d; k += 16) {
    acc0 = _mm256_fmadd_ps(LoadBf16(a + k), LoadBf16(b + k), acc0);
    acc1 = _mm256_fmadd_ps(LoadBf16(a + k + 8), LoadBf16(b + k + 8), acc1);
  }
  for (; k + 8 <= d; k += 8) {
    acc0 = _mm256_fmadd_ps(LoadBf16(a + k), LoadBf16(b + k), acc0);
  }
  float r = HorizontalSum(_mm256_add_ps(acc0, acc1));
  for (; k < d; ++k) {
    r += std::bit_cast<float>(static_cast<uint32_t>(a[k]) << 16) *
         std::bit_cast<float>(static_cast<uint32_t>(b[k]) << 16);
  }
  return r;
}

int32_t DotI8Avx2(const int8_t* a, const int8_t* b, size_t d) {
  __m256i acc = _mm256_setzero_si256();
  size_t k = 0;
  for (; k + 16 <= d; k += 16) {
    const __m256i av = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + k)));
    const __m256i bv = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + k)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, bv));
  }
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_unpackhi_epi64(s, s));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x55));
  int32_t r = _mm_cvtsi128_si32(s);
  for (; k < d; ++k) {
    r += static_cast<int32_t>(a[k]) * static_cast<int32_t>(b[k]);
  }
  return r;
}

const KernelOps kAvx2Ops = {
    /*tier=*/KernelTier::kAvx2,
    /*name=*/"avx2",
    /*dot=*/DotAvx2,
    /*matmul_tile=*/MatMulTileAvx2,
    /*squared_norm=*/SquaredNormAvx2,
    /*manhattan=*/ManhattanAvx2,
    /*scale=*/ScaleAvx2,
    /*scale_copy=*/ScaleCopyAvx2,
    /*cosine_scale_row=*/CosineScaleRowAvx2,
    /*sum=*/SumAvx2,
    /*max=*/MaxAvx2,
    /*argmax=*/ArgmaxAvx2,
    /*accumulate_max=*/AccumulateMaxAvx2,
    /*accumulate_cols=*/AccumulateColsAvx2,
    /*mul_cols=*/MulColsAvx2,
    /*mask_gt=*/MaskGtAvx2,
    /*mask_gt_scalar=*/MaskGtScalarAvx2,
    /*dot_bf16=*/DotBf16Avx2,
    /*dot_i8=*/DotI8Avx2,
};

}  // namespace

const KernelOps* GetAvx2Kernels() { return &kAvx2Ops; }

}  // namespace entmatcher

#endif  // x86_64
