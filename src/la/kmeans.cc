#include "la/kmeans.h"

#include <algorithm>
#include <limits>

namespace entmatcher {

KMeansResult CosineKMeans(const Matrix& points, size_t k, size_t iterations,
                          Rng* rng) {
  const size_t n = points.rows();
  const size_t dim = points.cols();
  Matrix normalized = points;
  L2NormalizeRows(&normalized);

  // k-means++-lite init: random distinct rows.
  std::vector<size_t> centroid_rows;
  {
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = i;
    rng->Shuffle(&order);
    for (size_t c = 0; c < k; ++c) centroid_rows.push_back(order[c % n]);
  }
  Matrix centroids(k, dim);
  for (size_t c = 0; c < k; ++c) {
    std::copy(normalized.Row(centroid_rows[c]).begin(),
              normalized.Row(centroid_rows[c]).end(),
              centroids.Row(c).begin());
  }

  std::vector<uint32_t> assignment(n, 0);
  for (size_t it = 0; it < iterations; ++it) {
    // Assign to the most similar centroid.
    for (size_t i = 0; i < n; ++i) {
      const float* x = normalized.Row(i).data();
      float best = -std::numeric_limits<float>::infinity();
      uint32_t best_c = 0;
      for (size_t c = 0; c < k; ++c) {
        const float* mu = centroids.Row(c).data();
        float dot = 0.0f;
        for (size_t d = 0; d < dim; ++d) dot += x[d] * mu[d];
        if (dot > best) {
          best = dot;
          best_c = static_cast<uint32_t>(c);
        }
      }
      assignment[i] = best_c;
    }
    // Recompute centroids (mean direction).
    centroids.Fill(0.0f);
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      float* mu = centroids.Row(assignment[i]).data();
      const float* x = normalized.Row(i).data();
      for (size_t d = 0; d < dim; ++d) mu[d] += x[d];
      ++counts[assignment[i]];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster with a random point.
        const size_t row = rng->NextBounded(n);
        std::copy(normalized.Row(row).begin(), normalized.Row(row).end(),
                  centroids.Row(c).begin());
      }
    }
    L2NormalizeRows(&centroids);
  }
  return KMeansResult{std::move(assignment), std::move(centroids)};
}

}  // namespace entmatcher
