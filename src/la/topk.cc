#include "la/topk.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace entmatcher {

std::vector<uint32_t> RowArgmax(const Matrix& scores) {
  assert(scores.cols() > 0);
  std::vector<uint32_t> out(scores.rows());
  for (size_t r = 0; r < scores.rows(); ++r) {
    auto row = scores.Row(r);
    size_t best = 0;
    for (size_t c = 1; c < row.size(); ++c) {
      if (row[c] > row[best]) best = c;
    }
    out[r] = static_cast<uint32_t>(best);
  }
  return out;
}

std::vector<float> RowMax(const Matrix& scores) {
  assert(scores.cols() > 0);
  std::vector<float> out(scores.rows());
  for (size_t r = 0; r < scores.rows(); ++r) {
    auto row = scores.Row(r);
    out[r] = *std::max_element(row.begin(), row.end());
  }
  return out;
}

std::vector<float> ColMax(const Matrix& scores) {
  assert(scores.rows() > 0);
  std::vector<float> out(scores.cols(), -std::numeric_limits<float>::infinity());
  for (size_t r = 0; r < scores.rows(); ++r) {
    auto row = scores.Row(r);
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c] > out[c]) out[c] = row[c];
    }
  }
  return out;
}

namespace {

// Writes the k largest values of `row` into `buf` (unordered).
void TopKValues(std::span<const float> row, size_t k, std::vector<float>* buf) {
  buf->assign(row.begin(), row.end());
  std::nth_element(buf->begin(), buf->begin() + (k - 1), buf->end(),
                   std::greater<float>());
  buf->resize(k);
}

}  // namespace

std::vector<float> RowTopKMean(const Matrix& scores, size_t k) {
  assert(k >= 1);
  const size_t kk = std::min(k, scores.cols());
  std::vector<float> out(scores.rows());
  std::vector<float> buf;
  for (size_t r = 0; r < scores.rows(); ++r) {
    TopKValues(scores.Row(r), kk, &buf);
    double sum = std::accumulate(buf.begin(), buf.end(), 0.0);
    out[r] = static_cast<float>(sum / static_cast<double>(kk));
  }
  return out;
}

std::vector<float> ColTopKMean(const Matrix& scores, size_t k) {
  assert(k >= 1);
  const size_t kk = std::min(k, scores.rows());
  const size_t m = scores.cols();
  // Per-column min-heap of the k largest values seen so far, stored in one
  // flat (m x kk) buffer with heap[0] the smallest retained value.
  std::vector<float> heaps(m * kk, -std::numeric_limits<float>::infinity());
  for (size_t r = 0; r < scores.rows(); ++r) {
    const float* row = scores.Row(r).data();
    for (size_t c = 0; c < m; ++c) {
      float* heap = heaps.data() + c * kk;
      const float v = row[c];
      if (v <= heap[0]) continue;
      // Sift down the replaced root.
      size_t i = 0;
      heap[0] = v;
      for (;;) {
        size_t smallest = i;
        const size_t left = 2 * i + 1;
        const size_t right = 2 * i + 2;
        if (left < kk && heap[left] < heap[smallest]) smallest = left;
        if (right < kk && heap[right] < heap[smallest]) smallest = right;
        if (smallest == i) break;
        std::swap(heap[i], heap[smallest]);
        i = smallest;
      }
    }
  }
  std::vector<float> out(m);
  for (size_t c = 0; c < m; ++c) {
    double sum = 0.0;
    for (size_t i = 0; i < kk; ++i) sum += heaps[c * kk + i];
    out[c] = static_cast<float>(sum / static_cast<double>(kk));
  }
  return out;
}

std::vector<uint32_t> RowTopKIndices(const Matrix& scores, size_t k) {
  assert(k >= 1);
  const size_t kk = std::min(k, scores.cols());
  std::vector<uint32_t> out(scores.rows() * kk);
  std::vector<uint32_t> idx(scores.cols());
  for (size_t r = 0; r < scores.rows(); ++r) {
    auto row = scores.Row(r);
    std::iota(idx.begin(), idx.end(), 0u);
    std::partial_sort(idx.begin(), idx.begin() + kk, idx.end(),
                      [&row](uint32_t a, uint32_t b) {
                        if (row[a] != row[b]) return row[a] > row[b];
                        return a < b;
                      });
    std::copy(idx.begin(), idx.begin() + kk, out.begin() + r * kk);
  }
  return out;
}

double MeanRowTopKStd(const Matrix& scores, size_t k) {
  assert(k >= 1);
  const size_t kk = std::min(k, scores.cols());
  if (kk < 2 || scores.rows() == 0) return 0.0;
  std::vector<float> buf;
  double total = 0.0;
  for (size_t r = 0; r < scores.rows(); ++r) {
    TopKValues(scores.Row(r), kk, &buf);
    double mean = std::accumulate(buf.begin(), buf.end(), 0.0) /
                  static_cast<double>(kk);
    double var = 0.0;
    for (float v : buf) var += (v - mean) * (v - mean);
    var /= static_cast<double>(kk);
    total += std::sqrt(var);
  }
  return total / static_cast<double>(scores.rows());
}

}  // namespace entmatcher
