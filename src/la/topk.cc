#include "la/topk.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/thread_pool.h"

namespace entmatcher {

std::vector<uint32_t> RowArgmax(const Matrix& scores) {
  assert(scores.cols() > 0);
  std::vector<uint32_t> out(scores.rows());
  ParallelFor(0, scores.rows(), 32, [&](size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) {
      auto row = scores.Row(r);
      size_t best = 0;
      for (size_t c = 1; c < row.size(); ++c) {
        if (row[c] > row[best]) best = c;
      }
      out[r] = static_cast<uint32_t>(best);
    }
  });
  return out;
}

std::vector<float> RowMax(const Matrix& scores) {
  assert(scores.cols() > 0);
  std::vector<float> out(scores.rows());
  ParallelFor(0, scores.rows(), 32, [&](size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) {
      auto row = scores.Row(r);
      out[r] = *std::max_element(row.begin(), row.end());
    }
  });
  return out;
}

std::vector<float> ColMax(const Matrix& scores) {
  assert(scores.rows() > 0);
  std::vector<float> out(scores.cols(), -std::numeric_limits<float>::infinity());
  // Partitioned by column so every worker owns a disjoint slice of `out` and
  // visits rows in the serial order (max is exact either way).
  ParallelFor(0, scores.cols(), 256, [&](size_t col_begin, size_t col_end) {
    for (size_t r = 0; r < scores.rows(); ++r) {
      const float* row = scores.Row(r).data();
      for (size_t c = col_begin; c < col_end; ++c) {
        if (row[c] > out[c]) out[c] = row[c];
      }
    }
  });
  return out;
}

namespace {

// Writes the k largest values of `row` into `buf` (unordered).
void TopKValues(std::span<const float> row, size_t k, std::vector<float>* buf) {
  buf->assign(row.begin(), row.end());
  std::nth_element(buf->begin(), buf->begin() + (k - 1), buf->end(),
                   std::greater<float>());
  buf->resize(k);
}

}  // namespace

std::vector<float> RowTopKMean(const Matrix& scores, size_t k) {
  assert(k >= 1);
  const size_t kk = std::min(k, scores.cols());
  std::vector<float> out(scores.rows());
  ParallelFor(0, scores.rows(), 16, [&](size_t begin, size_t end) {
    std::vector<float> buf;
    for (size_t r = begin; r < end; ++r) {
      TopKValues(scores.Row(r), kk, &buf);
      double sum = std::accumulate(buf.begin(), buf.end(), 0.0);
      out[r] = static_cast<float>(sum / static_cast<double>(kk));
    }
  });
  return out;
}

std::vector<float> ColTopKMean(const Matrix& scores, size_t k) {
  assert(k >= 1);
  const size_t kk = std::min(k, scores.rows());
  const size_t m = scores.cols();
  // Per-column min-heap of the k largest values seen so far, stored in one
  // flat (m x kk) buffer with heap[0] the smallest retained value. Workers
  // own disjoint column ranges and scan rows top-to-bottom, so each heap
  // sees exactly the serial insertion sequence.
  std::vector<float> heaps(m * kk, -std::numeric_limits<float>::infinity());
  std::vector<float> out(m);
  ParallelFor(0, m, 64, [&](size_t col_begin, size_t col_end) {
    for (size_t r = 0; r < scores.rows(); ++r) {
      const float* row = scores.Row(r).data();
      for (size_t c = col_begin; c < col_end; ++c) {
        float* heap = heaps.data() + c * kk;
        const float v = row[c];
        if (v <= heap[0]) continue;
        // Sift down the replaced root.
        size_t i = 0;
        heap[0] = v;
        for (;;) {
          size_t smallest = i;
          const size_t left = 2 * i + 1;
          const size_t right = 2 * i + 2;
          if (left < kk && heap[left] < heap[smallest]) smallest = left;
          if (right < kk && heap[right] < heap[smallest]) smallest = right;
          if (smallest == i) break;
          std::swap(heap[i], heap[smallest]);
          i = smallest;
        }
      }
    }
    for (size_t c = col_begin; c < col_end; ++c) {
      double sum = 0.0;
      for (size_t i = 0; i < kk; ++i) sum += heaps[c * kk + i];
      out[c] = static_cast<float>(sum / static_cast<double>(kk));
    }
  });
  return out;
}

std::vector<uint32_t> RowTopKIndices(const Matrix& scores, size_t k) {
  assert(k >= 1);
  const size_t kk = std::min(k, scores.cols());
  std::vector<uint32_t> out(scores.rows() * kk);
  ParallelFor(0, scores.rows(), 16, [&](size_t begin, size_t end) {
    std::vector<uint32_t> idx(scores.cols());
    for (size_t r = begin; r < end; ++r) {
      auto row = scores.Row(r);
      std::iota(idx.begin(), idx.end(), 0u);
      std::partial_sort(idx.begin(), idx.begin() + kk, idx.end(),
                        [&row](uint32_t a, uint32_t b) {
                          if (row[a] != row[b]) return row[a] > row[b];
                          return a < b;
                        });
      std::copy(idx.begin(), idx.begin() + kk, out.begin() + r * kk);
    }
  });
  return out;
}

double MeanRowTopKStd(const Matrix& scores, size_t k) {
  assert(k >= 1);
  const size_t kk = std::min(k, scores.cols());
  if (kk < 2 || scores.rows() == 0) return 0.0;
  // Per-row partials accumulated by fixed 64-row blocks, then combined
  // serially, so the double summation order is independent of thread count.
  constexpr size_t kBlock = 64;
  const size_t num_blocks = (scores.rows() + kBlock - 1) / kBlock;
  std::vector<double> partial(num_blocks, 0.0);
  ParallelFor(0, num_blocks, 1, [&](size_t block_begin, size_t block_end) {
    std::vector<float> buf;
    for (size_t b = block_begin; b < block_end; ++b) {
      const size_t row_end = std::min(scores.rows(), (b + 1) * kBlock);
      for (size_t r = b * kBlock; r < row_end; ++r) {
        TopKValues(scores.Row(r), kk, &buf);
        double mean = std::accumulate(buf.begin(), buf.end(), 0.0) /
                      static_cast<double>(kk);
        double var = 0.0;
        for (float v : buf) var += (v - mean) * (v - mean);
        var /= static_cast<double>(kk);
        partial[b] += std::sqrt(var);
      }
    }
  });
  double total = 0.0;
  for (double p : partial) total += p;
  return total / static_cast<double>(scores.rows());
}

}  // namespace entmatcher
