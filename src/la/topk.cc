#include "la/topk.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/thread_pool.h"
#include "la/kernels/dispatch.h"

namespace entmatcher {

std::vector<uint32_t> RowArgmax(const Matrix& scores) {
  assert(scores.cols() > 0);
  const KernelOps& ops = ActiveKernels();
  const size_t m = scores.cols();
  std::vector<uint32_t> out(scores.rows());
  ParallelFor(0, scores.rows(), 32, [&](size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) {
      out[r] = static_cast<uint32_t>(ops.argmax(scores.Row(r).data(), m));
    }
  });
  return out;
}

std::vector<float> RowMax(const Matrix& scores) {
  assert(scores.cols() > 0);
  const KernelOps& ops = ActiveKernels();
  const size_t m = scores.cols();
  std::vector<float> out(scores.rows());
  ParallelFor(0, scores.rows(), 32, [&](size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) {
      out[r] = ops.max(scores.Row(r).data(), m);
    }
  });
  return out;
}

std::vector<float> ColMax(const Matrix& scores) {
  assert(scores.rows() > 0);
  const KernelOps& ops = ActiveKernels();
  std::vector<float> out(scores.cols(), -std::numeric_limits<float>::infinity());
  // Partitioned by column so every worker owns a disjoint slice of `out` and
  // visits rows in the serial order (max is exact either way).
  ParallelFor(0, scores.cols(), 256, [&](size_t col_begin, size_t col_end) {
    for (size_t r = 0; r < scores.rows(); ++r) {
      const float* row = scores.Row(r).data();
      ops.accumulate_max(out.data() + col_begin, row + col_begin,
                         col_end - col_begin);
    }
  });
  return out;
}

namespace {

// Writes the k largest values of `row` into `buf` (unordered).
void TopKValues(std::span<const float> row, size_t k, std::vector<float>* buf) {
  buf->assign(row.begin(), row.end());
  std::nth_element(buf->begin(), buf->begin() + (k - 1), buf->end(),
                   std::greater<float>());
  buf->resize(k);
}

// Vector-tier top-k values: a sorted-descending selection buffer guarded by a
// SIMD threshold filter. Most elements fail `v > buf[kk-1]` and are skipped
// 64 at a time via mask_gt_scalar; survivors are inserted by shifting — the
// same multiset of values nth_element selects (ties at the threshold keep the
// incumbent, which cannot change the multiset).
void TopKValuesFiltered(const KernelOps& ops, const float* row, size_t m,
                        size_t kk, std::vector<float>* buf) {
  buf->resize(kk);
  float* b = buf->data();
  for (size_t i = 0; i < kk; ++i) {
    const float v = row[i];
    size_t pos = i;
    while (pos > 0 && b[pos - 1] < v) {
      b[pos] = b[pos - 1];
      --pos;
    }
    b[pos] = v;
  }
  float threshold = b[kk - 1];
  for (size_t base = kk; base < m; base += 64) {
    const size_t len = std::min<size_t>(64, m - base);
    uint64_t mask = ops.mask_gt_scalar(row + base, threshold, len);
    while (mask != 0) {
      const size_t bit = static_cast<size_t>(std::countr_zero(mask));
      mask &= mask - 1;
      const float v = row[base + bit];
      if (!(v > threshold)) continue;  // threshold moved since the compare
      size_t pos = kk - 1;
      while (pos > 0 && b[pos - 1] < v) {
        b[pos] = b[pos - 1];
        --pos;
      }
      b[pos] = v;
      threshold = b[kk - 1];
    }
  }
}

}  // namespace

std::vector<float> RowTopKMean(const Matrix& scores, size_t k) {
  assert(k >= 1);
  const size_t kk = std::min(k, scores.cols());
  const size_t m = scores.cols();
  const KernelOps& ops = ActiveKernels();
  const bool scalar_tier = ops.tier == KernelTier::kScalar;
  std::vector<float> out(scores.rows());
  ParallelFor(0, scores.rows(), 16, [&](size_t begin, size_t end) {
    std::vector<float> buf;
    for (size_t r = begin; r < end; ++r) {
      // The scalar tier keeps the original nth_element path (and with it the
      // original summation order — bit-identical to pre-dispatch builds);
      // vector tiers sum the same values in sorted order, within tolerance.
      if (scalar_tier) {
        TopKValues(scores.Row(r), kk, &buf);
      } else {
        TopKValuesFiltered(ops, scores.Row(r).data(), m, kk, &buf);
      }
      double sum = std::accumulate(buf.begin(), buf.end(), 0.0);
      out[r] = static_cast<float>(sum / static_cast<double>(kk));
    }
  });
  return out;
}

std::vector<float> ColTopKMean(const Matrix& scores, size_t k) {
  assert(k >= 1);
  const size_t kk = std::min(k, scores.rows());
  const size_t m = scores.cols();
  const KernelOps& ops = ActiveKernels();
  const bool scalar_tier = ops.tier == KernelTier::kScalar;
  // Per-column min-heap of the k largest values seen so far, stored in one
  // flat (m x kk) buffer with heap[0] the smallest retained value. Workers
  // own disjoint column ranges and scan rows top-to-bottom, so each heap
  // sees exactly the serial insertion sequence. Vector tiers batch the
  // `v > heap[0]` admission test through mask_gt against a contiguous
  // shadow array of the heap roots — the surviving insertions (and therefore
  // the heaps, sums, and output bits) are identical on every tier.
  std::vector<float> heaps(m * kk, -std::numeric_limits<float>::infinity());
  std::vector<float> roots(m, -std::numeric_limits<float>::infinity());
  std::vector<float> out(m);
  const auto heap_insert = [&heaps, kk](size_t c, float v) {
    float* heap = heaps.data() + c * kk;
    // Sift down the replaced root.
    size_t i = 0;
    heap[0] = v;
    for (;;) {
      size_t smallest = i;
      const size_t left = 2 * i + 1;
      const size_t right = 2 * i + 2;
      if (left < kk && heap[left] < heap[smallest]) smallest = left;
      if (right < kk && heap[right] < heap[smallest]) smallest = right;
      if (smallest == i) break;
      std::swap(heap[i], heap[smallest]);
      i = smallest;
    }
    return heap[0];
  };
  ParallelFor(0, m, 64, [&](size_t col_begin, size_t col_end) {
    for (size_t r = 0; r < scores.rows(); ++r) {
      const float* row = scores.Row(r).data();
      if (scalar_tier) {
        for (size_t c = col_begin; c < col_end; ++c) {
          const float v = row[c];
          if (v <= roots[c]) continue;
          roots[c] = heap_insert(c, v);
        }
      } else {
        for (size_t base = col_begin; base < col_end; base += 64) {
          const size_t len = std::min<size_t>(64, col_end - base);
          uint64_t mask = ops.mask_gt(row + base, roots.data() + base, len);
          while (mask != 0) {
            const size_t c = base + static_cast<size_t>(std::countr_zero(mask));
            mask &= mask - 1;
            roots[c] = heap_insert(c, row[c]);
          }
        }
      }
    }
    for (size_t c = col_begin; c < col_end; ++c) {
      double sum = 0.0;
      for (size_t i = 0; i < kk; ++i) sum += heaps[c * kk + i];
      out[c] = static_cast<float>(sum / static_cast<double>(kk));
    }
  });
  return out;
}

std::vector<uint32_t> RowTopKIndices(const Matrix& scores, size_t k) {
  assert(k >= 1);
  const size_t kk = std::min(k, scores.cols());
  const size_t m = scores.cols();
  const KernelOps& ops = ActiveKernels();
  const bool scalar_tier = ops.tier == KernelTier::kScalar;
  std::vector<uint32_t> out(scores.rows() * kk);
  ParallelFor(0, scores.rows(), 16, [&](size_t begin, size_t end) {
    std::vector<uint32_t> idx(scores.cols());
    std::vector<float> vals(kk);
    std::vector<uint32_t> sel(kk);
    for (size_t r = begin; r < end; ++r) {
      auto row = scores.Row(r);
      if (scalar_tier) {
        // Original path, kept verbatim for the reference tier.
        std::iota(idx.begin(), idx.end(), 0u);
        std::partial_sort(idx.begin(), idx.begin() + kk, idx.end(),
                          [&row](uint32_t a, uint32_t b) {
                            if (row[a] != row[b]) return row[a] > row[b];
                            return a < b;
                          });
        std::copy(idx.begin(), idx.begin() + kk, out.begin() + r * kk);
        continue;
      }
      // Threshold-filtered selection. The buffer stays sorted by
      // (value desc, index asc); because the scan runs in ascending index
      // order and both the admission test and the insertion shift use strict
      // comparisons, an element never displaces an equal-valued earlier
      // index — exactly partial_sort's tie order, so the output indices are
      // bit-identical to the scalar tier.
      const float* rp = row.data();
      for (size_t i = 0; i < kk; ++i) {
        const float v = rp[i];
        size_t pos = i;
        while (pos > 0 && vals[pos - 1] < v) {
          vals[pos] = vals[pos - 1];
          sel[pos] = sel[pos - 1];
          --pos;
        }
        vals[pos] = v;
        sel[pos] = static_cast<uint32_t>(i);
      }
      float threshold = vals[kk - 1];
      for (size_t base = kk; base < m; base += 64) {
        const size_t len = std::min<size_t>(64, m - base);
        uint64_t mask = ops.mask_gt_scalar(rp + base, threshold, len);
        while (mask != 0) {
          const size_t bit = static_cast<size_t>(std::countr_zero(mask));
          mask &= mask - 1;
          const size_t c = base + bit;
          const float v = rp[c];
          if (!(v > threshold)) continue;  // threshold moved since the compare
          size_t pos = kk - 1;
          while (pos > 0 && vals[pos - 1] < v) {
            vals[pos] = vals[pos - 1];
            sel[pos] = sel[pos - 1];
            --pos;
          }
          vals[pos] = v;
          sel[pos] = static_cast<uint32_t>(c);
          threshold = vals[kk - 1];
        }
      }
      std::copy(sel.begin(), sel.end(), out.begin() + r * kk);
    }
  });
  return out;
}

double MeanRowTopKStd(const Matrix& scores, size_t k) {
  assert(k >= 1);
  const size_t kk = std::min(k, scores.cols());
  if (kk < 2 || scores.rows() == 0) return 0.0;
  // Per-row partials accumulated by fixed 64-row blocks, then combined
  // serially, so the double summation order is independent of thread count.
  // This is a reporting statistic off the hot path; it stays on the legacy
  // loops at every tier.
  constexpr size_t kBlock = 64;
  const size_t num_blocks = (scores.rows() + kBlock - 1) / kBlock;
  std::vector<double> partial(num_blocks, 0.0);
  ParallelFor(0, num_blocks, 1, [&](size_t block_begin, size_t block_end) {
    std::vector<float> buf;
    for (size_t b = block_begin; b < block_end; ++b) {
      const size_t row_end = std::min(scores.rows(), (b + 1) * kBlock);
      for (size_t r = b * kBlock; r < row_end; ++r) {
        TopKValues(scores.Row(r), kk, &buf);
        double mean = std::accumulate(buf.begin(), buf.end(), 0.0) /
                      static_cast<double>(kk);
        double var = 0.0;
        for (float v : buf) var += (v - mean) * (v - mean);
        var /= static_cast<double>(kk);
        partial[b] += std::sqrt(var);
      }
    }
  });
  double total = 0.0;
  for (double p : partial) total += p;
  return total / static_cast<double>(scores.rows());
}

}  // namespace entmatcher
