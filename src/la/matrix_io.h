#ifndef ENTMATCHER_LA_MATRIX_IO_H_
#define ENTMATCHER_LA_MATRIX_IO_H_

#include <string>

#include "common/status.h"
#include "la/matrix.h"

namespace entmatcher {

/// Writes a matrix as TSV text (one row per line, tab-separated floats) —
/// the interchange format embedding toolkits like OpenEA/EAkit emit, so
/// externally trained embeddings can be fed into the matching pipeline.
Status WriteMatrixTsv(const Matrix& matrix, const std::string& path);

/// Reads a TSV matrix; all rows must have the same width.
Result<Matrix> ReadMatrixTsv(const std::string& path);

/// Writes a matrix in a compact binary format:
///   magic "EMAT" | uint64 rows | uint64 cols | float32 data (row-major).
Status WriteMatrixBinary(const Matrix& matrix, const std::string& path);

/// Reads the binary format written by WriteMatrixBinary.
Result<Matrix> ReadMatrixBinary(const std::string& path);

/// Rejects non-finite entries (NaN/Inf) with kInvalidArgument naming the
/// first offending row and column. Both readers apply this before returning:
/// a NaN that slips into a similarity kernel poisons every downstream score
/// silently, so loads fail loudly instead. `context` labels the source
/// (typically the file path) in the error message.
Status ValidateMatrixFinite(const Matrix& matrix, const std::string& context);

}  // namespace entmatcher

#endif  // ENTMATCHER_LA_MATRIX_IO_H_
