#ifndef ENTMATCHER_LA_RANKING_H_
#define ENTMATCHER_LA_RANKING_H_

#include "la/matrix.h"

namespace entmatcher {

/// Converts a preference/score matrix into a ranking matrix: R(u, v) is the
/// 1-based rank of v among row u's values in *descending* order (rank 1 =
/// most preferred). Ties are broken by ascending column index, which keeps
/// the operation deterministic.
///
/// This is the ranking step of the RInf algorithm (paper Alg. 5, line 6). It
/// allocates one extra index buffer per call but the output matrix dominates:
/// O(n^2) space, O(n^2 log n) time — exactly the costs the paper attributes
/// to RInf.
Matrix RowRankMatrix(const Matrix& scores);

/// In-place variant: overwrites each row of `scores` with its rank values
/// (identical output to RowRankMatrix). Each row is sorted through an index
/// buffer first and only then overwritten, so no extra n×m matrix is needed —
/// this is what lets RInf run at two live score-size buffers instead of
/// three.
void RowRankMatrixInPlace(Matrix* scores);

}  // namespace entmatcher

#endif  // ENTMATCHER_LA_RANKING_H_
