#ifndef ENTMATCHER_LA_KMEANS_H_
#define ENTMATCHER_LA_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "la/matrix.h"

namespace entmatcher {

/// Output of cosine k-means: the cluster id per input row plus the final
/// L2-normalized centroid directions (k × dim).
struct KMeansResult {
  std::vector<uint32_t> assignment;
  Matrix centroids;
};

/// Plain k-means over L2-normalized rows (cosine k-means). Deterministic for
/// a given `rng` state: centroid init consumes one shuffle, empty-cluster
/// re-seeding one NextBounded per empty cluster per iteration. Shared by the
/// partitioner (which only needs `assignment`) and the candidate index
/// (which quantizes against `centroids`).
KMeansResult CosineKMeans(const Matrix& points, size_t k, size_t iterations,
                          Rng* rng);

}  // namespace entmatcher

#endif  // ENTMATCHER_LA_KMEANS_H_
