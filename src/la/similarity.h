#ifndef ENTMATCHER_LA_SIMILARITY_H_
#define ENTMATCHER_LA_SIMILARITY_H_

#include <vector>

#include "common/status.h"
#include "la/matrix.h"

namespace entmatcher {

/// Similarity metrics for deriving pairwise scores from embeddings
/// (paper Sec. 4.2). All metrics are expressed in "higher is better" form:
/// distance-based metrics are negated so Greedy/Hungarian can treat every
/// score matrix uniformly.
enum class SimilarityMetric {
  /// Cosine similarity (the paper's main choice).
  kCosine,
  /// Negated Euclidean distance.
  kNegEuclidean,
  /// Negated Manhattan (L1) distance.
  kNegManhattan,
};

/// Returns a stable display name ("cosine", "euclidean", "manhattan").
const char* SimilarityMetricName(SimilarityMetric metric);

/// Computes the (n×m) pairwise score matrix between source embeddings
/// (n×d) and target embeddings (m×d) under `metric`. Error if dims mismatch
/// or either side is empty.
Result<Matrix> ComputeSimilarity(const Matrix& source, const Matrix& target,
                                 SimilarityMetric metric);

/// Per-row statistics that let similarity scores be produced tile by tile
/// without rescanning the embeddings: inverse L2 norms for cosine, squared
/// norms (as doubles, matching the dense kernel's accumulation) for negated
/// Euclidean. A MatchEngine builds this once per (source, target, metric)
/// and reuses it for every query; only the fields `metric` needs are filled.
struct SimilarityCache {
  std::vector<float> inv_source_norms;
  std::vector<float> inv_target_norms;
  std::vector<double> source_sq_norms;
  std::vector<double> target_sq_norms;
};

/// Builds the per-row statistics `metric` needs (other fields stay empty).
SimilarityCache BuildSimilarityCache(const Matrix& source, const Matrix& target,
                                     SimilarityMetric metric);

/// Tiled similarity: scores source rows [row_begin, row_end) against every
/// target row into `out`, which must be (row_end - row_begin) × target.rows().
/// `cache` must have been built for (source, target, metric). Bit-identical
/// to the same rows of ComputeSimilarity at every thread count and tile size
/// — the dense, streaming, and engine paths all run through this kernel.
Status ComputeSimilarityRange(const Matrix& source, const Matrix& target,
                              SimilarityMetric metric,
                              const SimilarityCache& cache, size_t row_begin,
                              size_t row_end, Matrix* out);

/// Exact score of one (source row i, target row j) pair. Bit-identical to
/// cell (i, j) of ComputeSimilarity: each branch replays the dense kernel's
/// accumulation order and float expression grouping, which is what lets the
/// candidate index rerank produce entries interchangeable with dense scores.
/// `cache` must have been built for (source, target, metric).
float PairSimilarity(const Matrix& source, const Matrix& target, size_t i,
                     size_t j, SimilarityMetric metric,
                     const SimilarityCache& cache);

}  // namespace entmatcher

#endif  // ENTMATCHER_LA_SIMILARITY_H_
