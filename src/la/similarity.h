#ifndef ENTMATCHER_LA_SIMILARITY_H_
#define ENTMATCHER_LA_SIMILARITY_H_

#include "common/status.h"
#include "la/matrix.h"

namespace entmatcher {

/// Similarity metrics for deriving pairwise scores from embeddings
/// (paper Sec. 4.2). All metrics are expressed in "higher is better" form:
/// distance-based metrics are negated so Greedy/Hungarian can treat every
/// score matrix uniformly.
enum class SimilarityMetric {
  /// Cosine similarity (the paper's main choice).
  kCosine,
  /// Negated Euclidean distance.
  kNegEuclidean,
  /// Negated Manhattan (L1) distance.
  kNegManhattan,
};

/// Returns a stable display name ("cosine", "euclidean", "manhattan").
const char* SimilarityMetricName(SimilarityMetric metric);

/// Computes the (n×m) pairwise score matrix between source embeddings
/// (n×d) and target embeddings (m×d) under `metric`. Error if dims mismatch
/// or either side is empty.
Result<Matrix> ComputeSimilarity(const Matrix& source, const Matrix& target,
                                 SimilarityMetric metric);

}  // namespace entmatcher

#endif  // ENTMATCHER_LA_SIMILARITY_H_
