#ifndef ENTMATCHER_LA_MMAP_STORE_H_
#define ENTMATCHER_LA_MMAP_STORE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "common/status.h"
#include "la/matrix.h"

namespace entmatcher {

/// EMBF1: the out-of-core embedding container. On-disk layout (little-endian):
///
///   bytes 0..3    magic "EMBF"
///   uint64        format version (= 1)
///   uint64        rows
///   uint64        cols
///   uint64        payload offset in bytes (= 64; leaves the payload
///                 page-friendly and room to grow the header)
///   zero padding up to the payload offset
///   float32[rows * cols], row-major
///
/// The point of the format is that the payload *is* the in-memory
/// representation: an MmapStore maps the file read-only and hands out row
/// spans (or a borrowed Matrix) straight over the page cache, so a 1M x 128d
/// pair (512 MB of floats per side) can feed the matching engine without ever
/// being materialized on the heap.
constexpr size_t kEmbfHeaderBytes = 64;
constexpr uint64_t kEmbfFormatVersion = 1;

/// How the kernel should stage pages for a mapped store.
enum class MmapAccessHint : uint8_t {
  /// Probe-driven access (candidate rerank): rows are touched in id order
  /// scattered across the file. madvise(MADV_RANDOM).
  kRandom = 0,
  /// Full scans (dense scoring, norm caches): rows are touched front to
  /// back. madvise(MADV_SEQUENTIAL) lets the kernel read ahead and drop
  /// pages behind the scan.
  kSequential = 1,
};

struct MmapStoreOptions {
  /// What the store charges to MemoryTracker. A mapped file's *logical*
  /// bytes are not resident bytes — the kernel pages rows in on demand and
  /// can evict them under pressure — so charging rows*cols*4 would make a
  /// 1M-row store look like it blew any workspace budget while actually
  /// touching a few MB. The store instead charges
  /// min(resident_budget_bytes, logical bytes): the caller's declared
  /// working-set ceiling, enforced in spirit by DropResident() and by the
  /// kernel's reclaim. Benches gate real peak RSS separately.
  size_t resident_budget_bytes = 64ull << 20;

  MmapAccessHint hint = MmapAccessHint::kRandom;
};

/// A read-only, memory-mapped, row-major float32 embedding store over an
/// EMBF1 file. Move-only; the mapping (and the MemoryTracker charge) lives
/// until destruction. All reads are plain const loads — a store can be
/// shared across any number of threads.
class MmapStore {
 public:
  /// Maps `path`, validating magic, version, shape, and file size against
  /// the header. Fault point "mmap.load.read" (kIoError) fires before the
  /// file is opened, modeling a storage-layer read failure.
  static Result<MmapStore> Open(const std::string& path,
                                const MmapStoreOptions& options = {});

  /// Writes `matrix` to `path` in EMBF1 format.
  static Status Write(const Matrix& matrix, const std::string& path);

  MmapStore(MmapStore&& other) noexcept;
  MmapStore& operator=(MmapStore&& other) noexcept;
  MmapStore(const MmapStore&) = delete;
  MmapStore& operator=(const MmapStore&) = delete;
  ~MmapStore();

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  /// Total payload bytes if the matrix were materialized.
  size_t logical_bytes() const { return rows_ * cols_ * sizeof(float); }
  /// What this store charged to MemoryTracker (the resident budget, capped
  /// at the logical size).
  size_t tracked_bytes() const { return tracked_bytes_; }

  /// Read-only view of one row, straight over the mapping.
  std::span<const float> RowView(size_t r) const {
    return std::span<const float>(data_ + r * cols_, cols_);
  }

  /// A borrowed Matrix over the mapping, suitable for PairSnapshot::Build
  /// and the similarity kernels. The store must outlive every copy of the
  /// *borrowed* view (a Matrix copy detaches into owned memory). The buffer
  /// is mapped PROT_READ: writing through the view is a bug and faults.
  Matrix AsMatrix() const;

  /// Advises the kernel to drop this store's resident pages
  /// (MADV_DONTNEED). Reads stay valid — pages fault back in from the file
  /// — so this is the knob for staying under a resident budget between
  /// scoring passes.
  Status DropResident();

 private:
  MmapStore() = default;

  void* map_ = nullptr;       // whole-file mapping (header + payload)
  size_t map_bytes_ = 0;
  const float* data_ = nullptr;  // payload start inside map_
  size_t rows_ = 0;
  size_t cols_ = 0;
  size_t tracked_bytes_ = 0;
};

/// Streaming EMBF1 writer: declares the shape up front, appends rows, and
/// patches nothing afterwards (the header is complete from byte 0). This is
/// how the synthetic 1M-row generators emit files with O(cols) live memory.
class EmbfWriter {
 public:
  /// Creates `path` and writes the header for a rows x cols store.
  static Result<EmbfWriter> Create(const std::string& path, size_t rows,
                                   size_t cols);

  EmbfWriter(EmbfWriter&&) noexcept = default;
  EmbfWriter& operator=(EmbfWriter&&) noexcept = default;
  EmbfWriter(const EmbfWriter&) = delete;
  EmbfWriter& operator=(const EmbfWriter&) = delete;
  ~EmbfWriter();

  /// Appends one row; `row.size()` must equal the declared cols.
  Status Append(std::span<const float> row);

  /// Flushes and closes; fails unless exactly the declared number of rows
  /// was appended. After Finish the writer is inert.
  Status Finish();

  size_t rows_written() const { return rows_written_; }

 private:
  EmbfWriter() = default;

  struct FileCloser {
    void operator()(void* f) const;
  };
  std::unique_ptr<void, FileCloser> file_;  // FILE*, type-erased
  std::string path_;
  size_t rows_ = 0;
  size_t cols_ = 0;
  size_t rows_written_ = 0;
};

}  // namespace entmatcher

#endif  // ENTMATCHER_LA_MMAP_STORE_H_
