#include "la/similarity.h"

#include <cmath>
#include <vector>

#include "common/thread_pool.h"

namespace entmatcher {

namespace {

// 1 / ||row|| for every row; zero rows get 1.0 so they pass through the
// cosine scaling unchanged (their dot products are all zero anyway), which
// matches L2NormalizeRows leaving zero rows untouched.
std::vector<float> InverseRowNorms(const Matrix& m) {
  std::vector<float> inv(m.rows());
  ParallelFor(0, m.rows(), 64, [&](size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) {
      double sq = 0.0;
      for (float v : m.Row(r)) sq += static_cast<double>(v) * v;
      inv[r] = sq > 0.0 ? static_cast<float>(1.0 / std::sqrt(sq)) : 1.0f;
    }
  });
  return inv;
}

// Scales the raw dot products by both inverse norms instead of normalizing
// copies of the inputs: saves two full embedding-matrix copies and two
// normalization passes.
Result<Matrix> CosineSimilarity(const Matrix& source, const Matrix& target) {
  const std::vector<float> inv_src = InverseRowNorms(source);
  const std::vector<float> inv_tgt = InverseRowNorms(target);
  EM_ASSIGN_OR_RETURN(Matrix dots, MatMulTransposed(source, target));
  ParallelFor(0, dots.rows(), 16, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      float* row = dots.Row(i).data();
      const float si = inv_src[i];
      for (size_t j = 0; j < dots.cols(); ++j) {
        row[j] *= si * inv_tgt[j];
      }
    }
  });
  return dots;
}

// ||a - b||^2 = ||a||^2 + ||b||^2 - 2 a.b ; score = -||a - b||.
Result<Matrix> NegEuclidean(const Matrix& source, const Matrix& target) {
  EM_ASSIGN_OR_RETURN(Matrix dots, MatMulTransposed(source, target));
  std::vector<double> src_sq(source.rows(), 0.0);
  std::vector<double> tgt_sq(target.rows(), 0.0);
  ParallelFor(0, source.rows(), 64, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      for (float v : source.Row(i)) src_sq[i] += static_cast<double>(v) * v;
    }
  });
  ParallelFor(0, target.rows(), 64, [&](size_t begin, size_t end) {
    for (size_t j = begin; j < end; ++j) {
      for (float v : target.Row(j)) tgt_sq[j] += static_cast<double>(v) * v;
    }
  });
  ParallelFor(0, dots.rows(), 16, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      float* row = dots.Row(i).data();
      for (size_t j = 0; j < dots.cols(); ++j) {
        double sq = src_sq[i] + tgt_sq[j] - 2.0 * row[j];
        if (sq < 0.0) sq = 0.0;  // numeric guard
        row[j] = -static_cast<float>(std::sqrt(sq));
      }
    }
  });
  return dots;
}

Result<Matrix> NegManhattan(const Matrix& source, const Matrix& target) {
  const size_t n = source.rows();
  const size_t m = target.rows();
  const size_t d = source.cols();
  Matrix out(n, m);
  ParallelFor(0, n, 8, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const float* a = source.Row(i).data();
      float* row = out.Row(i).data();
      for (size_t j = 0; j < m; ++j) {
        const float* b = target.Row(j).data();
        float dist = 0.0f;
        for (size_t k = 0; k < d; ++k) dist += std::fabs(a[k] - b[k]);
        row[j] = -dist;
      }
    }
  });
  return out;
}

}  // namespace

const char* SimilarityMetricName(SimilarityMetric metric) {
  switch (metric) {
    case SimilarityMetric::kCosine:
      return "cosine";
    case SimilarityMetric::kNegEuclidean:
      return "euclidean";
    case SimilarityMetric::kNegManhattan:
      return "manhattan";
  }
  return "?";
}

Result<Matrix> ComputeSimilarity(const Matrix& source, const Matrix& target,
                                 SimilarityMetric metric) {
  if (source.rows() == 0 || target.rows() == 0) {
    return Status::InvalidArgument("ComputeSimilarity: empty embedding matrix");
  }
  if (source.cols() != target.cols()) {
    return Status::InvalidArgument(
        "ComputeSimilarity: embedding dimensions differ");
  }
  switch (metric) {
    case SimilarityMetric::kCosine:
      return CosineSimilarity(source, target);
    case SimilarityMetric::kNegEuclidean:
      return NegEuclidean(source, target);
    case SimilarityMetric::kNegManhattan:
      return NegManhattan(source, target);
  }
  return Status::InvalidArgument("ComputeSimilarity: unknown metric");
}

}  // namespace entmatcher
