#include "la/similarity.h"

#include <cmath>
#include <vector>

#include "common/thread_pool.h"
#include "la/kernels/dispatch.h"

namespace entmatcher {

namespace {

// 1 / ||row|| for every row; zero rows get 1.0 so they pass through the
// cosine scaling unchanged (their dot products are all zero anyway), which
// matches L2NormalizeRows leaving zero rows untouched.
std::vector<float> InverseRowNorms(const Matrix& m) {
  const KernelOps& ops = ActiveKernels();
  const size_t d = m.cols();
  std::vector<float> inv(m.rows());
  ParallelFor(0, m.rows(), 64, [&](size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) {
      const double sq = ops.squared_norm(m.Row(r).data(), d);
      inv[r] = sq > 0.0 ? static_cast<float>(1.0 / std::sqrt(sq)) : 1.0f;
    }
  });
  return inv;
}

// ||row||^2 in double precision (the Euclidean kernel accumulates in double).
std::vector<double> SquaredRowNorms(const Matrix& m) {
  const KernelOps& ops = ActiveKernels();
  const size_t d = m.cols();
  std::vector<double> sq(m.rows(), 0.0);
  ParallelFor(0, m.rows(), 64, [&](size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) {
      sq[r] = ops.squared_norm(m.Row(r).data(), d);
    }
  });
  return sq;
}

// Scales the raw dot products by both inverse norms instead of normalizing
// copies of the inputs: saves two full embedding-matrix copies and two
// normalization passes. The inner loop lives in the kernel layer
// (cosine_scale_row), which takes the column count by value — the old code
// re-read `out->cols()` through the pointer every iteration, which the
// compiler could not hoist past the row-pointer stores.
Status CosineSimilarityRange(const Matrix& source, const Matrix& target,
                             const SimilarityCache& cache, size_t row_begin,
                             size_t row_end, Matrix* out) {
  EM_RETURN_NOT_OK(
      MatMulTransposedRange(source, target, row_begin, row_end, out));
  const std::vector<float>& inv_src = cache.inv_source_norms;
  const float* inv_tgt = cache.inv_target_norms.data();
  const size_t m = out->cols();
  const KernelOps& ops = ActiveKernels();
  ParallelFor(0, out->rows(), 16, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      ops.cosine_scale_row(out->Row(i).data(), inv_tgt, m,
                           inv_src[row_begin + i]);
    }
  });
  return Status::OK();
}

// ||a - b||^2 = ||a||^2 + ||b||^2 - 2 a.b ; score = -||a - b||.
Status NegEuclideanRange(const Matrix& source, const Matrix& target,
                         const SimilarityCache& cache, size_t row_begin,
                         size_t row_end, Matrix* out) {
  EM_RETURN_NOT_OK(
      MatMulTransposedRange(source, target, row_begin, row_end, out));
  const std::vector<double>& src_sq = cache.source_sq_norms;
  const std::vector<double>& tgt_sq = cache.target_sq_norms;
  ParallelFor(0, out->rows(), 16, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      float* row = out->Row(i).data();
      for (size_t j = 0; j < out->cols(); ++j) {
        double sq = src_sq[row_begin + i] + tgt_sq[j] - 2.0 * row[j];
        if (sq < 0.0) sq = 0.0;  // numeric guard
        row[j] = -static_cast<float>(std::sqrt(sq));
      }
    }
  });
  return Status::OK();
}

Status NegManhattanRange(const Matrix& source, const Matrix& target,
                         size_t row_begin, size_t row_end, Matrix* out) {
  const size_t count = row_end - row_begin;
  const size_t m = target.rows();
  const size_t d = source.cols();
  const KernelOps& ops = ActiveKernels();
  ParallelFor(0, count, 8, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const float* a = source.Row(row_begin + i).data();
      float* row = out->Row(i).data();
      for (size_t j = 0; j < m; ++j) {
        row[j] = -ops.manhattan(a, target.Row(j).data(), d);
      }
    }
  });
  return Status::OK();
}

Status ValidateSimilarityInputs(const Matrix& source, const Matrix& target) {
  if (source.rows() == 0 || target.rows() == 0) {
    return Status::InvalidArgument("ComputeSimilarity: empty embedding matrix");
  }
  if (source.cols() != target.cols()) {
    return Status::InvalidArgument(
        "ComputeSimilarity: embedding dimensions differ");
  }
  return Status::OK();
}

}  // namespace

const char* SimilarityMetricName(SimilarityMetric metric) {
  switch (metric) {
    case SimilarityMetric::kCosine:
      return "cosine";
    case SimilarityMetric::kNegEuclidean:
      return "euclidean";
    case SimilarityMetric::kNegManhattan:
      return "manhattan";
  }
  return "?";
}

SimilarityCache BuildSimilarityCache(const Matrix& source, const Matrix& target,
                                     SimilarityMetric metric) {
  SimilarityCache cache;
  switch (metric) {
    case SimilarityMetric::kCosine:
      cache.inv_source_norms = InverseRowNorms(source);
      cache.inv_target_norms = InverseRowNorms(target);
      break;
    case SimilarityMetric::kNegEuclidean:
      cache.source_sq_norms = SquaredRowNorms(source);
      cache.target_sq_norms = SquaredRowNorms(target);
      break;
    case SimilarityMetric::kNegManhattan:
      break;  // direct kernel, no reusable statistics
  }
  return cache;
}

Status ComputeSimilarityRange(const Matrix& source, const Matrix& target,
                              SimilarityMetric metric,
                              const SimilarityCache& cache, size_t row_begin,
                              size_t row_end, Matrix* out) {
  EM_RETURN_NOT_OK(ValidateSimilarityInputs(source, target));
  if (row_begin > row_end || row_end > source.rows()) {
    return Status::OutOfRange("ComputeSimilarityRange: bad row range");
  }
  if (out->rows() != row_end - row_begin || out->cols() != target.rows()) {
    return Status::InvalidArgument(
        "ComputeSimilarityRange: output shape mismatch");
  }
  switch (metric) {
    case SimilarityMetric::kCosine:
      if (cache.inv_source_norms.size() != source.rows() ||
          cache.inv_target_norms.size() != target.rows()) {
        return Status::InvalidArgument(
            "ComputeSimilarityRange: cache not built for cosine");
      }
      return CosineSimilarityRange(source, target, cache, row_begin, row_end,
                                   out);
    case SimilarityMetric::kNegEuclidean:
      if (cache.source_sq_norms.size() != source.rows() ||
          cache.target_sq_norms.size() != target.rows()) {
        return Status::InvalidArgument(
            "ComputeSimilarityRange: cache not built for euclidean");
      }
      return NegEuclideanRange(source, target, cache, row_begin, row_end, out);
    case SimilarityMetric::kNegManhattan:
      return NegManhattanRange(source, target, row_begin, row_end, out);
  }
  return Status::InvalidArgument("ComputeSimilarity: unknown metric");
}

float PairSimilarity(const Matrix& source, const Matrix& target, size_t i,
                     size_t j, SimilarityMetric metric,
                     const SimilarityCache& cache) {
  const float* a = source.Row(i).data();
  const float* b = target.Row(j).data();
  const size_t d = source.cols();
  // ops.dot is the same accumulation the dense matmul performs per cell at
  // this tier, so a sparse rerank entry is bit-identical to the dense score
  // it stands in for — at every tier, not just scalar.
  const KernelOps& ops = ActiveKernels();
  switch (metric) {
    case SimilarityMetric::kCosine: {
      // Matches the dense post-scale `row[j] *= si * inv_tgt[j]`: the two
      // inverse norms are multiplied together first.
      return ops.dot(a, b, d) *
             (cache.inv_source_norms[i] * cache.inv_target_norms[j]);
    }
    case SimilarityMetric::kNegEuclidean: {
      const float acc = ops.dot(a, b, d);
      double sq =
          cache.source_sq_norms[i] + cache.target_sq_norms[j] - 2.0 * acc;
      if (sq < 0.0) sq = 0.0;  // numeric guard
      return -static_cast<float>(std::sqrt(sq));
    }
    case SimilarityMetric::kNegManhattan:
      return -ops.manhattan(a, b, d);
  }
  return 0.0f;
}

Result<Matrix> ComputeSimilarity(const Matrix& source, const Matrix& target,
                                 SimilarityMetric metric) {
  EM_RETURN_NOT_OK(ValidateSimilarityInputs(source, target));
  const SimilarityCache cache = BuildSimilarityCache(source, target, metric);
  Matrix out(source.rows(), target.rows());
  EM_RETURN_NOT_OK(ComputeSimilarityRange(source, target, metric, cache, 0,
                                          source.rows(), &out));
  return out;
}

}  // namespace entmatcher
