#include "la/similarity.h"

#include <cmath>

namespace entmatcher {

namespace {

Result<Matrix> CosineSimilarity(const Matrix& source, const Matrix& target) {
  Matrix src = source;
  Matrix tgt = target;
  L2NormalizeRows(&src);
  L2NormalizeRows(&tgt);
  return MatMulTransposed(src, tgt);
}

// ||a - b||^2 = ||a||^2 + ||b||^2 - 2 a.b ; score = -||a - b||.
Result<Matrix> NegEuclidean(const Matrix& source, const Matrix& target) {
  EM_ASSIGN_OR_RETURN(Matrix dots, MatMulTransposed(source, target));
  std::vector<double> src_sq(source.rows(), 0.0);
  std::vector<double> tgt_sq(target.rows(), 0.0);
  for (size_t i = 0; i < source.rows(); ++i) {
    for (float v : source.Row(i)) src_sq[i] += static_cast<double>(v) * v;
  }
  for (size_t j = 0; j < target.rows(); ++j) {
    for (float v : target.Row(j)) tgt_sq[j] += static_cast<double>(v) * v;
  }
  for (size_t i = 0; i < dots.rows(); ++i) {
    float* row = dots.Row(i).data();
    for (size_t j = 0; j < dots.cols(); ++j) {
      double sq = src_sq[i] + tgt_sq[j] - 2.0 * row[j];
      if (sq < 0.0) sq = 0.0;  // numeric guard
      row[j] = -static_cast<float>(std::sqrt(sq));
    }
  }
  return dots;
}

Result<Matrix> NegManhattan(const Matrix& source, const Matrix& target) {
  const size_t n = source.rows();
  const size_t m = target.rows();
  const size_t d = source.cols();
  Matrix out(n, m);
  for (size_t i = 0; i < n; ++i) {
    const float* a = source.Row(i).data();
    float* row = out.Row(i).data();
    for (size_t j = 0; j < m; ++j) {
      const float* b = target.Row(j).data();
      float dist = 0.0f;
      for (size_t k = 0; k < d; ++k) dist += std::fabs(a[k] - b[k]);
      row[j] = -dist;
    }
  }
  return out;
}

}  // namespace

const char* SimilarityMetricName(SimilarityMetric metric) {
  switch (metric) {
    case SimilarityMetric::kCosine:
      return "cosine";
    case SimilarityMetric::kNegEuclidean:
      return "euclidean";
    case SimilarityMetric::kNegManhattan:
      return "manhattan";
  }
  return "?";
}

Result<Matrix> ComputeSimilarity(const Matrix& source, const Matrix& target,
                                 SimilarityMetric metric) {
  if (source.rows() == 0 || target.rows() == 0) {
    return Status::InvalidArgument("ComputeSimilarity: empty embedding matrix");
  }
  if (source.cols() != target.cols()) {
    return Status::InvalidArgument(
        "ComputeSimilarity: embedding dimensions differ");
  }
  switch (metric) {
    case SimilarityMetric::kCosine:
      return CosineSimilarity(source, target);
    case SimilarityMetric::kNegEuclidean:
      return NegEuclidean(source, target);
    case SimilarityMetric::kNegManhattan:
      return NegManhattan(source, target);
  }
  return Status::InvalidArgument("ComputeSimilarity: unknown metric");
}

}  // namespace entmatcher
