#include "la/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/thread_pool.h"
#include "la/kernels/dispatch.h"

namespace entmatcher {

void Matrix::Fill(float value) {
  std::fill(ptr_, ptr_ + size(), value);
}

void Matrix::Scale(float factor) {
  for (size_t i = 0; i < size(); ++i) ptr_[i] *= factor;
}

void Matrix::Add(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < size(); ++i) ptr_[i] += other.ptr_[i];
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  // Blocked transpose for cache friendliness on large score matrices.
  constexpr size_t kBlock = 64;
  for (size_t rb = 0; rb < rows_; rb += kBlock) {
    const size_t r_end = std::min(rows_, rb + kBlock);
    for (size_t cb = 0; cb < cols_; cb += kBlock) {
      const size_t c_end = std::min(cols_, cb + kBlock);
      for (size_t r = rb; r < r_end; ++r) {
        for (size_t c = cb; c < c_end; ++c) {
          out.At(c, r) = At(r, c);
        }
      }
    }
  }
  return out;
}

Matrix Matrix::FromRows(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix out(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    assert(rows[r].size() == out.cols());
    std::memcpy(out.Row(r).data(), rows[r].data(),
                rows[r].size() * sizeof(float));
  }
  return out;
}

bool Matrix::ApproxEquals(const Matrix& other, float tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < size(); ++i) {
    if (std::fabs(ptr_[i] - other.ptr_[i]) > tol) return false;
  }
  return true;
}

Status MatMulTransposedRange(const Matrix& a, const Matrix& b,
                             size_t row_begin, size_t row_end, Matrix* out) {
  if (a.cols() != b.cols()) {
    return Status::InvalidArgument("MatMulTransposed: inner dimension mismatch");
  }
  if (row_begin > row_end || row_end > a.rows()) {
    return Status::OutOfRange("MatMulTransposedRange: bad row range");
  }
  const size_t count = row_end - row_begin;
  const size_t m = b.rows();
  const size_t d = a.cols();
  if (out->rows() != count || out->cols() != m) {
    return Status::InvalidArgument(
        "MatMulTransposedRange: output shape mismatch");
  }
  // The active tier's register-blocked micro-kernel runs per chunk; both
  // operands are traversed row-wise, which is contiguous for the B^T
  // formulation. Each output row depends only on its own inputs, so A's rows
  // are split across the pool, and every cell is an independent dot product —
  // chunk boundaries never change a value.
  const KernelOps& ops = ActiveKernels();
  ParallelFor(0, count, 32, [&](size_t chunk_begin, size_t chunk_end) {
    ops.matmul_tile(a.Row(row_begin + chunk_begin).data(), a.cols(),
                    chunk_end - chunk_begin, b.data(), b.cols(), m, d,
                    out->Row(chunk_begin).data(), out->cols());
  });
  return Status::OK();
}

Result<Matrix> MatMulTransposed(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.cols()) {
    return Status::InvalidArgument("MatMulTransposed: inner dimension mismatch");
  }
  Matrix c(a.rows(), b.rows());
  EM_RETURN_NOT_OK(MatMulTransposedRange(a, b, 0, a.rows(), &c));
  return c;
}

void L2NormalizeRows(Matrix* m) {
  const KernelOps& ops = ActiveKernels();
  const size_t d = m->cols();
  ParallelFor(0, m->rows(), 64, [&](size_t row_begin, size_t row_end) {
    for (size_t r = row_begin; r < row_end; ++r) {
      float* row = m->Row(r).data();
      const double sq = ops.squared_norm(row, d);
      if (sq <= 0.0) continue;
      const float inv = static_cast<float>(1.0 / std::sqrt(sq));
      ops.scale(row, d, inv);
    }
  });
}

}  // namespace entmatcher
