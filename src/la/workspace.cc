#include "la/workspace.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <string>

#include "common/fault.h"
#include "common/memory_tracker.h"

namespace entmatcher {

namespace {

// Guarded rows*cols*element_size; 0 on overflow.
size_t CheckedBufferBytes(size_t count, size_t element_size) {
  if (count == 0) return 0;
  if (count > std::numeric_limits<size_t>::max() / element_size) return 0;
  return count * element_size;
}

}  // namespace

Workspace::~Workspace() {
  // Leases still out at destruction belong to buffers the owner is tearing
  // down with the workspace (engine members); settle their tracker charge.
  for (const Lease& lease : leases_) {
    MemoryTracker::Global().Sub(lease.bytes);
  }
}

Result<std::byte*> Workspace::AcquireBytes(size_t bytes) {
  EM_RETURN_NOT_OK(CheckBudget(bytes));
  EM_INJECT_FAULT("workspace.acquire", StatusCode::kResourceExhausted);

  // Best fit: the smallest pooled slab that holds `bytes`; ties broken by
  // lowest index. Deterministic, so reuse patterns (and thus any accounting
  // derived from them) are reproducible run to run.
  size_t best = slabs_.size();
  for (size_t s = 0; s < slabs_.size(); ++s) {
    if (slabs_[s].leased || slabs_[s].capacity < bytes) continue;
    if (best == slabs_.size() || slabs_[s].capacity < slabs_[best].capacity) {
      best = s;
    }
  }
  if (best == slabs_.size()) {
    Slab slab;
    slab.bytes = std::make_unique<std::byte[]>(bytes);
    slab.capacity = bytes;
    slabs_.push_back(std::move(slab));
    best = slabs_.size() - 1;
  }
  slabs_[best].leased = true;
  std::byte* ptr = slabs_[best].bytes.get();
  leases_.push_back(Lease{ptr, bytes, best});

  in_use_bytes_ += bytes;
  high_water_bytes_ = std::max(high_water_bytes_, in_use_bytes_);
  MemoryTracker::Global().Add(bytes);
  return ptr;
}

void Workspace::ReleaseBytes(const std::byte* ptr) {
  for (size_t i = 0; i < leases_.size(); ++i) {
    if (leases_[i].ptr != ptr) continue;
    slabs_[leases_[i].slab].leased = false;
    in_use_bytes_ -= leases_[i].bytes;
    MemoryTracker::Global().Sub(leases_[i].bytes);
    leases_.erase(leases_.begin() + static_cast<ptrdiff_t>(i));
    return;
  }
  // Releasing a buffer that was never leased here is a caller bug; ignoring
  // it keeps release paths non-fatal (the tracker simply stays conservative).
}

Result<Matrix> Workspace::AcquireMatrix(size_t rows, size_t cols) {
  if (rows == 0 || cols == 0) {
    return Status::InvalidArgument("Workspace::AcquireMatrix: empty shape");
  }
  if (cols > std::numeric_limits<size_t>::max() / rows) {
    return Status::InvalidArgument("Workspace::AcquireMatrix: shape overflow");
  }
  const size_t bytes = CheckedBufferBytes(rows * cols, sizeof(float));
  if (bytes == 0) {
    return Status::InvalidArgument("Workspace::AcquireMatrix: shape overflow");
  }
  EM_ASSIGN_OR_RETURN(std::byte * ptr, AcquireBytes(bytes));
  // Zero-fill so a pooled buffer is indistinguishable from Matrix(rows, cols).
  std::memset(ptr, 0, bytes);
  return Matrix::Borrowed(reinterpret_cast<float*>(ptr), rows, cols);
}

Result<std::span<uint32_t>> Workspace::AcquireIndices(size_t count) {
  if (count == 0) {
    return Status::InvalidArgument("Workspace::AcquireIndices: empty buffer");
  }
  const size_t bytes = CheckedBufferBytes(count, sizeof(uint32_t));
  if (bytes == 0) {
    return Status::InvalidArgument("Workspace::AcquireIndices: size overflow");
  }
  EM_ASSIGN_OR_RETURN(std::byte * ptr, AcquireBytes(bytes));
  std::memset(ptr, 0, bytes);
  return std::span<uint32_t>(reinterpret_cast<uint32_t*>(ptr), count);
}

void Workspace::Release(const Matrix& matrix) {
  ReleaseBytes(reinterpret_cast<const std::byte*>(matrix.data()));
}

void Workspace::Release(std::span<uint32_t> indices) {
  ReleaseBytes(reinterpret_cast<const std::byte*>(indices.data()));
}

Status Workspace::CheckBudget(size_t additional_bytes) const {
  if (budget_bytes_ == 0) return Status::OK();
  if (additional_bytes > budget_bytes_ ||
      in_use_bytes_ > budget_bytes_ - additional_bytes) {
    return Status::ResourceExhausted(
        "workspace budget exceeded: need " + std::to_string(additional_bytes) +
        " more bytes with " + std::to_string(in_use_bytes_) +
        " in use, budget " + std::to_string(budget_bytes_));
  }
  return Status::OK();
}

void Workspace::Rearm(size_t budget_bytes) {
  if (!idle()) return;  // caller bug; keep the armed budget authoritative
  budget_bytes_ = budget_bytes;
  in_use_bytes_ = 0;
  high_water_bytes_ = 0;
}

size_t Workspace::capacity_bytes() const {
  size_t total = 0;
  for (const Slab& slab : slabs_) total += slab.capacity;
  return total;
}

void Workspace::Trim() {
  std::vector<Slab> kept;
  kept.reserve(slabs_.size());
  std::vector<size_t> remap(slabs_.size());
  for (size_t s = 0; s < slabs_.size(); ++s) {
    if (!slabs_[s].leased) continue;
    remap[s] = kept.size();
    kept.push_back(std::move(slabs_[s]));
  }
  for (Lease& lease : leases_) lease.slab = remap[lease.slab];
  slabs_ = std::move(kept);
}

Result<ScratchMatrix> ScratchMatrix::Acquire(Workspace* workspace, size_t rows,
                                             size_t cols) {
  if (workspace == nullptr) {
    return ScratchMatrix(nullptr, Matrix(rows, cols));
  }
  EM_ASSIGN_OR_RETURN(Matrix m, workspace->AcquireMatrix(rows, cols));
  return ScratchMatrix(workspace, std::move(m));
}

Result<ScratchIndices> ScratchIndices::Acquire(Workspace* workspace,
                                               size_t count) {
  if (workspace == nullptr) {
    std::vector<uint32_t> owned(count, 0u);
    const std::span<uint32_t> span(owned.data(), owned.size());
    return ScratchIndices(nullptr, span, std::move(owned));
  }
  EM_ASSIGN_OR_RETURN(std::span<uint32_t> span,
                      workspace->AcquireIndices(count));
  return ScratchIndices(workspace, span, {});
}

}  // namespace entmatcher
