#ifndef ENTMATCHER_LA_WORKSPACE_H_
#define ENTMATCHER_LA_WORKSPACE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "la/matrix.h"

namespace entmatcher {

/// Arena of reusable numeric buffers for the matching pipeline.
///
/// The paper's large-scale story (Table 6, Fig. 5b) is as much about peak
/// workspace as about F1: SMat goes OOM at DWY100K scale and RInf-wr/pb exist
/// purely to cut buffers. The workspace makes that budget first-class. Every
/// matrix-scale buffer of an engine query — the score matrix, transform
/// scratch, the padded assignment cost matrix, stable-matching preference
/// tables — is acquired here; acquisitions count against an optional hard
/// byte budget (exceeding it returns kResourceExhausted, turning Table 6's
/// "Mem: No" verdict into a real, clean error), and released buffers are
/// recycled so a warm engine runs allocation-free at steady state.
///
/// Acquire/Release mirror *logical* bytes into MemoryTracker: the tracker is
/// charged when a buffer is handed out and credited when it is returned, not
/// when the backing slab is malloc'd or freed. Tracker-based peak metrics are
/// therefore identical whether a buffer was freshly allocated or reused from
/// the pool (`MatchRun::peak_workspace_bytes` parity).
///
/// Not thread-safe: one workspace belongs to one engine/session and is used
/// from one thread at a time. Parallel kernels *inside* a query never touch
/// the arena (they write into already-acquired buffers), and parallel blocks
/// (PartitionedMatch) each construct their own engine with its own workspace.
class Workspace {
 public:
  /// `budget_bytes` caps the logically in-use bytes; 0 means unlimited.
  explicit Workspace(size_t budget_bytes = 0) : budget_bytes_(budget_bytes) {}

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  ~Workspace();

  /// Leases a zero-filled rows×cols borrowed matrix from the pool (the
  /// zero-fill matches `Matrix(rows, cols)` so pooled and fresh buffers are
  /// indistinguishable). Fails with kResourceExhausted when the budget would
  /// be exceeded, kInvalidArgument on empty or overflowing shapes.
  Result<Matrix> AcquireMatrix(size_t rows, size_t cols);

  /// Leases `count` zero-initialized uint32 indices (preference tables).
  Result<std::span<uint32_t>> AcquireIndices(size_t count);

  /// Returns a leased matrix (matched by buffer address) to the pool. The
  /// matrix must have come from AcquireMatrix on this workspace.
  void Release(const Matrix& matrix);

  /// Returns a leased index buffer to the pool.
  void Release(std::span<uint32_t> indices);

  /// OK iff `additional_bytes` more could be acquired right now without
  /// exceeding the budget. Lets callers reject a whole query up front
  /// instead of failing halfway through.
  Status CheckBudget(size_t additional_bytes) const;

  /// The hard cap in bytes (0 = unlimited).
  size_t budget_bytes() const { return budget_bytes_; }

  /// Logically leased bytes right now.
  size_t in_use_bytes() const { return in_use_bytes_; }

  /// Maximum of in_use_bytes() since construction / the last ResetHighWater.
  size_t high_water_bytes() const { return high_water_bytes_; }

  /// Starts a new high-water measurement region (e.g. one engine query).
  void ResetHighWater() { high_water_bytes_ = in_use_bytes_; }

  /// True when no leases are outstanding — the only state in which the arena
  /// may be handed to a new owner (engine recycling across snapshot swaps).
  bool idle() const { return leases_.empty(); }

  /// Re-arms the budget for a new owning session (MatchEngine::Over's
  /// workspace recycling: a worker rebuilding its engine for snapshot v+1
  /// keeps the warm slabs instead of re-growing a fresh arena). Only legal
  /// while idle(); the high-water region restarts at zero.
  void Rearm(size_t budget_bytes);

  /// Total bytes of backing slabs held (leased or pooled). Stable across
  /// warm queries once the pool has seen the largest request.
  size_t capacity_bytes() const;

  /// Frees all pooled (not currently leased) slabs.
  void Trim();

 private:
  struct Slab {
    std::unique_ptr<std::byte[]> bytes;
    size_t capacity = 0;
    bool leased = false;
  };
  struct Lease {
    const std::byte* ptr = nullptr;
    size_t bytes = 0;  // logical (requested) size, what the budget tracks
    size_t slab = 0;
  };

  Result<std::byte*> AcquireBytes(size_t bytes);
  void ReleaseBytes(const std::byte* ptr);

  size_t budget_bytes_;
  size_t in_use_bytes_ = 0;
  size_t high_water_bytes_ = 0;
  std::vector<Slab> slabs_;
  std::vector<Lease> leases_;
};

/// RAII lease of a workspace matrix. With a null workspace it degrades to a
/// plain owned Matrix, so kernels can offer arena reuse without forking their
/// control flow.
class ScratchMatrix {
 public:
  static Result<ScratchMatrix> Acquire(Workspace* workspace, size_t rows,
                                       size_t cols);

  ScratchMatrix(ScratchMatrix&& other) noexcept
      : workspace_(other.workspace_), matrix_(std::move(other.matrix_)) {
    other.workspace_ = nullptr;
  }
  ScratchMatrix& operator=(ScratchMatrix&& other) noexcept {
    if (this == &other) return *this;
    ReleaseNow();
    workspace_ = other.workspace_;
    matrix_ = std::move(other.matrix_);
    other.workspace_ = nullptr;
    return *this;
  }
  ScratchMatrix(const ScratchMatrix&) = delete;
  ScratchMatrix& operator=(const ScratchMatrix&) = delete;

  ~ScratchMatrix() { ReleaseNow(); }

  Matrix& get() { return matrix_; }
  const Matrix& get() const { return matrix_; }

 private:
  ScratchMatrix(Workspace* workspace, Matrix matrix)
      : workspace_(workspace), matrix_(std::move(matrix)) {}

  void ReleaseNow() {
    if (workspace_ != nullptr) {
      workspace_->Release(matrix_);
      workspace_ = nullptr;
    }
    matrix_ = Matrix();
  }

  Workspace* workspace_ = nullptr;  // null => matrix_ is plain owned memory
  Matrix matrix_;
};

/// RAII lease of a workspace index buffer; owned-vector fallback when the
/// workspace is null.
class ScratchIndices {
 public:
  static Result<ScratchIndices> Acquire(Workspace* workspace, size_t count);

  ScratchIndices(ScratchIndices&& other) noexcept
      : workspace_(other.workspace_), span_(other.span_),
        owned_(std::move(other.owned_)) {
    other.workspace_ = nullptr;
    other.span_ = {};
  }
  ScratchIndices& operator=(ScratchIndices&& other) noexcept {
    if (this == &other) return *this;
    ReleaseNow();
    workspace_ = other.workspace_;
    span_ = other.span_;
    owned_ = std::move(other.owned_);
    other.workspace_ = nullptr;
    other.span_ = {};
    return *this;
  }
  ScratchIndices(const ScratchIndices&) = delete;
  ScratchIndices& operator=(const ScratchIndices&) = delete;

  ~ScratchIndices() { ReleaseNow(); }

  std::span<uint32_t> get() const { return span_; }

 private:
  ScratchIndices(Workspace* workspace, std::span<uint32_t> span,
                 std::vector<uint32_t> owned)
      : workspace_(workspace), span_(span), owned_(std::move(owned)) {}

  void ReleaseNow() {
    if (workspace_ != nullptr) {
      workspace_->Release(span_);
      workspace_ = nullptr;
    }
    span_ = {};
    owned_.clear();
  }

  Workspace* workspace_ = nullptr;
  std::span<uint32_t> span_;
  std::vector<uint32_t> owned_;
};

}  // namespace entmatcher

#endif  // ENTMATCHER_LA_WORKSPACE_H_
