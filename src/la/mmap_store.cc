#include "la/mmap_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <limits>
#include <utility>

#include "common/fault.h"
#include "common/memory_tracker.h"

namespace entmatcher {

namespace {

constexpr char kEmbfMagic[4] = {'E', 'M', 'B', 'F'};

struct EmbfHeader {
  char magic[4];
  uint64_t version;
  uint64_t rows;
  uint64_t cols;
  uint64_t payload_offset;
};

Status WriteHeader(std::FILE* f, size_t rows, size_t cols,
                   const std::string& path) {
  unsigned char header[kEmbfHeaderBytes] = {};
  std::memcpy(header, kEmbfMagic, sizeof(kEmbfMagic));
  const uint64_t fields[4] = {kEmbfFormatVersion, rows, cols,
                              kEmbfHeaderBytes};
  std::memcpy(header + sizeof(kEmbfMagic), fields, sizeof(fields));
  if (std::fwrite(header, 1, sizeof(header), f) != sizeof(header)) {
    return Status::IoError("EMBF write failed: " + path);
  }
  return Status::OK();
}

}  // namespace

Result<MmapStore> MmapStore::Open(const std::string& path,
                                  const MmapStoreOptions& options) {
  // Chaos point: a storage-layer read failure (missing volume, EIO) before
  // any byte of the file is touched — the mmap mirror of "index.load.read".
  EM_INJECT_FAULT("mmap.load.read", StatusCode::kIoError);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open EMBF store: " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("cannot stat EMBF store: " + path);
  }
  const size_t file_bytes = static_cast<size_t>(st.st_size);
  if (file_bytes < kEmbfHeaderBytes) {
    ::close(fd);
    return Status::IoError("EMBF store truncated before header: " + path);
  }

  void* map = ::mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping pins the inode; the descriptor is no longer needed either way.
  ::close(fd);
  if (map == MAP_FAILED) {
    return Status::IoError("mmap failed for EMBF store: " + path);
  }

  EmbfHeader header;
  std::memcpy(header.magic, map, sizeof(header.magic));
  std::memcpy(&header.version, static_cast<const char*>(map) + 4,
              4 * sizeof(uint64_t));
  Status invalid = Status::OK();
  if (std::memcmp(header.magic, kEmbfMagic, sizeof(kEmbfMagic)) != 0) {
    invalid = Status::IoError("not an EMBF store (bad magic): " + path);
  } else if (header.version != kEmbfFormatVersion) {
    invalid = Status::IoError("unsupported EMBF version " +
                               std::to_string(header.version) + ": " + path);
  } else if (header.payload_offset < kEmbfHeaderBytes ||
             header.payload_offset > file_bytes ||
             header.payload_offset % sizeof(float) != 0) {
    invalid = Status::IoError("EMBF payload offset out of range: " + path);
  } else if (header.cols == 0 ||
             header.rows >
                 (std::numeric_limits<size_t>::max() / sizeof(float)) /
                     std::max<uint64_t>(header.cols, 1)) {
    invalid = Status::IoError("EMBF shape overflows: " + path);
  } else if (file_bytes - header.payload_offset <
             header.rows * header.cols * sizeof(float)) {
    invalid = Status::IoError("EMBF store truncated mid-payload: " + path);
  }
  if (!invalid.ok()) {
    ::munmap(map, file_bytes);
    return invalid;
  }

  ::madvise(map, file_bytes,
            options.hint == MmapAccessHint::kSequential ? MADV_SEQUENTIAL
                                                        : MADV_RANDOM);

  MmapStore store;
  store.map_ = map;
  store.map_bytes_ = file_bytes;
  store.data_ = reinterpret_cast<const float*>(
      static_cast<const char*>(map) + header.payload_offset);
  store.rows_ = header.rows;
  store.cols_ = header.cols;
  store.tracked_bytes_ =
      std::min(options.resident_budget_bytes, store.logical_bytes());
  MemoryTracker::Global().Add(store.tracked_bytes_);
  return store;
}

Status MmapStore::Write(const Matrix& matrix, const std::string& path) {
  EM_ASSIGN_OR_RETURN(EmbfWriter writer,
                      EmbfWriter::Create(path, matrix.rows(), matrix.cols()));
  for (size_t r = 0; r < matrix.rows(); ++r) {
    EM_RETURN_NOT_OK(writer.Append(matrix.Row(r)));
  }
  return writer.Finish();
}

MmapStore::MmapStore(MmapStore&& other) noexcept
    : map_(other.map_), map_bytes_(other.map_bytes_), data_(other.data_),
      rows_(other.rows_), cols_(other.cols_),
      tracked_bytes_(other.tracked_bytes_) {
  other.map_ = nullptr;
  other.map_bytes_ = 0;
  other.data_ = nullptr;
  other.rows_ = 0;
  other.cols_ = 0;
  other.tracked_bytes_ = 0;
}

MmapStore& MmapStore::operator=(MmapStore&& other) noexcept {
  if (this == &other) return *this;
  if (map_ != nullptr) {
    ::munmap(map_, map_bytes_);
    MemoryTracker::Global().Sub(tracked_bytes_);
  }
  map_ = other.map_;
  map_bytes_ = other.map_bytes_;
  data_ = other.data_;
  rows_ = other.rows_;
  cols_ = other.cols_;
  tracked_bytes_ = other.tracked_bytes_;
  other.map_ = nullptr;
  other.map_bytes_ = 0;
  other.data_ = nullptr;
  other.rows_ = 0;
  other.cols_ = 0;
  other.tracked_bytes_ = 0;
  return *this;
}

MmapStore::~MmapStore() {
  if (map_ != nullptr) {
    ::munmap(map_, map_bytes_);
    MemoryTracker::Global().Sub(tracked_bytes_);
  }
}

Matrix MmapStore::AsMatrix() const {
  // Borrowed matrices are mutable views by API, but this buffer is mapped
  // PROT_READ: every legitimate consumer (similarity kernels, snapshots)
  // only reads. A write through this view faults instead of silently
  // corrupting the store.
  return Matrix::Borrowed(const_cast<float*>(data_), rows_, cols_);
}

Status MmapStore::DropResident() {
  if (map_ == nullptr || logical_bytes() == 0) return Status::OK();
  // madvise wants a page-aligned address; the payload starts 64 bytes in, so
  // drop the whole mapping (the header re-faults for free).
  if (::madvise(map_, map_bytes_, MADV_DONTNEED) != 0) {
    return Status::Internal("madvise(MADV_DONTNEED) failed: " +
                            std::string(std::strerror(errno)));
  }
  return Status::OK();
}

void EmbfWriter::FileCloser::operator()(void* f) const {
  if (f != nullptr) std::fclose(static_cast<std::FILE*>(f));
}

Result<EmbfWriter> EmbfWriter::Create(const std::string& path, size_t rows,
                                      size_t cols) {
  if (cols == 0) {
    return Status::InvalidArgument("EMBF store needs cols >= 1");
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot create EMBF store: " + path);
  }
  EmbfWriter writer;
  writer.file_.reset(f);
  writer.path_ = path;
  writer.rows_ = rows;
  writer.cols_ = cols;
  EM_RETURN_NOT_OK(WriteHeader(f, rows, cols, path));
  return writer;
}

EmbfWriter::~EmbfWriter() = default;

Status EmbfWriter::Append(std::span<const float> row) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("EmbfWriter already finished");
  }
  if (row.size() != cols_) {
    return Status::InvalidArgument("EMBF row width mismatch: " + path_);
  }
  if (rows_written_ == rows_) {
    return Status::InvalidArgument("EMBF writer over-appended: " + path_);
  }
  std::FILE* f = static_cast<std::FILE*>(file_.get());
  if (std::fwrite(row.data(), sizeof(float), row.size(), f) != row.size()) {
    return Status::IoError("EMBF write failed: " + path_);
  }
  ++rows_written_;
  return Status::OK();
}

Status EmbfWriter::Finish() {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("EmbfWriter already finished");
  }
  std::FILE* f = static_cast<std::FILE*>(file_.get());
  const bool complete = rows_written_ == rows_;
  const bool flushed = std::fflush(f) == 0;
  file_.reset();
  if (!complete) {
    return Status::InvalidArgument(
        "EMBF writer finished after " + std::to_string(rows_written_) +
        " of " + std::to_string(rows_) + " rows: " + path_);
  }
  if (!flushed) {
    return Status::IoError("EMBF flush failed: " + path_);
  }
  return Status::OK();
}

}  // namespace entmatcher
