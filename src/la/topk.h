#ifndef ENTMATCHER_LA_TOPK_H_
#define ENTMATCHER_LA_TOPK_H_

#include <cstdint>
#include <vector>

#include "la/matrix.h"

namespace entmatcher {

/// Index of the maximum element in each row; ties resolved to the lowest
/// index. Rows must be non-empty.
std::vector<uint32_t> RowArgmax(const Matrix& scores);

/// Maximum value in each row.
std::vector<float> RowMax(const Matrix& scores);

/// Maximum value in each column.
std::vector<float> ColMax(const Matrix& scores);

/// Mean of the k largest values of each row (CSLS's phi). k is clamped to the
/// row length; k must be >= 1.
std::vector<float> RowTopKMean(const Matrix& scores, size_t k);

/// Mean of the k largest values of each column, computed by streaming the
/// rows (no transposed copy — keeps CSLS at a single-matrix footprint).
/// k is clamped to the column length; k must be >= 1.
std::vector<float> ColTopKMean(const Matrix& scores, size_t k);

/// Indices of the k largest values of each row, sorted by descending value
/// (ties by ascending index). k is clamped to the row length. Result is a
/// flattened (rows × k') vector where k' = min(k, cols).
std::vector<uint32_t> RowTopKIndices(const Matrix& scores, size_t k);

/// Standard deviation of the k largest values of each row, averaged over all
/// rows. This is the statistic behind the paper's Figure 4 (STD of the top-5
/// pairwise similarity scores of source entities).
double MeanRowTopKStd(const Matrix& scores, size_t k);

}  // namespace entmatcher

#endif  // ENTMATCHER_LA_TOPK_H_
