#include "embedding/name_encoder.h"

#include <cctype>
#include <cmath>
#include <string>

namespace entmatcher {

namespace {

// FNV-1a over the n-gram bytes mixed with the seed.
uint64_t HashNgram(std::string_view ngram, uint64_t seed) {
  uint64_t h = 1469598103934665603ULL ^ seed;
  for (char c : ngram) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  // Final avalanche.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

void AccumulateNgram(std::string_view ngram, const NameEncoderConfig& config,
                     float* out) {
  const uint64_t h = HashNgram(ngram, config.seed);
  const size_t index = static_cast<size_t>(h % config.dim);
  const float sign = (h >> 63) ? 1.0f : -1.0f;
  out[index] += sign;
}

}  // namespace

void EncodeName(std::string_view name, const NameEncoderConfig& config,
                float* out) {
  for (size_t i = 0; i < config.dim; ++i) out[i] = 0.0f;

  // Case-fold and frame the name.
  std::string framed;
  framed.reserve(name.size() + 2);
  framed += '^';
  for (char c : name) {
    framed += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  framed += '$';

  if (config.use_bigrams && framed.size() >= 2) {
    for (size_t i = 0; i + 2 <= framed.size(); ++i) {
      AccumulateNgram(std::string_view(framed).substr(i, 2), config, out);
    }
  }
  if (config.use_trigrams && framed.size() >= 3) {
    for (size_t i = 0; i + 3 <= framed.size(); ++i) {
      AccumulateNgram(std::string_view(framed).substr(i, 3), config, out);
    }
  }

  double sq = 0.0;
  for (size_t i = 0; i < config.dim; ++i) {
    sq += static_cast<double>(out[i]) * out[i];
  }
  if (sq > 0.0) {
    const float inv = static_cast<float>(1.0 / std::sqrt(sq));
    for (size_t i = 0; i < config.dim; ++i) out[i] *= inv;
  }
}

Result<EmbeddingPair> ComputeNameEmbeddings(const KgPairDataset& dataset,
                                            const NameEncoderConfig& config) {
  if (config.dim == 0) {
    return Status::InvalidArgument("name encoder dim must be > 0");
  }
  if (!dataset.source.has_entity_names() || !dataset.target.has_entity_names()) {
    return Status::FailedPrecondition(
        "ComputeNameEmbeddings requires entity names on both KGs");
  }
  EmbeddingPair pair;
  pair.source = Matrix(dataset.source.num_entities(), config.dim);
  pair.target = Matrix(dataset.target.num_entities(), config.dim);
  for (size_t e = 0; e < dataset.source.num_entities(); ++e) {
    EncodeName(dataset.source.EntityName(static_cast<EntityId>(e)), config,
               pair.source.Row(e).data());
  }
  for (size_t e = 0; e < dataset.target.num_entities(); ++e) {
    EncodeName(dataset.target.EntityName(static_cast<EntityId>(e)), config,
               pair.target.Row(e).data());
  }
  return pair;
}

}  // namespace entmatcher
