#ifndef ENTMATCHER_EMBEDDING_FUSION_H_
#define ENTMATCHER_EMBEDDING_FUSION_H_

#include "common/status.h"
#include "embedding/embedding.h"

namespace entmatcher {

/// Fuses two embedding channels by weighted concatenation:
///   out = [ weight_a * normalize(a) ; weight_b * normalize(b) ]
/// followed by row re-normalization, so the cosine similarity of the fusion
/// is the weight-squared convex mix of the channel cosines. This implements
/// the paper's "NR-" setting (name + RREA structural fusion, Table 5).
///
/// Both pairs must describe the same entity sets (equal row counts per
/// side); dimensions may differ.
Result<EmbeddingPair> FuseEmbeddings(const EmbeddingPair& a,
                                     const EmbeddingPair& b, double weight_a,
                                     double weight_b);

}  // namespace entmatcher

#endif  // ENTMATCHER_EMBEDDING_FUSION_H_
