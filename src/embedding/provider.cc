#include "embedding/provider.h"

#include "embedding/fusion.h"
#include "embedding/name_encoder.h"
#include "embedding/propagation.h"
#include "embedding/transe.h"

namespace entmatcher {

const char* EmbeddingSettingPrefix(EmbeddingSetting setting) {
  switch (setting) {
    case EmbeddingSetting::kGcnStruct:
      return "G";
    case EmbeddingSetting::kRreaStruct:
      return "R";
    case EmbeddingSetting::kNameOnly:
      return "N";
    case EmbeddingSetting::kNameRrea:
      return "NR";
    case EmbeddingSetting::kTranseStruct:
      return "T";
  }
  return "?";
}

Result<EmbeddingPair> ComputeEmbeddings(const KgPairDataset& dataset,
                                        EmbeddingSetting setting,
                                        uint64_t seed) {
  switch (setting) {
    case EmbeddingSetting::kGcnStruct:
      return ComputeStructuralEmbeddings(dataset, GcnModelConfig(seed));
    case EmbeddingSetting::kRreaStruct:
      return ComputeStructuralEmbeddings(dataset, RreaModelConfig(seed));
    case EmbeddingSetting::kNameOnly: {
      NameEncoderConfig name_config;
      name_config.seed = seed;
      return ComputeNameEmbeddings(dataset, name_config);
    }
    case EmbeddingSetting::kNameRrea: {
      NameEncoderConfig name_config;
      name_config.seed = seed;
      EM_ASSIGN_OR_RETURN(EmbeddingPair names,
                          ComputeNameEmbeddings(dataset, name_config));
      EM_ASSIGN_OR_RETURN(
          EmbeddingPair structure,
          ComputeStructuralEmbeddings(dataset, RreaModelConfig(seed)));
      // Name information dominates on the paper's benchmarks; structure
      // contributes a corrective signal (Table 5 N- vs NR-).
      return FuseEmbeddings(names, structure, /*weight_a=*/1.0,
                            /*weight_b=*/0.7);
    }
    case EmbeddingSetting::kTranseStruct: {
      TranseConfig transe_config;
      transe_config.seed = seed;
      return ComputeTranseEmbeddings(dataset, transe_config);
    }
  }
  return Status::InvalidArgument("unknown embedding setting");
}

}  // namespace entmatcher
