#include "embedding/transe.h"

#include <cmath>
#include <numeric>
#include <vector>

#include "common/rng.h"

namespace entmatcher {

namespace {

// Union-find over the joint (source + target) entity index space, used to
// collapse seed-linked entities into shared parameters.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

// One training triple in the unified parameter space.
struct UnifiedTriple {
  uint32_t head;      // parameter slot
  uint32_t relation;  // relation slot (source and target vocabularies stacked)
  uint32_t tail;      // parameter slot
};

float L2Sq(const float* a, const float* b, const float* r, size_t dim) {
  float sq = 0.0f;
  for (size_t k = 0; k < dim; ++k) {
    const float d = a[k] + r[k] - b[k];
    sq += d * d;
  }
  return sq;
}

void NormalizeRow(float* v, size_t dim) {
  double sq = 0.0;
  for (size_t k = 0; k < dim; ++k) sq += static_cast<double>(v[k]) * v[k];
  if (sq <= 0.0) return;
  const float inv = static_cast<float>(1.0 / std::sqrt(sq));
  for (size_t k = 0; k < dim; ++k) v[k] *= inv;
}

}  // namespace

Result<EmbeddingPair> ComputeTranseEmbeddings(const KgPairDataset& dataset,
                                              const TranseConfig& config) {
  if (config.dim == 0 || config.epochs == 0) {
    return Status::InvalidArgument("TransE: dim/epochs must be > 0");
  }
  if (config.learning_rate <= 0.0 || config.margin <= 0.0) {
    return Status::InvalidArgument("TransE: learning_rate/margin must be > 0");
  }
  const size_t n_src = dataset.source.num_entities();
  const size_t n_tgt = dataset.target.num_entities();
  const size_t dim = config.dim;

  // Parameter sharing: seed-linked entities collapse to one slot.
  UnionFind uf(n_src + n_tgt);
  for (const EntityPair& pair : dataset.split.train.pairs()) {
    uf.Union(pair.source, n_src + pair.target);
  }
  // Dense slot ids for the union-find roots.
  std::vector<uint32_t> slot_of(n_src + n_tgt);
  size_t num_slots = 0;
  {
    std::vector<int64_t> slot_of_root(n_src + n_tgt, -1);
    for (size_t i = 0; i < n_src + n_tgt; ++i) {
      const size_t root = uf.Find(i);
      if (slot_of_root[root] < 0) {
        slot_of_root[root] = static_cast<int64_t>(num_slots++);
      }
      slot_of[i] = static_cast<uint32_t>(slot_of_root[root]);
    }
  }

  // Relation parameter sharing (the MTransE-flavored coupling): with
  // disjoint relation vocabularies, seed-entity sharing alone cannot align
  // the two KGs' translation geometry — equivalent tails h + r1 vs h + r2
  // drift apart by (r1 - r2). We therefore estimate relation
  // correspondences from directed co-occurrence around the seed pairs and
  // merge the parameter slots of confidently corresponding relations.
  const size_t n_rel_src = dataset.source.num_relations();
  const size_t n_rel_tgt = dataset.target.num_relations();
  UnionFind rel_uf(n_rel_src + n_rel_tgt);
  {
    // counts[r1][r2]: direction-preserving co-occurrence around seed pairs.
    std::vector<double> counts(n_rel_src * n_rel_tgt, 0.0);
    for (const EntityPair& pair : dataset.split.train.pairs()) {
      for (const KnowledgeGraph::Edge& se :
           dataset.source.Neighbors(pair.source)) {
        for (const KnowledgeGraph::Edge& te :
             dataset.target.Neighbors(pair.target)) {
          if (se.inverse != te.inverse) continue;
          counts[static_cast<size_t>(se.relation) * n_rel_tgt + te.relation] +=
              1.0;
        }
      }
    }
    for (size_t r1 = 0; r1 < n_rel_src; ++r1) {
      double row_sum = 0.0;
      size_t best = 0;
      double best_count = 0.0;
      for (size_t r2 = 0; r2 < n_rel_tgt; ++r2) {
        const double c = counts[r1 * n_rel_tgt + r2];
        row_sum += c;
        if (c > best_count) {
          best_count = c;
          best = r2;
        }
      }
      // Merge only confident correspondences: enough evidence and a clear
      // majority of r1's mass on one target relation.
      if (best_count >= 3.0 && best_count >= 0.5 * row_sum) {
        rel_uf.Union(r1, n_rel_src + best);
      }
    }
  }
  std::vector<uint32_t> rel_slot_of(n_rel_src + n_rel_tgt);
  size_t num_relations = 0;
  {
    std::vector<int64_t> slot_of_root(n_rel_src + n_rel_tgt, -1);
    for (size_t r = 0; r < n_rel_src + n_rel_tgt; ++r) {
      const size_t root = rel_uf.Find(r);
      if (slot_of_root[root] < 0) {
        slot_of_root[root] = static_cast<int64_t>(num_relations++);
      }
      rel_slot_of[r] = static_cast<uint32_t>(slot_of_root[root]);
    }
  }

  // Training triples from both KGs in the unified parameter space.
  std::vector<UnifiedTriple> triples;
  triples.reserve(dataset.source.triples().size() +
                  dataset.target.triples().size());
  for (const Triple& t : dataset.source.triples()) {
    triples.push_back(UnifiedTriple{slot_of[t.subject],
                                    rel_slot_of[t.predicate],
                                    slot_of[t.object]});
  }
  for (const Triple& t : dataset.target.triples()) {
    triples.push_back(UnifiedTriple{slot_of[n_src + t.subject],
                                    rel_slot_of[n_rel_src + t.predicate],
                                    slot_of[n_src + t.object]});
  }
  if (triples.empty()) {
    return Status::FailedPrecondition("TransE: no triples to train on");
  }

  // Parameter init (uniform in [-6/sqrt(d), 6/sqrt(d)], as in the paper).
  Rng rng(config.seed);
  const float bound = 6.0f / std::sqrt(static_cast<float>(dim));
  std::vector<float> entities(num_slots * dim);
  std::vector<float> relations(num_relations * dim);
  for (float& v : entities) {
    v = static_cast<float>(rng.NextUniform(-bound, bound));
  }
  for (float& v : relations) {
    v = static_cast<float>(rng.NextUniform(-bound, bound));
  }
  for (size_t e = 0; e < num_slots; ++e) NormalizeRow(&entities[e * dim], dim);

  // SGD over the margin ranking loss with head-or-tail corruption.
  const float lr = static_cast<float>(config.learning_rate);
  const float margin = static_cast<float>(config.margin);
  std::vector<size_t> order(triples.size());
  std::iota(order.begin(), order.end(), size_t{0});
  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t idx : order) {
      const UnifiedTriple& t = triples[idx];
      for (size_t neg = 0; neg < config.negatives; ++neg) {
        UnifiedTriple corrupted = t;
        if (rng.NextBernoulli(0.5)) {
          corrupted.head = static_cast<uint32_t>(rng.NextBounded(num_slots));
        } else {
          corrupted.tail = static_cast<uint32_t>(rng.NextBounded(num_slots));
        }
        float* h = &entities[static_cast<size_t>(t.head) * dim];
        float* r = &relations[static_cast<size_t>(t.relation) * dim];
        float* tl = &entities[static_cast<size_t>(t.tail) * dim];
        float* ch = &entities[static_cast<size_t>(corrupted.head) * dim];
        float* ct = &entities[static_cast<size_t>(corrupted.tail) * dim];

        const float pos = L2Sq(h, tl, r, dim);
        const float negd = L2Sq(ch, ct, r, dim);
        if (pos + margin <= negd) continue;  // no violation

        // d(pos)/dh_k = 2*(h+r-t); gradient step on the hinge.
        for (size_t k = 0; k < dim; ++k) {
          const float gpos = 2.0f * (h[k] + r[k] - tl[k]);
          const float gneg = 2.0f * (ch[k] + r[k] - ct[k]);
          h[k] -= lr * gpos;
          tl[k] += lr * gpos;
          r[k] -= lr * (gpos - gneg);
          ch[k] += lr * gneg;
          ct[k] -= lr * gneg;
        }
      }
    }
    // Project entity vectors back to the unit sphere (TransE's constraint).
    for (size_t e = 0; e < num_slots; ++e) {
      NormalizeRow(&entities[e * dim], dim);
    }
  }

  // Scatter the shared parameters back to per-KG matrices.
  EmbeddingPair out;
  out.source = Matrix(n_src, dim);
  out.target = Matrix(n_tgt, dim);
  for (size_t e = 0; e < n_src; ++e) {
    const float* v = &entities[static_cast<size_t>(slot_of[e]) * dim];
    std::copy(v, v + dim, out.source.Row(e).begin());
  }
  for (size_t e = 0; e < n_tgt; ++e) {
    const float* v = &entities[static_cast<size_t>(slot_of[n_src + e]) * dim];
    std::copy(v, v + dim, out.target.Row(e).begin());
  }
  return out;
}

}  // namespace entmatcher
