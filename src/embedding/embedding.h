#ifndef ENTMATCHER_EMBEDDING_EMBEDDING_H_
#define ENTMATCHER_EMBEDDING_EMBEDDING_H_

#include <vector>

#include "kg/triple.h"
#include "la/matrix.h"

namespace entmatcher {

/// Unified entity embeddings for one KG pair: row e of `source` is the
/// vector of source-KG entity e, likewise for `target`. Both sides always
/// share the same dimensionality (they live in one unified space — paper
/// Sec. 2.1).
struct EmbeddingPair {
  Matrix source;
  Matrix target;

  size_t dim() const { return source.cols(); }
};

/// Gathers the rows listed in `ids` into a dense (ids.size() × dim) matrix.
/// Used to cut the test-candidate submatrices fed into matching.
Matrix ExtractRows(const Matrix& embeddings, const std::vector<EntityId>& ids);

}  // namespace entmatcher

#endif  // ENTMATCHER_EMBEDDING_EMBEDDING_H_
