#include "embedding/fusion.h"

#include <cstring>

namespace entmatcher {

namespace {

Matrix ConcatScaled(const Matrix& a, const Matrix& b, float wa, float wb) {
  Matrix na = a;
  Matrix nb = b;
  L2NormalizeRows(&na);
  L2NormalizeRows(&nb);
  Matrix out(a.rows(), a.cols() + b.cols());
  for (size_t r = 0; r < out.rows(); ++r) {
    float* dst = out.Row(r).data();
    const float* pa = na.Row(r).data();
    for (size_t c = 0; c < na.cols(); ++c) dst[c] = wa * pa[c];
    const float* pb = nb.Row(r).data();
    for (size_t c = 0; c < nb.cols(); ++c) dst[na.cols() + c] = wb * pb[c];
  }
  L2NormalizeRows(&out);
  return out;
}

}  // namespace

Result<EmbeddingPair> FuseEmbeddings(const EmbeddingPair& a,
                                     const EmbeddingPair& b, double weight_a,
                                     double weight_b) {
  if (a.source.rows() != b.source.rows() ||
      a.target.rows() != b.target.rows()) {
    return Status::InvalidArgument(
        "FuseEmbeddings: entity counts differ between channels");
  }
  if (weight_a < 0.0 || weight_b < 0.0 || weight_a + weight_b <= 0.0) {
    return Status::InvalidArgument("FuseEmbeddings: invalid channel weights");
  }
  EmbeddingPair out;
  out.source = ConcatScaled(a.source, b.source, static_cast<float>(weight_a),
                            static_cast<float>(weight_b));
  out.target = ConcatScaled(a.target, b.target, static_cast<float>(weight_a),
                            static_cast<float>(weight_b));
  return out;
}

}  // namespace entmatcher
