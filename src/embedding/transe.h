#ifndef ENTMATCHER_EMBEDDING_TRANSE_H_
#define ENTMATCHER_EMBEDDING_TRANSE_H_

#include <cstdint>

#include "common/status.h"
#include "embedding/embedding.h"
#include "kg/dataset.h"

namespace entmatcher {

/// Configuration of the TransE representation learner.
struct TranseConfig {
  size_t dim = 64;
  /// SGD epochs over the union of both KGs' triples. TransE needs far more
  /// epochs than the propagation models to couple the two KGs through the
  /// shared seed/relation parameters.
  size_t epochs = 300;
  double learning_rate = 0.015;
  /// Margin of the ranking loss.
  double margin = 1.0;
  /// Corrupted samples per triple (head- or tail-corrupted at random).
  size_t negatives = 4;
  uint64_t seed = 7;
};

/// A from-scratch TransE [Bordes et al., NIPS'13] entity-alignment learner —
/// the other classic representation model the paper's background cites next
/// to GCN. Triples are modeled as translations (h + r ≈ t) and trained with
/// a margin-based ranking loss over corrupted triples.
///
/// Cross-KG unification follows the MTransE-style parameter-sharing recipe:
/// entities connected by seed (train) links share one parameter vector, so
/// both KGs are embedded into a single space. (Non-1-to-1 seed clusters
/// collapse into one shared vector via union-find.)
///
/// Included as a third structural model ("T-") to check that the matching
/// algorithms' ranking is stable across representation learners — the
/// premise of the paper's fair-comparison methodology.
Result<EmbeddingPair> ComputeTranseEmbeddings(const KgPairDataset& dataset,
                                              const TranseConfig& config);

}  // namespace entmatcher

#endif  // ENTMATCHER_EMBEDDING_TRANSE_H_
