#include "embedding/propagation.h"

#include <cmath>
#include <cstring>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "la/similarity.h"

namespace entmatcher {

namespace {

// Small-magnitude Gaussian rows. Anchor rows are overwritten with unit
// vectors afterwards, so the anchor signal dominates the propagation while
// non-anchor entities start as low-amplitude noise (label-propagation
// style): the direction of a propagated vector is then mostly determined by
// the mixture of anchors reachable through the KG structure.
Matrix InitFeatures(size_t n, size_t dim, float noise_scale, Rng* rng) {
  Matrix h(n, dim);
  const float scale =
      noise_scale / std::sqrt(static_cast<float>(dim));
  for (size_t i = 0; i < n; ++i) {
    auto row = h.Row(i);
    for (float& v : row) {
      v = scale * static_cast<float>(rng->NextGaussian());
    }
  }
  return h;
}

// Writes one shared random unit vector into both sides of each anchor pair.
// If an entity participates in several anchors the last write wins.
void ApplyAnchors(const std::vector<EntityPair>& anchors, Matrix* h_src,
                  Matrix* h_tgt, Rng* rng) {
  const size_t dim = h_src->cols();
  std::vector<float> shared(dim);
  for (const EntityPair& pair : anchors) {
    double sq = 0.0;
    for (float& v : shared) {
      v = static_cast<float>(rng->NextGaussian());
      sq += static_cast<double>(v) * v;
    }
    const float inv = sq > 0.0 ? static_cast<float>(1.0 / std::sqrt(sq)) : 0.0f;
    for (float& v : shared) v *= inv;
    std::memcpy(h_src->Row(pair.source).data(), shared.data(),
                dim * sizeof(float));
    std::memcpy(h_tgt->Row(pair.target).data(), shared.data(),
                dim * sizeof(float));
  }
}

// Per-relation aggregation weights: rare relations are more discriminative.
std::vector<float> RelationWeights(const KnowledgeGraph& graph, bool enabled) {
  std::vector<float> w(graph.num_relations(), 1.0f);
  if (!enabled) return w;
  const std::vector<size_t> freq = graph.RelationFrequencies();
  for (size_t r = 0; r < w.size(); ++r) {
    w[r] = 1.0f / std::log2(2.0f + static_cast<float>(freq[r]));
  }
  return w;
}

// One KG's propagation. Returns the last layer, or the concatenation of all
// layer outputs when config.concat_layers is set. `anchor_rows` lists
// entities whose vectors are clamped back to their initial (shared anchor)
// value after every layer, so the supervision signal never dilutes.
Matrix Propagate(const KnowledgeGraph& graph, const Matrix& h0,
                 const std::vector<EntityId>& anchor_rows,
                 const PropagationConfig& config) {
  const size_t n = graph.num_entities();
  const size_t dim = config.dim;
  const std::vector<float> rel_w =
      RelationWeights(graph, config.relation_weighting);

  Matrix h = h0;
  Matrix concat;
  if (config.concat_layers) {
    concat = Matrix(n, dim * config.layers);
  }

  Matrix next(n, dim);
  const float alpha = static_cast<float>(config.self_weight);
  for (size_t layer = 0; layer < config.layers; ++layer) {
    for (size_t e = 0; e < n; ++e) {
      auto out = next.Row(e);
      std::fill(out.begin(), out.end(), 0.0f);
      float total_w = 0.0f;
      for (const KnowledgeGraph::Edge& edge :
           graph.Neighbors(static_cast<EntityId>(e))) {
        const float w = rel_w[edge.relation];
        total_w += w;
        const float* nb = h.Row(edge.neighbor).data();
        for (size_t k = 0; k < dim; ++k) out[k] += w * nb[k];
      }
      const float* self = h.Row(e).data();
      if (total_w > 0.0f) {
        const float inv = (1.0f - alpha) / total_w;
        for (size_t k = 0; k < dim; ++k) {
          out[k] = alpha * self[k] + inv * out[k];
        }
      } else {
        std::memcpy(out.data(), self, dim * sizeof(float));
      }
    }
    // No per-layer normalization: renormalizing rows would re-amplify the
    // low-amplitude noise of entities far from any anchor. Cosine matching
    // is scale-invariant, so only the final output is normalized.
    std::swap(h, next);
    // Clamp anchors: seed entities keep their shared unit vectors so deeper
    // layers keep receiving undiluted supervision.
    if (config.clamp_anchors) {
      for (EntityId a : anchor_rows) {
        std::memcpy(h.Row(a).data(), h0.Row(a).data(), dim * sizeof(float));
      }
    }
    if (config.concat_layers) {
      for (size_t e = 0; e < n; ++e) {
        std::memcpy(concat.Row(e).data() + layer * dim, h.Row(e).data(),
                    dim * sizeof(float));
      }
    }
  }
  if (config.concat_layers) {
    L2NormalizeRows(&concat);
    return concat;
  }
  L2NormalizeRows(&h);
  return h;
}

// Mutual-nearest high-margin pairs among the test candidates; these become
// pseudo-anchors for the next bootstrap round.
std::vector<EntityPair> FindPseudoAnchors(const KgPairDataset& dataset,
                                          const EmbeddingPair& embeddings,
                                          double margin) {
  const auto& src_ids = dataset.test_source_entities;
  const auto& tgt_ids = dataset.test_target_entities;
  if (src_ids.empty() || tgt_ids.empty()) return {};
  const Matrix src = ExtractRows(embeddings.source, src_ids);
  const Matrix tgt = ExtractRows(embeddings.target, tgt_ids);
  Result<Matrix> sim = ComputeSimilarity(src, tgt, SimilarityMetric::kCosine);
  if (!sim.ok()) return {};
  const Matrix& s = *sim;
  const size_t n = s.rows();
  const size_t m = s.cols();

  // Row and column best/second-best.
  std::vector<uint32_t> row_best(n);
  std::vector<float> row_margin(n);
  for (size_t i = 0; i < n; ++i) {
    auto row = s.Row(i);
    float best = -2.0f, second = -2.0f;
    uint32_t best_j = 0;
    for (size_t j = 0; j < m; ++j) {
      if (row[j] > best) {
        second = best;
        best = row[j];
        best_j = static_cast<uint32_t>(j);
      } else if (row[j] > second) {
        second = row[j];
      }
    }
    row_best[i] = best_j;
    row_margin[i] = best - second;
  }
  std::vector<uint32_t> col_best(m, 0);
  std::vector<float> col_best_val(m, -2.0f);
  std::vector<float> col_second_val(m, -2.0f);
  for (size_t i = 0; i < n; ++i) {
    auto row = s.Row(i);
    for (size_t j = 0; j < m; ++j) {
      if (row[j] > col_best_val[j]) {
        col_second_val[j] = col_best_val[j];
        col_best_val[j] = row[j];
        col_best[j] = static_cast<uint32_t>(i);
      } else if (row[j] > col_second_val[j]) {
        col_second_val[j] = row[j];
      }
    }
  }

  std::vector<EntityPair> pseudo;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t j = row_best[i];
    if (col_best[j] != i) continue;  // not mutual
    if (row_margin[i] < margin) continue;
    if (col_best_val[j] - col_second_val[j] < margin) continue;
    pseudo.push_back(EntityPair{src_ids[i], tgt_ids[j]});
  }
  return pseudo;
}

}  // namespace

PropagationConfig GcnModelConfig(uint64_t seed) {
  PropagationConfig c;
  c.dim = 64;
  c.layers = 2;
  c.self_weight = 0.4;
  c.relation_weighting = false;
  c.concat_layers = false;
  c.bootstrap_rounds = 0;
  c.seed = seed;
  return c;
}

PropagationConfig RreaModelConfig(uint64_t seed) {
  PropagationConfig c;
  c.dim = 64;
  c.layers = 6;
  c.self_weight = 0.3;
  c.relation_weighting = true;
  c.concat_layers = true;
  c.clamp_anchors = true;
  c.bootstrap_rounds = 2;
  c.bootstrap_margin = 0.05;
  c.init_noise = 0.05;
  c.seed = seed;
  return c;
}

Result<EmbeddingPair> ComputeStructuralEmbeddings(
    const KgPairDataset& dataset, const PropagationConfig& config) {
  if (config.dim == 0 || config.layers == 0) {
    return Status::InvalidArgument("propagation dim/layers must be > 0");
  }
  if (config.self_weight < 0.0 || config.self_weight >= 1.0) {
    return Status::InvalidArgument("self_weight must be in [0, 1)");
  }

  Rng master(config.seed);
  std::vector<EntityPair> anchors = dataset.split.train.pairs();
  // Train anchors are clamped every layer (hard supervision); bootstrap
  // pseudo-anchors only seed the initial features and may drift, so their
  // pair scores do not saturate and distort the score distribution.
  const size_t num_hard_anchors = anchors.size();

  EmbeddingPair result;
  const size_t rounds = 1 + config.bootstrap_rounds;
  for (size_t round = 0; round < rounds; ++round) {
    // Re-derive the same feature streams each round so only the anchor set
    // changes between rounds.
    Rng init_rng = master.Fork(17);
    Rng anchor_rng = master.Fork(23);
    const float noise = static_cast<float>(config.init_noise);
    Matrix h_src = InitFeatures(dataset.source.num_entities(), config.dim,
                                noise, &init_rng);
    Matrix h_tgt = InitFeatures(dataset.target.num_entities(), config.dim,
                                noise, &init_rng);
    ApplyAnchors(anchors, &h_src, &h_tgt, &anchor_rng);

    std::vector<EntityId> src_anchor_rows;
    std::vector<EntityId> tgt_anchor_rows;
    src_anchor_rows.reserve(num_hard_anchors);
    tgt_anchor_rows.reserve(num_hard_anchors);
    for (size_t i = 0; i < num_hard_anchors; ++i) {
      src_anchor_rows.push_back(anchors[i].source);
      tgt_anchor_rows.push_back(anchors[i].target);
    }

    result.source = Propagate(dataset.source, h_src, src_anchor_rows, config);
    result.target = Propagate(dataset.target, h_tgt, tgt_anchor_rows, config);

    if (round + 1 < rounds) {
      std::vector<EntityPair> pseudo =
          FindPseudoAnchors(dataset, result, config.bootstrap_margin);
      EM_LOG(Debug) << "bootstrap round " << round << ": " << pseudo.size()
                    << " pseudo-anchors";
      if (pseudo.empty()) break;
      anchors.insert(anchors.end(), pseudo.begin(), pseudo.end());
    }
  }
  return result;
}

}  // namespace entmatcher
