#ifndef ENTMATCHER_EMBEDDING_NAME_ENCODER_H_
#define ENTMATCHER_EMBEDDING_NAME_ENCODER_H_

#include <cstdint>
#include <string_view>

#include "common/status.h"
#include "embedding/embedding.h"
#include "kg/dataset.h"

namespace entmatcher {

/// Character n-gram feature-hashing name encoder.
///
/// Stands in for the paper's fastText-based name embeddings (the auxiliary
/// information channel of Table 5). Each entity name is decomposed into
/// character bigrams and trigrams of "^name$"; each n-gram is hashed to a
/// signed coordinate. Similar surface forms share most n-grams, so cosine
/// similarity of the encodings tracks string similarity — the property the
/// name channel contributes in the paper.
struct NameEncoderConfig {
  /// Output dimensionality (larger = fewer hash collisions).
  size_t dim = 128;
  /// Hash seed.
  uint64_t seed = 99;
  /// Include bigrams.
  bool use_bigrams = true;
  /// Include trigrams.
  bool use_trigrams = true;
};

/// Encodes a single name into `out[0..dim)`; `out` must hold dim floats.
/// The result is L2-normalized (all-zero only for degenerate empty input).
void EncodeName(std::string_view name, const NameEncoderConfig& config,
                float* out);

/// Encodes every entity name of both KGs. Fails if either KG lacks names.
Result<EmbeddingPair> ComputeNameEmbeddings(const KgPairDataset& dataset,
                                            const NameEncoderConfig& config);

}  // namespace entmatcher

#endif  // ENTMATCHER_EMBEDDING_NAME_ENCODER_H_
