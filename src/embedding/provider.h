#ifndef ENTMATCHER_EMBEDDING_PROVIDER_H_
#define ENTMATCHER_EMBEDDING_PROVIDER_H_

#include "common/status.h"
#include "embedding/embedding.h"
#include "kg/dataset.h"

namespace entmatcher {

/// The embedding inputs evaluated by the paper:
///   kGcnStruct  — "G-": GCN structural embeddings only (Table 4)
///   kRreaStruct — "R-": RREA structural embeddings only (Table 4)
///   kNameOnly   — "N-": name embeddings only (Table 5)
///   kNameRrea   — "NR-": name fused with RREA structure (Table 5)
///   kTranseStruct — "T-": TransE structural embeddings (extension)
enum class EmbeddingSetting {
  kGcnStruct,
  kRreaStruct,
  kNameOnly,
  kNameRrea,
  kTranseStruct,
};

/// Short table prefix ("G", "R", "N", "NR", "T").
const char* EmbeddingSettingPrefix(EmbeddingSetting setting);

/// Produces unified embeddings for `dataset` under `setting`.
Result<EmbeddingPair> ComputeEmbeddings(const KgPairDataset& dataset,
                                        EmbeddingSetting setting,
                                        uint64_t seed = 7);

}  // namespace entmatcher

#endif  // ENTMATCHER_EMBEDDING_PROVIDER_H_
