#ifndef ENTMATCHER_EMBEDDING_PROPAGATION_H_
#define ENTMATCHER_EMBEDDING_PROPAGATION_H_

#include <cstdint>

#include "common/status.h"
#include "embedding/embedding.h"
#include "kg/dataset.h"

namespace entmatcher {

/// Configuration of the seed-anchored propagation representation learner.
///
/// This substrate stands in for the paper's PyTorch GCN / RREA models
/// (DESIGN.md, substitution 2). Seed (train) pairs are initialized with
/// shared random vectors; propagation through each KG's structure then
/// spreads the anchor signal so that equivalent test entities — which have
/// similar neighborhoods by the task's fundamental assumption (paper
/// Sec. 2.3) — end up with similar embeddings. Structural heterogeneity
/// between the KGs is what limits the attainable similarity, exactly as in
/// the paper's Figure 1 discussion.
struct PropagationConfig {
  /// Per-layer embedding width.
  size_t dim = 64;
  /// Number of propagation layers.
  size_t layers = 2;
  /// Weight of an entity's own vector vs its aggregated neighborhood.
  double self_weight = 0.4;
  /// Weight neighbor contributions by inverse log relation frequency
  /// (rare relations are more discriminative) — the "relational" part of
  /// the RREA-like model.
  bool relation_weighting = false;
  /// Output the concatenation of all layer outputs (multi-hop features)
  /// instead of the last layer only.
  bool concat_layers = false;
  /// Rounds of self-training: mutual-nearest high-margin test pairs are
  /// promoted to pseudo-anchors and propagation is re-run.
  size_t bootstrap_rounds = 0;
  /// Required margin (best minus second-best cosine) for pseudo-anchors.
  double bootstrap_margin = 0.05;
  /// Keep seed-anchor vectors clamped to their shared values after every
  /// layer (undiluted supervision). The strong (RREA-like) model uses this;
  /// the weak (GCN-like) model lets the anchor signal wash out, which is
  /// what produces its hub-ridden, ambiguous score landscape.
  bool clamp_anchors = false;
  /// Initial feature magnitude of non-anchor entities relative to the unit
  /// anchor vectors. Smaller = cleaner anchor signal, larger = noisier
  /// embedding space.
  double init_noise = 0.15;
  /// Seed for feature initialization.
  uint64_t seed = 7;
};

/// The weaker representation learner ("GCN" columns of Tables 4/7/8).
PropagationConfig GcnModelConfig(uint64_t seed = 7);

/// The stronger representation learner ("RREA" columns): relation-aware
/// weighting, deeper multi-hop features, one bootstrap round.
PropagationConfig RreaModelConfig(uint64_t seed = 7);

/// Runs anchored propagation over both KGs of `dataset` and returns unified
/// embeddings for every entity. Anchors are the train-split links.
Result<EmbeddingPair> ComputeStructuralEmbeddings(
    const KgPairDataset& dataset, const PropagationConfig& config);

}  // namespace entmatcher

#endif  // ENTMATCHER_EMBEDDING_PROPAGATION_H_
