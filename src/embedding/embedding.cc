#include "embedding/embedding.h"

#include <cassert>
#include <cstring>

namespace entmatcher {

Matrix ExtractRows(const Matrix& embeddings, const std::vector<EntityId>& ids) {
  Matrix out(ids.size(), embeddings.cols());
  for (size_t i = 0; i < ids.size(); ++i) {
    assert(ids[i] < embeddings.rows());
    std::memcpy(out.Row(i).data(), embeddings.Row(ids[i]).data(),
                embeddings.cols() * sizeof(float));
  }
  return out;
}

}  // namespace entmatcher
