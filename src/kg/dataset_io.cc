#include "kg/dataset_io.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <unordered_set>

#include "kg/io.h"

namespace entmatcher {

namespace {

Status WriteEntityIdList(const std::vector<EntityId>& ids,
                         const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  for (EntityId e : ids) out << e << '\n';
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<std::vector<EntityId>> ReadEntityIdList(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::vector<EntityId> ids;
  uint64_t value = 0;
  while (in >> value) ids.push_back(static_cast<EntityId>(value));
  return ids;
}

// Entities in the test candidate set that are not endpoints of test links —
// i.e. the injected unmatchables.
std::vector<EntityId> ExtraCandidates(const std::vector<EntityId>& candidates,
                                      const std::vector<EntityId>& linked) {
  std::unordered_set<EntityId> linked_set(linked.begin(), linked.end());
  std::vector<EntityId> extras;
  for (EntityId e : candidates) {
    if (linked_set.find(e) == linked_set.end()) extras.push_back(e);
  }
  return extras;
}

}  // namespace

Status SaveDatasetDir(const KgPairDataset& dataset, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IoError("cannot create directory: " + dir);

  const std::filesystem::path base(dir);
  EM_RETURN_NOT_OK(
      WriteTriplesTsv(dataset.source, (base / "rel_triples_1").string()));
  EM_RETURN_NOT_OK(
      WriteTriplesTsv(dataset.target, (base / "rel_triples_2").string()));
  EM_RETURN_NOT_OK(WriteLinksTsv(dataset.gold, (base / "ent_links").string()));
  EM_RETURN_NOT_OK(
      WriteLinksTsv(dataset.split.train, (base / "train_links").string()));
  EM_RETURN_NOT_OK(
      WriteLinksTsv(dataset.split.valid, (base / "valid_links").string()));
  EM_RETURN_NOT_OK(
      WriteLinksTsv(dataset.split.test, (base / "test_links").string()));
  if (dataset.source.has_entity_names()) {
    EM_RETURN_NOT_OK(
        WriteEntityNames(dataset.source, (base / "ent_names_1").string()));
  }
  if (dataset.target.has_entity_names()) {
    EM_RETURN_NOT_OK(
        WriteEntityNames(dataset.target, (base / "ent_names_2").string()));
  }
  const std::vector<EntityId> extra_src = ExtraCandidates(
      dataset.test_source_entities, dataset.split.test.SourceEntities());
  const std::vector<EntityId> extra_tgt = ExtraCandidates(
      dataset.test_target_entities, dataset.split.test.TargetEntities());
  if (!extra_src.empty()) {
    EM_RETURN_NOT_OK(
        WriteEntityIdList(extra_src, (base / "unmatchable_src").string()));
  }
  if (!extra_tgt.empty()) {
    EM_RETURN_NOT_OK(
        WriteEntityIdList(extra_tgt, (base / "unmatchable_tgt").string()));
  }
  return Status::OK();
}

Result<KgPairDataset> LoadDatasetDir(const std::string& dir) {
  const std::filesystem::path base(dir);
  if (!std::filesystem::is_directory(base)) {
    return Status::NotFound("dataset directory does not exist: " + dir);
  }

  EM_ASSIGN_OR_RETURN(KnowledgeGraph source,
                      ReadTriplesTsv((base / "rel_triples_1").string()));
  EM_ASSIGN_OR_RETURN(KnowledgeGraph target,
                      ReadTriplesTsv((base / "rel_triples_2").string()));
  EM_ASSIGN_OR_RETURN(AlignmentSet gold,
                      ReadLinksTsv((base / "ent_links").string()));
  AlignmentSplit split;
  EM_ASSIGN_OR_RETURN(split.train,
                      ReadLinksTsv((base / "train_links").string()));
  EM_ASSIGN_OR_RETURN(split.valid,
                      ReadLinksTsv((base / "valid_links").string()));
  EM_ASSIGN_OR_RETURN(split.test, ReadLinksTsv((base / "test_links").string()));

  // The id space may exceed what the triples mention (e.g. isolated link
  // endpoints in hand-assembled datasets): grow the graphs if needed.
  auto max_link_id = [](const AlignmentSet& links, bool source_side) {
    EntityId max_id = 0;
    for (const EntityPair& p : links.pairs()) {
      max_id = std::max(max_id, source_side ? p.source : p.target);
    }
    return max_id;
  };
  const EntityId max_src = max_link_id(gold, true);
  const EntityId max_tgt = max_link_id(gold, false);
  if (max_src >= source.num_entities()) {
    EM_ASSIGN_OR_RETURN(
        source, KnowledgeGraph::Create(max_src + 1, source.num_relations(),
                                       source.triples()));
  }
  if (max_tgt >= target.num_entities()) {
    EM_ASSIGN_OR_RETURN(
        target, KnowledgeGraph::Create(max_tgt + 1, target.num_relations(),
                                       target.triples()));
  }

  // Optional names.
  if (std::filesystem::exists(base / "ent_names_1")) {
    EM_ASSIGN_OR_RETURN(std::vector<std::string> names,
                        ReadEntityNames((base / "ent_names_1").string()));
    EM_RETURN_NOT_OK(source.SetEntityNames(std::move(names)));
  }
  if (std::filesystem::exists(base / "ent_names_2")) {
    EM_ASSIGN_OR_RETURN(std::vector<std::string> names,
                        ReadEntityNames((base / "ent_names_2").string()));
    EM_RETURN_NOT_OK(target.SetEntityNames(std::move(names)));
  }

  KgPairDataset dataset;
  dataset.name = base.filename().string();
  dataset.source = std::move(source);
  dataset.target = std::move(target);
  dataset.gold = std::move(gold);
  dataset.split = std::move(split);

  std::vector<EntityId> extra_src;
  std::vector<EntityId> extra_tgt;
  if (std::filesystem::exists(base / "unmatchable_src")) {
    EM_ASSIGN_OR_RETURN(extra_src,
                        ReadEntityIdList((base / "unmatchable_src").string()));
  }
  if (std::filesystem::exists(base / "unmatchable_tgt")) {
    EM_ASSIGN_OR_RETURN(extra_tgt,
                        ReadEntityIdList((base / "unmatchable_tgt").string()));
  }
  PopulateTestCandidates(&dataset, extra_src, extra_tgt);
  return dataset;
}

}  // namespace entmatcher
