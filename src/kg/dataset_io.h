#ifndef ENTMATCHER_KG_DATASET_IO_H_
#define ENTMATCHER_KG_DATASET_IO_H_

#include <string>

#include "common/status.h"
#include "kg/dataset.h"

namespace entmatcher {

/// Persists a complete EA benchmark instance as a directory in the layout
/// the OpenEA family of toolkits uses, so datasets generated here can be
/// consumed elsewhere (and externally prepared datasets loaded here):
///
///   <dir>/rel_triples_1     source-KG triples (TSV: s \t p \t o)
///   <dir>/rel_triples_2     target-KG triples
///   <dir>/ent_links         all gold links (TSV: source \t target)
///   <dir>/train_links       the 20% training split
///   <dir>/valid_links       the 10% validation split
///   <dir>/test_links        the 70% test split
///   <dir>/ent_names_1       optional: source entity names (one per line)
///   <dir>/ent_names_2       optional: target entity names
///   <dir>/unmatchable_src   optional: extra test source candidates
///   <dir>/unmatchable_tgt   optional: extra test target candidates
///
/// The directory is created if absent.
Status SaveDatasetDir(const KgPairDataset& dataset, const std::string& dir);

/// Loads a dataset saved by SaveDatasetDir (or assembled by hand in that
/// layout). Missing optional files are tolerated; missing required files are
/// an error. Entity counts are inferred from the triples and links.
/// Test candidates are re-derived from test_links plus the unmatchable
/// files.
Result<KgPairDataset> LoadDatasetDir(const std::string& dir);

}  // namespace entmatcher

#endif  // ENTMATCHER_KG_DATASET_IO_H_
