#include "kg/dataset.h"

#include <unordered_set>

namespace entmatcher {

void PopulateTestCandidates(KgPairDataset* dataset,
                            const std::vector<EntityId>& extra_sources,
                            const std::vector<EntityId>& extra_targets) {
  dataset->test_source_entities = dataset->split.test.SourceEntities();
  dataset->test_target_entities = dataset->split.test.TargetEntities();

  std::unordered_set<EntityId> src_seen(dataset->test_source_entities.begin(),
                                        dataset->test_source_entities.end());
  for (EntityId e : extra_sources) {
    if (src_seen.insert(e).second) dataset->test_source_entities.push_back(e);
  }
  std::unordered_set<EntityId> tgt_seen(dataset->test_target_entities.begin(),
                                        dataset->test_target_entities.end());
  for (EntityId e : extra_targets) {
    if (tgt_seen.insert(e).second) dataset->test_target_entities.push_back(e);
  }
}

}  // namespace entmatcher
