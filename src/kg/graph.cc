#include "kg/graph.h"

#include <cassert>

namespace entmatcher {

Result<KnowledgeGraph> KnowledgeGraph::Create(size_t num_entities,
                                              size_t num_relations,
                                              std::vector<Triple> triples) {
  for (const Triple& t : triples) {
    if (t.subject >= num_entities || t.object >= num_entities) {
      return Status::InvalidArgument("KnowledgeGraph: entity id out of range");
    }
    if (t.predicate >= num_relations) {
      return Status::InvalidArgument("KnowledgeGraph: relation id out of range");
    }
  }

  KnowledgeGraph g;
  g.num_entities_ = num_entities;
  g.num_relations_ = num_relations;
  g.triples_ = std::move(triples);

  // Build CSR over both directions.
  std::vector<size_t> counts(num_entities + 1, 0);
  for (const Triple& t : g.triples_) {
    ++counts[t.subject + 1];
    ++counts[t.object + 1];
  }
  for (size_t i = 1; i <= num_entities; ++i) counts[i] += counts[i - 1];
  g.adj_offsets_ = counts;  // copy: counts is reused as a write cursor below
  g.adj_edges_.resize(g.triples_.size() * 2);
  for (const Triple& t : g.triples_) {
    g.adj_edges_[counts[t.subject]++] = Edge{t.object, t.predicate, false};
    g.adj_edges_[counts[t.object]++] = Edge{t.subject, t.predicate, true};
  }
  return g;
}

std::span<const KnowledgeGraph::Edge> KnowledgeGraph::Neighbors(
    EntityId entity) const {
  assert(entity < num_entities_);
  const size_t begin = adj_offsets_[entity];
  const size_t end = adj_offsets_[entity + 1];
  return std::span<const Edge>(adj_edges_.data() + begin, end - begin);
}

size_t KnowledgeGraph::Degree(EntityId entity) const {
  assert(entity < num_entities_);
  return adj_offsets_[entity + 1] - adj_offsets_[entity];
}

double KnowledgeGraph::AverageDegree() const {
  if (num_entities_ == 0) return 0.0;
  return static_cast<double>(triples_.size()) /
         static_cast<double>(num_entities_);
}

std::vector<size_t> KnowledgeGraph::RelationFrequencies() const {
  std::vector<size_t> freq(num_relations_, 0);
  for (const Triple& t : triples_) ++freq[t.predicate];
  return freq;
}

Status KnowledgeGraph::SetEntityNames(std::vector<std::string> names) {
  if (names.size() != num_entities_) {
    return Status::InvalidArgument(
        "SetEntityNames: name count does not match entity count");
  }
  entity_names_ = std::move(names);
  return Status::OK();
}

const std::string& KnowledgeGraph::EntityName(EntityId entity) const {
  assert(has_entity_names() && entity < num_entities_);
  return entity_names_[entity];
}

}  // namespace entmatcher
