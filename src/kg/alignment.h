#ifndef ENTMATCHER_KG_ALIGNMENT_H_
#define ENTMATCHER_KG_ALIGNMENT_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "kg/triple.h"

namespace entmatcher {

/// A gold (or predicted) correspondence between a source-KG entity and a
/// target-KG entity.
struct EntityPair {
  EntityId source;
  EntityId target;

  friend bool operator==(const EntityPair& a, const EntityPair& b) = default;
};

/// A set of alignment links with O(1) membership queries. Supports
/// non-1-to-1 link structures (one entity may participate in several links),
/// which the FB_DBP_MUL setting requires.
class AlignmentSet {
 public:
  AlignmentSet() = default;
  explicit AlignmentSet(std::vector<EntityPair> pairs);

  const std::vector<EntityPair>& pairs() const { return pairs_; }
  size_t size() const { return pairs_.size(); }
  bool empty() const { return pairs_.empty(); }

  /// True iff (source, target) is a link in this set.
  bool Contains(EntityId source, EntityId target) const;

  /// All targets linked to `source` (possibly empty / multiple).
  std::vector<EntityId> TargetsOf(EntityId source) const;

  /// All sources linked to `target` (possibly empty / multiple).
  std::vector<EntityId> SourcesOf(EntityId target) const;

  /// Distinct source entities participating in links, in first-seen order.
  std::vector<EntityId> SourceEntities() const;

  /// Distinct target entities participating in links, in first-seen order.
  std::vector<EntityId> TargetEntities() const;

  /// Number of links whose source and target each participate in exactly one
  /// link (the paper's "1-to-1 links" count for FB_DBP_MUL).
  size_t CountOneToOneLinks() const;

  /// Appends a link.
  void Add(EntityPair pair);

 private:
  std::vector<EntityPair> pairs_;
  std::unordered_multimap<EntityId, EntityId> by_source_;
  std::unordered_multimap<EntityId, EntityId> by_target_;
};

/// Train/validation/test partition of the gold links (paper: 20%/10%/70%).
struct AlignmentSplit {
  AlignmentSet train;
  AlignmentSet valid;
  AlignmentSet test;
};

/// Randomly partitions `gold` into train/valid/test with the given fractions
/// (test gets the remainder). Fails unless 0 <= train_frac + valid_frac <= 1.
Result<AlignmentSplit> SplitAlignment(const AlignmentSet& gold,
                                      double train_frac, double valid_frac,
                                      Rng* rng);

/// Partition that preserves link integrity (paper Sec. 5.2): links sharing an
/// entity on either side are kept in the same split. Operates on connected
/// components of the link bipartite graph. Fractions are met approximately
/// (component granularity).
Result<AlignmentSplit> SplitAlignmentPreservingClusters(
    const AlignmentSet& gold, double train_frac, double valid_frac, Rng* rng);

}  // namespace entmatcher

#endif  // ENTMATCHER_KG_ALIGNMENT_H_
