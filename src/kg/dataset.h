#ifndef ENTMATCHER_KG_DATASET_H_
#define ENTMATCHER_KG_DATASET_H_

#include <string>
#include <vector>

#include "kg/alignment.h"
#include "kg/graph.h"

namespace entmatcher {

/// A complete EA benchmark instance: a KG pair, its gold links, the
/// train/valid/test split, and the candidate entity sets used at matching
/// time.
///
/// Candidate sets: in the standard 1-to-1 setting these are exactly the
/// entities participating in test links. In the unmatchable setting
/// (DBP15K+-style) the source candidate set additionally contains entities
/// with no counterpart.
struct KgPairDataset {
  /// Display name ("D-Z", "S-F", ...).
  std::string name;

  KnowledgeGraph source;
  KnowledgeGraph target;

  /// All gold links.
  AlignmentSet gold;

  /// 20/10/70 partition of `gold` (or cluster-preserving partition for the
  /// non-1-to-1 family).
  AlignmentSplit split;

  /// Source entities to be matched at test time (order defines score-matrix
  /// rows).
  std::vector<EntityId> test_source_entities;

  /// Target candidates at test time (order defines score-matrix columns).
  std::vector<EntityId> test_target_entities;

  /// Entities combined over both KGs (Table 3 row "#Entities").
  size_t TotalEntities() const {
    return source.num_entities() + target.num_entities();
  }
  /// Relations combined over both KGs (Table 3 row "#Relations").
  size_t TotalRelations() const {
    return source.num_relations() + target.num_relations();
  }
  /// Triples combined over both KGs (Table 3 row "#Triples").
  size_t TotalTriples() const {
    return source.triples().size() + target.triples().size();
  }
  /// Average entity degree over both KGs (Table 3 row "Avg. degree").
  double AverageDegree() const {
    const size_t ents = TotalEntities();
    if (ents == 0) return 0.0;
    return static_cast<double>(TotalTriples()) / static_cast<double>(ents);
  }
};

/// Derives the standard test candidate sets from the dataset's test links:
/// distinct link sources and distinct link targets, then appends any entity
/// listed in `extra_sources` / `extra_targets` (used for unmatchables).
void PopulateTestCandidates(KgPairDataset* dataset,
                            const std::vector<EntityId>& extra_sources = {},
                            const std::vector<EntityId>& extra_targets = {});

}  // namespace entmatcher

#endif  // ENTMATCHER_KG_DATASET_H_
