#ifndef ENTMATCHER_KG_TRIPLE_H_
#define ENTMATCHER_KG_TRIPLE_H_

#include <cstdint>

namespace entmatcher {

/// Entity and relation identifiers are dense 32-bit indices local to one KG.
using EntityId = uint32_t;
using RelationId = uint32_t;

/// A (subject, predicate, object) relational triple (paper Sec. 2.1).
struct Triple {
  EntityId subject;
  RelationId predicate;
  EntityId object;

  friend bool operator==(const Triple& a, const Triple& b) = default;
};

}  // namespace entmatcher

#endif  // ENTMATCHER_KG_TRIPLE_H_
