#ifndef ENTMATCHER_KG_GRAPH_H_
#define ENTMATCHER_KG_GRAPH_H_

#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "kg/triple.h"

namespace entmatcher {

/// An immutable knowledge graph: a set of triples over dense entity and
/// relation id spaces, with a CSR adjacency index over both edge directions.
///
/// Construction validates that all ids are in range. Entity surface names are
/// optional (used by the name-embedding channel).
class KnowledgeGraph {
 public:
  /// One adjacency entry: `neighbor` reached via `relation`; `inverse` is
  /// true when this entity is the *object* of the underlying triple.
  struct Edge {
    EntityId neighbor;
    RelationId relation;
    bool inverse;
  };

  /// Builds a graph. Fails if any triple references an out-of-range id.
  static Result<KnowledgeGraph> Create(size_t num_entities,
                                       size_t num_relations,
                                       std::vector<Triple> triples);

  KnowledgeGraph() = default;

  size_t num_entities() const { return num_entities_; }
  size_t num_relations() const { return num_relations_; }
  const std::vector<Triple>& triples() const { return triples_; }

  /// All edges incident to `entity` (both directions).
  std::span<const Edge> Neighbors(EntityId entity) const;

  /// Number of incident edges of `entity`.
  size_t Degree(EntityId entity) const;

  /// Average entity degree following the dataset-table convention of the
  /// paper (Table 3): |triples| / |entities|.
  double AverageDegree() const;

  /// Number of triples each relation participates in.
  std::vector<size_t> RelationFrequencies() const;

  /// Attaches surface names; `names.size()` must equal num_entities().
  Status SetEntityNames(std::vector<std::string> names);

  /// True once SetEntityNames succeeded.
  bool has_entity_names() const { return !entity_names_.empty(); }

  /// Surface name of `entity`; requires has_entity_names().
  const std::string& EntityName(EntityId entity) const;

 private:
  size_t num_entities_ = 0;
  size_t num_relations_ = 0;
  std::vector<Triple> triples_;
  // CSR adjacency.
  std::vector<size_t> adj_offsets_;
  std::vector<Edge> adj_edges_;
  std::vector<std::string> entity_names_;
};

}  // namespace entmatcher

#endif  // ENTMATCHER_KG_GRAPH_H_
