#include "kg/alignment.h"

#include <algorithm>
#include <functional>
#include <numeric>

namespace entmatcher {

AlignmentSet::AlignmentSet(std::vector<EntityPair> pairs)
    : pairs_(std::move(pairs)) {
  by_source_.reserve(pairs_.size());
  by_target_.reserve(pairs_.size());
  for (const EntityPair& p : pairs_) {
    by_source_.emplace(p.source, p.target);
    by_target_.emplace(p.target, p.source);
  }
}

bool AlignmentSet::Contains(EntityId source, EntityId target) const {
  auto [begin, end] = by_source_.equal_range(source);
  for (auto it = begin; it != end; ++it) {
    if (it->second == target) return true;
  }
  return false;
}

std::vector<EntityId> AlignmentSet::TargetsOf(EntityId source) const {
  std::vector<EntityId> out;
  auto [begin, end] = by_source_.equal_range(source);
  for (auto it = begin; it != end; ++it) out.push_back(it->second);
  return out;
}

std::vector<EntityId> AlignmentSet::SourcesOf(EntityId target) const {
  std::vector<EntityId> out;
  auto [begin, end] = by_target_.equal_range(target);
  for (auto it = begin; it != end; ++it) out.push_back(it->second);
  return out;
}

std::vector<EntityId> AlignmentSet::SourceEntities() const {
  std::vector<EntityId> out;
  std::unordered_set<EntityId> seen;
  for (const EntityPair& p : pairs_) {
    if (seen.insert(p.source).second) out.push_back(p.source);
  }
  return out;
}

std::vector<EntityId> AlignmentSet::TargetEntities() const {
  std::vector<EntityId> out;
  std::unordered_set<EntityId> seen;
  for (const EntityPair& p : pairs_) {
    if (seen.insert(p.target).second) out.push_back(p.target);
  }
  return out;
}

size_t AlignmentSet::CountOneToOneLinks() const {
  size_t count = 0;
  for (const EntityPair& p : pairs_) {
    if (by_source_.count(p.source) == 1 && by_target_.count(p.target) == 1) {
      ++count;
    }
  }
  return count;
}

void AlignmentSet::Add(EntityPair pair) {
  pairs_.push_back(pair);
  by_source_.emplace(pair.source, pair.target);
  by_target_.emplace(pair.target, pair.source);
}

namespace {

Status ValidateFractions(double train_frac, double valid_frac) {
  if (train_frac < 0.0 || valid_frac < 0.0 ||
      train_frac + valid_frac > 1.0) {
    return Status::InvalidArgument("split fractions must be in [0,1]");
  }
  return Status::OK();
}

}  // namespace

Result<AlignmentSplit> SplitAlignment(const AlignmentSet& gold,
                                      double train_frac, double valid_frac,
                                      Rng* rng) {
  EM_RETURN_NOT_OK(ValidateFractions(train_frac, valid_frac));
  std::vector<size_t> order(gold.size());
  std::iota(order.begin(), order.end(), size_t{0});
  rng->Shuffle(&order);

  const size_t n = gold.size();
  const size_t n_train = static_cast<size_t>(train_frac * n);
  const size_t n_valid = static_cast<size_t>(valid_frac * n);

  std::vector<EntityPair> train, valid, test;
  for (size_t i = 0; i < n; ++i) {
    const EntityPair& p = gold.pairs()[order[i]];
    if (i < n_train) {
      train.push_back(p);
    } else if (i < n_train + n_valid) {
      valid.push_back(p);
    } else {
      test.push_back(p);
    }
  }
  return AlignmentSplit{AlignmentSet(std::move(train)),
                        AlignmentSet(std::move(valid)),
                        AlignmentSet(std::move(test))};
}

Result<AlignmentSplit> SplitAlignmentPreservingClusters(
    const AlignmentSet& gold, double train_frac, double valid_frac, Rng* rng) {
  EM_RETURN_NOT_OK(ValidateFractions(train_frac, valid_frac));
  const size_t n = gold.size();

  // Union-find over link indices: links sharing a source or a target entity
  // are unioned.
  std::vector<size_t> parent(n);
  std::iota(parent.begin(), parent.end(), size_t{0});
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](size_t a, size_t b) { parent[find(a)] = find(b); };

  std::unordered_map<EntityId, size_t> first_by_source;
  std::unordered_map<EntityId, size_t> first_by_target;
  for (size_t i = 0; i < n; ++i) {
    const EntityPair& p = gold.pairs()[i];
    auto [sit, s_new] = first_by_source.emplace(p.source, i);
    if (!s_new) unite(i, sit->second);
    auto [tit, t_new] = first_by_target.emplace(p.target, i);
    if (!t_new) unite(i, tit->second);
  }

  // Group links by component.
  std::unordered_map<size_t, std::vector<size_t>> components;
  for (size_t i = 0; i < n; ++i) components[find(i)].push_back(i);

  std::vector<std::vector<size_t>> clusters;
  clusters.reserve(components.size());
  for (auto& [root, members] : components) clusters.push_back(std::move(members));
  // Deterministic order before shuffling (unordered_map order is unspecified).
  std::sort(clusters.begin(), clusters.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  rng->Shuffle(&clusters);

  const size_t target_train = static_cast<size_t>(train_frac * n);
  const size_t target_valid = static_cast<size_t>(valid_frac * n);

  std::vector<EntityPair> train, valid, test;
  size_t assigned_train = 0;
  size_t assigned_valid = 0;
  for (const auto& cluster : clusters) {
    std::vector<EntityPair>* sink = &test;
    if (assigned_train + cluster.size() <= target_train + cluster.size() / 2 &&
        assigned_train < target_train) {
      sink = &train;
      assigned_train += cluster.size();
    } else if (assigned_valid < target_valid) {
      sink = &valid;
      assigned_valid += cluster.size();
    }
    for (size_t idx : cluster) sink->push_back(gold.pairs()[idx]);
  }
  return AlignmentSplit{AlignmentSet(std::move(train)),
                        AlignmentSet(std::move(valid)),
                        AlignmentSet(std::move(test))};
}

}  // namespace entmatcher
