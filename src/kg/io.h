#ifndef ENTMATCHER_KG_IO_H_
#define ENTMATCHER_KG_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "kg/alignment.h"
#include "kg/graph.h"

namespace entmatcher {

/// Writes triples as TSV lines "subject\tpredicate\tobject" (numeric ids),
/// the interchange format of OpenEA-style toolkits.
Status WriteTriplesTsv(const KnowledgeGraph& graph, const std::string& path);

/// Reads TSV triples; entity/relation counts are inferred as max id + 1.
Result<KnowledgeGraph> ReadTriplesTsv(const std::string& path);

/// Writes alignment links as TSV lines "source\ttarget".
Status WriteLinksTsv(const AlignmentSet& links, const std::string& path);

/// Reads TSV alignment links.
Result<AlignmentSet> ReadLinksTsv(const std::string& path);

/// Writes entity surface names, one per line, indexed by entity id.
Status WriteEntityNames(const KnowledgeGraph& graph, const std::string& path);

/// Reads entity surface names (one per line).
Result<std::vector<std::string>> ReadEntityNames(const std::string& path);

}  // namespace entmatcher

#endif  // ENTMATCHER_KG_IO_H_
