#include "kg/io.h"

#include <algorithm>
#include <charconv>
#include <fstream>

#include "common/string_util.h"

namespace entmatcher {

namespace {

Result<uint32_t> ParseU32(std::string_view text) {
  uint32_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::IoError("failed to parse integer field: '" +
                           std::string(text) + "'");
  }
  return value;
}

}  // namespace

Status WriteTriplesTsv(const KnowledgeGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  for (const Triple& t : graph.triples()) {
    out << t.subject << '\t' << t.predicate << '\t' << t.object << '\n';
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<KnowledgeGraph> ReadTriplesTsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::vector<Triple> triples;
  uint32_t max_entity = 0;
  uint32_t max_relation = 0;
  std::string line;
  while (std::getline(in, line)) {
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;
    auto fields = SplitString(stripped, '\t');
    if (fields.size() != 3) {
      return Status::IoError("expected 3 tab-separated fields in: " + line);
    }
    EM_ASSIGN_OR_RETURN(uint32_t s, ParseU32(fields[0]));
    EM_ASSIGN_OR_RETURN(uint32_t p, ParseU32(fields[1]));
    EM_ASSIGN_OR_RETURN(uint32_t o, ParseU32(fields[2]));
    triples.push_back(Triple{s, p, o});
    max_entity = std::max({max_entity, s, o});
    max_relation = std::max(max_relation, p);
  }
  const size_t num_entities = triples.empty() ? 0 : max_entity + 1;
  const size_t num_relations = triples.empty() ? 0 : max_relation + 1;
  return KnowledgeGraph::Create(num_entities, num_relations, std::move(triples));
}

Status WriteLinksTsv(const AlignmentSet& links, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  for (const EntityPair& p : links.pairs()) {
    out << p.source << '\t' << p.target << '\n';
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<AlignmentSet> ReadLinksTsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::vector<EntityPair> pairs;
  std::string line;
  while (std::getline(in, line)) {
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;
    auto fields = SplitString(stripped, '\t');
    if (fields.size() != 2) {
      return Status::IoError("expected 2 tab-separated fields in: " + line);
    }
    EM_ASSIGN_OR_RETURN(uint32_t s, ParseU32(fields[0]));
    EM_ASSIGN_OR_RETURN(uint32_t t, ParseU32(fields[1]));
    pairs.push_back(EntityPair{s, t});
  }
  return AlignmentSet(std::move(pairs));
}

Status WriteEntityNames(const KnowledgeGraph& graph, const std::string& path) {
  if (!graph.has_entity_names()) {
    return Status::FailedPrecondition("graph has no entity names");
  }
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  for (size_t e = 0; e < graph.num_entities(); ++e) {
    out << graph.EntityName(static_cast<EntityId>(e)) << '\n';
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<std::vector<std::string>> ReadEntityNames(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::vector<std::string> names;
  std::string line;
  while (std::getline(in, line)) names.push_back(line);
  return names;
}

}  // namespace entmatcher
