#ifndef ENTMATCHER_FLEET_SHARD_MANAGER_H_
#define ENTMATCHER_FLEET_SHARD_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "fleet/plan.h"

namespace entmatcher {

/// How the manager launches one shard process. The argv template is a list
/// of tokens; each token has `{plan}`, `{shard}`, and `{socket}` substituted
/// before exec. The default template self-execs the current binary
/// (/proc/self/exe) as `fleet serve --plan={plan} --shard={shard}`, which is
/// how the CLI's router mode spawns its own shards.
struct ShardCommand {
  std::vector<std::string> argv;
  /// What `{plan}` expands to (SelfServe sets it; custom templates may too).
  std::string plan_path;

  /// The self-exec default described above. `self_exe` defaults to
  /// /proc/self/exe resolved at call time.
  static ShardCommand SelfServe(const std::string& plan_path,
                                const std::string& self_exe = "");
};

/// One managed shard's view: last known pid, liveness, exit accounting.
struct ShardProcessStatus {
  int shard_id = 0;
  pid_t pid = -1;
  bool running = false;
  /// Times this shard exited (crash or kill) since Start.
  uint64_t exits = 0;
  /// Times this shard was spawned (1 after Start; +1 per Respawn).
  uint64_t spawns = 0;
  int last_exit_code = 0;     ///< valid when exited normally
  int last_term_signal = 0;   ///< valid when killed by a signal
};

/// Spawns and supervises the shard processes of a plan. Each shard is a
/// child process running a MatchServer behind the plan's unix socket; the
/// manager forks/execs them, reaps exits on a monitor thread (waitpid
/// WNOHANG), and exposes liveness both at the process level (running?) and
/// the protocol level (does `health` answer?).
///
/// The manager itself still does NOT decide to restart crashed shards:
/// restart *policy* (backoff, strike budget, permanent failure) lives in
/// FleetSupervisor. The manager provides the mechanism — Respawn re-forks
/// one dead shard with its original argv, Kill injects faults, StatusJson
/// observes, StopAll tears down (shutdown verb, then SIGTERM, then
/// SIGKILL). Once StopAll begins, Respawn is refused for good: teardown
/// must never race a restart into signaling a recycled PID.
class ShardManager {
 public:
  ShardManager() = default;
  ~ShardManager();

  ShardManager(const ShardManager&) = delete;
  ShardManager& operator=(const ShardManager&) = delete;

  /// Forks one child per plan shard using `command` (tokens expanded per
  /// shard) and starts the reaper thread. Pre-existing socket files are
  /// unlinked first so a stale socket never shadows a fresh shard.
  Status Start(const ShardPlan& plan, const ShardCommand& command);

  /// Blocks until every shard's socket answers `health`, or the budget runs
  /// out (kDeadlineExceeded listing the shards still unhealthy). A shard
  /// that already exited fails fast (kInternal) — it will never get healthy.
  Status WaitHealthy(uint64_t budget_micros);

  /// Sends `sig` to one shard's process — the chaos tests' fault injector
  /// (SIGKILL mid-storm). kNotFound if the shard is not running.
  Status Kill(int shard_id, int sig);

  /// Re-forks one shard that the reaper has already reaped, with the argv
  /// it was originally started with (stale socket unlinked first). The
  /// restart *mechanism* behind FleetSupervisor. kFailedPrecondition while
  /// the shard still runs (kill it first), or once StopAll has begun —
  /// teardown and restart must never interleave. Carries the `fleet.spawn`
  /// fault point, so chaos plans can make the exec fail deterministically.
  Status Respawn(int shard_id);

  /// Orderly teardown: `shutdown` over the socket where it still answers,
  /// SIGTERM for the rest, SIGKILL after a grace period, then reap
  /// everything. Idempotent.
  void StopAll();

  /// Process-level status for every managed shard.
  std::vector<ShardProcessStatus> Status_() const;

  /// `{"shards": [{id, pid, running, exits, ...}, ...]}`.
  std::string StatusJson() const;

 private:
  struct Child {
    int shard_id = 0;
    std::string socket_path;
    /// Fully substituted argv, retained so Respawn re-execs exactly what
    /// Start launched.
    std::vector<std::string> argv;
    pid_t pid = -1;
    bool running = false;
    uint64_t exits = 0;
    uint64_t spawns = 0;
    int last_exit_code = 0;
    int last_term_signal = 0;
  };

  /// fork + exec one shard. Only async-signal-safe calls between fork and
  /// exec (no allocation — argv is prepared before the fork).
  Status Spawn(Child& child, const std::vector<std::string>& argv);

  void ReapLoop();

  mutable std::mutex mu_;
  std::vector<Child> children_;
  std::thread reaper_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  /// Set (under mu_) the moment StopAll begins and never cleared until the
  /// next Start: the gate that refuses Respawn during/after teardown.
  bool stopping_ = false;
  /// Serializes whole StopAll invocations — two concurrent teardowns
  /// (destructor + explicit call) must not both join the reaper or both
  /// run the final blocking reap.
  std::mutex stop_mu_;
};

}  // namespace entmatcher

#endif  // ENTMATCHER_FLEET_SHARD_MANAGER_H_
