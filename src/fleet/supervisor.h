#ifndef ENTMATCHER_FLEET_SUPERVISOR_H_
#define ENTMATCHER_FLEET_SUPERVISOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "fleet/plan.h"
#include "fleet/router.h"
#include "fleet/shard_manager.h"

namespace entmatcher {

/// Restart discipline for one shard: capped exponential backoff with seeded
/// jitter (the RetryPolicy shape applied to process restarts), a strike
/// budget over a sliding window, and a permanent-failure state once the
/// budget is spent. Every failed recovery step — a refused spawn, a boot
/// that never answers health, a re-join swap that fails — is one strike;
/// max_strikes strikes inside strike_window_micros retire the shard for
/// good (it stays quarantined; the rest of the fleet keeps serving).
///
/// Determinism: the jitter stream is forked per shard from jitter_seed
/// (0 = EM_FAULT_SEED when set, else 17), so a chaos run under a fixed seed
/// produces the same restart schedule and an exactly assertable ledger.
struct RestartPolicy {
  /// Master switch: false = never restart (the pre-supervisor behavior).
  bool enabled = true;
  uint32_t max_strikes = 5;
  uint64_t initial_backoff_micros = 50000;
  uint64_t max_backoff_micros = 2000000;
  double multiplier = 2.0;
  /// Strikes older than this no longer count against the budget.
  uint64_t strike_window_micros = 60000000;
  /// How long a respawned process gets to answer health before the
  /// supervisor gives up on the boot (SIGKILL + strike).
  uint64_t boot_budget_micros = 15000000;
  /// 0 = derive from EM_FAULT_SEED (or 17 when unset).
  uint64_t jitter_seed = 0;

  /// Parses the `--restart-policy=` spec: "off", "on", or a comma list of
  ///   max_strikes=N backoff_us=N max_backoff_us=N multiplier=F
  ///   window_us=N boot_budget_us=N seed=N
  /// e.g. "max_strikes=3,backoff_us=20000". Unknown keys are refused.
  static Result<RestartPolicy> Parse(std::string_view spec);

  /// Round-trips through Parse.
  std::string ToString() const;
};

/// One shard's recovery ledger, exact under a fixed seed.
struct ShardRecoveryStatus {
  int shard_id = 0;
  /// Completed recovery cycles: the shard was respawned, converged to the
  /// fleet's snapshot version, and re-admitted to the router.
  uint64_t restarts = 0;
  uint64_t spawn_failures = 0;
  /// Re-join convergence failures (the fleet.rejoin.swap path): the shard
  /// process is up but was left quarantined, to be retried under backoff.
  uint64_t rejoin_failures = 0;
  /// Boot failures: the process came up but never answered health.
  uint64_t boot_failures = 0;
  /// Strikes currently inside the window.
  uint64_t strikes = 0;
  bool permanently_failed = false;
  bool recovering = false;
  /// Reap→re-admission latency of the last completed cycle.
  uint64_t last_restart_micros = 0;
};

/// The self-healing layer over ShardManager + Router: watches the manager's
/// reaper for dead shards and drives each one through the recovery state
/// machine —
///
///   dead → quarantined → [backoff] → respawned → healthy → converged
///        → re-admitted
///
/// with every step under the RestartPolicy. The step that makes crash
/// cycles safe is *version-converged re-join*: a restarted shard boots cold
/// from the plan's files at snapshot version 1, so before re-admission the
/// supervisor probes the surviving owners' versions and, when the fleet has
/// moved on (a swap happened), drives the shard-side `swap version=` floor
/// to bring the newcomer to the fleet's converged version — using the paths
/// of the last fleet-wide swap (RecordSwap / the router's
/// on_swap_converged hook), not the stale plan. Until that succeeds the
/// router never dials the channel, so a mixed-version merge is structurally
/// impossible across crash/restart cycles, not just unlikely.
///
/// Fault points: `fleet.spawn` fires inside ShardManager::Respawn;
/// `fleet.rejoin.swap` fires before the convergence swap — an injected
/// failure leaves the shard un-admitted and retries under the policy.
class FleetSupervisor {
 public:
  /// `manager` and `router` must outlive the supervisor. Call Stop() (or
  /// destroy the supervisor) BEFORE ShardManager::StopAll so teardown kills
  /// stay final — the manager refuses respawns once stopping anyway.
  FleetSupervisor(ShardManager* manager, Router* router, ShardPlan plan,
                  RestartPolicy policy);
  ~FleetSupervisor();

  FleetSupervisor(const FleetSupervisor&) = delete;
  FleetSupervisor& operator=(const FleetSupervisor&) = delete;

  /// Starts the watch thread. kFailedPrecondition if already running.
  Status Start();

  /// Stops and joins the watch thread. Idempotent.
  void Stop();

  /// Updates the re-join source registry after a fleet-wide swap: shards
  /// restarted from now on converge onto these files. Wired to
  /// RouterConfig::on_swap_converged by the CLI.
  void RecordSwap(const std::string& pair, const std::string& source_path,
                  const std::string& target_path,
                  const std::string& index_path);

  /// Per-shard recovery ledger snapshot.
  std::vector<ShardRecoveryStatus> Ledger() const;

  /// {"policy": "...", "restarts": N, "shards": [...]} — the `supervisor`
  /// section of the fleet health JSON and `fleet status`.
  std::string StatusJson() const;

  /// Reap→re-admission latencies of every completed recovery cycle, in
  /// completion order (bench_fleet's restart-latency percentiles).
  std::vector<uint64_t> RestartLatencies() const;

  /// Blocks until `shard_id`'s completed-restart count reaches
  /// `restarts_at_least` (an absolute target — callers track how many kills
  /// they issued, so the wait is race-free against fast recoveries).
  /// kInternal once the shard permanently fails, kDeadlineExceeded on
  /// budget, kNotFound for an unknown shard.
  Status WaitRestarts(int shard_id, uint64_t restarts_at_least,
                      uint64_t budget_micros);

  const RestartPolicy& policy() const { return policy_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct RejoinSource {
    std::string source_path;
    std::string target_path;
    std::string index_path;
  };

  /// Recovery state machine instance for one shard (guarded by mu_).
  struct Tracked {
    int shard_id = 0;
    std::string socket_path;
    Rng rng{0};

    bool recovering = false;
    /// The process was relaunched and is now being waited on for health +
    /// convergence (a rejoin failure retries from here, not from respawn).
    bool respawned = false;
    bool permanently_failed = false;
    Clock::time_point death_observed;
    Clock::time_point spawned_at;
    Clock::time_point next_attempt;
    uint64_t backoff_micros = 0;
    std::vector<Clock::time_point> strike_times;

    uint64_t restarts = 0;
    uint64_t spawn_failures = 0;
    uint64_t rejoin_failures = 0;
    uint64_t boot_failures = 0;
    uint64_t last_restart_micros = 0;
  };

  void WatchLoop();
  /// One recovery step for a shard whose next_attempt has arrived. mu_ is
  /// held on entry and exit but released around socket I/O.
  void StepRecovery(std::unique_lock<std::mutex>& lock, Tracked& tracked);
  /// Drives the newcomer to the surviving owners' max snapshot version via
  /// the shard-side swap version= floor. Carries `fleet.rejoin.swap`.
  Status Converge(const Tracked& tracked);
  /// Records one strike; flips permanently_failed when the window budget is
  /// spent. mu_ held.
  void Strike(Tracked& tracked);
  /// Full-jitter draw over [base/2, base] from the shard's stream. mu_ held.
  uint64_t Jittered(Tracked& tracked, uint64_t base_micros);

  ShardManager* manager_;
  Router* router_;
  ShardPlan plan_;
  RestartPolicy policy_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Tracked> tracked_;
  std::map<std::string, RejoinSource> rejoin_sources_;
  std::vector<uint64_t> restart_latencies_;

  std::thread watcher_;
  std::atomic<bool> stop_{false};
  bool running_ = false;
};

}  // namespace entmatcher

#endif  // ENTMATCHER_FLEET_SUPERVISOR_H_
