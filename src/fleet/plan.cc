#include "fleet/plan.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

#include "common/json.h"

namespace entmatcher {

namespace {

Result<RangeSpec> RangeFromJson(const JsonValue& value) {
  RangeSpec range;
  EM_ASSIGN_OR_RETURN(const int64_t begin, value.GetInt("begin"));
  EM_ASSIGN_OR_RETURN(const int64_t end, value.GetInt("end"));
  if (begin < 0 || end < 0) {
    return Status::InvalidArgument("plan: negative range bound");
  }
  range.begin = static_cast<size_t>(begin);
  range.end = static_cast<size_t>(end);
  EM_ASSIGN_OR_RETURN(const JsonValue::Array* shards,
                      value.GetArray("shards"));
  for (const JsonValue& shard : *shards) {
    if (!shard.is_number()) {
      return Status::InvalidArgument("plan: range shard ids must be numbers");
    }
    range.shards.push_back(static_cast<int>(shard.AsInt()));
  }
  return range;
}

JsonValue RangeToJson(const RangeSpec& range) {
  JsonValue::Object out;
  out["begin"] = JsonValue(static_cast<int64_t>(range.begin));
  out["end"] = JsonValue(static_cast<int64_t>(range.end));
  JsonValue::Array shards;
  for (int id : range.shards) shards.push_back(JsonValue(id));
  out["shards"] = JsonValue(std::move(shards));
  return JsonValue(std::move(out));
}

}  // namespace

Result<ShardPlan> ShardPlan::FromJson(const std::string& json) {
  EM_ASSIGN_OR_RETURN(const JsonValue doc, JsonValue::Parse(json));
  if (!doc.is_object()) {
    return Status::InvalidArgument("plan: document is not a JSON object");
  }
  EM_ASSIGN_OR_RETURN(const int64_t plan_version, doc.GetInt("plan_version"));
  if (plan_version != kPlanVersion) {
    return Status::FailedPrecondition(
        "plan: plan_version " + std::to_string(plan_version) +
        " is not the supported v" + std::to_string(kPlanVersion));
  }
  ShardPlan plan;
  EM_ASSIGN_OR_RETURN(const JsonValue::Array* shards, doc.GetArray("shards"));
  for (const JsonValue& entry : *shards) {
    ShardSpec shard;
    EM_ASSIGN_OR_RETURN(const int64_t id, entry.GetInt("id"));
    shard.id = static_cast<int>(id);
    EM_ASSIGN_OR_RETURN(shard.socket_path, entry.GetString("socket"));
    plan.shards.push_back(std::move(shard));
  }
  EM_ASSIGN_OR_RETURN(const JsonValue::Array* pairs, doc.GetArray("pairs"));
  for (const JsonValue& entry : *pairs) {
    PairSpec pair;
    EM_ASSIGN_OR_RETURN(pair.name, entry.GetString("name"));
    EM_ASSIGN_OR_RETURN(pair.source_path, entry.GetString("source"));
    EM_ASSIGN_OR_RETURN(pair.target_path, entry.GetString("target"));
    EM_ASSIGN_OR_RETURN(pair.index_path, entry.GetStringOr("index", ""));
    EM_ASSIGN_OR_RETURN(const int64_t rows, entry.GetInt("rows"));
    if (rows <= 0) {
      return Status::InvalidArgument("plan: pair '" + pair.name +
                                     "' needs rows >= 1");
    }
    pair.rows = static_cast<size_t>(rows);
    EM_ASSIGN_OR_RETURN(const JsonValue::Array* ranges,
                        entry.GetArray("ranges"));
    for (const JsonValue& range : *ranges) {
      EM_ASSIGN_OR_RETURN(RangeSpec parsed, RangeFromJson(range));
      pair.ranges.push_back(std::move(parsed));
    }
    plan.pairs.push_back(std::move(pair));
  }
  EM_RETURN_NOT_OK(plan.Validate());
  return plan;
}

Result<ShardPlan> ShardPlan::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("plan: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<ShardPlan> plan = FromJson(buffer.str());
  if (!plan.ok()) {
    return Status(plan.status().code(),
                  path + ": " + plan.status().message());
  }
  return plan;
}

Status ShardPlan::Validate() const {
  if (shards.empty()) return Status::InvalidArgument("plan: no shards");
  std::set<int> shard_ids;
  std::set<std::string> sockets;
  for (const ShardSpec& shard : shards) {
    if (shard.id < 0) {
      return Status::InvalidArgument("plan: negative shard id " +
                                     std::to_string(shard.id));
    }
    if (!shard_ids.insert(shard.id).second) {
      return Status::InvalidArgument("plan: duplicate shard id " +
                                     std::to_string(shard.id));
    }
    if (shard.socket_path.empty() ||
        !sockets.insert(shard.socket_path).second) {
      return Status::InvalidArgument("plan: shard " +
                                     std::to_string(shard.id) +
                                     " has an empty or duplicate socket path");
    }
  }
  if (pairs.empty()) return Status::InvalidArgument("plan: no pairs");
  std::set<std::string> pair_names;
  for (const PairSpec& pair : pairs) {
    if (pair.name.empty() ||
        pair.name.find_first_of(" \n") != std::string::npos) {
      return Status::InvalidArgument(
          "plan: pair names must be non-empty and free of spaces/newlines");
    }
    if (!pair_names.insert(pair.name).second) {
      return Status::InvalidArgument("plan: duplicate pair name '" +
                                     pair.name + "'");
    }
    if (pair.source_path.empty() || pair.target_path.empty()) {
      return Status::InvalidArgument("plan: pair '" + pair.name +
                                     "' needs source and target paths");
    }
    if (pair.rows == 0) {
      return Status::InvalidArgument("plan: pair '" + pair.name +
                                     "' needs rows >= 1");
    }
    if (pair.ranges.empty()) {
      return Status::InvalidArgument("plan: pair '" + pair.name +
                                     "' has no ranges");
    }
    size_t expected_begin = 0;
    for (const RangeSpec& range : pair.ranges) {
      if (range.begin != expected_begin) {
        return Status::InvalidArgument(
            "plan: pair '" + pair.name + "' ranges must be sorted and tile [0, " +
            std::to_string(pair.rows) + ") without gaps or overlaps; range " +
            std::to_string(range.begin) + ":" + std::to_string(range.end) +
            " does not start at " + std::to_string(expected_begin));
      }
      if (range.end <= range.begin || range.end > pair.rows) {
        return Status::InvalidArgument(
            "plan: pair '" + pair.name + "' range " +
            std::to_string(range.begin) + ":" + std::to_string(range.end) +
            " is empty or exceeds rows=" + std::to_string(pair.rows));
      }
      if (range.shards.empty()) {
        return Status::InvalidArgument("plan: pair '" + pair.name +
                                       "' has an unowned range");
      }
      std::set<int> owners;
      for (int id : range.shards) {
        if (shard_ids.count(id) == 0) {
          return Status::InvalidArgument(
              "plan: pair '" + pair.name + "' references undefined shard " +
              std::to_string(id));
        }
        if (!owners.insert(id).second) {
          return Status::InvalidArgument(
              "plan: pair '" + pair.name + "' lists shard " +
              std::to_string(id) + " twice for one range");
        }
      }
      expected_begin = range.end;
    }
    if (expected_begin != pair.rows) {
      return Status::InvalidArgument(
          "plan: pair '" + pair.name + "' ranges cover [0, " +
          std::to_string(expected_begin) + ") but rows=" +
          std::to_string(pair.rows));
    }
  }
  return Status::OK();
}

std::string ShardPlan::ToJson() const {
  JsonValue::Object doc;
  doc["plan_version"] = JsonValue(kPlanVersion);
  JsonValue::Array shard_entries;
  for (const ShardSpec& shard : shards) {
    JsonValue::Object entry;
    entry["id"] = JsonValue(shard.id);
    entry["socket"] = JsonValue(shard.socket_path);
    shard_entries.push_back(JsonValue(std::move(entry)));
  }
  doc["shards"] = JsonValue(std::move(shard_entries));
  JsonValue::Array pair_entries;
  for (const PairSpec& pair : pairs) {
    JsonValue::Object entry;
    entry["name"] = JsonValue(pair.name);
    entry["source"] = JsonValue(pair.source_path);
    entry["target"] = JsonValue(pair.target_path);
    if (!pair.index_path.empty()) entry["index"] = JsonValue(pair.index_path);
    entry["rows"] = JsonValue(static_cast<int64_t>(pair.rows));
    JsonValue::Array ranges;
    for (const RangeSpec& range : pair.ranges) {
      ranges.push_back(RangeToJson(range));
    }
    entry["ranges"] = JsonValue(std::move(ranges));
    pair_entries.push_back(JsonValue(std::move(entry)));
  }
  doc["pairs"] = JsonValue(std::move(pair_entries));
  return JsonValue(std::move(doc)).Dump();
}

Status ShardPlan::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("plan: cannot write " + path);
  out << ToJson() << "\n";
  out.flush();
  if (!out) return Status::IoError("plan: write to " + path + " failed");
  return Status::OK();
}

const ShardSpec* ShardPlan::FindShard(int id) const {
  for (const ShardSpec& shard : shards) {
    if (shard.id == id) return &shard;
  }
  return nullptr;
}

const PairSpec* ShardPlan::FindPair(const std::string& name) const {
  for (const PairSpec& pair : pairs) {
    if (pair.name == name) return &pair;
  }
  return nullptr;
}

std::vector<std::string> ShardPlan::PairsOwnedBy(int id) const {
  std::vector<std::string> owned;
  for (const PairSpec& pair : pairs) {
    for (const RangeSpec& range : pair.ranges) {
      if (std::find(range.shards.begin(), range.shards.end(), id) !=
          range.shards.end()) {
        owned.push_back(pair.name);
        break;
      }
    }
  }
  return owned;
}

Result<ShardPlan> ShardPlan::EvenSplit(const std::string& pair_name,
                                       const std::string& source_path,
                                       const std::string& target_path,
                                       const std::string& index_path,
                                       size_t rows, int num_shards,
                                       const std::string& socket_dir,
                                       int replicas) {
  if (num_shards < 1) {
    return Status::InvalidArgument("plan: num_shards must be >= 1");
  }
  if (rows < static_cast<size_t>(num_shards)) {
    return Status::InvalidArgument(
        "plan: cannot split " + std::to_string(rows) + " rows across " +
        std::to_string(num_shards) + " shards");
  }
  if (replicas < 0 || replicas >= num_shards) {
    return Status::InvalidArgument(
        "plan: replicas must be in [0, num_shards)");
  }
  ShardPlan plan;
  for (int i = 0; i < num_shards; ++i) {
    ShardSpec shard;
    shard.id = i;
    shard.socket_path =
        socket_dir + "/shard" + std::to_string(i) + ".sock";
    plan.shards.push_back(std::move(shard));
  }
  PairSpec pair;
  pair.name = pair_name;
  pair.source_path = source_path;
  pair.target_path = target_path;
  pair.index_path = index_path;
  pair.rows = rows;
  const size_t base = rows / static_cast<size_t>(num_shards);
  const size_t extra = rows % static_cast<size_t>(num_shards);
  size_t begin = 0;
  for (int i = 0; i < num_shards; ++i) {
    RangeSpec range;
    range.begin = begin;
    range.end = begin + base + (static_cast<size_t>(i) < extra ? 1 : 0);
    begin = range.end;
    for (int r = 0; r <= replicas; ++r) {
      range.shards.push_back((i + r) % num_shards);
    }
    pair.ranges.push_back(std::move(range));
  }
  plan.pairs.push_back(std::move(pair));
  EM_RETURN_NOT_OK(plan.Validate());
  return plan;
}

}  // namespace entmatcher
