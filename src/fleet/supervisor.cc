#include "fleet/supervisor.h"

#include <signal.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/fault.h"
#include "common/json.h"
#include "serve/client.h"
#include "serve/protocol.h"

namespace entmatcher {

namespace {

constexpr uint64_t kDefaultJitterSeed = 17;
constexpr std::chrono::milliseconds kWatchTick{5};

std::chrono::microseconds Micros(uint64_t n) {
  return std::chrono::microseconds(static_cast<int64_t>(n));
}

/// One health probe with no retry — the recovery loop is the retry.
Result<std::string> ProbeHealth(const std::string& socket_path) {
  Result<ServeClient> client = ServeClient::Connect(socket_path);
  if (!client.ok()) return client.status();
  WireRequest health;
  health.verb = WireRequest::Verb::kHealth;
  Result<WireResponse> response = client->Call(health);
  if (!response.ok()) return response.status();
  if (!response->status.ok()) return response->status;
  return response->text;
}

/// pairs.<name> from a health document; 0 when absent/unparsable.
uint64_t PairVersion(const std::string& health_json,
                     const std::string& pair_name) {
  Result<JsonValue> doc = JsonValue::Parse(health_json);
  if (!doc.ok()) return 0;
  const JsonValue* pairs = doc->Find("pairs");
  const JsonValue* current =
      pairs != nullptr ? pairs->Find(pair_name) : nullptr;
  if (current == nullptr) return 0;
  const int64_t version = current->AsInt();
  return version > 0 ? static_cast<uint64_t>(version) : 0;
}

Result<uint64_t> ParseUint(std::string_view key, std::string_view value) {
  if (value.empty()) {
    return Status::InvalidArgument("restart policy: empty value for '" +
                                   std::string(key) + "'");
  }
  char* end = nullptr;
  const std::string text(value);
  const uint64_t parsed = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return Status::InvalidArgument("restart policy: bad number '" + text +
                                   "' for '" + std::string(key) + "'");
  }
  return parsed;
}

}  // namespace

Result<RestartPolicy> RestartPolicy::Parse(std::string_view spec) {
  RestartPolicy policy;
  if (spec.empty() || spec == "on") return policy;
  if (spec == "off") {
    policy.enabled = false;
    return policy;
  }
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("restart policy: expected key=value, got '" +
                                     std::string(item) + "'");
    }
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    if (key == "multiplier") {
      const std::string text(value);
      char* end = nullptr;
      policy.multiplier = std::strtod(text.c_str(), &end);
      if (end == nullptr || *end != '\0' || policy.multiplier < 1.0) {
        return Status::InvalidArgument(
            "restart policy: multiplier must be a number >= 1, got '" + text +
            "'");
      }
      continue;
    }
    Result<uint64_t> parsed = ParseUint(key, value);
    EM_RETURN_NOT_OK(parsed.status());
    if (key == "max_strikes") {
      if (*parsed == 0) {
        return Status::InvalidArgument("restart policy: max_strikes must be >= 1");
      }
      policy.max_strikes = static_cast<uint32_t>(*parsed);
    } else if (key == "backoff_us") {
      policy.initial_backoff_micros = *parsed;
    } else if (key == "max_backoff_us") {
      policy.max_backoff_micros = *parsed;
    } else if (key == "window_us") {
      policy.strike_window_micros = *parsed;
    } else if (key == "boot_budget_us") {
      policy.boot_budget_micros = *parsed;
    } else if (key == "seed") {
      policy.jitter_seed = *parsed;
    } else {
      return Status::InvalidArgument("restart policy: unknown key '" +
                                     std::string(key) + "'");
    }
  }
  if (policy.max_backoff_micros < policy.initial_backoff_micros) {
    return Status::InvalidArgument(
        "restart policy: max_backoff_us < backoff_us");
  }
  return policy;
}

std::string RestartPolicy::ToString() const {
  if (!enabled) return "off";
  std::string out = "max_strikes=" + std::to_string(max_strikes);
  out += ",backoff_us=" + std::to_string(initial_backoff_micros);
  out += ",max_backoff_us=" + std::to_string(max_backoff_micros);
  // Keep multiplier round-trippable without trailing-zero noise.
  std::string mult = std::to_string(multiplier);
  while (mult.size() > 1 && mult.back() == '0') mult.pop_back();
  if (!mult.empty() && mult.back() == '.') mult.pop_back();
  out += ",multiplier=" + mult;
  out += ",window_us=" + std::to_string(strike_window_micros);
  out += ",boot_budget_us=" + std::to_string(boot_budget_micros);
  out += ",seed=" + std::to_string(jitter_seed);
  return out;
}

FleetSupervisor::FleetSupervisor(ShardManager* manager, Router* router,
                                 ShardPlan plan, RestartPolicy policy)
    : manager_(manager),
      router_(router),
      plan_(std::move(plan)),
      policy_(policy) {
  // Resolve the jitter seed once so StatusJson/ToString report the stream
  // actually used: explicit seed > EM_FAULT_SEED > the library default.
  if (policy_.jitter_seed == 0) {
    const char* env = std::getenv("EM_FAULT_SEED");
    if (env != nullptr && *env != '\0') {
      policy_.jitter_seed = std::strtoull(env, nullptr, 10);
    }
    if (policy_.jitter_seed == 0) policy_.jitter_seed = kDefaultJitterSeed;
  }
  const Rng base(policy_.jitter_seed);
  tracked_.reserve(plan_.shards.size());
  for (const ShardSpec& shard : plan_.shards) {
    Tracked tracked;
    tracked.shard_id = shard.id;
    tracked.socket_path = shard.socket_path;
    // Fork per shard so restart schedules are independent streams of one
    // seed (labels offset by 1: Fork(0) would collide with a default fork).
    tracked.rng = base.Fork(static_cast<uint64_t>(shard.id) + 1);
    tracked_.push_back(std::move(tracked));
  }
  for (const PairSpec& pair : plan_.pairs) {
    RejoinSource source;
    source.source_path = pair.source_path;
    source.target_path = pair.target_path;
    source.index_path = pair.index_path;
    rejoin_sources_[pair.name] = std::move(source);
  }
}

FleetSupervisor::~FleetSupervisor() { Stop(); }

Status FleetSupervisor::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!policy_.enabled) {
    return Status::FailedPrecondition(
        "restart policy is off; supervisor not started");
  }
  if (running_) {
    return Status::FailedPrecondition("supervisor already running");
  }
  stop_.store(false);
  running_ = true;
  watcher_ = std::thread([this] { WatchLoop(); });
  return Status::OK();
}

void FleetSupervisor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
  }
  stop_.store(true);
  cv_.notify_all();
  if (watcher_.joinable()) watcher_.join();
}

void FleetSupervisor::RecordSwap(const std::string& pair,
                                 const std::string& source_path,
                                 const std::string& target_path,
                                 const std::string& index_path) {
  std::lock_guard<std::mutex> lock(mu_);
  RejoinSource& source = rejoin_sources_[pair];
  source.source_path = source_path;
  source.target_path = target_path;
  source.index_path = index_path;
}

void FleetSupervisor::WatchLoop() {
  while (!stop_.load()) {
    const std::vector<ShardProcessStatus> statuses = manager_->Status_();
    {
      // tracked_ is sized at construction and never resized, so references
      // into it stay valid across the unlock windows inside StepRecovery.
      std::unique_lock<std::mutex> lock(mu_);
      for (Tracked& tracked : tracked_) {
        if (stop_.load()) break;
        if (tracked.permanently_failed) continue;
        const ShardProcessStatus* process = nullptr;
        for (const ShardProcessStatus& status : statuses) {
          if (status.shard_id == tracked.shard_id) {
            process = &status;
            break;
          }
        }
        if (process == nullptr) continue;
        if (!tracked.recovering) {
          if (process->running) continue;
          // Death observed: quarantine FIRST, so the router stops routing
          // to (and never re-admits mid-recovery) this channel, then
          // schedule the first restart attempt under jittered backoff.
          tracked.recovering = true;
          tracked.respawned = false;
          tracked.death_observed = Clock::now();
          tracked.backoff_micros = policy_.initial_backoff_micros;
          tracked.next_attempt =
              Clock::now() + Micros(Jittered(tracked, tracked.backoff_micros));
          lock.unlock();
          (void)router_->Quarantine(tracked.shard_id);
          lock.lock();
          continue;
        }
        if (Clock::now() < tracked.next_attempt) continue;
        StepRecovery(lock, tracked);
      }
    }
    std::this_thread::sleep_for(kWatchTick);
  }
}

void FleetSupervisor::StepRecovery(std::unique_lock<std::mutex>& lock,
                                   Tracked& tracked) {
  const auto escalate = [this, &tracked] {
    tracked.backoff_micros = std::min(
        policy_.max_backoff_micros,
        static_cast<uint64_t>(static_cast<double>(tracked.backoff_micros) *
                              policy_.multiplier));
    tracked.next_attempt =
        Clock::now() + Micros(Jittered(tracked, tracked.backoff_micros));
  };
  const auto abandon_process = [this, &lock, &tracked] {
    // A permanently failed (or boot-dead) process must not linger half
    // alive on the socket: kill it and let the manager's reaper account
    // the exit.
    if (!tracked.respawned) return;
    lock.unlock();
    (void)manager_->Kill(tracked.shard_id, SIGKILL);
    lock.lock();
    tracked.respawned = false;
  };

  if (!tracked.respawned) {
    lock.unlock();
    const Status spawned = manager_->Respawn(tracked.shard_id);
    lock.lock();
    if (!spawned.ok()) {
      ++tracked.spawn_failures;
      Strike(tracked);
      if (!tracked.permanently_failed) escalate();
      return;
    }
    tracked.respawned = true;
    tracked.spawned_at = Clock::now();
    // Fall through: probe immediately; a fast boot re-admits this tick.
  }

  // Boot gate: the process exists but may not be listening yet.
  lock.unlock();
  const Result<std::string> health = ProbeHealth(tracked.socket_path);
  lock.lock();
  if (!health.ok()) {
    if (Clock::now() - tracked.spawned_at > Micros(policy_.boot_budget_micros)) {
      ++tracked.boot_failures;
      abandon_process();
      Strike(tracked);
      if (!tracked.permanently_failed) escalate();
    }
    // else: still booting — re-probe next tick (next_attempt already due).
    return;
  }

  // Version-converged re-join, THEN admission: the router must not see the
  // channel until the newcomer serves the fleet's snapshot version.
  lock.unlock();
  const Status converged = Converge(tracked);
  lock.lock();
  if (!converged.ok()) {
    ++tracked.rejoin_failures;
    Strike(tracked);
    if (tracked.permanently_failed) {
      abandon_process();
    } else {
      // Keep the process: the retry resumes at convergence, not respawn.
      escalate();
    }
    return;
  }

  lock.unlock();
  const Status readmitted = router_->Readmit(tracked.shard_id);
  lock.lock();
  if (!readmitted.ok()) {
    Strike(tracked);
    if (tracked.permanently_failed) {
      abandon_process();
    } else {
      escalate();
    }
    return;
  }

  tracked.recovering = false;
  tracked.respawned = false;
  tracked.backoff_micros = 0;
  ++tracked.restarts;
  tracked.last_restart_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          Clock::now() - tracked.death_observed)
          .count());
  restart_latencies_.push_back(tracked.last_restart_micros);
  cv_.notify_all();
}

Status FleetSupervisor::Converge(const Tracked& tracked) {
  // The re-join fault point: an injected failure here leaves the shard
  // un-admitted (a strike + backoff retry), never half-joined.
  EM_INJECT_FAULT("fleet.rejoin.swap", StatusCode::kUnavailable);

  std::map<std::string, RejoinSource> sources;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sources = rejoin_sources_;
  }

  Result<std::string> mine = ProbeHealth(tracked.socket_path);
  if (!mine.ok()) {
    return Status::Unavailable("newcomer stopped answering health: " +
                               mine.status().message());
  }
  for (const std::string& pair_name : plan_.PairsOwnedBy(tracked.shard_id)) {
    const uint64_t my_version = PairVersion(*mine, pair_name);
    // The fleet's converged version = max over the surviving owners. A
    // dead peer contributes no floor; if EVERY other owner is down there
    // is nothing to diverge from and the newcomer's version IS the floor.
    uint64_t fleet_version = 0;
    for (const ShardSpec& shard : plan_.shards) {
      if (shard.id == tracked.shard_id) continue;
      const std::vector<std::string> owned = plan_.PairsOwnedBy(shard.id);
      if (std::find(owned.begin(), owned.end(), pair_name) == owned.end()) {
        continue;
      }
      Result<std::string> peer = ProbeHealth(shard.socket_path);
      if (!peer.ok()) continue;
      fleet_version = std::max(fleet_version, PairVersion(*peer, pair_name));
    }
    if (fleet_version <= my_version) continue;

    // Drive the newcomer (and ONLY the newcomer — survivors already serve
    // this version) to the fleet's version via the shard-side swap floor,
    // onto the files of the last fleet-wide swap.
    const RejoinSource& source = sources[pair_name];
    WireRequest swap;
    swap.verb = WireRequest::Verb::kSwap;
    swap.pair = pair_name;
    swap.source_path = source.source_path;
    swap.target_path = source.target_path;
    swap.index_path = source.index_path;
    swap.swap_min_version = fleet_version;
    Result<ServeClient> client = ServeClient::Connect(tracked.socket_path);
    if (!client.ok()) {
      return Status::Unavailable("re-join swap connect: " +
                                 client.status().message());
    }
    Result<WireResponse> response = client->Call(swap);
    if (!response.ok()) {
      return Status::Unavailable("re-join swap transport: " +
                                 response.status().message());
    }
    if (!response->status.ok()) return response->status;
    // Confirm "swapped <pair> v<N>" landed exactly on the fleet version.
    const std::string& text = response->text;
    const size_t v = text.rfind(" v");
    const uint64_t swapped_version =
        v != std::string::npos
            ? std::strtoull(text.c_str() + v + 2, nullptr, 10)
            : 0;
    if (swapped_version != fleet_version) {
      return Status::Internal(
          "re-join swap landed on v" + std::to_string(swapped_version) +
          ", fleet is at v" + std::to_string(fleet_version));
    }
  }
  return Status::OK();
}

void FleetSupervisor::Strike(Tracked& tracked) {
  const auto now = Clock::now();
  tracked.strike_times.push_back(now);
  const auto cutoff = now - Micros(policy_.strike_window_micros);
  tracked.strike_times.erase(
      std::remove_if(tracked.strike_times.begin(), tracked.strike_times.end(),
                     [cutoff](Clock::time_point t) { return t < cutoff; }),
      tracked.strike_times.end());
  if (tracked.strike_times.size() >= policy_.max_strikes) {
    tracked.permanently_failed = true;
    tracked.recovering = false;
    cv_.notify_all();
  }
}

uint64_t FleetSupervisor::Jittered(Tracked& tracked, uint64_t base_micros) {
  // Full jitter over [base/2, base] — desynchronizes simultaneous restarts
  // while keeping the schedule deterministic per (seed, shard).
  const uint64_t half = base_micros / 2;
  return half + tracked.rng.NextBounded(base_micros - half + 1);
}

std::vector<ShardRecoveryStatus> FleetSupervisor::Ledger() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ShardRecoveryStatus> out;
  out.reserve(tracked_.size());
  const auto now = Clock::now();
  const auto cutoff = now - Micros(policy_.strike_window_micros);
  for (const Tracked& tracked : tracked_) {
    ShardRecoveryStatus status;
    status.shard_id = tracked.shard_id;
    status.restarts = tracked.restarts;
    status.spawn_failures = tracked.spawn_failures;
    status.rejoin_failures = tracked.rejoin_failures;
    status.boot_failures = tracked.boot_failures;
    for (const Clock::time_point t : tracked.strike_times) {
      if (t >= cutoff) ++status.strikes;
    }
    status.permanently_failed = tracked.permanently_failed;
    status.recovering = tracked.recovering;
    status.last_restart_micros = tracked.last_restart_micros;
    out.push_back(status);
  }
  return out;
}

std::string FleetSupervisor::StatusJson() const {
  const std::vector<ShardRecoveryStatus> ledger = Ledger();
  uint64_t total_restarts = 0;
  for (const ShardRecoveryStatus& status : ledger) {
    total_restarts += status.restarts;
  }
  std::string json = "{\"policy\": \"" + policy_.ToString() + "\"";
  json += ", \"restarts\": " + std::to_string(total_restarts);
  json += ", \"shards\": [";
  for (size_t i = 0; i < ledger.size(); ++i) {
    const ShardRecoveryStatus& s = ledger[i];
    json += (i > 0 ? ", " : "");
    json += "{\"id\": " + std::to_string(s.shard_id);
    json += ", \"restarts\": " + std::to_string(s.restarts);
    json += ", \"spawn_failures\": " + std::to_string(s.spawn_failures);
    json += ", \"rejoin_failures\": " + std::to_string(s.rejoin_failures);
    json += ", \"boot_failures\": " + std::to_string(s.boot_failures);
    json += ", \"strikes\": " + std::to_string(s.strikes);
    json += ", \"permanently_failed\": " +
            std::string(s.permanently_failed ? "true" : "false");
    json += ", \"recovering\": " +
            std::string(s.recovering ? "true" : "false");
    json += ", \"last_restart_us\": " + std::to_string(s.last_restart_micros);
    json += "}";
  }
  json += "]}";
  return json;
}

std::vector<uint64_t> FleetSupervisor::RestartLatencies() const {
  std::lock_guard<std::mutex> lock(mu_);
  return restart_latencies_;
}

Status FleetSupervisor::WaitRestarts(int shard_id, uint64_t restarts_at_least,
                                     uint64_t budget_micros) {
  std::unique_lock<std::mutex> lock(mu_);
  Tracked* tracked = nullptr;
  for (Tracked& candidate : tracked_) {
    if (candidate.shard_id == shard_id) {
      tracked = &candidate;
      break;
    }
  }
  if (tracked == nullptr) {
    return Status::NotFound("no shard " + std::to_string(shard_id));
  }
  const auto deadline = Clock::now() + Micros(budget_micros);
  for (;;) {
    if (tracked->restarts >= restarts_at_least) return Status::OK();
    if (tracked->permanently_failed) {
      return Status::Internal(
          "shard " + std::to_string(shard_id) +
          " permanently failed (strike budget spent) after " +
          std::to_string(tracked->restarts) + " restarts");
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      if (tracked->restarts >= restarts_at_least) return Status::OK();
      return Status::DeadlineExceeded(
          "shard " + std::to_string(shard_id) + " reached " +
          std::to_string(tracked->restarts) + "/" +
          std::to_string(restarts_at_least) + " restarts in budget");
    }
  }
}

}  // namespace entmatcher
