#ifndef ENTMATCHER_FLEET_MERGE_H_
#define ENTMATCHER_FLEET_MERGE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"

namespace entmatcher {

/// One shard's answer to a routed sub-query: the row range it covered, the
/// snapshot version that answered, the payload rows, and — for top-k — the
/// bit-exact scores parallel to `values`.
struct RangePart {
  size_t row_begin = 0;
  size_t row_end = 0;
  uint64_t version = 0;
  std::vector<int32_t> values;
  std::vector<float> scores;
};

/// The router's gather step. Both merges enforce the fleet's two hard
/// guarantees before touching payload bytes:
///
///  1. No mixed-version answers: every part must carry the same snapshot
///     version — a fleet mid-swap (or a failed swap fan-out) yields parts
///     from different versions, which MUST be refused (kUnavailable; the
///     client retries after the swap settles) rather than silently spliced
///     into an answer no single version ever produced.
///  2. Determinism: parts are merged by position (assignments) or by the
///     stable order (score desc, id asc) with duplicate-id dedup (top-k) —
///     the exact order RowTopKIndices emits — so the merged answer is
///     bit-identical to a single process serving the union, independent of
///     which replicas answered or in what order parts arrived.
///
/// Rows covered by more than one part (hedged replicas both answered) must
/// agree; a disagreement at the same snapshot version means a shard is
/// corrupt and surfaces as kInternal, never as a silently chosen side.

/// Merges assignment parts into the full target_of_source vector of
/// `total_rows` rows. kUnavailable when versions are mixed or rows are
/// uncovered; kInternal on replica disagreement.
Result<std::vector<int32_t>> MergeAssignments(
    size_t total_rows, const std::vector<RangePart>& parts);

/// Merges per-row top-k parts into the full flattened (total_rows × k_eff)
/// index vector. Every part must carry scores (k_eff = values per covered
/// row, uniform across parts). Same refusal rules as MergeAssignments.
Result<std::vector<int32_t>> MergeTopK(size_t total_rows,
                                       const std::vector<RangePart>& parts);

/// A degraded merge under the router's partial-coverage policy: `values`
/// holds what the surviving shards answered, `coverage` the sorted disjoint
/// row ranges those answers are authoritative for. Rows outside `coverage`
/// hold -1 placeholders. `complete` is true when coverage is the full
/// [0, total_rows) — callers use it to decide whether to annotate the wire
/// response (and must never cache an incomplete answer).
struct PartialMerge {
  std::vector<int32_t> values;
  std::vector<std::pair<size_t, size_t>> coverage;
  bool complete = true;
};

/// Partial-coverage counterparts of the merges above. The version guarantee
/// is NOT relaxed: mixed-version parts are still refused (kUnavailable) —
/// degradation drops rows, never determinism. Uncovered rows are allowed;
/// zero covered rows is still kUnavailable (an all-dead fleet has nothing
/// to degrade to). Replica disagreement stays kInternal.
Result<PartialMerge> MergeAssignmentsPartial(
    size_t total_rows, const std::vector<RangePart>& parts);
Result<PartialMerge> MergeTopKPartial(size_t total_rows,
                                      const std::vector<RangePart>& parts);

}  // namespace entmatcher

#endif  // ENTMATCHER_FLEET_MERGE_H_
