#ifndef ENTMATCHER_FLEET_PLAN_H_
#define ENTMATCHER_FLEET_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace entmatcher {

/// One shard process: where it listens.
struct ShardSpec {
  int id = 0;
  std::string socket_path;
};

/// One contiguous block of a pair's source rows and the shards that answer
/// it. The first listed shard is the range's primary; the rest are replicas
/// in failover/hedging order.
struct RangeSpec {
  size_t begin = 0;
  size_t end = 0;
  std::vector<int> shards;
};

/// One served embedding pair: the files every owning shard loads, the row
/// count the ranges must tile, and the range → shard assignment.
///
/// Sharding contract: every shard owning ANY range of a pair loads the FULL
/// pair. The paper's score transforms (CSLS, RInf) are globally normalized —
/// a row's transformed scores depend on every other row — so slicing the
/// data per shard would change answers. Ranges therefore partition the
/// *decision space* (which rows a shard answers for), not the data: each
/// shard runs the identical deterministic pipeline and slices its response
/// rows, which is why router-merged answers are bit-identical to a
/// single-process run by construction, for every preset. What scales with
/// shard count is answer bandwidth — concurrent scores passes, per-shard
/// result caches, replica failover — not per-shard memory.
struct PairSpec {
  std::string name;
  std::string source_path;
  std::string target_path;
  std::string index_path;  // optional candidate index
  size_t rows = 0;
  std::vector<RangeSpec> ranges;
};

/// The versioned fleet layout: which shard processes exist and which source
/// rows of which pairs each one answers. Serialized as JSON (see
/// ShardPlan::ToJson for the exact shape) so plans are diffable, and
/// validated on load: unique shard ids and pair names, ranges sorted,
/// non-overlapping and tiling [0, rows), every referenced shard defined,
/// every range owned by at least one shard.
struct ShardPlan {
  /// Format version of the plan file itself (not the wire protocol).
  static constexpr int kPlanVersion = 1;

  std::vector<ShardSpec> shards;
  std::vector<PairSpec> pairs;

  /// Parses + validates a JSON plan document.
  static Result<ShardPlan> FromJson(const std::string& json);

  /// Reads + parses + validates a plan file.
  static Result<ShardPlan> Load(const std::string& path);

  /// Structural validation (also run by FromJson/Load).
  Status Validate() const;

  /// Serializes the plan as a JSON document (round-trips through FromJson).
  std::string ToJson() const;

  /// Writes ToJson() to `path`.
  Status Save(const std::string& path) const;

  /// The shard with `id`, or nullptr.
  const ShardSpec* FindShard(int id) const;

  /// The pair named `name`, or nullptr.
  const PairSpec* FindPair(const std::string& name) const;

  /// Pair names shard `id` owns at least one range of — the pairs that
  /// shard's process must load (fully; see PairSpec).
  std::vector<std::string> PairsOwnedBy(int id) const;

  /// An evenly split single-pair plan: `num_shards` shards on
  /// `socket_dir/shard<i>.sock`, rows split into num_shards contiguous
  /// ranges, range i primary on shard i with `replicas` extra owners
  /// (wrapping round-robin). The builder behind `fleet plan` and the tests.
  static Result<ShardPlan> EvenSplit(const std::string& pair_name,
                                     const std::string& source_path,
                                     const std::string& target_path,
                                     const std::string& index_path,
                                     size_t rows, int num_shards,
                                     const std::string& socket_dir,
                                     int replicas = 0);
};

}  // namespace entmatcher

#endif  // ENTMATCHER_FLEET_PLAN_H_
