#ifndef ENTMATCHER_FLEET_ROUTER_H_
#define ENTMATCHER_FLEET_ROUTER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "fleet/merge.h"
#include "fleet/plan.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/socket_server.h"

namespace entmatcher {

/// What the router answers when a range has no live owner at all.
enum class PartialPolicy {
  /// Refuse the whole query (kUnavailable) — the default, and the only
  /// behavior before v3. A client never sees a partial answer it did not
  /// opt into.
  kUnavailable,
  /// Degrade: answer from the ranges that do have live owners, fill the
  /// rest with -1 placeholders, and annotate the response with
  /// coverage=LO:HI,... so the client knows exactly which rows are
  /// authoritative. Degraded answers are never cached (mirroring the
  /// serve-side shed rule) and the version guarantee is NOT relaxed —
  /// mixed-version parts still refuse.
  kDegrade,
};

/// Router tuning knobs (the fleet-level options object).
struct RouterConfig {
  /// Per-sub-query retry discipline (idempotent reads only — swap fan-out
  /// never retries). Honors shard retry-after hints via ServeClient.
  RetryPolicy retry;
  /// Hedging: after a range's primary has been in flight this long without
  /// answering, launch the same sub-query on the next replica and take
  /// whichever succeeds first. 0 disables (replicas then serve failover
  /// only). Safe because sub-queries are idempotent reads.
  uint64_t hedge_micros = 0;
  /// Circuit breaker: consecutive transport failures on one channel that
  /// trip it open (0 disables the breaker entirely). While open, attempts
  /// fail fast without dialing — a flapping shard stops eating retry and
  /// hedge budget.
  uint32_t breaker_failures = 3;
  /// How long an open breaker cools down before the next attempt is let
  /// through as the half-open probe. Deterministic: a fixed duration, not a
  /// randomized one, so chaos tests can assert exact transition ledgers.
  uint64_t breaker_cooldown_micros = 100000;
  /// What to do when a range has no live owner (see PartialPolicy).
  PartialPolicy partial_policy = PartialPolicy::kUnavailable;
  /// Called after a successful swap fan-out with the converged state
  /// (pair, source/target/index paths, published version). FleetSupervisor
  /// hooks this to keep its re-join registry current, so a shard restarted
  /// after a swap converges onto the swapped files, not the plan's.
  std::function<void(const std::string& pair, const std::string& source_path,
                     const std::string& target_path,
                     const std::string& index_path, uint64_t version)>
      on_swap_converged;
};

/// Point-in-time router counters. The query ledger is exact once in-flight
/// work drains: queries == ok + degraded + failed, and every sub-query
/// outcome is one of ok / hedged-away / failed-over / failed.
struct RouterStatsSnapshot {
  uint64_t queries = 0;
  uint64_t ok = 0;
  uint64_t failed = 0;
  /// Partial answers served under PartialPolicy::kDegrade (not counted in
  /// ok — a degraded answer is an explicit middle outcome).
  uint64_t degraded = 0;
  uint64_t subqueries = 0;
  /// Hedge launches (a second replica raced a slow primary).
  uint64_t hedges = 0;
  /// Failovers: a sub-query attempt failed and another owner was tried.
  uint64_t failovers = 0;
  /// Merges refused because shards answered from different snapshot
  /// versions. Must stay 0 outside a swap window.
  uint64_t version_mismatches = 0;
  uint64_t swap_fanouts = 0;
  uint64_t swap_failures = 0;
  /// Circuit-breaker transition totals across all channels: closed→open
  /// (and half-open→open re-opens), open→half-open probes, →closed resets.
  uint64_t breaker_opens = 0;
  uint64_t breaker_half_opens = 0;
  uint64_t breaker_closes = 0;

  std::string ToJson() const;
};

/// The fleet's client-facing front end. Speaks the identical length-prefixed
/// protocol as a shard (through RouterHandler + SocketServer), but answers
/// match/topk by scatter-gather: each range of the queried pair becomes a
/// `route` sub-query to an owning shard, partial answers are merged
/// deterministically (fleet/merge.h), and the merged payload is returned as
/// if one process had served the union — bit-identical, by construction.
///
/// Failure discipline per range: owners are tried in plan order (primary
/// first, currently-Down channels demoted to the back and open-breaker
/// channels behind those), each attempt runs under the RetryPolicy, a
/// transport failure marks the channel Down, advances its circuit breaker,
/// and fails over to the next owner. A breaker that trips open fails fast
/// for breaker_cooldown_micros, then lets one attempt through as the
/// half-open probe. Channels quarantined by the supervisor (dead or
/// restarted-but-unconverged shards) are skipped entirely; if that leaves a
/// range with no owner, partial_policy decides between refusing the query
/// and answering degraded with a coverage annotation. With hedge_micros >
/// 0, a slow primary is raced by the next replica instead of waited out. A
/// shard whose `hello` handshake reports a different protocol version is
/// marked incompatible and refused permanently (kFailedPrecondition —
/// config error, not a transient).
///
/// Swap fan-out (all-or-nothing): `swap` on the router forwards to every
/// shard owning the pair, sequentially, never retrying (swap is not
/// idempotent-safe). Success requires every owner to confirm the same new
/// version. On partial failure the router reports which shards diverged —
/// and the no-mixed-version merge guarantee means reads refuse to splice
/// old and new answers until a repair swap converges the fleet (re-issue
/// the same swap; converged shards just republish the same files).
class Router {
 public:
  /// Validates `plan` and builds the channel set. Connections are dialed
  /// lazily on first use, so a router can start before its shards.
  static Result<std::unique_ptr<Router>> Create(ShardPlan plan,
                                                RouterConfig config);

  /// Waits for in-flight sub-queries (including hedged stragglers) to
  /// drain.
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Scatter-gather for a client match/topk request (request.route must be
  /// false — the router issues route sub-queries, it does not accept them).
  /// On success the response carries the merged values and the uniform
  /// snapshot version.
  Result<WireResponse> Query(const WireRequest& request);

  /// Fan-out swap (see class comment). Returns the confirmation text.
  Result<std::string> Swap(const WireRequest& request);

  /// Supervision hooks (FleetSupervisor). Quarantine bars a shard's channel
  /// from every query path — a dead or restarting shard must not be dialed,
  /// and above all a restarted-but-unconverged shard must not contribute
  /// parts (the structural no-mixed-version guarantee across crash cycles).
  /// Readmit reverses it once the supervisor has converged the newcomer:
  /// breaker reset to closed, state back to unknown, connection redialed
  /// lazily. Both kNotFound for an unknown shard id.
  Status Quarantine(int shard_id);
  Status Readmit(int shard_id);

  /// Supplies the supervisor's StatusJson for FleetHealthJson's
  /// "supervisor" section (unset = section omitted). A function, not a
  /// pointer, to keep this header free of the supervisor type.
  void SetSupervisorStatus(std::function<std::string()> status_fn) {
    supervisor_status_ = std::move(status_fn);
  }

  /// Aggregated fleet health: router role/protocol + stats, and every
  /// shard's channel state with its live `health` payload (or the error
  /// string).
  std::string FleetHealthJson();

  /// The plan plus per-shard channel state, without touching the network.
  std::string ShardsJson() const;

  RouterStatsSnapshot Stats() const;

  const ShardPlan& plan() const { return plan_; }

 private:
  enum class ChannelState { kUnknown, kUp, kDown, kIncompatible };

  /// Circuit-breaker state machine per channel: kClosed (normal) → kOpen on
  /// breaker_failures consecutive transport failures; kOpen fails fast
  /// until breaker_cooldown_micros elapse, then the next attempt runs as
  /// the kHalfOpen probe — success closes the breaker, failure re-opens it
  /// (and restarts the cooldown clock).
  enum class BreakerState { kClosed, kOpen, kHalfOpen };

  /// One shard's long-lived connection: lazily dialed, handshake-checked,
  /// serialized by a per-channel mutex (the protocol is one frame out, one
  /// frame in — concurrent callers must not interleave frames).
  struct Channel {
    int id = 0;
    std::string socket_path;
    std::mutex mu;
    std::optional<ServeClient> client;
    bool hello_checked = false;
    std::atomic<ChannelState> state{ChannelState::kUnknown};
    std::string last_error;  // guarded by mu
    /// False while quarantined by the supervisor (dead, or restarted but
    /// not yet version-converged): the channel is skipped everywhere.
    std::atomic<bool> admitted{true};
    std::atomic<BreakerState> breaker{BreakerState::kClosed};
    uint32_t consecutive_failures = 0;               // guarded by mu
    std::chrono::steady_clock::time_point opened_at;  // guarded by mu
    /// Transition ledgers (see RouterStatsSnapshot).
    std::atomic<uint64_t> opens{0};
    std::atomic<uint64_t> half_opens{0};
    std::atomic<uint64_t> closes{0};
  };

  /// Shared slot for one range's racing attempts (hedging): attempts write
  /// results in, the coordinator waits for the first success.
  struct RangeRace {
    std::mutex mu;
    std::condition_variable cv;
    size_t launched = 0;
    size_t finished = 0;
    std::optional<RangePart> winner;
    Status last_failure = Status::Unavailable("no attempt ran");
  };

  Router(ShardPlan plan, RouterConfig config);

  Channel* FindChannel(int shard_id);

  /// One attempt against one shard: breaker gate first (fail fast while
  /// open, probe when cooled down), then connect + hello if needed, then
  /// CallWithRetry. Marks the channel Up/Down/Incompatible by outcome and
  /// advances the breaker state machine.
  Result<WireResponse> Attempt(Channel* channel, const WireRequest& request);

  /// Breaker bookkeeping (channel->mu held): a transport-level failure
  /// bumps the consecutive counter and opens the breaker at the threshold
  /// (a failed half-open probe re-opens immediately); any transport-level
  /// success resets the counter and closes the breaker.
  void NoteChannelFailure(Channel* channel);
  void NoteChannelSuccess(Channel* channel);

  /// Blocking per-range scatter: owners in failover order, hedged per
  /// config. Returns the winning part.
  Result<RangePart> QueryRange(const WireRequest& request,
                               const RangeSpec& range);

  /// Launches one owner attempt on a detached tracked thread writing into
  /// `race`.
  void LaunchAttempt(std::shared_ptr<RangeRace> race, int shard_id,
                     WireRequest subrequest);

  /// Plain single-shot call used by health aggregation (no retry, short
  /// path).
  Result<WireResponse> AttemptOnce(Channel* channel,
                                   const WireRequest& request);

  ShardPlan plan_;
  RouterConfig config_;
  std::vector<std::unique_ptr<Channel>> channels_;

  /// Detached attempt threads still running; the destructor waits for zero
  /// so a straggler can never touch a dead channel.
  mutable std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  size_t inflight_ = 0;

  std::function<std::string()> supervisor_status_;

  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> ok_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> degraded_{0};
  std::atomic<uint64_t> subqueries_{0};
  std::atomic<uint64_t> hedges_{0};
  std::atomic<uint64_t> failovers_{0};
  std::atomic<uint64_t> version_mismatches_{0};
  std::atomic<uint64_t> swap_fanouts_{0};
  std::atomic<uint64_t> swap_failures_{0};
};

/// WireHandler over a Router: the fleet front end behind a SocketServer.
/// Dispatches hello (role "router"), match/topk (scatter-gather), swap
/// (fan-out), health (fleet aggregate), shards, stats, shutdown; refuses
/// `route` (a shard-side verb — clients never address ranges directly).
class RouterHandler : public WireHandler {
 public:
  explicit RouterHandler(Router* router) : router_(router) {}

  std::string Handle(const std::string& payload, bool* shutdown) override;

 private:
  Router* router_;
};

}  // namespace entmatcher

#endif  // ENTMATCHER_FLEET_ROUTER_H_
