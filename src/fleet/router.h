#ifndef ENTMATCHER_FLEET_ROUTER_H_
#define ENTMATCHER_FLEET_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "fleet/merge.h"
#include "fleet/plan.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/socket_server.h"

namespace entmatcher {

/// Router tuning knobs.
struct RouterConfig {
  /// Per-sub-query retry discipline (idempotent reads only — swap fan-out
  /// never retries). Honors shard retry-after hints via ServeClient.
  RetryPolicy retry;
  /// Hedging: after a range's primary has been in flight this long without
  /// answering, launch the same sub-query on the next replica and take
  /// whichever succeeds first. 0 disables (replicas then serve failover
  /// only). Safe because sub-queries are idempotent reads.
  uint64_t hedge_micros = 0;
};

/// Point-in-time router counters. The query ledger is exact once in-flight
/// work drains: queries == ok + failed, and every sub-query outcome is one
/// of ok / hedged-away / failed-over / failed.
struct RouterStatsSnapshot {
  uint64_t queries = 0;
  uint64_t ok = 0;
  uint64_t failed = 0;
  uint64_t subqueries = 0;
  /// Hedge launches (a second replica raced a slow primary).
  uint64_t hedges = 0;
  /// Failovers: a sub-query attempt failed and another owner was tried.
  uint64_t failovers = 0;
  /// Merges refused because shards answered from different snapshot
  /// versions. Must stay 0 outside a swap window.
  uint64_t version_mismatches = 0;
  uint64_t swap_fanouts = 0;
  uint64_t swap_failures = 0;

  std::string ToJson() const;
};

/// The fleet's client-facing front end. Speaks the identical length-prefixed
/// protocol as a shard (through RouterHandler + SocketServer), but answers
/// match/topk by scatter-gather: each range of the queried pair becomes a
/// `route` sub-query to an owning shard, partial answers are merged
/// deterministically (fleet/merge.h), and the merged payload is returned as
/// if one process had served the union — bit-identical, by construction.
///
/// Failure discipline per range: owners are tried in plan order (primary
/// first, currently-Down channels demoted to the back), each attempt runs
/// under the RetryPolicy, a transport failure marks the channel Down and
/// fails over to the next owner. With hedge_micros > 0, a slow primary is
/// raced by the next replica instead of waited out. A shard whose `hello`
/// handshake reports a different protocol version is marked incompatible
/// and refused permanently (kFailedPrecondition — config error, not a
/// transient).
///
/// Swap fan-out (all-or-nothing): `swap` on the router forwards to every
/// shard owning the pair, sequentially, never retrying (swap is not
/// idempotent-safe). Success requires every owner to confirm the same new
/// version. On partial failure the router reports which shards diverged —
/// and the no-mixed-version merge guarantee means reads refuse to splice
/// old and new answers until a repair swap converges the fleet (re-issue
/// the same swap; converged shards just republish the same files).
class Router {
 public:
  /// Validates `plan` and builds the channel set. Connections are dialed
  /// lazily on first use, so a router can start before its shards.
  static Result<std::unique_ptr<Router>> Create(ShardPlan plan,
                                                RouterConfig config);

  /// Waits for in-flight sub-queries (including hedged stragglers) to
  /// drain.
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Scatter-gather for a client match/topk request (request.route must be
  /// false — the router issues route sub-queries, it does not accept them).
  /// On success the response carries the merged values and the uniform
  /// snapshot version.
  Result<WireResponse> Query(const WireRequest& request);

  /// Fan-out swap (see class comment). Returns the confirmation text.
  Result<std::string> Swap(const WireRequest& request);

  /// Aggregated fleet health: router role/protocol + stats, and every
  /// shard's channel state with its live `health` payload (or the error
  /// string).
  std::string FleetHealthJson();

  /// The plan plus per-shard channel state, without touching the network.
  std::string ShardsJson() const;

  RouterStatsSnapshot Stats() const;

  const ShardPlan& plan() const { return plan_; }

 private:
  enum class ChannelState { kUnknown, kUp, kDown, kIncompatible };

  /// One shard's long-lived connection: lazily dialed, handshake-checked,
  /// serialized by a per-channel mutex (the protocol is one frame out, one
  /// frame in — concurrent callers must not interleave frames).
  struct Channel {
    int id = 0;
    std::string socket_path;
    std::mutex mu;
    std::optional<ServeClient> client;
    bool hello_checked = false;
    std::atomic<ChannelState> state{ChannelState::kUnknown};
    std::string last_error;  // guarded by mu
  };

  /// Shared slot for one range's racing attempts (hedging): attempts write
  /// results in, the coordinator waits for the first success.
  struct RangeRace {
    std::mutex mu;
    std::condition_variable cv;
    size_t launched = 0;
    size_t finished = 0;
    std::optional<RangePart> winner;
    Status last_failure = Status::Unavailable("no attempt ran");
  };

  Router(ShardPlan plan, RouterConfig config);

  Channel* FindChannel(int shard_id);

  /// One attempt against one shard: connect + hello if needed, then
  /// CallWithRetry. Marks the channel Up/Down/Incompatible by outcome.
  Result<WireResponse> Attempt(Channel* channel, const WireRequest& request);

  /// Blocking per-range scatter: owners in failover order, hedged per
  /// config. Returns the winning part.
  Result<RangePart> QueryRange(const WireRequest& request,
                               const RangeSpec& range);

  /// Launches one owner attempt on a detached tracked thread writing into
  /// `race`.
  void LaunchAttempt(std::shared_ptr<RangeRace> race, int shard_id,
                     WireRequest subrequest);

  /// Plain single-shot call used by health aggregation (no retry, short
  /// path).
  Result<WireResponse> AttemptOnce(Channel* channel,
                                   const WireRequest& request);

  ShardPlan plan_;
  RouterConfig config_;
  std::vector<std::unique_ptr<Channel>> channels_;

  /// Detached attempt threads still running; the destructor waits for zero
  /// so a straggler can never touch a dead channel.
  mutable std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  size_t inflight_ = 0;

  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> ok_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> subqueries_{0};
  std::atomic<uint64_t> hedges_{0};
  std::atomic<uint64_t> failovers_{0};
  std::atomic<uint64_t> version_mismatches_{0};
  std::atomic<uint64_t> swap_fanouts_{0};
  std::atomic<uint64_t> swap_failures_{0};
};

/// WireHandler over a Router: the fleet front end behind a SocketServer.
/// Dispatches hello (role "router"), match/topk (scatter-gather), swap
/// (fan-out), health (fleet aggregate), shards, stats, shutdown; refuses
/// `route` (a shard-side verb — clients never address ranges directly).
class RouterHandler : public WireHandler {
 public:
  explicit RouterHandler(Router* router) : router_(router) {}

  std::string Handle(const std::string& payload, bool* shutdown) override;

 private:
  Router* router_;
};

}  // namespace entmatcher

#endif  // ENTMATCHER_FLEET_ROUTER_H_
