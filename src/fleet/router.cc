#include "fleet/router.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <future>
#include <thread>

#include "common/json.h"

namespace entmatcher {

namespace {

const char* ChannelStateName(int state) {
  switch (state) {
    case 0: return "unknown";
    case 1: return "up";
    case 2: return "down";
    case 3: return "incompatible";
  }
  return "?";
}

const char* BreakerStateName(int state) {
  switch (state) {
    case 0: return "closed";
    case 1: return "open";
    case 2: return "half_open";
  }
  return "?";
}

}  // namespace

std::string RouterStatsSnapshot::ToJson() const {
  std::string json = "{";
  json += "\"queries\": " + std::to_string(queries);
  json += ", \"ok\": " + std::to_string(ok);
  json += ", \"failed\": " + std::to_string(failed);
  json += ", \"degraded\": " + std::to_string(degraded);
  json += ", \"subqueries\": " + std::to_string(subqueries);
  json += ", \"hedges\": " + std::to_string(hedges);
  json += ", \"failovers\": " + std::to_string(failovers);
  json += ", \"version_mismatches\": " + std::to_string(version_mismatches);
  json += ", \"swap_fanouts\": " + std::to_string(swap_fanouts);
  json += ", \"swap_failures\": " + std::to_string(swap_failures);
  json += ", \"breaker_opens\": " + std::to_string(breaker_opens);
  json += ", \"breaker_half_opens\": " + std::to_string(breaker_half_opens);
  json += ", \"breaker_closes\": " + std::to_string(breaker_closes);
  json += "}";
  return json;
}

Result<std::unique_ptr<Router>> Router::Create(ShardPlan plan,
                                               RouterConfig config) {
  EM_RETURN_NOT_OK(plan.Validate());
  return std::unique_ptr<Router>(new Router(std::move(plan), config));
}

Router::Router(ShardPlan plan, RouterConfig config)
    : plan_(std::move(plan)), config_(config) {
  channels_.reserve(plan_.shards.size());
  for (const ShardSpec& shard : plan_.shards) {
    auto channel = std::make_unique<Channel>();
    channel->id = shard.id;
    channel->socket_path = shard.socket_path;
    channels_.push_back(std::move(channel));
  }
}

Router::~Router() {
  std::unique_lock<std::mutex> lock(inflight_mu_);
  inflight_cv_.wait(lock, [&] { return inflight_ == 0; });
}

Router::Channel* Router::FindChannel(int shard_id) {
  for (const std::unique_ptr<Channel>& channel : channels_) {
    if (channel->id == shard_id) return channel.get();
  }
  return nullptr;
}

void Router::NoteChannelFailure(Channel* channel) {
  if (config_.breaker_failures == 0) return;  // breaker disabled
  ++channel->consecutive_failures;
  const BreakerState state = channel->breaker.load();
  const bool trip =
      state == BreakerState::kHalfOpen ||
      (state == BreakerState::kClosed &&
       channel->consecutive_failures >= config_.breaker_failures);
  if (trip) {
    channel->breaker.store(BreakerState::kOpen);
    channel->opened_at = std::chrono::steady_clock::now();
    channel->opens.fetch_add(1);
  }
}

void Router::NoteChannelSuccess(Channel* channel) {
  channel->consecutive_failures = 0;
  if (channel->breaker.load() != BreakerState::kClosed) {
    channel->breaker.store(BreakerState::kClosed);
    channel->closes.fetch_add(1);
  }
}

Result<WireResponse> Router::Attempt(Channel* channel,
                                     const WireRequest& request) {
  std::lock_guard<std::mutex> lock(channel->mu);
  if (channel->state.load() == ChannelState::kIncompatible) {
    return Status::FailedPrecondition("shard " + std::to_string(channel->id) +
                                      ": " + channel->last_error);
  }
  if (!channel->admitted.load()) {
    return Status::Unavailable(
        "shard " + std::to_string(channel->id) +
        " is quarantined awaiting version-converged re-join");
  }
  if (channel->breaker.load() == BreakerState::kOpen) {
    const auto cooled_at =
        channel->opened_at +
        std::chrono::microseconds(config_.breaker_cooldown_micros);
    if (std::chrono::steady_clock::now() < cooled_at) {
      // Fail fast without dialing — and without advancing the breaker: a
      // rejected attempt is not evidence about the shard.
      return Status::Unavailable("shard " + std::to_string(channel->id) +
                                 ": circuit breaker open; cooling down");
    }
    channel->breaker.store(BreakerState::kHalfOpen);
    channel->half_opens.fetch_add(1);
  }
  if (!channel->client.has_value()) {
    Result<ServeClient> connected = ServeClient::Connect(channel->socket_path);
    if (!connected.ok()) {
      channel->state.store(ChannelState::kDown);
      channel->last_error = connected.status().message();
      NoteChannelFailure(channel);
      return connected.status();
    }
    channel->client.emplace(std::move(connected).value());
    channel->hello_checked = false;
  }
  if (!channel->hello_checked) {
    // Version handshake before the first real frame: a peer speaking a
    // different protocol must be refused with a clear error, not allowed to
    // produce undefined framing behavior mid-query.
    WireRequest hello;
    hello.verb = WireRequest::Verb::kHello;
    Result<WireResponse> greeted =
        channel->client->CallWithRetry(hello, config_.retry);
    if (!greeted.ok() || !greeted->status.ok()) {
      const Status status = greeted.ok() ? greeted->status : greeted.status();
      channel->client.reset();
      channel->state.store(ChannelState::kDown);
      channel->last_error = "hello: " + status.message();
      NoteChannelFailure(channel);
      return Status(status.code(), channel->last_error);
    }
    const Status compatible = CheckHello(
        greeted->text, "shard " + std::to_string(channel->id));
    if (!compatible.ok()) {
      // A protocol mismatch is a config error, not transport evidence —
      // the channel is refused permanently, the breaker stays untouched.
      channel->client.reset();
      channel->state.store(ChannelState::kIncompatible);
      channel->last_error = compatible.message();
      return compatible;
    }
    channel->hello_checked = true;
  }
  Result<WireResponse> response =
      channel->client->CallWithRetry(request, config_.retry);
  if (!response.ok()) {
    // CallWithRetry exhausted its budget against a dead transport; drop the
    // connection so the next attempt redials, and let the caller fail over.
    channel->client.reset();
    channel->hello_checked = false;
    channel->state.store(ChannelState::kDown);
    channel->last_error = response.status().message();
    NoteChannelFailure(channel);
  } else {
    // The transport works — a server-side error (shed, bad argument) is
    // not breaker evidence.
    channel->state.store(ChannelState::kUp);
    NoteChannelSuccess(channel);
  }
  return response;
}

Status Router::Quarantine(int shard_id) {
  Channel* channel = FindChannel(shard_id);
  if (channel == nullptr) {
    return Status::NotFound("router: no channel for shard " +
                            std::to_string(shard_id));
  }
  std::lock_guard<std::mutex> lock(channel->mu);
  channel->admitted.store(false);
  channel->client.reset();
  channel->hello_checked = false;
  channel->state.store(ChannelState::kDown);
  channel->last_error = "quarantined by supervisor";
  return Status::OK();
}

Status Router::Readmit(int shard_id) {
  Channel* channel = FindChannel(shard_id);
  if (channel == nullptr) {
    return Status::NotFound("router: no channel for shard " +
                            std::to_string(shard_id));
  }
  std::lock_guard<std::mutex> lock(channel->mu);
  channel->consecutive_failures = 0;
  if (channel->breaker.load() != BreakerState::kClosed) {
    channel->breaker.store(BreakerState::kClosed);
    channel->closes.fetch_add(1);
  }
  channel->client.reset();
  channel->hello_checked = false;
  channel->state.store(ChannelState::kUnknown);
  channel->last_error.clear();
  channel->admitted.store(true);
  return Status::OK();
}

Result<WireResponse> Router::AttemptOnce(Channel* channel,
                                         const WireRequest& request) {
  std::lock_guard<std::mutex> lock(channel->mu);
  if (!channel->client.has_value()) {
    Result<ServeClient> connected = ServeClient::Connect(channel->socket_path);
    if (!connected.ok()) {
      channel->state.store(ChannelState::kDown);
      channel->last_error = connected.status().message();
      return connected.status();
    }
    channel->client.emplace(std::move(connected).value());
    channel->hello_checked = false;
  }
  Result<WireResponse> response = channel->client->Call(request);
  if (!response.ok()) {
    channel->client.reset();
    channel->hello_checked = false;
    channel->state.store(ChannelState::kDown);
    channel->last_error = response.status().message();
  }
  return response;
}

void Router::LaunchAttempt(std::shared_ptr<RangeRace> race, int shard_id,
                           WireRequest subrequest) {
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    ++inflight_;
  }
  {
    std::lock_guard<std::mutex> lock(race->mu);
    ++race->launched;
  }
  subqueries_.fetch_add(1);
  // Detached rather than joined: a hedged loser must not hold the range's
  // answer hostage. The inflight counter keeps the Router alive past every
  // straggler (see ~Router).
  std::thread([this, race = std::move(race), shard_id,
               subrequest = std::move(subrequest)]() mutable {
    Channel* channel = FindChannel(shard_id);
    Result<WireResponse> response =
        channel != nullptr
            ? Attempt(channel, subrequest)
            : Result<WireResponse>(Status::Internal(
                  "router: no channel for shard " + std::to_string(shard_id)));
    {
      std::lock_guard<std::mutex> lock(race->mu);
      ++race->finished;
      if (response.ok() && response->status.ok()) {
        if (!race->winner.has_value()) {
          RangePart part;
          part.row_begin = subrequest.row_begin;
          part.row_end = subrequest.row_end;
          part.version = response->version;
          part.values = std::move(response->values);
          part.scores = std::move(response->scores);
          race->winner = std::move(part);
        }
      } else {
        race->last_failure =
            response.ok() ? response->status : response.status();
      }
    }
    race->cv.notify_all();
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      --inflight_;
    }
    inflight_cv_.notify_all();
  }).detach();
}

Result<RangePart> Router::QueryRange(const WireRequest& request,
                                     const RangeSpec& range) {
  WireRequest subrequest = request;
  subrequest.route = true;
  subrequest.row_begin = range.begin;
  subrequest.row_end = range.end;

  // Failover order: the plan's owner order (primary first), with channels
  // currently known Down demoted to the back — they still get a chance
  // (maybe the shard came back), but never before a live replica — and
  // open-breaker channels behind even those (they fail fast until the
  // cooldown lets a probe through). Quarantined channels are skipped
  // entirely: a restarted shard that has not converged to the fleet's
  // snapshot version must not contribute parts.
  std::vector<int> order;
  order.reserve(range.shards.size());
  const auto channel_pass = [this](int id) -> int {
    Channel* channel = FindChannel(id);
    if (channel == nullptr || !channel->admitted.load()) return -1;
    if (channel->breaker.load() != BreakerState::kClosed) return 2;
    return channel->state.load() == ChannelState::kDown ? 1 : 0;
  };
  for (int pass = 0; pass <= 2; ++pass) {
    for (int id : range.shards) {
      if (channel_pass(id) == pass) order.push_back(id);
    }
  }
  if (order.empty()) {
    // Every owner is quarantined (or missing from the channel set): the
    // "range has no live owner" condition PartialPolicy decides on.
    return Status::Unavailable(
        "router: range " + std::to_string(range.begin) + ":" +
        std::to_string(range.end) + " has no admitted owner");
  }

  auto race = std::make_shared<RangeRace>();
  size_t next_owner = 0;
  LaunchAttempt(race, order[next_owner++], subrequest);

  const bool hedging = config_.hedge_micros > 0;
  std::unique_lock<std::mutex> lock(race->mu);
  for (;;) {
    const size_t seen_finished = race->finished;
    if (race->winner.has_value()) return std::move(*race->winner);
    if (race->finished == race->launched && next_owner >= order.size()) {
      // Every owner tried, every attempt failed.
      return race->last_failure;
    }
    const bool all_launched_failed = race->finished == race->launched;
    if (all_launched_failed && next_owner < order.size()) {
      // Straight failover: the previous attempt(s) failed definitively.
      failovers_.fetch_add(1);
      const int id = order[next_owner++];
      lock.unlock();
      LaunchAttempt(race, id, subrequest);
      lock.lock();
      continue;
    }
    if (hedging && next_owner < order.size()) {
      // Race a slow in-flight attempt with the next replica.
      if (!race->cv.wait_for(
              lock, std::chrono::microseconds(config_.hedge_micros), [&] {
                return race->winner.has_value() ||
                       race->finished > seen_finished;
              })) {
        hedges_.fetch_add(1);
        const int id = order[next_owner++];
        lock.unlock();
        LaunchAttempt(race, id, subrequest);
        lock.lock();
      }
      continue;
    }
    race->cv.wait(lock, [&] {
      return race->winner.has_value() || race->finished > seen_finished;
    });
  }
}

Result<WireResponse> Router::Query(const WireRequest& request) {
  queries_.fetch_add(1);
  if (request.route) {
    failed_.fetch_add(1);
    return Status::InvalidArgument(
        "router: route is a shard-side verb; send match/topk");
  }
  // An unnamed query on a single-pair plan means that pair (mirrors the
  // solo server's "default"); multi-pair plans require pair=NAME.
  std::string pair_name = request.pair;
  if (pair_name.empty()) {
    pair_name = plan_.pairs.size() == 1 ? plan_.pairs[0].name : "default";
  }
  const PairSpec* pair = plan_.FindPair(pair_name);
  if (pair == nullptr) {
    failed_.fetch_add(1);
    return Status::NotFound("router: pair '" + pair_name +
                            "' is not in the shard plan");
  }

  // Scatter: one task per range (the per-range failover/hedging lives in
  // QueryRange). Gather joins all of them — a merge needs every range.
  std::vector<std::future<Result<RangePart>>> futures;
  futures.reserve(pair->ranges.size());
  WireRequest subrequest = request;
  subrequest.pair = pair_name;
  for (const RangeSpec& range : pair->ranges) {
    futures.push_back(std::async(std::launch::async, [this, subrequest,
                                                      &range] {
      return QueryRange(subrequest, range);
    }));
  }
  std::vector<RangePart> parts;
  parts.reserve(futures.size());
  Status first_failure = Status::OK();
  for (std::future<Result<RangePart>>& future : futures) {
    Result<RangePart> part = future.get();
    if (part.ok()) {
      parts.push_back(std::move(part).value());
    } else if (first_failure.ok()) {
      first_failure = part.status();
    }
  }
  const bool degrade =
      config_.partial_policy == PartialPolicy::kDegrade && !parts.empty();
  if (!first_failure.ok() && !degrade) {
    failed_.fetch_add(1);
    return first_failure;
  }

  // The no-mixed-merge guarantee: count refusals so chaos tests can assert
  // zero outside swap windows (merge re-checks and produces the error).
  // Degradation never relaxes this — a partial answer still comes from
  // exactly one snapshot version.
  for (size_t i = 1; i < parts.size(); ++i) {
    if (parts[i].version != parts[0].version) {
      version_mismatches_.fetch_add(1);
      break;
    }
  }
  WireResponse response;
  if (first_failure.ok()) {
    Result<std::vector<int32_t>> merged =
        request.verb == WireRequest::Verb::kMatch
            ? MergeAssignments(pair->rows, parts)
            : MergeTopK(pair->rows, parts);
    if (!merged.ok()) {
      failed_.fetch_add(1);
      return merged.status();
    }
    response.values = std::move(merged).value();
    ok_.fetch_add(1);
  } else {
    // Degraded gather: answer from the ranges that survived, annotate the
    // covered rows. Never counted as ok, never cacheable downstream.
    Result<PartialMerge> merged =
        request.verb == WireRequest::Verb::kMatch
            ? MergeAssignmentsPartial(pair->rows, parts)
            : MergeTopKPartial(pair->rows, parts);
    if (!merged.ok()) {
      failed_.fetch_add(1);
      return merged.status();
    }
    response.values = std::move(merged->values);
    response.coverage = std::move(merged->coverage);
    degraded_.fetch_add(1);
  }
  response.version = parts.empty() ? 0 : parts[0].version;
  return response;
}

Result<std::string> Router::Swap(const WireRequest& request) {
  swap_fanouts_.fetch_add(1);
  const PairSpec* pair = plan_.FindPair(request.pair);
  if (pair == nullptr) {
    swap_failures_.fetch_add(1);
    return Status::NotFound("router: pair '" + request.pair +
                            "' is not in the shard plan");
  }
  // Phase 0 — pick ONE target version for the whole fan-out: probe every
  // owner's health for its current version of the pair and pin
  // max(current) + 1 via the swap's version= floor. Shards whose counters
  // skewed (a previous partial fan-out, a direct shard-side swap) all
  // publish the same pinned version, which is what lets a repair swap
  // re-converge a diverged fleet. An unreachable owner fails the swap
  // BEFORE anything mutates — all-or-nothing starts at the probe.
  std::vector<int> owners;
  uint64_t target_version = request.swap_min_version;
  for (const ShardSpec& shard : plan_.shards) {
    const std::vector<std::string> owned = plan_.PairsOwnedBy(shard.id);
    if (std::find(owned.begin(), owned.end(), request.pair) == owned.end()) {
      continue;
    }
    owners.push_back(shard.id);
    Channel* channel = FindChannel(shard.id);
    WireRequest health;
    health.verb = WireRequest::Verb::kHealth;
    Result<WireResponse> probed = AttemptOnce(channel, health);
    if (!probed.ok() || !probed->status.ok()) {
      swap_failures_.fetch_add(1);
      const Status status = probed.ok() ? probed->status : probed.status();
      return Status::Unavailable(
          "router: swap aborted before any shard mutated — shard " +
          std::to_string(shard.id) + " is unreachable: " + status.message());
    }
    Result<JsonValue> doc = JsonValue::Parse(probed->text);
    if (doc.ok()) {
      const JsonValue* pairs = doc->Find("pairs");
      const JsonValue* current =
          pairs != nullptr ? pairs->Find(request.pair) : nullptr;
      if (current != nullptr &&
          static_cast<uint64_t>(current->AsInt()) + 1 > target_version) {
        target_version = static_cast<uint64_t>(current->AsInt()) + 1;
      }
    }
  }
  if (owners.empty()) {
    swap_failures_.fetch_add(1);
    return Status::Internal("router: no shard owns pair '" + request.pair +
                            "'");
  }

  // Phase 1 — sequential fan-out, never retried (a replayed swap
  // double-publishes). Every owner must confirm the pinned version. On
  // divergence the fleet is left mixed — reads stay safe (the merge refuses
  // mixed versions) and the error names exactly which shards need the
  // repair re-swap.
  WireRequest pinned = request;
  pinned.swap_min_version = target_version;
  std::vector<std::string> outcomes;
  bool uniform = true;
  size_t failures = 0;
  for (const int shard_id : owners) {
    Channel* channel = FindChannel(shard_id);
    Result<WireResponse> response = AttemptOnce(channel, pinned);
    const std::string label = "shard " + std::to_string(shard_id);
    if (!response.ok()) {
      ++failures;
      outcomes.push_back(label + ": " + response.status().message());
      continue;
    }
    if (!response->status.ok()) {
      ++failures;
      outcomes.push_back(label + ": " + response->status.message());
      continue;
    }
    // "swapped <pair> v<N>"
    const std::string& text = response->text;
    const size_t v = text.rfind(" v");
    uint64_t shard_version = 0;
    if (v != std::string::npos) {
      shard_version = std::strtoull(text.c_str() + v + 2, nullptr, 10);
    }
    if (shard_version != target_version) uniform = false;
    outcomes.push_back(label + ": " + text);
  }
  const uint64_t version = target_version;
  if (failures > 0 || !uniform) {
    swap_failures_.fetch_add(1);
    std::string detail;
    for (const std::string& outcome : outcomes) {
      detail += (detail.empty() ? "" : "; ") + outcome;
    }
    return Status::Internal(
        "router: swap fan-out did not converge (" +
        std::to_string(failures) + " failures); reads that span diverged "
        "shards will refuse to merge until a repair swap converges the "
        "fleet. Outcomes: " + detail);
  }
  if (config_.on_swap_converged) {
    // Tell the supervisor what the fleet now serves, so a shard restarted
    // from here on converges onto the swapped files, not the plan's.
    config_.on_swap_converged(request.pair, request.source_path,
                              request.target_path, request.index_path,
                              version);
  }
  return "swapped " + request.pair + " v" + std::to_string(version) + " on " +
         std::to_string(outcomes.size()) + " shards";
}

std::string Router::FleetHealthJson() {
  std::string json = "{\"role\": \"router\", \"protocol\": " +
                     std::to_string(kProtocolVersion);
  json += ", \"router_stats\": " + Stats().ToJson();
  json += ", \"shards\": [";
  WireRequest health;
  health.verb = WireRequest::Verb::kHealth;
  for (size_t i = 0; i < channels_.size(); ++i) {
    Channel* channel = channels_[i].get();
    Result<WireResponse> response = AttemptOnce(channel, health);
    json += (i > 0 ? ", " : "");
    json += "{\"id\": " + std::to_string(channel->id);
    json += ", \"socket\": " + JsonEscape(channel->socket_path);
    json += ", \"state\": \"" +
            std::string(ChannelStateName(
                static_cast<int>(channel->state.load()))) + "\"";
    json += ", \"admitted\": " +
            std::string(channel->admitted.load() ? "true" : "false");
    json += ", \"breaker\": {\"state\": \"" +
            std::string(BreakerStateName(
                static_cast<int>(channel->breaker.load()))) + "\"";
    json += ", \"opens\": " + std::to_string(channel->opens.load());
    json += ", \"half_opens\": " + std::to_string(channel->half_opens.load());
    json += ", \"closes\": " + std::to_string(channel->closes.load()) + "}";
    if (response.ok() && response->status.ok() &&
        JsonValue::Parse(response->text).ok()) {
      json += ", \"health\": " + response->text;
    } else {
      const Status status = !response.ok() ? response.status()
                            : !response->status.ok()
                                ? response->status
                                : Status::Internal("unparseable health JSON");
      json += ", \"error\": " + JsonEscape(status.message());
    }
    json += "}";
  }
  json += "]";
  if (supervisor_status_) {
    json += ", \"supervisor\": " + supervisor_status_();
  }
  json += "}";
  return json;
}

std::string Router::ShardsJson() const {
  std::string json = "{\"plan\": ";
  json += plan_.ToJson();
  json += ", \"channels\": [";
  for (size_t i = 0; i < channels_.size(); ++i) {
    const Channel* channel = channels_[i].get();
    json += (i > 0 ? ", " : "");
    json += "{\"id\": " + std::to_string(channel->id);
    json += ", \"socket\": " + JsonEscape(channel->socket_path);
    json += ", \"state\": \"" +
            std::string(ChannelStateName(
                static_cast<int>(channel->state.load()))) + "\"";
    json += ", \"admitted\": " +
            std::string(channel->admitted.load() ? "true" : "false");
    json += ", \"breaker\": \"" +
            std::string(BreakerStateName(
                static_cast<int>(channel->breaker.load()))) + "\"}";
  }
  json += "]}";
  return json;
}

RouterStatsSnapshot Router::Stats() const {
  RouterStatsSnapshot snap;
  snap.ok = ok_.load();
  snap.failed = failed_.load();
  snap.degraded = degraded_.load();
  snap.queries = queries_.load();
  snap.subqueries = subqueries_.load();
  snap.hedges = hedges_.load();
  snap.failovers = failovers_.load();
  snap.version_mismatches = version_mismatches_.load();
  snap.swap_fanouts = swap_fanouts_.load();
  snap.swap_failures = swap_failures_.load();
  for (const std::unique_ptr<Channel>& channel : channels_) {
    snap.breaker_opens += channel->opens.load();
    snap.breaker_half_opens += channel->half_opens.load();
    snap.breaker_closes += channel->closes.load();
  }
  return snap;
}

std::string RouterHandler::Handle(const std::string& payload,
                                  bool* shutdown) {
  Result<WireRequest> parsed = ParseRequest(payload);
  if (!parsed.ok()) return EncodeErrorResponse(parsed.status());
  switch (parsed->verb) {
    case WireRequest::Verb::kHello:
      return EncodeTextResponse(HelloJson("router"));
    case WireRequest::Verb::kStats:
      return EncodeTextResponse(router_->Stats().ToJson());
    case WireRequest::Verb::kHealth:
      return EncodeTextResponse(router_->FleetHealthJson());
    case WireRequest::Verb::kShards:
      return EncodeTextResponse(router_->ShardsJson());
    case WireRequest::Verb::kShutdown:
      *shutdown = true;
      return EncodeTextResponse("shutting down");
    case WireRequest::Verb::kSwap: {
      Result<std::string> swapped = router_->Swap(*parsed);
      if (!swapped.ok()) return EncodeErrorResponse(swapped.status());
      return EncodeTextResponse(*swapped);
    }
    case WireRequest::Verb::kMatch:
    case WireRequest::Verb::kTopK:
      break;
  }
  Result<WireResponse> response = router_->Query(*parsed);
  if (!response.ok()) return EncodeErrorResponse(response.status());
  if (!response->status.ok()) return EncodeErrorResponse(response->status);
  return EncodeValuesResponse(response->values, response->version, false, 0,
                              0, {}, response->coverage);
}

}  // namespace entmatcher
