#include "fleet/shard_manager.h"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "common/fault.h"
#include "common/json.h"
#include "serve/client.h"
#include "serve/protocol.h"

namespace entmatcher {

namespace {

std::string Substitute(std::string token, const std::string& plan_path,
                       int shard_id, const std::string& socket_path) {
  const auto replace_all = [&token](const std::string& from,
                                    const std::string& to) {
    size_t pos = 0;
    while ((pos = token.find(from, pos)) != std::string::npos) {
      token.replace(pos, from.size(), to);
      pos += to.size();
    }
  };
  replace_all("{plan}", plan_path);
  replace_all("{shard}", std::to_string(shard_id));
  replace_all("{socket}", socket_path);
  return token;
}

/// One protocol-level health probe with a tight budget (no retry — the
/// caller loops).
bool HealthAnswers(const std::string& socket_path) {
  Result<ServeClient> client = ServeClient::Connect(socket_path);
  if (!client.ok()) return false;
  WireRequest health;
  health.verb = WireRequest::Verb::kHealth;
  Result<WireResponse> response = client->Call(health);
  return response.ok() && response->status.ok();
}

}  // namespace

ShardCommand ShardCommand::SelfServe(const std::string& plan_path,
                                     const std::string& self_exe) {
  ShardCommand command;
  command.argv = {self_exe.empty() ? "/proc/self/exe" : self_exe,
                  "fleet",
                  "serve",
                  "--plan={plan}",
                  "--shard={shard}"};
  command.plan_path = plan_path;
  return command;
}

ShardManager::~ShardManager() { StopAll(); }

Status ShardManager::Spawn(Child& child,
                           const std::vector<std::string>& argv) {
  // Prepare the exec vector BEFORE forking: between fork and exec only
  // async-signal-safe calls are allowed (another thread may hold the
  // allocator lock at fork time).
  std::vector<char*> exec_argv;
  exec_argv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    exec_argv.push_back(const_cast<char*>(arg.c_str()));
  }
  exec_argv.push_back(nullptr);

  const pid_t pid = fork();
  if (pid < 0) {
    return Status::Internal(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    // Child. execv or die — _exit, never exit (no atexit handlers from the
    // parent's state).
    execv(exec_argv[0], exec_argv.data());
    _exit(127);
  }
  child.pid = pid;
  child.running = true;
  ++child.spawns;
  return Status::OK();
}

Status ShardManager::Start(const ShardPlan& plan,
                           const ShardCommand& command) {
  EM_RETURN_NOT_OK(plan.Validate());
  if (command.argv.empty()) {
    return Status::InvalidArgument("shard command has no argv");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) {
    return Status::FailedPrecondition("shard manager already started");
  }
  children_.clear();
  for (const ShardSpec& shard : plan.shards) {
    ::unlink(shard.socket_path.c_str());
    Child child;
    child.shard_id = shard.id;
    child.socket_path = shard.socket_path;
    child.argv.reserve(command.argv.size());
    for (const std::string& token : command.argv) {
      child.argv.push_back(
          Substitute(token, command.plan_path, shard.id, shard.socket_path));
    }
    const Status spawned = Spawn(child, child.argv);
    if (!spawned.ok()) {
      // Roll back the children already launched: kill AND reap them, so a
      // failed Start leaves neither zombies nor pids that a later signal
      // could hit after recycling.
      for (Child& launched : children_) {
        if (launched.running) {
          ::kill(launched.pid, SIGKILL);
          int wstatus = 0;
          ::waitpid(launched.pid, &wstatus, 0);
        }
      }
      children_.clear();
      return spawned;
    }
    children_.push_back(std::move(child));
  }
  started_ = true;
  stopping_ = false;
  stop_.store(false);
  reaper_ = std::thread([this] { ReapLoop(); });
  return Status::OK();
}

void ShardManager::ReapLoop() {
  while (!stop_.load()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (Child& child : children_) {
        if (!child.running) continue;
        int wstatus = 0;
        const pid_t reaped = ::waitpid(child.pid, &wstatus, WNOHANG);
        if (reaped == child.pid) {
          child.running = false;
          ++child.exits;
          if (WIFEXITED(wstatus)) {
            child.last_exit_code = WEXITSTATUS(wstatus);
          } else if (WIFSIGNALED(wstatus)) {
            child.last_term_signal = WTERMSIG(wstatus);
          }
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

Status ShardManager::WaitHealthy(uint64_t budget_micros) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(budget_micros);
  for (;;) {
    std::vector<std::pair<int, std::string>> pending;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const Child& child : children_) {
        if (!child.running) {
          return Status::Internal(
              "shard " + std::to_string(child.shard_id) +
              " exited before becoming healthy (exit code " +
              std::to_string(child.last_exit_code) + ", signal " +
              std::to_string(child.last_term_signal) + ")");
        }
        pending.push_back({child.shard_id, child.socket_path});
      }
    }
    std::string unhealthy;
    for (const auto& [id, socket] : pending) {
      if (!HealthAnswers(socket)) {
        unhealthy += (unhealthy.empty() ? "" : ", ") + std::to_string(id);
      }
    }
    if (unhealthy.empty()) return Status::OK();
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::DeadlineExceeded("shards not healthy in time: " +
                                      unhealthy);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
}

Status ShardManager::Kill(int shard_id, int sig) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Child& child : children_) {
    if (child.shard_id != shard_id) continue;
    if (!child.running) {
      return Status::NotFound("shard " + std::to_string(shard_id) +
                              " is not running");
    }
    if (::kill(child.pid, sig) != 0) {
      return Status::Internal(std::string("kill: ") + std::strerror(errno));
    }
    return Status::OK();
  }
  return Status::NotFound("no shard " + std::to_string(shard_id));
}

Status ShardManager::Respawn(int shard_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!started_ || stopping_) {
    return Status::FailedPrecondition(
        "shard manager is " + std::string(started_ ? "stopping" : "stopped") +
        "; respawn refused");
  }
  for (Child& child : children_) {
    if (child.shard_id != shard_id) continue;
    if (child.running) {
      return Status::FailedPrecondition(
          "shard " + std::to_string(shard_id) +
          " is still running (pid " + std::to_string(child.pid) +
          "); respawn requires a reaped exit");
    }
    EM_INJECT_FAULT("fleet.spawn", StatusCode::kInternal);
    ::unlink(child.socket_path.c_str());
    return Spawn(child, child.argv);
  }
  return Status::NotFound("no shard " + std::to_string(shard_id));
}

void ShardManager::StopAll() {
  // One teardown at a time: concurrent StopAll (destructor racing an
  // explicit call) must not double-join the reaper or reap a child twice.
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  std::vector<std::pair<pid_t, std::string>> live;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    // From here on Respawn is refused: the live set below stays the final
    // process set, so no phase of the teardown can signal a pid that a
    // racing restart (or the kernel recycling a reaped pid) replaced.
    stopping_ = true;
    for (const Child& child : children_) {
      if (child.running) live.push_back({child.pid, child.socket_path});
    }
  }
  // Phase 1: polite — the shutdown verb lets a shard drain its queue.
  for (const auto& [pid, socket] : live) {
    Result<ServeClient> client = ServeClient::Connect(socket);
    if (!client.ok()) continue;
    WireRequest request;
    request.verb = WireRequest::Verb::kShutdown;
    (void)client->Call(request);
  }
  // Phase 2: SIGTERM stragglers, grace, then SIGKILL. The reaper thread is
  // still running and does the waitpid bookkeeping.
  const auto grace_end = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(2000);
  for (;;) {
    bool any_running = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const Child& child : children_) {
        if (child.running) any_running = true;
      }
    }
    if (!any_running) break;
    if (std::chrono::steady_clock::now() >= grace_end) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Child& child : children_) {
      if (child.running) {
        ::kill(child.pid, SIGTERM);
      }
    }
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Child& child : children_) {
      if (child.running) {
        ::kill(child.pid, SIGKILL);
      }
    }
  }
  // Final blocking reap so no zombie outlives the manager. The reaper is
  // joined first, so from here this thread is the only waiter — a child
  // the reaper already reaped has running == false and is skipped, never
  // double-waited.
  stop_.store(true);
  if (reaper_.joinable()) reaper_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Child& child : children_) {
      if (!child.running) continue;
      int wstatus = 0;
      const pid_t reaped = ::waitpid(child.pid, &wstatus, 0);
      if (reaped == child.pid) {
        child.running = false;
        ++child.exits;
        if (WIFEXITED(wstatus)) {
          child.last_exit_code = WEXITSTATUS(wstatus);
        } else if (WIFSIGNALED(wstatus)) {
          child.last_term_signal = WTERMSIG(wstatus);
        }
      } else if (reaped < 0 && errno == ECHILD) {
        // Defensive: the pid is gone from our process's child table. Mark
        // it dead without counting an exit we never observed.
        child.running = false;
      }
    }
    started_ = false;
  }
}

std::vector<ShardProcessStatus> ShardManager::Status_() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ShardProcessStatus> out;
  out.reserve(children_.size());
  for (const Child& child : children_) {
    ShardProcessStatus status;
    status.shard_id = child.shard_id;
    status.pid = child.pid;
    status.running = child.running;
    status.exits = child.exits;
    status.spawns = child.spawns;
    status.last_exit_code = child.last_exit_code;
    status.last_term_signal = child.last_term_signal;
    out.push_back(status);
  }
  return out;
}

std::string ShardManager::StatusJson() const {
  const std::vector<ShardProcessStatus> statuses = Status_();
  std::string json = "{\"shards\": [";
  for (size_t i = 0; i < statuses.size(); ++i) {
    const ShardProcessStatus& s = statuses[i];
    json += (i > 0 ? ", " : "");
    json += "{\"id\": " + std::to_string(s.shard_id);
    json += ", \"pid\": " + std::to_string(s.pid);
    json += ", \"running\": " + std::string(s.running ? "true" : "false");
    json += ", \"exits\": " + std::to_string(s.exits);
    json += ", \"spawns\": " + std::to_string(s.spawns);
    json += ", \"last_exit_code\": " + std::to_string(s.last_exit_code);
    json += ", \"last_term_signal\": " + std::to_string(s.last_term_signal);
    json += "}";
  }
  json += "]}";
  return json;
}

}  // namespace entmatcher
