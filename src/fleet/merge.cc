#include "fleet/merge.h"

#include <algorithm>
#include <string>

namespace entmatcher {

namespace {

/// Shared preamble of every merge: non-empty parts, sane ranges, uniform
/// snapshot version. Fills `covered` (size total_rows) with the union of the
/// part ranges; full coverage is only enforced when !allow_partial — the
/// version guarantee is enforced unconditionally, degraded answers included.
Status CheckParts(size_t total_rows, const std::vector<RangePart>& parts,
                  bool allow_partial, std::vector<char>* covered) {
  if (parts.empty()) {
    return Status::Unavailable("merge: no shard answered any range");
  }
  uint64_t version = 0;
  for (const RangePart& part : parts) {
    if (part.row_begin >= part.row_end || part.row_end > total_rows) {
      return Status::Internal(
          "merge: malformed part range " + std::to_string(part.row_begin) +
          ":" + std::to_string(part.row_end) + " over " +
          std::to_string(total_rows) + " rows");
    }
    if (version == 0) version = part.version;
    if (part.version != version) {
      return Status::Unavailable(
          "merge: mixed snapshot versions v" + std::to_string(version) +
          " and v" + std::to_string(part.version) +
          " — refusing to splice answers across a swap; retry");
    }
  }
  covered->assign(total_rows, 0);
  for (const RangePart& part : parts) {
    std::fill(covered->begin() + part.row_begin,
              covered->begin() + part.row_end, 1);
  }
  const size_t missing = static_cast<size_t>(
      std::count(covered->begin(), covered->end(), 0));
  if (missing > 0 && !allow_partial) {
    return Status::Unavailable("merge: " + std::to_string(missing) +
                               " rows unanswered by any shard");
  }
  return Status::OK();
}

/// The sorted disjoint [lo, hi) intervals of the covered mask.
std::vector<std::pair<size_t, size_t>> CoverageIntervals(
    const std::vector<char>& covered) {
  std::vector<std::pair<size_t, size_t>> intervals;
  size_t row = 0;
  while (row < covered.size()) {
    if (!covered[row]) {
      ++row;
      continue;
    }
    size_t end = row;
    while (end < covered.size() && covered[end]) ++end;
    intervals.push_back({row, end});
    row = end;
  }
  return intervals;
}

Result<PartialMerge> MergeAssignmentsImpl(size_t total_rows,
                                          const std::vector<RangePart>& parts,
                                          bool allow_partial) {
  std::vector<char> covered;
  EM_RETURN_NOT_OK(CheckParts(total_rows, parts, allow_partial, &covered));
  PartialMerge out;
  // Uncovered rows (partial mode only) stay -1: indistinguishable from "no
  // match" by value alone, which is why the response-level coverage
  // annotation exists.
  out.values.assign(total_rows, -1);
  std::vector<char> filled(total_rows, 0);
  for (const RangePart& part : parts) {
    const size_t rows = part.row_end - part.row_begin;
    if (part.values.size() != rows) {
      return Status::Internal(
          "merge: assignment part carries " +
          std::to_string(part.values.size()) + " rows for range " +
          std::to_string(part.row_begin) + ":" +
          std::to_string(part.row_end));
    }
    for (size_t i = 0; i < rows; ++i) {
      const size_t row = part.row_begin + i;
      if (filled[row] && out.values[row] != part.values[i]) {
        return Status::Internal(
            "merge: replicas disagree on row " + std::to_string(row) +
            " at the same snapshot version (" +
            std::to_string(out.values[row]) + " vs " +
            std::to_string(part.values[i]) + ")");
      }
      out.values[row] = part.values[i];
      filled[row] = 1;
    }
  }
  out.coverage = CoverageIntervals(covered);
  out.complete = out.coverage.size() == 1 && out.coverage[0].first == 0 &&
                 out.coverage[0].second == total_rows;
  return out;
}

Result<PartialMerge> MergeTopKImpl(size_t total_rows,
                                   const std::vector<RangePart>& parts,
                                   bool allow_partial) {
  std::vector<char> covered;
  EM_RETURN_NOT_OK(CheckParts(total_rows, parts, allow_partial, &covered));
  // Effective k: uniform across parts by construction (every shard clamps
  // the same requested k against the same target row count).
  size_t k_eff = 0;
  for (const RangePart& part : parts) {
    const size_t rows = part.row_end - part.row_begin;
    if (part.values.size() % rows != 0 ||
        part.scores.size() != part.values.size()) {
      return Status::Internal("merge: ragged top-k part for range " +
                              std::to_string(part.row_begin) + ":" +
                              std::to_string(part.row_end));
    }
    const size_t part_k = part.values.size() / rows;
    if (k_eff == 0) k_eff = part_k;
    if (part_k != k_eff) {
      return Status::Internal("merge: parts disagree on effective k (" +
                              std::to_string(k_eff) + " vs " +
                              std::to_string(part_k) + ")");
    }
  }
  if (k_eff == 0) {
    return Status::Internal("merge: top-k parts carry no entries");
  }

  PartialMerge out;
  out.values.assign(total_rows * k_eff, -1);
  struct Candidate {
    float score;
    int32_t id;
  };
  std::vector<Candidate> row_pool;
  for (size_t row = 0; row < total_rows; ++row) {
    if (!covered[row]) continue;  // partial mode: leave the -1 placeholders
    // K-way merge of every part covering this row: collect, order by the
    // serving tie-break (score desc, id asc — RowTopKIndices's order), drop
    // duplicate ids (hedged replicas answer identical lists), keep k_eff.
    row_pool.clear();
    for (const RangePart& part : parts) {
      if (row < part.row_begin || row >= part.row_end) continue;
      const size_t offset = (row - part.row_begin) * k_eff;
      for (size_t j = 0; j < k_eff; ++j) {
        row_pool.push_back(
            {part.scores[offset + j], part.values[offset + j]});
      }
    }
    std::stable_sort(row_pool.begin(), row_pool.end(),
                     [](const Candidate& a, const Candidate& b) {
                       if (a.score != b.score) return a.score > b.score;
                       return a.id < b.id;
                     });
    size_t kept = 0;
    for (const Candidate& candidate : row_pool) {
      if (kept > 0 && out.values[row * k_eff + kept - 1] == candidate.id) {
        continue;  // the same entry from a replica's duplicate list
      }
      out.values[row * k_eff + kept] = candidate.id;
      if (++kept == k_eff) break;
    }
    if (kept != k_eff) {
      return Status::Internal("merge: row " + std::to_string(row) +
                              " merged to " + std::to_string(kept) +
                              " entries, expected " + std::to_string(k_eff));
    }
  }
  out.coverage = CoverageIntervals(covered);
  out.complete = out.coverage.size() == 1 && out.coverage[0].first == 0 &&
                 out.coverage[0].second == total_rows;
  return out;
}

}  // namespace

Result<std::vector<int32_t>> MergeAssignments(
    size_t total_rows, const std::vector<RangePart>& parts) {
  EM_ASSIGN_OR_RETURN(PartialMerge merged,
                      MergeAssignmentsImpl(total_rows, parts, false));
  return std::move(merged.values);
}

Result<std::vector<int32_t>> MergeTopK(size_t total_rows,
                                       const std::vector<RangePart>& parts) {
  EM_ASSIGN_OR_RETURN(PartialMerge merged,
                      MergeTopKImpl(total_rows, parts, false));
  return std::move(merged.values);
}

Result<PartialMerge> MergeAssignmentsPartial(
    size_t total_rows, const std::vector<RangePart>& parts) {
  return MergeAssignmentsImpl(total_rows, parts, true);
}

Result<PartialMerge> MergeTopKPartial(size_t total_rows,
                                      const std::vector<RangePart>& parts) {
  return MergeTopKImpl(total_rows, parts, true);
}

}  // namespace entmatcher
