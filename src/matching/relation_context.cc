#include "matching/relation_context.h"

#include <algorithm>
#include <unordered_set>

#include "la/topk.h"

namespace entmatcher {

namespace {

// Signature index: relation id doubled, +1 for the inverse direction.
size_t Signature(RelationId relation, bool inverse) {
  return 2 * static_cast<size_t>(relation) + (inverse ? 1 : 0);
}

// Distinct incident relation signatures of one entity.
std::vector<size_t> EntitySignatures(const KnowledgeGraph& graph,
                                     EntityId entity) {
  std::vector<size_t> out;
  for (const KnowledgeGraph::Edge& edge : graph.Neighbors(entity)) {
    out.push_back(Signature(edge.relation, edge.inverse));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

Result<RelationCorrespondence> RelationCorrespondence::Learn(
    const KgPairDataset& dataset, const RelationContextOptions& options) {
  if (dataset.split.train.empty()) {
    return Status::FailedPrecondition(
        "RelationCorrespondence: no train links to learn from");
  }
  if (options.smoothing < 0.0) {
    return Status::InvalidArgument(
        "RelationCorrespondence: smoothing must be >= 0");
  }
  RelationCorrespondence model;
  model.num_src_ = 2 * dataset.source.num_relations();
  model.num_tgt_ = 2 * dataset.target.num_relations();
  std::vector<double> counts(model.num_src_ * model.num_tgt_, 0.0);

  for (const EntityPair& pair : dataset.split.train.pairs()) {
    const std::vector<size_t> src_sigs =
        EntitySignatures(dataset.source, pair.source);
    const std::vector<size_t> tgt_sigs =
        EntitySignatures(dataset.target, pair.target);
    // Co-occurrence evidence, normalized per pair so high-degree seeds do
    // not dominate.
    if (src_sigs.empty() || tgt_sigs.empty()) continue;
    const double unit =
        1.0 / static_cast<double>(src_sigs.size() * tgt_sigs.size());
    for (size_t s : src_sigs) {
      for (size_t t : tgt_sigs) {
        counts[s * model.num_tgt_ + t] += unit;
      }
    }
  }

  // Row-normalize with Laplace smoothing into P(target sig | source sig).
  model.table_.assign(counts.size(), 0.0f);
  for (size_t s = 0; s < model.num_src_; ++s) {
    double row_sum = 0.0;
    for (size_t t = 0; t < model.num_tgt_; ++t) {
      row_sum += counts[s * model.num_tgt_ + t];
    }
    const double denom =
        row_sum + options.smoothing * static_cast<double>(model.num_tgt_);
    if (denom <= 0.0) continue;
    for (size_t t = 0; t < model.num_tgt_; ++t) {
      model.table_[s * model.num_tgt_ + t] = static_cast<float>(
          (counts[s * model.num_tgt_ + t] + options.smoothing) / denom);
    }
  }
  return model;
}

float RelationCorrespondence::Probability(RelationId source_relation,
                                          bool source_inverse,
                                          RelationId target_relation,
                                          bool target_inverse) const {
  const size_t s = Signature(source_relation, source_inverse);
  const size_t t = Signature(target_relation, target_inverse);
  if (s >= num_src_ || t >= num_tgt_) return 0.0f;
  return table_[s * num_tgt_ + t];
}

Result<Matrix> RelationContextRescore(const KgPairDataset& dataset,
                                      Matrix scores,
                                      const RelationContextOptions& options) {
  if (scores.rows() != dataset.test_source_entities.size() ||
      scores.cols() != dataset.test_target_entities.size()) {
    return Status::InvalidArgument(
        "RelationContextRescore: score shape does not match candidates");
  }
  if (options.candidates == 0) {
    return Status::InvalidArgument(
        "RelationContextRescore: candidates must be >= 1");
  }
  EM_ASSIGN_OR_RETURN(RelationCorrespondence model,
                      RelationCorrespondence::Learn(dataset, options));

  // Precompute target signature lists once.
  std::vector<std::vector<size_t>> tgt_sigs(dataset.test_target_entities.size());
  for (size_t j = 0; j < tgt_sigs.size(); ++j) {
    tgt_sigs[j] =
        EntitySignatures(dataset.target, dataset.test_target_entities[j]);
  }

  // Normalize the agreement bonus by the raw score spread so `weight` has a
  // stable meaning across metrics.
  float lo = scores.At(0, 0);
  float hi = lo;
  for (size_t i = 0; i < scores.rows(); ++i) {
    for (float v : scores.Row(i)) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  const float bonus_scale =
      static_cast<float>(options.weight) * std::max(hi - lo, 1e-6f);

  const size_t c = std::min(options.candidates, scores.cols());
  const std::vector<uint32_t> candidates = RowTopKIndices(scores, c);
  for (size_t i = 0; i < scores.rows(); ++i) {
    const std::vector<size_t> src_sigs =
        EntitySignatures(dataset.source, dataset.test_source_entities[i]);
    if (src_sigs.empty()) continue;
    float* row = scores.Row(i).data();
    for (size_t p = 0; p < c; ++p) {
      const uint32_t j = candidates[i * c + p];
      const std::vector<size_t>& tsigs = tgt_sigs[j];
      if (tsigs.empty()) continue;
      // Mean over u's signatures of the best corresponding probability
      // among v's signatures.
      double agreement = 0.0;
      for (size_t s : src_sigs) {
        float best = 0.0f;
        for (size_t t : tsigs) {
          // Signatures are already encoded; decode back to table lookup.
          const float prob =
              model.Probability(static_cast<RelationId>(s / 2), (s & 1) != 0,
                                static_cast<RelationId>(t / 2), (t & 1) != 0);
          best = std::max(best, prob);
        }
        agreement += best;
      }
      agreement /= static_cast<double>(src_sigs.size());
      row[j] += bonus_scale * static_cast<float>(agreement);
    }
  }
  return scores;
}

}  // namespace entmatcher
