#ifndef ENTMATCHER_MATCHING_STREAMING_H_
#define ENTMATCHER_MATCHING_STREAMING_H_

#include "common/status.h"
#include "la/matrix.h"
#include "la/similarity.h"
#include "matching/types.h"

namespace entmatcher {

/// Options for the streaming (blocked) matcher.
struct StreamingOptions {
  SimilarityMetric metric = SimilarityMetric::kCosine;
  /// Apply CSLS local scaling (otherwise raw DInf decisions).
  bool use_csls = false;
  /// CSLS neighborhood size.
  size_t csls_k = 1;
  /// Source rows scored per block; workspace is O(block_rows x m).
  size_t block_rows = 256;
  /// Hard cap in bytes on the streaming tile arena (0 = unlimited). A sweep
  /// whose per-block tile cannot fit fails with a clean kResourceExhausted —
  /// no partial assignment is ever returned.
  size_t workspace_budget_bytes = 0;
};

/// Greedy/CSLS matching that never materializes the full n x m score
/// matrix: source rows are scored block by block, with CSLS's row/column
/// statistics accumulated in a first streaming pass.
///
/// This implements the scalability direction the paper closes with
/// (Sec. 6 observation 4, after ClusterEA [15]): DInf/CSLS decisions at
/// O(block x m) workspace instead of O(n x m), enabling paper-scale inputs
/// (70k x 70k would need ~19.6 GB dense but only ~70 MB at block 256).
/// Decisions are bit-identical to the dense pipeline — verified by property
/// tests and the ablation bench.
Result<Assignment> StreamingMatch(const Matrix& source, const Matrix& target,
                                  const StreamingOptions& options);

}  // namespace entmatcher

#endif  // ENTMATCHER_MATCHING_STREAMING_H_
