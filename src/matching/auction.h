#ifndef ENTMATCHER_MATCHING_AUCTION_H_
#define ENTMATCHER_MATCHING_AUCTION_H_

#include "common/status.h"
#include "la/matrix.h"
#include "matching/types.h"

namespace entmatcher {

/// Options for the auction assignment solver.
struct AuctionOptions {
  /// Starting bid increment (scaled down by eps_scaling each round).
  double starting_epsilon = 0.1;
  /// Epsilon-scaling factor per round (0 < f < 1).
  double epsilon_scaling = 0.25;
  /// Final epsilon; with eps < 1/n on integer-ish scores the result is
  /// optimal. Smaller = closer to optimal, more rounds.
  double final_epsilon = 1e-4;
  /// Safety cap on total bidding iterations.
  size_t max_iterations = 50'000'000;
};

/// Bertsekas auction algorithm for the (maximization) assignment problem
/// with epsilon-scaling: unassigned sources bid for their best target at a
/// price premium of eps; prices rise until everyone is assigned. Within
/// n*eps of the optimal total similarity — the classic parallelizable
/// alternative to the Hungarian algorithm (relevant to the paper's
/// CPU-vs-GPU discussion of Hun. vs Sink., insight 1).
///
/// Requires a square score matrix; use HungarianMatch for rectangular
/// inputs (it pads internally).
Result<Assignment> AuctionMatch(const Matrix& scores,
                                const AuctionOptions& options = {});

}  // namespace entmatcher

#endif  // ENTMATCHER_MATCHING_AUCTION_H_
