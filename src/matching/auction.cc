#include "matching/auction.h"

#include <cmath>
#include <limits>
#include <vector>

namespace entmatcher {

Result<Assignment> AuctionMatch(const Matrix& scores,
                                const AuctionOptions& options) {
  if (scores.rows() == 0 || scores.rows() != scores.cols()) {
    return Status::InvalidArgument("AuctionMatch: score matrix must be square");
  }
  if (options.starting_epsilon <= 0.0 || options.final_epsilon <= 0.0 ||
      options.epsilon_scaling <= 0.0 || options.epsilon_scaling >= 1.0) {
    return Status::InvalidArgument("AuctionMatch: invalid epsilon schedule");
  }
  const size_t n = scores.rows();

  std::vector<double> price(n, 0.0);
  std::vector<int32_t> owner(n, -1);          // owner[j]: source owning target j
  std::vector<int32_t> assigned(n, -1);       // assigned[i]: target of source i
  size_t iterations = 0;

  double eps = options.starting_epsilon;
  for (;;) {
    // Each scaling round restarts the assignment but keeps prices, which is
    // what makes epsilon-scaling fast in practice.
    std::fill(owner.begin(), owner.end(), -1);
    std::fill(assigned.begin(), assigned.end(), -1);
    std::vector<uint32_t> unassigned;
    unassigned.reserve(n);
    for (size_t i = 0; i < n; ++i) unassigned.push_back(static_cast<uint32_t>(i));

    while (!unassigned.empty()) {
      if (++iterations > options.max_iterations) {
        return Status::ResourceExhausted(
            "AuctionMatch: iteration cap exceeded (epsilon too small?)");
      }
      const uint32_t i = unassigned.back();
      unassigned.pop_back();

      // Find the best and second-best net value for bidder i.
      const float* row = scores.Row(i).data();
      double best_value = -std::numeric_limits<double>::infinity();
      double second_value = -std::numeric_limits<double>::infinity();
      size_t best_j = 0;
      for (size_t j = 0; j < n; ++j) {
        const double value = static_cast<double>(row[j]) - price[j];
        if (value > best_value) {
          second_value = best_value;
          best_value = value;
          best_j = j;
        } else if (value > second_value) {
          second_value = value;
        }
      }
      // Bid: raise the price so i is indifferent to its second choice,
      // plus the epsilon premium.
      const double increment =
          (second_value == -std::numeric_limits<double>::infinity()
               ? eps
               : best_value - second_value + eps);
      price[best_j] += increment;

      const int32_t previous = owner[best_j];
      owner[best_j] = static_cast<int32_t>(i);
      assigned[i] = static_cast<int32_t>(best_j);
      if (previous >= 0) {
        assigned[static_cast<size_t>(previous)] = -1;
        unassigned.push_back(static_cast<uint32_t>(previous));
      }
    }
    if (eps <= options.final_epsilon) break;
    eps = std::max(options.final_epsilon, eps * options.epsilon_scaling);
  }

  Assignment result;
  result.target_of_source.assign(assigned.begin(), assigned.end());
  return result;
}

}  // namespace entmatcher
