#ifndef ENTMATCHER_MATCHING_RELATION_CONTEXT_H_
#define ENTMATCHER_MATCHING_RELATION_CONTEXT_H_

#include "common/status.h"
#include "kg/dataset.h"
#include "la/matrix.h"

namespace entmatcher {

/// Options for relation-context rescoring.
struct RelationContextOptions {
  /// Candidate columns rescored per source row (the rest keep their score).
  size_t candidates = 20;
  /// Weight of the relation-agreement bonus added to the pairwise score.
  double weight = 0.3;
  /// Laplace smoothing for the relation-correspondence estimates.
  double smoothing = 1.0;
};

/// The relation-correspondence model: soft alignment probabilities between
/// the two KGs' relation vocabularies, estimated from the seed entity pairs
/// (relations that co-occur around aligned entities correspond).
/// Direction (relation as subject vs object side) is part of the signature.
class RelationCorrespondence {
 public:
  /// Estimates correspondences from the dataset's train links.
  static Result<RelationCorrespondence> Learn(
      const KgPairDataset& dataset, const RelationContextOptions& options);

  /// P(target relation signature | source relation signature); 0 when the
  /// pair was never observed around a seed pair.
  float Probability(RelationId source_relation, bool source_inverse,
                    RelationId target_relation, bool target_inverse) const;

  size_t num_source_signatures() const { return num_src_; }
  size_t num_target_signatures() const { return num_tgt_; }

 private:
  RelationCorrespondence() = default;

  // Dense (src signatures x tgt signatures) row-stochastic table; relation
  // vocabularies are small relative to entities so this stays cheap.
  size_t num_src_ = 0;
  size_t num_tgt_ = 0;
  std::vector<float> table_;
};

/// Implements the paper's future direction (6): inject *relation*-level
/// evidence into the entity matching scores. For each source row's top-C
/// candidates, the score is boosted by how well the two entities'
/// incident-relation profiles agree under the learned relation
/// correspondence:
///
///   S'(u, v) = S(u, v) + weight * agreement(u, v)
///   agreement = mean over u's incident relation signatures of the best
///               corresponding probability among v's signatures.
///
/// `scores` is consumed and returned rescored. Rows/columns must match the
/// dataset's test candidate sets.
Result<Matrix> RelationContextRescore(const KgPairDataset& dataset,
                                      Matrix scores,
                                      const RelationContextOptions& options);

}  // namespace entmatcher

#endif  // ENTMATCHER_MATCHING_RELATION_CONTEXT_H_
