#include "matching/greedy_one_to_one.h"

#include <algorithm>
#include <numeric>

#include "common/memory_tracker.h"
#include "la/topk.h"

namespace entmatcher {

Result<Assignment> GreedyOneToOneMatch(const Matrix& scores) {
  if (scores.rows() == 0 || scores.cols() == 0) {
    return Status::InvalidArgument("GreedyOneToOneMatch: empty score matrix");
  }
  const size_t n = scores.rows();
  const size_t m = scores.cols();

  // Sort all cell indices by descending score; the index buffer is the
  // algorithm's dominant workspace.
  ScopedTrackedBytes tracked(n * m * sizeof(uint64_t));
  std::vector<uint64_t> order(n * m);
  std::iota(order.begin(), order.end(), uint64_t{0});
  const float* data = scores.data();
  std::sort(order.begin(), order.end(), [data](uint64_t a, uint64_t b) {
    if (data[a] != data[b]) return data[a] > data[b];
    return a < b;
  });

  Assignment assignment;
  assignment.target_of_source.assign(n, Assignment::kUnmatched);
  std::vector<uint8_t> target_taken(m, 0);
  size_t matched = 0;
  const size_t capacity = std::min(n, m);
  for (uint64_t cell : order) {
    if (matched == capacity) break;
    const size_t i = static_cast<size_t>(cell / m);
    const size_t j = static_cast<size_t>(cell % m);
    if (assignment.target_of_source[i] != Assignment::kUnmatched) continue;
    if (target_taken[j]) continue;
    assignment.target_of_source[i] = static_cast<int32_t>(j);
    target_taken[j] = 1;
    ++matched;
  }
  return assignment;
}

Result<Assignment> MutualBestMatch(const Matrix& scores) {
  if (scores.rows() == 0 || scores.cols() == 0) {
    return Status::InvalidArgument("MutualBestMatch: empty score matrix");
  }
  const std::vector<uint32_t> row_best = RowArgmax(scores);
  // Column argmax via one row-major pass.
  std::vector<int64_t> col_best(scores.cols(), -1);
  {
    std::vector<float> col_best_val(scores.cols(),
                                    -std::numeric_limits<float>::infinity());
    for (size_t i = 0; i < scores.rows(); ++i) {
      const float* row = scores.Row(i).data();
      for (size_t j = 0; j < scores.cols(); ++j) {
        if (row[j] > col_best_val[j]) {
          col_best_val[j] = row[j];
          col_best[j] = static_cast<int64_t>(i);
        }
      }
    }
  }
  Assignment assignment;
  assignment.target_of_source.assign(scores.rows(), Assignment::kUnmatched);
  for (size_t i = 0; i < scores.rows(); ++i) {
    const uint32_t j = row_best[i];
    if (col_best[j] == static_cast<int64_t>(i)) {
      assignment.target_of_source[i] = static_cast<int32_t>(j);
    }
  }
  return assignment;
}

}  // namespace entmatcher
