#ifndef ENTMATCHER_MATCHING_SNAPSHOT_H_
#define ENTMATCHER_MATCHING_SNAPSHOT_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/epoch.h"
#include "common/status.h"
#include "la/kernels/quantized.h"
#include "la/matrix.h"
#include "la/similarity.h"

namespace entmatcher {

class CandidateIndex;

/// An immutable, versioned bundle of everything the read path of matching
/// needs for one (source, target) embedding pair: the embedding matrices, an
/// optional candidate index, the per-metric similarity caches, and the
/// bf16/int8 quantization arms.
///
/// PairSnapshot is the unit of publication in the read-mostly serving
/// architecture: K worker threads execute scores passes against a snapshot
/// concurrently with zero synchronization, because nothing in it ever
/// changes after Build. A hot swap builds a *new* snapshot and publishes it
/// through a SnapshotRegistry; in-flight passes keep reading the version
/// they pinned, so a batch never mixes v and v+1 data.
///
/// The similarity caches and quantization arms are derived data: logically
/// part of the immutable state, but built lazily on first use (a pair served
/// only with cosine never pays for the euclidean cache). Laziness is hidden
/// behind std::call_once, so concurrent first readers race benignly — one
/// builds, the rest wait, every later read is a plain const load. Derived
/// state lives in a Core shared between snapshots of the same pair, so
/// WithIndex (and any future derivation that keeps the embeddings) costs two
/// shared_ptr copies, not a matrix copy or a cache rebuild.
///
/// Lifetime: always held as std::shared_ptr<const PairSnapshot>. The
/// refcount covers owners (registry, scheduler groups, worker engines); the
/// registry's EpochDomain covers *raw borrows* — pointers into the snapshot
/// (the degrade path's rewritten candidate_index, borrowed cache rows) held
/// by passes that own no reference — by deferring the displaced snapshot's
/// release until every pass active at publish time has drained.
class PairSnapshot {
 public:
  /// Validates shapes and wraps the embeddings into version-0 (unpublished)
  /// snapshot. Derived caches start empty.
  static Result<std::shared_ptr<PairSnapshot>> Build(Matrix source,
                                                     Matrix target);

  PairSnapshot(const PairSnapshot&) = delete;
  PairSnapshot& operator=(const PairSnapshot&) = delete;

  /// A sibling snapshot sharing this one's Core (embeddings + derived
  /// caches) with `index` attached (null detaches). Cheap: no matrix copy,
  /// already-built caches stay built.
  std::shared_ptr<PairSnapshot> WithIndex(
      std::shared_ptr<const CandidateIndex> index) const;

  const Matrix& source() const { return core_->source; }
  const Matrix& target() const { return core_->target; }

  /// The attached candidate index, or nullptr. The raw pointer is valid for
  /// the snapshot's lifetime — exactly what MatchOptions::candidate_index
  /// wants, provided the caller pins the snapshot for the query's duration.
  const CandidateIndex* index() const { return index_.get(); }
  const std::shared_ptr<const CandidateIndex>& shared_index() const {
    return index_;
  }

  /// Version stamped at publication (0 = never published). Monotonic per
  /// registry name; the result-cache key and the mixed-batch assertions hang
  /// off it.
  uint64_t version() const { return version_; }

  /// The similarity cache for `metric`, building it on first use. Safe from
  /// any number of threads; after the first call for a metric this is a
  /// wait-free const read.
  const SimilarityCache& EnsureCache(SimilarityMetric metric) const;

  /// The (source, target) quantization pair for `precision` (kBf16 or
  /// kInt8; kFloat32 is a caller bug), building it on first use. A build
  /// failure is sticky: every caller sees the same status.
  Result<const std::pair<QuantizedMatrix, QuantizedMatrix>*> EnsureQuantized(
      ScorePrecision precision) const;

 private:
  friend class SnapshotRegistry;

  /// Embeddings + lazily built derived state, shared between sibling
  /// snapshots (WithIndex). `mutable` + call_once keeps the lazy build
  /// behind a const, thread-safe facade: a PairSnapshot is immutable in the
  /// sense that matters — every read of the same field returns the same
  /// bytes forever.
  struct Core {
    Matrix source;
    Matrix target;

    // One slot per SimilarityMetric value.
    mutable std::array<std::once_flag, 3> cache_once;
    mutable std::array<std::optional<SimilarityCache>, 3> caches;

    // One slot per non-float ScorePrecision (bf16 = 0, int8 = 1).
    mutable std::array<std::once_flag, 2> quantized_once;
    mutable std::array<
        std::optional<std::pair<QuantizedMatrix, QuantizedMatrix>>, 2>
        quantized;
    mutable std::array<Status, 2> quantized_status;
  };

  explicit PairSnapshot(std::shared_ptr<const Core> core,
                        std::shared_ptr<const CandidateIndex> index)
      : core_(std::move(core)), index_(std::move(index)) {}

  std::shared_ptr<const Core> core_;
  std::shared_ptr<const CandidateIndex> index_;
  uint64_t version_ = 0;  // stamped by SnapshotRegistry::Publish
};

/// The publication point of the snapshot architecture: name → current
/// snapshot, with RCU-style retirement of displaced versions.
///
/// Readers Acquire() a shared_ptr under a brief mutex — their batches run
/// entirely against that pinned version. Publish() stamps the next version
/// number, swaps the current pointer, and *retires* its previous reference
/// into the registry's EpochDomain instead of dropping it inline: the
/// displaced snapshot is destroyed only after every pass that was active at
/// publish time (and could hold raw borrows into it) has exited its epoch
/// guard. Build v+1 → publish → drain v → reclaim v, never mid-pass.
class SnapshotRegistry {
 public:
  SnapshotRegistry() = default;
  SnapshotRegistry(const SnapshotRegistry&) = delete;
  SnapshotRegistry& operator=(const SnapshotRegistry&) = delete;

  /// Atomically installs `snapshot` as the current version of `name`,
  /// stamping version = max(previous + 1, min_version) (previous = 0 for a
  /// new name), and retires the displaced snapshot into the epoch domain.
  /// The floor lets a fleet-wide swap pin one target version across shards
  /// whose local counters have skewed (e.g. after a partial fan-out), so a
  /// repair swap can re-converge them. Fault point "snapshot.publish" fires
  /// *before* the swap, so a failed publish leaves the old snapshot serving
  /// untouched. Returns the stamped version.
  Result<uint64_t> Publish(const std::string& name,
                           std::shared_ptr<PairSnapshot> snapshot,
                           uint64_t min_version = 0);

  /// The current snapshot of `name`, or nullptr. The returned reference
  /// keeps the snapshot alive regardless of later publishes.
  std::shared_ptr<const PairSnapshot> Acquire(const std::string& name) const;

  /// Loaded pair names, sorted.
  std::vector<std::string> Names() const;

  /// The reclamation domain guarding raw borrows into published snapshots.
  /// Workers wrap each batch execution in domain().Enter().
  EpochDomain& domain() { return domain_; }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const PairSnapshot>> current_;
  EpochDomain domain_;
};

}  // namespace entmatcher

#endif  // ENTMATCHER_MATCHING_SNAPSHOT_H_
