#include "matching/hungarian_matcher.h"

#include <algorithm>

#include "matching/lap.h"

namespace entmatcher {

Result<Assignment> HungarianMatch(const Matrix& scores, Workspace* workspace) {
  if (scores.rows() == 0 || scores.cols() == 0) {
    return Status::InvalidArgument("HungarianMatch: empty score matrix");
  }
  const size_t n = scores.rows();
  const size_t m = scores.cols();
  const size_t side = std::max(n, m);

  // Cost = score_max - score (minimization); dummy cells cost slightly more
  // than the worst real cell so they are only used when forced.
  float lo = scores.At(0, 0);
  float hi = lo;
  for (size_t i = 0; i < n; ++i) {
    for (float v : scores.Row(i)) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  const float range = hi - lo;
  const float dummy_cost = range + 1.0f;

  // The LAP solver only reads the cost matrix, so an arena buffer can be
  // leased for it and recycled on the next query.
  EM_ASSIGN_OR_RETURN(ScratchMatrix cost_lease,
                      ScratchMatrix::Acquire(workspace, side, side));
  Matrix& cost = cost_lease.get();
  cost.Fill(dummy_cost);
  for (size_t i = 0; i < n; ++i) {
    const float* srow = scores.Row(i).data();
    float* crow = cost.Row(i).data();
    for (size_t j = 0; j < m; ++j) crow[j] = hi - srow[j];
  }

  EM_ASSIGN_OR_RETURN(LapSolution solution, SolveLapMin(cost));

  Assignment assignment;
  assignment.target_of_source.assign(n, Assignment::kUnmatched);
  for (size_t i = 0; i < n; ++i) {
    const int32_t j = solution.col_of_row[i];
    if (j >= 0 && static_cast<size_t>(j) < m) {
      assignment.target_of_source[i] = j;
    }
  }
  return assignment;
}

}  // namespace entmatcher
