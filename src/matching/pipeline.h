#ifndef ENTMATCHER_MATCHING_PIPELINE_H_
#define ENTMATCHER_MATCHING_PIPELINE_H_

#include "common/status.h"
#include "embedding/embedding.h"
#include "kg/dataset.h"
#include "la/matrix.h"
#include "matching/types.h"

namespace entmatcher {

/// Stages 1+2 of the EntMatcher pipeline (paper Fig. 3): derive the pairwise
/// similarity matrix from candidate embeddings under options.metric, then
/// apply the configured score transform.
Result<Matrix> ComputeScores(const Matrix& source, const Matrix& target,
                             const MatchOptions& options);

/// Stage 3: the matching decision on a (possibly transformed) score matrix.
/// Supports kGreedy, kHungarian and kGaleShapley; the RL matcher needs KG
/// context and is reached through RunMatching (or RlMatch directly).
/// Hungarian and Gale–Shapley pad rectangular inputs with dummy nodes (the
/// paper's recipe for unequal entity counts, Sec. 5.1); sources landing on a
/// dummy come back as Assignment::kUnmatched.
Result<Assignment> MatchScores(const Matrix& scores,
                               const MatchOptions& options);

/// Embeddings in, assignment out: ComputeScores followed by MatchScores.
/// This is the library's core entry point for users who manage their own
/// candidate sets. Not usable with matcher == kRl (needs KG context).
Result<Assignment> MatchEmbeddings(const Matrix& source, const Matrix& target,
                                   const MatchOptions& options);

/// A full dataset-level matching run: timing and deterministic workspace
/// accounting around the complete pipeline, with entity-level output.
struct MatchRun {
  /// Row/column assignment over the dataset's test candidate sets.
  Assignment assignment;
  /// The predicted entity pairs (rows/cols mapped back to entity ids).
  AlignmentSet predicted;
  /// Wall-clock seconds of the matching stage (scores + transform + decision).
  double seconds = 0.0;
  /// Peak tracked workspace allocated by the matching stage, in bytes.
  size_t peak_workspace_bytes = 0;
};

/// Extracts the dataset's test candidate embeddings, runs the configured
/// pipeline (including the RL matcher), and maps the assignment back to
/// entity pairs.
Result<MatchRun> RunMatching(const KgPairDataset& dataset,
                             const EmbeddingPair& embeddings,
                             const MatchOptions& options);

}  // namespace entmatcher

#endif  // ENTMATCHER_MATCHING_PIPELINE_H_
