#ifndef ENTMATCHER_MATCHING_PIPELINE_H_
#define ENTMATCHER_MATCHING_PIPELINE_H_

#include "common/status.h"
#include "embedding/embedding.h"
#include "kg/dataset.h"
#include "la/matrix.h"
#include "la/workspace.h"
#include "matching/types.h"

namespace entmatcher {

/// Stages 1+2 of the EntMatcher pipeline (paper Fig. 3): derive the pairwise
/// similarity matrix from candidate embeddings under options.metric, then
/// apply the configured score transform (in place on the freshly computed
/// scores).
Result<Matrix> ComputeScores(const Matrix& source, const Matrix& target,
                             const MatchOptions& options);

/// Stage 3: the matching decision on a (possibly transformed) score matrix.
/// Supports kGreedy, kHungarian and kGaleShapley; the RL matcher needs KG
/// context and is reached through RunMatching (or RlMatch directly).
/// Hungarian and Gale–Shapley pad rectangular inputs with dummy nodes (the
/// paper's recipe for unequal entity counts, Sec. 5.1); sources landing on a
/// dummy come back as Assignment::kUnmatched.
Result<Assignment> MatchScores(const Matrix& scores,
                               const MatchOptions& options);

/// Same, drawing the decision stage's matrix-scale buffers (padded cost
/// matrix, preference tables) from `workspace`. The engine's query path;
/// null workspace behaves exactly like the two-argument overload.
Result<Assignment> MatchScores(const Matrix& scores,
                               const MatchOptions& options,
                               Workspace* workspace);

/// Embeddings in, assignment out. A thin wrapper that builds a single-query
/// MatchEngine and runs it — repeated-evaluation callers should hold a
/// MatchEngine (matching/engine.h) instead and amortize the preparation.
/// Honors options.workspace_budget_bytes (kResourceExhausted when the query
/// cannot fit). Not usable with matcher == kRl (needs KG context).
Result<Assignment> MatchEmbeddings(const Matrix& source, const Matrix& target,
                                   const MatchOptions& options);

/// A full dataset-level matching run: timing and deterministic workspace
/// accounting around the complete pipeline, with entity-level output.
struct MatchRun {
  /// Row/column assignment over the dataset's test candidate sets.
  Assignment assignment;
  /// The predicted entity pairs (rows/cols mapped back to entity ids).
  AlignmentSet predicted;
  /// Wall-clock seconds of the matching stage (scores + transform + decision).
  double seconds = 0.0;
  /// Peak tracked workspace allocated by the matching stage, in bytes.
  /// Arena leases and owned buffers account identically, so this metric is
  /// the same whether the run reused a warm engine's buffers or started
  /// cold.
  size_t peak_workspace_bytes = 0;
  /// Peak bytes leased from the engine's workspace arena during the run
  /// (0 for the kRl path, which does not run through an engine).
  size_t arena_high_water_bytes = 0;
};

/// Maps a candidate-space assignment (rows/columns over the dataset's test
/// candidate sets) back to entity pairs.
AlignmentSet AssignmentToPairs(const KgPairDataset& dataset,
                               const Assignment& assignment);

/// Extracts the dataset's test candidate embeddings, runs the configured
/// pipeline (including the RL matcher), and maps the assignment back to
/// entity pairs.
Result<MatchRun> RunMatching(const KgPairDataset& dataset,
                             const EmbeddingPair& embeddings,
                             const MatchOptions& options);

}  // namespace entmatcher

#endif  // ENTMATCHER_MATCHING_PIPELINE_H_
