#include "matching/partitioned.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "la/kmeans.h"
#include "matching/engine.h"
#include "matching/pipeline.h"

namespace entmatcher {

std::vector<size_t> Partitioning::BlockCells() const {
  std::vector<size_t> src_count(num_partitions, 0);
  std::vector<size_t> tgt_count(num_partitions, 0);
  for (uint32_t p : partition_of_source) ++src_count[p];
  for (uint32_t p : partition_of_target) ++tgt_count[p];
  std::vector<size_t> cells(num_partitions, 0);
  for (size_t p = 0; p < num_partitions; ++p) {
    cells[p] = src_count[p] * tgt_count[p];
  }
  return cells;
}

size_t Partitioning::MaxBlockCells() const {
  size_t max_cells = 0;
  for (size_t cells : BlockCells()) max_cells = std::max(max_cells, cells);
  return max_cells;
}

Result<Partitioning> CoClusterCandidates(const Matrix& source,
                                         const Matrix& target,
                                         const PartitionedOptions& options) {
  if (source.rows() == 0 || target.rows() == 0) {
    return Status::InvalidArgument("CoClusterCandidates: empty embeddings");
  }
  if (source.cols() != target.cols()) {
    return Status::InvalidArgument(
        "CoClusterCandidates: embedding dims differ");
  }
  if (options.num_partitions == 0) {
    return Status::InvalidArgument(
        "CoClusterCandidates: num_partitions must be >= 1");
  }
  const size_t n = source.rows();
  const size_t m = target.rows();
  const size_t k = std::min(options.num_partitions, std::min(n, m));

  // Stack both sides so matching entities co-cluster.
  Matrix stacked(n + m, source.cols());
  for (size_t i = 0; i < n; ++i) {
    std::copy(source.Row(i).begin(), source.Row(i).end(),
              stacked.Row(i).begin());
  }
  for (size_t j = 0; j < m; ++j) {
    std::copy(target.Row(j).begin(), target.Row(j).end(),
              stacked.Row(n + j).begin());
  }
  Rng rng(options.seed);
  const std::vector<uint32_t> clusters =
      CosineKMeans(stacked, k, options.kmeans_iterations, &rng).assignment;

  Partitioning partitioning;
  partitioning.num_partitions = k;
  partitioning.partition_of_source.assign(clusters.begin(),
                                          clusters.begin() + n);
  partitioning.partition_of_target.assign(clusters.begin() + n,
                                          clusters.end());
  return partitioning;
}

Result<PartitionedMatchResult> PartitionedMatchWithStats(
    const Matrix& source, const Matrix& target,
    const PartitionedOptions& options) {
  if (options.block_options.matcher == MatcherKind::kRl) {
    return Status::InvalidArgument(
        "PartitionedMatch: kRl is not supported inside blocks");
  }
  EM_ASSIGN_OR_RETURN(Partitioning partitioning,
                      CoClusterCandidates(source, target, options));

  PartitionedMatchResult result;
  result.num_partitions = partitioning.num_partitions;
  for (size_t cells : partitioning.BlockCells()) {
    result.largest_block_product = std::max(result.largest_block_product, cells);
    size_t bucket = 0;
    for (size_t v = cells; v > 1; v >>= 1) ++bucket;
    if (bucket >= result.block_cells_histogram.size()) {
      result.block_cells_histogram.resize(bucket + 1, 0);
    }
    ++result.block_cells_histogram[bucket];
  }

  Assignment& assignment = result.assignment;
  assignment.target_of_source.assign(source.rows(), Assignment::kUnmatched);

  const size_t num_partitions = partitioning.num_partitions;
  std::vector<std::vector<uint32_t>> src_rows(num_partitions);
  std::vector<std::vector<uint32_t>> tgt_cols(num_partitions);
  for (size_t i = 0; i < source.rows(); ++i) {
    src_rows[partitioning.partition_of_source[i]].push_back(
        static_cast<uint32_t>(i));
  }
  for (size_t j = 0; j < target.rows(); ++j) {
    tgt_cols[partitioning.partition_of_target[j]].push_back(
        static_cast<uint32_t>(j));
  }

  // Blocks are disjoint in both source rows and target columns, so each block
  // match is independent and they dispatch across the pool; nested kernels
  // inside MatchEmbeddings degrade to serial automatically. Errors are
  // collected per block and reported after the sweep.
  std::vector<Status> block_status(num_partitions, Status::OK());
  ParallelFor(0, num_partitions, 1, [&](size_t begin, size_t end) {
    for (size_t p = begin; p < end; ++p) {
      const std::vector<uint32_t>& rows = src_rows[p];
      const std::vector<uint32_t>& cols = tgt_cols[p];
      if (rows.empty() || cols.empty()) continue;

      Matrix block_src(rows.size(), source.cols());
      for (size_t i = 0; i < rows.size(); ++i) {
        std::copy(source.Row(rows[i]).begin(), source.Row(rows[i]).end(),
                  block_src.Row(i).begin());
      }
      Matrix block_tgt(cols.size(), target.cols());
      for (size_t j = 0; j < cols.size(); ++j) {
        std::copy(target.Row(cols[j]).begin(), target.Row(cols[j]).end(),
                  block_tgt.Row(j).begin());
      }

      // Per-block engine: the gathered block embeddings move straight into
      // it (no second copy) and each block gets its own workspace, so
      // parallel blocks never share arena state.
      Result<MatchEngine> block_engine = MatchEngine::Create(
          std::move(block_src), std::move(block_tgt), options.block_options);
      if (!block_engine.ok()) {
        block_status[p] = block_engine.status();
        continue;
      }
      Result<Assignment> block_result = block_engine->Match();
      if (!block_result.ok()) {
        block_status[p] = block_result.status();
        continue;
      }
      const Assignment& block_assignment = block_result.value();
      for (size_t i = 0; i < rows.size(); ++i) {
        const int32_t j = block_assignment.target_of_source[i];
        if (j == Assignment::kUnmatched) continue;
        assignment.target_of_source[rows[i]] =
            static_cast<int32_t>(cols[static_cast<size_t>(j)]);
      }
    }
  });
  for (const Status& status : block_status) EM_RETURN_NOT_OK(status);
  return result;
}

Result<Assignment> PartitionedMatch(const Matrix& source, const Matrix& target,
                                    const PartitionedOptions& options) {
  EM_ASSIGN_OR_RETURN(PartitionedMatchResult result,
                      PartitionedMatchWithStats(source, target, options));
  return std::move(result.assignment);
}

}  // namespace entmatcher
