#ifndef ENTMATCHER_MATCHING_PROBABILISTIC_H_
#define ENTMATCHER_MATCHING_PROBABILISTIC_H_

#include <vector>

#include "common/status.h"
#include "embedding/embedding.h"
#include "kg/dataset.h"
#include "la/matrix.h"
#include "matching/types.h"

namespace entmatcher {

/// A matching that may assign zero or several targets per source — the
/// output shape required once the 1-to-1 assumption is dropped.
struct MultiAssignment {
  /// targets_of_source[i] lists the accepted target columns for source row i
  /// (possibly empty).
  std::vector<std::vector<uint32_t>> targets_of_source;

  size_t NumLinks() const {
    size_t total = 0;
    for (const auto& t : targets_of_source) total += t.size();
    return total;
  }
};

/// Options for the probabilistic matcher.
struct ProbabilisticOptions {
  /// Softmax temperature over each source row's scores.
  double temperature = 0.05;
  /// Pseudo-score of the explicit "no match" outcome; calibrate with
  /// CalibrateNoMatchScore or set manually.
  double no_match_score = 0.5;
  /// Posterior mass a candidate needs to be emitted as a link.
  double accept_threshold = 0.25;
};

/// Probabilistic embedding matching — the paper's future direction (5): each
/// source row's scores become a softmax posterior over the candidate targets
/// *plus an explicit no-match outcome* whose pseudo-score is
/// `no_match_score`. Every candidate whose posterior exceeds
/// `accept_threshold` is emitted:
///   - none exceed it  => the source is left unmatched (unmatchable setting);
///   - several exceed  => multiple links (non-1-to-1 setting).
Result<MultiAssignment> ProbabilisticMatch(const Matrix& scores,
                                           const ProbabilisticOptions& options);

/// Calibrates `no_match_score` on the dataset's validation links: sweeps
/// candidate thresholds (score quantiles) and returns the one maximizing
/// validation F1. This is how the probabilistic matcher learns to abstain
/// without ever seeing test data.
Result<double> CalibrateNoMatchScore(const KgPairDataset& dataset,
                                     const EmbeddingPair& embeddings,
                                     const ProbabilisticOptions& options);

/// Dataset-level convenience: calibrates on the validation split, scores the
/// test candidates with cosine similarity, matches probabilistically, and
/// returns the predicted entity pairs.
Result<AlignmentSet> RunProbabilisticMatching(const KgPairDataset& dataset,
                                              const EmbeddingPair& embeddings,
                                              ProbabilisticOptions options);

}  // namespace entmatcher

#endif  // ENTMATCHER_MATCHING_PROBABILISTIC_H_
