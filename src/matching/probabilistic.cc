#include "matching/probabilistic.h"

#include <algorithm>
#include <cmath>

#include "la/similarity.h"
#include "la/topk.h"

namespace entmatcher {

Result<MultiAssignment> ProbabilisticMatch(const Matrix& scores,
                                           const ProbabilisticOptions& options) {
  if (scores.rows() == 0 || scores.cols() == 0) {
    return Status::InvalidArgument("ProbabilisticMatch: empty score matrix");
  }
  if (options.temperature <= 0.0) {
    return Status::InvalidArgument("ProbabilisticMatch: temperature must be > 0");
  }
  if (options.accept_threshold <= 0.0 || options.accept_threshold > 1.0) {
    return Status::InvalidArgument(
        "ProbabilisticMatch: accept_threshold must be in (0, 1]");
  }
  const size_t n = scores.rows();
  const size_t m = scores.cols();
  const double inv_t = 1.0 / options.temperature;

  MultiAssignment assignment;
  assignment.targets_of_source.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const float* row = scores.Row(i).data();
    double max_score = options.no_match_score;
    for (size_t j = 0; j < m; ++j) {
      max_score = std::max(max_score, static_cast<double>(row[j]));
    }
    // Softmax over {candidates} + {no-match}, stabilized by max subtraction.
    double z = std::exp((options.no_match_score - max_score) * inv_t);
    for (size_t j = 0; j < m; ++j) {
      z += std::exp((row[j] - max_score) * inv_t);
    }
    for (size_t j = 0; j < m; ++j) {
      const double p = std::exp((row[j] - max_score) * inv_t) / z;
      if (p >= options.accept_threshold) {
        assignment.targets_of_source[i].push_back(static_cast<uint32_t>(j));
      }
    }
  }
  return assignment;
}

namespace {

// F1 of a multi-assignment against gold columns.
double MultiF1(const MultiAssignment& assignment,
               const std::vector<std::vector<uint32_t>>& gold_cols,
               size_t total_gold_links) {
  size_t correct = 0;
  size_t found = 0;
  for (size_t i = 0; i < assignment.targets_of_source.size(); ++i) {
    found += assignment.targets_of_source[i].size();
    for (uint32_t j : assignment.targets_of_source[i]) {
      const auto& gold = gold_cols[i];
      if (std::find(gold.begin(), gold.end(), j) != gold.end()) ++correct;
    }
  }
  if (found == 0 || total_gold_links == 0 || correct == 0) return 0.0;
  const double p = static_cast<double>(correct) / static_cast<double>(found);
  const double r =
      static_cast<double>(correct) / static_cast<double>(total_gold_links);
  return 2.0 * p * r / (p + r);
}

}  // namespace

Result<double> CalibrateNoMatchScore(const KgPairDataset& dataset,
                                     const EmbeddingPair& embeddings,
                                     const ProbabilisticOptions& options) {
  const std::vector<EntityPair>& valid = dataset.split.valid.pairs();
  if (valid.size() < 4) {
    return Status::FailedPrecondition(
        "CalibrateNoMatchScore: need at least 4 validation links");
  }
  // Leave-half-out construction: candidate targets come from the first half
  // of the validation links only, so the second half's sources are
  // unmatchable *by construction* — giving the sweep real abstention cases.
  const size_t half = valid.size() / 2;
  std::vector<EntityId> sources;
  std::vector<EntityId> targets;
  for (const EntityPair& p : valid) sources.push_back(p.source);
  for (size_t i = 0; i < half; ++i) targets.push_back(valid[i].target);

  const Matrix src = ExtractRows(embeddings.source, sources);
  const Matrix tgt = ExtractRows(embeddings.target, targets);
  EM_ASSIGN_OR_RETURN(
      Matrix scores, ComputeSimilarity(src, tgt, SimilarityMetric::kCosine));

  std::vector<std::vector<uint32_t>> gold_cols(sources.size());
  for (size_t i = 0; i < half; ++i) gold_cols[i].push_back(static_cast<uint32_t>(i));

  // Sweep thresholds across the observed row-max range.
  const std::vector<float> row_max = RowMax(scores);
  float lo = row_max[0];
  float hi = row_max[0];
  for (float v : row_max) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  double best_theta = options.no_match_score;
  double best_f1 = -1.0;
  constexpr int kSteps = 24;
  for (int s = 0; s <= kSteps; ++s) {
    ProbabilisticOptions trial = options;
    trial.no_match_score =
        lo + (hi - lo) * static_cast<double>(s) / kSteps;
    EM_ASSIGN_OR_RETURN(MultiAssignment assignment,
                        ProbabilisticMatch(scores, trial));
    const double f1 = MultiF1(assignment, gold_cols, half);
    if (f1 > best_f1) {
      best_f1 = f1;
      best_theta = trial.no_match_score;
    }
  }
  return best_theta;
}

Result<AlignmentSet> RunProbabilisticMatching(const KgPairDataset& dataset,
                                              const EmbeddingPair& embeddings,
                                              ProbabilisticOptions options) {
  EM_ASSIGN_OR_RETURN(options.no_match_score,
                      CalibrateNoMatchScore(dataset, embeddings, options));
  const Matrix src =
      ExtractRows(embeddings.source, dataset.test_source_entities);
  const Matrix tgt =
      ExtractRows(embeddings.target, dataset.test_target_entities);
  EM_ASSIGN_OR_RETURN(
      Matrix scores, ComputeSimilarity(src, tgt, SimilarityMetric::kCosine));
  EM_ASSIGN_OR_RETURN(MultiAssignment assignment,
                      ProbabilisticMatch(scores, options));

  std::vector<EntityPair> predicted;
  for (size_t i = 0; i < assignment.targets_of_source.size(); ++i) {
    for (uint32_t j : assignment.targets_of_source[i]) {
      predicted.push_back(EntityPair{dataset.test_source_entities[i],
                                     dataset.test_target_entities[j]});
    }
  }
  return AlignmentSet(std::move(predicted));
}

}  // namespace entmatcher
