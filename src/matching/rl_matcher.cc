#include "matching/rl_matcher.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <unordered_map>

#include "common/rng.h"
#include "la/similarity.h"
#include "la/topk.h"
#include "nn/mlp.h"

namespace entmatcher {

namespace {

constexpr size_t kNumFeatures = 4;

// Candidate-set-restricted adjacency: neighbors[r] lists the candidate rows
// whose entities are KG-adjacent to candidate row r's entity (sorted).
std::vector<std::vector<uint32_t>> BuildCandidateGraph(
    const KnowledgeGraph& graph, const std::vector<EntityId>& candidates) {
  std::unordered_map<EntityId, uint32_t> row_of_entity;
  row_of_entity.reserve(candidates.size());
  for (size_t r = 0; r < candidates.size(); ++r) {
    row_of_entity.emplace(candidates[r], static_cast<uint32_t>(r));
  }
  std::vector<std::vector<uint32_t>> neighbors(candidates.size());
  for (size_t r = 0; r < candidates.size(); ++r) {
    for (const KnowledgeGraph::Edge& edge : graph.Neighbors(candidates[r])) {
      auto it = row_of_entity.find(edge.neighbor);
      if (it != row_of_entity.end()) neighbors[r].push_back(it->second);
    }
    std::sort(neighbors[r].begin(), neighbors[r].end());
    neighbors[r].erase(std::unique(neighbors[r].begin(), neighbors[r].end()),
                       neighbors[r].end());
  }
  return neighbors;
}

// One matching environment (train or test): scores, candidate actions, the
// coordination state, and the feature builder.
class Environment {
 public:
  Environment(const Matrix& scores,
              std::vector<std::vector<uint32_t>> src_neighbors,
              std::vector<std::vector<uint32_t>> tgt_neighbors,
              size_t num_candidates)
      : scores_(scores),
        src_neighbors_(std::move(src_neighbors)),
        tgt_neighbors_(std::move(tgt_neighbors)),
        num_candidates_(std::min(num_candidates, scores.cols())),
        row_max_(RowMax(scores)),
        col_max_(ColMax(scores)),
        candidates_(RowTopKIndices(scores, num_candidates_)) {
    Reset();
  }

  size_t num_rows() const { return scores_.rows(); }
  size_t num_candidates() const { return num_candidates_; }

  /// Rows ordered by descending best score (the confidence order in which
  /// the sequence decision visits source entities).
  std::vector<uint32_t> ConfidenceOrder() const {
    std::vector<uint32_t> order(scores_.rows());
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [this](uint32_t a, uint32_t b) {
      if (row_max_[a] != row_max_[b]) return row_max_[a] > row_max_[b];
      return a < b;
    });
    return order;
  }

  uint32_t Candidate(size_t row, size_t slot) const {
    return candidates_[row * num_candidates_ + slot];
  }

  /// Fills the policy features of (row, candidate slot).
  void Features(size_t row, size_t slot, float* out) const {
    const uint32_t j = Candidate(row, slot);
    const float s = scores_.At(row, j);
    // Note: all features are unidirectional (Table 2 classifies RL as a
    // unidirectional method) — no reverse/target-side preference is used.
    out[0] = s;
    out[1] = s - row_max_[row];  // local margin
    out[2] = Coherence(row, j);
    out[3] = taken_[j] ? 1.0f : 0.0f;  // exclusiveness signal
  }

  void Assign(size_t row, uint32_t col) {
    assigned_[row] = static_cast<int32_t>(col);
    taken_[col] = 1;
  }

  bool IsTaken(uint32_t col) const { return taken_[col] != 0; }

  void Reset() {
    assigned_.assign(scores_.rows(), -1);
    taken_.assign(scores_.cols(), 0);
  }

  const std::vector<int32_t>& assigned() const { return assigned_; }

 private:
  // Fraction of the row's already-matched KG neighbors whose chosen target
  // is KG-adjacent to candidate j.
  float Coherence(size_t row, uint32_t j) const {
    const auto& nbs = src_neighbors_[row];
    if (nbs.empty()) return 0.0f;
    const auto& tgt_adj = tgt_neighbors_[j];
    size_t matched = 0;
    size_t agree = 0;
    for (uint32_t nb : nbs) {
      const int32_t partner = assigned_[nb];
      if (partner < 0) continue;
      ++matched;
      if (std::binary_search(tgt_adj.begin(), tgt_adj.end(),
                             static_cast<uint32_t>(partner))) {
        ++agree;
      }
    }
    if (matched == 0) return 0.0f;
    return static_cast<float>(agree) / static_cast<float>(matched);
  }

  const Matrix& scores_;
  std::vector<std::vector<uint32_t>> src_neighbors_;
  std::vector<std::vector<uint32_t>> tgt_neighbors_;
  size_t num_candidates_;
  std::vector<float> row_max_;
  std::vector<float> col_max_;
  std::vector<uint32_t> candidates_;
  std::vector<int32_t> assigned_;
  std::vector<uint8_t> taken_;
};

// Softmax over logits.
std::vector<float> Softmax(const std::vector<float>& logits) {
  std::vector<float> probs(logits.size());
  float max_logit = logits[0];
  for (float l : logits) max_logit = std::max(max_logit, l);
  double sum = 0.0;
  for (size_t k = 0; k < logits.size(); ++k) {
    probs[k] = std::exp(logits[k] - max_logit);
    sum += probs[k];
  }
  for (float& p : probs) p = static_cast<float>(p / sum);
  return probs;
}

}  // namespace

Result<Assignment> RlMatch(const KgPairDataset& dataset,
                           const EmbeddingPair& embeddings,
                           const Matrix& test_scores,
                           const RlMatcherOptions& options) {
  if (test_scores.rows() != dataset.test_source_entities.size() ||
      test_scores.cols() != dataset.test_target_entities.size()) {
    return Status::InvalidArgument(
        "RlMatch: test score matrix does not match the candidate sets");
  }
  if (options.num_candidates == 0 || options.epochs == 0) {
    return Status::InvalidArgument("RlMatch: candidates/epochs must be >= 1");
  }

  // Fall back to greedy when there is nothing to train on.
  const std::vector<EntityPair>& train_links = dataset.split.train.pairs();
  if (train_links.empty()) {
    const std::vector<uint32_t> argmax = RowArgmax(test_scores);
    Assignment fallback;
    fallback.target_of_source.assign(argmax.begin(), argmax.end());
    return fallback;
  }

  // ---- Policy network. ----------------------------------------------------
  MlpConfig mlp_config;
  mlp_config.layer_sizes = {kNumFeatures, options.hidden, 1};
  mlp_config.seed = options.seed;
  mlp_config.learning_rate = options.learning_rate;
  EM_ASSIGN_OR_RETURN(Mlp policy, Mlp::Create(mlp_config));
  Rng rng(options.seed ^ 0xf00dULL);

  // ---- Training environment from the seed links. -----------------------------
  const std::vector<EntityId> train_sources = dataset.split.train.SourceEntities();
  const std::vector<EntityId> train_targets = dataset.split.train.TargetEntities();
  const Matrix train_src_emb = ExtractRows(embeddings.source, train_sources);
  const Matrix train_tgt_emb = ExtractRows(embeddings.target, train_targets);
  EM_ASSIGN_OR_RETURN(
      Matrix train_scores,
      ComputeSimilarity(train_src_emb, train_tgt_emb, SimilarityMetric::kCosine));

  // Gold columns per train row (multimap: non-1-to-1 links allowed).
  std::unordered_map<EntityId, uint32_t> tgt_col;
  for (size_t c = 0; c < train_targets.size(); ++c) {
    tgt_col.emplace(train_targets[c], static_cast<uint32_t>(c));
  }
  std::vector<std::vector<uint32_t>> gold_cols(train_sources.size());
  {
    std::unordered_map<EntityId, uint32_t> src_row;
    for (size_t r = 0; r < train_sources.size(); ++r) {
      src_row.emplace(train_sources[r], static_cast<uint32_t>(r));
    }
    for (const EntityPair& link : train_links) {
      gold_cols[src_row.at(link.source)].push_back(tgt_col.at(link.target));
    }
  }

  Environment train_env(
      train_scores, BuildCandidateGraph(dataset.source, train_sources),
      BuildCandidateGraph(dataset.target, train_targets), options.num_candidates);

  // ---- REINFORCE training. -----------------------------------------------------
  const std::vector<uint32_t> train_order = train_env.ConfidenceOrder();
  const size_t num_cand = train_env.num_candidates();
  std::vector<float> features(kNumFeatures);
  std::vector<float> logits(num_cand);
  double baseline = 0.0;
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    train_env.Reset();
    for (uint32_t row : train_order) {
      for (size_t k = 0; k < num_cand; ++k) {
        train_env.Features(row, k, features.data());
        logits[k] = policy.Forward(features)[0];
      }
      const std::vector<float> probs = Softmax(logits);
      // Sample an action.
      double cdf = 0.0;
      const double draw = rng.NextDouble();
      size_t action = num_cand - 1;
      for (size_t k = 0; k < num_cand; ++k) {
        cdf += probs[k];
        if (draw < cdf) {
          action = k;
          break;
        }
      }
      const uint32_t chosen = train_env.Candidate(row, action);
      // Reward: correctness plus the exclusiveness constraint.
      float reward = 0.0f;
      for (uint32_t g : gold_cols[row]) {
        if (g == chosen) {
          reward = 1.0f;
          break;
        }
      }
      if (train_env.IsTaken(chosen)) reward -= 0.3f;
      const float advantage = reward - static_cast<float>(baseline);
      baseline = 0.95 * baseline + 0.05 * reward;

      // Policy gradient: dL/dlogit_k = advantage * (probs_k - 1{k==action}).
      for (size_t k = 0; k < num_cand; ++k) {
        train_env.Features(row, k, features.data());
        policy.Forward(features);
        const float grad =
            advantage * (probs[k] - (k == action ? 1.0f : 0.0f));
        policy.Backward(std::span<const float>(&grad, 1));
      }
      policy.ApplyGradients();
      train_env.Assign(row, chosen);
    }
  }

  // ---- Inference on the test candidates. -------------------------------------------
  Environment test_env(
      test_scores,
      BuildCandidateGraph(dataset.source, dataset.test_source_entities),
      BuildCandidateGraph(dataset.target, dataset.test_target_entities),
      options.num_candidates);

  // Confidence pre-filter: mutual-best pairs with sufficient margin bypass
  // the RL stage.
  const std::vector<uint32_t> row_best = RowArgmax(test_scores);
  std::vector<int32_t> col_best(test_scores.cols(), -1);
  {
    std::vector<float> col_best_val(test_scores.cols(),
                                    -std::numeric_limits<float>::infinity());
    for (size_t i = 0; i < test_scores.rows(); ++i) {
      const float* row = test_scores.Row(i).data();
      for (size_t j = 0; j < test_scores.cols(); ++j) {
        if (row[j] > col_best_val[j]) {
          col_best_val[j] = row[j];
          col_best[j] = static_cast<int32_t>(i);
        }
      }
    }
  }
  std::vector<uint8_t> fixed(test_scores.rows(), 0);
  const size_t test_cand = test_env.num_candidates();
  for (size_t i = 0; i < test_scores.rows(); ++i) {
    const uint32_t j = row_best[i];
    if (col_best[j] != static_cast<int32_t>(i)) continue;
    // Margin vs the second-best candidate of this row.
    float second = -std::numeric_limits<float>::infinity();
    for (size_t k = 0; k < test_cand; ++k) {
      const uint32_t cand = test_env.Candidate(i, k);
      if (cand == j) continue;
      second = std::max(second, test_scores.At(i, cand));
    }
    if (test_scores.At(i, j) - second >= options.confidence_margin) {
      test_env.Assign(i, j);
      fixed[i] = 1;
    }
  }

  // Unsupervised test-time fine-tuning ([65]'s coordination learning): roll
  // the policy over the test sequence and reward score quality, coherence
  // with prior decisions, and exclusiveness, with no gold labels involved.
  const std::vector<uint32_t> test_order = test_env.ConfidenceOrder();
  std::vector<float> test_logits(test_cand);
  double test_baseline = 0.0;
  for (size_t rollout = 0; rollout < options.test_rollouts; ++rollout) {
    // Re-seed the environment with the pre-filtered matches each rollout.
    test_env.Reset();
    for (size_t i = 0; i < test_scores.rows(); ++i) {
      if (fixed[i]) test_env.Assign(i, row_best[i]);
    }
    for (uint32_t row : test_order) {
      if (fixed[row]) continue;
      for (size_t k = 0; k < test_cand; ++k) {
        test_env.Features(row, k, features.data());
        test_logits[k] = policy.Forward(features)[0];
      }
      const std::vector<float> probs = Softmax(test_logits);
      double cdf = 0.0;
      const double draw = rng.NextDouble();
      size_t action = test_cand - 1;
      for (size_t k = 0; k < test_cand; ++k) {
        cdf += probs[k];
        if (draw < cdf) {
          action = k;
          break;
        }
      }
      const uint32_t chosen = test_env.Candidate(row, action);
      // Label-free reward.
      test_env.Features(row, action, features.data());
      float reward = features[1];               // local score margin (<= 0)
      reward += 0.5f * features[2];             // coherence agreement
      if (test_env.IsTaken(chosen)) reward -= 0.5f;  // exclusiveness
      const float advantage = reward - static_cast<float>(test_baseline);
      test_baseline = 0.95 * test_baseline + 0.05 * reward;
      for (size_t k = 0; k < test_cand; ++k) {
        test_env.Features(row, k, features.data());
        policy.Forward(features);
        const float grad =
            advantage * (probs[k] - (k == action ? 1.0f : 0.0f));
        policy.Backward(std::span<const float>(&grad, 1));
      }
      policy.ApplyGradients(0.2);  // smaller steps than supervised training
      test_env.Assign(row, chosen);
    }
  }

  // Greedy policy decode for the remaining sources.
  test_env.Reset();
  for (size_t i = 0; i < test_scores.rows(); ++i) {
    if (fixed[i]) test_env.Assign(i, row_best[i]);
  }
  for (uint32_t row : test_env.ConfidenceOrder()) {
    if (fixed[row]) continue;
    size_t best_k = 0;
    float best_logit = -std::numeric_limits<float>::infinity();
    for (size_t k = 0; k < test_cand; ++k) {
      test_env.Features(row, k, features.data());
      const float logit = policy.Forward(features)[0];
      if (logit > best_logit) {
        best_logit = logit;
        best_k = k;
      }
    }
    test_env.Assign(row, test_env.Candidate(row, best_k));
  }

  Assignment assignment;
  assignment.target_of_source = test_env.assigned();
  return assignment;
}

}  // namespace entmatcher
