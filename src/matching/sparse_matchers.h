#ifndef ENTMATCHER_MATCHING_SPARSE_MATCHERS_H_
#define ENTMATCHER_MATCHING_SPARSE_MATCHERS_H_

#include "common/status.h"
#include "la/sparse.h"
#include "matching/types.h"

namespace entmatcher {

/// True when `kind` can decide over candidate lists. Greedy, greedy 1-to-1,
/// and mutual-best only ever compare scores a row (or column) actually has.
/// Hungarian and Gale–Shapley are refused with kInvalidArgument: both are
/// defined over the complete bipartite graph (a missing cell is not "score
/// -inf", it is "unknown"), so running them on a candidate subset would
/// silently change the problem being solved. RL needs KG context and is
/// refused for the same reason as in the dense engine path.
bool MatcherSupportsSparse(MatcherKind kind);

/// Row-wise argmax over candidate lists (first maximum wins, as dense
/// RowArgmax); rows with no candidates stay kUnmatched.
Result<Assignment> SparseGreedyMatch(const SparseScores& scores);

/// Global greedy 1-to-1 over candidate entries: entries sorted by
/// (value desc, entry id asc) — which, with column-ascending storage, is the
/// dense (value desc, cell id asc) order restricted to present cells.
Result<Assignment> SparseGreedyOneToOneMatch(const SparseScores& scores);

/// Mutual-best filter over candidate entries, with abstention.
Result<Assignment> SparseMutualBestMatch(const SparseScores& scores);

/// Decision-stage dispatch for sparse scores (the sparse MatchScores).
/// Unsupported matchers return kInvalidArgument.
Result<Assignment> MatchSparseScores(const SparseScores& scores,
                                     const MatchOptions& options);

}  // namespace entmatcher

#endif  // ENTMATCHER_MATCHING_SPARSE_MATCHERS_H_
