#include "matching/streaming.h"

#include <algorithm>
#include <limits>

#include "la/topk.h"
#include "la/workspace.h"

namespace entmatcher {

namespace {

// Flat per-column min-heaps holding the k largest values seen per column.
class ColumnTopKAccumulator {
 public:
  ColumnTopKAccumulator(size_t num_columns, size_t k)
      : k_(k),
        heaps_(num_columns * k, -std::numeric_limits<float>::infinity()) {}

  void AddRow(const float* row, size_t num_columns) {
    for (size_t c = 0; c < num_columns; ++c) {
      float* heap = heaps_.data() + c * k_;
      const float v = row[c];
      if (v <= heap[0]) continue;
      heap[0] = v;
      size_t i = 0;
      for (;;) {
        size_t smallest = i;
        const size_t left = 2 * i + 1;
        const size_t right = 2 * i + 2;
        if (left < k_ && heap[left] < heap[smallest]) smallest = left;
        if (right < k_ && heap[right] < heap[smallest]) smallest = right;
        if (smallest == i) break;
        std::swap(heap[i], heap[smallest]);
        i = smallest;
      }
    }
  }

  std::vector<float> Means(size_t num_columns) const {
    std::vector<float> out(num_columns);
    for (size_t c = 0; c < num_columns; ++c) {
      double sum = 0.0;
      for (size_t i = 0; i < k_; ++i) sum += heaps_[c * k_ + i];
      out[c] = static_cast<float>(sum / static_cast<double>(k_));
    }
    return out;
  }

 private:
  size_t k_;
  std::vector<float> heaps_;
};

}  // namespace

Result<Assignment> StreamingMatch(const Matrix& source, const Matrix& target,
                                  const StreamingOptions& options) {
  if (source.rows() == 0 || target.rows() == 0) {
    return Status::InvalidArgument("StreamingMatch: empty embeddings");
  }
  if (source.cols() != target.cols()) {
    return Status::InvalidArgument("StreamingMatch: embedding dims differ");
  }
  if (options.block_rows == 0) {
    return Status::InvalidArgument("StreamingMatch: block_rows must be >= 1");
  }
  if (options.use_csls && options.csls_k == 0) {
    return Status::InvalidArgument("StreamingMatch: csls_k must be >= 1");
  }
  const size_t n = source.rows();
  const size_t m = target.rows();
  const size_t block = options.block_rows;

  // Per-row statistics are built once and sliced per tile; tiles are scored
  // straight from the source rows (no block copy) into a small arena buffer
  // recycled across the sweep. Identical per-element arithmetic to the dense
  // kernel keeps decisions bit-identical to the dense pipeline.
  const SimilarityCache cache =
      BuildSimilarityCache(source, target, options.metric);
  Workspace workspace(options.workspace_budget_bytes);

  std::vector<float> phi_s;
  std::vector<float> phi_t;
  if (options.use_csls) {
    // Pass 1: accumulate the CSLS statistics blockwise.
    const size_t k_rows = std::min(options.csls_k, m);
    const size_t k_cols = std::min(options.csls_k, n);
    phi_s.resize(n);
    ColumnTopKAccumulator col_acc(m, k_cols);
    for (size_t b = 0; b < n; b += block) {
      const size_t e = std::min(n, b + block);
      EM_ASSIGN_OR_RETURN(ScratchMatrix tile,
                          ScratchMatrix::Acquire(&workspace, e - b, m));
      Matrix& scores = tile.get();
      EM_RETURN_NOT_OK(ComputeSimilarityRange(source, target, options.metric,
                                              cache, b, e, &scores));
      const std::vector<float> row_phi = RowTopKMean(scores, k_rows);
      std::copy(row_phi.begin(), row_phi.end(), phi_s.begin() + b);
      for (size_t r = 0; r < scores.rows(); ++r) {
        col_acc.AddRow(scores.Row(r).data(), m);
      }
    }
    phi_t = col_acc.Means(m);
  }

  // Pass 2 (or the only pass): blockwise argmax decisions.
  Assignment assignment;
  assignment.target_of_source.assign(n, Assignment::kUnmatched);
  for (size_t b = 0; b < n; b += block) {
    const size_t e = std::min(n, b + block);
    EM_ASSIGN_OR_RETURN(ScratchMatrix tile,
                        ScratchMatrix::Acquire(&workspace, e - b, m));
    Matrix& scores = tile.get();
    EM_RETURN_NOT_OK(ComputeSimilarityRange(source, target, options.metric,
                                            cache, b, e, &scores));
    for (size_t r = 0; r < scores.rows(); ++r) {
      const float* row = scores.Row(r).data();
      size_t best = 0;
      float best_score = -std::numeric_limits<float>::infinity();
      for (size_t j = 0; j < m; ++j) {
        const float s = options.use_csls
                            ? 2.0f * row[j] - phi_s[b + r] - phi_t[j]
                            : row[j];
        if (s > best_score) {
          best_score = s;
          best = j;
        }
      }
      assignment.target_of_source[b + r] = static_cast<int32_t>(best);
    }
  }
  return assignment;
}

}  // namespace entmatcher
