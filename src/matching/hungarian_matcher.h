#ifndef ENTMATCHER_MATCHING_HUNGARIAN_MATCHER_H_
#define ENTMATCHER_MATCHING_HUNGARIAN_MATCHER_H_

#include "common/status.h"
#include "la/matrix.h"
#include "matching/types.h"

namespace entmatcher {

/// Hungarian embedding matching (paper Sec. 3.5): maximizes the sum of
/// pairwise scores of the matched pairs under the 1-to-1 constraint by
/// solving a linear assignment problem on the negated scores.
///
/// Rectangular inputs are padded to square with dummy rows/columns whose
/// score is below every real score (the paper's dummy-node recipe for the
/// unmatchable setting, Sec. 5.1); sources assigned to dummy columns come
/// back as Assignment::kUnmatched.
Result<Assignment> HungarianMatch(const Matrix& scores);

}  // namespace entmatcher

#endif  // ENTMATCHER_MATCHING_HUNGARIAN_MATCHER_H_
