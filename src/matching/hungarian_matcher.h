#ifndef ENTMATCHER_MATCHING_HUNGARIAN_MATCHER_H_
#define ENTMATCHER_MATCHING_HUNGARIAN_MATCHER_H_

#include "common/status.h"
#include "la/matrix.h"
#include "la/workspace.h"
#include "matching/types.h"

namespace entmatcher {

/// Hungarian embedding matching (paper Sec. 3.5): maximizes the sum of
/// pairwise scores of the matched pairs under the 1-to-1 constraint by
/// solving a linear assignment problem on the negated scores.
///
/// Rectangular inputs are padded to square with dummy rows/columns whose
/// score is below every real score (the paper's dummy-node recipe for the
/// unmatchable setting, Sec. 5.1); sources assigned to dummy columns come
/// back as Assignment::kUnmatched. The padded max(n,m)² cost matrix — the
/// only full-matrix copy this matcher makes — comes from `workspace` when
/// one is supplied, so engine queries reuse it across calls.
Result<Assignment> HungarianMatch(const Matrix& scores,
                                  Workspace* workspace = nullptr);

}  // namespace entmatcher

#endif  // ENTMATCHER_MATCHING_HUNGARIAN_MATCHER_H_
