#ifndef ENTMATCHER_MATCHING_GALE_SHAPLEY_H_
#define ENTMATCHER_MATCHING_GALE_SHAPLEY_H_

#include "common/status.h"
#include "la/matrix.h"
#include "la/workspace.h"
#include "matching/types.h"

namespace entmatcher {

/// Stable embedding matching (paper Sec. 3.6): sources propose in descending
/// pairwise-score order; targets hold their best proposer by their own score
/// ranking (Gale–Shapley deferred acceptance). The result is a stable,
/// source-optimal matching.
///
/// Complexity matches Table 2: O(n^2 log n) time (both sides' full
/// preference rankings are materialized) and a deliberately heavy O(n^2)
/// index footprint — the paper singles SMat out as the least space-efficient
/// algorithm, which is what sinks it at DWY100K scale.
///
/// Rectangular inputs are supported: when there are more sources than
/// targets, the overflow sources end up kUnmatched.
///
/// The three preference tables come from `workspace` when one is supplied
/// (engine queries recycle them); otherwise they are owned vectors whose
/// bytes are registered with MemoryTracker for the duration — both paths
/// account identical byte totals, so peak metrics do not depend on reuse.
Result<Assignment> GaleShapleyMatch(const Matrix& scores,
                                    Workspace* workspace = nullptr);

}  // namespace entmatcher

#endif  // ENTMATCHER_MATCHING_GALE_SHAPLEY_H_
