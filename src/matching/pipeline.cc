#include "matching/pipeline.h"

#include <algorithm>

#include "common/memory_tracker.h"
#include "common/timer.h"
#include "la/similarity.h"
#include "matching/engine.h"
#include "matching/gale_shapley.h"
#include "matching/greedy.h"
#include "matching/greedy_one_to_one.h"
#include "matching/hungarian_matcher.h"
#include "matching/rl_matcher.h"
#include "matching/transforms.h"

namespace entmatcher {

Result<Matrix> ComputeScores(const Matrix& source, const Matrix& target,
                             const MatchOptions& options) {
  EM_ASSIGN_OR_RETURN(Matrix scores,
                      ComputeSimilarity(source, target, options.metric));
  EM_RETURN_NOT_OK(ApplyScoreTransformInPlace(&scores, options));
  return scores;
}

Result<Assignment> MatchScores(const Matrix& scores,
                               const MatchOptions& options) {
  return MatchScores(scores, options, /*workspace=*/nullptr);
}

Result<Assignment> MatchScores(const Matrix& scores,
                               const MatchOptions& options,
                               Workspace* workspace) {
  switch (options.matcher) {
    case MatcherKind::kGreedy:
      return GreedyMatch(scores);
    case MatcherKind::kHungarian:
      return HungarianMatch(scores, workspace);
    case MatcherKind::kGaleShapley:
      return GaleShapleyMatch(scores, workspace);
    case MatcherKind::kGreedyOneToOne:
      return GreedyOneToOneMatch(scores);
    case MatcherKind::kMutualBest:
      return MutualBestMatch(scores);
    case MatcherKind::kRl:
      return Status::InvalidArgument(
          "the RL matcher needs KG context; use RunMatching or RlMatch");
  }
  return Status::InvalidArgument("unknown matcher kind");
}

Result<Assignment> MatchEmbeddings(const Matrix& source, const Matrix& target,
                                   const MatchOptions& options) {
  if (options.matcher == MatcherKind::kRl) {
    return Status::InvalidArgument(
        "the RL matcher needs KG context; use RunMatching or RlMatch");
  }
  EM_ASSIGN_OR_RETURN(MatchEngine engine,
                      MatchEngine::Create(source, target, options));
  return engine.Match();
}

AlignmentSet AssignmentToPairs(const KgPairDataset& dataset,
                               const Assignment& assignment) {
  std::vector<EntityPair> predicted;
  predicted.reserve(assignment.NumMatched());
  for (size_t i = 0; i < assignment.size(); ++i) {
    const int32_t j = assignment.target_of_source[i];
    if (j == Assignment::kUnmatched) continue;
    predicted.push_back(
        EntityPair{dataset.test_source_entities[i],
                   dataset.test_target_entities[static_cast<size_t>(j)]});
  }
  return AlignmentSet(std::move(predicted));
}

Result<MatchRun> RunMatching(const KgPairDataset& dataset,
                             const EmbeddingPair& embeddings,
                             const MatchOptions& options) {
  if (dataset.test_source_entities.empty() ||
      dataset.test_target_entities.empty()) {
    return Status::FailedPrecondition(
        "RunMatching: dataset has no test candidates (call "
        "PopulateTestCandidates)");
  }

  Matrix source = ExtractRows(embeddings.source, dataset.test_source_entities);
  Matrix target = ExtractRows(embeddings.target, dataset.test_target_entities);

  // The measured region starts after candidate extraction: a session that
  // extracted its candidates at Create time must report the same per-query
  // peak as this one-shot path.
  MemoryTracker& tracker = MemoryTracker::Global();
  const size_t baseline_bytes = tracker.current_bytes();
  tracker.ResetPeak();
  Timer timer;

  MatchRun run;
  if (options.matcher == MatcherKind::kRl) {
    EM_ASSIGN_OR_RETURN(Matrix scores,
                        ComputeSimilarity(source, target, options.metric));
    EM_ASSIGN_OR_RETURN(run.assignment,
                        RlMatch(dataset, embeddings, scores, options.rl));
  } else {
    EM_ASSIGN_OR_RETURN(
        MatchEngine engine,
        MatchEngine::Create(std::move(source), std::move(target), options));
    EM_ASSIGN_OR_RETURN(run.assignment, engine.Match());
    run.arena_high_water_bytes = engine.workspace().high_water_bytes();
  }

  run.seconds = timer.ElapsedSeconds();
  const MemoryTracker::Stats stats = tracker.stats();
  const size_t tracked_peak =
      stats.peak_bytes > baseline_bytes ? stats.peak_bytes - baseline_bytes : 0;
  // Arena leases mirror into the tracker, so the two agree; max() guards the
  // metric if a future caller measures around a pre-warmed engine whose
  // buffers predate the baseline.
  run.peak_workspace_bytes = std::max(tracked_peak, run.arena_high_water_bytes);

  run.predicted = AssignmentToPairs(dataset, run.assignment);
  return run;
}

}  // namespace entmatcher
