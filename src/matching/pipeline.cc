#include "matching/pipeline.h"

#include "common/memory_tracker.h"
#include "common/timer.h"
#include "la/similarity.h"
#include "matching/gale_shapley.h"
#include "matching/greedy.h"
#include "matching/greedy_one_to_one.h"
#include "matching/hungarian_matcher.h"
#include "matching/rl_matcher.h"
#include "matching/transforms.h"

namespace entmatcher {

Result<Matrix> ComputeScores(const Matrix& source, const Matrix& target,
                             const MatchOptions& options) {
  EM_ASSIGN_OR_RETURN(Matrix scores,
                      ComputeSimilarity(source, target, options.metric));
  return ApplyScoreTransform(std::move(scores), options);
}

Result<Assignment> MatchScores(const Matrix& scores,
                               const MatchOptions& options) {
  switch (options.matcher) {
    case MatcherKind::kGreedy:
      return GreedyMatch(scores);
    case MatcherKind::kHungarian:
      return HungarianMatch(scores);
    case MatcherKind::kGaleShapley:
      return GaleShapleyMatch(scores);
    case MatcherKind::kGreedyOneToOne:
      return GreedyOneToOneMatch(scores);
    case MatcherKind::kMutualBest:
      return MutualBestMatch(scores);
    case MatcherKind::kRl:
      return Status::InvalidArgument(
          "the RL matcher needs KG context; use RunMatching or RlMatch");
  }
  return Status::InvalidArgument("unknown matcher kind");
}

Result<Assignment> MatchEmbeddings(const Matrix& source, const Matrix& target,
                                   const MatchOptions& options) {
  if (options.matcher == MatcherKind::kRl) {
    return Status::InvalidArgument(
        "the RL matcher needs KG context; use RunMatching or RlMatch");
  }
  EM_ASSIGN_OR_RETURN(Matrix scores, ComputeScores(source, target, options));
  return MatchScores(scores, options);
}

Result<MatchRun> RunMatching(const KgPairDataset& dataset,
                             const EmbeddingPair& embeddings,
                             const MatchOptions& options) {
  if (dataset.test_source_entities.empty() ||
      dataset.test_target_entities.empty()) {
    return Status::FailedPrecondition(
        "RunMatching: dataset has no test candidates (call "
        "PopulateTestCandidates)");
  }

  MemoryTracker& tracker = MemoryTracker::Global();
  const size_t baseline_bytes = tracker.current_bytes();
  tracker.ResetPeak();
  Timer timer;

  const Matrix source =
      ExtractRows(embeddings.source, dataset.test_source_entities);
  const Matrix target =
      ExtractRows(embeddings.target, dataset.test_target_entities);

  MatchRun run;
  if (options.matcher == MatcherKind::kRl) {
    EM_ASSIGN_OR_RETURN(Matrix scores,
                        ComputeSimilarity(source, target, options.metric));
    EM_ASSIGN_OR_RETURN(run.assignment,
                        RlMatch(dataset, embeddings, scores, options.rl));
  } else {
    EM_ASSIGN_OR_RETURN(Matrix scores, ComputeScores(source, target, options));
    EM_ASSIGN_OR_RETURN(run.assignment, MatchScores(scores, options));
  }

  run.seconds = timer.ElapsedSeconds();
  const size_t peak = tracker.peak_bytes();
  run.peak_workspace_bytes = peak > baseline_bytes ? peak - baseline_bytes : 0;

  std::vector<EntityPair> predicted;
  predicted.reserve(run.assignment.NumMatched());
  for (size_t i = 0; i < run.assignment.size(); ++i) {
    const int32_t j = run.assignment.target_of_source[i];
    if (j == Assignment::kUnmatched) continue;
    predicted.push_back(
        EntityPair{dataset.test_source_entities[i],
                   dataset.test_target_entities[static_cast<size_t>(j)]});
  }
  run.predicted = AlignmentSet(std::move(predicted));
  return run;
}

}  // namespace entmatcher
