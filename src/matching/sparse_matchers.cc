#include "matching/sparse_matchers.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "common/memory_tracker.h"
#include "common/thread_pool.h"

namespace entmatcher {

namespace {

Status ValidateSparseScores(const SparseScores& scores, const char* who) {
  if (scores.rows() == 0 || scores.cols() == 0) {
    return Status::InvalidArgument(std::string(who) +
                                   ": empty score matrix");
  }
  return Status::OK();
}

}  // namespace

bool MatcherSupportsSparse(MatcherKind kind) {
  switch (kind) {
    case MatcherKind::kGreedy:
    case MatcherKind::kGreedyOneToOne:
    case MatcherKind::kMutualBest:
      return true;
    case MatcherKind::kHungarian:
    case MatcherKind::kGaleShapley:
    case MatcherKind::kRl:
      return false;
  }
  return false;
}

Result<Assignment> SparseGreedyMatch(const SparseScores& scores) {
  EM_RETURN_NOT_OK(ValidateSparseScores(scores, "SparseGreedyMatch"));
  Assignment assignment;
  assignment.target_of_source.assign(scores.rows(), Assignment::kUnmatched);
  ParallelFor(0, scores.rows(), 32, [&](size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) {
      auto row = scores.RowValues(r);
      if (row.empty()) continue;
      auto cols = scores.RowCols(r);
      // First maximum wins under strict >, the dense RowArgmax convention
      // (entries are column-ascending, so "first" means lowest column).
      size_t best = 0;
      for (size_t p = 1; p < row.size(); ++p) {
        if (row[p] > row[best]) best = p;
      }
      assignment.target_of_source[r] = static_cast<int32_t>(cols[best]);
    }
  });
  return assignment;
}

Result<Assignment> SparseGreedyOneToOneMatch(const SparseScores& scores) {
  EM_RETURN_NOT_OK(ValidateSparseScores(scores, "SparseGreedyOneToOneMatch"));
  const size_t n = scores.rows();
  const size_t m = scores.cols();
  const size_t nnz = scores.nnz();

  // Sort the candidate entries by descending score; the order buffer is the
  // dominant workspace, as in the dense n*m variant.
  ScopedTrackedBytes tracked(nnz * sizeof(uint64_t));
  std::vector<uint64_t> order(nnz);
  std::iota(order.begin(), order.end(), uint64_t{0});
  const float* data = scores.values();
  std::sort(order.begin(), order.end(), [data](uint64_t a, uint64_t b) {
    if (data[a] != data[b]) return data[a] > data[b];
    return a < b;
  });

  std::vector<uint32_t> row_of(nnz);
  const std::vector<size_t>& offsets = scores.row_offsets();
  for (size_t r = 0; r < n; ++r) {
    for (size_t e = offsets[r]; e < offsets[r + 1]; ++e) {
      row_of[e] = static_cast<uint32_t>(r);
    }
  }

  Assignment assignment;
  assignment.target_of_source.assign(n, Assignment::kUnmatched);
  std::vector<uint8_t> target_taken(m, 0);
  size_t matched = 0;
  const size_t capacity = std::min(n, m);
  const uint32_t* cols = scores.col_indices();
  for (uint64_t entry : order) {
    if (matched == capacity) break;
    const size_t i = row_of[entry];
    const size_t j = cols[entry];
    if (assignment.target_of_source[i] != Assignment::kUnmatched) continue;
    if (target_taken[j]) continue;
    assignment.target_of_source[i] = static_cast<int32_t>(j);
    target_taken[j] = 1;
    ++matched;
  }
  return assignment;
}

Result<Assignment> SparseMutualBestMatch(const SparseScores& scores) {
  EM_RETURN_NOT_OK(ValidateSparseScores(scores, "SparseMutualBestMatch"));
  const size_t n = scores.rows();
  const size_t m = scores.cols();

  // Row argmax (first maximum wins), kUnmatched sentinel for empty rows.
  std::vector<int64_t> row_best(n, -1);
  ParallelFor(0, n, 32, [&](size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) {
      auto row = scores.RowValues(r);
      if (row.empty()) continue;
      size_t best = 0;
      for (size_t p = 1; p < row.size(); ++p) {
        if (row[p] > row[best]) best = p;
      }
      row_best[r] = static_cast<int64_t>(scores.RowCols(r)[best]);
    }
  });

  // Column argmax via one row-ascending pass, as the dense variant.
  std::vector<int64_t> col_best(m, -1);
  {
    std::vector<float> col_best_val(m,
                                    -std::numeric_limits<float>::infinity());
    const float* values = scores.values();
    const uint32_t* cols = scores.col_indices();
    const std::vector<size_t>& offsets = scores.row_offsets();
    for (size_t i = 0; i < n; ++i) {
      for (size_t e = offsets[i]; e < offsets[i + 1]; ++e) {
        if (values[e] > col_best_val[cols[e]]) {
          col_best_val[cols[e]] = values[e];
          col_best[cols[e]] = static_cast<int64_t>(i);
        }
      }
    }
  }

  Assignment assignment;
  assignment.target_of_source.assign(n, Assignment::kUnmatched);
  for (size_t i = 0; i < n; ++i) {
    if (row_best[i] < 0) continue;
    const size_t j = static_cast<size_t>(row_best[i]);
    if (col_best[j] == static_cast<int64_t>(i)) {
      assignment.target_of_source[i] = static_cast<int32_t>(j);
    }
  }
  return assignment;
}

Result<Assignment> MatchSparseScores(const SparseScores& scores,
                                     const MatchOptions& options) {
  switch (options.matcher) {
    case MatcherKind::kGreedy:
      return SparseGreedyMatch(scores);
    case MatcherKind::kGreedyOneToOne:
      return SparseGreedyOneToOneMatch(scores);
    case MatcherKind::kMutualBest:
      return SparseMutualBestMatch(scores);
    case MatcherKind::kHungarian:
      return Status::InvalidArgument(
          "Hungarian needs the full cost matrix; it cannot run on candidate "
          "lists — drop the candidate index for this matcher");
    case MatcherKind::kGaleShapley:
      return Status::InvalidArgument(
          "Gale-Shapley needs full preference tables; it cannot run on "
          "candidate lists — drop the candidate index for this matcher");
    case MatcherKind::kRl:
      return Status::InvalidArgument(
          "the RL matcher needs KG context; use RunMatching or RlMatch");
  }
  return Status::InvalidArgument("unknown matcher kind");
}

}  // namespace entmatcher
