#include "matching/gale_shapley.h"

#include <algorithm>
#include <numeric>
#include <optional>

#include "common/memory_tracker.h"

namespace entmatcher {

Result<Assignment> GaleShapleyMatch(const Matrix& scores,
                                    Workspace* workspace) {
  if (scores.rows() == 0 || scores.cols() == 0) {
    return Status::InvalidArgument("GaleShapleyMatch: empty score matrix");
  }
  const size_t n = scores.rows();
  const size_t m = scores.cols();

  // Full preference tables for both sides — the source preference order,
  // the target preference order, and the target rank lookup. Materializing
  // all three is what stable-matching EA implementations do, and it is what
  // makes SMat the least space-efficient algorithm in the paper (Sec. 4.3;
  // infeasible at DWY100K scale in Table 6). Workspace leases register the
  // same byte total with MemoryTracker as the owned-vector fallback does, so
  // the peak metric is reuse-independent.
  std::optional<ScopedTrackedBytes> tracked;
  if (workspace == nullptr) {
    tracked.emplace((n * m + 2 * m * n) * sizeof(uint32_t));
  }
  EM_ASSIGN_OR_RETURN(ScratchIndices src_pref_lease,
                      ScratchIndices::Acquire(workspace, n * m));
  EM_ASSIGN_OR_RETURN(ScratchIndices tgt_pref_lease,
                      ScratchIndices::Acquire(workspace, m * n));
  EM_ASSIGN_OR_RETURN(ScratchIndices tgt_rank_lease,
                      ScratchIndices::Acquire(workspace, m * n));

  // src_pref[i * m + p] = p-th most preferred target of source i.
  const std::span<uint32_t> src_pref = src_pref_lease.get();
  {
    std::vector<uint32_t> idx(m);
    for (size_t i = 0; i < n; ++i) {
      auto row = scores.Row(i);
      std::iota(idx.begin(), idx.end(), 0u);
      std::sort(idx.begin(), idx.end(), [&row](uint32_t a, uint32_t b) {
        if (row[a] != row[b]) return row[a] > row[b];
        return a < b;
      });
      std::copy(idx.begin(), idx.end(), src_pref.begin() + i * m);
    }
  }
  // tgt_pref[j * n + p] = p-th most preferred source of target j;
  // tgt_rank[j * n + i] = rank of source i in target j's preferences
  // (lower = preferred); O(1) comparisons during proposals.
  const std::span<uint32_t> tgt_pref = tgt_pref_lease.get();
  const std::span<uint32_t> tgt_rank = tgt_rank_lease.get();
  {
    std::vector<uint32_t> idx(n);
    for (size_t j = 0; j < m; ++j) {
      std::iota(idx.begin(), idx.end(), 0u);
      std::sort(idx.begin(), idx.end(), [&](uint32_t a, uint32_t b) {
        const float sa = scores.At(a, j);
        const float sb = scores.At(b, j);
        if (sa != sb) return sa > sb;
        return a < b;
      });
      std::copy(idx.begin(), idx.end(), tgt_pref.begin() + j * n);
      for (size_t pos = 0; pos < n; ++pos) {
        tgt_rank[j * n + idx[pos]] = static_cast<uint32_t>(pos);
      }
    }
  }

  std::vector<int32_t> partner_of_target(m, -1);
  std::vector<uint32_t> next_proposal(n, 0);
  Assignment assignment;
  assignment.target_of_source.assign(n, Assignment::kUnmatched);

  // Deferred acceptance: process free sources until each is matched or has
  // exhausted its list.
  std::vector<uint32_t> free_sources(n);
  std::iota(free_sources.begin(), free_sources.end(), 0u);
  while (!free_sources.empty()) {
    const uint32_t i = free_sources.back();
    if (next_proposal[i] >= m) {
      free_sources.pop_back();  // exhausted: stays unmatched
      continue;
    }
    const uint32_t j = src_pref[static_cast<size_t>(i) * m + next_proposal[i]++];
    const int32_t current = partner_of_target[j];
    if (current < 0) {
      partner_of_target[j] = static_cast<int32_t>(i);
      assignment.target_of_source[i] = static_cast<int32_t>(j);
      free_sources.pop_back();
    } else if (tgt_rank[static_cast<size_t>(j) * n + i] <
               tgt_rank[static_cast<size_t>(j) * n +
                        static_cast<size_t>(current)]) {
      // Target j upgrades to source i; the displaced source becomes free.
      partner_of_target[j] = static_cast<int32_t>(i);
      assignment.target_of_source[i] = static_cast<int32_t>(j);
      assignment.target_of_source[static_cast<size_t>(current)] =
          Assignment::kUnmatched;
      free_sources.back() = static_cast<uint32_t>(current);
    }
    // Otherwise i stays free and proposes to its next choice on the next
    // iteration.
  }
  return assignment;
}

}  // namespace entmatcher
