#ifndef ENTMATCHER_MATCHING_PARTITIONED_H_
#define ENTMATCHER_MATCHING_PARTITIONED_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "la/matrix.h"
#include "matching/types.h"

namespace entmatcher {

/// Options for partition-based matching.
struct PartitionedOptions {
  /// Number of partitions (clusters) the candidate space is split into.
  size_t num_partitions = 8;
  /// k-means iterations for the partitioner.
  size_t kmeans_iterations = 10;
  /// Seed for centroid initialization.
  uint64_t seed = 5;
  /// The matching pipeline executed inside each partition.
  MatchOptions block_options;
};

/// Partition assignment produced by the co-clustering step.
struct Partitioning {
  /// partition_of_source[i] / partition_of_target[j] in [0, num_partitions).
  std::vector<uint32_t> partition_of_source;
  std::vector<uint32_t> partition_of_target;
  size_t num_partitions = 0;

  /// (source block x target block) cell product per partition — the score
  /// matrix each block run materializes.
  std::vector<size_t> BlockCells() const;

  /// Largest (source block x target block) product — the dominant score
  /// matrix any block run materializes.
  size_t MaxBlockCells() const;
};

/// Assignment plus the partition statistics a run observed. The histogram is
/// log2-bucketed over block cell products: bucket b counts partitions whose
/// (src rows x tgt cols) product lies in [2^b, 2^(b+1)); empty blocks land
/// in bucket 0. Skew — many near-empty buckets plus one huge one — is the
/// failure mode the candidate index exists to avoid.
struct PartitionedMatchResult {
  Assignment assignment;
  size_t num_partitions = 0;
  size_t largest_block_product = 0;
  std::vector<size_t> block_cells_histogram;
};

/// Co-clusters source and target candidates into shared partitions by
/// running k-means on the *union* of both embedding sets: entities that
/// would match land in the same cluster because their embeddings are close.
/// This is the CPS idea of ClusterEA [15], the scalability exploration the
/// paper points to in Sec. 6 (4).
Result<Partitioning> CoClusterCandidates(const Matrix& source,
                                         const Matrix& target,
                                         const PartitionedOptions& options);

/// Partition-based matching: co-cluster, run the configured pipeline inside
/// every (source-block, target-block) pair independently, and stitch the
/// block assignments together. Peak workspace drops from O(n*m) to
/// O(max-block^2), which is what lets the quadratic-memory algorithms
/// (Sinkhorn, Hungarian) run at scales where the dense formulation cannot.
///
/// The price is recall lost to cross-partition gold pairs — exactly the
/// trade-off [15] manages; the ablation bench quantifies it.
Result<Assignment> PartitionedMatch(const Matrix& source, const Matrix& target,
                                    const PartitionedOptions& options);

/// PartitionedMatch plus the partition-size statistics of the run, so block
/// skew is observable (bench_table6 prints the histogram).
Result<PartitionedMatchResult> PartitionedMatchWithStats(
    const Matrix& source, const Matrix& target,
    const PartitionedOptions& options);

}  // namespace entmatcher

#endif  // ENTMATCHER_MATCHING_PARTITIONED_H_
