#ifndef ENTMATCHER_MATCHING_ENGINE_H_
#define ENTMATCHER_MATCHING_ENGINE_H_

#include <chrono>
#include <memory>
#include <optional>
#include <utility>

#include "common/status.h"
#include "la/matrix.h"
#include "la/similarity.h"
#include "la/sparse.h"
#include "la/workspace.h"
#include "matching/snapshot.h"
#include "matching/types.h"

namespace entmatcher {

/// A reusable matching session over one prepared (source, target) embedding
/// pair.
///
/// The one-shot pipeline (ComputeScores → MatchScores) reallocates every
/// similarity, transform, and decision buffer per call; repeated-evaluation
/// workloads — preset sweeps, blocked matching, serving — pay that cost on
/// every query. A MatchEngine is constructed once and queried many times:
/// after the first query a warm engine performs no further allocation.
///
/// Since the snapshot refactor the engine splits into two halves with very
/// different mutability:
///   - the *read path* — embeddings, candidate index, per-metric similarity
///     caches, quantization arms — lives in an immutable, ref-counted
///     PairSnapshot that any number of engines (on any number of threads)
///     share without synchronization;
///   - the *per-session state* — the workspace arena and the stage deadline
///     — stays private to this engine, which is why an engine itself is
///     still single-threaded.
/// `Create` keeps the classic owning constructor (it builds a private
/// snapshot); `Over` is the serving path: one snapshot, K worker engines.
///
/// Hard invariant: every query is bit-identical to the one-shot
/// MatchEmbeddings path at every thread count (pinned by the engine-reuse
/// suite in tests/matching/engine_test.cc).
///
/// Memory is first-class: each query's matrix-scale needs are declared up
/// front (DeclaredWorkspaceBytes) and pre-checked against the workspace
/// budget from MatchOptions::workspace_budget_bytes, so an infeasible query
/// — the paper's Table 6 "Mem: No" verdict, e.g. SMat at DWY100K scale —
/// fails with a clean kResourceExhausted before touching any buffer, with no
/// partial output.
///
/// Not thread-safe; one engine per thread. Parallel block matching
/// (PartitionedMatch) builds one engine per block; the serving worker pool
/// builds one engine per (worker, pair) over the shared snapshot.
class MatchEngine {
 public:
  /// Prepares a session: takes ownership of the embeddings (wrapping them in
  /// a private snapshot), validates shapes, precomputes options.metric's
  /// similarity statistics, and arms the workspace budget from
  /// options.workspace_budget_bytes (0 = unlimited).
  static Result<MatchEngine> Create(Matrix source, Matrix target,
                                    const MatchOptions& options);

  /// Prepares a session over a shared snapshot — the multi-worker serving
  /// path. The snapshot's embeddings and derived caches are read in place
  /// (and shared with every other engine over the same snapshot); only the
  /// workspace arena is private. `recycled` optionally donates a previous
  /// engine's arena so a worker rebuilding for snapshot v+1 keeps its warm
  /// slabs: it is reused when idle (no outstanding leases), re-armed to
  /// options.workspace_budget_bytes, and otherwise replaced by a fresh one.
  static Result<MatchEngine> Over(std::shared_ptr<const PairSnapshot> snapshot,
                                  const MatchOptions& options,
                                  std::unique_ptr<Workspace> recycled =
                                      nullptr);

  MatchEngine(MatchEngine&&) = default;
  MatchEngine& operator=(MatchEngine&&) = default;
  MatchEngine(const MatchEngine&) = delete;
  MatchEngine& operator=(const MatchEngine&) = delete;

  /// Runs the full pipeline (similarity → transform → decision) with the
  /// session options.
  Result<Assignment> Match() { return Match(options_); }

  /// Same, with per-query options — e.g. several presets through one
  /// session. Similarity statistics for metrics not yet seen are built and
  /// memoized on the snapshot; the budget is the one armed at Create. Not
  /// usable with matcher == kRl (needs KG context; see RunMatching).
  Result<Assignment> Match(const MatchOptions& options);

  /// A leased, transformed score matrix shared by a batch of queries with
  /// the same ScoreSignature: stages 1+2 run once at BeginBatch, then any
  /// number of decision stages run against the shared scores. This is the
  /// serving layer's micro-batching primitive — for B coalesced queries the
  /// O(n·m·d) similarity + transform work is paid once instead of B times.
  /// Each decision is bit-identical to a solo Match with the same options
  /// (both run MatchScores on bit-identical scores).
  ///
  /// Move-only; destruction returns the score lease to the engine's arena.
  /// The engine must outlive the batch, and no other query may run on *this
  /// engine* while a batch is open (the arena is single-threaded by design;
  /// other engines over the same snapshot are unaffected).
  class ScoredBatch {
   public:
    ScoredBatch(ScoredBatch&&) = default;
    ScoredBatch& operator=(ScoredBatch&&) = default;
    ScoredBatch(const ScoredBatch&) = delete;
    ScoredBatch& operator=(const ScoredBatch&) = delete;

    /// The shared transformed score matrix (source.rows × target.rows).
    /// Dense batches only; a sparse batch has no dense matrix (that is the
    /// point) — check is_sparse() first.
    const Matrix& scores() const { return scores_->get(); }

    /// True when the batch was scored over candidate lists (the query
    /// options carried a candidate_index and/or a quantized
    /// score_precision).
    bool is_sparse() const { return sparse_.has_value(); }

    /// The shared transformed candidate scores (sparse batches only).
    const SparseScores& sparse_scores() const { return *sparse_; }

    /// Runs only the decision stage of `options` on the shared scores.
    /// options must carry the batch's ScoreSignature (kInvalidArgument
    /// otherwise — a mis-grouped query would silently decide on the wrong
    /// transform) and a non-RL matcher. The signature folds in the candidate
    /// index configuration, so dense options cannot decide on a sparse batch
    /// or vice versa.
    Result<Assignment> Match(const MatchOptions& options);

   private:
    friend class MatchEngine;
    ScoredBatch(MatchEngine* engine, ScratchMatrix scores,
                const ScoreSignature& signature)
        : engine_(engine), scores_(std::move(scores)), signature_(signature) {}
    ScoredBatch(MatchEngine* engine, ScratchMatrix values, ScratchIndices cols,
                SparseScores sparse, const ScoreSignature& signature)
        : engine_(engine), sparse_values_(std::move(values)),
          sparse_cols_(std::move(cols)), sparse_(std::move(sparse)),
          signature_(signature) {}

    MatchEngine* engine_;
    std::optional<ScratchMatrix> scores_;
    // Sparse batches: the arena leases backing sparse_'s entry storage.
    // sparse_ is declared after them so it is destroyed first (it borrows
    // their buffers); arena slab addresses are stable, so the borrowed
    // pointers survive ScoredBatch moves.
    std::optional<ScratchMatrix> sparse_values_;
    std::optional<ScratchIndices> sparse_cols_;
    std::optional<SparseScores> sparse_;
    ScoreSignature signature_;
  };

  /// Opens a batch: pre-checks the stage-1+2 bytes (score matrix + transform
  /// scratch) against the budget, starts a new high-water region, and runs
  /// similarity + transform once. Decision-stage bytes are checked per
  /// ScoredBatch::Match, exactly as the matcher's leases demand them;
  /// serving-layer admission pre-checks the full per-query declaration.
  Result<ScoredBatch> BeginBatch(const MatchOptions& options);

  /// Stages 1+2 only: similarity + transform, returned as an owned copy (the
  /// arena buffer is released before returning). For inspection and the
  /// bit-identity suite; Match() is the allocation-free hot path.
  Result<Matrix> TransformedScores(const MatchOptions& options);

  /// Matrix-scale workspace bytes a Match(options) query needs at its peak:
  /// the score matrix plus the larger of the transform scratch and the
  /// decision-stage tables. This is what Match pre-checks against the
  /// budget.
  size_t DeclaredWorkspaceBytes(const MatchOptions& options) const {
    return DeclaredWorkspaceBytesFor(snapshot_->source().rows(),
                                     snapshot_->target().rows(), options);
  }

  /// The same declaration for an (n × m) pair without an engine — what the
  /// serving layer's admission check uses before any engine exists.
  static size_t DeclaredWorkspaceBytesFor(size_t n, size_t m,
                                          const MatchOptions& options);

  /// Arms a deadline checked *between* pipeline stages (after similarity /
  /// sparse fill, before transform; and before the decision stage): work on
  /// behalf of an expired request stops at the next stage boundary with
  /// kDeadlineExceeded instead of finishing doomed kernels. Stages are never
  /// interrupted mid-kernel, so a passing query's arithmetic — and its
  /// bit-identity to the one-shot path — is untouched. Cleared by
  /// ClearStageDeadline; the serving scheduler arms the *latest* deadline of
  /// a batch so a short-deadline rider cannot abort a batch that still has
  /// live requests.
  void SetStageDeadline(std::chrono::steady_clock::time_point deadline) {
    stage_deadline_ = deadline;
  }
  void ClearStageDeadline() { stage_deadline_.reset(); }

  const Matrix& source() const { return snapshot_->source(); }
  const Matrix& target() const { return snapshot_->target(); }
  const MatchOptions& options() const { return options_; }

  /// The immutable snapshot this engine reads (never null).
  const std::shared_ptr<const PairSnapshot>& snapshot() const {
    return snapshot_;
  }

  /// The session arena; high_water_bytes() after a query is that query's
  /// matrix-scale peak (reset at query start).
  const Workspace& workspace() const { return *workspace_; }
  Workspace* mutable_workspace() { return workspace_.get(); }

  /// Surrenders the arena for recycling into a successor engine (see Over).
  /// The engine is unusable afterwards; destroy it.
  std::unique_ptr<Workspace> TakeWorkspace() { return std::move(workspace_); }

 private:
  MatchEngine(std::shared_ptr<const PairSnapshot> snapshot,
              const MatchOptions& options,
              std::unique_ptr<Workspace> workspace);

  /// Similarity + transform into `scores` (an arena lease of the right
  /// shape).
  Status ComputeScoresInto(Matrix* scores, const MatchOptions& options);

  /// kDeadlineExceeded when an armed stage deadline has passed.
  Status CheckStageDeadline(const char* stage) const;

  std::shared_ptr<const PairSnapshot> snapshot_;
  MatchOptions options_;
  std::unique_ptr<Workspace> workspace_;
  std::optional<std::chrono::steady_clock::time_point> stage_deadline_;
};

}  // namespace entmatcher

#endif  // ENTMATCHER_MATCHING_ENGINE_H_
