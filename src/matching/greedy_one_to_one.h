#ifndef ENTMATCHER_MATCHING_GREEDY_ONE_TO_ONE_H_
#define ENTMATCHER_MATCHING_GREEDY_ONE_TO_ONE_H_

#include "common/status.h"
#include "la/matrix.h"
#include "matching/types.h"

namespace entmatcher {

/// Greedy *global* 1-to-1 matching (the strategy of conventional greedy
/// aligners such as SiGMa [25]): visit all (source, target) pairs in
/// descending score order and accept a pair when both sides are still free.
/// A 2-approximation of the optimal assignment at O(n^2 log n) cost — the
/// cheap middle ground between row-greedy and the Hungarian algorithm.
///
/// Rectangular inputs are handled naturally; surplus sources stay
/// kUnmatched.
Result<Assignment> GreedyOneToOneMatch(const Matrix& scores);

/// Mutual-best matching with abstention: (u, v) is accepted iff v is u's
/// best target AND u is v's best source. Sources that lose the reciprocal
/// test stay kUnmatched — high precision at reduced recall, the standard
/// bootstrapping filter of self-training EA systems (and our pseudo-anchor
/// rule in the RREA-style model).
Result<Assignment> MutualBestMatch(const Matrix& scores);

}  // namespace entmatcher

#endif  // ENTMATCHER_MATCHING_GREEDY_ONE_TO_ONE_H_
