#include "matching/engine.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/fault.h"
#include "index/candidate_index.h"
#include "index/quantized_candidates.h"
#include "matching/pipeline.h"
#include "matching/sparse_matchers.h"
#include "matching/sparse_transforms.h"
#include "matching/transforms.h"

namespace entmatcher {

namespace {

// Matrix-scale buffers the decision stage leases beyond the score matrix.
size_t MatcherWorkspaceBytes(const MatchOptions& options, size_t rows,
                             size_t cols) {
  switch (options.matcher) {
    case MatcherKind::kHungarian: {
      const size_t side = std::max(rows, cols);
      return side * side * sizeof(float);  // padded square cost matrix
    }
    case MatcherKind::kGaleShapley:
      // Both sides' preference tables plus the rank lookup (paper Sec. 3.6).
      return (rows * cols + 2 * cols * rows) * sizeof(uint32_t);
    case MatcherKind::kGreedy:
    case MatcherKind::kGreedyOneToOne:
    case MatcherKind::kMutualBest:
    case MatcherKind::kRl:
      return 0;
  }
  return 0;
}

// Entry capacity of the sparse path: num_candidates kept per source row,
// clamped to the target count.
size_t SparseNnzCap(const MatchOptions& options, size_t n, size_t m) {
  return n * std::min(options.num_candidates, m);
}

// Pre-lease validation of a sparse-path query (candidate index, quantized
// candidate generation, or both) against this engine's target set. The
// transform check lives here too so an unsupported transform fails before
// any buffer is touched, like an over-budget query.
Status ValidateSparseQuery(const MatchOptions& options, size_t num_targets) {
  if (options.num_candidates == 0) {
    return Status::InvalidArgument(
        "a sparse query (candidate_index or score_precision) needs "
        "num_candidates >= 1; choose how many candidates to keep per source "
        "row");
  }
  if (UsesCandidateIndex(options)) {
    // Each backend reads only its own probe knob, so only that knob is
    // validated — a stray index_ef=0 must not reject an IVF query.
    if (options.candidate_index->backend() == CandidateBackendKind::kIvf &&
        options.index_nprobe == 0) {
      return Status::InvalidArgument("index_nprobe must be >= 1");
    }
    if (options.candidate_index->backend() == CandidateBackendKind::kHnsw &&
        options.index_ef == 0) {
      return Status::InvalidArgument("index_ef must be >= 1");
    }
    if (options.candidate_index->num_targets() != num_targets) {
      return Status::InvalidArgument(
          "candidate index was built over a different target set than this "
          "engine's");
    }
  }
  if (UsesQuantizedCandidates(options) &&
      options.metric == SimilarityMetric::kNegManhattan) {
    return Status::InvalidArgument(
        "manhattan has no quantized surrogate; use score_precision = float32 "
        "with this metric");
  }
  if (!TransformSupportsSparse(options.transform)) {
    return Status::InvalidArgument(
        "Sinkhorn needs the full coupling matrix; it has no sparse variant — "
        "drop the candidate index / quantized precision for this transform");
  }
  return Status::OK();
}

}  // namespace

MatchEngine::MatchEngine(std::shared_ptr<const PairSnapshot> snapshot,
                         const MatchOptions& options,
                         std::unique_ptr<Workspace> workspace)
    : snapshot_(std::move(snapshot)), options_(options),
      workspace_(std::move(workspace)) {}

Result<MatchEngine> MatchEngine::Create(Matrix source, Matrix target,
                                        const MatchOptions& options) {
  Result<std::shared_ptr<PairSnapshot>> snapshot =
      PairSnapshot::Build(std::move(source), std::move(target));
  if (!snapshot.ok()) {
    // Preserve the classic error prefix for existing callers/tests.
    return Status::InvalidArgument(
        "MatchEngine: " + snapshot.status().message());
  }
  return Over(std::move(snapshot).value(), options);
}

Result<MatchEngine> MatchEngine::Over(
    std::shared_ptr<const PairSnapshot> snapshot, const MatchOptions& options,
    std::unique_ptr<Workspace> recycled) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("MatchEngine: null snapshot");
  }
  std::unique_ptr<Workspace> workspace;
  if (recycled != nullptr && recycled->idle()) {
    recycled->Rearm(options.workspace_budget_bytes);
    workspace = std::move(recycled);
  } else {
    workspace = std::make_unique<Workspace>(options.workspace_budget_bytes);
  }
  MatchEngine engine(std::move(snapshot), options, std::move(workspace));
  engine.snapshot_->EnsureCache(options.metric);
  return engine;
}

size_t MatchEngine::DeclaredWorkspaceBytesFor(size_t n, size_t m,
                                              const MatchOptions& options) {
  if (UsesSparsePath(options)) {
    // O(n·c) entries instead of the O(n·m) matrix. Sparse matchers lease no
    // arena tables; greedy-1-to-1's nnz-sized order buffer is heap-allocated
    // and tracker-charged, matching the dense convention.
    const size_t nnz_cap = SparseNnzCap(options, n, m);
    return SparseScores::BytesFor(nnz_cap) +
           SparseTransformWorkspaceBytes(options, nnz_cap);
  }
  const size_t scores_bytes = n * m * sizeof(float);
  // The transform scratch is released before the decision stage leases its
  // tables, so the two stages share the same headroom.
  const size_t stage_bytes = std::max(TransformWorkspaceBytes(options, n, m),
                                      MatcherWorkspaceBytes(options, n, m));
  return scores_bytes + stage_bytes;
}

Status MatchEngine::CheckStageDeadline(const char* stage) const {
  if (!stage_deadline_.has_value()) return Status::OK();
  if (std::chrono::steady_clock::now() <= *stage_deadline_) {
    return Status::OK();
  }
  return Status::DeadlineExceeded(std::string("deadline expired before ") +
                                  stage + " stage");
}

Status MatchEngine::ComputeScoresInto(Matrix* scores,
                                      const MatchOptions& options) {
  // Chaos point: a spurious internal error (or injected latency) in the
  // scores pass, the hot path a flaky kernel or allocator would hit first.
  EM_INJECT_FAULT("engine.scores", StatusCode::kInternal);
  const SimilarityCache& cache = snapshot_->EnsureCache(options.metric);
  EM_RETURN_NOT_OK(ComputeSimilarityRange(snapshot_->source(),
                                          snapshot_->target(), options.metric,
                                          cache, 0, snapshot_->source().rows(),
                                          scores));
  EM_RETURN_NOT_OK(CheckStageDeadline("transform"));
  return ApplyScoreTransformInPlace(scores, options, workspace_.get());
}

Result<Assignment> MatchEngine::Match(const MatchOptions& options) {
  if (options.matcher == MatcherKind::kRl) {
    return Status::InvalidArgument(
        "the RL matcher needs KG context; use RunMatching or RlMatch");
  }
  // Reject an over-budget query before leasing anything: clean error, no
  // partial output, arena untouched. BeginBatch re-checks only the stage-1+2
  // subset, so this full-declaration check stays the authoritative one.
  EM_RETURN_NOT_OK(workspace_->CheckBudget(DeclaredWorkspaceBytes(options)));
  EM_ASSIGN_OR_RETURN(ScoredBatch batch, BeginBatch(options));
  return batch.Match(options);
}

Result<MatchEngine::ScoredBatch> MatchEngine::BeginBatch(
    const MatchOptions& options) {
  const Matrix& source = snapshot_->source();
  const Matrix& target = snapshot_->target();
  const size_t n = source.rows();
  const size_t m = target.rows();
  if (UsesSparsePath(options)) {
    EM_RETURN_NOT_OK(ValidateSparseQuery(options, m));
    const size_t nnz_cap = SparseNnzCap(options, n, m);
    EM_RETURN_NOT_OK(workspace_->CheckBudget(
        SparseScores::BytesFor(nnz_cap) +
        SparseTransformWorkspaceBytes(options, nnz_cap)));
    workspace_->ResetHighWater();
    EM_ASSIGN_OR_RETURN(ScratchMatrix values,
                        ScratchMatrix::Acquire(workspace_.get(), 1, nnz_cap));
    EM_ASSIGN_OR_RETURN(ScratchIndices cols,
                        ScratchIndices::Acquire(workspace_.get(), nnz_cap));
    SparseScores sparse = SparseScores::Borrowed(
        n, m, values.get().data(), cols.get().data(), nnz_cap);
    // Mirror the dense arm's chaos point: sparse scoring is the same
    // logical stage.
    EM_INJECT_FAULT("engine.scores", StatusCode::kInternal);
    const SimilarityCache& cache = snapshot_->EnsureCache(options.metric);
    ProbeParams probe;
    probe.nprobe = options.index_nprobe;
    probe.ef_search = options.index_ef;
    if (UsesQuantizedCandidates(options)) {
      EM_ASSIGN_OR_RETURN(const auto* quantized,
                          snapshot_->EnsureQuantized(options.score_precision));
      EM_RETURN_NOT_OK(FillQuantizedSparseScores(
          source, target, quantized->first, quantized->second, options.metric,
          cache, options.num_candidates, options.candidate_index, probe,
          &sparse));
    } else {
      EM_RETURN_NOT_OK(options.candidate_index->FillSparseScores(
          source, target, options.metric, cache, options.num_candidates,
          probe, &sparse));
    }
    EM_RETURN_NOT_OK(CheckStageDeadline("transform"));
    EM_RETURN_NOT_OK(ApplySparseScoreTransformInPlace(&sparse, options,
                                                      workspace_.get()));
    return ScoredBatch(this, std::move(values), std::move(cols),
                       std::move(sparse), ScoreSignature::Of(options));
  }
  EM_RETURN_NOT_OK(workspace_->CheckBudget(
      n * m * sizeof(float) + TransformWorkspaceBytes(options, n, m)));
  workspace_->ResetHighWater();
  EM_ASSIGN_OR_RETURN(ScratchMatrix scores,
                      ScratchMatrix::Acquire(workspace_.get(), n, m));
  EM_RETURN_NOT_OK(ComputeScoresInto(&scores.get(), options));
  return ScoredBatch(this, std::move(scores), ScoreSignature::Of(options));
}

Result<Assignment> MatchEngine::ScoredBatch::Match(const MatchOptions& options) {
  if (options.matcher == MatcherKind::kRl) {
    return Status::InvalidArgument(
        "the RL matcher needs KG context; use RunMatching or RlMatch");
  }
  if (!(ScoreSignature::Of(options) == signature_)) {
    return Status::InvalidArgument(
        "ScoredBatch::Match: options carry a different score signature than "
        "the batch was computed with");
  }
  EM_RETURN_NOT_OK(engine_->CheckStageDeadline("decision"));
  if (sparse_.has_value()) {
    return MatchSparseScores(*sparse_, options);
  }
  return MatchScores(scores_->get(), options, engine_->workspace_.get());
}

Result<Matrix> MatchEngine::TransformedScores(const MatchOptions& options) {
  if (UsesSparsePath(options)) {
    return Status::InvalidArgument(
        "TransformedScores returns a dense matrix; use BeginBatch and "
        "sparse_scores() for sparse (candidate-index or quantized) queries");
  }
  EM_ASSIGN_OR_RETURN(ScoredBatch batch, BeginBatch(options));
  return Matrix(batch.scores());  // deep owned copy; the lease is recycled
}

}  // namespace entmatcher
