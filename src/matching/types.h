#ifndef ENTMATCHER_MATCHING_TYPES_H_
#define ENTMATCHER_MATCHING_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "la/kernels/quantized.h"
#include "la/similarity.h"

namespace entmatcher {

class CandidateIndex;

/// The outcome of the matching-decision stage: for each source candidate row
/// the assigned target candidate column, or kUnmatched when the algorithm
/// declined to align the source (dummy assignment / rejection).
struct Assignment {
  static constexpr int32_t kUnmatched = -1;

  std::vector<int32_t> target_of_source;

  size_t size() const { return target_of_source.size(); }

  /// Number of rows with a real (non-dummy) target.
  size_t NumMatched() const {
    size_t n = 0;
    for (int32_t t : target_of_source) n += (t != kUnmatched);
    return n;
  }
};

/// Pairwise-score transforms (paper Table 2, "Pairwise Scores" column).
enum class ScoreTransformKind {
  /// Raw similarity (DInf, Hun., SMat, RL).
  kNone,
  /// Cross-domain similarity local scaling (Sec. 3.3).
  kCsls,
  /// Reciprocal preference + ranking aggregation (Sec. 3.4).
  kRinf,
  /// RInf without the ranking step (scalable variant RInf-wr).
  kRinfWr,
  /// RInf with candidate-pruned progressive blocking (RInf-pb).
  kRinfPb,
  /// Sinkhorn row/column normalization (Sec. 3.5).
  kSinkhorn,
};

/// Matching-decision algorithms (paper Table 2, "Matching" column).
enum class MatcherKind {
  /// Row-wise argmax (Alg. 2).
  kGreedy,
  /// Jonker–Volgenant/Hungarian optimal linear assignment (Sec. 3.5).
  kHungarian,
  /// Gale–Shapley deferred acceptance, stable matching (Sec. 3.6).
  kGaleShapley,
  /// Policy-gradient sequential decision matcher (Sec. 3.7).
  kRl,
  /// Greedy global 1-to-1 matching (SiGMa-style, extension).
  kGreedyOneToOne,
  /// Mutual-best filter with abstention (extension).
  kMutualBest,
};

/// Reinforcement-learning matcher knobs (used when matcher == kRl).
struct RlMatcherOptions {
  /// Top-C candidate actions considered per source entity.
  size_t num_candidates = 10;
  /// REINFORCE epochs over the training sequence. The policy-gradient
  /// training loop dominates the cost, making RL the least time-efficient
  /// algorithm — as the paper observes (Fig. 5a).
  size_t epochs = 250;
  /// Unsupervised fine-tuning rollouts over the *test* sequence before the
  /// final decode (reward = score margin + coherence - exclusiveness
  /// violations, no gold needed), following [65]'s test-time coordination
  /// learning. These rollouts dominate RL's cost on large candidate sets.
  size_t test_rollouts = 100;
  /// Policy network hidden width.
  size_t hidden = 16;
  double learning_rate = 0.05;
  /// Pre-filter: mutual-best pairs whose margin exceeds this skip the RL
  /// stage entirely (the confidence filter of [65]).
  double confidence_margin = 0.25;
  uint64_t seed = 11;
};

/// Full configuration of the embedding-matching pipeline
/// (metric -> transform -> matcher; paper Fig. 3).
struct MatchOptions {
  SimilarityMetric metric = SimilarityMetric::kCosine;
  ScoreTransformKind transform = ScoreTransformKind::kNone;
  MatcherKind matcher = MatcherKind::kGreedy;

  /// CSLS neighborhood size k (Eq. 1; Fig. 6 sweeps it).
  size_t csls_k = 1;

  /// RInf reverse-preference neighborhood size (1 = the paper's max-based
  /// Eq. 2; the Appendix C study sweeps it in the non-1-to-1 setting).
  size_t rinf_k = 1;

  /// Sinkhorn iteration count l (Eq. 3; Fig. 7 sweeps it).
  size_t sinkhorn_iterations = 100;
  /// Softmax temperature for exp(S / t); small values sharpen the coupling.
  double sinkhorn_temperature = 0.05;

  /// Candidate width for RInf-pb.
  size_t rinf_pb_candidates = 50;

  /// Hard cap in bytes on the matching-stage workspace (score matrix +
  /// transform scratch + decision tables); 0 = unlimited. A query that
  /// cannot fit fails with kResourceExhausted before any buffer is touched —
  /// the paper's Table 6 "Mem: No" verdict (e.g. SMat at DWY100K scale) as a
  /// real, clean error instead of an after-the-fact estimate.
  size_t workspace_budget_bytes = 0;

  /// Opt-in sub-quadratic path: when set, the engine scores only the
  /// `num_candidates` approximate nearest targets per source (found by this
  /// index, probing `index_nprobe` cells) and runs sparse transform/decision
  /// variants over the candidate lists. Peak workspace drops from O(n·m) to
  /// O(n·num_candidates). Not owned; must outlive every query using it, and
  /// must have been built over this engine's target embeddings. Transforms/
  /// matchers without a sparse variant (Sinkhorn, Hungarian, Gale–Shapley)
  /// are refused with kInvalidArgument.
  const CandidateIndex* candidate_index = nullptr;
  /// Candidates kept per source row (top-c exact rerank); must be >= 1 when
  /// candidate_index is set.
  size_t num_candidates = 0;
  /// Inverted lists probed per query row (IVF backend only).
  size_t index_nprobe = 4;
  /// Beam width of the layer-0 graph search (HNSW backend only); the engine
  /// widens it to at least num_candidates. Each backend reads only its own
  /// knob, so e.g. index_ef is ignored — and canonically zeroed in the
  /// signature — for IVF queries.
  size_t index_ef = 64;

  /// Opt-in mixed-precision candidate generation: when not kFloat32, the
  /// engine quantizes both embedding matrices once (bf16, or int8 with a
  /// per-row scale), pre-ranks targets with the quantized dot kernel, and
  /// re-scores the surviving top-`num_candidates` with the exact float
  /// kernel — so every emitted score is still bit-identical to its dense
  /// cell and only candidate *coverage* is approximate. Requires
  /// num_candidates >= 1 and a dot-product-backed metric (cosine or
  /// euclidean; manhattan has no quantized form and is refused). Composes
  /// with candidate_index: the quantized pre-rank then runs over the probed
  /// lists instead of all targets.
  ScorePrecision score_precision = ScorePrecision::kFloat32;

  RlMatcherOptions rl;
};

/// True when `options` selects the sparse candidate-index path.
inline bool UsesCandidateIndex(const MatchOptions& options) {
  return options.candidate_index != nullptr;
}

/// True when `options` selects quantized (bf16/int8) candidate generation.
inline bool UsesQuantizedCandidates(const MatchOptions& options) {
  return options.score_precision != ScorePrecision::kFloat32;
}

/// True when `options` scores sparse candidate lists instead of the dense
/// n x m matrix — via an IVF index, quantized pre-ranking, or both.
inline bool UsesSparsePath(const MatchOptions& options) {
  return UsesCandidateIndex(options) || UsesQuantizedCandidates(options);
}

/// The part of a MatchOptions that determines the transformed score matrix
/// (stages 1+2 of the pipeline: similarity metric, score transform, and the
/// transform's parameters). Two queries with equal signatures produce
/// bit-identical transformed scores, so they can share one similarity +
/// transform pass — the serving layer's micro-batching key. The decision
/// stage (matcher) is free to differ within a batch.
struct ScoreSignature {
  SimilarityMetric metric = SimilarityMetric::kCosine;
  ScoreTransformKind transform = ScoreTransformKind::kNone;
  size_t csls_k = 0;
  size_t rinf_k = 0;
  size_t sinkhorn_iterations = 0;
  double sinkhorn_temperature = 0.0;
  size_t rinf_pb_candidates = 0;
  /// Candidate-index configuration: a sparse query can only share a scores
  /// pass with queries using the same index object, width, and probe knobs
  /// (and never with a dense query). Zeroed for dense queries so a stray
  /// index_nprobe cannot split a dense batch; the knob the index's backend
  /// does not read (nprobe for HNSW, ef for IVF, both for exact) is zeroed
  /// too, for the same reason.
  const CandidateIndex* candidate_index = nullptr;
  size_t num_candidates = 0;
  size_t index_nprobe = 0;
  size_t index_ef = 0;
  /// Candidate-generation precision: quantized queries can only coalesce
  /// with queries quantized the same way (kFloat32 for dense and pure-IVF
  /// queries, whose candidate coverage is precision-independent).
  ScorePrecision score_precision = ScorePrecision::kFloat32;

  /// Canonical signature of `options`: parameters the active transform does
  /// not read are zeroed, so e.g. two kNone queries with different csls_k
  /// still coalesce into one batch.
  static ScoreSignature Of(const MatchOptions& options);

  friend bool operator==(const ScoreSignature&,
                         const ScoreSignature&) = default;
};

/// The paper's named algorithms, each a (transform, matcher) combination.
enum class AlgorithmPreset {
  kDInf,
  kCsls,
  kRinf,
  kRinfWr,
  kRinfPb,
  kSinkhorn,
  kHungarian,
  kStableMatch,
  kRl,
};

/// Options reproducing `preset` (paper Sec. 4.1 "Reproduction of existing
/// approaches": e.g., CSLS = cosine + CSLS + Greedy; Hun. = cosine + None +
/// Hungarian).
MatchOptions MakePreset(AlgorithmPreset preset);

/// Paper display name ("DInf", "CSLS", "RInf", "RInf-wr", "RInf-pb",
/// "Sink.", "Hun.", "SMat", "RL").
const char* PresetName(AlgorithmPreset preset);

/// The seven algorithms of the main experiments (Tables 4/5/7/8 order).
std::vector<AlgorithmPreset> MainPresets();

/// Main algorithms plus the scalable RInf variants (Table 6 order).
std::vector<AlgorithmPreset> ScalabilityPresets();

}  // namespace entmatcher

#endif  // ENTMATCHER_MATCHING_TYPES_H_
