#include "matching/types.h"

#include "index/candidate_index.h"

namespace entmatcher {

MatchOptions MakePreset(AlgorithmPreset preset) {
  MatchOptions options;
  options.metric = SimilarityMetric::kCosine;
  switch (preset) {
    case AlgorithmPreset::kDInf:
      options.transform = ScoreTransformKind::kNone;
      options.matcher = MatcherKind::kGreedy;
      break;
    case AlgorithmPreset::kCsls:
      options.transform = ScoreTransformKind::kCsls;
      options.matcher = MatcherKind::kGreedy;
      break;
    case AlgorithmPreset::kRinf:
      options.transform = ScoreTransformKind::kRinf;
      options.matcher = MatcherKind::kGreedy;
      break;
    case AlgorithmPreset::kRinfWr:
      options.transform = ScoreTransformKind::kRinfWr;
      options.matcher = MatcherKind::kGreedy;
      break;
    case AlgorithmPreset::kRinfPb:
      options.transform = ScoreTransformKind::kRinfPb;
      options.matcher = MatcherKind::kGreedy;
      break;
    case AlgorithmPreset::kSinkhorn:
      options.transform = ScoreTransformKind::kSinkhorn;
      options.matcher = MatcherKind::kGreedy;
      break;
    case AlgorithmPreset::kHungarian:
      options.transform = ScoreTransformKind::kNone;
      options.matcher = MatcherKind::kHungarian;
      break;
    case AlgorithmPreset::kStableMatch:
      options.transform = ScoreTransformKind::kNone;
      options.matcher = MatcherKind::kGaleShapley;
      break;
    case AlgorithmPreset::kRl:
      options.transform = ScoreTransformKind::kNone;
      options.matcher = MatcherKind::kRl;
      break;
  }
  return options;
}

ScoreSignature ScoreSignature::Of(const MatchOptions& options) {
  ScoreSignature sig;
  sig.metric = options.metric;
  sig.transform = options.transform;
  switch (options.transform) {
    case ScoreTransformKind::kNone:
    case ScoreTransformKind::kRinfWr:
      break;
    case ScoreTransformKind::kCsls:
      sig.csls_k = options.csls_k;
      break;
    case ScoreTransformKind::kRinf:
      sig.rinf_k = options.rinf_k;
      break;
    case ScoreTransformKind::kRinfPb:
      sig.rinf_pb_candidates = options.rinf_pb_candidates;
      break;
    case ScoreTransformKind::kSinkhorn:
      sig.sinkhorn_iterations = options.sinkhorn_iterations;
      sig.sinkhorn_temperature = options.sinkhorn_temperature;
      break;
  }
  if (UsesCandidateIndex(options)) {
    sig.candidate_index = options.candidate_index;
    sig.num_candidates = options.num_candidates;
    // Only the knob the backend actually reads shapes coverage; zeroing the
    // other keeps e.g. two HNSW queries with different stray nprobes in one
    // batch.
    switch (options.candidate_index->backend()) {
      case CandidateBackendKind::kIvf:
        sig.index_nprobe = options.index_nprobe;
        break;
      case CandidateBackendKind::kHnsw:
        sig.index_ef = options.index_ef;
        break;
      case CandidateBackendKind::kExact:
        break;
    }
  }
  if (UsesQuantizedCandidates(options)) {
    sig.score_precision = options.score_precision;
    // The candidate width shapes coverage even without an index.
    sig.num_candidates = options.num_candidates;
  }
  return sig;
}

const char* PresetName(AlgorithmPreset preset) {
  switch (preset) {
    case AlgorithmPreset::kDInf:
      return "DInf";
    case AlgorithmPreset::kCsls:
      return "CSLS";
    case AlgorithmPreset::kRinf:
      return "RInf";
    case AlgorithmPreset::kRinfWr:
      return "RInf-wr";
    case AlgorithmPreset::kRinfPb:
      return "RInf-pb";
    case AlgorithmPreset::kSinkhorn:
      return "Sink.";
    case AlgorithmPreset::kHungarian:
      return "Hun.";
    case AlgorithmPreset::kStableMatch:
      return "SMat";
    case AlgorithmPreset::kRl:
      return "RL";
  }
  return "?";
}

std::vector<AlgorithmPreset> MainPresets() {
  return {AlgorithmPreset::kDInf,     AlgorithmPreset::kCsls,
          AlgorithmPreset::kRinf,     AlgorithmPreset::kSinkhorn,
          AlgorithmPreset::kHungarian, AlgorithmPreset::kStableMatch,
          AlgorithmPreset::kRl};
}

std::vector<AlgorithmPreset> ScalabilityPresets() {
  return {AlgorithmPreset::kDInf,    AlgorithmPreset::kCsls,
          AlgorithmPreset::kRinf,    AlgorithmPreset::kRinfWr,
          AlgorithmPreset::kRinfPb,  AlgorithmPreset::kSinkhorn,
          AlgorithmPreset::kHungarian, AlgorithmPreset::kStableMatch,
          AlgorithmPreset::kRl};
}

}  // namespace entmatcher
