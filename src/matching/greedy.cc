#include "matching/greedy.h"

#include "la/topk.h"

namespace entmatcher {

Result<Assignment> GreedyMatch(const Matrix& scores) {
  if (scores.rows() == 0 || scores.cols() == 0) {
    return Status::InvalidArgument("GreedyMatch: empty score matrix");
  }
  const std::vector<uint32_t> argmax = RowArgmax(scores);
  Assignment assignment;
  assignment.target_of_source.assign(argmax.begin(), argmax.end());
  return assignment;
}

}  // namespace entmatcher
