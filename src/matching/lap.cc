#include "matching/lap.h"

#include <limits>

namespace entmatcher {

Result<LapSolution> SolveLapMin(const Matrix& cost) {
  if (cost.rows() == 0 || cost.rows() != cost.cols()) {
    return Status::InvalidArgument("SolveLapMin: cost matrix must be square");
  }
  const size_t n = cost.rows();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Shortest augmenting path with dual potentials (u, v); 1-based columns
  // with column 0 as the virtual start of each augmentation.
  std::vector<double> u(n + 1, 0.0);
  std::vector<double> v(n + 1, 0.0);
  std::vector<int32_t> row_of_col(n + 1, 0);  // p[j]: row matched to column j
  std::vector<int32_t> way(n + 1, 0);
  std::vector<double> min_to(n + 1);
  std::vector<char> used(n + 1);

  for (size_t i = 1; i <= n; ++i) {
    row_of_col[0] = static_cast<int32_t>(i);
    size_t j0 = 0;
    std::fill(min_to.begin(), min_to.end(), kInf);
    std::fill(used.begin(), used.end(), 0);
    do {
      used[j0] = 1;
      const size_t i0 = static_cast<size_t>(row_of_col[j0]);
      double delta = kInf;
      size_t j1 = 0;
      const float* cost_row = cost.Row(i0 - 1).data();
      for (size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cur = static_cast<double>(cost_row[j - 1]) - u[i0] - v[j];
        if (cur < min_to[j]) {
          min_to[j] = cur;
          way[j] = static_cast<int32_t>(j0);
        }
        if (min_to[j] < delta) {
          delta = min_to[j];
          j1 = j;
        }
      }
      for (size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[static_cast<size_t>(row_of_col[j])] += delta;
          v[j] -= delta;
        } else {
          min_to[j] -= delta;
        }
      }
      j0 = j1;
    } while (row_of_col[j0] != 0);
    // Unwind the augmenting path.
    do {
      const size_t j1 = static_cast<size_t>(way[j0]);
      row_of_col[j0] = row_of_col[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  LapSolution solution;
  solution.col_of_row.assign(n, -1);
  for (size_t j = 1; j <= n; ++j) {
    if (row_of_col[j] > 0) {
      solution.col_of_row[static_cast<size_t>(row_of_col[j]) - 1] =
          static_cast<int32_t>(j - 1);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    solution.total_cost +=
        static_cast<double>(cost.At(i, static_cast<size_t>(solution.col_of_row[i])));
  }
  return solution;
}

}  // namespace entmatcher
