#include "matching/snapshot.h"

#include <utility>

#include "common/fault.h"
#include "index/candidate_index.h"

namespace entmatcher {

namespace {

size_t MetricSlot(SimilarityMetric metric) {
  switch (metric) {
    case SimilarityMetric::kCosine:
      return 0;
    case SimilarityMetric::kNegEuclidean:
      return 1;
    case SimilarityMetric::kNegManhattan:
      return 2;
  }
  return 0;
}

}  // namespace

Result<std::shared_ptr<PairSnapshot>> PairSnapshot::Build(Matrix source,
                                                          Matrix target) {
  if (source.rows() == 0 || target.rows() == 0) {
    return Status::InvalidArgument("PairSnapshot: empty embedding matrix");
  }
  if (source.cols() != target.cols()) {
    return Status::InvalidArgument(
        "PairSnapshot: embedding dimensions differ");
  }
  auto core = std::make_shared<Core>();
  core->source = std::move(source);
  core->target = std::move(target);
  return std::shared_ptr<PairSnapshot>(
      new PairSnapshot(std::move(core), nullptr));
}

std::shared_ptr<PairSnapshot> PairSnapshot::WithIndex(
    std::shared_ptr<const CandidateIndex> index) const {
  return std::shared_ptr<PairSnapshot>(
      new PairSnapshot(core_, std::move(index)));
}

const SimilarityCache& PairSnapshot::EnsureCache(
    SimilarityMetric metric) const {
  const size_t slot = MetricSlot(metric);
  std::call_once(core_->cache_once[slot], [&] {
    core_->caches[slot] =
        BuildSimilarityCache(core_->source, core_->target, metric);
  });
  return *core_->caches[slot];
}

Result<const std::pair<QuantizedMatrix, QuantizedMatrix>*>
PairSnapshot::EnsureQuantized(ScorePrecision precision) const {
  const size_t slot = precision == ScorePrecision::kBf16 ? 0 : 1;
  std::call_once(core_->quantized_once[slot], [&] {
    Result<QuantizedMatrix> qsource =
        QuantizedMatrix::Create(core_->source, precision);
    if (!qsource.ok()) {
      core_->quantized_status[slot] = qsource.status();
      return;
    }
    Result<QuantizedMatrix> qtarget =
        QuantizedMatrix::Create(core_->target, precision);
    if (!qtarget.ok()) {
      core_->quantized_status[slot] = qtarget.status();
      return;
    }
    core_->quantized[slot].emplace(std::move(qsource).value(),
                                   std::move(qtarget).value());
  });
  if (!core_->quantized_status[slot].ok()) {
    return core_->quantized_status[slot];
  }
  return &*core_->quantized[slot];
}

Result<uint64_t> SnapshotRegistry::Publish(
    const std::string& name, std::shared_ptr<PairSnapshot> snapshot,
    uint64_t min_version) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("SnapshotRegistry: null snapshot");
  }
  // Chaos point: a publish that fails here has not touched the registry —
  // the previous snapshot keeps serving, which is exactly the contract a
  // failed hot swap must honor.
  EM_INJECT_FAULT("snapshot.publish", StatusCode::kUnavailable);
  std::shared_ptr<const PairSnapshot> displaced;
  uint64_t version = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::shared_ptr<const PairSnapshot>& slot = current_[name];
    version = (slot != nullptr ? slot->version() : 0) + 1;
    if (version < min_version) version = min_version;
    snapshot->version_ = version;
    displaced = std::move(slot);
    slot = std::move(snapshot);
  }
  if (displaced != nullptr) {
    // The displaced snapshot's release waits for every pass that was active
    // at the swap — those are the only threads that can still hold raw
    // borrows into it. New passes acquire the new version and never see it.
    domain_.Retire([retired = std::move(displaced)]() mutable {
      retired.reset();
    });
  }
  return version;
}

std::shared_ptr<const PairSnapshot> SnapshotRegistry::Acquire(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = current_.find(name);
  return it != current_.end() ? it->second : nullptr;
}

std::vector<std::string> SnapshotRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(current_.size());
  for (const auto& [name, snapshot] : current_) names.push_back(name);
  return names;
}

}  // namespace entmatcher
